package soft_test

import (
	"bytes"
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/soft-testing/soft"
)

// resultBytes serializes a result with the wall clock zeroed, the byte
// surface every determinism assertion compares.
func resultBytes(t *testing.T, res *soft.Result) []byte {
	t.Helper()
	res.Elapsed = 0
	var buf bytes.Buffer
	if err := soft.WriteResults(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestScenarioRegistryPublicAPI covers the scenario surface of the root
// package: listing, lookup, generated resolution, and the compiled Test's
// resolution through TestByName (what sched, dist workers, and campaignd
// all use).
func TestScenarioRegistryPublicAPI(t *testing.T) {
	names := soft.ScenarioNames()
	if len(names) < 8 {
		t.Fatalf("seed library has %d scenarios, want at least 8", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("ScenarioNames not sorted: %q before %q", names[i-1], names[i])
		}
	}
	if len(soft.Scenarios()) != len(names) {
		t.Fatalf("Scenarios() and ScenarioNames() disagree on length")
	}
	for _, name := range names {
		sc, ok := soft.ScenarioByName(name)
		if !ok {
			t.Fatalf("ScenarioByName(%q) = false for a listed scenario", name)
		}
		test := sc.Test()
		if test.DefHash == "" {
			t.Fatalf("scenario %q compiles to a test without a DefHash", name)
		}
		if test.MsgCount != len(sc.Steps) {
			t.Fatalf("scenario %q: MsgCount %d != %d steps", name, test.MsgCount, len(sc.Steps))
		}
		via, ok := soft.TestByName(name)
		if !ok || via.DefHash != test.DefHash {
			t.Fatalf("TestByName(%q) does not resolve to the scenario's test", name)
		}
	}

	// Table 1 names keep resolving to the builtin suite, hash-free.
	if builtin, ok := soft.TestByName("Packet Out"); !ok || builtin.DefHash != "" {
		t.Fatalf("Table 1 test resolution changed: ok=%v DefHash=%q", ok, builtin.DefHash)
	}

	n := soft.GeneratedScenarioCount()
	if n < 100 {
		t.Fatalf("generator enumerates %d scenarios, want a substantive space", n)
	}
	for _, idx := range []int{0, 1, n / 2, n - 1} {
		g, ok := soft.GeneratedScenario(idx)
		if !ok {
			t.Fatalf("GeneratedScenario(%d) = false inside the enumeration", idx)
		}
		byName, ok := soft.ScenarioByName(g.Name)
		if !ok || byName.Test().DefHash != g.Test().DefHash {
			t.Fatalf("generated scenario %q does not round-trip through ByName", g.Name)
		}
	}
	if _, ok := soft.GeneratedScenario(n); ok {
		t.Fatalf("GeneratedScenario(%d) resolved outside the enumeration", n)
	}
	for _, bad := range []string{"gen:", "gen:-1", "gen:007", "gen:99999999"} {
		if _, ok := soft.ScenarioByName(bad); ok {
			t.Fatalf("ScenarioByName(%q) resolved a non-canonical generated name", bad)
		}
	}
}

// TestScenarioDeterminismAcrossLayouts is the scenario subsystem's core
// guarantee: exploring a stateful scenario sequentially, with 4 in-process
// workers, and on a 2-worker distributed fleet must produce byte-identical
// serialized results. Covers one seed scenario and one generated one.
func TestScenarioDeterminismAcrossLayouts(t *testing.T) {
	ctx := context.Background()
	agent, err := soft.AgentByName("ref")
	if err != nil {
		t.Fatal(err)
	}
	gen, ok := soft.GeneratedScenario(79)
	if !ok {
		t.Fatal("GeneratedScenario(79) missing")
	}
	for _, name := range []string{"Netplugin VXLAN", gen.Name} {
		sc, ok := soft.ScenarioByName(name)
		if !ok {
			t.Fatalf("scenario %q missing", name)
		}
		test := sc.Test()

		seq, err := soft.Explore(ctx, agent, test, soft.WithModels(true), soft.WithWorkers(1))
		if err != nil {
			t.Fatalf("%s sequential: %v", name, err)
		}
		want := resultBytes(t, seq)
		if len(seq.Paths) == 0 {
			t.Fatalf("%s explored no paths", name)
		}

		par, err := soft.Explore(ctx, agent, test, soft.WithModels(true), soft.WithWorkers(4))
		if err != nil {
			t.Fatalf("%s workers=4: %v", name, err)
		}
		if got := resultBytes(t, par); !bytes.Equal(got, want) {
			t.Fatalf("%s: workers=4 result differs from sequential (%d vs %d bytes)", name, len(got), len(want))
		}

		// A 2-worker fleet resolves the scenario by name on each worker,
		// exercising the registered-test-source path end to end. The
		// workers dial before the coordinator starts (the listener already
		// queues connections), and shard depth 1 keeps the coordinator
		// from consuming these small trees inline — the shards must flow
		// through the workers.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		workDone := make(chan error, 2)
		for i := 0; i < 2; i++ {
			go func() {
				workDone <- soft.Work(ctx, ln.Addr().String(), soft.WithWorkers(2))
			}()
		}
		type outcome struct {
			res *soft.DistResult
			err error
		}
		serveDone := make(chan outcome, 1)
		go func() {
			res, err := soft.ServeListener(ctx, ln, "ref", name,
				soft.WithModels(true), soft.WithShardDepth(1))
			serveDone <- outcome{res, err}
		}()
		var res *soft.DistResult
		select {
		case o := <-serveDone:
			if o.err != nil {
				t.Fatalf("%s Serve: %v", name, o.err)
			}
			res = o.res
		case <-time.After(2 * time.Minute):
			t.Fatalf("%s: fleet exploration did not complete", name)
		}
		for i := 0; i < 2; i++ {
			select {
			case err := <-workDone:
				if err != nil {
					t.Errorf("%s Work: %v", name, err)
				}
			case <-time.After(30 * time.Second):
				t.Fatalf("%s: worker did not exit", name)
			}
		}
		res.Elapsed = 0
		var got bytes.Buffer
		if err := res.SerializedResult.Write(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("%s: 2-worker fleet result differs from sequential (%d vs %d bytes)", name, got.Len(), len(want))
		}
	}
}

// statefulSignature matches the §5.1.2-style divergence the Add Modify
// scenario pins: both agents answer the probe with a structurally
// identical PACKET_OUT (equal templates) whose nw_tos content differs —
// the reference switch masks a modify's invalid SET_NW_TOS argument while
// OVS silently drops the whole modify, so the probe replays the original
// ToS on one side and the masked variable on the other.
func statefulSignature(inc soft.Inconsistency) bool {
	return inc.ATemplate == inc.BTemplate &&
		strings.Contains(inc.ATemplate, "pkt-out") &&
		inc.ACanonical != inc.BCanonical &&
		strings.Contains(inc.ACanonical, "nw_tos") &&
		strings.Contains(inc.BCanonical, "nw_tos")
}

// crosscheckSignatures explores ref and ovs on one test and counts
// inconsistencies matching statefulSignature.
func crosscheckSignatures(t *testing.T, test soft.Test, opts ...soft.Option) int {
	t.Helper()
	ctx := context.Background()
	ref, err := soft.AgentByName("ref")
	if err != nil {
		t.Fatal(err)
	}
	ovs, err := soft.AgentByName("ovs")
	if err != nil {
		t.Fatal(err)
	}
	opts = append(opts, soft.WithModels(true), soft.WithWorkers(4))
	ra, err := soft.Explore(ctx, ref, test, opts...)
	if err != nil {
		t.Fatalf("%s ref: %v", test.Name, err)
	}
	rb, err := soft.Explore(ctx, ovs, test, opts...)
	if err != nil {
		t.Fatalf("%s ovs: %v", test.Name, err)
	}
	rep, err := soft.CrossCheck(ctx, soft.Group(ra), soft.Group(rb))
	if err != nil {
		t.Fatalf("%s crosscheck: %v", test.Name, err)
	}
	n := 0
	for _, inc := range rep.Inconsistencies {
		if statefulSignature(inc) {
			n++
		}
	}
	return n
}

// TestScenarioExposesStatefulInconsistency is the pinned regression for
// the subsystem's reason to exist: the Add Modify seed scenario surfaces a
// ref-vs-ovs inconsistency that needs flow-table state — install a flow,
// modify it with an invalid SET_NW_TOS, probe — while no single-message
// Table 1 test reports any inconsistency with the same signature, even
// scanned at a canonical path cap. If the scenario count drops to zero or
// the Table 1 scan starts matching, the stateful coverage claim is broken.
func TestScenarioExposesStatefulInconsistency(t *testing.T) {
	sc, ok := soft.ScenarioByName("Add Modify")
	if !ok {
		t.Fatal("Add Modify seed scenario missing")
	}
	if got := crosscheckSignatures(t, sc.Test()); got < 1 {
		t.Fatalf("Add Modify scenario: %d stateful-signature inconsistencies, want at least 1", got)
	}

	if testing.Short() {
		t.Skip("Table 1 scan skipped in -short mode")
	}
	for _, test := range soft.Tests() {
		if got := crosscheckSignatures(t, test,
			soft.WithMaxPaths(60), soft.WithCanonicalCut(true)); got != 0 {
			t.Errorf("single-message test %q reports %d stateful-signature inconsistencies, want 0", test.Name, got)
		}
	}
}
