package soft_test

import (
	"bytes"
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/soft-testing/soft"
)

func matrixReportBytes(t *testing.T, rep *soft.MatrixReport) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatalf("MatrixReport.Write: %v", err)
	}
	return buf.Bytes()
}

// TestRunMatrixAPI drives a campaign through the public API: fleetless
// first, then the same campaign over a worker fleet plus a warm store
// re-run, asserting canonical-report byte-identity throughout.
func TestRunMatrixAPI(t *testing.T) {
	ctx := context.Background()
	agents := []string{"ref", "modified"}
	tests := []string{"Packet Out"}

	local, err := soft.RunMatrix(ctx, agents, tests, soft.WithModels(true))
	if err != nil {
		t.Fatalf("RunMatrix: %v", err)
	}
	want := matrixReportBytes(t, local)
	if len(local.Cells) != 2 || len(local.Checks) != 1 {
		t.Fatalf("cells=%d checks=%d, want 2/1", len(local.Cells), len(local.Checks))
	}
	if local.Inconsistencies() == 0 {
		t.Fatal("ref vs modified on Packet Out found no inconsistencies")
	}

	// Fleet + store: two soft.Work goroutines drain the matrix.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	storeDir := t.TempDir()
	workerCtx, stopWorkers := context.WithCancel(ctx)
	defer stopWorkers()
	workerDone := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			workerDone <- soft.Work(workerCtx, ln.Addr().String(), soft.WithWorkers(2))
		}()
	}
	var evMu sync.Mutex
	var events []soft.Event
	fleet, err := soft.RunMatrix(ctx, agents, tests,
		soft.WithModels(true),
		soft.WithFleetListener(ln),
		soft.WithStore(storeDir),
		soft.WithCodeVersion("test-v1"),
		soft.WithProgress(func(ev soft.Event) {
			if ev.Phase == soft.PhaseMatrix {
				evMu.Lock()
				events = append(events, ev)
				evMu.Unlock()
			}
		}),
	)
	if err != nil {
		t.Fatalf("fleet RunMatrix: %v", err)
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-workerDone:
			if err != nil && err != context.Canceled {
				t.Errorf("worker: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("worker did not exit after the campaign")
		}
	}
	if got := matrixReportBytes(t, fleet); !bytes.Equal(got, want) {
		t.Fatal("fleet campaign report differs from fleetless run")
	}
	if fleet.FleetStats == nil || fleet.FleetStats.JobsCompleted != 2 {
		t.Errorf("fleet stats: %+v", fleet.FleetStats)
	}
	maxDone := 0
	for _, ev := range events {
		if ev.Done > maxDone {
			maxDone = ev.Done
		}
	}
	// 2 cells + 1 check = 3 work units; counts may arrive out of order.
	if len(events) == 0 || maxDone != 3 {
		t.Errorf("matrix progress events missing or unfinished (max %d): %+v", maxDone, events)
	}

	// Warm re-run (no fleet needed — every cell cached).
	warm, err := soft.RunMatrix(ctx, agents, tests,
		soft.WithModels(true), soft.WithStore(storeDir), soft.WithCodeVersion("test-v1"))
	if err != nil {
		t.Fatalf("warm RunMatrix: %v", err)
	}
	if warm.CacheHits != 2 || warm.CacheMisses != 0 {
		t.Fatalf("warm run hits=%d misses=%d, want 2/0", warm.CacheHits, warm.CacheMisses)
	}
	if got := matrixReportBytes(t, warm); !bytes.Equal(got, want) {
		t.Fatal("warm campaign report differs")
	}

	// A different code version re-explores.
	bumped, err := soft.RunMatrix(ctx, agents, tests,
		soft.WithModels(true), soft.WithStore(storeDir), soft.WithCodeVersion("test-v2"))
	if err != nil {
		t.Fatal(err)
	}
	if bumped.CacheHits != 0 {
		t.Fatalf("code-version bump still hit the cache: %d", bumped.CacheHits)
	}
}

// TestGroupCachedAPI: the cached grouping is identical to the fresh one
// and reports its hit state correctly.
func TestGroupCachedAPI(t *testing.T) {
	ref, _ := soft.AgentByName("ref")
	test, _ := soft.TestByName("Packet Out")
	res, err := soft.Explore(context.Background(), ref, test)
	if err != nil {
		t.Fatal(err)
	}
	ser := res.Serialized()
	dir := t.TempDir()

	g1, hit, err := soft.GroupCached(dir, "gc-v1", ser)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first GroupCached call reported a hit")
	}
	g2, hit, err := soft.GroupCached(dir, "gc-v1", ser)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second GroupCached call missed")
	}
	if _, hit, err = soft.GroupCached(dir, "gc-v2", ser); err != nil || hit {
		t.Fatalf("changed code version still hit the grouping cache (hit=%t err=%v)", hit, err)
	}
	if len(g1.Groups) != len(g2.Groups) {
		t.Fatalf("cached grouping has %d groups, fresh %d", len(g2.Groups), len(g1.Groups))
	}
	fresh := soft.GroupSerialized(ser)
	for i := range fresh.Groups {
		if fresh.Groups[i].Canonical != g2.Groups[i].Canonical {
			t.Fatalf("group %d canonical mismatch", i)
		}
	}
}

// TestRunMatrixDefaults: empty agent/test slices expand to the full
// registry and suite.
func TestRunMatrixDefaults(t *testing.T) {
	rep, err := soft.RunMatrix(context.Background(), nil, []string{"Stats Request"},
		soft.WithCrossCheck(false))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Agents) != len(soft.Agents()) {
		t.Fatalf("agents = %v, want all of %v", rep.Agents, soft.Agents())
	}
	if len(rep.Checks) != 0 {
		t.Fatalf("WithCrossCheck(false) still produced %d checks", len(rep.Checks))
	}
}
