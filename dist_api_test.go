package soft_test

import (
	"bytes"
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/soft-testing/soft"
)

// TestServeMatchesExplore drives the public distributed API end to end: a
// ServeListener coordinator plus two Work processes (in-process goroutines
// over real localhost TCP) must reproduce soft.Explore byte for byte, and
// the final progress event must carry the aggregated solver statistics.
func TestServeMatchesExplore(t *testing.T) {
	ctx := context.Background()
	agent, err := soft.AgentByName("ref")
	if err != nil {
		t.Fatal(err)
	}
	test, ok := soft.TestByName("Packet Out")
	if !ok {
		t.Fatal("missing test Packet Out")
	}
	ref, err := soft.Explore(ctx, agent, test, soft.WithModels(true), soft.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	ref.Elapsed = 0
	var want bytes.Buffer
	if err := soft.WriteResults(&want, ref); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var lastStats atomic.Pointer[soft.SolverStats]
	var lastDone atomic.Int64
	type outcome struct {
		res *soft.DistResult
		err error
	}
	serveDone := make(chan outcome, 1)
	go func() {
		res, err := soft.ServeListener(ctx, ln, "ref", "Packet Out",
			soft.WithModels(true),
			soft.WithProgress(func(ev soft.Event) {
				if ev.Stats != nil {
					lastStats.Store(ev.Stats)
				}
				if int64(ev.Done) > lastDone.Load() {
					lastDone.Store(int64(ev.Done))
				}
			}))
		serveDone <- outcome{res, err}
	}()
	workDone := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			workDone <- soft.Work(ctx, ln.Addr().String(), soft.WithWorkers(2))
		}()
	}

	var res *soft.DistResult
	select {
	case o := <-serveDone:
		if o.err != nil {
			t.Fatalf("Serve: %v", o.err)
		}
		res = o.res
	case <-time.After(2 * time.Minute):
		t.Fatal("Serve did not complete")
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-workDone:
			if err != nil {
				t.Errorf("Work: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("Work did not exit")
		}
	}

	res.Elapsed = 0
	var got bytes.Buffer
	if err := res.SerializedResult.Write(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("distributed result differs from soft.Explore (%d vs %d bytes)",
			got.Len(), want.Len())
	}
	if int(lastDone.Load()) != len(ref.Paths) {
		t.Fatalf("final progress reported %d paths, want %d", lastDone.Load(), len(ref.Paths))
	}
	st := lastStats.Load()
	if st == nil {
		t.Fatal("no final progress event carried solver statistics")
	}
	if st.ClauseExports != res.SolverStats.ClauseExports || st.Queries != res.SolverStats.Queries {
		t.Fatalf("final event stats %+v differ from merged result stats %+v", *st, res.SolverStats)
	}
}
