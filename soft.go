// Package soft is the public, embeddable API for SOFT — the paper's
// two-phase pipeline for finding behavioral inconsistencies between
// OpenFlow agent implementations by symbolic execution and constraint
// solving.
//
// The pipeline mirrors the paper's deployment model (§2.4): each vendor
// privately runs phase 1 on its own agent and ships only the intermediate
// results (path conditions plus normalized output traces); phase 2
// crosschecks two such result sets with no access to either agent's
// source.
//
//	ctx := context.Background()
//	ref, _ := soft.AgentByName("ref")
//	ovs, _ := soft.AgentByName("ovs")
//	test, _ := soft.TestByName("Packet Out")
//
//	ra, _ := soft.Explore(ctx, ref, test, soft.WithModels(true))
//	rb, _ := soft.Explore(ctx, ovs, test, soft.WithModels(true))
//	rep, _ := soft.CrossCheck(ctx, soft.Group(ra), soft.Group(rb))
//	for _, inc := range rep.Inconsistencies {
//		fmt.Println(inc) // behavioral difference + concrete witness input
//	}
//
// Every entry point takes a context.Context: cancelling it mid-run stops
// exploration at the next path boundary (or the crosscheck at the next
// group pair) and returns the partial result with its Truncated/Partial
// and Cancelled flags set. Exhaustive explorations are deterministic: the
// same agent and test produce byte-identical serialized results for any
// worker count.
//
// Agents are looked up through a process-wide registry. The three
// evaluation agents ("ref", "modified", "ovs") register themselves when
// this package is imported; embedders add their own implementations with
// RegisterAgent. Custom programs under test that are not full OpenFlow
// agents can be explored directly as a Handler via ExploreHandler.
package soft

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"github.com/soft-testing/soft/internal/agents"
	"github.com/soft-testing/soft/internal/agents/modified"
	_ "github.com/soft-testing/soft/internal/agents/ovs"       // register "ovs"
	_ "github.com/soft-testing/soft/internal/agents/refswitch" // register "ref"
	"github.com/soft-testing/soft/internal/crosscheck"
	"github.com/soft-testing/soft/internal/dataplane"
	"github.com/soft-testing/soft/internal/group"
	"github.com/soft-testing/soft/internal/harness"
	"github.com/soft-testing/soft/internal/report"
	"github.com/soft-testing/soft/internal/solver"
	"github.com/soft-testing/soft/internal/sym"
	"github.com/soft-testing/soft/internal/symbuf"
	"github.com/soft-testing/soft/internal/symexec"
)

// The pipeline's data types. These are aliases for the implementation
// packages' types, so the public API and the internal engine share one set
// of values with no conversion layer.
type (
	// Agent is a testable OpenFlow agent implementation; Instance is one
	// running connection's state. Embedders implement both to put their own
	// agent under test.
	Agent    = agents.Agent
	Instance = agents.Instance

	// Test is one input sequence (a Table 1 row); Input is one element of
	// it: an OpenFlow control message or a data plane probe.
	Test  = harness.Test
	Input = harness.Input

	// Result is a phase-1 exploration result for one (agent, test) pair —
	// the "intermediate result" a vendor ships to the crosscheck. Write
	// serializes it to the versioned results-file format; ReadResults
	// parses it back as a SerializedResult.
	Result     = harness.Result
	PathResult = harness.PathResult

	// SerializedResult is the crosscheck-phase view of a Result after a
	// round trip through the results-file format; SerializedPath is one of
	// its paths.
	SerializedResult = harness.SerializedResult
	SerializedPath   = harness.SerializedPath

	// Grouped is a phase-1 result grouped by distinct output behavior;
	// OutputGroup is one behavior and the input subspace producing it.
	Grouped     = group.Result
	OutputGroup = group.Group

	// Report is the crosscheck outcome; Inconsistency is one discovered
	// behavioral difference with its concrete witness input.
	Report        = crosscheck.Report
	Inconsistency = crosscheck.Inconsistency

	// Expr is a symbolic bitvector or boolean expression; Assignment maps
	// input variable names to concrete values (a witness or test case).
	Expr       = sym.Expr
	Assignment = sym.Assignment

	// Handler is a program under test executed directly by the engine;
	// ExecContext is the per-path execution context it receives.
	Handler       = symexec.Handler
	ExecContext   = symexec.Context
	HandlerResult = symexec.Result
	Path          = symexec.Path

	// Strategy orders path exploration (see DFS, BFS, RandomStrategy,
	// CoverageOptimized, Interleaved).
	Strategy = symexec.Strategy

	// Solver is the constraint-solving façade shared across pipeline
	// stages; it is safe for concurrent use and caches query results in a
	// sharded, single-flight cache.
	Solver = solver.Solver

	// SolverStats aggregates solver work for one pipeline stage: queries,
	// cache hits, solve time, and — with clause sharing on — learned-clause
	// exports and imports. Carried by Result.SolverStats, Report.SolverStats
	// and the final progress Event of each stage.
	SolverStats = solver.Stats

	// MsgBuffer is a symbolic OpenFlow message under construction; Packet
	// is a data plane probe. Both appear in the Instance interface.
	MsgBuffer = symbuf.Buffer
	Packet    = dataplane.Packet

	// InjectedFinding is one §5.1.1 injected-modification verdict.
	InjectedFinding = report.InjectedFinding
)

// The §5.1.1 injected-modification experiment constants: how many changes
// the Modified Switch carries and how many SOFT's test suite can observe.
const (
	InjectedModifications           = modified.TotalModifications
	DetectableInjectedModifications = modified.DetectableModifications
)

// RegisterAgent adds an agent factory to the process-wide registry under a
// canonical name plus optional aliases, making it available to AgentByName
// and to the soft CLI. It panics if a name is already taken.
func RegisterAgent(name string, factory func() Agent, aliases ...string) {
	agents.Register(name, factory, aliases...)
}

// AgentByName instantiates a registered agent. The error for an unknown
// name lists every registered agent.
func AgentByName(name string) (Agent, error) { return agents.ByName(name) }

// Agents returns the canonical names of all registered agents, sorted.
func Agents() []string { return agents.Names() }

// Tests returns the evaluation test suite (Table 1).
func Tests() []Test { return harness.Tests() }

// TestByName finds a test by its Table 1 name.
func TestByName(name string) (Test, bool) { return harness.TestByName(name) }

// NewSolver returns a fresh solver. Pass it with WithSolver to share one
// query cache across several Explore and CrossCheck calls.
func NewSolver() *Solver { return solver.New() }

// Explore symbolically executes agent a on test t — the whole of SOFT's
// phase 1 for one (agent, test) pair. Cancelling ctx stops exploration at
// the next path boundary; the partial Result is still returned, with
// Truncated and Cancelled set. The error is reserved for invalid
// arguments.
func Explore(ctx context.Context, a Agent, t Test, opts ...Option) (*Result, error) {
	if a == nil {
		return nil, errors.New("soft: Explore: nil agent")
	}
	if t.Inputs == nil {
		return nil, fmt.Errorf("soft: Explore: test %q has no input builder", t.Name)
	}
	cfg := newConfig(opts)
	ho := harness.Options{
		MaxPaths:      cfg.maxPaths,
		MaxDepth:      cfg.maxDepth,
		Strategy:      cfg.strategy,
		WantModels:    cfg.models,
		Solver:        cfg.solver,
		Workers:       cfg.workers,
		ClauseSharing: cfg.clauseSharing,
		Incremental:   cfg.incremental,
		Merge:         cfg.merge,
		CanonicalCut:  cfg.canonicalCutOr(false),
	}
	agent, test := a.Name(), t.Name
	var pq *progressQueue
	if cfg.progress != nil {
		pq = newProgressQueue(cfg.progress)
		ho.Progress = func(n int) {
			pq.send(Event{Phase: PhaseExplore, Agent: agent, Test: test, Done: n})
		}
	}
	res := harness.ExploreContext(ctx, a, t, ho)
	if pq != nil {
		// Final event: the stage's solver statistics, for observability of
		// cache and clause-sharing efficacy without a profiler. Total stays
		// 0 per the PhaseExplore contract (the workload is never known in
		// advance, and a truncated run completed only part of it).
		pq.close(Event{
			Phase: PhaseExplore, Agent: agent, Test: test,
			Done:  len(res.Paths),
			Stats: &res.SolverStats,
		})
	}
	return res, nil
}

// ExploreHandler symbolically executes an arbitrary handler — the phase-1
// engine without the OpenFlow harness, for embedders testing their own
// drivers (the package example and the quickstart use it for the paper's
// Figure 1 toy agents). Cancellation behaves as in Explore.
func ExploreHandler(ctx context.Context, h Handler, opts ...Option) (*HandlerResult, error) {
	if h == nil {
		return nil, errors.New("soft: ExploreHandler: nil handler")
	}
	cfg := newConfig(opts)
	eng := &symexec.Engine{
		Solver:        cfg.solver,
		Strategy:      cfg.strategy,
		MaxPaths:      cfg.maxPaths,
		MaxDepth:      cfg.maxDepth,
		WantModels:    cfg.models,
		Workers:       cfg.workers,
		ClauseSharing: cfg.clauseSharing,
		Incremental:   cfg.incremental,
		Merge:         cfg.merge,
		CanonicalCut:  cfg.canonicalCutOr(false),
	}
	var pq *progressQueue
	if cfg.progress != nil {
		pq = newProgressQueue(cfg.progress)
		eng.Progress = func(n int) {
			pq.send(Event{Phase: PhaseExplore, Done: n})
		}
	}
	res := eng.RunContext(ctx, h)
	if pq != nil {
		// Queries stays zero: a raw handler run never touches the solver
		// façade (feasibility runs on path-private SAT cores and is
		// reported separately as HandlerResult.BranchQueries), and the
		// field must mean the same thing here as in Explore's final event.
		pq.close(Event{
			Phase: PhaseExplore,
			Done:  len(res.Paths),
			Stats: &SolverStats{
				ClauseExports: res.ClauseExports,
				ClauseImports: res.ClauseImports,
			},
		})
	}
	return res, nil
}

// Group merges a phase-1 result's paths by distinct output behavior: all
// path conditions with the same normalized trace become one disjunction
// (§3.4). Grouping is what makes the crosscheck tractable — the solver
// query count drops from |paths_A|·|paths_B| to |groups_A|·|groups_B|.
func Group(r *Result) *Grouped { return group.Paths(r.Serialized()) }

// GroupSerialized is Group for a result read back from the results-file
// format (the vendor hand-off path).
func GroupSerialized(r *SerializedResult) *Grouped { return group.Paths(r) }

// CrossCheck is SOFT's phase 2: for every pair of groups from a and b with
// different outputs it asks the solver whether both conditions can hold on
// one input — each satisfying model is a concrete witness of a behavioral
// inconsistency. Both results must come from the same test. Cancelling ctx
// stops the scan at the next group pair; the partial Report is still
// returned, with Partial and Cancelled set.
func CrossCheck(ctx context.Context, a, b *Grouped, opts ...Option) (*Report, error) {
	if a == nil || b == nil {
		return nil, errors.New("soft: CrossCheck: nil grouped result")
	}
	if a.Test != b.Test {
		return nil, fmt.Errorf("soft: CrossCheck: results are from different tests (%q vs %q)", a.Test, b.Test)
	}
	cfg := newConfig(opts)
	co := crosscheck.Opts{
		Solver:        cfg.solver,
		Budget:        cfg.budget,
		Workers:       cfg.workers,
		PrivateCaches: !cfg.sharedCache,
	}
	var maxDone, lastTotal atomic.Int64
	var pq *progressQueue
	if cfg.progress != nil {
		pq = newProgressQueue(cfg.progress)
		agentA, agentB, test := a.Agent, b.Agent, a.Test
		co.Progress = func(done, total int) {
			for { // track the high-water mark; counts may arrive out of order
				cur := maxDone.Load()
				if int64(done) <= cur || maxDone.CompareAndSwap(cur, int64(done)) {
					break
				}
			}
			lastTotal.Store(int64(total))
			pq.send(Event{
				Phase: PhaseCrossCheck, Agent: agentA, AgentB: agentB,
				Test: test, Done: done, Total: total,
			})
		}
	}
	rep := crosscheck.RunOpts(ctx, a, b, co)
	if pq != nil {
		// Final event: the stage's aggregated solver statistics.
		pq.close(Event{
			Phase: PhaseCrossCheck, Agent: a.Agent, AgentB: b.Agent,
			Test: a.Test, Done: int(maxDone.Load()), Total: int(lastTotal.Load()),
			Stats: &rep.SolverStats,
		})
	}
	return rep, nil
}

// ReadResults parses a serialized phase-1 results file (the soft-results
// v1 format produced by Result.Write / WriteResults).
func ReadResults(r io.Reader) (*SerializedResult, error) { return harness.ReadResults(r) }

// WriteResults serializes a phase-1 result to the results-file format.
func WriteResults(w io.Writer, r *Result) error { return r.Write(w) }

// Reproduce renders a test's input sequence under a witness assignment
// into concrete OpenFlow wire messages — the ready-made test case SOFT
// constructs per inconsistency (§2.3).
func Reproduce(t Test, witness Assignment) [][]byte { return harness.Reproduce(t, witness) }

// DescribeReproducer labels reproducer wire messages for display.
func DescribeReproducer(wires [][]byte) []string { return harness.DescribeReproducer(wires) }

// CheckSat asks the solver whether the conjunction of conds is
// satisfiable, returning a satisfying assignment when it is.
func CheckSat(s *Solver, conds ...*Expr) (bool, Assignment) {
	if s == nil {
		s = solver.New()
	}
	res, model := s.Check(conds...)
	return res == solver.Sat, model
}

// Classify maps an inconsistency to its §5.1.2 class name (crash, silent
// drop, missing error message, validation order, missing feature, ...).
func Classify(inc Inconsistency) string { return report.Classify(inc) }

// InjectedFindings runs the §5.1.1 experiment — the full suite, Modified
// Switch versus Reference Switch — and reports which of the seven injected
// modifications were pinpointed. WithBudget and WithMaxPaths bound the
// underlying runs.
func InjectedFindings(opts ...Option) []InjectedFinding {
	cfg := newConfig(opts)
	return report.InjectedData(report.Options{MaxPaths: cfg.maxPaths, CheckBudget: cfg.budget})
}
