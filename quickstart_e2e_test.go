package soft

import (
	"strings"
	"testing"

	"github.com/soft-testing/soft/internal/agents"
	"github.com/soft-testing/soft/internal/agents/ovs"
	"github.com/soft-testing/soft/internal/agents/refswitch"
	"github.com/soft-testing/soft/internal/crosscheck"
	"github.com/soft-testing/soft/internal/group"
	"github.com/soft-testing/soft/internal/harness"
	"github.com/soft-testing/soft/internal/openflow"
	"github.com/soft-testing/soft/internal/solver"
	"github.com/soft-testing/soft/internal/sym"
	"github.com/soft-testing/soft/internal/symexec"
)

// TestQuickstartFigure1 is the examples/quickstart flow as a library call:
// the paper's §2.3 worked example must end in exactly one inconsistency —
// Agent 1 accepts the controller port where Agent 2 rejects it — with the
// golden witness p = 0xfffd. The exploration runs on 4 workers, so this is
// also an end-to-end check of the parallel engine.
func TestQuickstartFigure1(t *testing.T) {
	agent1 := func(ctx *symexec.Context) {
		p := ctx.NewSym("port", 16)
		switch {
		case ctx.Branch(sym.EqConst(p, uint64(openflow.PortController))):
			ctx.Emit("CTRL")
		case ctx.Branch(sym.Ult(p, sym.Const(16, 25))):
			ctx.Emit("FWD")
		default:
			ctx.Emit("ERR")
		}
	}
	agent2 := func(ctx *symexec.Context) {
		p := ctx.NewSym("port", 16)
		if ctx.Branch(sym.Ult(p, sym.Const(16, 25))) {
			ctx.Emit("FWD")
		} else {
			ctx.Emit("ERR")
		}
	}

	explore := func(h symexec.Handler, wantPaths int) map[string]*sym.Expr {
		eng := &symexec.Engine{Workers: 4}
		res := eng.Run(h)
		if len(res.Paths) != wantPaths {
			t.Fatalf("got %d paths, want %d", len(res.Paths), wantPaths)
		}
		groups := map[string]*sym.Expr{}
		for _, p := range res.Paths {
			out := p.Outputs[0].(string)
			cond := p.Condition()
			if prev, ok := groups[out]; ok {
				cond = sym.LOr(prev, cond)
			}
			groups[out] = cond
		}
		return groups
	}
	g1 := explore(agent1, 3)
	g2 := explore(agent2, 2)

	s := solver.New()
	type finding struct{ out1, out2 string }
	var found []finding
	var witness uint64
	for out1, c1 := range g1 {
		for out2, c2 := range g2 {
			if out1 == out2 {
				continue
			}
			if res, model := s.Check(c1, c2); res == solver.Sat {
				found = append(found, finding{out1, out2})
				witness = model["port"]
			}
		}
	}
	if len(found) != 1 {
		t.Fatalf("got %d inconsistencies, want exactly 1: %v", len(found), found)
	}
	if found[0].out1 != "CTRL" || found[0].out2 != "ERR" {
		t.Fatalf("wrong inconsistency %v, want CTRL vs ERR", found[0])
	}
	if witness != uint64(openflow.PortController) {
		t.Fatalf("witness %#x, want %#x (OFPP_CONTROLLER)", witness, uint64(openflow.PortController))
	}
}

// exploreGrouped runs the full phase-1 + grouping pipeline for one agent,
// with the parallel engine.
func exploreGrouped(t *testing.T, a agents.Agent, test string) *group.Result {
	t.Helper()
	tt, ok := harness.TestByName(test)
	if !ok {
		t.Fatalf("missing test %s", test)
	}
	r := harness.Explore(a, tt, harness.Options{WantModels: true, Workers: 4})
	return group.Paths(r.Serialized())
}

// TestQuickstartFullPipeline explores both real agent models in parallel,
// groups, crosschecks, and asserts the known §5.1.2 inconsistency classes
// are found: the Packet Out controller-port/set-vlan crash of the reference
// switch, and the silently ignored statistics requests.
func TestQuickstartFullPipeline(t *testing.T) {
	t.Run("Packet Out", func(t *testing.T) {
		ga := exploreGrouped(t, refswitch.New(), "Packet Out")
		gb := exploreGrouped(t, ovs.New(), "Packet Out")
		rep := crosscheck.RunParallel(ga, gb, nil, 0, 4)
		if len(rep.Inconsistencies) == 0 {
			t.Fatal("expected inconsistencies")
		}
		crashFound := false
		for _, inc := range rep.Inconsistencies {
			if inc.ACrashed && !inc.BCrashed {
				port := inc.Witness["po.out.port"]
				act := inc.Witness["po.act0.type"]
				if port == 0xfffd || act == 1 {
					crashFound = true
					break
				}
			}
		}
		if !crashFound {
			t.Fatal("controller-port / set-vlan crash inconsistency template not found")
		}
	})
	t.Run("Stats Request", func(t *testing.T) {
		ga := exploreGrouped(t, refswitch.New(), "Stats Request")
		gb := exploreGrouped(t, ovs.New(), "Stats Request")
		rep := crosscheck.RunParallel(ga, gb, nil, 0, 4)
		silentFound := false
		for _, inc := range rep.Inconsistencies {
			if inc.ACanonical == "<silent>" && strings.Contains(inc.BCanonical, "ERROR") {
				silentFound = true
				break
			}
		}
		if !silentFound {
			t.Fatal("silent-vs-error inconsistency template not found")
		}
	})
}

// TestCrosscheckParallelMatchesSequential: the fanned-out cross product must
// report the identical inconsistency list, in the same order, as the
// sequential scan.
func TestCrosscheckParallelMatchesSequential(t *testing.T) {
	ga := exploreGrouped(t, refswitch.New(), "Packet Out")
	gb := exploreGrouped(t, ovs.New(), "Packet Out")
	seq := crosscheck.Run(ga, gb, solver.New(), 0)
	par := crosscheck.RunParallel(ga, gb, solver.New(), 0, 4)
	if seq.Queries != par.Queries {
		t.Fatalf("queries differ: %d vs %d", seq.Queries, par.Queries)
	}
	if len(seq.Inconsistencies) != len(par.Inconsistencies) {
		t.Fatalf("inconsistency counts differ: %d vs %d",
			len(seq.Inconsistencies), len(par.Inconsistencies))
	}
	for i := range seq.Inconsistencies {
		if seq.Inconsistencies[i].String() != par.Inconsistencies[i].String() {
			t.Fatalf("inconsistency %d differs:\n--- seq\n%s\n--- par\n%s",
				i, seq.Inconsistencies[i], par.Inconsistencies[i])
		}
	}
}
