package soft

import (
	"context"
	"net"

	"github.com/soft-testing/soft/internal/dist"
	"github.com/soft-testing/soft/internal/harness"
)

// DistResult is the outcome of a distributed exploration (Serve): the
// serialized phase-1 result — byte-identical to a single-process Explore
// with the same configuration — plus the run counters aggregated across
// every worker. Write it with its SerializedResult.Write method; downstream
// phases (Group, CrossCheck) consume the serialized form anyway.
type DistResult = harness.MergedResult

// Serve runs SOFT's phase 1 distributed across worker processes — the
// paper's Cloud9-on-a-cluster deployment (§3.2) rebuilt on the
// reproduction's determinism guarantees. The coordinator listens on addr,
// splits the exploration frontier into decision-prefix subtrees, leases
// them to every Work process that connects, and merges the shard outputs in
// canonical decision-prefix order, so the result is byte-identical to
// `Explore` run in one process (workers that crash mid-shard only cost a
// re-lease; shards explored twice return identical bytes and the duplicate
// is dropped).
//
// The job is named by registry keys — agent (see RegisterAgent/Agents) and
// test (see Tests) — because workers resolve it in their own process; both
// coordinator and workers must run a binary with the agent registered.
// MaxPaths truncation defaults to the canonical cut (WithCanonicalCut), so
// even truncated distributed runs are reproducible. Cancelling ctx aborts
// the run with its error: a partial distributed run has no deterministic
// meaning, so no result is returned.
//
// Serve blocks until the run completes. Options: WithMaxPaths,
// WithMaxDepth, WithModels, WithClauseSharing (forwarded to workers),
// WithShardDepth, WithAdaptiveShards (progress-driven shard balancing),
// WithLeaseTimeout, WithCanonicalCut, WithProgress, WithLog.
//
// Serve runs exactly one (agent, test) job and then shuts its fleet down;
// campaigns that drain a whole matrix over one persistent fleet use
// RunMatrix with WithFleetListener.
func Serve(ctx context.Context, addr, agent, test string, opts ...Option) (*DistResult, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	return ServeListener(ctx, ln, agent, test, opts...)
}

// ServeListener is Serve on an existing listener — for callers that bind
// ":0" and need the chosen address, or that manage the socket themselves.
// The listener is closed when the run ends.
func ServeListener(ctx context.Context, ln net.Listener, agent, test string, opts ...Option) (*DistResult, error) {
	cfg := newConfig(opts)
	dc := dist.Config{
		AgentName:      agent,
		TestName:       test,
		MaxPaths:       cfg.maxPaths,
		MaxDepth:       cfg.maxDepth,
		WantModels:     cfg.models,
		ClauseSharing:  cfg.clauseSharing,
		Incremental:    cfg.incremental,
		Merge:          cfg.merge,
		NoCanonicalCut: !cfg.canonicalCutOr(true),
		ShardDepth:     cfg.shardDepth,
		AdaptiveShards: cfg.adaptiveShards,
		LeaseTimeout:   cfg.leaseTimeout,
		Logger:         cfg.logger,
		Log:            cfg.log,
	}
	var pq *progressQueue
	if cfg.progress != nil {
		pq = newProgressQueue(cfg.progress)
		dc.Progress = func(done int) {
			pq.send(Event{Phase: PhaseExplore, Agent: agent, Test: test, Done: done})
		}
	}
	res, err := dist.Serve(ctx, ln, dc)
	if err != nil {
		if pq != nil {
			pq.close()
		}
		return nil, err
	}
	if pq != nil {
		// Final event: solver statistics aggregated across the coordinator's
		// split run and every worker shard — the same shape Explore's final
		// event carries, so -v style consumers work unchanged.
		pq.close(Event{
			Phase: PhaseExplore, Agent: agent, Test: test,
			Done:  len(res.Paths),
			Stats: &res.SolverStats,
		})
	}
	return res, nil
}

// Work runs a distributed exploration worker: it connects to a Serve
// coordinator at addr, explores the shard leases it is handed (each with
// the in-process parallel engine — WithWorkers sets the per-shard
// parallelism), streams progress back, and returns nil when the coordinator
// completes the run. Cancelling ctx abandons the current shard without
// shipping a partial result; the coordinator re-leases it elsewhere.
//
// The agent under test must be registered in this process (RegisterAgent;
// the built-in agents register on import). Options: WithWorkers,
// WithWorkerName, WithLog.
func Work(ctx context.Context, addr string, opts ...Option) error {
	cfg := newConfig(opts)
	return dist.Work(ctx, addr, dist.WorkerConfig{
		Name:    cfg.workerName,
		Workers: cfg.workers,
		Logger:  cfg.logger,
		Log:     cfg.log,
	})
}
