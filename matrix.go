package soft

import (
	"context"

	"github.com/soft-testing/soft/internal/dist"
	"github.com/soft-testing/soft/internal/sched"
	"github.com/soft-testing/soft/internal/store"
)

// Campaign-mode types. A campaign runs the whole (agents × tests)
// evaluation matrix — the paper's full crosscheck experiment — as one
// scheduled unit, optionally over a persistent worker fleet and an
// incremental result store.
type (
	// MatrixReport is a campaign outcome: per-cell phase-1 results,
	// per-pair crosscheck reports, and fleet/solver/cache statistics. Its
	// Write method renders the canonical machine-readable form, which is
	// byte-identical across runs of the same campaign regardless of fleet
	// layout, worker crashes, or cache hits.
	MatrixReport = sched.Report
	// MatrixCell is one (agent, test) exploration cell.
	MatrixCell = sched.Cell
	// MatrixCheck is one crosschecked agent pair on one test.
	MatrixCheck = sched.PairCheck
	// FleetStats counts worker-fleet lifecycle events (connections,
	// leases, re-leases, adaptive splits, coalesced batches).
	FleetStats = dist.FleetStats
)

// ErrProtocolMismatch is wrapped by Work's error when a coordinator
// refuses this binary's distributed-protocol version; deploy matching
// binaries on both sides.
var ErrProtocolMismatch = dist.ErrVersionMismatch

// CodeVersion is the running binary's code-version string as used in
// campaign cache keys: the VCS revision it was built from (with a +dirty
// marker for modified trees) when available. Cached campaign cells are
// keyed by it, so rebuilding from new code re-explores every cell; pin it
// explicitly with WithCodeVersion in deployments with their own build
// identifiers.
func CodeVersion() string { return store.DefaultCodeVersion() }

// RunMatrix runs a campaign: SOFT's phase 1 for every (agent, test) cell
// of the matrix, then — unless disabled with WithCrossCheck(false) —
// phase 2 for every agent pair on every test. Agents and tests are named
// by registry keys (RegisterAgent/Agents, Tests); an empty agents slice
// means every registered agent, an empty tests slice the whole evaluation
// suite.
//
// Cells are deterministic and independently cacheable:
//
//   - With WithFleetListener, non-cached cells run as jobs on a persistent
//     dist worker fleet (soft work processes connect once and drain the
//     whole matrix); without it, cells are explored in-process. Either way
//     each cell's result is byte-identical to `Explore` of that cell (with
//     the canonical MaxPaths cut), and the campaign report is
//     byte-identical across layouts and worker crashes.
//
//   - With WithStore, results and grouping constructions are cached in a
//     content-addressed on-disk store keyed by (agent, test, engine
//     config, code version); a warm re-run hits the store for every
//     unchanged cell and only explores what changed.
//
//   - With WithCampaignService, the whole campaign is submitted as one job
//     to an always-on `soft campaignd` coordinator and the canonical
//     report is fetched back — byte-identical to running it here.
//
// Cancelling ctx aborts the campaign with ctx's error (a partial campaign
// has no deterministic meaning). Options: WithMaxPaths, WithMaxDepth,
// WithModels, WithClauseSharing, WithWorkers, WithBudget, WithStore,
// WithCodeVersion, WithFleetListener, WithShardDepth, WithAdaptiveShards,
// WithLeaseTimeout, WithCrossCheck, WithCampaignService, WithTenant,
// WithScenarios, WithProgress, WithLog.
func RunMatrix(ctx context.Context, agents, tests []string, opts ...Option) (*MatrixReport, error) {
	cfg := newConfig(opts)
	if len(agents) == 0 {
		agents = Agents()
	}
	if len(tests) == 0 {
		for _, t := range Tests() {
			tests = append(tests, t.Name)
		}
	}
	if len(cfg.scenarios) > 0 {
		// Scenario columns ride the tests axis: cells become
		// agent × test∪scenario, and every downstream layer (store,
		// fleet, campaign service) schedules them identically.
		tests = append(append([]string(nil), tests...), cfg.scenarios...)
	}
	if cfg.campaignURL != "" {
		return runMatrixRemote(ctx, cfg, agents, tests)
	}
	o := sched.Options{
		MaxPaths:      cfg.maxPaths,
		MaxDepth:      cfg.maxDepth,
		Models:        cfg.models,
		ClauseSharing: cfg.clauseSharing,
		Incremental:   cfg.incremental,
		Merge:         cfg.merge,
		Workers:       cfg.workers,
		ShardDepth:    cfg.shardDepth,
		Adaptive:      cfg.adaptiveShards,
		CodeVersion:   cfg.codeVersion,
		CrossCheck:    !cfg.noCrossCheck,
		Budget:        cfg.budget,
		Log:           cfg.log,
	}
	if cfg.storeDir != "" {
		st, err := store.Open(cfg.storeDir)
		if err != nil {
			if cfg.fleetLn != nil {
				// The campaign owns the listener from the moment it is
				// handed over; close it on every failure path too.
				cfg.fleetLn.Close()
			}
			return nil, err
		}
		o.Store = st
	}
	if cfg.fleetLn != nil {
		fleet := dist.NewFleet(cfg.fleetLn, dist.FleetConfig{
			LeaseTimeout: cfg.leaseTimeout,
			Logger:       cfg.logger,
			Log:          cfg.log,
		})
		defer fleet.Close()
		o.Fleet = fleet
	}
	if cfg.progress != nil {
		progress := cfg.progress
		o.Progress = func(done, total int) {
			progress(Event{Phase: PhaseMatrix, Done: done, Total: total})
		}
	}
	return sched.RunMatrix(ctx, agents, tests, o)
}

// GroupCached is GroupSerialized backed by the campaign result store: the
// §4.2 BalancedOr grouping construction — the remaining phase-2 hot spot —
// is cached in storeDir keyed by (result content hash, code version), so
// repeated crosschecks of the same results file under the same code skip
// it. The returned flag reports a cache hit. Grouping is a pure function
// of the result bytes and the grouping code, so a cached construction is
// identical to a fresh one.
//
// codeVersion must match what populated the store — pass the same value
// used with WithCodeVersion, or "" for this binary's CodeVersion(). Like
// the result cache, unstamped dev builds all report "unversioned"; pin an
// explicit version when multiple binaries share a store.
func GroupCached(storeDir, codeVersion string, r *SerializedResult) (*Grouped, bool, error) {
	st, err := store.Open(storeDir)
	if err != nil {
		return nil, false, err
	}
	hash, err := store.ResultHash(r)
	if err != nil {
		return nil, false, err
	}
	if codeVersion == "" {
		codeVersion = store.DefaultCodeVersion()
	}
	if g, ok, err := st.GetGroups(hash, codeVersion); err != nil {
		return nil, false, err
	} else if ok {
		return g, true, nil
	}
	g := GroupSerialized(r)
	if err := st.PutGroups(hash, codeVersion, g); err != nil {
		return nil, false, err
	}
	return g, false, nil
}
