package soft

import (
	"github.com/soft-testing/soft/internal/obs"
)

// mProgressDropped counts incremental progress events discarded because a
// WithProgress consumer could not keep up.
var mProgressDropped = obs.NewCounter("soft_progress_events_dropped_total")

// progressQueueDepth bounds the dispatch queue. Deep enough to absorb
// callback latency spikes at full parallel-exploration throughput, small
// enough that a stuck consumer costs a fixed amount of memory.
const progressQueueDepth = 1024

// progressQueue decouples WithProgress callbacks from engine hot paths:
// worker goroutines enqueue events with a non-blocking send, and a single
// consumer goroutine invokes the user callback — so a slow or blocking
// callback can never stall exploration, and events are delivered in the
// order they were enqueued. When the consumer falls behind, incremental
// events are dropped (counted in soft_progress_events_dropped_total);
// that is always acceptable because counts are monotone high-water marks.
// Final events enqueue blocking via close, so a stage's terminal event —
// the one carrying Stats — is never lost.
type progressQueue struct {
	ch   chan Event
	done chan struct{}
}

func newProgressQueue(fn func(Event)) *progressQueue {
	q := &progressQueue{ch: make(chan Event, progressQueueDepth), done: make(chan struct{})}
	go func() {
		defer close(q.done)
		for ev := range q.ch {
			fn(ev)
		}
	}()
	return q
}

// send enqueues an incremental event without blocking, dropping it when
// the queue is full. Safe for concurrent use.
func (q *progressQueue) send(ev Event) {
	select {
	case q.ch <- ev:
	default:
		mProgressDropped.Inc()
	}
}

// close enqueues any final events (blocking — they are never dropped),
// then waits for the consumer to drain, so every callback has returned
// before the entry point does.
func (q *progressQueue) close(final ...Event) {
	for _, ev := range final {
		q.ch <- ev
	}
	close(q.ch)
	<-q.done
}
