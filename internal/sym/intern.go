package sym

import "sync"
import "sync/atomic"

// Hash-consed interning. Every constructor funnels its freshly built node
// through finish -> intern, so structurally equal expressions are (almost
// always) pointer-equal across paths and workers. That turns the engine's
// per-node memoization (bitblast's encode memo, LAnd/LOr dedup, Vars walks)
// into O(1) pointer hits instead of structural re-encodes, which is what
// makes incremental solving along the path tree pay off: sibling paths
// rebuild the same conjuncts and get back the very same *Expr.
//
// Interning is a pure optimization: Expr is immutable, so returning a
// previously built identical node never changes an answer. The table is
// capped — past the cap new nodes are returned un-interned, degrading to
// the old allocate-per-build behavior without affecting correctness.

// internShardCount spreads the table over independently locked shards so
// parallel exploration workers rarely contend.
const internShardCount = 64

// internShardCap bounds entries per shard (~1M nodes total). Exploration
// workloads hold well under this; the cap only guards pathological runs.
const internShardCap = 1 << 14

type internShard struct {
	mu sync.Mutex
	m  map[uint64][]*Expr
	n  int
}

var internShards [internShardCount]internShard

var internHits, internMisses atomic.Uint64

// intern returns the canonical node structurally equal to e, registering e
// as the canonical node on first sight. e must be fully finished (hash and
// size computed) and must not yet have escaped to any other goroutine.
func intern(e *Expr) *Expr {
	s := &internShards[e.hash%internShardCount]
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[uint64][]*Expr)
	}
	for _, cand := range s.m[e.hash] {
		if Equal(cand, e) {
			s.mu.Unlock()
			internHits.Add(1)
			return cand
		}
	}
	if s.n < internShardCap {
		s.m[e.hash] = append(s.m[e.hash], e)
		s.n++
	}
	s.mu.Unlock()
	internMisses.Add(1)
	return e
}

// InternStats reports the cumulative process-wide intern table traffic:
// hits (a construction returned an existing canonical node) and misses
// (a genuinely new node). The harness reports per-run deltas.
func InternStats() (hits, misses uint64) {
	return internHits.Load(), internMisses.Load()
}
