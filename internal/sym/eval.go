package sym

import "fmt"

// Assignment maps variable names to concrete values. Values wider than the
// variable's width are truncated during evaluation.
type Assignment map[string]uint64

// Eval evaluates e under the assignment σ. Boolean results are reported as
// 0 or 1. Unassigned variables evaluate to 0, matching how a solver model
// leaves don't-care inputs unconstrained.
func Eval(e *Expr, σ Assignment) uint64 {
	switch e.Op {
	case OpConst, OpBool:
		return e.K
	case OpVar:
		return σ[e.Name] & mask(e.W)
	case OpExtract:
		return (Eval(e.Kids[0], σ) >> e.K) & mask(e.W)
	case OpConcat:
		return (Eval(e.Kids[0], σ)<<e.Kids[1].W | Eval(e.Kids[1], σ)) & mask(e.W)
	case OpZExt:
		return Eval(e.Kids[0], σ)
	case OpAdd:
		return (Eval(e.Kids[0], σ) + Eval(e.Kids[1], σ)) & mask(e.W)
	case OpSub:
		return (Eval(e.Kids[0], σ) - Eval(e.Kids[1], σ)) & mask(e.W)
	case OpMul:
		return (Eval(e.Kids[0], σ) * Eval(e.Kids[1], σ)) & mask(e.W)
	case OpAnd:
		return Eval(e.Kids[0], σ) & Eval(e.Kids[1], σ)
	case OpOr:
		return Eval(e.Kids[0], σ) | Eval(e.Kids[1], σ)
	case OpXor:
		return Eval(e.Kids[0], σ) ^ Eval(e.Kids[1], σ)
	case OpNot:
		return ^Eval(e.Kids[0], σ) & mask(e.W)
	case OpShl:
		return (Eval(e.Kids[0], σ) << e.K) & mask(e.W)
	case OpLshr:
		return Eval(e.Kids[0], σ) >> e.K
	case OpIte:
		if Eval(e.Kids[0], σ) == 1 {
			return Eval(e.Kids[1], σ)
		}
		return Eval(e.Kids[2], σ)
	case OpEq:
		return b2u(Eval(e.Kids[0], σ) == Eval(e.Kids[1], σ))
	case OpUlt:
		return b2u(Eval(e.Kids[0], σ) < Eval(e.Kids[1], σ))
	case OpUle:
		return b2u(Eval(e.Kids[0], σ) <= Eval(e.Kids[1], σ))
	case OpLAnd:
		for _, k := range e.Kids {
			if Eval(k, σ) == 0 {
				return 0
			}
		}
		return 1
	case OpLOr:
		for _, k := range e.Kids {
			if Eval(k, σ) == 1 {
				return 1
			}
		}
		return 0
	case OpLNot:
		return 1 - Eval(e.Kids[0], σ)
	}
	panic(fmt.Sprintf("sym: eval of %v", e.Op))
}

// EvalBool evaluates a boolean expression under σ.
func EvalBool(e *Expr, σ Assignment) bool {
	checkBool(e, "EvalBool")
	return Eval(e, σ) == 1
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Substitute returns e with every variable that σ assigns replaced by the
// corresponding constant, folding through the smart constructors. Variables
// not present in σ are left symbolic.
func Substitute(e *Expr, σ Assignment) *Expr {
	memo := make(map[*Expr]*Expr)
	var sub func(*Expr) *Expr
	sub = func(n *Expr) *Expr {
		if r, ok := memo[n]; ok {
			return r
		}
		var r *Expr
		switch n.Op {
		case OpConst, OpBool:
			r = n
		case OpVar:
			if v, ok := σ[n.Name]; ok {
				r = Const(int(n.W), v)
			} else {
				r = n
			}
		default:
			kids := make([]*Expr, len(n.Kids))
			changed := false
			for i, k := range n.Kids {
				kids[i] = sub(k)
				if kids[i] != k {
					changed = true
				}
			}
			if !changed {
				r = n
			} else {
				r = rebuild(n, kids)
			}
		}
		memo[n] = r
		return r
	}
	return sub(e)
}

// Simplify rebuilds e bottom-up through the smart constructors, which apply
// constant folding and local rewrites. It preserves the value of e under
// every assignment.
func Simplify(e *Expr) *Expr {
	return Substitute(e, nil)
}

// rebuild reconstructs a node of the same operator with new children,
// passing through the smart constructors for folding.
func rebuild(n *Expr, kids []*Expr) *Expr {
	switch n.Op {
	case OpExtract:
		return Extract(kids[0], int(n.K2), int(n.K))
	case OpConcat:
		return Concat(kids[0], kids[1])
	case OpZExt:
		return ZExt(kids[0], int(n.W))
	case OpAdd:
		return Add(kids[0], kids[1])
	case OpSub:
		return Sub(kids[0], kids[1])
	case OpMul:
		return Mul(kids[0], kids[1])
	case OpAnd:
		return And(kids[0], kids[1])
	case OpOr:
		return Or(kids[0], kids[1])
	case OpXor:
		return Xor(kids[0], kids[1])
	case OpNot:
		return Not(kids[0])
	case OpShl:
		return Shl(kids[0], int(n.K))
	case OpLshr:
		return Lshr(kids[0], int(n.K))
	case OpIte:
		return Ite(kids[0], kids[1], kids[2])
	case OpEq:
		return Eq(kids[0], kids[1])
	case OpUlt:
		return Ult(kids[0], kids[1])
	case OpUle:
		return Ule(kids[0], kids[1])
	case OpLAnd:
		return LAnd(kids...)
	case OpLOr:
		return LOr(kids...)
	case OpLNot:
		return LNot(kids[0])
	}
	panic(fmt.Sprintf("sym: rebuild of %v", n.Op))
}
