package sym

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstFolding(t *testing.T) {
	cases := []struct {
		e    *Expr
		want uint64
	}{
		{Add(Const(8, 250), Const(8, 10)), 4}, // wraps mod 2^8
		{Sub(Const(16, 3), Const(16, 5)), 0xfffe},
		{Mul(Const(8, 16), Const(8, 16)), 0},
		{And(Const(8, 0xf0), Const(8, 0x3c)), 0x30},
		{Or(Const(8, 0xf0), Const(8, 0x0c)), 0xfc},
		{Xor(Const(8, 0xff), Const(8, 0x0f)), 0xf0},
		{Not(Const(4, 0b1010)), 0b0101},
		{Shl(Const(8, 1), 3), 8},
		{Lshr(Const(8, 0x80), 7), 1},
		{Extract(Const(16, 0xabcd), 15, 8), 0xab},
		{Concat(Const(8, 0xab), Const(8, 0xcd)), 0xabcd},
		{ZExt(Const(8, 0xff), 16), 0xff},
		{Ite(True, Const(8, 1), Const(8, 2)), 1},
		{Ite(False, Const(8, 1), Const(8, 2)), 2},
	}
	for i, c := range cases {
		if !c.e.IsConst() {
			t.Errorf("case %d: %v not folded to constant", i, c.e)
			continue
		}
		if got, _ := c.e.ConstVal(); got != c.want {
			t.Errorf("case %d: got %#x want %#x", i, got, c.want)
		}
	}
}

func TestBoolFolding(t *testing.T) {
	x := Var("x", 8)
	cases := []struct {
		e    *Expr
		want *Expr
	}{
		{Eq(Const(8, 3), Const(8, 3)), True},
		{Eq(Const(8, 3), Const(8, 4)), False},
		{Eq(x, x), True},
		{Ult(x, Const(8, 0)), False},
		{Ule(Const(8, 0), x), True},
		{Ule(x, Const(8, 255)), True},
		{LAnd(True, True), True},
		{LAnd(True, False), False},
		{LOr(False, False), False},
		{LOr(True, False), True},
		{LNot(LNot(EqConst(x, 1))), EqConst(x, 1)},
		{LAnd(EqConst(x, 1), EqConst(x, 1)), EqConst(x, 1)},
	}
	for i, c := range cases {
		if !Equal(c.e, c.want) {
			t.Errorf("case %d: got %v want %v", i, c.e, c.want)
		}
	}
}

func TestIdentitySimplifications(t *testing.T) {
	x := Var("x", 16)
	zero := Const(16, 0)
	ones := Const(16, 0xffff)
	cases := []struct {
		got, want *Expr
	}{
		{Add(x, zero), x},
		{Add(zero, x), x},
		{Sub(x, zero), x},
		{Sub(x, x), zero},
		{Mul(x, Const(16, 1)), x},
		{Mul(x, zero), zero},
		{And(x, ones), x},
		{And(x, zero), zero},
		{Or(x, zero), x},
		{Or(x, ones), ones},
		{Xor(x, zero), x},
		{Xor(x, x), zero},
		{Not(Not(x)), x},
		{ZExt(x, 16), x},
		{Extract(x, 15, 0), x},
		{Ite(EqConst(x, 1), x, x), x},
	}
	for i, c := range cases {
		if !Equal(c.got, c.want) {
			t.Errorf("case %d: got %v want %v", i, c.got, c.want)
		}
	}
}

func TestExtractThroughConcatAndZExt(t *testing.T) {
	hi := Var("h", 8)
	lo := Var("l", 8)
	cc := Concat(hi, lo)
	if !Equal(Extract(cc, 7, 0), lo) {
		t.Errorf("low extract of concat: got %v", Extract(cc, 7, 0))
	}
	if !Equal(Extract(cc, 15, 8), hi) {
		t.Errorf("high extract of concat: got %v", Extract(cc, 15, 8))
	}
	z := ZExt(Var("x", 8), 32)
	if !Equal(Extract(z, 7, 0), Var("x", 8)) {
		t.Errorf("extract of zext low: got %v", Extract(z, 7, 0))
	}
	if got := Extract(z, 31, 8); !got.IsConst() {
		t.Errorf("extract of zext high bits should be 0, got %v", got)
	}
	// Re-concat of adjacent extracts collapses.
	x := Var("x", 32)
	re := Concat(Extract(x, 23, 16), Extract(x, 15, 8))
	if !Equal(re, Extract(x, 23, 8)) {
		t.Errorf("adjacent extract concat: got %v", re)
	}
}

func TestEqZExtRange(t *testing.T) {
	x := Var("x", 8)
	if got := Eq(ZExt(x, 16), Const(16, 300)); !got.IsFalse() {
		t.Errorf("zext eq out-of-range: got %v", got)
	}
	want := EqConst(x, 77)
	if got := Eq(ZExt(x, 16), Const(16, 77)); !Equal(got, want) {
		t.Errorf("zext eq in-range: got %v want %v", got, want)
	}
}

func TestVars(t *testing.T) {
	e := LAnd(EqConst(Var("a", 8), 1), Ult(Var("b", 16), ZExt(Var("a", 8), 16)))
	vs := Vars(e, nil)
	if len(vs) != 2 || vs["a"] == nil || vs["b"] == nil {
		t.Fatalf("vars = %v", vs)
	}
	if vs["a"].Width() != 8 || vs["b"].Width() != 16 {
		t.Fatalf("widths wrong: %v", vs)
	}
}

func TestSizeMetric(t *testing.T) {
	x := Var("x", 8)
	if x.Size() != 0 {
		t.Errorf("var size = %d", x.Size())
	}
	e := LAnd(EqConst(x, 1), Ult(x, Const(8, 9)))
	// land + eq + ult = 3 operator nodes.
	if e.Size() != 3 {
		t.Errorf("size = %d want 3", e.Size())
	}
}

func TestEvalBasics(t *testing.T) {
	x, y := Var("x", 8), Var("y", 8)
	σ := Assignment{"x": 200, "y": 100}
	cases := []struct {
		e    *Expr
		want uint64
	}{
		{Add(x, y), 44},
		{Sub(x, y), 100},
		{Mul(x, y), (200 * 100) % 256},
		{Concat(x, y), 200<<8 | 100},
		{Extract(x, 7, 4), 200 >> 4},
		{Ite(Ult(x, y), x, y), 100},
		{Eq(x, y), 0},
		{Ule(y, x), 1},
		{LNot(Eq(x, y)), 1},
	}
	for i, c := range cases {
		if got := Eval(c.e, σ); got != c.want {
			t.Errorf("case %d (%v): got %d want %d", i, c.e, got, c.want)
		}
	}
}

// randExpr builds a random well-formed expression over variables a,b,c of
// width w, with the given depth budget. kind 0 => bitvector, 1 => boolean.
func randExpr(r *rand.Rand, depth, w int, wantBool bool) *Expr {
	if wantBool {
		if depth <= 0 {
			return Bool(r.Intn(2) == 0)
		}
		switch r.Intn(6) {
		case 0:
			return Eq(randExpr(r, depth-1, w, false), randExpr(r, depth-1, w, false))
		case 1:
			return Ult(randExpr(r, depth-1, w, false), randExpr(r, depth-1, w, false))
		case 2:
			return Ule(randExpr(r, depth-1, w, false), randExpr(r, depth-1, w, false))
		case 3:
			return LAnd(randExpr(r, depth-1, w, true), randExpr(r, depth-1, w, true))
		case 4:
			return LOr(randExpr(r, depth-1, w, true), randExpr(r, depth-1, w, true))
		default:
			return LNot(randExpr(r, depth-1, w, true))
		}
	}
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return Const(w, r.Uint64())
		default:
			return Var(string(rune('a'+r.Intn(3))), w)
		}
	}
	switch r.Intn(10) {
	case 0:
		return Add(randExpr(r, depth-1, w, false), randExpr(r, depth-1, w, false))
	case 1:
		return Sub(randExpr(r, depth-1, w, false), randExpr(r, depth-1, w, false))
	case 2:
		return Mul(randExpr(r, depth-1, w, false), randExpr(r, depth-1, w, false))
	case 3:
		return And(randExpr(r, depth-1, w, false), randExpr(r, depth-1, w, false))
	case 4:
		return Or(randExpr(r, depth-1, w, false), randExpr(r, depth-1, w, false))
	case 5:
		return Xor(randExpr(r, depth-1, w, false), randExpr(r, depth-1, w, false))
	case 6:
		return Not(randExpr(r, depth-1, w, false))
	case 7:
		return Shl(randExpr(r, depth-1, w, false), r.Intn(w))
	case 8:
		return Ite(randExpr(r, depth-1, w, true),
			randExpr(r, depth-1, w, false), randExpr(r, depth-1, w, false))
	default:
		hw := 1 + r.Intn(w-1)
		return Concat(randExpr(r, 0, hw, false), randExpr(r, 0, w-hw, false))
	}
}

// Property: Simplify preserves evaluation under random assignments.
func TestQuickSimplifyPreservesEval(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(av, bv, cv uint64, seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		e := randExpr(rr, 4, 8, rr.Intn(2) == 0)
		σ := Assignment{"a": av, "b": bv, "c": cv}
		return Eval(e, σ) == Eval(Simplify(e), σ)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Parse(String(e)) is structurally equal to Simplify(e) and
// evaluates identically.
func TestQuickParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func(av, bv, cv uint64, seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		e := randExpr(rr, 4, 16, rr.Intn(2) == 0)
		back, err := Parse(e.String())
		if err != nil {
			return false
		}
		σ := Assignment{"a": av, "b": bv, "c": cv}
		return Eval(e, σ) == Eval(back, σ)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Substitute with a full assignment yields the constant Eval yields.
func TestQuickSubstituteFull(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func(av, bv, cv uint64, seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		e := randExpr(rr, 4, 8, false)
		σ := Assignment{"a": av, "b": bv, "c": cv}
		s := Substitute(e, σ)
		v, ok := s.ConstVal()
		return ok && v == Eval(e, σ)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "(", ")", "(frob 1 2)", "(const 8)", "(const 99 1)",
		"(var 8)", "(eq (const 8 1) (const 16 1))", "(const 8 1) junk",
		"(extract 9 0 (const 8 1))", "(land (const 8 1))",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestHashStability(t *testing.T) {
	a := LAnd(EqConst(Var("p", 16), 3), Ult(Var("p", 16), Const(16, 25)))
	b := LAnd(EqConst(Var("p", 16), 3), Ult(Var("p", 16), Const(16, 25)))
	if a.Hash() != b.Hash() || !Equal(a, b) {
		t.Fatal("structurally equal expressions must have equal hashes")
	}
}

func TestWidthPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("width0", func() { Const(0, 1) })
	mustPanic("width65", func() { Const(65, 1) })
	mustPanic("addWidth", func() { Add(Const(8, 1), Const(16, 1)) })
	mustPanic("extractRange", func() { Extract(Const(8, 1), 8, 0) })
	mustPanic("concat65", func() { Concat(Const(64, 1), Const(8, 1)) })
	mustPanic("iteNotBool", func() { Ite(Const(8, 1), Const(8, 1), Const(8, 2)) })
	mustPanic("landNotBool", func() { LAnd(Const(8, 1)) })
}
