package sym

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads an expression from the canonical s-expression form produced
// by (*Expr).String. It is used to deserialize path conditions in SOFT's
// second phase, which — as in the paper — operates on symbolic execution
// outputs rather than on agent source code.
func Parse(s string) (*Expr, error) {
	p := &parser{in: s}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("sym: trailing input at %d: %q", p.pos, p.rest())
	}
	return e, nil
}

// MustParse is Parse that panics on error; for tests and constants.
func MustParse(s string) *Expr {
	e, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	in  string
	pos int
}

func (p *parser) rest() string {
	r := p.in[p.pos:]
	if len(r) > 24 {
		r = r[:24] + "..."
	}
	return r
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t' || p.in[p.pos] == '\n') {
		p.pos++
	}
}

func (p *parser) token() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if c == '(' || c == ')' || c == ' ' || c == '\t' || c == '\n' {
			break
		}
		p.pos++
	}
	return p.in[start:p.pos]
}

func (p *parser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.in) || p.in[p.pos] != c {
		return fmt.Errorf("sym: expected %q at %d, have %q", string(c), p.pos, p.rest())
	}
	p.pos++
	return nil
}

func (p *parser) int() (int, error) {
	t := p.token()
	v, err := strconv.Atoi(t)
	if err != nil {
		return 0, fmt.Errorf("sym: bad integer %q at %d", t, p.pos)
	}
	return v, nil
}

func (p *parser) uint() (uint64, error) {
	t := p.token()
	v, err := strconv.ParseUint(t, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("sym: bad unsigned integer %q at %d", t, p.pos)
	}
	return v, nil
}

func (p *parser) expr() (*Expr, error) {
	p.skipSpace()
	if p.pos >= len(p.in) {
		return nil, fmt.Errorf("sym: unexpected end of input")
	}
	if p.in[p.pos] != '(' {
		t := p.token()
		switch t {
		case "true":
			return True, nil
		case "false":
			return False, nil
		}
		return nil, fmt.Errorf("sym: unexpected token %q at %d", t, p.pos)
	}
	p.pos++ // consume '('
	op := p.token()
	var e *Expr
	var err error
	switch op {
	case "const":
		var w int
		var v uint64
		if w, err = p.int(); err == nil {
			if v, err = p.uint(); err == nil {
				e, err = safely(func() *Expr { return Const(w, v) })
			}
		}
	case "var":
		name := p.token()
		var w int
		if w, err = p.int(); err == nil {
			e, err = safely(func() *Expr { return Var(name, w) })
		}
	case "extract":
		var hi, lo int
		var k *Expr
		if hi, err = p.int(); err == nil {
			if lo, err = p.int(); err == nil {
				if k, err = p.expr(); err == nil {
					e, err = safely(func() *Expr { return Extract(k, hi, lo) })
				}
			}
		}
	case "zext":
		var w int
		var k *Expr
		if w, err = p.int(); err == nil {
			if k, err = p.expr(); err == nil {
				e, err = safely(func() *Expr { return ZExt(k, w) })
			}
		}
	case "shl", "lshr":
		var sh int
		var k *Expr
		if sh, err = p.int(); err == nil {
			if k, err = p.expr(); err == nil {
				if op == "shl" {
					e, err = safely(func() *Expr { return Shl(k, sh) })
				} else {
					e, err = safely(func() *Expr { return Lshr(k, sh) })
				}
			}
		}
	default:
		var kids []*Expr
		for {
			p.skipSpace()
			if p.pos < len(p.in) && p.in[p.pos] == ')' {
				break
			}
			var k *Expr
			if k, err = p.expr(); err != nil {
				break
			}
			kids = append(kids, k)
		}
		if err == nil {
			e, err = buildOp(op, kids)
		}
	}
	if err != nil {
		return nil, err
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return e, nil
}

func buildOp(op string, kids []*Expr) (*Expr, error) {
	need := func(n int) error {
		if len(kids) != n {
			return fmt.Errorf("sym: %s wants %d operands, have %d", op, n, len(kids))
		}
		return nil
	}
	switch op {
	case "concat":
		if err := need(2); err != nil {
			return nil, err
		}
		return safely(func() *Expr { return Concat(kids[0], kids[1]) })
	case "add", "sub", "mul", "and", "or", "xor", "eq", "ult", "ule":
		if err := need(2); err != nil {
			return nil, err
		}
		f := map[string]func(a, b *Expr) *Expr{
			"add": Add, "sub": Sub, "mul": Mul, "and": And, "or": Or,
			"xor": Xor, "eq": Eq, "ult": Ult, "ule": Ule,
		}[op]
		return safely(func() *Expr { return f(kids[0], kids[1]) })
	case "not":
		if err := need(1); err != nil {
			return nil, err
		}
		return safely(func() *Expr { return Not(kids[0]) })
	case "lnot":
		if err := need(1); err != nil {
			return nil, err
		}
		return safely(func() *Expr { return LNot(kids[0]) })
	case "ite":
		if err := need(3); err != nil {
			return nil, err
		}
		return safely(func() *Expr { return Ite(kids[0], kids[1], kids[2]) })
	case "land":
		return safely(func() *Expr { return LAnd(kids...) })
	case "lor":
		return safely(func() *Expr { return LOr(kids...) })
	}
	return nil, fmt.Errorf("sym: unknown operator %q", op)
}

// safely converts constructor panics (width mismatches in malformed input)
// into errors so that Parse never panics on untrusted data.
func safely(f func() *Expr) (e *Expr, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sym: invalid expression: %v", r)
		}
	}()
	return f(), nil
}

// ParseAll parses a whitespace-separated sequence of expressions, one per
// line, ignoring blank lines and lines starting with '#'.
func ParseAll(s string) ([]*Expr, error) {
	var out []*Expr
	for i, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := Parse(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		out = append(out, e)
	}
	return out, nil
}
