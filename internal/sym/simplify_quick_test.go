package sym

import (
	"math/rand"
	"testing"
)

// TestQuickSimplifyPreservesSemantics is the DESIGN.md §6 simplifier
// invariant: eval(simplify(e), σ) == eval(e, σ) over random expressions
// and assignments.
func TestQuickSimplifyPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vars := []*Expr{Var("a", 16), Var("b", 16), Var("c", 8)}
	var build func(d int, w int) *Expr
	build = func(d, w int) *Expr {
		if d == 0 {
			switch rng.Intn(3) {
			case 0:
				if w == 16 {
					return vars[rng.Intn(2)]
				}
				return vars[2]
			default:
				return Const(w, rng.Uint64())
			}
		}
		switch rng.Intn(10) {
		case 0:
			return Add(build(d-1, w), build(d-1, w))
		case 1:
			return Sub(build(d-1, w), build(d-1, w))
		case 2:
			return Mul(build(d-1, w), build(d-1, w))
		case 3:
			return And(build(d-1, w), build(d-1, w))
		case 4:
			return Or(build(d-1, w), build(d-1, w))
		case 5:
			return Xor(build(d-1, w), build(d-1, w))
		case 6:
			return Not(build(d-1, w))
		case 7:
			return Ite(Ult(build(d-1, w), build(d-1, w)), build(d-1, w), build(d-1, w))
		case 8:
			return Shl(build(d-1, w), rng.Intn(w))
		default:
			return Lshr(build(d-1, w), rng.Intn(w))
		}
	}
	for i := 0; i < 200; i++ {
		w := 16
		if rng.Intn(2) == 0 {
			w = 8
		}
		e := build(3, w)
		σ := Assignment{
			"a": rng.Uint64(), "b": rng.Uint64(), "c": rng.Uint64(),
		}
		if got, want := Eval(Simplify(e), σ), Eval(e, σ); got != want {
			t.Fatalf("iteration %d: simplify changed semantics of %v: %d != %d", i, e, got, want)
		}
	}
}

// TestQuickBooleanSimplify covers the boolean fragment.
func TestQuickBooleanSimplify(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a, b := Var("a", 8), Var("b", 8)
	var build func(d int) *Expr
	build = func(d int) *Expr {
		if d == 0 {
			switch rng.Intn(4) {
			case 0:
				return Eq(a, b)
			case 1:
				return Ult(a, b)
			case 2:
				return Ule(a, Const(8, rng.Uint64()&0xff))
			default:
				return Bool(rng.Intn(2) == 0)
			}
		}
		switch rng.Intn(3) {
		case 0:
			return LAnd(build(d-1), build(d-1))
		case 1:
			return LOr(build(d-1), build(d-1))
		default:
			return LNot(build(d - 1))
		}
	}
	for i := 0; i < 200; i++ {
		e := build(4)
		σ := Assignment{"a": rng.Uint64(), "b": rng.Uint64()}
		if got, want := EvalBool(Simplify(e), σ), EvalBool(e, σ); got != want {
			t.Fatalf("iteration %d: boolean simplify changed %v", i, e)
		}
	}
}

// TestQuickStringParseRoundTrip: Parse(String(e)) is structurally equal
// to e (the codec invariant the results file format relies on).
func TestQuickStringParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	x := Var("x", 32)
	var build func(d int) *Expr
	build = func(d int) *Expr {
		if d == 0 {
			if rng.Intn(2) == 0 {
				return x
			}
			return Const(32, rng.Uint64())
		}
		switch rng.Intn(6) {
		case 0:
			return Add(build(d-1), build(d-1))
		case 1:
			return ZExt(Extract(build(d-1), 15, 0), 32)
		case 2:
			return ZExt(Extract(build(d-1), 7, 0), 32)
		case 3:
			return Ite(Eq(build(d-1), build(d-1)), build(d-1), build(d-1))
		case 4:
			return Xor(build(d-1), build(d-1))
		default:
			return Not(build(d - 1))
		}
	}
	for i := 0; i < 100; i++ {
		e := build(3)
		got, err := Parse(e.String())
		if err != nil {
			t.Fatalf("iteration %d: parse %q: %v", i, e.String(), err)
		}
		if !Equal(got, e) {
			t.Fatalf("iteration %d: round trip changed %v to %v", i, e, got)
		}
	}
}
