package sym

import "fmt"

// True and False are the boolean constants.
var (
	True  = (&Expr{Op: OpBool, K: 1}).finish()
	False = (&Expr{Op: OpBool, K: 0}).finish()
)

// Bool returns the boolean constant for v.
func Bool(v bool) *Expr {
	if v {
		return True
	}
	return False
}

// Const builds a bitvector constant of width w (1..64). The value is
// truncated to w bits.
func Const(w int, v uint64) *Expr {
	checkWidth(w)
	return (&Expr{Op: OpConst, W: uint8(w), K: v & mask(uint8(w))}).finish()
}

// Var builds a bitvector variable of width w with the given name. Variable
// identity is by name: two Var calls with the same name and width denote the
// same input.
func Var(name string, w int) *Expr {
	checkWidth(w)
	if name == "" {
		panic("sym: empty variable name")
	}
	return (&Expr{Op: OpVar, W: uint8(w), Name: name}).finish()
}

func checkWidth(w int) {
	if w < 1 || w > 64 {
		panic(fmt.Sprintf("sym: width %d out of range [1,64]", w))
	}
}

func checkBV(e *Expr, ctx string) {
	if e == nil || e.IsBool() {
		panic("sym: " + ctx + ": want bitvector operand")
	}
}

func checkSameWidth(a, b *Expr, ctx string) {
	checkBV(a, ctx)
	checkBV(b, ctx)
	if a.W != b.W {
		panic(fmt.Sprintf("sym: %s: width mismatch %d vs %d", ctx, a.W, b.W))
	}
}

func checkBool(e *Expr, ctx string) {
	if e == nil || !e.IsBool() {
		panic("sym: " + ctx + ": want boolean operand")
	}
}

// Extract returns bits [hi:lo] (inclusive) of e as a bitvector of width
// hi-lo+1.
func Extract(e *Expr, hi, lo int) *Expr {
	checkBV(e, "extract")
	if lo < 0 || hi < lo || hi >= int(e.W) {
		panic(fmt.Sprintf("sym: extract [%d:%d] of width %d", hi, lo, e.W))
	}
	w := uint8(hi - lo + 1)
	if w == e.W {
		return e
	}
	if v, ok := e.ConstVal(); ok {
		return Const(int(w), v>>uint(lo))
	}
	switch e.Op {
	case OpZExt:
		inner := e.Kids[0]
		if hi < int(inner.W) {
			return Extract(inner, hi, lo)
		}
		if lo >= int(inner.W) {
			return Const(int(w), 0)
		}
	case OpConcat:
		hiPart, loPart := e.Kids[0], e.Kids[1]
		lw := int(loPart.W)
		if hi < lw {
			return Extract(loPart, hi, lo)
		}
		if lo >= lw {
			return Extract(hiPart, hi-lw, lo-lw)
		}
	case OpExtract:
		return Extract(e.Kids[0], int(e.K)+hi, int(e.K)+lo)
	}
	return (&Expr{Op: OpExtract, W: w, K: uint64(lo), K2: uint64(hi), Kids: []*Expr{e}}).finish()
}

// Concat builds the concatenation of hi (most significant) and lo (least
// significant). The result width is hi.Width()+lo.Width() and must be <= 64.
func Concat(hi, lo *Expr) *Expr {
	checkBV(hi, "concat")
	checkBV(lo, "concat")
	w := int(hi.W) + int(lo.W)
	if w > 64 {
		panic(fmt.Sprintf("sym: concat width %d > 64", w))
	}
	hv, hok := hi.ConstVal()
	lv, lok := lo.ConstVal()
	if hok && lok {
		return Const(w, hv<<uint(lo.W)|lv)
	}
	// (concat (extract x [a+n:b]) (extract x [b-1:c])) => extract x [a+n:c]
	if hi.Op == OpExtract && lo.Op == OpExtract && hi.Kids[0] == lo.Kids[0] &&
		hi.K == lo.K2+1 {
		return Extract(hi.Kids[0], int(hi.K2), int(lo.K))
	}
	if hok && hv == 0 {
		return ZExt(lo, w)
	}
	return (&Expr{Op: OpConcat, W: uint8(w), Kids: []*Expr{hi, lo}}).finish()
}

// ConcatAll concatenates parts from most significant to least significant.
func ConcatAll(parts ...*Expr) *Expr {
	if len(parts) == 0 {
		panic("sym: ConcatAll of nothing")
	}
	e := parts[0]
	for _, p := range parts[1:] {
		e = Concat(e, p)
	}
	return e
}

// ZExt zero-extends e to width w.
func ZExt(e *Expr, w int) *Expr {
	checkBV(e, "zext")
	checkWidth(w)
	if w < int(e.W) {
		panic(fmt.Sprintf("sym: zext to narrower width %d < %d", w, e.W))
	}
	if w == int(e.W) {
		return e
	}
	if v, ok := e.ConstVal(); ok {
		return Const(w, v)
	}
	if e.Op == OpZExt {
		return ZExt(e.Kids[0], w)
	}
	return (&Expr{Op: OpZExt, W: uint8(w), Kids: []*Expr{e}}).finish()
}

func binFold(op Op, a, b *Expr, f func(x, y, m uint64) uint64) *Expr {
	av, aok := a.ConstVal()
	bv, bok := b.ConstVal()
	if aok && bok {
		return Const(int(a.W), f(av, bv, mask(a.W)))
	}
	return (&Expr{Op: op, W: a.W, Kids: []*Expr{a, b}}).finish()
}

// Add returns a + b (mod 2^w).
func Add(a, b *Expr) *Expr {
	checkSameWidth(a, b, "add")
	if v, ok := a.ConstVal(); ok && v == 0 {
		return b
	}
	if v, ok := b.ConstVal(); ok && v == 0 {
		return a
	}
	return binFold(OpAdd, a, b, func(x, y, m uint64) uint64 { return (x + y) & m })
}

// Sub returns a - b (mod 2^w).
func Sub(a, b *Expr) *Expr {
	checkSameWidth(a, b, "sub")
	if v, ok := b.ConstVal(); ok && v == 0 {
		return a
	}
	if Equal(a, b) {
		return Const(int(a.W), 0)
	}
	return binFold(OpSub, a, b, func(x, y, m uint64) uint64 { return (x - y) & m })
}

// Mul returns a * b (mod 2^w).
func Mul(a, b *Expr) *Expr {
	checkSameWidth(a, b, "mul")
	if v, ok := a.ConstVal(); ok {
		if v == 0 {
			return a
		}
		if v == 1 {
			return b
		}
	}
	if v, ok := b.ConstVal(); ok {
		if v == 0 {
			return b
		}
		if v == 1 {
			return a
		}
	}
	return binFold(OpMul, a, b, func(x, y, m uint64) uint64 { return (x * y) & m })
}

// And returns the bitwise conjunction of a and b.
func And(a, b *Expr) *Expr {
	checkSameWidth(a, b, "and")
	if v, ok := a.ConstVal(); ok {
		if v == 0 {
			return a
		}
		if v == mask(a.W) {
			return b
		}
	}
	if v, ok := b.ConstVal(); ok {
		if v == 0 {
			return b
		}
		if v == mask(b.W) {
			return a
		}
	}
	if Equal(a, b) {
		return a
	}
	return binFold(OpAnd, a, b, func(x, y, m uint64) uint64 { return x & y & m })
}

// Or returns the bitwise disjunction of a and b.
func Or(a, b *Expr) *Expr {
	checkSameWidth(a, b, "or")
	if v, ok := a.ConstVal(); ok {
		if v == 0 {
			return b
		}
		if v == mask(a.W) {
			return a
		}
	}
	if v, ok := b.ConstVal(); ok {
		if v == 0 {
			return a
		}
		if v == mask(b.W) {
			return b
		}
	}
	if Equal(a, b) {
		return a
	}
	return binFold(OpOr, a, b, func(x, y, m uint64) uint64 { return (x | y) & m })
}

// Xor returns the bitwise exclusive-or of a and b.
func Xor(a, b *Expr) *Expr {
	checkSameWidth(a, b, "xor")
	if v, ok := a.ConstVal(); ok && v == 0 {
		return b
	}
	if v, ok := b.ConstVal(); ok && v == 0 {
		return a
	}
	if Equal(a, b) {
		return Const(int(a.W), 0)
	}
	return binFold(OpXor, a, b, func(x, y, m uint64) uint64 { return (x ^ y) & m })
}

// Not returns the bitwise complement of e.
func Not(e *Expr) *Expr {
	checkBV(e, "not")
	if v, ok := e.ConstVal(); ok {
		return Const(int(e.W), ^v)
	}
	if e.Op == OpNot {
		return e.Kids[0]
	}
	return (&Expr{Op: OpNot, W: e.W, Kids: []*Expr{e}}).finish()
}

// Shl returns e logically shifted left by the constant amount sh.
func Shl(e *Expr, sh int) *Expr {
	checkBV(e, "shl")
	if sh < 0 {
		panic("sym: negative shift")
	}
	if sh == 0 {
		return e
	}
	if sh >= int(e.W) {
		return Const(int(e.W), 0)
	}
	if v, ok := e.ConstVal(); ok {
		return Const(int(e.W), v<<uint(sh))
	}
	return (&Expr{Op: OpShl, W: e.W, K: uint64(sh), Kids: []*Expr{e}}).finish()
}

// Lshr returns e logically shifted right by the constant amount sh.
func Lshr(e *Expr, sh int) *Expr {
	checkBV(e, "lshr")
	if sh < 0 {
		panic("sym: negative shift")
	}
	if sh == 0 {
		return e
	}
	if sh >= int(e.W) {
		return Const(int(e.W), 0)
	}
	if v, ok := e.ConstVal(); ok {
		return Const(int(e.W), v>>uint(sh))
	}
	return (&Expr{Op: OpLshr, W: e.W, K: uint64(sh), Kids: []*Expr{e}}).finish()
}

// Ite returns cond ? a : b for bitvector arms of equal width.
func Ite(cond, a, b *Expr) *Expr {
	checkBool(cond, "ite")
	checkSameWidth(a, b, "ite")
	if cond.IsTrue() {
		return a
	}
	if cond.IsFalse() {
		return b
	}
	if Equal(a, b) {
		return a
	}
	return (&Expr{Op: OpIte, W: a.W, Kids: []*Expr{cond, a, b}}).finish()
}

// Eq returns the boolean a == b.
func Eq(a, b *Expr) *Expr {
	checkSameWidth(a, b, "eq")
	av, aok := a.ConstVal()
	bv, bok := b.ConstVal()
	if aok && bok {
		return Bool(av == bv)
	}
	if Equal(a, b) {
		return True
	}
	// Normalize constant to the right.
	if aok {
		a, b = b, a
	}
	// (eq (zext x) c) with c out of x's range is trivially false.
	if a.Op == OpZExt {
		if cv, ok := b.ConstVal(); ok {
			if cv > mask(a.Kids[0].W) {
				return False
			}
			return Eq(a.Kids[0], Const(int(a.Kids[0].W), cv))
		}
	}
	return (&Expr{Op: OpEq, Kids: []*Expr{a, b}}).finish()
}

// Ne returns the boolean a != b.
func Ne(a, b *Expr) *Expr { return LNot(Eq(a, b)) }

// EqConst returns the boolean a == v, with v as a constant of a's width.
func EqConst(a *Expr, v uint64) *Expr { return Eq(a, Const(int(a.W), v)) }

// Ult returns the boolean a <u b (unsigned).
func Ult(a, b *Expr) *Expr {
	checkSameWidth(a, b, "ult")
	av, aok := a.ConstVal()
	bv, bok := b.ConstVal()
	if aok && bok {
		return Bool(av < bv)
	}
	if bok && bv == 0 {
		return False // nothing is < 0
	}
	if aok && av == mask(a.W) {
		return False // max is < nothing
	}
	if Equal(a, b) {
		return False
	}
	return (&Expr{Op: OpUlt, Kids: []*Expr{a, b}}).finish()
}

// Ule returns the boolean a <=u b (unsigned).
func Ule(a, b *Expr) *Expr {
	checkSameWidth(a, b, "ule")
	av, aok := a.ConstVal()
	bv, bok := b.ConstVal()
	if aok && bok {
		return Bool(av <= bv)
	}
	if aok && av == 0 {
		return True
	}
	if bok && bv == mask(b.W) {
		return True
	}
	if Equal(a, b) {
		return True
	}
	return (&Expr{Op: OpUle, Kids: []*Expr{a, b}}).finish()
}

// Ugt returns the boolean a >u b.
func Ugt(a, b *Expr) *Expr { return Ult(b, a) }

// Uge returns the boolean a >=u b.
func Uge(a, b *Expr) *Expr { return Ule(b, a) }

// LAnd returns the conjunction of boolean expressions, flattening nested
// conjunctions and dropping duplicates and true constants.
func LAnd(xs ...*Expr) *Expr {
	var kids []*Expr
	seen := make(map[uint64][]*Expr)
	var add func(e *Expr) bool // returns false if the result is False
	add = func(e *Expr) bool {
		checkBool(e, "land")
		if e.IsTrue() {
			return true
		}
		if e.IsFalse() {
			return false
		}
		if e.Op == OpLAnd {
			for _, k := range e.Kids {
				if !add(k) {
					return false
				}
			}
			return true
		}
		for _, prev := range seen[e.hash] {
			if Equal(prev, e) {
				return true
			}
		}
		seen[e.hash] = append(seen[e.hash], e)
		kids = append(kids, e)
		return true
	}
	for _, x := range xs {
		if !add(x) {
			return False
		}
	}
	switch len(kids) {
	case 0:
		return True
	case 1:
		return kids[0]
	}
	return (&Expr{Op: OpLAnd, Kids: kids}).finish()
}

// LOr returns the disjunction of boolean expressions, flattening nested
// disjunctions and dropping duplicates and false constants.
func LOr(xs ...*Expr) *Expr {
	var kids []*Expr
	seen := make(map[uint64][]*Expr)
	var add func(e *Expr) bool // returns false if the result is True
	add = func(e *Expr) bool {
		checkBool(e, "lor")
		if e.IsFalse() {
			return true
		}
		if e.IsTrue() {
			return false
		}
		if e.Op == OpLOr {
			for _, k := range e.Kids {
				if !add(k) {
					return false
				}
			}
			return true
		}
		for _, prev := range seen[e.hash] {
			if Equal(prev, e) {
				return true
			}
		}
		seen[e.hash] = append(seen[e.hash], e)
		kids = append(kids, e)
		return true
	}
	for _, x := range xs {
		if !add(x) {
			return True
		}
	}
	switch len(kids) {
	case 0:
		return False
	case 1:
		return kids[0]
	}
	return (&Expr{Op: OpLOr, Kids: kids}).finish()
}

// LNot returns the boolean negation of e.
func LNot(e *Expr) *Expr {
	checkBool(e, "lnot")
	if e.IsTrue() {
		return False
	}
	if e.IsFalse() {
		return True
	}
	if e.Op == OpLNot {
		return e.Kids[0]
	}
	return (&Expr{Op: OpLNot, Kids: []*Expr{e}}).finish()
}

// Implies returns the boolean a => b.
func Implies(a, b *Expr) *Expr { return LOr(LNot(a), b) }
