// Package sym implements a bitvector/boolean expression DAG used to
// represent symbolic values and path conditions during symbolic execution.
//
// Expressions are immutable. They are created through smart constructors
// (Const, Var, Add, Eq, ...) which perform light canonicalization and
// constant folding, so that a freshly built expression is already in a
// simplified form. The package also provides evaluation under a concrete
// assignment (Eval), variable collection (Vars), a canonical textual
// rendering used for result (de)serialization (String / Parse), and size
// metrics matching what the paper reports (number of boolean operations in
// a path condition).
//
// The expression language is the quantifier-free bitvector fragment that
// OpenFlow agent models need: fixed-width bitvectors of 1..64 bits,
// extraction/concatenation, modular arithmetic, bitwise logic, unsigned
// comparisons, if-then-else, and propositional connectives. This is the
// same theory STP answers for SOFT in the paper (arrays are not needed
// because agent models address memory concretely).
package sym

import (
	"fmt"
	"strings"
)

// Op identifies the operator of an expression node.
type Op uint8

// Expression operators. Ops marked (bool) produce boolean expressions;
// the others produce bitvectors.
const (
	OpInvalid Op = iota

	OpConst   // bitvector constant: W, K
	OpVar     // bitvector variable: W, Name
	OpExtract // Extract bits [K2:K] (inclusive, K2 >= K) of Kids[0]
	OpConcat  // Kids[0] is the high part, Kids[1] the low part
	OpZExt    // zero-extend Kids[0] to width W

	OpAdd // Kids[0] + Kids[1] (mod 2^W)
	OpSub // Kids[0] - Kids[1] (mod 2^W)
	OpMul // Kids[0] * Kids[1] (mod 2^W)
	OpAnd // bitwise and
	OpOr  // bitwise or
	OpXor // bitwise xor
	OpNot // bitwise complement
	OpShl // logical shift left by constant K
	OpLshr

	OpIte // Kids[0] (bool) ? Kids[1] : Kids[2]

	OpBool // boolean constant: K is 0 or 1
	OpEq   // (bool) Kids[0] == Kids[1]
	OpUlt  // (bool) Kids[0] <u Kids[1]
	OpUle  // (bool) Kids[0] <=u Kids[1]
	OpLAnd // (bool) conjunction of Kids
	OpLOr  // (bool) disjunction of Kids
	OpLNot // (bool) negation of Kids[0]
)

var opNames = map[Op]string{
	OpConst: "const", OpVar: "var", OpExtract: "extract", OpConcat: "concat",
	OpZExt: "zext", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpAnd: "and",
	OpOr: "or", OpXor: "xor", OpNot: "not", OpShl: "shl", OpLshr: "lshr",
	OpIte: "ite", OpBool: "bool", OpEq: "eq", OpUlt: "ult", OpUle: "ule",
	OpLAnd: "land", OpLOr: "lor", OpLNot: "lnot",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Expr is a node of an immutable expression DAG. A node with W == 0 is a
// boolean expression; otherwise it is a bitvector of width W (1..64 bits).
// Expr values must only be created through the package's constructors.
type Expr struct {
	Op   Op
	W    uint8  // width in bits; 0 for boolean expressions
	K    uint64 // constant value, shift amount, or extract low bit
	K2   uint64 // extract high bit
	Name string // variable name (OpVar only)
	Kids []*Expr

	hash uint64
	size int32 // total operator nodes in the DAG, counted as a tree
}

// IsBool reports whether e is a boolean expression.
func (e *Expr) IsBool() bool { return e.W == 0 }

// Width returns the bitvector width of e, or 0 for booleans.
func (e *Expr) Width() int { return int(e.W) }

// IsConst reports whether e is a bitvector or boolean constant.
func (e *Expr) IsConst() bool { return e.Op == OpConst || e.Op == OpBool }

// ConstVal returns the constant value of e and whether e is a constant.
// For booleans the value is 0 or 1.
func (e *Expr) ConstVal() (uint64, bool) {
	if e.IsConst() {
		return e.K, true
	}
	return 0, false
}

// IsTrue reports whether e is the boolean constant true.
func (e *Expr) IsTrue() bool { return e.Op == OpBool && e.K == 1 }

// IsFalse reports whether e is the boolean constant false.
func (e *Expr) IsFalse() bool { return e.Op == OpBool && e.K == 0 }

// mask returns the w-bit mask, for 1 <= w <= 64.
func mask(w uint8) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hashMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= fnvPrime
	}
	return h
}

// finish computes and caches the structural hash and size of a node, then
// hash-conses it: the returned node is the canonical representative for the
// structure, pointer-equal across every path and worker that builds it (see
// intern.go). It is called exactly once, by the constructors, before the
// node escapes.
func (e *Expr) finish() *Expr {
	h := uint64(fnvOffset)
	h = hashMix(h, uint64(e.Op))
	h = hashMix(h, uint64(e.W))
	h = hashMix(h, e.K)
	h = hashMix(h, e.K2)
	for i := 0; i < len(e.Name); i++ {
		h = hashMix(h, uint64(e.Name[i]))
	}
	sz := int32(0)
	if e.Op != OpConst && e.Op != OpVar && e.Op != OpBool {
		sz = 1
	}
	for _, k := range e.Kids {
		h = hashMix(h, k.hash)
		sz += k.size
	}
	e.hash = h
	e.size = sz
	return intern(e)
}

// Hash returns the structural hash of e. Structurally equal expressions
// have equal hashes.
func (e *Expr) Hash() uint64 { return e.hash }

// Size returns the number of operator nodes in e counted as a tree. This is
// the "constraint size" metric the paper reports in Table 2 (number of
// boolean/bitvector operations in a path condition).
func (e *Expr) Size() int { return int(e.size) }

// Equal reports structural equality of two expressions.
func Equal(a, b *Expr) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.hash != b.hash || a.Op != b.Op || a.W != b.W || a.K != b.K ||
		a.K2 != b.K2 || a.Name != b.Name || len(a.Kids) != len(b.Kids) {
		return false
	}
	for i := range a.Kids {
		if !Equal(a.Kids[i], b.Kids[i]) {
			return false
		}
	}
	return true
}

// String renders e in a canonical s-expression form, parseable by Parse.
func (e *Expr) String() string {
	var b strings.Builder
	e.write(&b)
	return b.String()
}

func (e *Expr) write(b *strings.Builder) {
	switch e.Op {
	case OpConst:
		fmt.Fprintf(b, "(const %d %d)", e.W, e.K)
	case OpBool:
		if e.K == 1 {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case OpVar:
		fmt.Fprintf(b, "(var %s %d)", e.Name, e.W)
	case OpExtract:
		fmt.Fprintf(b, "(extract %d %d ", e.K2, e.K)
		e.Kids[0].write(b)
		b.WriteByte(')')
	case OpZExt:
		fmt.Fprintf(b, "(zext %d ", e.W)
		e.Kids[0].write(b)
		b.WriteByte(')')
	case OpShl, OpLshr:
		fmt.Fprintf(b, "(%s %d ", e.Op, e.K)
		e.Kids[0].write(b)
		b.WriteByte(')')
	default:
		b.WriteByte('(')
		b.WriteString(e.Op.String())
		for _, k := range e.Kids {
			b.WriteByte(' ')
			k.write(b)
		}
		b.WriteByte(')')
	}
}

// Vars appends the distinct variables referenced by e to dst, keyed by
// name, and returns the map. Pass nil to allocate a fresh map.
func Vars(e *Expr, dst map[string]*Expr) map[string]*Expr {
	if dst == nil {
		dst = make(map[string]*Expr)
	}
	seen := make(map[*Expr]bool)
	var walk func(*Expr)
	walk = func(n *Expr) {
		if seen[n] {
			return
		}
		seen[n] = true
		if n.Op == OpVar {
			dst[n.Name] = n
			return
		}
		for _, k := range n.Kids {
			walk(k)
		}
	}
	walk(e)
	return dst
}
