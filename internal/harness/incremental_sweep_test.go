package harness_test

import (
	"bytes"
	"strings"
	"testing"

	"github.com/soft-testing/soft/internal/agents/ovs"
	"github.com/soft-testing/soft/internal/agents/refswitch"
	"github.com/soft-testing/soft/internal/crosscheck"
	"github.com/soft-testing/soft/internal/group"
	"github.com/soft-testing/soft/internal/harness"
)

// The harness-level acceptance sweep for the incremental solver stack:
// whatever combination of assumption-stack sessions, diamond merging,
// clause sharing, and worker count explores an (agent, test) cell, the
// serialized results file — the artifact vendors exchange — must be
// byte-for-byte the file a plain sequential run writes, and the crosscheck
// verdicts derived from it must match exactly.

// solverMode is one cell of the sweep grid.
type solverMode struct {
	name               string
	incremental, merge bool
	clauseSharing      bool
	workers            int
}

func sweepModes() []solverMode {
	var modes []solverMode
	for _, workers := range []int{1, 4} {
		for _, inc := range []bool{false, true} {
			for _, sharing := range []bool{false, true} {
				modes = append(modes, solverMode{
					name:          modeName(inc, false, sharing, workers),
					incremental:   inc,
					clauseSharing: sharing,
					workers:       workers,
				})
			}
		}
		// Merge implies incremental; one merge cell per worker count keeps
		// the grid honest without doubling it.
		modes = append(modes, solverMode{
			name: modeName(true, true, false, workers), incremental: true,
			merge: true, workers: workers,
		})
	}
	return modes
}

func modeName(inc, merge, sharing bool, workers int) string {
	var sb strings.Builder
	sb.WriteString("w")
	sb.WriteByte(byte('0' + workers))
	if inc {
		sb.WriteString("+inc")
	}
	if merge {
		sb.WriteString("+merge")
	}
	if sharing {
		sb.WriteString("+share")
	}
	return sb.String()
}

// serializeResult renders a result to the results-file bytes with the
// wall-clock field zeroed (the only legitimately run-dependent field).
func serializeResult(t *testing.T, res *harness.Result) []byte {
	t.Helper()
	res.Elapsed = 0
	var buf bytes.Buffer
	if err := res.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestExploreByteIdentityAcrossSolverModes(t *testing.T) {
	tt, ok := harness.TestByName("Stats Request")
	if !ok {
		t.Fatal("Stats Request test missing")
	}
	want := serializeResult(t, harness.Explore(refswitch.New(), tt, harness.Options{
		WantModels: true, Workers: 1,
	}))
	for _, mode := range sweepModes() {
		got := serializeResult(t, harness.Explore(refswitch.New(), tt, harness.Options{
			WantModels:    true,
			Workers:       mode.workers,
			Incremental:   mode.incremental,
			Merge:         mode.merge,
			ClauseSharing: mode.clauseSharing,
		}))
		if !bytes.Equal(got, want) {
			t.Fatalf("mode %s: serialized result diverged from the sequential baseline", mode.name)
		}
	}
}

// renderReport flattens the deterministic crosscheck surface: verdict
// counts plus every inconsistency's canonical rendering.
func renderReport(rep *crosscheck.Report) string {
	var sb strings.Builder
	for _, inc := range rep.Inconsistencies {
		sb.WriteString(inc.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

func TestCrossCheckByteIdentityAcrossSolverModes(t *testing.T) {
	tt, ok := harness.TestByName("Stats Request")
	if !ok {
		t.Fatal("Stats Request test missing")
	}
	run := func(incremental, merge bool) string {
		opts := harness.Options{
			WantModels: true, Workers: 1,
			Incremental: incremental, Merge: merge,
		}
		ra := harness.Explore(refswitch.New(), tt, opts)
		rb := harness.Explore(ovs.New(), tt, opts)
		rep := crosscheck.Run(group.Paths(ra.Serialized()), group.Paths(rb.Serialized()), nil, 0)
		return renderReport(rep)
	}
	want := run(false, false)
	if got := run(true, false); got != want {
		t.Fatalf("crosscheck verdicts diverged under incremental exploration:\n--- want\n%s--- got\n%s", want, got)
	}
	if got := run(true, true); got != want {
		t.Fatalf("crosscheck verdicts diverged under merge exploration:\n--- want\n%s--- got\n%s", want, got)
	}
}
