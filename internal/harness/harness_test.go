package harness

import (
	"bytes"
	"strings"
	"testing"

	"github.com/soft-testing/soft/internal/agents/modified"
	"github.com/soft-testing/soft/internal/agents/ovs"
	"github.com/soft-testing/soft/internal/agents/refswitch"
	"github.com/soft-testing/soft/internal/openflow"
	"github.com/soft-testing/soft/internal/solver"
	"github.com/soft-testing/soft/internal/sym"
)

func TestTableOneSuiteComplete(t *testing.T) {
	names := map[string]bool{}
	for _, tt := range Tests() {
		names[tt.Name] = true
	}
	for _, want := range []string{
		"Packet Out", "Stats Request", "Set Config", "FlowMod",
		"Eth FlowMod", "CS FlowMods", "Concrete", "Short Symb",
	} {
		if !names[want] {
			t.Errorf("missing Table 1 test %q", want)
		}
	}
	if len(names) != 8 {
		t.Errorf("suite has %d tests, want 8", len(names))
	}
}

func TestInputsDeterministic(t *testing.T) {
	// The engine re-executes Inputs per path; two invocations must build
	// byte-identical buffers and identical variable names.
	for _, tt := range Tests() {
		names1 := map[string]int{}
		ns1 := func(n string, w int) *sym.Expr { names1[n] = w; return sym.Var(n, w) }
		in1 := tt.Inputs(ns1)
		names2 := map[string]int{}
		ns2 := func(n string, w int) *sym.Expr { names2[n] = w; return sym.Var(n, w) }
		in2 := tt.Inputs(ns2)
		if len(in1) != len(in2) {
			t.Fatalf("%s: input count varies", tt.Name)
		}
		if len(names1) != len(names2) {
			t.Fatalf("%s: symbolic variable sets vary", tt.Name)
		}
		for n, w := range names1 {
			if names2[n] != w {
				t.Fatalf("%s: variable %s width varies", tt.Name, n)
			}
		}
	}
}

func TestStructuredInputsPinTypeAndLength(t *testing.T) {
	// §3.2.1: message type and length must be concrete in every structured
	// test (Short Symb is the deliberate exception).
	for _, tt := range Tests() {
		if tt.Name == "Short Symb" {
			continue
		}
		for i, in := range tt.Inputs(sym.Var) {
			if in.Msg == nil {
				continue
			}
			if !in.Msg.U8(1).IsConst() {
				t.Errorf("%s input %d: symbolic message type", tt.Name, i)
			}
			if !in.Msg.U16(2).IsConst() {
				t.Errorf("%s input %d: symbolic length", tt.Name, i)
			}
		}
	}
}

func TestExplorePacketOutPartition(t *testing.T) {
	tt, _ := TestByName("Packet Out")
	r := Explore(refswitch.New(), tt, Options{WantModels: true})
	if len(r.Paths) < 20 {
		t.Fatalf("Packet Out explored only %d paths", len(r.Paths))
	}
	// The partition must contain the crash class (Packet Out to
	// OFPP_CONTROLLER) with a faithful witness.
	var crash *PathResult
	for i := range r.Paths {
		if r.Paths[i].Crashed {
			p := &r.Paths[i]
			if p.Model["po.out.port"] == uint64(openflow.PortController) ||
				p.Model["po.act0.type"] == uint64(openflow.ActSetVLANVID) {
				crash = p
				break
			}
		}
	}
	if crash == nil {
		t.Fatal("no crash path with a controller-port or set-vlan witness")
	}
}

func TestExplorePathsDisjointAndFeasible(t *testing.T) {
	// Core §3 invariant on a mid-size test: path conditions are pairwise
	// unsatisfiable and individually satisfiable.
	tt, _ := TestByName("Stats Request")
	r := Explore(refswitch.New(), tt, Options{})
	s := solver.New()
	for i := range r.Paths {
		if !s.Sat(r.Paths[i].Cond) {
			t.Fatalf("path %d infeasible", i)
		}
		for j := i + 1; j < len(r.Paths); j++ {
			if s.Sat(r.Paths[i].Cond, r.Paths[j].Cond) {
				t.Fatalf("paths %d and %d overlap", i, j)
			}
		}
	}
}

func TestExploreModelsReplayToSameTrace(t *testing.T) {
	// No-false-positive foundation: re-running the agent on a path's own
	// model must reproduce that path's canonical trace.
	tt, _ := TestByName("Stats Request")
	a := refswitch.New()
	r := Explore(a, tt, Options{WantModels: true})
	for _, p := range r.Paths {
		rr := Explore(a, concretizedTest(tt, p.Model), Options{})
		if len(rr.Paths) != 1 {
			t.Fatalf("concretized run explored %d paths", len(rr.Paths))
		}
		// The symbolic trace renders expressions; the concrete replay
		// renders their values. Equality means: same structure, and every
		// embedded expression evaluates (under the path's model) to the
		// replay's concrete value.
		got := rr.Paths[0].Trace
		if got.Template() != p.Trace.Template() {
			t.Fatalf("replay shape differs:\n got %s\nwant %s", got.Template(), p.Trace.Template())
		}
		ge, we := got.Exprs(), p.Trace.Exprs()
		if len(ge) != len(we) {
			t.Fatalf("replay expr count differs: %d vs %d", len(ge), len(we))
		}
		for k := range we {
			want := sym.Eval(we[k], p.Model)
			if gv, ok := ge[k].ConstVal(); !ok || gv != want {
				t.Fatalf("replay expr %d = %v, want %#x under model", k, ge[k], want)
			}
		}
	}
}

// concretizedTest pins every symbolic variable of t to its model value.
func concretizedTest(t Test, model sym.Assignment) Test {
	return Test{
		Name: t.Name + " (concrete)", Desc: t.Desc, MsgCount: t.MsgCount,
		Inputs: func(NewSymFn) []Input {
			return t.Inputs(func(name string, w int) *sym.Expr {
				return sym.Const(w, model[name])
			})
		},
	}
}

func TestConcreteTestSinglePath(t *testing.T) {
	tt, _ := TestByName("Concrete")
	for _, a := range []interface {
		Name() string
	}{} {
		_ = a
	}
	r := Explore(refswitch.New(), tt, Options{})
	if len(r.Paths) != 1 {
		t.Fatalf("Concrete must have exactly 1 path, got %d", len(r.Paths))
	}
	if r.Paths[0].ConstraintOps != 0 {
		t.Fatalf("Concrete path carries constraints: %d", r.Paths[0].ConstraintOps)
	}
}

func TestOVSPartitionsFinerThanRef(t *testing.T) {
	// Table 2 shape: OVS's finer validation yields more paths on the
	// packet-affecting tests.
	for _, name := range []string{"Packet Out", "Eth FlowMod"} {
		tt, _ := TestByName(name)
		ra := Explore(refswitch.New(), tt, Options{})
		rb := Explore(ovs.New(), tt, Options{})
		if len(rb.Paths) <= len(ra.Paths) {
			t.Errorf("%s: ovs %d paths not finer than ref %d", name, len(rb.Paths), len(ra.Paths))
		}
	}
}

func TestResultsRoundTrip(t *testing.T) {
	tt, _ := TestByName("Stats Request")
	r := Explore(refswitch.New(), tt, Options{WantModels: true})
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := r.Serialized()
	if got.Agent != want.Agent || got.Test != want.Test || len(got.Paths) != len(want.Paths) {
		t.Fatalf("header mismatch: %+v vs %+v", got, want)
	}
	for i := range want.Paths {
		w, g := want.Paths[i], got.Paths[i]
		if !sym.Equal(w.Cond, g.Cond) {
			t.Fatalf("path %d condition differs after round trip", i)
		}
		if w.Canonical != g.Canonical || w.Template != g.Template {
			t.Fatalf("path %d trace differs after round trip", i)
		}
		if len(w.Exprs) != len(g.Exprs) {
			t.Fatalf("path %d exprs differ", i)
		}
		for k := range w.Exprs {
			if !sym.Equal(w.Exprs[k], g.Exprs[k]) {
				t.Fatalf("path %d expr %d differs", i, k)
			}
		}
		for name, v := range w.Model {
			if g.Model[name] != v {
				t.Fatalf("path %d model %s differs", i, name)
			}
		}
	}
}

func TestReadResultsRejectsGarbage(t *testing.T) {
	if _, err := ReadResults(strings.NewReader("not a results file")); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := ReadResults(strings.NewReader("soft-results v1\n")); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestReproduceBuildsValidWire(t *testing.T) {
	tt, _ := TestByName("Packet Out")
	r := Explore(refswitch.New(), tt, Options{WantModels: true})
	decoded := 0
	for _, p := range r.Paths {
		wires := Reproduce(tt, p.Model)
		if len(wires) != 1 {
			t.Fatalf("expected 1 message, got %d", len(wires))
		}
		m, err := openflow.Decode(wires[0])
		if err != nil {
			// Witnesses of the agent's malformed-action error paths encode
			// an action whose symbolic type demands a different wire length
			// than the pinned slot; the strict decoder rejects exactly those
			// at the action level. Anything else is a broken reproducer.
			if !strings.Contains(err.Error(), "action") {
				t.Fatalf("path %d reproducer does not decode: %v", p.ID, err)
			}
			continue
		}
		decoded++
		if m.MsgType() != openflow.TypePacketOut {
			t.Fatalf("path %d reproducer decodes as %v", p.ID, m.MsgType())
		}
	}
	if decoded == 0 {
		t.Fatal("no reproducer decoded as a full Packet Out message")
	}
	desc := DescribeReproducer(Reproduce(tt, sym.Assignment{}))
	if len(desc) != 1 || desc[0] != "PACKET_OUT" {
		t.Fatalf("describe: %v", desc)
	}
}

func TestModifiedSwitchDiffersFromRef(t *testing.T) {
	// The Modified Switch must behave differently on Packet Out (flood
	// rejection + port-zero code) — the §5.1.1 detectable changes.
	tt, _ := TestByName("Packet Out")
	ra := Explore(refswitch.New(), tt, Options{})
	rb := Explore(modified.New(), tt, Options{})
	canon := func(r *Result) map[string]bool {
		out := map[string]bool{}
		for _, p := range r.Paths {
			out[p.Trace.Canonical()] = true
		}
		return out
	}
	ca, cb := canon(ra), canon(rb)
	diff := 0
	for c := range ca {
		if !cb[c] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("modified switch produced identical behaviors on Packet Out")
	}
}

func TestSetConfigAgentsAgree(t *testing.T) {
	// Table 3: Set Config shows zero inconsistencies — both agents'
	// observable behavior must coincide on the whole input space.
	tt, _ := TestByName("Set Config")
	ra := Explore(refswitch.New(), tt, Options{})
	rb := Explore(ovs.New(), tt, Options{})
	canonSet := func(r *Result) map[string]bool {
		out := map[string]bool{}
		for _, p := range r.Paths {
			out[p.Trace.Canonical()] = true
		}
		return out
	}
	ca, cb := canonSet(ra), canonSet(rb)
	for c := range ca {
		if !cb[c] {
			t.Fatalf("behavior %q only in ref", c)
		}
	}
	for c := range cb {
		if !ca[c] {
			t.Fatalf("behavior %q only in ovs", c)
		}
	}
}

func BenchmarkExplorePacketOutRef(b *testing.B) {
	tt, _ := TestByName("Packet Out")
	a := refswitch.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Explore(a, tt, Options{})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
