// Package harness drives SOFT's first phase: it defines the evaluation's
// test inputs (Table 1, the Figure 4 coverage sequences, and the Table 5
// concretization ablations), builds the structured symbolic OpenFlow
// messages they inject (§3.2.1: concrete message type and length fields,
// concrete action counts and lengths, symbolic everything else), executes
// an agent under the symbolic execution engine, and records one path
// condition plus normalized output trace per explored path.
package harness

import (
	"sync"

	"github.com/soft-testing/soft/internal/agents"
	"github.com/soft-testing/soft/internal/dataplane"
	"github.com/soft-testing/soft/internal/openflow"
	"github.com/soft-testing/soft/internal/sym"
	"github.com/soft-testing/soft/internal/symbuf"
)

// NewSymFn creates (or retrieves) a named symbolic variable — either
// symexec.Context.NewSym during exploration or sym.Var when rebuilding a
// test's inputs to concretize a reproducer.
type NewSymFn func(name string, w int) *sym.Expr

// Input is one element of a test's input sequence: an OpenFlow control
// message or a data plane probe packet.
type Input struct {
	Msg   *symbuf.Buffer
	Probe *dataplane.Packet
}

// Test is one experiment input sequence (a row of Table 1, or a
// registered scenario compiled down to the same shape).
type Test struct {
	// Name is the paper's test name ("Packet Out", "FlowMod", ...) or a
	// registered scenario name.
	Name string
	// Desc is the Table 1 description.
	Desc string
	// MsgCount is the "Message count" column of Table 2.
	MsgCount int
	// Inputs builds the input sequence. It must be deterministic: the
	// engine re-executes it on every path.
	Inputs func(newSym NewSymFn) []Input
	// DefHash identifies the input-sequence *definition* for result
	// caching. Empty for the built-in suite (whose definitions are pinned
	// by the code version); test sources whose definitions can change
	// independently of the binary (scenarios) set it so edited
	// definitions miss the store by construction.
	DefHash string
}

// header writes a concrete OpenFlow header (§3.2.1: type and length stay
// concrete so symbolic execution is not left to guess message boundaries).
func header(buf *symbuf.Buffer, t openflow.MsgType) {
	buf.PutConst(0, 1, openflow.Version)
	buf.PutConst(1, 1, uint64(t))
	buf.PutConst(2, 2, uint64(buf.Len()))
	buf.PutConst(4, 4, 0) // xid: concrete, normalized away anyway
}

// l2Payload writes a small concrete Ethernet frame at off.
func l2Payload(buf *symbuf.Buffer, off int) {
	frame := []byte{
		0, 0, 0, 0, 0, 0xaa, // dst
		0, 0, 0, 0, 0, 0xbb, // src
		0x88, 0xb5, // experimental ethertype
	}
	for i, x := range frame {
		buf.PutConst(off+i, 1, uint64(x))
	}
}

// symbolicAction8 writes an 8-byte action with symbolic type and argument.
func symbolicAction8(buf *symbuf.Buffer, off int, newSym NewSymFn, prefix string) {
	buf.Put(off, newSym(prefix+".type", 16))
	buf.PutConst(off+2, 2, 8)
	buf.Put(off+4, newSym(prefix+".arg", 32))
}

// outputAction writes a concrete OUTPUT action with a symbolic port.
func outputAction(buf *symbuf.Buffer, off int, newSym NewSymFn, prefix string) {
	buf.PutConst(off, 2, uint64(openflow.ActOutput))
	buf.PutConst(off+2, 2, 8)
	buf.Put(off+4, newSym(prefix+".port", 16))
	buf.PutConst(off+6, 2, 0xffff) // max_len
}

// concreteOutputAction writes a fully concrete OUTPUT action.
func concreteOutputAction(buf *symbuf.Buffer, off int, port uint16) {
	buf.PutConst(off, 2, uint64(openflow.ActOutput))
	buf.PutConst(off+2, 2, 8)
	buf.PutConst(off+4, 2, uint64(port))
	buf.PutConst(off+6, 2, 0xffff)
}

// symbolicPacketOut builds the Table 1 Packet Out message: one symbolic
// action plus one symbolic output action.
func symbolicPacketOut(newSym NewSymFn) *symbuf.Buffer {
	const actsLen = 16
	buf := symbuf.New(openflow.PacketOutFixedLen + actsLen + 14)
	header(buf, openflow.TypePacketOut)
	buf.Put(agents.OffPOBufferID, newSym("po.buffer_id", 32))
	buf.Put(agents.OffPOInPort, newSym("po.in_port", 16))
	buf.PutConst(agents.OffPOActionsLen, 2, actsLen)
	symbolicAction8(buf, 16, newSym, "po.act0")
	outputAction(buf, 24, newSym, "po.out")
	l2Payload(buf, 32)
	return buf
}

// symbolicFlowModOpts controls which parts of a Flow Mod stay concrete —
// the knobs of the Table 5 ablation.
type symbolicFlowModOpts struct {
	prefix string
	// concreteMatch pins the match to fully wildcarded.
	concreteMatch bool
	// ethOnly concretizes fields unrelated to Ethernet (Eth FlowMod).
	ethOnly bool
	// nSymActions is the number of leading symbolic actions.
	nSymActions int
	// nOutActions is the number of trailing symbolic output actions.
	nOutActions int
	// concreteActions replaces all actions with a single output:2.
	concreteActions bool
	// concreteMeta pins command/flags/buffer/priority/timeouts.
	concreteMeta bool
}

func symbolicFlowMod(newSym NewSymFn, o symbolicFlowModOpts) *symbuf.Buffer {
	nActs := o.nSymActions + o.nOutActions
	actsLen := nActs * 8
	if o.concreteActions {
		actsLen = 8
	}
	buf := symbuf.New(openflow.FlowModFixedLen + actsLen)
	header(buf, openflow.TypeFlowMod)
	p := o.prefix

	// Match.
	switch {
	case o.concreteMatch:
		buf.PutConst(agents.OffFMMatch+agents.MOffWildcards, 4, uint64(openflow.FWAll))
	case o.ethOnly:
		// Ethernet fields symbolic; everything else wildcarded.
		wild := openflow.FWAll &^ (openflow.FWDLSrc | openflow.FWDLDst |
			openflow.FWDLVLAN | openflow.FWDLType)
		buf.PutConst(agents.OffFMMatch+agents.MOffWildcards, 4, uint64(wild))
		buf.Put(agents.OffFMMatch+agents.MOffDLSrc, newSym(p+".match.dl_src", 48))
		buf.Put(agents.OffFMMatch+agents.MOffDLDst, newSym(p+".match.dl_dst", 48))
		buf.Put(agents.OffFMMatch+agents.MOffDLVLAN, newSym(p+".match.dl_vlan", 16))
		buf.Put(agents.OffFMMatch+agents.MOffDLType, newSym(p+".match.dl_type", 16))
	default:
		buf.Put(agents.OffFMMatch+agents.MOffWildcards, newSym(p+".match.wildcards", 32))
		buf.Put(agents.OffFMMatch+agents.MOffInPort, newSym(p+".match.in_port", 16))
		buf.Put(agents.OffFMMatch+agents.MOffDLSrc, newSym(p+".match.dl_src", 48))
		buf.Put(agents.OffFMMatch+agents.MOffDLDst, newSym(p+".match.dl_dst", 48))
		buf.Put(agents.OffFMMatch+agents.MOffDLVLAN, newSym(p+".match.dl_vlan", 16))
		buf.Put(agents.OffFMMatch+agents.MOffDLVLANPCP, newSym(p+".match.dl_vlan_pcp", 8))
		buf.Put(agents.OffFMMatch+agents.MOffDLType, newSym(p+".match.dl_type", 16))
		buf.Put(agents.OffFMMatch+agents.MOffNWTos, newSym(p+".match.nw_tos", 8))
		buf.Put(agents.OffFMMatch+agents.MOffNWProto, newSym(p+".match.nw_proto", 8))
		buf.Put(agents.OffFMMatch+agents.MOffNWSrc, newSym(p+".match.nw_src", 32))
		buf.Put(agents.OffFMMatch+agents.MOffNWDst, newSym(p+".match.nw_dst", 32))
		buf.Put(agents.OffFMMatch+agents.MOffTPSrc, newSym(p+".match.tp_src", 16))
		buf.Put(agents.OffFMMatch+agents.MOffTPDst, newSym(p+".match.tp_dst", 16))
	}

	// Metadata.
	buf.PutConst(agents.OffFMCookie, 8, 0)
	if o.concreteMeta {
		buf.PutConst(agents.OffFMCommand, 2, uint64(openflow.FCAdd))
		buf.PutConst(agents.OffFMIdle, 2, 0)
		buf.PutConst(agents.OffFMHard, 2, 0)
		buf.PutConst(agents.OffFMPriority, 2, 0x8000)
		buf.PutConst(agents.OffFMBufferID, 4, uint64(openflow.NoBuffer))
		buf.PutConst(agents.OffFMOutPort, 2, uint64(openflow.PortNone))
		buf.PutConst(agents.OffFMFlags, 2, 0)
	} else {
		buf.Put(agents.OffFMCommand, newSym(p+".command", 16))
		buf.Put(agents.OffFMIdle, newSym(p+".idle_timeout", 16))
		buf.Put(agents.OffFMHard, newSym(p+".hard_timeout", 16))
		buf.Put(agents.OffFMPriority, newSym(p+".priority", 16))
		buf.Put(agents.OffFMBufferID, newSym(p+".buffer_id", 32))
		buf.Put(agents.OffFMOutPort, newSym(p+".out_port", 16))
		buf.Put(agents.OffFMFlags, newSym(p+".flags", 16))
	}

	// Actions.
	off := agents.OffFMActions
	if o.concreteActions {
		concreteOutputAction(buf, off, 2)
		return buf
	}
	for i := 0; i < o.nSymActions; i++ {
		symbolicAction8(buf, off, newSym, p+actIndex(i))
		off += 8
	}
	for i := 0; i < o.nOutActions; i++ {
		outputAction(buf, off, newSym, p+outIndex(i))
		off += 8
	}
	return buf
}

func actIndex(i int) string { return ".act" + string(rune('0'+i)) }
func outIndex(i int) string { return ".out" + string(rune('0'+i)) }

// concreteFlowMod builds the concrete first message of the CS FlowMods
// test: ADD an exact-ish TCP rule (tp_dst=2000) outputting to port 2.
func concreteFlowMod() *symbuf.Buffer {
	buf := symbuf.New(openflow.FlowModFixedLen + 8)
	header(buf, openflow.TypeFlowMod)
	wild := openflow.FWAll &^ (openflow.FWDLType | openflow.FWNWProto | openflow.FWTPDst)
	buf.PutConst(agents.OffFMMatch+agents.MOffWildcards, 4, uint64(wild))
	buf.PutConst(agents.OffFMMatch+agents.MOffDLType, 2, dataplane.EtherTypeIPv4)
	buf.PutConst(agents.OffFMMatch+agents.MOffNWProto, 1, dataplane.ProtoTCP)
	buf.PutConst(agents.OffFMMatch+agents.MOffTPDst, 2, 2000)
	buf.PutConst(agents.OffFMCookie, 8, 7)
	buf.PutConst(agents.OffFMCommand, 2, uint64(openflow.FCAdd))
	buf.PutConst(agents.OffFMIdle, 2, 0)
	buf.PutConst(agents.OffFMHard, 2, 0)
	buf.PutConst(agents.OffFMPriority, 2, 0x8000)
	buf.PutConst(agents.OffFMBufferID, 4, uint64(openflow.NoBuffer))
	buf.PutConst(agents.OffFMOutPort, 2, uint64(openflow.PortNone))
	buf.PutConst(agents.OffFMFlags, 2, 0)
	concreteOutputAction(buf, agents.OffFMActions, 2)
	return buf
}

// symbolicSetConfig builds the Table 1 Set Config message.
func symbolicSetConfig(newSym NewSymFn) *symbuf.Buffer {
	buf := symbuf.New(openflow.SetConfigLen)
	header(buf, openflow.TypeSetConfig)
	buf.Put(agents.OffSCFlags, newSym("sc.flags", 16))
	buf.Put(agents.OffSCMissSendLen, newSym("sc.miss_send_len", 16))
	return buf
}

// symbolicStatsRequest builds the Table 1 Stats Request: symbolic type,
// flags and an 8-byte body whose port field is symbolic — "it covers all
// possible statistics requests".
func symbolicStatsRequest(newSym NewSymFn) *symbuf.Buffer {
	buf := symbuf.New(openflow.StatsRequestFixedLen + 8)
	header(buf, openflow.TypeStatsRequest)
	buf.Put(agents.OffStatsType, newSym("sr.type", 16))
	buf.Put(10, newSym("sr.flags", 16))
	buf.Put(agents.OffStatsBody, newSym("sr.port", 16))
	// Remaining body bytes stay zero (pad).
	return buf
}

// shortSymbolic builds the Table 1 Short Symb message: 10 bytes, only the
// version byte concrete — the unstructured-input comparison point of
// §3.2.1.
func shortSymbolic(newSym NewSymFn) *symbuf.Buffer {
	buf := symbuf.New(10)
	buf.PutConst(0, 1, openflow.Version)
	for i := 1; i < 10; i++ {
		buf.SetByte(i, newSym("ss.b"+string(rune('0'+i)), 8))
	}
	return buf
}

// concreteMessages builds the Table 1 Concrete test: four fixed-field
// 8-byte messages.
func concreteMessages() []Input {
	var ins []Input
	for _, t := range []openflow.MsgType{
		openflow.TypeHello, openflow.TypeFeaturesRequest,
		openflow.TypeGetConfigRequest, openflow.TypeBarrierRequest,
	} {
		buf := symbuf.New(openflow.HeaderLen)
		header(buf, t)
		ins = append(ins, Input{Msg: buf})
	}
	return ins
}

// Tests returns the Table 1 suite.
func Tests() []Test {
	return []Test{
		{
			Name:     "Packet Out",
			Desc:     "A single Packet Out message containing a symbolic action and a symbolic output action.",
			MsgCount: 1,
			Inputs: func(ns NewSymFn) []Input {
				return []Input{{Msg: symbolicPacketOut(ns)}}
			},
		},
		{
			Name:     "Stats Request",
			Desc:     "A single symbolic Stats Req. It covers all possible statistics requests.",
			MsgCount: 1,
			Inputs: func(ns NewSymFn) []Input {
				return []Input{{Msg: symbolicStatsRequest(ns)}}
			},
		},
		{
			Name:     "Set Config",
			Desc:     "A symbolic Set Config message followed by a probing TCP packet.",
			MsgCount: 2,
			Inputs: func(ns NewSymFn) []Input {
				return []Input{
					{Msg: symbolicSetConfig(ns)},
					{Probe: dataplane.TCPProbe(1)},
				}
			},
		},
		{
			Name:     "FlowMod",
			Desc:     "A symbolic Flow Mod with 1 symbolic action and a symbolic output action followed by a probing TCP packet.",
			MsgCount: 2,
			Inputs: func(ns NewSymFn) []Input {
				return []Input{
					{Msg: symbolicFlowMod(ns, symbolicFlowModOpts{
						prefix: "fm", nSymActions: 1, nOutActions: 1,
					})},
					{Probe: dataplane.TCPProbe(1)},
				}
			},
		},
		{
			Name:     "Eth FlowMod",
			Desc:     "Symbolic Flow Mod with 1 symbolic action and a symbolic output action. Fields not related to Ethernet are concretized. The message is followed by a probing Ethernet packet.",
			MsgCount: 2,
			Inputs: func(ns NewSymFn) []Input {
				return []Input{
					{Msg: symbolicFlowMod(ns, symbolicFlowModOpts{
						prefix: "efm", ethOnly: true, concreteMeta: true,
						nSymActions: 1, nOutActions: 1,
					})},
					{Probe: dataplane.EthernetProbe(1)},
				}
			},
		},
		{
			Name:     "CS FlowMods",
			Desc:     "2 Flow Mod. The first one is concrete, the second is symbolic.",
			MsgCount: 2,
			Inputs: func(ns NewSymFn) []Input {
				return []Input{
					{Msg: concreteFlowMod()},
					{Msg: symbolicFlowMod(ns, symbolicFlowModOpts{
						prefix: "fm2", nSymActions: 1, nOutActions: 1,
					})},
				}
			},
		},
		{
			Name:     "Concrete",
			Desc:     "4 concrete 8-byte messages. These are the messages that do not have variable fields.",
			MsgCount: 4,
			Inputs: func(NewSymFn) []Input {
				return concreteMessages()
			},
		},
		{
			Name:     "Short Symb",
			Desc:     "A 10-byte symbolic message. Only the OpenFlow version field is concrete.",
			MsgCount: 1,
			Inputs: func(ns NewSymFn) []Input {
				return []Input{{Msg: shortSymbolic(ns)}}
			},
		},
	}
}

// testSources are extra name resolvers consulted by TestByName after the
// built-in Table 1 suite (registered by the scenario subsystem, so every
// layer that resolves tests by name — the scheduler, distributed workers,
// the campaign service — resolves scenarios with no further plumbing).
var (
	testSourcesMu sync.RWMutex
	testSources   []func(name string) (Test, bool)
)

// RegisterTestSource registers a test resolver consulted by TestByName
// when a name is not in the built-in suite. Sources are tried in
// registration order; typically called from a package init.
func RegisterTestSource(fn func(name string) (Test, bool)) {
	testSourcesMu.Lock()
	defer testSourcesMu.Unlock()
	testSources = append(testSources, fn)
}

// TestByName returns the named Table 1 test, or resolves the name
// through the registered test sources (scenarios).
func TestByName(name string) (Test, bool) {
	for _, t := range Tests() {
		if t.Name == name {
			return t, true
		}
	}
	testSourcesMu.RLock()
	defer testSourcesMu.RUnlock()
	for _, src := range testSources {
		if t, ok := src(name); ok {
			return t, true
		}
	}
	return Test{}, false
}

// AblationTests returns the Table 5 concretization ablations. The upper
// block varies the Flow Mod (baseline, concrete match, concrete action);
// the lower block varies the probe (concrete versus symbolic).
func AblationTests() []Test {
	base := func(o symbolicFlowModOpts, probe func(NewSymFn) *dataplane.Packet) func(NewSymFn) []Input {
		return func(ns NewSymFn) []Input {
			return []Input{
				{Msg: symbolicFlowMod(ns, o)},
				{Probe: probe(ns)},
			}
		}
	}
	tcpProbe := func(NewSymFn) *dataplane.Packet { return dataplane.TCPProbe(1) }
	ethProbe := func(NewSymFn) *dataplane.Packet { return dataplane.EthernetProbe(1) }
	symProbe := func(ns NewSymFn) *dataplane.Packet {
		return dataplane.SymbolicPacket(ns, "probe", 1)
	}
	// The paper's baseline uses 2 symbolic actions plus 2 symbolic output
	// actions; our scaled-down substrate uses 1+1 (the same shape at a
	// path count that keeps the ablation runnable in seconds — see
	// EXPERIMENTS.md).
	return []Test{
		{
			Name:     "Fully Symbolic",
			Desc:     "Flow Mod with a symbolic action and a symbolic output action, TCP probe (Table 5 baseline).",
			MsgCount: 2,
			Inputs: func(ns NewSymFn) []Input {
				return base(symbolicFlowModOpts{prefix: "ab", nSymActions: 1, nOutActions: 1}, tcpProbe)(ns)
			},
		},
		{
			Name:     "Concrete Match",
			Desc:     "Baseline with a concrete (wildcard) match.",
			MsgCount: 2,
			Inputs: func(ns NewSymFn) []Input {
				return base(symbolicFlowModOpts{prefix: "ab", concreteMatch: true, nSymActions: 1, nOutActions: 1}, tcpProbe)(ns)
			},
		},
		{
			Name:     "Concrete Action",
			Desc:     "Baseline with a single concrete action instead of 4 symbolic ones.",
			MsgCount: 2,
			Inputs: func(ns NewSymFn) []Input {
				return base(symbolicFlowModOpts{prefix: "ab", concreteActions: true}, tcpProbe)(ns)
			},
		},
		{
			Name:     "Concrete Probe",
			Desc:     "Partially symbolic Ethernet Flow Mod followed by a concrete short probe.",
			MsgCount: 2,
			Inputs: func(ns NewSymFn) []Input {
				return base(symbolicFlowModOpts{prefix: "ab", ethOnly: true, concreteMeta: true, nSymActions: 1, nOutActions: 1}, ethProbe)(ns)
			},
		},
		{
			Name:     "Symbolic Probe",
			Desc:     "Partially symbolic Ethernet Flow Mod followed by a symbolic probe.",
			MsgCount: 2,
			Inputs: func(ns NewSymFn) []Input {
				return base(symbolicFlowModOpts{prefix: "ab", ethOnly: true, concreteMeta: true, nSymActions: 1, nOutActions: 1}, symProbe)(ns)
			},
		},
	}
}

// PriorityFlowMod returns a focused Flow Mod variant: everything concrete
// except the priority, followed by a probe. The injected-modification
// experiment (§5.1.1) uses it in place of the full FlowMod test to catch
// state-dependent modifications (a silently dropped add changes the probe
// outcome) without the full test's exploration cost.
func PriorityFlowMod() Test {
	return Test{
		Name:     "Priority FlowMod",
		Desc:     "Flow Mod with symbolic priority only, followed by a probing TCP packet.",
		MsgCount: 2,
		Inputs: func(ns NewSymFn) []Input {
			buf := symbuf.New(openflow.FlowModFixedLen + 8)
			header(buf, openflow.TypeFlowMod)
			buf.PutConst(agents.OffFMMatch+agents.MOffWildcards, 4, uint64(openflow.FWAll))
			buf.PutConst(agents.OffFMCookie, 8, 0)
			buf.PutConst(agents.OffFMCommand, 2, uint64(openflow.FCAdd))
			buf.PutConst(agents.OffFMIdle, 2, 0)
			buf.PutConst(agents.OffFMHard, 2, 0)
			buf.Put(agents.OffFMPriority, ns("fm.priority", 16))
			buf.PutConst(agents.OffFMBufferID, 4, uint64(openflow.NoBuffer))
			buf.PutConst(agents.OffFMOutPort, 2, uint64(openflow.PortNone))
			buf.PutConst(agents.OffFMFlags, 2, 0)
			concreteOutputAction(buf, agents.OffFMActions, 2)
			return []Input{{Msg: buf}, {Probe: dataplane.TCPProbe(1)}}
		},
	}
}

// CoverageSequence returns the Figure 4 input sequence with n symbolic
// messages (n in 1..3): FlowMod-family messages whose cross-interactions
// drive the coverage increments the paper reports.
func CoverageSequence(n int) Test {
	return Test{
		Name:     "Coverage-" + string(rune('0'+n)),
		Desc:     "Figure 4 sequence with n symbolic messages.",
		MsgCount: n,
		Inputs: func(ns NewSymFn) []Input {
			// Message 1: a plain symbolic ADD — covers single-message
			// processing. Message 2: a fully symbolic Flow Mod whose
			// MODIFY/DELETE/overlap paths only execute against the state
			// message 1 installed — the cross-interaction coverage the
			// second symbolic message buys (§3.2.2). Message 3 repeats
			// the shape of message 2 and adds almost nothing.
			ins := []Input{{Msg: symbolicFlowMod(ns, symbolicFlowModOpts{
				prefix: "c1", concreteMeta: true, nSymActions: 1, nOutActions: 1,
			})}}
			if n >= 2 {
				ins = append(ins, Input{Msg: symbolicFlowMod(ns, symbolicFlowModOpts{
					prefix: "c2", concreteMatch: true, nSymActions: 1, nOutActions: 1,
				})})
			}
			if n >= 3 {
				ins = append(ins, Input{Msg: symbolicFlowMod(ns, symbolicFlowModOpts{
					prefix: "c3", concreteMatch: true, nSymActions: 1, nOutActions: 1,
				})})
			}
			ins = append(ins, Input{Probe: dataplane.TCPProbe(1)})
			return ins
		},
	}
}
