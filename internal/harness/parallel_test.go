package harness

import (
	"bytes"
	"sync"
	"testing"

	"github.com/soft-testing/soft/internal/agents"
	"github.com/soft-testing/soft/internal/agents/ovs"
	"github.com/soft-testing/soft/internal/agents/refswitch"
)

// serializeCanonical renders a Result in the results-file format with the
// wall-clock line zeroed, so runs can be compared byte for byte.
func serializeCanonical(t *testing.T, r *Result) []byte {
	t.Helper()
	clone := *r
	clone.Elapsed = 0
	var buf bytes.Buffer
	if err := clone.Write(&buf); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	return buf.Bytes()
}

// TestParallelExploreDeterminism is the paper's no-false-positive property
// under concurrency: phase 1 run with 4 workers must ship byte-identical
// intermediate results to a sequential run, for both agents. Everything
// downstream (grouping, crosschecking) consumes only this serialized form,
// so identical bytes here imply identical inconsistency reports.
func TestParallelExploreDeterminism(t *testing.T) {
	cases := []struct {
		agent func() agents.Agent
		test  string
	}{
		{func() agents.Agent { return refswitch.New() }, "Packet Out"},
		{func() agents.Agent { return refswitch.New() }, "Stats Request"},
		{func() agents.Agent { return ovs.New() }, "Packet Out"},
		{func() agents.Agent { return ovs.New() }, "Stats Request"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.test+"/"+c.agent().Name(), func(t *testing.T) {
			tt, ok := TestByName(c.test)
			if !ok {
				t.Fatalf("missing test %s", c.test)
			}
			seq := Explore(c.agent(), tt, Options{WantModels: true, Workers: 1})
			par := Explore(c.agent(), tt, Options{WantModels: true, Workers: 4})
			a, b := serializeCanonical(t, seq), serializeCanonical(t, par)
			if !bytes.Equal(a, b) {
				t.Fatalf("parallel results differ from sequential (%d vs %d paths)",
					len(seq.Paths), len(par.Paths))
			}
		})
	}
}

// TestClauseSharingExploreDeterminism is the shared-solver acceptance
// property on the real agent models: serialized phase-1 results must be
// byte-identical across every combination of worker count and clause
// sharing. Downstream phases consume only these bytes, so this implies
// identical inconsistency reports too.
func TestClauseSharingExploreDeterminism(t *testing.T) {
	tt, ok := TestByName("Packet Out")
	if !ok {
		t.Fatal("missing test Packet Out")
	}
	want := serializeCanonical(t, Explore(refswitch.New(), tt, Options{WantModels: true, Workers: 1}))
	for _, workers := range []int{1, 4} {
		for _, sharing := range []bool{false, true} {
			r := Explore(refswitch.New(), tt, Options{
				WantModels: true, Workers: workers, ClauseSharing: sharing,
			})
			if got := serializeCanonical(t, r); !bytes.Equal(got, want) {
				t.Fatalf("workers=%d clause-sharing=%t produced different bytes (%d paths)",
					workers, sharing, len(r.Paths))
			}
			if !sharing && (r.SolverStats.ClauseExports != 0 || r.SolverStats.ClauseImports != 0) {
				t.Fatalf("sharing off but exchange traffic reported: %+v", r.SolverStats)
			}
		}
	}
}

// TestParallelExploreRace hammers parallel exploration on both real agent
// models concurrently — the go test -race target for the full stack: wire
// parsing, flow table, coverage sets, blaster, and the work-stealing
// frontier all run on 8 workers × 2 simultaneous explorations.
func TestParallelExploreRace(t *testing.T) {
	tt, ok := TestByName("Packet Out")
	if !ok {
		t.Fatal("missing test Packet Out")
	}
	var wg sync.WaitGroup
	for _, mk := range []func() agents.Agent{
		func() agents.Agent { return refswitch.New() },
		func() agents.Agent { return ovs.New() },
	} {
		mk := mk
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := Explore(mk(), tt, Options{WantModels: true, Workers: 8})
			if len(r.Paths) == 0 {
				t.Error("exploration found no paths")
			}
		}()
	}
	wg.Wait()
}
