package harness

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/soft-testing/soft/internal/sym"
)

// The results file format carries phase-1 output between the two SOFT
// phases (§2.4: vendors run symbolic execution privately and ship only
// these intermediate results — path conditions and normalized traces — to
// the crosscheck). The format is line-oriented text: path conditions and
// trace expressions are canonical sym s-expressions, templates and
// canonicals are quoted strings.

// resultsMagic is the header of exhaustive results files — the original
// format, byte-identical across worker counts. resultsMagicV2 marks files
// that carry the "partial" line (truncated or cancelled explorations);
// pre-v2 readers reject them with a version mismatch instead of silently
// treating a partial path set as complete.
const (
	resultsMagic   = "soft-results v1"
	resultsMagicV2 = "soft-results v2"
)

// Write serializes r to the results file format.
func (r *Result) Write(w io.Writer) error {
	return r.Serialized().Write(w)
}

// Write serializes r to the results file format. It is the same writer
// Result.Write uses (Result.Write goes through the Serialized view), so a
// result merged from distributed shards — which exists only in serialized
// form — produces byte-identical files to an in-process exploration.
func (r *SerializedResult) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if r.Truncated || r.Cancelled {
		fmt.Fprintln(bw, resultsMagicV2)
	} else {
		fmt.Fprintln(bw, resultsMagic)
	}
	fmt.Fprintf(bw, "agent %q\n", r.Agent)
	fmt.Fprintf(bw, "test %q\n", r.Test)
	fmt.Fprintf(bw, "msgcount %d\n", r.MsgCount)
	fmt.Fprintf(bw, "elapsed %d\n", r.Elapsed.Nanoseconds())
	fmt.Fprintf(bw, "coverage %f %f\n", r.InstrPct, r.BranchPct)
	if r.Truncated || r.Cancelled {
		// Written only for partial results, so exhaustive runs keep the
		// historical byte layout (and the cross-worker-count determinism
		// guarantee, which applies to exhaustive and canonically truncated
		// runs only).
		fmt.Fprintf(bw, "partial truncated=%t cancelled=%t\n", r.Truncated, r.Cancelled)
	}
	fmt.Fprintf(bw, "paths %d\n", len(r.Paths))
	for i := range r.Paths {
		p := &r.Paths[i]
		fmt.Fprintf(bw, "path %d crashed=%t branches=%d\n", p.ID, p.Crashed, p.Branches)
		fmt.Fprintf(bw, "cond %s\n", p.Cond.String())
		fmt.Fprintf(bw, "template %q\n", p.Template)
		fmt.Fprintf(bw, "canonical %q\n", p.Canonical)
		fmt.Fprintf(bw, "nexprs %d\n", len(p.Exprs))
		for _, e := range p.Exprs {
			fmt.Fprintf(bw, "expr %s\n", e.String())
		}
		if len(p.Model) > 0 {
			names := make([]string, 0, len(p.Model))
			for n := range p.Model {
				names = append(names, n)
			}
			sort.Strings(names)
			fmt.Fprint(bw, "model")
			for _, n := range names {
				fmt.Fprintf(bw, " %s=%d", n, p.Model[n])
			}
			fmt.Fprintln(bw)
		}
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// SerializedPath is the crosscheck-phase view of one path: everything the
// second phase needs, with no access to agent source or engine state.
type SerializedPath struct {
	ID       int
	Crashed  bool
	Branches int
	Cond     *sym.Expr
	Template string
	// Canonical is the full normalized trace rendering (the group key).
	Canonical string
	Exprs     []*sym.Expr
	Model     sym.Assignment
}

// SerializedResult mirrors Result after a round trip through the file
// format.
type SerializedResult struct {
	Agent     string
	Test      string
	MsgCount  int
	Elapsed   time.Duration
	InstrPct  float64
	BranchPct float64
	// Truncated/Cancelled mirror the source Result's partial-run flags, so
	// the crosscheck phase can tell a partial path set from an exhaustive
	// one (inconsistencies on unexplored paths are invisible).
	Truncated bool
	Cancelled bool
	Paths     []SerializedPath
}

// Serialized converts an in-memory Result into the crosscheck-phase view
// without a file round trip.
func (r *Result) Serialized() *SerializedResult {
	out := &SerializedResult{
		Agent: r.Agent, Test: r.Test, MsgCount: r.MsgCount,
		Elapsed: r.Elapsed, InstrPct: r.InstrPct, BranchPct: r.BranchPct,
		Truncated: r.Truncated, Cancelled: r.Cancelled,
	}
	for i := range r.Paths {
		p := &r.Paths[i]
		out.Paths = append(out.Paths, SerializedPath{
			ID:        p.ID,
			Crashed:   p.Crashed,
			Branches:  p.Branches,
			Cond:      p.Cond,
			Template:  p.Trace.Template(),
			Canonical: p.Trace.Canonical(),
			Exprs:     p.Trace.Exprs(),
			Model:     p.Model,
		})
	}
	return out
}

// ReadResults parses a results file.
func ReadResults(r io.Reader) (*SerializedResult, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	line := func() (string, bool) {
		if !sc.Scan() {
			return "", false
		}
		return sc.Text(), true
	}
	l, ok := line()
	if !ok {
		return nil, fmt.Errorf("harness: not a results file: empty input, expected %q header", resultsMagic)
	}
	if l != resultsMagic && l != resultsMagicV2 {
		return nil, fmt.Errorf("harness: not a results file: expected %q (or %q) header, got %q",
			resultsMagic, resultsMagicV2, l)
	}
	out := &SerializedResult{}
	var cur *SerializedPath
	for {
		l, ok = line()
		if !ok {
			return nil, fmt.Errorf("harness: truncated results file")
		}
		if l == "end" {
			return out, nil
		}
		field, rest, _ := strings.Cut(l, " ")
		switch field {
		case "agent":
			if _, err := fmt.Sscanf(rest, "%q", &out.Agent); err != nil {
				return nil, fmt.Errorf("harness: bad agent line: %v", err)
			}
		case "test":
			if _, err := fmt.Sscanf(rest, "%q", &out.Test); err != nil {
				return nil, fmt.Errorf("harness: bad test line: %v", err)
			}
		case "msgcount":
			out.MsgCount, _ = strconv.Atoi(rest)
		case "elapsed":
			ns, _ := strconv.ParseInt(rest, 10, 64)
			out.Elapsed = time.Duration(ns)
		case "coverage":
			fmt.Sscanf(rest, "%f %f", &out.InstrPct, &out.BranchPct)
		case "partial":
			fmt.Sscanf(rest, "truncated=%t cancelled=%t", &out.Truncated, &out.Cancelled)
		case "paths":
			n, _ := strconv.Atoi(rest)
			out.Paths = make([]SerializedPath, 0, n)
		case "path":
			out.Paths = append(out.Paths, SerializedPath{})
			cur = &out.Paths[len(out.Paths)-1]
			fmt.Sscanf(rest, "%d crashed=%t branches=%d", &cur.ID, &cur.Crashed, &cur.Branches)
		case "cond":
			if cur == nil {
				return nil, fmt.Errorf("harness: cond before path")
			}
			e, err := sym.Parse(rest)
			if err != nil {
				return nil, fmt.Errorf("harness: bad cond: %v", err)
			}
			cur.Cond = e
		case "template":
			if _, err := fmt.Sscanf(rest, "%q", &cur.Template); err != nil {
				return nil, fmt.Errorf("harness: bad template: %v", err)
			}
		case "canonical":
			if _, err := fmt.Sscanf(rest, "%q", &cur.Canonical); err != nil {
				return nil, fmt.Errorf("harness: bad canonical: %v", err)
			}
		case "nexprs":
			// Count line; the exprs follow.
		case "expr":
			e, err := sym.Parse(rest)
			if err != nil {
				return nil, fmt.Errorf("harness: bad expr: %v", err)
			}
			cur.Exprs = append(cur.Exprs, e)
		case "model":
			cur.Model = sym.Assignment{}
			for _, kv := range strings.Fields(rest) {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("harness: bad model entry %q", kv)
				}
				x, err := strconv.ParseUint(v, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("harness: bad model value %q", kv)
				}
				cur.Model[k] = x
			}
		default:
			return nil, fmt.Errorf("harness: unknown field %q", field)
		}
	}
}

// TraceOf rebuilds a trace-comparison view for a serialized path. (The
// events themselves are not reconstructed — grouping and crosschecking
// only need the canonical string, template, and expressions.)
func (p *SerializedPath) TraceOf() (template, canonical string, exprs []*sym.Expr) {
	return p.Template, p.Canonical, p.Exprs
}
