package harness

import (
	"bytes"
	"testing"

	"github.com/soft-testing/soft/internal/agents/refswitch"
)

// TestShardSplitMergeRoundTrip is the distributed-exploration invariant
// with the network removed: splitting the frontier at a shard depth,
// exploring every shard with a prefix-seeded engine, and merging must
// reproduce the single-process result byte for byte.
func TestShardSplitMergeRoundTrip(t *testing.T) {
	tt, ok := TestByName("Packet Out")
	if !ok {
		t.Fatal("missing test Packet Out")
	}
	want := serializeCanonical(t, Explore(refswitch.New(), tt, Options{WantModels: true, Workers: 4}))

	var prefixes [][]bool
	local := Explore(refswitch.New(), tt, Options{
		WantModels: true,
		ShardDepth: 2,
		ShardSink:  func(p []bool) { prefixes = append(prefixes, p) },
	})
	if len(prefixes) == 0 {
		t.Fatal("split produced no shards; the test tree is too shallow to exercise the merge")
	}
	t.Logf("split: %d local paths, %d shards", len(local.Paths), len(prefixes))

	shards := []*Shard{local.Shard()}
	for _, p := range prefixes {
		r := Explore(refswitch.New(), tt, Options{WantModels: true, Prefix: p, Workers: 2})
		shards = append(shards, r.Shard())
	}
	agent := refswitch.New()
	merged, err := MergeShards(local.Agent, local.Test, local.MsgCount, agent.CovMap(), shards, DefaultMaxPaths)
	if err != nil {
		t.Fatalf("MergeShards: %v", err)
	}
	var buf bytes.Buffer
	if err := merged.SerializedResult.Write(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("merged shards differ from single-process run (%d paths merged)", len(merged.Paths))
	}
}
