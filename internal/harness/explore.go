package harness

import (
	"context"
	"time"

	"github.com/soft-testing/soft/internal/agents"
	"github.com/soft-testing/soft/internal/coverage"
	"github.com/soft-testing/soft/internal/obs"
	"github.com/soft-testing/soft/internal/openflow"
	"github.com/soft-testing/soft/internal/solver"
	"github.com/soft-testing/soft/internal/sym"
	"github.com/soft-testing/soft/internal/symexec"
	"github.com/soft-testing/soft/internal/trace"
)

// Options tunes an exploration run.
type Options struct {
	// MaxPaths caps exploration (0 = DefaultMaxPaths). The paper notes
	// SOFT works with partial path sets too.
	MaxPaths int
	// MaxDepth caps symbolic decisions per path (0 = DefaultMaxDepth).
	MaxDepth int
	// Strategy overrides the engine search strategy.
	Strategy symexec.Strategy
	// WantModels extracts a concrete input example per path.
	WantModels bool
	// Solver reuses an existing solver (and its cache) across runs.
	Solver *solver.Solver
	// Workers is the number of parallel exploration workers (0 =
	// GOMAXPROCS, 1 = sequential). Exhaustive explorations produce
	// identical results for every worker count.
	Workers int
	// ClauseSharing enables the bounded learned-clause exchange between the
	// per-path SAT cores (see symexec.Engine.ClauseSharing). Exhaustive
	// results are byte-identical with sharing on or off.
	ClauseSharing bool
	// CanonicalCut makes MaxPaths truncation canonical: the run keeps the
	// MaxPaths canonically smallest paths instead of the first MaxPaths to
	// complete, so truncated results serialize to the same bytes for every
	// worker count and shard layout (see symexec.Engine.CanonicalCut).
	// Distributed exploration always runs with it on.
	CanonicalCut bool
	// Incremental runs each exploration worker on a persistent
	// assumption-stack solver session instead of a fresh solver per path
	// (see symexec.Engine.Incremental). Results are byte-identical either
	// way; the public soft API and CLI enable it by default.
	Incremental bool
	// Merge enables diamond state merging on top of Incremental (see
	// symexec.Engine.Merge). Answer-preserving and off by default.
	Merge bool
	// Prefix seeds exploration at the subtree below the given decision
	// prefix (a distributed shard; see symexec.Engine.Prefix).
	Prefix []bool
	// ShardSink, with ShardDepth, diverts forks deeper than ShardDepth to
	// the sink instead of exploring them — the coordinator-side frontier
	// split (see symexec.Engine.ShardSink). Forces the run sequential.
	ShardDepth int
	ShardSink  func(prefix []bool)
	// Progress, when set, is called after each completed path with the
	// cumulative path count. With Workers > 1 it runs on worker goroutines
	// and must be safe for concurrent use.
	Progress func(pathsDone int)
}

// DefaultMaxPaths bounds a single exploration.
const DefaultMaxPaths = 60000

// DefaultMaxDepth bounds decisions per path.
const DefaultMaxDepth = 256

// PathResult is one explored path: its condition and normalized trace.
type PathResult struct {
	ID   int
	Cond *sym.Expr
	// ConstraintOps is the Table 2 metric: boolean operations in the path
	// condition.
	ConstraintOps int
	Trace         trace.Trace
	Model         sym.Assignment
	Crashed       bool
	Branches      int
	// Decisions is the branch-decision vector identifying the path in the
	// execution tree — the canonical merge key for distributed shards. It
	// never enters the results file (IDs already encode the canonical
	// order there).
	Decisions []bool
	// Cov is this path's own coverage set (nil when the agent has no
	// coverage universe). Distributed merges need per-path coverage so a
	// canonically truncated merge can rebuild coverage from exactly the
	// kept paths.
	Cov *coverage.Set
}

// Result is the phase-1 output for one (agent, test) pair — the
// "intermediate result" a vendor ships to the crosscheck phase (§2.4).
type Result struct {
	Agent    string
	Test     string
	MsgCount int

	Paths []PathResult

	Elapsed   time.Duration
	InstrPct  float64
	BranchPct float64
	// Truncated reports a partial path set: MaxPaths fired or the run was
	// cancelled before the execution tree was exhausted.
	Truncated bool
	// Cancelled reports that the exploration context was cancelled (its
	// paths are the partial set completed before the cancellation).
	Cancelled      bool
	Infeasible     int
	DepthTruncated int
	BranchQueries  int64
	SolverStats    solver.Stats
	// Cov is the run's cumulative coverage set (nil when the agent has no
	// coverage universe); InstrPct/BranchPct are derived from it. Shards of
	// a distributed run ship it so the coordinator can union coverage
	// exactly as a single-process run would.
	Cov *coverage.Set
}

// AvgConstraintOps returns the mean constraint size over paths.
func (r *Result) AvgConstraintOps() float64 {
	if len(r.Paths) == 0 {
		return 0
	}
	var sum int64
	for _, p := range r.Paths {
		sum += int64(p.ConstraintOps)
	}
	return float64(sum) / float64(len(r.Paths))
}

// MaxConstraintOps returns the largest constraint size over paths.
func (r *Result) MaxConstraintOps() int {
	m := 0
	for _, p := range r.Paths {
		if p.ConstraintOps > m {
			m = p.ConstraintOps
		}
	}
	return m
}

// Explore symbolically executes agent a on test t: the whole of SOFT's
// phase 1 for one (agent, test) pair.
func Explore(a agents.Agent, t Test, o Options) *Result {
	return ExploreContext(context.Background(), a, t, o)
}

// ExploreContext is Explore with cancellation: when ctx is cancelled the
// engine stops at the next path boundary and the Result comes back with
// Cancelled and Truncated set, carrying the paths completed so far.
func ExploreContext(ctx context.Context, a agents.Agent, t Test, o Options) *Result {
	sp := obs.StartSpan("explore:" + a.Name() + "/" + t.Name)
	defer sp.End()
	if o.MaxPaths == 0 {
		o.MaxPaths = DefaultMaxPaths
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = DefaultMaxDepth
	}
	s := o.Solver
	if s == nil {
		s = solver.New()
	}
	statsBefore := s.Stats()
	internHitsBefore, _ := sym.InternStats()

	eng := &symexec.Engine{
		Solver:        s,
		Strategy:      o.Strategy,
		MaxPaths:      o.MaxPaths,
		MaxDepth:      o.MaxDepth,
		WantModels:    o.WantModels,
		CovMap:        a.CovMap(),
		Workers:       o.Workers,
		ClauseSharing: o.ClauseSharing,
		CanonicalCut:  o.CanonicalCut,
		Incremental:   o.Incremental,
		Merge:         o.Merge,
		Prefix:        o.Prefix,
		ShardDepth:    o.ShardDepth,
		ShardSink:     o.ShardSink,
		Progress:      o.Progress,
	}
	res := eng.RunContext(ctx, func(ctx *symexec.Context) {
		in := a.NewInstance()
		in.Handshake(ctx)
		for _, input := range t.Inputs(ctx.NewSym) {
			if input.Msg != nil {
				in.HandleMessage(ctx, input.Msg)
			} else if input.Probe != nil {
				in.HandlePacket(ctx, input.Probe)
			}
		}
	})

	out := &Result{
		Agent:          a.Name(),
		Test:           t.Name,
		MsgCount:       t.MsgCount,
		Elapsed:        res.Elapsed,
		Truncated:      res.PathsTruncated,
		Cancelled:      res.Cancelled,
		Infeasible:     res.Infeasible,
		DepthTruncated: res.DepthTruncated,
		BranchQueries:  res.BranchQueries,
	}
	if res.Cov != nil {
		out.InstrPct = res.Cov.InstructionPct()
		out.BranchPct = res.Cov.BranchPct()
		out.Cov = res.Cov
	}
	out.SolverStats = s.Stats().Sub(statsBefore)
	out.SolverStats.ClauseExports = res.ClauseExports
	out.SolverStats.ClauseImports = res.ClauseImports
	out.SolverStats.AssumptionSolves = res.AssumptionSolves
	out.SolverStats.FullSolves = res.FullSolves
	out.SolverStats.ConstraintsReused = res.ConstraintsReused
	out.SolverStats.MergeHits = res.MergeHits
	internHitsAfter, _ := sym.InternStats()
	out.SolverStats.InternHits = int64(internHitsAfter - internHitsBefore)
	for _, p := range res.Paths {
		cond := p.Condition()
		out.Paths = append(out.Paths, PathResult{
			ID:            p.ID,
			Cond:          cond,
			ConstraintOps: cond.Size(),
			Trace:         trace.FromOutputs(p.Outputs, p.Crashed),
			Model:         p.Model,
			Crashed:       p.Crashed,
			Branches:      p.Branches,
			Decisions:     p.Decisions,
			Cov:           p.Cov,
		})
	}
	return out
}

// Reproduce renders the test's input sequence under a solver model into
// concrete OpenFlow wire messages — the ready-made test case SOFT builds
// for each inconsistency (§2.3).
func Reproduce(t Test, model sym.Assignment) [][]byte {
	var out [][]byte
	for _, input := range t.Inputs(sym.Var) {
		if input.Msg != nil {
			out = append(out, input.Msg.Concretize(model))
		} else if input.Probe != nil {
			out = append(out, input.Probe.Serialize(model))
		}
	}
	return out
}

// DescribeReproducer decodes reproducer wire messages for display. Probe
// packets (which do not parse as OpenFlow) are labeled as data plane
// inputs.
func DescribeReproducer(wires [][]byte) []string {
	var out []string
	for _, w := range wires {
		if m, err := openflow.Decode(w); err == nil {
			out = append(out, m.MsgType().String())
		} else {
			out = append(out, "dataplane-probe")
		}
	}
	return out
}
