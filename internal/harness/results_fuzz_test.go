package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/soft-testing/soft/internal/sym"
	"github.com/soft-testing/soft/internal/trace"
)

// buildResult assembles a Result from fuzzer-chosen scalars. Traces are
// built through trace.FromOutputs like real explorations; unrecognized
// output values become "raw:" events, so arbitrary strings are legal.
func buildResult(agent, test, out1, out2 string, msgCount uint16, crashed bool, bound uint64, modelVal uint64, truncated, cancelled bool) *Result {
	x := sym.Var("x", 16)
	y := sym.Var("po.port", 16)
	cond1 := sym.Ult(x, sym.Const(16, bound&0xffff))
	cond2 := sym.LAnd(sym.LNot(cond1), sym.EqConst(y, modelVal&0xffff))
	r := &Result{
		Agent:     agent,
		Test:      test,
		MsgCount:  int(msgCount),
		Elapsed:   42 * time.Millisecond,
		Truncated: truncated,
		Cancelled: cancelled,
	}
	tr1 := trace.FromOutputs([]any{out1}, false)
	tr2 := trace.FromOutputs([]any{out1, out2}, crashed)
	r.Paths = append(r.Paths,
		PathResult{ID: 0, Cond: cond1, ConstraintOps: cond1.Size(), Trace: tr1, Branches: 1},
		PathResult{ID: 1, Cond: cond2, ConstraintOps: cond2.Size(), Trace: tr2, Crashed: crashed, Branches: 2,
			Model: sym.Assignment{"x": bound & 0xffff, "po.port": modelVal & 0xffff}},
	)
	return r
}

// FuzzResultsRoundTrip is the satellite round-trip property: any Result
// assembled from fuzzer inputs must survive Write → ReadResults with every
// serialized field intact.
func FuzzResultsRoundTrip(f *testing.F) {
	f.Add("Reference Switch", "Packet Out", "msg:ERROR/BAD_ACTION/4", "pkt-out:port=FLOOD", uint16(3), false, uint64(25), uint64(0xfffd), false, false)
	f.Add("", "", "", "", uint16(0), true, uint64(0), uint64(0), true, true)
	f.Add("agent \"quoted\"", "test\nnewline", "line1\nline2", "tab\tand\\backslash", uint16(65535), true, uint64(1<<40), uint64(7), true, false)
	f.Add("ünïcödé", "日本語", "<silent>", "raw: % signs %d %q", uint16(9), false, uint64(12345), uint64(54321), false, true)
	f.Fuzz(func(t *testing.T, agent, test, out1, out2 string, msgCount uint16, crashed bool, bound, modelVal uint64, truncated, cancelled bool) {
		r := buildResult(agent, test, out1, out2, msgCount, crashed, bound, modelVal, truncated, cancelled)

		var buf bytes.Buffer
		if err := r.Write(&buf); err != nil {
			t.Fatalf("Write: %v", err)
		}
		got, err := ReadResults(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadResults of own output: %v\n--- file ---\n%s", err, buf.Bytes())
		}

		want := r.Serialized()
		if got.Agent != want.Agent || got.Test != want.Test || got.MsgCount != want.MsgCount {
			t.Fatalf("header mismatch: got (%q, %q, %d), want (%q, %q, %d)",
				got.Agent, got.Test, got.MsgCount, want.Agent, want.Test, want.MsgCount)
		}
		if got.Elapsed != want.Elapsed {
			t.Fatalf("elapsed mismatch: %v vs %v", got.Elapsed, want.Elapsed)
		}
		if got.Truncated != want.Truncated || got.Cancelled != want.Cancelled {
			t.Fatalf("partial flags mismatch: got (%t, %t), want (%t, %t)",
				got.Truncated, got.Cancelled, want.Truncated, want.Cancelled)
		}
		if len(got.Paths) != len(want.Paths) {
			t.Fatalf("path count mismatch: %d vs %d", len(got.Paths), len(want.Paths))
		}
		for i := range want.Paths {
			gp, wp := &got.Paths[i], &want.Paths[i]
			if gp.ID != wp.ID || gp.Crashed != wp.Crashed || gp.Branches != wp.Branches {
				t.Fatalf("path %d header mismatch: %+v vs %+v", i, gp, wp)
			}
			if !sym.Equal(gp.Cond, wp.Cond) {
				t.Fatalf("path %d condition mismatch: %s vs %s", i, gp.Cond, wp.Cond)
			}
			if gp.Template != wp.Template || gp.Canonical != wp.Canonical {
				t.Fatalf("path %d trace mismatch: (%q, %q) vs (%q, %q)",
					i, gp.Template, gp.Canonical, wp.Template, wp.Canonical)
			}
			if len(gp.Exprs) != len(wp.Exprs) {
				t.Fatalf("path %d expr count mismatch: %d vs %d", i, len(gp.Exprs), len(wp.Exprs))
			}
			for j := range wp.Exprs {
				if !sym.Equal(gp.Exprs[j], wp.Exprs[j]) {
					t.Fatalf("path %d expr %d mismatch", i, j)
				}
			}
			if len(gp.Model) != len(wp.Model) {
				t.Fatalf("path %d model size mismatch: %v vs %v", i, gp.Model, wp.Model)
			}
			for k, v := range wp.Model {
				if gp.Model[k] != v {
					t.Fatalf("path %d model[%q] = %d, want %d", i, k, gp.Model[k], v)
				}
			}
		}
	})
}

// FuzzReadResults throws arbitrary bytes at the parser: it must reject or
// accept without panicking, and never accept input that does not start
// with the versioned magic line.
func FuzzReadResults(f *testing.F) {
	f.Add([]byte("soft-results v1\nagent \"a\"\ntest \"t\"\npaths 0\nend\n"))
	f.Add([]byte("soft-results v2\nend\n"))
	f.Add([]byte(""))
	f.Add([]byte("agent \"a\"\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := ReadResults(bytes.NewReader(data))
		if err == nil &&
			!bytes.HasPrefix(data, []byte(resultsMagic+"\n")) &&
			!bytes.HasPrefix(data, []byte(resultsMagicV2+"\n")) {
			t.Fatalf("accepted input without %q/%q header: %+v", resultsMagic, resultsMagicV2, res)
		}
	})
}

// TestReadResultsBadMagic pins the versioned error for missing or wrong
// magic lines: the message must name the expected header so users of old
// or foreign files know what format is required.
func TestReadResultsBadMagic(t *testing.T) {
	cases := []struct {
		name, input string
	}{
		{"empty", ""},
		{"garbage", "not a results file at all\n"},
		{"wrong version", "soft-results v9\nagent \"a\"\nend\n"},
		{"missing header", "agent \"Reference Switch\"\ntest \"Packet Out\"\nend\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadResults(strings.NewReader(c.input))
			if err == nil {
				t.Fatal("ReadResults accepted input without the magic line")
			}
			if !strings.Contains(err.Error(), resultsMagic) {
				t.Fatalf("error %q does not name the expected %q header", err, resultsMagic)
			}
		})
	}
}

// TestReadResultsTruncated pins the error for a file that starts correctly
// but ends before the "end" terminator.
func TestReadResultsTruncated(t *testing.T) {
	var buf bytes.Buffer
	r := buildResult("a", "t", "out", "out2", 1, false, 10, 20, false, false)
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	cut := bytes.LastIndex(full, []byte("end\n"))
	_, err := ReadResults(bytes.NewReader(full[:cut]))
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated file: got err %v, want truncation error", err)
	}
}
