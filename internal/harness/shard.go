package harness

import (
	"errors"
	"fmt"
	"sort"

	"github.com/soft-testing/soft/internal/coverage"
	"github.com/soft-testing/soft/internal/solver"
	"github.com/soft-testing/soft/internal/symexec"
)

// This file implements the merge half of distributed exploration: a
// coordinator splits the frontier into decision-prefix subtrees
// (Options.ShardSink), workers explore each subtree (Options.Prefix), and
// MergeShards reassembles the per-shard outputs into exactly the result a
// single-process run would have produced. The merge works on the serialized
// view — the same "intermediate result" representation vendors ship between
// the paper's two phases (§2.4) — extended with the two merge keys that
// never enter the results file: decision vectors and per-path coverage.

// ShardPath is one path of a distributed exploration shard: the serialized
// path plus its merge keys.
type ShardPath struct {
	SerializedPath
	// Decisions is the path's branch-decision vector; shard outputs are
	// merged by sorting all paths in canonical decision-prefix order.
	Decisions []bool
	// Cov is the path's own coverage set (nil without a coverage universe),
	// so a canonically truncated merge can rebuild coverage from exactly
	// the kept paths.
	Cov *coverage.Set
}

// Shard is one shard's contribution to a distributed exploration: the
// subtree's paths plus the run counters the coordinator aggregates.
type Shard struct {
	Paths []ShardPath
	// Cov is the shard run's cumulative coverage (including attempts that
	// were depth-truncated inside the subtree); exhaustive merges union it.
	Cov *coverage.Set
	// Truncated reports that the shard's canonical MaxPaths cut discarded
	// paths — the shard holds its MaxPaths canonically smallest.
	Truncated      bool
	Infeasible     int
	DepthTruncated int
	BranchQueries  int64
	Stats          solver.Stats
}

// Shard converts an exploration Result into its distributed-merge form.
func (r *Result) Shard() *Shard {
	s := &Shard{
		Cov:            r.Cov,
		Truncated:      r.Truncated,
		Infeasible:     r.Infeasible,
		DepthTruncated: r.DepthTruncated,
		BranchQueries:  r.BranchQueries,
		Stats:          r.SolverStats,
	}
	ser := r.Serialized()
	for i := range ser.Paths {
		s.Paths = append(s.Paths, ShardPath{
			SerializedPath: ser.Paths[i],
			Decisions:      r.Paths[i].Decisions,
			Cov:            r.Paths[i].Cov,
		})
	}
	return s
}

// MergedResult is the outcome of a distributed exploration: the serialized
// result (byte-identical to a single-process run of the same tree) plus the
// aggregated run counters that never enter the results file.
type MergedResult struct {
	*SerializedResult
	Infeasible     int
	DepthTruncated int
	BranchQueries  int64
	SolverStats    solver.Stats
}

// MergeShards reassembles per-shard exploration outputs into one result.
// Shards must come from the same (agent, test) run configuration and cover
// disjoint decision-prefix subtrees (the coordinator's split guarantees
// both; re-leased duplicates must be dropped before merging). The merge is
// pure canonical bookkeeping:
//
//   - paths from all shards are sorted into canonical decision-prefix order
//     and re-numbered — the same canonicalization the engine applies;
//   - with maxPaths > 0, the merge keeps the maxPaths canonically smallest
//     paths: each shard already holds its own canonical cut, and the global
//     N smallest of a disjoint union are among the per-subtree N smallest,
//     so the cut composes exactly;
//   - coverage is the union of shard cumulative coverage for exhaustive
//     merges, or of exactly the kept paths' coverage for truncated ones
//     (matching symexec.Engine.CanonicalCut's single-process behavior).
//
// The caller stamps Elapsed on the returned result (wall-clock time is the
// coordinator's to measure).
func MergeShards(agent, test string, msgCount int, covMap *coverage.Map, shards []*Shard, maxPaths int) (*MergedResult, error) {
	merged := &MergedResult{SerializedResult: &SerializedResult{
		Agent: agent, Test: test, MsgCount: msgCount,
	}}
	var all []ShardPath
	truncated := false
	for _, sh := range shards {
		all = append(all, sh.Paths...)
		truncated = truncated || sh.Truncated
		merged.Infeasible += sh.Infeasible
		merged.DepthTruncated += sh.DepthTruncated
		merged.BranchQueries += sh.BranchQueries
		merged.SolverStats.Add(sh.Stats)
	}
	sort.Slice(all, func(i, j int) bool {
		return symexec.LessDecisions(all[i].Decisions, all[j].Decisions)
	})
	for i := 1; i < len(all); i++ {
		if !symexec.LessDecisions(all[i-1].Decisions, all[i].Decisions) {
			return nil, fmt.Errorf("harness: shards overlap: duplicate path decision vector %v", all[i].Decisions)
		}
	}
	if maxPaths > 0 && len(all) > maxPaths {
		all = all[:maxPaths]
		truncated = true
	}
	merged.Truncated = truncated

	if covMap != nil {
		cov := covMap.NewSet()
		// Shard sets come from other processes (or at least other agent
		// instances), so they never share covMap's identity; union them by
		// bitmap, which only requires the universes to be laid out
		// identically — guaranteed by deterministic agent registration and
		// checked here.
		union := func(s *coverage.Set) error {
			if s == nil {
				return nil
			}
			blocks, branches := s.Snapshot()
			return cov.MergeBitmap(blocks, branches)
		}
		var err error
		if truncated {
			for i := range all {
				err = errors.Join(err, union(all[i].Cov))
			}
		} else {
			for _, sh := range shards {
				err = errors.Join(err, union(sh.Cov))
			}
		}
		if err != nil {
			return nil, err
		}
		merged.InstrPct = cov.InstructionPct()
		merged.BranchPct = cov.BranchPct()
	}

	merged.Paths = make([]SerializedPath, len(all))
	for i := range all {
		merged.Paths[i] = all[i].SerializedPath
		merged.Paths[i].ID = i
	}
	return merged, nil
}
