package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
)

// Structured-logging conventions (see doc.go for the full field table):
// the fleet, workers, and campaignd log through *slog.Logger handles
// built here. Text output is the human default (no timestamp — these are
// terminal lines; a collector adds its own), JSON output carries the
// standard slog time field for ingestion. Every line about a unit of
// work carries that unit's ids as attributes: job, lease, shard, worker,
// trace, tenant.

// Log format names accepted by NewLogger and the CLI -log-format flags.
const (
	LogText = "text"
	LogJSON = "json"
)

// NewLogger builds a leveled structured logger writing to w. format is
// LogText or LogJSON; anything else falls back to text. A nil w returns
// the no-op logger.
func NewLogger(w io.Writer, format string) *slog.Logger {
	if w == nil {
		return NopLogger()
	}
	if format == LogJSON {
		return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: slog.LevelInfo}))
	}
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{
		Level: slog.LevelInfo,
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if len(groups) == 0 && a.Key == slog.TimeKey {
				return slog.Attr{}
			}
			return a
		},
	}))
}

// ValidLogFormat reports whether format names a supported -log-format
// value.
func ValidLogFormat(format string) bool {
	return format == LogText || format == LogJSON
}

// NopLogger returns a logger that discards everything with zero
// formatting cost (its handler reports every level disabled), so
// components can hold a non-nil *slog.Logger unconditionally.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// TraceAttr renders a trace id as the conventional `trace` log field
// (omitted — an empty group — when the id is zero, i.e. untraced).
func TraceAttr(id uint64) slog.Attr {
	if id == 0 {
		return slog.Attr{}
	}
	return slog.String("trace", FormatTraceID(id))
}

// Logf adapts a structured logger to printf-style call sites that have
// no ids to attach (legacy surfaces mid-migration).
func Logf(l *slog.Logger, format string, args ...any) {
	l.Info(fmt.Sprintf(format, args...))
}
