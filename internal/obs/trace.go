package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceEvents bounds a tracer's in-memory event buffer. At ~64
// bytes an event this is a few tens of MB worst case; overflow drops the
// event and counts it rather than growing without bound (see doc.go).
const DefaultTraceEvents = 1 << 18

// traceDropped counts span events discarded because a tracer's buffer
// was full.
var traceDropped = NewCounter("soft_trace_events_dropped_total")

// LocalPid is the pid under which the local process's own spans render
// in the Chrome trace output. Segments merged from other processes are
// assigned pids starting at LocalPid+1.
const LocalPid = 1

// traceEvent is one completed span in Chrome trace-event terms: a
// complete ("ph":"X") event with microsecond timestamp and duration.
type traceEvent struct {
	name   string
	ts     int64 // µs since the tracer started
	dur    int64 // µs
	pid    int64 // LocalPid for local spans; merged segments carry their own
	tid    int64
	id     uint64 // span id (unique within the process; 0 = unassigned)
	parent uint64 // parent span id (possibly from another process; 0 = none)
}

// Tracer collects spans for one run. Exactly one tracer is active
// process-wide at a time (StartTracing installs, Stop uninstalls); with
// none active, StartSpan is a single atomic load returning a no-op Span.
type Tracer struct {
	start     time.Time
	baseMicro int64 // wall-clock µs at start; rebases cross-process segments
	limit     int

	mu      sync.Mutex
	events  []traceEvent
	names   map[int64]string // pid → process name ("M" metadata on write)
	nextPid int64            // next pid MergeBundle hands out
}

// activeTracer is the installed tracer, nil when tracing is off.
var activeTracer atomic.Pointer[Tracer]

// spanIDs hands out process-unique span ids. Ids only need to be unique
// within one process's segment stream; the merge keys parent links by
// (origin process, id) implicitly because segments ship whole.
var spanIDs atomic.Uint64

func newTracer() *Tracer {
	return &Tracer{
		start:     time.Now(),
		baseMicro: time.Now().UnixMicro(),
		limit:     DefaultTraceEvents,
		names:     make(map[int64]string),
		nextPid:   LocalPid + 1,
	}
}

// StartTracing installs a fresh tracer with the default buffer bound and
// returns it. A previously installed tracer is displaced (its spans stop
// accumulating but remain writable).
func StartTracing() *Tracer {
	t := newTracer()
	activeTracer.Store(t)
	return t
}

// Tracing reports whether a tracer is installed.
func Tracing() bool { return activeTracer.Load() != nil }

// Active returns the installed tracer, or nil when tracing is off. It is
// how cross-process plumbing (the fleet merging worker segments, the
// campaign client merging a downloaded bundle) reaches the run's tracer.
func Active() *Tracer { return activeTracer.Load() }

// Stop uninstalls t if it is the active tracer. Spans started before the
// stop still record into t when they end.
func (t *Tracer) Stop() {
	activeTracer.CompareAndSwap(t, nil)
}

// record appends one completed span, dropping on overflow.
func (t *Tracer) record(ev traceEvent) {
	t.mu.Lock()
	if len(t.events) >= t.limit {
		t.mu.Unlock()
		traceDropped.Inc()
		return
	}
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// SetProcessName names a pid's track in the rendered trace (a
// "process_name" metadata event). Naming the same pid again overwrites.
func (t *Tracer) SetProcessName(pid int64, name string) {
	t.mu.Lock()
	t.names[pid] = name
	t.mu.Unlock()
}

// MergeSegment splices a segment recorded by another process into t's
// timeline under the given pid. Timestamps rebase via the two tracers'
// wall clocks (coordinator and workers share a machine or an NTP domain;
// skew shifts a worker's track, it never corrupts it). Events with no
// parent of their own inherit the segment's parent span, which is how a
// worker's spans nest under the coordinator lease span that granted the
// work. Buffer overflow drops the remainder and counts the drops.
func (t *Tracer) MergeSegment(seg Segment, pid int64) {
	offset := seg.BaseUnixMicro - t.baseMicro
	t.mu.Lock()
	if seg.Process != "" {
		t.names[pid] = seg.Process
	}
	for _, ev := range seg.Events {
		if len(t.events) >= t.limit {
			t.mu.Unlock()
			traceDropped.Inc()
			return
		}
		parent := ev.Parent
		if parent == 0 {
			parent = seg.Parent
		}
		t.events = append(t.events, traceEvent{
			name:   ev.Name,
			ts:     ev.TS + offset,
			dur:    ev.Dur,
			pid:    pid,
			tid:    ev.TID,
			id:     ev.ID,
			parent: parent,
		})
	}
	t.mu.Unlock()
}

// MergeBundle splices every segment of a downloaded bundle into t,
// assigning each segment the next free pid (the bundle's own pid
// numbering is relative to the process that drained it, so it is
// remapped wholesale).
func (t *Tracer) MergeBundle(b *Bundle) {
	for _, seg := range b.Segments {
		t.mu.Lock()
		pid := t.nextPid
		t.nextPid++
		t.mu.Unlock()
		t.MergeSegment(seg, pid)
	}
}

// Drain removes the buffered events and returns them grouped by pid as
// serializable segments (sorted by pid, the local process first). The
// tracer keeps collecting afterwards — campaignd drains once per traced
// job while the shared tracer lives on.
func (t *Tracer) Drain() []Segment {
	t.mu.Lock()
	events := t.events
	t.events = nil
	names := make(map[int64]string, len(t.names))
	for pid, n := range t.names {
		names[pid] = n
	}
	base := t.baseMicro
	t.mu.Unlock()

	byPid := make(map[int64][]SegmentEvent)
	for _, ev := range events {
		byPid[ev.pid] = append(byPid[ev.pid], SegmentEvent{
			Name:   ev.name,
			TS:     ev.ts,
			Dur:    ev.dur,
			TID:    ev.tid,
			ID:     ev.id,
			Parent: ev.parent,
		})
	}
	pids := make([]int64, 0, len(byPid))
	for pid := range byPid {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	segs := make([]Segment, 0, len(pids))
	for _, pid := range pids {
		segs = append(segs, Segment{
			Process:       names[pid],
			Pid:           pid,
			BaseUnixMicro: base,
			Events:        byPid[pid],
		})
	}
	return segs
}

// WriteJSON renders the collected spans as a Chrome trace-event JSON
// object ({"traceEvents": [...]}) loadable by Perfetto. Named pids gain
// "process_name" metadata events so merged worker tracks carry their
// worker names. (Not named WriteTo: this is not the io.WriterTo
// contract.)
func (t *Tracer) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	events := t.events
	names := make(map[int64]string, len(t.names))
	for pid, n := range t.names {
		names[pid] = n
	}
	t.mu.Unlock()
	return writeChromeJSON(w, events, names)
}

func writeChromeJSON(w io.Writer, events []traceEvent, names map[int64]string) error {
	pids := make([]int64, 0, len(names))
	for pid := range names {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })

	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[\n")
	total := len(pids) + len(events)
	n := 0
	sep := func() string {
		n++
		if n == total {
			return ""
		}
		return ","
	}
	for _, pid := range pids {
		fmt.Fprintf(bw, "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":%q}}%s\n",
			pid, names[pid], sep())
	}
	for _, ev := range events {
		pid := ev.pid
		if pid == 0 {
			pid = LocalPid
		}
		fmt.Fprintf(bw, "{\"name\":%q,\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":%d,\"tid\":%d",
			ev.name, ev.ts, ev.dur, pid, ev.tid)
		if ev.id != 0 || ev.parent != 0 {
			fmt.Fprintf(bw, ",\"args\":{\"span\":%d,\"parent\":%d}", ev.id, ev.parent)
		}
		fmt.Fprintf(bw, "}%s\n", sep())
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

// Span is one phase under measurement. The zero Span (tracing off) is
// valid and End is a no-op on it.
type Span struct {
	t      *Tracer
	start  time.Time
	name   string
	tid    int64
	id     uint64
	parent uint64
}

// StartSpan begins a span against the active tracer, or returns a no-op
// Span when tracing is off. Each live span gets a process-unique id so
// cross-process children can name it as their parent.
func StartSpan(name string) Span {
	t := activeTracer.Load()
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, start: time.Now(), id: spanIDs.Add(1)}
}

// ID returns the span's process-unique id (0 for a no-op span). The
// fleet ships a lease span's id to the worker so the worker's segment
// nests under it in the merged trace.
func (s Span) ID() uint64 { return s.id }

// WithTID tags the span with a lane id (worker index, job number) so
// concurrent phases render on separate tracks.
func (s Span) WithTID(tid int) Span {
	s.tid = int64(tid)
	return s
}

// WithParent tags the span as a child of another span's id.
func (s Span) WithParent(id uint64) Span {
	s.parent = id
	return s
}

// End completes the span and records it.
func (s Span) End() { s.EndMin(0) }

// EndMin completes the span but records it only if it lasted at least
// min — the gate that keeps very hot call sites (individual SAT solves)
// from flooding the buffer with sub-threshold events.
func (s Span) EndMin(min time.Duration) {
	if s.t == nil {
		return
	}
	dur := time.Since(s.start)
	if dur < min {
		return
	}
	s.t.record(traceEvent{
		name:   s.name,
		ts:     s.start.Sub(s.t.start).Microseconds(),
		dur:    dur.Microseconds(),
		pid:    LocalPid,
		tid:    s.tid,
		id:     s.id,
		parent: s.parent,
	})
}
