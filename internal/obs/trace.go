package obs

import (
	"bufio"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceEvents bounds a tracer's in-memory event buffer. At ~64
// bytes an event this is a few tens of MB worst case; overflow drops the
// event and counts it rather than growing without bound (see doc.go).
const DefaultTraceEvents = 1 << 18

// traceDropped counts span events discarded because a tracer's buffer
// was full.
var traceDropped = NewCounter("soft_trace_events_dropped_total")

// traceEvent is one completed span in Chrome trace-event terms: a
// complete ("ph":"X") event with microsecond timestamp and duration.
type traceEvent struct {
	name string
	ts   int64 // µs since the tracer started
	dur  int64 // µs
	tid  int64
}

// Tracer collects spans for one run. Exactly one tracer is active
// process-wide at a time (StartTracing installs, Stop uninstalls); with
// none active, StartSpan is a single atomic load returning a no-op Span.
type Tracer struct {
	start time.Time
	limit int

	mu     sync.Mutex
	events []traceEvent
}

// activeTracer is the installed tracer, nil when tracing is off.
var activeTracer atomic.Pointer[Tracer]

// StartTracing installs a fresh tracer with the default buffer bound and
// returns it. A previously installed tracer is displaced (its spans stop
// accumulating but remain writable).
func StartTracing() *Tracer {
	t := &Tracer{start: time.Now(), limit: DefaultTraceEvents}
	activeTracer.Store(t)
	return t
}

// Tracing reports whether a tracer is installed.
func Tracing() bool { return activeTracer.Load() != nil }

// Stop uninstalls t if it is the active tracer. Spans started before the
// stop still record into t when they end.
func (t *Tracer) Stop() {
	activeTracer.CompareAndSwap(t, nil)
}

// record appends one completed span, dropping on overflow.
func (t *Tracer) record(ev traceEvent) {
	t.mu.Lock()
	if len(t.events) >= t.limit {
		t.mu.Unlock()
		traceDropped.Inc()
		return
	}
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// WriteJSON renders the collected spans as a Chrome trace-event JSON
// object ({"traceEvents": [...]}) loadable by Perfetto. (Not named
// WriteTo: this is not the io.WriterTo contract.)
func (t *Tracer) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	events := t.events
	t.mu.Unlock()
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[\n")
	for i, ev := range events {
		sep := ","
		if i == len(events)-1 {
			sep = ""
		}
		fmt.Fprintf(bw, "{\"name\":%q,\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":1,\"tid\":%d}%s\n",
			ev.name, ev.ts, ev.dur, ev.tid, sep)
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

// Span is one phase under measurement. The zero Span (tracing off) is
// valid and End is a no-op on it.
type Span struct {
	t     *Tracer
	start time.Time
	name  string
	tid   int64
}

// StartSpan begins a span against the active tracer, or returns a no-op
// Span when tracing is off.
func StartSpan(name string) Span {
	t := activeTracer.Load()
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, start: time.Now()}
}

// WithTID tags the span with a lane id (worker index, job number) so
// concurrent phases render on separate tracks.
func (s Span) WithTID(tid int) Span {
	s.tid = int64(tid)
	return s
}

// End completes the span and records it.
func (s Span) End() { s.EndMin(0) }

// EndMin completes the span but records it only if it lasted at least
// min — the gate that keeps very hot call sites (individual SAT solves)
// from flooding the buffer with sub-threshold events.
func (s Span) EndMin(min time.Duration) {
	if s.t == nil {
		return
	}
	dur := time.Since(s.start)
	if dur < min {
		return
	}
	s.t.record(traceEvent{
		name: s.name,
		ts:   s.start.Sub(s.t.start).Microseconds(),
		dur:  dur.Microseconds(),
		tid:  s.tid,
	})
}
