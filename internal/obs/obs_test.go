package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_counter")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("t_counter") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("t_gauge")
	g.Set(7)
	g.Dec()
	g.Add(-2)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_clash")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("t_clash")
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 1000, -5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if got := s.Count(); got != 7 {
		t.Fatalf("count = %d, want 7", got)
	}
	// -5 clamps to 0; 0 → bucket 0, 1 → bucket 1, 2,3 → bucket 2,
	// 4 → bucket 3, 1000 → bucket 10.
	wantCounts := map[int]int64{0: 2, 1: 1, 2: 2, 3: 1, 10: 1}
	for i, c := range s.Counts {
		if c != wantCounts[i] {
			t.Fatalf("bucket %d = %d, want %d", i, c, wantCounts[i])
		}
	}
	if s.Sum != 0+1+2+3+4+1000 {
		t.Fatalf("sum = %d", s.Sum)
	}
}

func TestHistogramQuantileAndSub(t *testing.T) {
	var h Histogram
	before := h.Snapshot()
	for i := 0; i < 90; i++ {
		h.Observe(100) // bucket 7, bound 127
	}
	for i := 0; i < 10; i++ {
		h.Observe(100000) // bucket 17, bound 131071
	}
	d := h.Snapshot().Sub(before)
	if got := d.Count(); got != 100 {
		t.Fatalf("diff count = %d, want 100", got)
	}
	if p50 := d.Quantile(0.5); p50 != 127 {
		t.Fatalf("p50 = %d, want 127", p50)
	}
	if p99 := d.Quantile(0.99); p99 != 131071 {
		t.Fatalf("p99 = %d, want 131071", p99)
	}
	if empty := (HistogramSnapshot{}).Quantile(0.5); empty != 0 {
		t.Fatalf("empty quantile = %d, want 0", empty)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				h.Observe(i)
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_requests_total").Add(3)
	r.Gauge("t_active").Set(2)
	h := r.Histogram("t_latency_ns")
	h.Observe(1)
	h.Observe(5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE t_requests_total counter\nt_requests_total 3\n",
		"# TYPE t_active gauge\nt_active 2\n",
		"# TYPE t_latency_ns histogram\n",
		"t_latency_ns_bucket{le=\"1\"} 1\n",
		"t_latency_ns_bucket{le=\"7\"} 2\n",
		"t_latency_ns_bucket{le=\"+Inf\"} 2\n",
		"t_latency_ns_sum 6\n",
		"t_latency_ns_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Bucket series must be cumulative and monotone.
	if strings.Index(out, "le=\"1\"") > strings.Index(out, "le=\"7\"") {
		t.Fatal("bucket order not ascending")
	}
}

func TestTracerSpansAndJSON(t *testing.T) {
	tr := StartTracing()
	defer tr.Stop()
	sp := StartSpan("explore:ref/Packet Out").WithTID(3)
	time.Sleep(time.Millisecond)
	sp.End()
	StartSpan("discarded").EndMin(time.Hour) // below threshold: dropped
	tr.Stop()
	if Tracing() {
		t.Fatal("tracer still active after Stop")
	}
	// After Stop, new spans are no-ops.
	StartSpan("after-stop").End()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(parsed.TraceEvents) != 1 {
		t.Fatalf("got %d events, want 1", len(parsed.TraceEvents))
	}
	ev := parsed.TraceEvents[0]
	if ev.Name != "explore:ref/Packet Out" || ev.Ph != "X" || ev.Tid != 3 {
		t.Fatalf("unexpected event %+v", ev)
	}
	if ev.Dur < 900 {
		t.Fatalf("dur = %dµs, want >= ~1000", ev.Dur)
	}
}

func TestTracerBufferBound(t *testing.T) {
	tr := &Tracer{start: time.Now(), limit: 2}
	activeTracer.Store(tr)
	defer tr.Stop()
	before := traceDropped.Load()
	for i := 0; i < 5; i++ {
		StartSpan("s").End()
	}
	if got := len(tr.events); got != 2 {
		t.Fatalf("buffered %d events, want 2", got)
	}
	if d := traceDropped.Load() - before; d != 3 {
		t.Fatalf("dropped = %d, want 3", d)
	}
}

// TestDrainGroupsByPid: drained segments come back grouped per pid with
// process names attached, and the tracer keeps collecting afterwards.
func TestDrainGroupsByPid(t *testing.T) {
	tr := StartTracing()
	defer tr.Stop()
	tr.SetProcessName(LocalPid, "coordinator")
	sp := StartSpan("job:1")
	sp.End()
	tr.MergeSegment(Segment{
		Process:       "worker/a",
		BaseUnixMicro: tr.baseMicro,
		Events:        []SegmentEvent{{Name: "shard:x", TS: 5, Dur: 2, ID: 9}},
	}, LocalPid+1)

	segs := tr.Drain()
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2", len(segs))
	}
	if segs[0].Pid != LocalPid || segs[0].Process != "coordinator" {
		t.Fatalf("local segment first, got %+v", segs[0])
	}
	if segs[1].Pid != LocalPid+1 || segs[1].Process != "worker/a" || len(segs[1].Events) != 1 {
		t.Fatalf("unexpected worker segment %+v", segs[1])
	}
	if got := tr.Drain(); len(got) != 0 {
		t.Fatalf("second drain returned %d segments, want 0", len(got))
	}
	StartSpan("after-drain").End()
	if got := tr.Drain(); len(got) != 1 {
		t.Fatalf("tracer stopped collecting after drain: %d segments", len(got))
	}
}

// TestMergeSegmentNesting: parentless events inherit the segment's parent
// (the coordinator lease span), events with explicit parents keep them,
// and timestamps rebase via the two wall-clock bases.
func TestMergeSegmentNesting(t *testing.T) {
	tr := StartTracing()
	defer tr.Stop()
	const leaseSpan = 77
	tr.MergeSegment(Segment{
		Process:       "worker/a",
		BaseUnixMicro: tr.baseMicro + 1000, // worker tracer started 1ms later
		Parent:        leaseSpan,
		Events: []SegmentEvent{
			{Name: "shard:0", TS: 10, Dur: 3, ID: 5},
			{Name: "solve", TS: 11, Dur: 1, ID: 6, Parent: 5},
		},
	}, LocalPid+1)
	if len(tr.events) != 2 {
		t.Fatalf("merged %d events, want 2", len(tr.events))
	}
	root, child := tr.events[0], tr.events[1]
	if root.parent != leaseSpan {
		t.Fatalf("parentless event's parent = %d, want lease span %d", root.parent, leaseSpan)
	}
	if child.parent != 5 {
		t.Fatalf("explicit parent overwritten: %d, want 5", child.parent)
	}
	if root.ts != 1010 {
		t.Fatalf("rebased ts = %d, want 1010", root.ts)
	}
	if root.pid != LocalPid+1 || child.pid != LocalPid+1 {
		t.Fatalf("merged events carry pids %d/%d, want %d", root.pid, child.pid, LocalPid+1)
	}
}

// TestMergeBundleAssignsPids: each bundle segment gets the next free pid
// so two downloads never collide tracks.
func TestMergeBundleAssignsPids(t *testing.T) {
	tr := StartTracing()
	defer tr.Stop()
	b := &Bundle{Segments: []Segment{
		{Process: "campaignd", BaseUnixMicro: tr.baseMicro, Events: []SegmentEvent{{Name: "job:j1"}}},
		{Process: "worker/a", BaseUnixMicro: tr.baseMicro, Events: []SegmentEvent{{Name: "shard:0"}}},
	}}
	tr.MergeBundle(b)
	if len(tr.events) != 2 {
		t.Fatalf("merged %d events, want 2", len(tr.events))
	}
	if tr.events[0].pid == tr.events[1].pid {
		t.Fatalf("bundle segments share pid %d", tr.events[0].pid)
	}
	for _, ev := range tr.events {
		if ev.pid <= LocalPid {
			t.Fatalf("bundle segment landed on local pid %d", ev.pid)
		}
	}
}

// TestBundleJSONRoundTrip: encode → parse → Chrome JSON stays one valid
// trace with every segment's events present.
func TestBundleJSONRoundTrip(t *testing.T) {
	in := &Bundle{Segments: []Segment{
		{Process: "coordinator", Pid: 1, BaseUnixMicro: 100, Events: []SegmentEvent{{Name: "lease:1", ID: 3}}},
		{Process: "worker/a", Pid: 2, BaseUnixMicro: 150, Parent: 3, Events: []SegmentEvent{{Name: "shard:0", TS: 1, Dur: 2}}},
	}}
	data, err := EncodeBundle(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Segments) != 2 || out.Segments[1].Parent != 3 {
		t.Fatalf("round trip lost fields: %+v", out)
	}
	var buf bytes.Buffer
	if err := out.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome JSON invalid: %v\n%s", err, buf.String())
	}
	var spans, meta int
	for _, ev := range parsed.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if spans != 2 || meta != 2 {
		t.Fatalf("got %d spans and %d metadata events, want 2 and 2", spans, meta)
	}
}

// TestTraceIDFormats pins the id and traceparent round trips.
func TestTraceIDFormats(t *testing.T) {
	id := NewTraceID()
	if id == 0 {
		t.Fatal("NewTraceID returned zero")
	}
	got, err := ParseTraceID(FormatTraceID(id))
	if err != nil || got != id {
		t.Fatalf("trace id round trip: got %x, %v; want %x", got, err, id)
	}
	got, err = ParseTraceparent(FormatTraceparent(id))
	if err != nil || got != id {
		t.Fatalf("traceparent round trip: got %x, %v; want %x", got, err, id)
	}
	if _, err := ParseTraceID("not hex"); err == nil {
		t.Fatal("ParseTraceID accepted garbage")
	}
	if _, err := ParseTraceparent(""); err == nil {
		t.Fatal("ParseTraceparent accepted empty value")
	}
	// A bare hex id is accepted where a header value is expected.
	if got, err := ParseTraceparent(FormatTraceID(id)); err != nil || got != id {
		t.Fatalf("bare hex traceparent: got %x, %v", got, err)
	}
}
