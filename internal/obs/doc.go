// Package obs is SOFT's dependency-free observability layer: a sharded
// registry of counters, gauges, and power-of-two histograms, plus
// lightweight span tracing that renders to the Chrome trace-event JSON
// format (loadable in Perfetto or chrome://tracing).
//
// # Design
//
// Metrics are process-global and always on. A metric is created once —
// typically in a package-level var block — and the returned handle is a
// bare atomic: Counter.Inc is one atomic add, Histogram.Observe is two.
// The registry itself is sharded by name hash and locked only during
// creation and exposition, never on the update path, so instrumenting a
// hot loop costs the atomics and nothing else. WritePrometheus renders
// every registered metric in the Prometheus text exposition format;
// `soft campaignd` and `soft serve` mount it at GET /metrics.
//
// Histograms bucket by the bit length of the observed value, i.e. bucket
// i holds values in [2^(i-1), 2^i). That trades resolution for a fixed
// 64-slot layout with no configuration: one histogram type covers
// nanosecond latencies, stack depths, and byte counts alike, and
// snapshots subtract cleanly so a caller can diff before/after a run to
// get per-run quantiles (the bench JSON's p50/p99 solve latency).
//
// Tracing is opt-in per run: StartTracing installs a process-wide
// tracer, StartSpan/End record phase spans into a bounded in-memory
// buffer (overflow increments soft_trace_events_dropped_total rather
// than growing without bound), and WriteTo emits the JSON file. With no
// tracer installed StartSpan returns a zero Span whose End is a no-op —
// a nil check and nothing else on the disabled path.
//
// # The no-answer-path-effects invariant
//
// Nothing in this package — and nothing instrumentation built on it does —
// may influence what the pipeline computes. Counters and spans observe
// control flow; they must never steer it. Concretely:
//
//   - Metric and span state is write-only from the instrumented code's
//     point of view: the engine, solver, fleet, and daemon never read a
//     metric back to make a decision.
//   - Instrumentation records wall-clock durations and queue depths,
//     which differ run to run; none of that feeds result serialization.
//     Exploration results, grouped results, and campaign reports remain
//     byte-identical with tracing on or off, metrics scraped or not —
//     the determinism sweeps assert exactly this.
//   - Dropping is always acceptable: a full trace buffer or a saturated
//     progress queue drops events and counts the drop. Blocking the hot
//     path to preserve an observation would invert the priority.
//
// Any new instrumentation must preserve all three properties.
//
// # Cross-process traces
//
// One traced campaign yields one timeline even when the work spans a
// coordinator, fleet workers, and the campaign daemon. The unit of
// exchange is the Segment: one process's buffered spans plus the
// wall-clock base (BaseUnixMicro) that lets a receiver rebase them, the
// originating process's name, and an optional Parent span id. Drain
// empties a tracer into segments (local spans first); MergeSegment
// rebases a foreign segment onto the receiving tracer's clock, assigns
// it a fresh pid (one track per remote process in the rendered trace),
// and re-parents its parentless spans under Segment.Parent — the
// coordinator lease span that granted the work — while spans with
// explicit in-segment parents keep them. Bundle is just a set of
// segments (the campaignd trace download); MergeBundle merges each onto
// its own track.
//
// Trace identity crosses process boundaries as a 64-bit id: hex
// (FormatTraceID) in log fields and job specs, traceparent-style
// (FormatTraceparent, the Soft-Traceparent header) over HTTP, and a raw
// uint64 on the dist wire. Propagation is always context + ship-back:
// the caller sends the id (and parent span) down with the work, the
// callee traces locally and ships segments up, the caller merges. No
// process ever blocks on another's trace state.
//
// # Structured-logging conventions
//
// Long-running commands log through log/slog (NewLogger: text or JSON
// handler). Field names are shared across processes so one grep
// reassembles a distributed run:
//
//   - component: the emitting subsystem ("dist", "campaignd")
//   - job, lease, shard: the dist work-unit ids, outermost first
//   - worker: the worker's self-reported name
//   - tenant, state: campaign-service job lifecycle fields
//   - trace: the hex trace id (TraceAttr; omitted when untraced)
//
// Lines are emitted at Info for lifecycle transitions (lease granted,
// shard done, job done) and Debug for per-frame chatter; logging obeys
// the same invariant as everything else here — it observes, it never
// steers.
package obs
