package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// SegmentEvent is one completed span inside a shipped segment.
// Timestamps are microseconds relative to the segment's BaseUnixMicro,
// exactly as the originating tracer recorded them.
type SegmentEvent struct {
	Name   string `json:"name"`
	TS     int64  `json:"ts"`
	Dur    int64  `json:"dur"`
	TID    int64  `json:"tid"`
	ID     uint64 `json:"id,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
}

// Segment is one process's slice of a distributed trace: the spans one
// tracer buffered, stamped with the wall-clock base that lets a
// receiving tracer rebase them into its own timeline. Workers ship
// segments to the coordinator over the dist protocol; campaignd bundles
// drained segments per job for download.
type Segment struct {
	// Process names the originating process ("workerA", "campaignd");
	// it becomes the pid's track name in the merged trace.
	Process string `json:"process,omitempty"`
	// Pid is the pid the draining tracer had assigned (informational;
	// receivers remap pids wholesale).
	Pid int64 `json:"pid,omitempty"`
	// BaseUnixMicro is the originating tracer's start in wall-clock µs.
	BaseUnixMicro int64 `json:"base_unix_micro"`
	// Parent, when set, is the span id (in the receiving process) every
	// parentless event of this segment nests under — the coordinator
	// lease span that granted the work.
	Parent uint64         `json:"parent,omitempty"`
	Events []SegmentEvent `json:"events"`
}

// Bundle is a set of segments forming one job's distributed trace. It is
// the payload of GET /api/v1/jobs/<id>/trace?format=segments.
type Bundle struct {
	Segments []Segment `json:"segments"`
}

// MarshalJSON-friendly parse of a bundle download.
func ParseBundle(data []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("obs: bad trace bundle: %w", err)
	}
	return &b, nil
}

// EncodeBundle renders b as JSON.
func EncodeBundle(b *Bundle) ([]byte, error) {
	return json.Marshal(b)
}

// WriteChromeJSON renders the bundle as one merged Chrome trace-event
// JSON file: segments are rebased onto the earliest base and assigned
// pids in order (the first segment — conventionally the coordinator —
// gets LocalPid).
func (b *Bundle) WriteChromeJSON(w io.Writer) error {
	t := newTracer()
	if len(b.Segments) > 0 {
		base := b.Segments[0].BaseUnixMicro
		for _, seg := range b.Segments[1:] {
			if seg.BaseUnixMicro < base {
				base = seg.BaseUnixMicro
			}
		}
		t.baseMicro = base
	}
	for i, seg := range b.Segments {
		t.MergeSegment(seg, int64(LocalPid+i))
	}
	return t.WriteJSON(w)
}

// NewTraceID returns a random non-zero 64-bit trace id. Trace ids are
// correlation labels — they thread through log lines and wire frames so
// one campaign's activity can be grepped across processes — and are
// never part of any computed result.
func NewTraceID() uint64 {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			// Fall back to the span-id counter; uniqueness within the
			// process is all correlation needs.
			return spanIDs.Add(1) | 1<<63
		}
		if id := binary.BigEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
}

// FormatTraceID renders a trace id in the fixed-width hex form used in
// log fields and HTTP headers.
func FormatTraceID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseTraceID parses FormatTraceID output (leniently: any hex string up
// to 16 digits).
func ParseTraceID(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("obs: empty trace id")
	}
	id, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("obs: bad trace id %q: %w", s, err)
	}
	return id, nil
}

// FormatTraceparent renders a W3C traceparent-style header value for a
// 64-bit trace id (zero-padded into the 128-bit trace-id field; the
// parent-id field carries the same value for want of a per-request
// span).
func FormatTraceparent(id uint64) string {
	return fmt.Sprintf("00-%032x-%016x-01", id, id)
}

// ParseTraceparent extracts the trace id from a traceparent-style header
// value (the low 64 bits of the trace-id field). A bare hex id is also
// accepted.
func ParseTraceparent(v string) (uint64, error) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) >= 2 {
		field := parts[1]
		if len(field) > 16 {
			field = field[len(field)-16:]
		}
		return ParseTraceID(field)
	}
	return ParseTraceID(v)
}
