package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count: bucket i holds observations v
// with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i), with v == 0 in
// bucket 0. A non-negative int64 always lands in [0, 63].
const histBuckets = 64

// Histogram is a fixed-layout power-of-two histogram. Observe is two
// atomic adds; there is no configuration and no locking. One type serves
// nanosecond latencies, frontier depths, and byte counts — the unit is
// part of the metric name (_ns, _depth, _bytes).
type Histogram struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64
}

// bucketOf returns the bucket index for v (negative values clamp to 0).
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketBound returns the inclusive upper bound of bucket i (2^i - 1).
func BucketBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return 1<<63 - 1
	}
	return 1<<i - 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)].Add(1)
	h.sum.Add(v)
}

// ObserveSince records the nanoseconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(int64(time.Since(start)))
}

// Snapshot returns a consistent-enough copy for exposition and diffing.
// (Buckets are read one by one; a concurrent Observe may straddle the
// reads, which is fine for monitoring data.)
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Sum = h.sum.Load()
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Counts [histBuckets]int64
	Sum    int64
}

// Count returns the total number of observations in the snapshot.
func (s HistogramSnapshot) Count() int64 {
	var n int64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Sub returns the per-bucket difference s - earlier: the observations made
// between the two snapshots. Diffing is what turns the process-global
// histogram into a per-run one.
func (s HistogramSnapshot) Sub(earlier HistogramSnapshot) HistogramSnapshot {
	var d HistogramSnapshot
	for i := range s.Counts {
		d.Counts[i] = s.Counts[i] - earlier.Counts[i]
	}
	d.Sum = s.Sum - earlier.Sum
	return d
}

// Quantile returns an upper bound on the q-quantile (0 ≤ q ≤ 1) of the
// snapshot: the bound of the first bucket whose cumulative count reaches
// rank q. With power-of-two buckets the answer is within 2× of the true
// quantile — plenty for trend tracking. Returns 0 for an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	total := s.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(total-1)) + 1
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			return BucketBound(i)
		}
	}
	return BucketBound(histBuckets - 1)
}

// Mean returns the snapshot's arithmetic mean (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return float64(s.Sum) / float64(n)
}
