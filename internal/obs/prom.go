package obs

import (
	"bufio"
	"fmt"
	"io"
)

// WritePrometheus renders the Default registry in the Prometheus text
// exposition format (version 0.0.4).
func WritePrometheus(w io.Writer) error { return Default.WritePrometheus(w) }

// WritePrometheus renders every registered metric, sorted by name.
// Histograms emit cumulative _bucket series with power-of-two `le`
// bounds (only up to the highest non-empty bucket, then +Inf), plus the
// conventional _sum and _count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, m := range r.snapshot() {
		fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, m.kind)
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s %d\n", m.name, m.ctr.Load())
		case kindGauge:
			fmt.Fprintf(bw, "%s %d\n", m.name, m.gau.Load())
		case kindHistogram:
			s := m.hist.Snapshot()
			top := 0
			for i, c := range s.Counts {
				if c > 0 {
					top = i
				}
			}
			var cum int64
			for i := 0; i <= top; i++ {
				cum += s.Counts[i]
				fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", m.name, BucketBound(i), cum)
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", m.name, s.Count())
			fmt.Fprintf(bw, "%s_sum %d\n", m.name, s.Sum)
			fmt.Fprintf(bw, "%s_count %d\n", m.name, s.Count())
		}
	}
	return bw.Flush()
}
