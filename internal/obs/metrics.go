package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is usable,
// but counters are normally created through NewCounter so they appear in
// the registry's exposition.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to keep the counter monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (queue lengths, active jobs).
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// metricKind tags a registry entry for the exposition writer.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered entry; exactly one of the three pointers is set.
type metric struct {
	name string
	kind metricKind
	regs int // lookupOrCreate calls for this name (lint: should be 1)
	ctr  *Counter
	gau  *Gauge
	hist *Histogram
}

// regShards is the registry fan-out. Creation hashes the name to a shard,
// so even heavy dynamic registration (there is none today — metrics are
// package vars) would not serialize on one lock. The update path holds no
// lock at all: handles are bare atomics.
const regShards = 16

type registryShard struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// Registry holds named metrics. The package-level Default registry is the
// one all SOFT instrumentation uses; independent registries exist for
// tests.
type Registry struct {
	shards [regShards]registryShard
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.shards {
		r.shards[i].metrics = make(map[string]*metric)
	}
	return r
}

// Default is the process-wide registry backing NewCounter, NewGauge,
// NewHistogram, and WritePrometheus.
var Default = NewRegistry()

func (r *Registry) shardFor(name string) *registryShard {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return &r.shards[h%regShards]
}

// lookupOrCreate returns the entry for name, creating it with make when
// absent. It panics if name is already registered with a different kind —
// that is a programming error, caught at init time since metrics are
// package vars.
func (r *Registry) lookupOrCreate(name string, kind metricKind, make func() *metric) *metric {
	sh := r.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if m, ok := sh.metrics[name]; ok {
		if m.kind != kind {
			panic("obs: metric " + name + " re-registered as " + kind.String() + ", was " + m.kind.String())
		}
		m.regs++
		return m
	}
	m := make()
	m.regs = 1
	sh.metrics[name] = m
	return m
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	m := r.lookupOrCreate(name, kindCounter, func() *metric {
		return &metric{name: name, kind: kindCounter, ctr: &Counter{}}
	})
	return m.ctr
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	m := r.lookupOrCreate(name, kindGauge, func() *metric {
		return &metric{name: name, kind: kindGauge, gau: &Gauge{}}
	})
	return m.gau
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	m := r.lookupOrCreate(name, kindHistogram, func() *metric {
		return &metric{name: name, kind: kindHistogram, hist: &Histogram{}}
	})
	return m.hist
}

// snapshot returns every registered metric sorted by name.
func (r *Registry) snapshot() []*metric {
	var all []*metric
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, m := range sh.metrics {
			all = append(all, m)
		}
		sh.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].name < all[j].name })
	return all
}

// Names returns every registered metric name, sorted. It exists for the
// metrics-name lint: instrumented packages register under init, so a
// test that imports them and walks Names sees the full inventory.
func (r *Registry) Names() []string {
	ms := r.snapshot()
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.name
	}
	return names
}

// Registrations returns how many times each name was registered. Every
// metric is meant to be created exactly once, in a package-level var
// block; a count above one means two call sites race for the same name
// (the second silently shares the first's handle) and the lint test
// flags it.
func (r *Registry) Registrations() map[string]int {
	out := make(map[string]int)
	for _, m := range r.snapshot() {
		out[m.name] = m.regs
	}
	return out
}

// NewCounter registers (or fetches) a counter in the Default registry.
func NewCounter(name string) *Counter { return Default.Counter(name) }

// NewGauge registers (or fetches) a gauge in the Default registry.
func NewGauge(name string) *Gauge { return Default.Gauge(name) }

// NewHistogram registers (or fetches) a histogram in the Default registry.
func NewHistogram(name string) *Histogram { return Default.Histogram(name) }
