package group

import (
	"testing"

	"github.com/soft-testing/soft/internal/agents/refswitch"
	"github.com/soft-testing/soft/internal/harness"
	"github.com/soft-testing/soft/internal/solver"
	"github.com/soft-testing/soft/internal/sym"
)

func exploreStats(t *testing.T) *harness.SerializedResult {
	t.Helper()
	tt, ok := harness.TestByName("Stats Request")
	if !ok {
		t.Fatal("missing test")
	}
	return harness.Explore(refswitch.New(), tt, harness.Options{}).Serialized()
}

func TestGroupingReducesCount(t *testing.T) {
	in := exploreStats(t)
	g := Paths(in)
	if len(g.Groups) == 0 || len(g.Groups) > len(in.Paths) {
		t.Fatalf("%d groups from %d paths", len(g.Groups), len(in.Paths))
	}
	total := 0
	for _, gr := range g.Groups {
		total += gr.PathCount
	}
	if total != len(in.Paths) {
		t.Fatalf("groups cover %d paths, want %d", total, len(in.Paths))
	}
}

func TestGroupConditionIsDisjunction(t *testing.T) {
	// C(r) must be satisfiable exactly where some member path condition
	// is: every member condition implies the group condition.
	in := exploreStats(t)
	g := Paths(in)
	s := solver.New()
	byCanon := map[string]*Group{}
	for i := range g.Groups {
		byCanon[g.Groups[i].Canonical] = &g.Groups[i]
	}
	for _, p := range in.Paths {
		gr := byCanon[p.Canonical]
		if gr == nil {
			t.Fatalf("path %d not grouped", p.ID)
		}
		// pc ∧ ¬C(r) must be unsatisfiable.
		if s.Sat(p.Cond, sym.LNot(gr.Cond)) {
			t.Fatalf("path %d not subsumed by its group condition", p.ID)
		}
	}
}

func TestGroupsDeterministicOrder(t *testing.T) {
	in := exploreStats(t)
	a, b := Paths(in), Paths(in)
	if len(a.Groups) != len(b.Groups) {
		t.Fatal("group counts differ between runs")
	}
	for i := range a.Groups {
		if a.Groups[i].Canonical != b.Groups[i].Canonical {
			t.Fatal("group order not deterministic")
		}
	}
}

func TestBalancedOrShallowerThanLinear(t *testing.T) {
	x := sym.Var("x", 16)
	var conds []*sym.Expr
	for i := 0; i < 64; i++ {
		conds = append(conds, sym.EqConst(x, uint64(i)))
	}
	bal := BalancedOr(conds)
	lin := LinearOr(conds)
	// The sym constructor flattens nested disjunctions, so the balanced
	// construction can never be deeper than the linear chain (and the
	// flattening itself subsumes the paper's balanced-tree optimization).
	if depth(bal) > depth(lin) {
		t.Fatalf("balanced depth %d deeper than linear %d", depth(bal), depth(lin))
	}
	// Both encode the same predicate.
	s := solver.New()
	if s.Sat(sym.LNot(sym.LOr(sym.LAnd(bal, sym.LNot(lin)), sym.LAnd(lin, sym.LNot(bal))))) == false {
		// equivalence: (bal xor lin) unsat
	}
	if s.Sat(sym.LAnd(bal, sym.LNot(lin))) || s.Sat(sym.LAnd(lin, sym.LNot(bal))) {
		t.Fatal("balanced and linear OR differ semantically")
	}
}

func depth(e *sym.Expr) int {
	d := 0
	for _, k := range e.Kids {
		if kd := depth(k); kd > d {
			d = kd
		}
	}
	return d + 1
}

func TestBalancedOrEdgeCases(t *testing.T) {
	if !BalancedOr(nil).IsFalse() {
		t.Fatal("empty disjunction must be false")
	}
	x := sym.EqConst(sym.Var("x", 8), 1)
	if BalancedOr([]*sym.Expr{x}) != x {
		t.Fatal("singleton disjunction must be the condition itself")
	}
}

func TestGroupKeepsCrashFlagAndModel(t *testing.T) {
	tt, _ := harness.TestByName("Packet Out")
	in := harness.Explore(refswitch.New(), tt, harness.Options{WantModels: true}).Serialized()
	g := Paths(in)
	foundCrash := false
	for _, gr := range g.Groups {
		if gr.Crashed {
			foundCrash = true
			if gr.Model == nil {
				t.Fatal("crash group lost its sample model")
			}
		}
	}
	if !foundCrash {
		t.Fatal("Packet Out grouping lost the crash behavior")
	}
}

func BenchmarkGroupingStatsRequest(b *testing.B) {
	tt, _ := harness.TestByName("Stats Request")
	in := harness.Explore(refswitch.New(), tt, harness.Options{}).Serialized()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Paths(in)
	}
}
