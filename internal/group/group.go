// Package group implements the first sub-stage of SOFT's second phase
// (§3.4, "Grouping paths by output results"): all path conditions that
// produced the same normalized output trace are merged into one group whose
// condition is the disjunction of the member conditions, C(r) = ∨{pc |
// res(pc) = r}. Grouping reduces the number of solver queries in the
// crosscheck from |paths_A|·|paths_B| to |results_A|·|results_B| — a 1-5
// order of magnitude reduction in the paper's runs (Table 3).
//
// Following §4.2, the disjunction is built as a balanced binary OR tree,
// minimizing the depth of nested expressions the solver's encoder must
// traverse. (The sym constructors additionally flatten nested disjunctions
// into one n-ary node, which subsumes the balancing; BalancedOr keeps the
// §4.2 construction order and the ablation bench compares it against the
// naive chain.)
package group

import (
	"sort"
	"time"

	"github.com/soft-testing/soft/internal/harness"
	"github.com/soft-testing/soft/internal/sym"
)

// Group is one distinct output result and the input subspace producing it.
type Group struct {
	// Canonical is the normalized trace all member paths produced.
	Canonical string
	// Template is the trace's structural shape (expressions elided).
	Template string
	// Exprs are the trace's embedded value expressions.
	Exprs []*sym.Expr
	// Cond is the disjunction of member path conditions (balanced OR
	// tree).
	Cond *sym.Expr
	// Crashed reports whether the member paths ended in a crash.
	Crashed bool
	// PathCount is the number of merged paths.
	PathCount int
	// Model is a sample input from one member path (when available).
	Model sym.Assignment
}

// Result is a grouped phase-1 result.
type Result struct {
	Agent  string
	Test   string
	Groups []Group
	// Elapsed is the grouping time (Table 3's "Grouping results" column).
	Elapsed time.Duration
}

// Paths groups a serialized phase-1 result by canonical output.
func Paths(in *harness.SerializedResult) *Result {
	start := time.Now()
	byCanon := make(map[string]*Group)
	conds := make(map[string][]*sym.Expr)
	var order []string
	for i := range in.Paths {
		p := &in.Paths[i]
		g, ok := byCanon[p.Canonical]
		if !ok {
			g = &Group{
				Canonical: p.Canonical,
				Template:  p.Template,
				Exprs:     p.Exprs,
				Crashed:   p.Crashed,
				Model:     p.Model,
			}
			byCanon[p.Canonical] = g
			order = append(order, p.Canonical)
		}
		g.PathCount++
		conds[p.Canonical] = append(conds[p.Canonical], p.Cond)
	}
	sort.Strings(order)
	out := &Result{Agent: in.Agent, Test: in.Test}
	for _, c := range order {
		g := byCanon[c]
		g.Cond = BalancedOr(conds[c])
		out.Groups = append(out.Groups, *g)
	}
	out.Elapsed = time.Since(start)
	return out
}

// BalancedOr disjoins conditions as a balanced binary tree (§4.2: "we
// group path conditions by building a balanced binary tree minimizing the
// depth of nested expressions").
func BalancedOr(conds []*sym.Expr) *sym.Expr {
	switch len(conds) {
	case 0:
		return sym.Bool(false)
	case 1:
		return conds[0]
	}
	mid := len(conds) / 2
	return sym.LOr(BalancedOr(conds[:mid]), BalancedOr(conds[mid:]))
}

// LinearOr disjoins conditions as a right-leaning chain — the unbalanced
// alternative, kept for the ablation bench comparing §4.2's choice.
func LinearOr(conds []*sym.Expr) *sym.Expr {
	out := sym.Bool(false)
	for _, c := range conds {
		out = sym.LOr(out, c)
	}
	return out
}
