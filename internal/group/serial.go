package group

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/soft-testing/soft/internal/sym"
)

// The groups file format persists a grouped phase-1 result — the output of
// Paths, including the §4.2 BalancedOr disjunctions — so repeated
// crosschecks over the same results file can skip the grouping phase
// entirely (the result store caches these, keyed by the source result's
// content hash). The format follows the results-file conventions:
// line-oriented text, canonical s-expressions, quoted strings.

// groupsMagic versions the groups file format.
const groupsMagic = "soft-groups v1"

// Write serializes g. The rendering is canonical: the same grouped result
// always produces the same bytes (Elapsed, a wall-clock measurement, is
// not serialized).
func (r *Result) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, groupsMagic)
	fmt.Fprintf(bw, "agent %q\n", r.Agent)
	fmt.Fprintf(bw, "test %q\n", r.Test)
	fmt.Fprintf(bw, "groups %d\n", len(r.Groups))
	for i := range r.Groups {
		g := &r.Groups[i]
		fmt.Fprintf(bw, "group %d paths=%d crashed=%t\n", i, g.PathCount, g.Crashed)
		fmt.Fprintf(bw, "canonical %q\n", g.Canonical)
		fmt.Fprintf(bw, "template %q\n", g.Template)
		fmt.Fprintf(bw, "cond %s\n", g.Cond.String())
		fmt.Fprintf(bw, "nexprs %d\n", len(g.Exprs))
		for _, e := range g.Exprs {
			fmt.Fprintf(bw, "expr %s\n", e.String())
		}
		if len(g.Model) > 0 {
			names := make([]string, 0, len(g.Model))
			for n := range g.Model {
				names = append(names, n)
			}
			sort.Strings(names)
			fmt.Fprint(bw, "model")
			for _, n := range names {
				fmt.Fprintf(bw, " %s=%d", n, g.Model[n])
			}
			fmt.Fprintln(bw)
		}
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// Read parses a groups file written by Write. The returned result's
// Elapsed is zero: a cached grouping costs no grouping time.
func Read(r io.Reader) (*Result, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	line := func() (string, bool) {
		if !sc.Scan() {
			return "", false
		}
		return sc.Text(), true
	}
	l, ok := line()
	if !ok {
		return nil, fmt.Errorf("group: not a groups file: empty input, expected %q header", groupsMagic)
	}
	if l != groupsMagic {
		return nil, fmt.Errorf("group: not a groups file: expected %q header, got %q", groupsMagic, l)
	}
	out := &Result{}
	var cur *Group
	for {
		l, ok = line()
		if !ok {
			return nil, fmt.Errorf("group: truncated groups file")
		}
		if l == "end" {
			return out, nil
		}
		field, rest, _ := strings.Cut(l, " ")
		switch field {
		case "agent":
			if _, err := fmt.Sscanf(rest, "%q", &out.Agent); err != nil {
				return nil, fmt.Errorf("group: bad agent line: %v", err)
			}
		case "test":
			if _, err := fmt.Sscanf(rest, "%q", &out.Test); err != nil {
				return nil, fmt.Errorf("group: bad test line: %v", err)
			}
		case "groups":
			n, _ := strconv.Atoi(rest)
			out.Groups = make([]Group, 0, n)
		case "group":
			out.Groups = append(out.Groups, Group{})
			cur = &out.Groups[len(out.Groups)-1]
			var idx int
			if _, err := fmt.Sscanf(rest, "%d paths=%d crashed=%t", &idx, &cur.PathCount, &cur.Crashed); err != nil {
				return nil, fmt.Errorf("group: bad group line: %v", err)
			}
		case "canonical":
			if cur == nil {
				return nil, fmt.Errorf("group: canonical before group")
			}
			if _, err := fmt.Sscanf(rest, "%q", &cur.Canonical); err != nil {
				return nil, fmt.Errorf("group: bad canonical: %v", err)
			}
		case "template":
			if cur == nil {
				return nil, fmt.Errorf("group: template before group")
			}
			if _, err := fmt.Sscanf(rest, "%q", &cur.Template); err != nil {
				return nil, fmt.Errorf("group: bad template: %v", err)
			}
		case "cond":
			if cur == nil {
				return nil, fmt.Errorf("group: cond before group")
			}
			e, err := sym.Parse(rest)
			if err != nil {
				return nil, fmt.Errorf("group: bad cond: %v", err)
			}
			cur.Cond = e
		case "nexprs":
			// Count line; the exprs follow.
		case "expr":
			if cur == nil {
				return nil, fmt.Errorf("group: expr before group")
			}
			e, err := sym.Parse(rest)
			if err != nil {
				return nil, fmt.Errorf("group: bad expr: %v", err)
			}
			cur.Exprs = append(cur.Exprs, e)
		case "model":
			if cur == nil {
				return nil, fmt.Errorf("group: model before group")
			}
			cur.Model = sym.Assignment{}
			for _, kv := range strings.Fields(rest) {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("group: bad model entry %q", kv)
				}
				x, err := strconv.ParseUint(v, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("group: bad model value %q", kv)
				}
				cur.Model[k] = x
			}
		default:
			return nil, fmt.Errorf("group: unknown field %q", field)
		}
	}
}
