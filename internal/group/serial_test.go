package group

import (
	"bytes"
	"strings"
	"testing"

	"github.com/soft-testing/soft/internal/sym"
)

// TestSerialRoundTrip: Write → Read → Write is a fixed point, and the
// parsed result is structurally equal to the original.
func TestSerialRoundTrip(t *testing.T) {
	x := sym.Var("x", 16)
	in := &Result{
		Agent: "Reference Switch",
		Test:  "Packet Out",
		Groups: []Group{
			{
				Canonical: "pkt-out:port=FLOOD\nline two",
				Template:  "pkt-out:port=%v",
				Exprs:     []*sym.Expr{x},
				Cond:      sym.Ult(x, sym.Const(16, 25)),
				PathCount: 3,
				Model:     sym.Assignment{"x": 7, "po.port": 0xfffd},
			},
			{
				Canonical: "crash \"quoted\"\tand tab",
				Template:  "crash",
				Cond:      sym.Bool(true),
				Crashed:   true,
				PathCount: 1,
			},
		},
	}
	var first bytes.Buffer
	if err := in.Write(&first); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("Read of own output: %v", err)
	}
	var second bytes.Buffer
	if err := got.Write(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("Write/Read/Write not a fixed point:\n--- first\n%s\n--- second\n%s", &first, &second)
	}
	if got.Agent != in.Agent || got.Test != in.Test || len(got.Groups) != len(in.Groups) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range in.Groups {
		g, w := &got.Groups[i], &in.Groups[i]
		if g.Canonical != w.Canonical || g.Template != w.Template ||
			g.Crashed != w.Crashed || g.PathCount != w.PathCount {
			t.Fatalf("group %d mismatch: %+v vs %+v", i, g, w)
		}
		if !sym.Equal(g.Cond, w.Cond) {
			t.Fatalf("group %d condition mismatch", i)
		}
		if len(g.Model) != len(w.Model) {
			t.Fatalf("group %d model mismatch", i)
		}
	}
}

// TestReadRejectsGarbage pins the error paths: wrong magic, truncation.
func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Read(strings.NewReader("soft-results v1\nend\n")); err == nil {
		t.Fatal("wrong magic accepted")
	}
	if _, err := Read(strings.NewReader("soft-groups v1\nagent \"a\"\n")); err == nil {
		t.Fatal("truncated file accepted")
	}
}
