// Package flowtable implements the OpenFlow 1.0 flow table the agent models
// install state into. Entries originate from (possibly symbolic) Flow Mod
// messages, so every field of an entry is a sym expression; matching a
// concrete probe packet against a symbolic entry produces a boolean
// expression the agent branches on — this is exactly how SOFT's concrete
// probes externalize symbolic switch state (§3.3).
package flowtable

import (
	"fmt"

	"github.com/soft-testing/soft/internal/dataplane"
	"github.com/soft-testing/soft/internal/openflow"
	"github.com/soft-testing/soft/internal/sym"
)

// SymAction is one action of an installed entry. Length is concrete per the
// structured-input rule (§3.2.1); Type and the argument bytes may be
// symbolic.
type SymAction struct {
	// Type is the 16-bit action type code.
	Type *sym.Expr
	// Arg16 is the primary 16-bit argument (output port, vlan vid, tp
	// port); nil when the action family has none.
	Arg16 *sym.Expr
	// Arg8 is the primary 8-bit argument (vlan pcp, nw tos).
	Arg8 *sym.Expr
	// Arg32 is the primary 32-bit argument (nw addresses, queue id).
	Arg32 *sym.Expr
	// Arg48 is the MAC argument for set_dl_{src,dst}.
	Arg48 *sym.Expr
	// MaxLen is the output action's max_len field.
	MaxLen *sym.Expr
}

// Entry is one installed flow. All match fields and metadata are symbolic
// expressions (concrete values are constant expressions).
type Entry struct {
	Wildcards *sym.Expr // 32
	InPort    *sym.Expr // 16
	DLSrc     *sym.Expr // 48
	DLDst     *sym.Expr // 48
	DLVLAN    *sym.Expr // 16
	DLVLANPCP *sym.Expr // 8
	DLType    *sym.Expr // 16
	NWTos     *sym.Expr // 8
	NWProto   *sym.Expr // 8
	NWSrc     *sym.Expr // 32
	NWDst     *sym.Expr // 32
	TPSrc     *sym.Expr // 16
	TPDst     *sym.Expr // 16

	Priority    *sym.Expr // 16
	Cookie      *sym.Expr // 64
	IdleTimeout *sym.Expr // 16
	HardTimeout *sym.Expr // 16
	Actions     []SymAction
	Emergency   bool

	// Packets and Bytes are per-entry counters for flow statistics replies.
	Packets uint64
	Bytes   uint64
}

// NewWildcardEntry returns an entry with every field fully wildcarded and
// zero metadata — the starting point for building concrete test entries.
func NewWildcardEntry() *Entry {
	z16 := sym.Const(16, 0)
	return &Entry{
		Wildcards:   sym.Const(32, uint64(openflow.FWAll)),
		InPort:      z16,
		DLSrc:       sym.Const(48, 0),
		DLDst:       sym.Const(48, 0),
		DLVLAN:      z16,
		DLVLANPCP:   sym.Const(8, 0),
		DLType:      z16,
		NWTos:       sym.Const(8, 0),
		NWProto:     sym.Const(8, 0),
		NWSrc:       sym.Const(32, 0),
		NWDst:       sym.Const(32, 0),
		TPSrc:       z16,
		TPDst:       z16,
		Priority:    z16,
		Cookie:      sym.Const(64, 0),
		IdleTimeout: z16,
		HardTimeout: z16,
	}
}

// wildBit returns the boolean expression "wildcard bit w is set in e".
func (e *Entry) wildBit(bit uint32) *sym.Expr {
	return sym.Ne(sym.And(e.Wildcards, sym.Const(32, uint64(bit))), sym.Const(32, 0))
}

// nwWildBits extracts the 6-bit address wildcard counter.
func (e *Entry) nwWildBits(shift uint32) *sym.Expr {
	return sym.Extract(sym.Lshr(e.Wildcards, int(shift)), 5, 0)
}

// fieldCond builds "bit wildcarded OR field equals packet field".
func (e *Entry) fieldCond(bit uint32, field, pktField *sym.Expr) *sym.Expr {
	return sym.LOr(e.wildBit(bit), sym.Eq(field, pktField))
}

// addrCond builds the CIDR-style condition for nw_src/nw_dst: with k low
// bits wildcarded, the top 32-k bits must agree; k >= 32 ignores the field.
func (e *Entry) addrCond(shift uint32, field, pktField *sym.Expr) *sym.Expr {
	bits := e.nwWildBits(shift) // 6-bit
	cond := sym.Bool(false)
	// k >= 32: always match.
	cond = sym.LOr(cond, sym.Uge(bits, sym.Const(6, 32)))
	// Exact k: compare high 32-k bits. Enumerate the 33 concrete cases;
	// constant wildcards fold to a single comparison.
	for k := 0; k < 32; k++ {
		eqHigh := sym.Eq(sym.Lshr(field, k), sym.Lshr(pktField, k))
		cond = sym.LOr(cond, sym.LAnd(sym.EqConst(bits, uint64(k)), eqHigh))
	}
	return cond
}

// MatchCond returns the boolean expression "packet p matches entry e".
func (e *Entry) MatchCond(p *dataplane.Packet) *sym.Expr {
	return sym.LAnd(
		e.fieldCond(openflow.FWInPort, e.InPort, p.MatchInPort()),
		e.fieldCond(openflow.FWDLSrc, e.DLSrc, p.MatchDLSrc()),
		e.fieldCond(openflow.FWDLDst, e.DLDst, p.MatchDLDst()),
		e.fieldCond(openflow.FWDLVLAN, e.DLVLAN, p.MatchDLVLAN()),
		e.fieldCond(openflow.FWDLVLANPCP, e.DLVLANPCP, p.MatchDLVLANPCP()),
		e.fieldCond(openflow.FWDLType, e.DLType, p.MatchDLType()),
		e.fieldCond(openflow.FWNWTos, e.NWTos, p.MatchNWTos()),
		e.fieldCond(openflow.FWNWProto, e.NWProto, p.MatchNWProto()),
		e.addrCond(openflow.FWNWSrcShift, e.NWSrc, p.MatchNWSrc()),
		e.addrCond(openflow.FWNWDstShift, e.NWDst, p.MatchNWDst()),
		e.fieldCond(openflow.FWTPSrc, e.TPSrc, p.MatchTPSrc()),
		e.fieldCond(openflow.FWTPDst, e.TPDst, p.MatchTPDst()),
	)
}

// MatchConds returns MatchCond split into per-field conjuncts, in match
// field order. Agents branch on each in sequence — the short-circuiting
// field-comparison loop of real classifiers, which is what makes a
// symbolic match partition probe processing finely (Table 5's "Concrete
// Match" row owes its contrast to this loop).
func (e *Entry) MatchConds(p *dataplane.Packet) []*sym.Expr {
	full := e.MatchCond(p)
	if full.Op == sym.OpLAnd {
		return full.Kids
	}
	return []*sym.Expr{full}
}

// subsumeField builds "a's field is equal-or-more-general than b's":
// a wildcarded, or both concrete-specified and equal.
func subsumeField(a, b *Entry, bit uint32, af, bf *sym.Expr) *sym.Expr {
	return sym.LOr(
		a.wildBit(bit),
		sym.LAnd(sym.LNot(b.wildBit(bit)), sym.Eq(af, bf)),
	)
}

// SubsumesCond returns the boolean expression "every packet matching b also
// matches a" — the non-strict DELETE / MODIFY applicability test.
func (a *Entry) SubsumesCond(b *Entry) *sym.Expr {
	conds := []*sym.Expr{
		subsumeField(a, b, openflow.FWInPort, a.InPort, b.InPort),
		subsumeField(a, b, openflow.FWDLSrc, a.DLSrc, b.DLSrc),
		subsumeField(a, b, openflow.FWDLDst, a.DLDst, b.DLDst),
		subsumeField(a, b, openflow.FWDLVLAN, a.DLVLAN, b.DLVLAN),
		subsumeField(a, b, openflow.FWDLVLANPCP, a.DLVLANPCP, b.DLVLANPCP),
		subsumeField(a, b, openflow.FWDLType, a.DLType, b.DLType),
		subsumeField(a, b, openflow.FWNWTos, a.NWTos, b.NWTos),
		subsumeField(a, b, openflow.FWNWProto, a.NWProto, b.NWProto),
		subsumeField(a, b, openflow.FWTPSrc, a.TPSrc, b.TPSrc),
		subsumeField(a, b, openflow.FWTPDst, a.TPDst, b.TPDst),
	}
	for _, sh := range []uint32{openflow.FWNWSrcShift, openflow.FWNWDstShift} {
		ab, bb := a.nwWildBits(sh), b.nwWildBits(sh)
		var af, bf *sym.Expr
		if sh == openflow.FWNWSrcShift {
			af, bf = a.NWSrc, b.NWSrc
		} else {
			af, bf = a.NWDst, b.NWDst
		}
		// a's prefix no longer than b's, and the common high bits equal
		// (or a fully wildcarded).
		c := sym.Uge(ab, sym.Const(6, 32))
		for k := 0; k < 32; k++ {
			eqHigh := sym.Eq(sym.Lshr(af, k), sym.Lshr(bf, k))
			c = sym.LOr(c, sym.LAnd(
				sym.EqConst(ab, uint64(k)),
				sym.Ule(bb, sym.Const(6, uint64(k))),
				eqHigh,
			))
		}
		conds = append(conds, c)
	}
	return sym.LAnd(conds...)
}

// SubsumesConds returns SubsumesCond split into its per-field conjuncts,
// in a fixed field order. Agents branch on each conjunct in sequence —
// mirroring the short-circuiting field loop real implementations use,
// which is what makes symbolic execution partition DELETE/MODIFY
// processing finely (the paper's CS FlowMods test owes its path counts to
// this loop).
func (a *Entry) SubsumesConds(b *Entry) []*sym.Expr {
	full := a.SubsumesCond(b)
	if full.Op == sym.OpLAnd {
		return full.Kids
	}
	return []*sym.Expr{full}
}

// IdenticalConds returns IdenticalCond split into per-field conjuncts.
func (a *Entry) IdenticalConds(b *Entry) []*sym.Expr {
	full := a.IdenticalCond(b)
	if full.Op == sym.OpLAnd {
		return full.Kids
	}
	return []*sym.Expr{full}
}

// IdenticalCond returns "a and b have identical matches and priority" —
// the strict-command applicability test (OFPFC_MODIFY_STRICT /
// DELETE_STRICT) and the duplicate test on ADD.
func (a *Entry) IdenticalCond(b *Entry) *sym.Expr {
	same := func(bit uint32, af, bf *sym.Expr) *sym.Expr {
		// Both wildcarded, or neither and equal.
		return sym.LOr(
			sym.LAnd(a.wildBit(bit), b.wildBit(bit)),
			sym.LAnd(sym.LNot(a.wildBit(bit)), sym.LNot(b.wildBit(bit)), sym.Eq(af, bf)),
		)
	}
	conds := []*sym.Expr{
		sym.Eq(a.Priority, b.Priority),
		same(openflow.FWInPort, a.InPort, b.InPort),
		same(openflow.FWDLSrc, a.DLSrc, b.DLSrc),
		same(openflow.FWDLDst, a.DLDst, b.DLDst),
		same(openflow.FWDLVLAN, a.DLVLAN, b.DLVLAN),
		same(openflow.FWDLVLANPCP, a.DLVLANPCP, b.DLVLANPCP),
		same(openflow.FWDLType, a.DLType, b.DLType),
		same(openflow.FWNWTos, a.NWTos, b.NWTos),
		same(openflow.FWNWProto, a.NWProto, b.NWProto),
		same(openflow.FWTPSrc, a.TPSrc, b.TPSrc),
		same(openflow.FWTPDst, a.TPDst, b.TPDst),
	}
	for _, sh := range []uint32{openflow.FWNWSrcShift, openflow.FWNWDstShift} {
		ab, bb := a.nwWildBits(sh), b.nwWildBits(sh)
		var af, bf *sym.Expr
		if sh == openflow.FWNWSrcShift {
			af, bf = a.NWSrc, b.NWSrc
		} else {
			af, bf = a.NWDst, b.NWDst
		}
		c := sym.LAnd(sym.Uge(ab, sym.Const(6, 32)), sym.Uge(bb, sym.Const(6, 32)))
		for k := 0; k < 32; k++ {
			c = sym.LOr(c, sym.LAnd(
				sym.EqConst(ab, uint64(k)),
				sym.EqConst(bb, uint64(k)),
				sym.Eq(sym.Lshr(af, k), sym.Lshr(bf, k)),
			))
		}
		conds = append(conds, c)
	}
	return sym.LAnd(conds...)
}

// OverlapCond returns "a packet could match both a and b at equal priority"
// — the OFPFF_CHECK_OVERLAP test. Two field-wise matches overlap iff for
// every field at least one side wildcards it or the values agree.
func (a *Entry) OverlapCond(b *Entry) *sym.Expr {
	f := func(bit uint32, af, bf *sym.Expr) *sym.Expr {
		return sym.LOr(a.wildBit(bit), b.wildBit(bit), sym.Eq(af, bf))
	}
	conds := []*sym.Expr{
		sym.Eq(a.Priority, b.Priority),
		f(openflow.FWInPort, a.InPort, b.InPort),
		f(openflow.FWDLSrc, a.DLSrc, b.DLSrc),
		f(openflow.FWDLDst, a.DLDst, b.DLDst),
		f(openflow.FWDLVLAN, a.DLVLAN, b.DLVLAN),
		f(openflow.FWDLVLANPCP, a.DLVLANPCP, b.DLVLANPCP),
		f(openflow.FWDLType, a.DLType, b.DLType),
		f(openflow.FWNWTos, a.NWTos, b.NWTos),
		f(openflow.FWNWProto, a.NWProto, b.NWProto),
		f(openflow.FWTPSrc, a.TPSrc, b.TPSrc),
		f(openflow.FWTPDst, a.TPDst, b.TPDst),
	}
	for _, sh := range []uint32{openflow.FWNWSrcShift, openflow.FWNWDstShift} {
		ab, bb := a.nwWildBits(sh), b.nwWildBits(sh)
		var af, bf *sym.Expr
		if sh == openflow.FWNWSrcShift {
			af, bf = a.NWSrc, b.NWSrc
		} else {
			af, bf = a.NWDst, b.NWDst
		}
		// Overlap in the address dimension: agree on the bits above
		// max(ka, kb); equivalently above min 32.
		c := sym.LOr(sym.Uge(ab, sym.Const(6, 32)), sym.Uge(bb, sym.Const(6, 32)))
		for k := 0; k < 32; k++ {
			// max(ka,kb) == k cases folded: require agreement above k when
			// both <= k and at least one == k.
			agree := sym.Eq(sym.Lshr(af, k), sym.Lshr(bf, k))
			atK := sym.LOr(
				sym.LAnd(sym.EqConst(ab, uint64(k)), sym.Ule(bb, sym.Const(6, uint64(k)))),
				sym.LAnd(sym.EqConst(bb, uint64(k)), sym.Ule(ab, sym.Const(6, uint64(k)))),
			)
			c = sym.LOr(c, sym.LAnd(atK, agree))
		}
		conds = append(conds, c)
	}
	return sym.LAnd(conds...)
}

// Table is a flow table: a normal entry list plus the emergency cache
// (OpenFlow 1.0 §3.3; the reference switch supports emergency entries, Open
// vSwitch 1.0.0 does not — one of the paper's §5.1.2 findings).
type Table struct {
	Entries   []*Entry
	Emergency []*Entry
	// Capacity bounds the normal entry list; Add reports table-full beyond
	// it.
	Capacity int
}

// New returns an empty table with the given capacity (0 = default 1024).
func New(capacity int) *Table {
	if capacity == 0 {
		capacity = 1024
	}
	return &Table{Capacity: capacity}
}

// Add appends an entry. It reports false when the table is full.
func (t *Table) Add(e *Entry) bool {
	if e.Emergency {
		t.Emergency = append(t.Emergency, e)
		return true
	}
	if len(t.Entries) >= t.Capacity {
		return false
	}
	t.Entries = append(t.Entries, e)
	return true
}

// Remove deletes the entry at index i of the normal list.
func (t *Table) Remove(i int) {
	t.Entries = append(t.Entries[:i], t.Entries[i+1:]...)
}

// Len returns the number of normal entries.
func (t *Table) Len() int { return len(t.Entries) }

// String summarizes the table for traces and debugging.
func (t *Table) String() string {
	return fmt.Sprintf("flowtable{%d entries, %d emergency}", len(t.Entries), len(t.Emergency))
}
