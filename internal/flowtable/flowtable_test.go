package flowtable

import (
	"testing"

	"github.com/soft-testing/soft/internal/dataplane"
	"github.com/soft-testing/soft/internal/openflow"
	"github.com/soft-testing/soft/internal/solver"
	"github.com/soft-testing/soft/internal/sym"
)

// concreteEntry builds an entry matching TCP packets to 10.0.0.2:2000.
func concreteEntry() *Entry {
	e := NewWildcardEntry()
	e.Wildcards = sym.Const(32, uint64(openflow.FWAll&^(openflow.FWDLType|openflow.FWNWProto|openflow.FWTPDst)))
	e.DLType = sym.Const(16, dataplane.EtherTypeIPv4)
	e.NWProto = sym.Const(8, dataplane.ProtoTCP)
	e.TPDst = sym.Const(16, 2000)
	return e
}

func TestConcreteMatch(t *testing.T) {
	e := concreteEntry()
	p := dataplane.TCPProbe(1)
	cond := e.MatchCond(p)
	if !sym.EvalBool(cond, nil) {
		t.Fatal("probe must match the TCP entry")
	}
	// Different destination port: no match.
	p2 := p.Clone()
	p2.TPDst = sym.Const(16, 2001)
	if sym.EvalBool(e.MatchCond(p2), nil) {
		t.Fatal("probe with wrong port must not match")
	}
}

func TestWildcardAllMatchesEverything(t *testing.T) {
	e := NewWildcardEntry()
	for _, p := range []*dataplane.Packet{
		dataplane.TCPProbe(1), dataplane.EthernetProbe(9),
	} {
		if !sym.EvalBool(e.MatchCond(p), nil) {
			t.Fatalf("wildcard-all must match %s", p.CanonicalString())
		}
	}
}

func TestSymbolicEntryMatchForksOnPort(t *testing.T) {
	// Entry with symbolic in_port (all else wildcarded): the match
	// condition must be satisfiable exactly when in_port == probe port.
	e := NewWildcardEntry()
	e.Wildcards = sym.Const(32, uint64(openflow.FWAll&^openflow.FWInPort))
	e.InPort = sym.Var("fm.in_port", 16)
	p := dataplane.TCPProbe(3)
	cond := e.MatchCond(p)

	s := solver.New()
	r, m := s.Check(cond)
	if r != solver.Sat {
		t.Fatal("match must be satisfiable")
	}
	if m["fm.in_port"] != 3 {
		t.Fatalf("witness in_port = %d, want 3", m["fm.in_port"])
	}
	if s.Sat(cond, sym.Ne(sym.Var("fm.in_port", 16), sym.Const(16, 3))) {
		t.Fatal("match with in_port != 3 must be unsat")
	}
}

func TestCIDRMatch(t *testing.T) {
	// nw_dst = 10.0.0.0/24 (8 low bits wildcarded).
	e := NewWildcardEntry()
	wild := (openflow.FWAll &^ (openflow.FWNWDstMask | openflow.FWDLType)) | (8 << openflow.FWNWDstShift)
	e.Wildcards = sym.Const(32, uint64(wild))
	e.DLType = sym.Const(16, dataplane.EtherTypeIPv4)
	e.NWDst = sym.Const(32, 0x0a000000)

	in := dataplane.TCPProbe(1) // nw_dst 10.0.0.2
	if !sym.EvalBool(e.MatchCond(in), nil) {
		t.Fatal("10.0.0.2 must match 10.0.0.0/24")
	}
	out := in.Clone()
	out.NWDst = sym.Const(32, 0x0a000102) // 10.0.1.2
	if sym.EvalBool(e.MatchCond(out), nil) {
		t.Fatal("10.0.1.2 must not match 10.0.0.0/24")
	}
}

func TestAddrFullyWildcarded(t *testing.T) {
	e := NewWildcardEntry()
	// 63 wildcarded bits (> 32) must behave as fully wildcarded.
	wild := (openflow.FWAll &^ openflow.FWNWSrcMask) | (63 << openflow.FWNWSrcShift)
	e.Wildcards = sym.Const(32, uint64(wild))
	e.NWSrc = sym.Const(32, 0xffffffff)
	if !sym.EvalBool(e.MatchCond(dataplane.TCPProbe(1)), nil) {
		t.Fatal("63 wild bits must ignore nw_src")
	}
}

func TestSubsumesCondConcrete(t *testing.T) {
	all := NewWildcardEntry()
	specific := concreteEntry()
	if !sym.EvalBool(all.SubsumesCond(specific), nil) {
		t.Fatal("wildcard-all subsumes everything")
	}
	if sym.EvalBool(specific.SubsumesCond(all), nil) {
		t.Fatal("specific entry must not subsume wildcard-all")
	}
	if !sym.EvalBool(specific.SubsumesCond(specific), nil) {
		t.Fatal("subsumption is reflexive")
	}
}

func TestSubsumesCondSymbolic(t *testing.T) {
	// A delete with symbolic tp_dst: subsumption of the installed concrete
	// entry holds exactly when tp_dst == 2000 (given same other fields).
	installed := concreteEntry()
	del := concreteEntry()
	del.TPDst = sym.Var("del.tp_dst", 16)
	cond := del.SubsumesCond(installed)

	s := solver.New()
	r, m := s.Check(cond)
	if r != solver.Sat {
		t.Fatal("subsumption must be satisfiable")
	}
	if m["del.tp_dst"] != 2000 {
		t.Fatalf("witness tp_dst = %d, want 2000", m["del.tp_dst"])
	}
	if s.Sat(cond, sym.Ne(sym.Var("del.tp_dst", 16), sym.Const(16, 2000))) {
		t.Fatal("subsumption with tp_dst != 2000 must be unsat")
	}
}

func TestIdenticalCond(t *testing.T) {
	a, b := concreteEntry(), concreteEntry()
	if !sym.EvalBool(a.IdenticalCond(b), nil) {
		t.Fatal("identical entries must compare identical")
	}
	b.Priority = sym.Const(16, 7)
	if sym.EvalBool(a.IdenticalCond(b), nil) {
		t.Fatal("different priorities are not identical")
	}
	c := concreteEntry()
	c.Wildcards = sym.Const(32, uint64(openflow.FWAll))
	if sym.EvalBool(a.IdenticalCond(c), nil) {
		t.Fatal("different wildcard sets are not identical")
	}
}

func TestOverlapCond(t *testing.T) {
	// in_port=1 (others wild) overlaps tp_dst=2000 (others wild): a packet
	// can have both.
	a := NewWildcardEntry()
	a.Wildcards = sym.Const(32, uint64(openflow.FWAll&^openflow.FWInPort))
	a.InPort = sym.Const(16, 1)
	b := NewWildcardEntry()
	b.Wildcards = sym.Const(32, uint64(openflow.FWAll&^openflow.FWTPDst))
	b.TPDst = sym.Const(16, 2000)
	if !sym.EvalBool(a.OverlapCond(b), nil) {
		t.Fatal("disjoint-field matches overlap")
	}
	// in_port=1 vs in_port=2: no overlap.
	c := NewWildcardEntry()
	c.Wildcards = a.Wildcards
	c.InPort = sym.Const(16, 2)
	if sym.EvalBool(a.OverlapCond(c), nil) {
		t.Fatal("conflicting in_port matches cannot overlap")
	}
	// Different priorities never trigger the overlap check.
	d := NewWildcardEntry()
	d.Priority = sym.Const(16, 5)
	if sym.EvalBool(a.OverlapCond(d), nil) {
		t.Fatal("different priorities must not overlap")
	}
}

func TestTableAddRemoveCapacity(t *testing.T) {
	tbl := New(2)
	if !tbl.Add(NewWildcardEntry()) || !tbl.Add(NewWildcardEntry()) {
		t.Fatal("adds within capacity must succeed")
	}
	if tbl.Add(NewWildcardEntry()) {
		t.Fatal("add beyond capacity must fail")
	}
	if tbl.Len() != 2 {
		t.Fatalf("len %d", tbl.Len())
	}
	tbl.Remove(0)
	if tbl.Len() != 1 {
		t.Fatalf("len after remove %d", tbl.Len())
	}
}

func TestEmergencyEntriesSeparate(t *testing.T) {
	tbl := New(1)
	e := NewWildcardEntry()
	e.Emergency = true
	if !tbl.Add(e) {
		t.Fatal("emergency add must succeed")
	}
	if tbl.Len() != 0 || len(tbl.Emergency) != 1 {
		t.Fatal("emergency entries must not occupy the normal table")
	}
	// Emergency entries bypass the capacity bound.
	e2 := NewWildcardEntry()
	e2.Emergency = true
	if !tbl.Add(e2) {
		t.Fatal("second emergency add must succeed")
	}
}

// TestMatchSpecializationProperty: for a symbolic entry, specializing the
// match condition with a solver model and re-evaluating concretely must
// agree (flow table invariant from DESIGN.md §6).
func TestMatchSpecializationProperty(t *testing.T) {
	e := NewWildcardEntry()
	e.Wildcards = sym.Var("fm.wildcards", 32)
	e.TPDst = sym.Var("fm.tp_dst", 16)
	p := dataplane.TCPProbe(1)
	cond := e.MatchCond(p)

	s := solver.New()
	r, m := s.Check(cond)
	if r != solver.Sat {
		t.Fatal("some wildcard/tp_dst combination must match")
	}
	if !sym.EvalBool(cond, m) {
		t.Fatal("model does not satisfy the match condition it witnessed")
	}
	// And the negation has a witness too (e.g. exact-match entry with wrong
	// port).
	r, m2 := s.Check(sym.LNot(cond))
	if r != solver.Sat {
		t.Fatal("a non-matching combination must exist")
	}
	if sym.EvalBool(cond, m2) {
		t.Fatal("negation model still matches")
	}
}

func BenchmarkMatchCondConcrete(b *testing.B) {
	e := concreteEntry()
	p := dataplane.TCPProbe(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.MatchCond(p)
	}
}

func BenchmarkMatchCondSymbolicWildcards(b *testing.B) {
	e := NewWildcardEntry()
	e.Wildcards = sym.Var("w", 32)
	p := dataplane.TCPProbe(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.MatchCond(p)
	}
}
