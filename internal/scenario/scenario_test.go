package scenario

import (
	"strconv"
	"strings"
	"testing"

	"github.com/soft-testing/soft/internal/harness"
	"github.com/soft-testing/soft/internal/openflow"
	"github.com/soft-testing/soft/internal/sym"
)

func TestRegistrySeedsAndLookup(t *testing.T) {
	names := Names()
	if len(names) < 8 {
		t.Fatalf("seed library registers %d scenarios, want at least 8", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %q before %q", names[i-1], names[i])
		}
	}
	all := All()
	if len(all) != len(names) {
		t.Fatalf("All() returned %d scenarios for %d names", len(all), len(names))
	}
	for i, s := range all {
		if s.Name != names[i] {
			t.Fatalf("All()[%d].Name = %q, want %q", i, s.Name, names[i])
		}
		got, ok := ByName(s.Name)
		if !ok || got != s {
			t.Fatalf("ByName(%q) did not return the registered scenario", s.Name)
		}
	}
	if _, ok := ByName("no such scenario"); ok {
		t.Fatal("ByName resolved a nonexistent scenario")
	}
}

func TestRegisterRejectsBadScenarios(t *testing.T) {
	mustPanic := func(label string, s *Scenario) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("Register(%s) did not panic", label)
			}
		}()
		Register(s)
	}
	step := Step{Name: "probe", Build: func(ns harness.NewSymFn) harness.Input {
		return probeStep().Build(ns)
	}}
	mustPanic("nil", nil)
	mustPanic("empty name", &Scenario{Steps: []Step{step}})
	mustPanic("no steps", &Scenario{Name: "Stepless"})
	mustPanic("gen prefix", &Scenario{Name: "gen:extra", Steps: []Step{step}})
	mustPanic("Table 1 collision", &Scenario{Name: "Packet Out", Steps: []Step{step}})
	mustPanic("duplicate", &Scenario{Name: Names()[0], Steps: []Step{step}})
}

// TestDefHashIsDefinitionSensitive pins the cache-key contract: equal
// definitions hash equal across calls, and changing any part of any
// step's built bytes changes the hash.
func TestDefHashIsDefinitionSensitive(t *testing.T) {
	base := func(cmd openflow.FlowModCommand) *Scenario {
		spec := tcpMatchFM(cmd)
		spec.actions = []actSpec{{output: 2}}
		return &Scenario{
			Name:  "local",
			Steps: []Step{fmStep("install", spec), probeStep()},
		}
	}
	a, b := base(openflow.FCAdd), base(openflow.FCAdd)
	if a.DefHash() != a.DefHash() || a.DefHash() != b.DefHash() {
		t.Fatal("DefHash is not stable across calls and equal definitions")
	}
	if got := a.DefHash(); len(got) != 32 {
		t.Fatalf("DefHash length %d, want 32 hex chars", len(got))
	}
	if a.DefHash() == base(openflow.FCModify).DefHash() {
		t.Fatal("changing a step's command did not change DefHash")
	}

	// A renamed step changes the hash (the name is part of the definition);
	// so does dropping the probe.
	renamed := base(openflow.FCAdd)
	renamed.Steps[0].Name = "renamed"
	if renamed.DefHash() == a.DefHash() {
		t.Fatal("renaming a step did not change DefHash")
	}
	truncated := base(openflow.FCAdd)
	truncated.Steps = truncated.Steps[:1]
	if truncated.DefHash() == a.DefHash() {
		t.Fatal("dropping a step did not change DefHash")
	}

	// The scenario's own Name is deliberately *not* hashed: the hash keys
	// the definition, the name keys the registry.
	renamedScenario := base(openflow.FCAdd)
	renamedScenario.Name = "other"
	if renamedScenario.DefHash() != a.DefHash() {
		t.Fatal("renaming the scenario changed DefHash")
	}

	// Every seed and a sample of generated scenarios hash distinctly.
	hashes := map[string]string{}
	record := func(s *Scenario) {
		t.Helper()
		h := s.DefHash()
		if prev, dup := hashes[h]; dup {
			t.Fatalf("scenarios %q and %q share DefHash %s", prev, s.Name, h)
		}
		hashes[h] = s.Name
	}
	for _, s := range All() {
		record(s)
	}
	for _, n := range []int{0, 1, 2, 40, GeneratedCount() - 1} {
		g, ok := Generated(n)
		if !ok {
			t.Fatalf("Generated(%d) missing", n)
		}
		record(g)
	}
}

// TestStepNamespacing checks that each step's symbolic variables are
// prefixed by step index, so identical steps in one sequence stay
// distinguishable and exploration stays canonical.
func TestStepNamespacing(t *testing.T) {
	spec := wildFM(openflow.FCAdd)
	spec.symPriority = "priority"
	spec.actions = []actSpec{{output: 2}}
	s := &Scenario{
		Name:  "local",
		Steps: []Step{fmStep("first", spec), fmStep("second", spec), probeStep()},
	}
	test := s.Test()
	if test.MsgCount != 3 {
		t.Fatalf("MsgCount = %d, want 3", test.MsgCount)
	}
	inputs := test.Inputs(sym.Var)
	if len(inputs) != 3 {
		t.Fatalf("Inputs built %d steps, want 3", len(inputs))
	}
	for step, wantVar := range map[int]string{0: "(var s0.priority", 1: "(var s1.priority"} {
		msg := inputs[step].Msg
		if msg == nil {
			t.Fatalf("step %d built no message", step)
		}
		found := false
		for j := 0; j < msg.Len() && !found; j++ {
			found = strings.Contains(msg.Byte(j).String(), wantVar)
		}
		if !found {
			t.Errorf("step %d's message mentions no %q variable", step, wantVar)
		}
		// The other step's namespace must not leak in.
		other := "(var s" + map[int]string{0: "1", 1: "0"}[step] + ".priority"
		for j := 0; j < msg.Len(); j++ {
			if strings.Contains(msg.Byte(j).String(), other) {
				t.Errorf("step %d's message leaks variable %q", step, other)
			}
		}
	}
	if inputs[2].Probe == nil {
		t.Fatal("final step built no probe")
	}
}

func TestGeneratedEnumeration(t *testing.T) {
	k := len(genOps())
	if want := k*k + k*k*k; GeneratedCount() != want {
		t.Fatalf("GeneratedCount() = %d, want %d", GeneratedCount(), want)
	}
	if _, ok := Generated(-1); ok {
		t.Fatal("Generated(-1) resolved")
	}
	if _, ok := Generated(GeneratedCount()); ok {
		t.Fatal("Generated(count) resolved")
	}
	seenDesc := map[string]int{}
	for n := 0; n < GeneratedCount(); n++ {
		g, ok := Generated(n)
		if !ok {
			t.Fatalf("Generated(%d) missing", n)
		}
		if g.Name != GenPrefix+strconv.Itoa(n) {
			t.Fatalf("Generated(%d).Name = %q", n, g.Name)
		}
		wantSteps := 3
		if n >= k*k {
			wantSteps = 4
		}
		if len(g.Steps) != wantSteps {
			t.Fatalf("Generated(%d) has %d steps, want %d", n, len(g.Steps), wantSteps)
		}
		if prev, dup := seenDesc[g.Desc]; dup {
			t.Fatalf("Generated(%d) and Generated(%d) share description %q", prev, n, g.Desc)
		}
		seenDesc[g.Desc] = n
		byName, ok := ByName(g.Name)
		if !ok || byName.Desc != g.Desc {
			t.Fatalf("ByName(%q) does not round-trip", g.Name)
		}
	}
	for _, bad := range []string{"gen:", "gen:x", "gen:007", "gen:-3", "GEN:1"} {
		if _, ok := genIndex(bad); ok {
			t.Errorf("genIndex(%q) accepted a non-canonical name", bad)
		}
	}
}
