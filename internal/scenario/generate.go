package scenario

import (
	"strconv"
	"strings"

	"github.com/soft-testing/soft/internal/openflow"
)

// GenPrefix names generated scenarios: "gen:<index>". The index into the
// bounded template enumeration below is the scenario's entire identity —
// no clock, no randomness — so any process (a fleet worker, the campaign
// service, a warm store) resolves the same name to the same definition.
const GenPrefix = "gen:"

// genOp is one element of the generator's operation alphabet. Each op is
// a Flow Mod template with a small, fixed symbolic surface; the generator
// enumerates bounded sequences of ops, always followed by the TCP probe
// that makes the resulting table state observable.
type genOp struct {
	key  string
	desc string
	spec func() fmSpec
}

func genOps() []genOp {
	return []genOp{
		{"add", "concrete TCP ADD -> output:2", func() fmSpec {
			o := tcpMatchFM(openflow.FCAdd)
			o.actions = []actSpec{{output: 2}}
			return o
		}},
		{"addp", "wildcarded ADD with symbolic priority -> output:3", func() fmSpec {
			o := wildFM(openflow.FCAdd)
			o.symPriority = "priority"
			o.actions = []actSpec{{output: 3}}
			return o
		}},
		{"mod", "wildcarded MODIFY with symbolic SET_NW_TOS", func() fmSpec {
			o := wildFM(openflow.FCModify)
			o.actions = []actSpec{{symTos: "tos"}, {output: 2}}
			return o
		}},
		{"mods", "TCP MODIFY_STRICT with symbolic priority -> output:3", func() fmSpec {
			o := tcpMatchFM(openflow.FCModifyStrict)
			o.symPriority = "priority"
			o.actions = []actSpec{{output: 3}}
			return o
		}},
		{"del", "wildcarded DELETE with symbolic out_port filter", func() fmSpec {
			o := wildFM(openflow.FCDelete)
			o.symOutPort = "out_port"
			return o
		}},
		{"dels", "TCP DELETE_STRICT with symbolic priority", func() fmSpec {
			o := tcpMatchFM(openflow.FCDeleteStrict)
			o.symPriority = "priority"
			return o
		}},
	}
}

// GeneratedCount is the size of the enumeration: every length-2 op
// sequence first, then every length-3 sequence, in lexicographic op-index
// order. The ordering is the generator's public contract — index i names
// the same scenario forever (extending the alphabet or lengths appends,
// never reorders, or it must bump the scenario definition hashes).
func GeneratedCount() int {
	k := len(genOps())
	return k*k + k*k*k
}

// Generated returns the nth generated scenario.
func Generated(n int) (*Scenario, bool) {
	ops := genOps()
	k := len(ops)
	if n < 0 || n >= k*k+k*k*k {
		return nil, false
	}
	var seq []int
	if n < k*k {
		seq = []int{n / k, n % k}
	} else {
		m := n - k*k
		seq = []int{m / (k * k), (m / k) % k, m % k}
	}
	steps := make([]Step, 0, len(seq)+1)
	keys := make([]string, 0, len(seq))
	for _, oi := range seq {
		op := ops[oi]
		steps = append(steps, fmStep(op.key, op.spec()))
		keys = append(keys, op.key)
	}
	steps = append(steps, probeStep())
	return &Scenario{
		Name:  GenPrefix + strconv.Itoa(n),
		Desc:  "Generated sequence [" + strings.Join(keys, " ") + "] followed by a probing TCP packet.",
		Steps: steps,
	}, true
}

// genIndex parses a canonical generated-scenario name. Non-canonical
// spellings ("gen:007") are rejected so name <-> index stays bijective.
func genIndex(name string) (int, bool) {
	suffix, ok := strings.CutPrefix(name, GenPrefix)
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(suffix)
	if err != nil || n < 0 || strconv.Itoa(n) != suffix {
		return 0, false
	}
	return n, true
}
