// Package scenario is the stateful multi-message scenario subsystem: the
// matrix dimension where flow-table *state machines* get tested, not just
// single-message parsing (§5 finds its deepest interoperability bugs in
// exactly these install → modify/delete → probe interactions).
//
// A Scenario is a named deterministic sequence of Steps. Each step builds
// one harness.Input — a structured symbolic OpenFlow message or a data
// plane probe — using the same §3.2.1 discipline as the Table 1 suite
// (concrete types, lengths and action boundaries; symbolic values where a
// step declares them). Fresh symbolic variables are namespaced by step
// index ("s0.", "s1.", ...) so a scenario's exploration is a pure
// function of its definition and the canonical-order guarantees hold:
// scenario runs are byte-identical across worker counts, fleet layouts,
// and warm/cold stores.
//
// Scenarios compile down to harness.Test via (*Scenario).Test(), and the
// package registers a harness test source at init, so every layer that
// resolves tests by name — soft.Explore, the campaign scheduler,
// distributed fleet workers, the campaign service — resolves scenario
// names with no further plumbing. Two scenario families exist:
//
//   - The curated seed library (seeds.go): hand-written sequences aimed
//     at the §5.1.2 divergence classes (silent drops vs auto-masking,
//     buffered-packet handling, emergency flows, strict vs non-strict
//     modify/delete semantics), including one family shaped after the
//     realistic flow tables the contiv netplugin programs.
//   - The deterministic generator (generate.go): a bounded enumeration of
//     step-sequence templates named "gen:<index>". The index alone is the
//     identity — no clock, no randomness — so any process resolves the
//     same name to the same scenario without registration coordination.
//
// Caching: a scenario's definition can change without the binary
// changing, so (*Scenario).DefHash() — a hash of every step's built
// symbolic bytes — is carried on the compiled harness.Test and folded
// into internal/store cache keys. Editing a scenario misses the store by
// construction; everything else stays warm.
package scenario
