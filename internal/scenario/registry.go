package scenario

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/soft-testing/soft/internal/harness"
)

var (
	regMu    sync.RWMutex
	registry = map[string]*Scenario{}
	regNames []string
)

// Register adds a scenario to the process-wide registry (mirroring
// soft.RegisterAgent). It panics on an empty or duplicate name, on the
// reserved generator prefix, and on a name that would be shadowed by a
// built-in Table 1 test. Typically called from an init function.
func Register(s *Scenario) {
	if s == nil || s.Name == "" {
		panic("scenario: Register with empty name")
	}
	if strings.HasPrefix(s.Name, GenPrefix) {
		panic(fmt.Sprintf("scenario: name %q uses the reserved generator prefix %q", s.Name, GenPrefix))
	}
	if len(s.Steps) == 0 {
		panic(fmt.Sprintf("scenario: %q has no steps", s.Name))
	}
	if _, clash := builtinTest(s.Name); clash {
		panic(fmt.Sprintf("scenario: name %q collides with a Table 1 test", s.Name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate name %q", s.Name))
	}
	registry[s.Name] = s
	regNames = append(regNames, s.Name)
	sort.Strings(regNames)
}

// builtinTest reports whether name is a built-in Table 1 test. It checks
// the suite directly (not TestByName) so the scenario test source below
// cannot recurse into itself.
func builtinTest(name string) (harness.Test, bool) {
	for _, t := range harness.Tests() {
		if t.Name == name {
			return t, true
		}
	}
	return harness.Test{}, false
}

// ByName resolves a scenario: registered names first, then generated
// "gen:<index>" names (which resolve in any process, registered or not).
func ByName(name string) (*Scenario, bool) {
	if idx, ok := genIndex(name); ok {
		return Generated(idx)
	}
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names returns the registered scenario names, sorted. Generated
// scenarios are not listed — they are resolved on demand by index.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(regNames))
	copy(out, regNames)
	return out
}

// All returns the registered scenarios in Names() order.
func All() []*Scenario {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]*Scenario, 0, len(regNames))
	for _, n := range regNames {
		out = append(out, registry[n])
	}
	return out
}

func init() {
	// Every layer that resolves tests by name (scheduler, fleet workers,
	// campaign service) now resolves scenarios too.
	harness.RegisterTestSource(func(name string) (harness.Test, bool) {
		s, ok := ByName(name)
		if !ok {
			return harness.Test{}, false
		}
		return s.Test(), true
	})
	for _, s := range seeds() {
		Register(s)
	}
}
