package scenario

import (
	"github.com/soft-testing/soft/internal/agents"
	"github.com/soft-testing/soft/internal/dataplane"
	"github.com/soft-testing/soft/internal/harness"
	"github.com/soft-testing/soft/internal/openflow"
	"github.com/soft-testing/soft/internal/symbuf"
)

// The builders below follow the §3.2.1 structured-input discipline the
// Table 1 suite uses: message type, length, and action boundaries are
// always concrete; a step declares exactly which values are symbolic.

// actSpec is one action slot of a Flow Mod: a concrete OUTPUT, a
// STRIP_VLAN, or a SET_NW_TOS with a symbolic ToS argument — the §5.1.2
// value-validation divergence (OVS silently drops the whole message when
// the low ToS bits are set; the reference switch auto-masks with 0xfc).
type actSpec struct {
	output    uint16 // OUTPUT to this concrete port (when kind == actOutput)
	symTos    string // SET_NW_TOS with this symbolic 8-bit argument
	stripVLAN bool
}

// fmSpec assembles a Flow Mod message, concrete except where sym* fields
// name variables. The zero value is unusable; start from tcpMatchFM or
// wildFM.
type fmSpec struct {
	wild    uint32
	dlVLAN  uint16
	dlDst   uint64
	dlType  uint16
	nwProto uint8
	tpDst   uint16

	cookie      uint64
	command     openflow.FlowModCommand
	priority    uint16
	symPriority string
	idle, hard  uint16
	symIdle     string
	bufferID    uint32
	symBufferID string
	outPort     uint16
	symOutPort  string
	flags       uint16

	actions []actSpec
}

// tcpMatchFM matches the TCP probe flow (dl_type=IPv4, nw_proto=TCP,
// tp_dst=2000 — exactly what dataplane.TCPProbe carries).
func tcpMatchFM(cmd openflow.FlowModCommand) fmSpec {
	return fmSpec{
		wild:     uint32(openflow.FWAll &^ (openflow.FWDLType | openflow.FWNWProto | openflow.FWTPDst)),
		dlType:   uint16(dataplane.EtherTypeIPv4),
		nwProto:  uint8(dataplane.ProtoTCP),
		tpDst:    2000,
		cookie:   7,
		command:  cmd,
		priority: 0x8000,
		bufferID: openflow.NoBuffer,
		outPort:  openflow.PortNone,
	}
}

// wildFM matches everything (fully wildcarded).
func wildFM(cmd openflow.FlowModCommand) fmSpec {
	return fmSpec{
		wild:     uint32(openflow.FWAll),
		command:  cmd,
		priority: 0x8000,
		bufferID: openflow.NoBuffer,
		outPort:  openflow.PortNone,
	}
}

func (o fmSpec) build(ns harness.NewSymFn) *symbuf.Buffer {
	buf := symbuf.New(openflow.FlowModFixedLen + 8*len(o.actions))
	buf.PutConst(0, 1, openflow.Version)
	buf.PutConst(1, 1, uint64(openflow.TypeFlowMod))
	buf.PutConst(2, 2, uint64(buf.Len()))
	buf.PutConst(4, 4, 0) // xid: concrete, normalized away anyway

	m := agents.OffFMMatch
	buf.PutConst(m+agents.MOffWildcards, 4, uint64(o.wild))
	if o.wild&uint32(openflow.FWDLVLAN) == 0 {
		buf.PutConst(m+agents.MOffDLVLAN, 2, uint64(o.dlVLAN))
	}
	if o.wild&uint32(openflow.FWDLDst) == 0 {
		buf.PutConst(m+agents.MOffDLDst, 6, o.dlDst)
	}
	if o.wild&uint32(openflow.FWDLType) == 0 {
		buf.PutConst(m+agents.MOffDLType, 2, uint64(o.dlType))
	}
	if o.wild&uint32(openflow.FWNWProto) == 0 {
		buf.PutConst(m+agents.MOffNWProto, 1, uint64(o.nwProto))
	}
	if o.wild&uint32(openflow.FWTPDst) == 0 {
		buf.PutConst(m+agents.MOffTPDst, 2, uint64(o.tpDst))
	}

	buf.PutConst(agents.OffFMCookie, 8, o.cookie)
	buf.PutConst(agents.OffFMCommand, 2, uint64(o.command))
	if o.symIdle != "" {
		buf.Put(agents.OffFMIdle, ns(o.symIdle, 16))
	} else {
		buf.PutConst(agents.OffFMIdle, 2, uint64(o.idle))
	}
	buf.PutConst(agents.OffFMHard, 2, uint64(o.hard))
	if o.symPriority != "" {
		buf.Put(agents.OffFMPriority, ns(o.symPriority, 16))
	} else {
		buf.PutConst(agents.OffFMPriority, 2, uint64(o.priority))
	}
	if o.symBufferID != "" {
		buf.Put(agents.OffFMBufferID, ns(o.symBufferID, 32))
	} else {
		buf.PutConst(agents.OffFMBufferID, 4, uint64(o.bufferID))
	}
	if o.symOutPort != "" {
		buf.Put(agents.OffFMOutPort, ns(o.symOutPort, 16))
	} else {
		buf.PutConst(agents.OffFMOutPort, 2, uint64(o.outPort))
	}
	buf.PutConst(agents.OffFMFlags, 2, uint64(o.flags))

	off := agents.OffFMActions
	for _, a := range o.actions {
		switch {
		case a.symTos != "":
			buf.PutConst(off, 2, uint64(openflow.ActSetNWTos))
			buf.PutConst(off+2, 2, 8)
			buf.Put(off+4, ns(a.symTos, 8))
			// Pad bytes stay concrete zero.
		case a.stripVLAN:
			buf.PutConst(off, 2, uint64(openflow.ActStripVLAN))
			buf.PutConst(off+2, 2, 8)
		default:
			buf.PutConst(off, 2, uint64(openflow.ActOutput))
			buf.PutConst(off+2, 2, 8)
			buf.PutConst(off+4, 2, uint64(a.output))
			buf.PutConst(off+6, 2, 0xffff) // max_len
		}
		off += 8
	}
	return buf
}

// fmStep wraps an fmSpec as a scenario step.
func fmStep(name string, o fmSpec) Step {
	return Step{Name: name, Build: func(ns harness.NewSymFn) harness.Input {
		return harness.Input{Msg: o.build(ns)}
	}}
}

// probeStep injects the standard TCP probe (tp_dst=2000 — it hits
// whatever the tcpMatchFM entries left in the table).
func probeStep() Step {
	return Step{Name: "probe", Build: func(harness.NewSymFn) harness.Input {
		return harness.Input{Probe: dataplane.TCPProbe(1)}
	}}
}

// seeds is the curated scenario library, aimed at the §5.1.2 divergence
// classes that only flow-table *state* can expose.
func seeds() []*Scenario {
	withSym := func(o fmSpec, set func(*fmSpec)) fmSpec { set(&o); return o }

	return []*Scenario{
		{
			Name: "Add Overlap",
			Desc: "Concrete TCP ADD, then a fully wildcarded ADD with CHECK_OVERLAP and a symbolic priority, then a probing TCP packet.",
			Steps: []Step{
				fmStep("install", withSym(tcpMatchFM(openflow.FCAdd), func(o *fmSpec) {
					o.actions = []actSpec{{output: 2}}
				})),
				fmStep("overlap-add", withSym(wildFM(openflow.FCAdd), func(o *fmSpec) {
					o.symPriority = "priority"
					o.flags = uint16(openflow.FlagCheckOverlap)
					o.actions = []actSpec{{output: 3}}
				})),
				probeStep(),
			},
		},
		{
			Name: "Add Modify",
			Desc: "Concrete TCP ADD, then a non-strict MODIFY carrying SET_NW_TOS with a symbolic argument, then a probing TCP packet — OVS's silent pre-validation drop vs the reference switch's auto-masking, visible only through the surviving table state.",
			Steps: []Step{
				fmStep("install", withSym(tcpMatchFM(openflow.FCAdd), func(o *fmSpec) {
					o.actions = []actSpec{{output: 2}}
				})),
				fmStep("modify", withSym(wildFM(openflow.FCModify), func(o *fmSpec) {
					o.actions = []actSpec{{symTos: "tos"}, {output: 2}}
				})),
				probeStep(),
			},
		},
		{
			Name: "Add Modify Strict",
			Desc: "Concrete TCP ADD, then a MODIFY_STRICT with the same match but a symbolic priority (strict modify applies only on exact priority match), then a probing TCP packet.",
			Steps: []Step{
				fmStep("install", withSym(tcpMatchFM(openflow.FCAdd), func(o *fmSpec) {
					o.actions = []actSpec{{output: 2}}
				})),
				fmStep("modify-strict", withSym(tcpMatchFM(openflow.FCModifyStrict), func(o *fmSpec) {
					o.symPriority = "priority"
					o.actions = []actSpec{{output: 3}}
				})),
				probeStep(),
			},
		},
		{
			Name: "Add Delete Probe",
			Desc: "Concrete TCP ADD, then a fully wildcarded DELETE with a symbolic out_port filter, then a probing TCP packet — the probe observes whether the delete's port filter matched the entry's output action.",
			Steps: []Step{
				fmStep("install", withSym(tcpMatchFM(openflow.FCAdd), func(o *fmSpec) {
					o.actions = []actSpec{{output: 2}}
				})),
				fmStep("delete", withSym(wildFM(openflow.FCDelete), func(o *fmSpec) {
					o.symOutPort = "out_port"
				})),
				probeStep(),
			},
		},
		{
			Name: "Delete Strict Priority",
			Desc: "Concrete TCP ADD, then a DELETE_STRICT with the same match but a symbolic priority (strict delete requires an exact priority match), then a probing TCP packet.",
			Steps: []Step{
				fmStep("install", withSym(tcpMatchFM(openflow.FCAdd), func(o *fmSpec) {
					o.actions = []actSpec{{output: 2}}
				})),
				fmStep("delete-strict", withSym(tcpMatchFM(openflow.FCDeleteStrict), func(o *fmSpec) {
					o.symPriority = "priority"
				})),
				probeStep(),
			},
		},
		{
			Name: "Priority Shadow",
			Desc: "Concrete low-priority TCP ADD, then a fully wildcarded ADD with a symbolic priority, then a probing TCP packet — which entry forwards the probe depends on the symbolic priority comparison.",
			Steps: []Step{
				fmStep("install-low", withSym(tcpMatchFM(openflow.FCAdd), func(o *fmSpec) {
					o.priority = 0x0100
					o.actions = []actSpec{{output: 2}}
				})),
				fmStep("install-high", withSym(wildFM(openflow.FCAdd), func(o *fmSpec) {
					o.symPriority = "priority"
					o.actions = []actSpec{{output: 3}}
				})),
				probeStep(),
			},
		},
		{
			Name: "Buffered FlowMod",
			Desc: "TCP ADD with a symbolic buffer_id, then a probing TCP packet — the reference switch fails the buffered-packet application silently while OVS reports the error but installs the flow anyway (§5.1.2).",
			Steps: []Step{
				fmStep("install-buffered", withSym(tcpMatchFM(openflow.FCAdd), func(o *fmSpec) {
					o.symBufferID = "buffer_id"
					o.actions = []actSpec{{output: 2}}
				})),
				probeStep(),
			},
		},
		{
			Name: "Emergency Add",
			Desc: "TCP ADD flagged OFPFF_EMERG with a symbolic idle timeout, then a probing TCP packet — the reference switch validates emergency timeouts and installs; OVS rejects emergency flows outright (§5.1.2 missing features).",
			Steps: []Step{
				fmStep("install-emerg", withSym(tcpMatchFM(openflow.FCAdd), func(o *fmSpec) {
					o.flags = uint16(openflow.FlagEmerg)
					o.symIdle = "idle_timeout"
					o.actions = []actSpec{{output: 2}}
				})),
				probeStep(),
			},
		},
		{
			Name: "Netplugin VXLAN",
			Desc: "A realistic bridge table shaped after the flows the contiv netplugin programs (a VLAN-tag flow and a dst-MAC forwarding flow), then a wildcarded DELETE with a symbolic out_port filter, then a probing TCP packet.",
			Steps: []Step{
				fmStep("vlan-flow", withSym(fmSpec{
					wild:     uint32(openflow.FWAll &^ openflow.FWDLVLAN),
					dlVLAN:   10,
					command:  openflow.FCAdd,
					priority: 100,
					bufferID: openflow.NoBuffer,
					outPort:  openflow.PortNone,
				}, func(o *fmSpec) {
					o.actions = []actSpec{{stripVLAN: true}, {output: 2}}
				})),
				fmStep("mac-flow", withSym(fmSpec{
					wild:     uint32(openflow.FWAll &^ openflow.FWDLDst),
					dlDst:    0x0000000000aa, // the TCP probe's dst MAC
					command:  openflow.FCAdd,
					priority: 10,
					bufferID: openflow.NoBuffer,
					outPort:  openflow.PortNone,
				}, func(o *fmSpec) {
					o.actions = []actSpec{{output: 3}}
				})),
				fmStep("cleanup", withSym(wildFM(openflow.FCDelete), func(o *fmSpec) {
					o.symOutPort = "out_port"
				})),
				probeStep(),
			},
		},
	}
}
