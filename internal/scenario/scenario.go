package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"

	"github.com/soft-testing/soft/internal/harness"
	"github.com/soft-testing/soft/internal/sym"
)

// Step is one element of a scenario: a builder for a single control
// message or data plane probe. Build must be deterministic — the engine
// re-executes it on every explored path.
type Step struct {
	// Name labels the step in descriptions and the definition hash.
	Name string
	// Build constructs the step's input. The NewSymFn it receives is
	// already namespaced by step index, so two steps may both ask for a
	// variable called "priority" without colliding.
	Build func(newSym harness.NewSymFn) harness.Input
}

// Scenario is a named deterministic sequence of steps — a stateful
// multi-message test case.
type Scenario struct {
	// Name identifies the scenario in the registry, the CLI, and matrix
	// cells. Must not collide with a Table 1 test name.
	Name string
	// Desc is a one-line description.
	Desc string
	// Steps run in order against one agent instance, threading the
	// agent's flow-table state from step to step.
	Steps []Step
}

// stepSym namespaces a step's fresh symbolic variables by step index, so
// exploration stays canonical no matter how steps are composed.
func stepSym(i int, ns harness.NewSymFn) harness.NewSymFn {
	prefix := "s" + strconv.Itoa(i) + "."
	return func(name string, w int) *sym.Expr {
		return ns(prefix+name, w)
	}
}

// Test compiles the scenario to the harness.Test shape every layer of the
// pipeline already schedules, explores, caches, and crosschecks.
func (s *Scenario) Test() harness.Test {
	steps := s.Steps
	return harness.Test{
		Name:     s.Name,
		Desc:     s.Desc,
		MsgCount: len(steps),
		DefHash:  s.DefHash(),
		Inputs: func(ns harness.NewSymFn) []harness.Input {
			ins := make([]harness.Input, 0, len(steps))
			for i, st := range steps {
				ins = append(ins, st.Build(stepSym(i, ns)))
			}
			return ins
		},
	}
}

// DefHash hashes the scenario's *definition*: every step's built symbolic
// bytes (messages) and canonical field rendering (probes), step-indexed.
// It is a pure function of what the steps build — editing any byte of any
// step changes it, so store entries keyed on it invalidate cleanly, while
// renaming a step's Go helper or reordering unrelated code does not.
func (s *Scenario) DefHash() string {
	h := sha256.New()
	io.WriteString(h, "soft-scenario v1\n")
	for i, st := range s.Steps {
		in := st.Build(stepSym(i, sym.Var))
		fmt.Fprintf(h, "step %d %s\n", i, st.Name)
		if in.Msg != nil {
			fmt.Fprintf(h, "msg %d\n", in.Msg.Len())
			for j := 0; j < in.Msg.Len(); j++ {
				io.WriteString(h, in.Msg.Byte(j).String())
				io.WriteString(h, "\n")
			}
		}
		if in.Probe != nil {
			fmt.Fprintf(h, "probe %s\n", in.Probe.CanonicalString())
		}
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}
