// Package report runs the paper's evaluation (§5) end to end and renders
// each table and figure: Table 1 (test suite), Table 2 (symbolic execution
// statistics), Table 3 (grouping and inconsistency checking), Table 4
// (coverage), Table 5 (concretization ablation), Figure 4 (coverage versus
// number of symbolic messages), plus the §5.1.1 injected-modification
// detection and the §5.1.2 inconsistency classes.
//
// Absolute numbers differ from the paper's — its substrate was Cloud9
// executing 55-80K LoC of C on 2012 hardware; ours is a behavioral model
// under a native Go engine — but the qualitative relationships the paper
// reports are preserved and asserted by this package's tests.
package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/soft-testing/soft/internal/agents"
	_ "github.com/soft-testing/soft/internal/agents/modified"  // register "modified"
	_ "github.com/soft-testing/soft/internal/agents/ovs"       // register "ovs"
	_ "github.com/soft-testing/soft/internal/agents/refswitch" // register "ref"
	"github.com/soft-testing/soft/internal/crosscheck"
	"github.com/soft-testing/soft/internal/group"
	"github.com/soft-testing/soft/internal/harness"
	"github.com/soft-testing/soft/internal/solver"
)

// Options configures an evaluation run.
type Options struct {
	// MaxPaths caps per-test exploration (0 = harness default).
	MaxPaths int
	// CheckBudget bounds each crosscheck (0 = 2 minutes). The paper's CS
	// FlowMods check did not finish within a day either (Table 3).
	CheckBudget time.Duration
	// Quick restricts Table 2/3/4 to the fast tests — used by unit tests.
	Quick bool
}

func (o *Options) checkBudget() time.Duration {
	if o.CheckBudget == 0 {
		return 2 * time.Minute
	}
	return o.CheckBudget
}

// Agents returns the three agents of the evaluation in table order,
// instantiated through the shared agent registry.
func Agents() []agents.Agent {
	return []agents.Agent{
		agents.MustByName("ref"),
		agents.MustByName("modified"),
		agents.MustByName("ovs"),
	}
}

// quickSkip lists the slow tests excluded in Quick mode.
func quickSkip(name string) bool {
	switch name {
	case "FlowMod", "Eth FlowMod", "CS FlowMods":
		return true
	}
	return false
}

// Table1 renders the test suite definitions.
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Tests used in the evaluation.\n")
	fmt.Fprintf(&b, "%-14s %s\n", "Test", "Description")
	for _, t := range harness.Tests() {
		fmt.Fprintf(&b, "%-14s %s\n", t.Name, t.Desc)
	}
	return b.String()
}

// Row2 is one cell group of Table 2.
type Row2 struct {
	Agent    string
	Test     string
	MsgCount int
	CPUTime  time.Duration
	Paths    int
	AvgSize  float64
	MaxSize  int
	Partial  bool
}

// Table2Data explores every test on every agent and returns the raw rows.
func Table2Data(o Options) []Row2 {
	var rows []Row2
	for _, t := range harness.Tests() {
		if o.Quick && quickSkip(t.Name) {
			continue
		}
		for _, a := range Agents() {
			r := harness.Explore(a, t, harness.Options{MaxPaths: o.MaxPaths})
			rows = append(rows, Row2{
				Agent:    a.Name(),
				Test:     t.Name,
				MsgCount: t.MsgCount,
				CPUTime:  r.Elapsed,
				Paths:    len(r.Paths),
				AvgSize:  r.AvgConstraintOps(),
				MaxSize:  r.MaxConstraintOps(),
				Partial:  r.Truncated,
			})
		}
	}
	return rows
}

// Table2 renders the symbolic execution statistics table.
func Table2(o Options) string {
	rows := Table2Data(o)
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Symbolic execution statistics (time, paths, constraint size avg/max).\n")
	fmt.Fprintf(&b, "%-14s %-4s", "Test", "#msg")
	for _, a := range Agents() {
		fmt.Fprintf(&b, " | %-36s", a.Name())
	}
	fmt.Fprintln(&b)
	byTest := map[string][]Row2{}
	var order []string
	for _, r := range rows {
		if len(byTest[r.Test]) == 0 {
			order = append(order, r.Test)
		}
		byTest[r.Test] = append(byTest[r.Test], r)
	}
	for _, test := range order {
		rs := byTest[test]
		fmt.Fprintf(&b, "%-14s %-4d", test, rs[0].MsgCount)
		for _, r := range rs {
			mark := ""
			if r.Partial {
				mark = ">"
			}
			fmt.Fprintf(&b, " | %9s %s%6d %7.1f %5d", r.CPUTime.Round(time.Millisecond), mark, r.Paths, r.AvgSize, r.MaxSize)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Row3 is one row of Table 3.
type Row3 struct {
	Test            string
	GroupTimeRef    time.Duration
	GroupsRef       int
	GroupTimeOVS    time.Duration
	GroupsOVS       int
	CheckTime       time.Duration
	Inconsistencies int
	RootCauses      int
	Partial         bool
}

// table3Tests is the Table 3 subset (the paper omits FlowMod and Concrete).
var table3Tests = []string{
	"Packet Out", "Stats Request", "Set Config", "Eth FlowMod",
	"CS FlowMods", "Short Symb",
}

// Table3Data runs grouping and crosschecking for the Table 3 tests.
func Table3Data(o Options) []Row3 {
	ref, ov := agents.MustByName("ref"), agents.MustByName("ovs")
	s := solver.New()
	var rows []Row3
	for _, name := range table3Tests {
		if o.Quick && quickSkip(name) {
			continue
		}
		t, ok := harness.TestByName(name)
		if !ok {
			continue
		}
		ra := harness.Explore(ref, t, harness.Options{MaxPaths: o.MaxPaths, Solver: s})
		rb := harness.Explore(ov, t, harness.Options{MaxPaths: o.MaxPaths, Solver: s})
		ga := group.Paths(ra.Serialized())
		gb := group.Paths(rb.Serialized())
		rep := crosscheck.Run(ga, gb, s, o.checkBudget())
		rows = append(rows, Row3{
			Test:            name,
			GroupTimeRef:    ga.Elapsed,
			GroupsRef:       len(ga.Groups),
			GroupTimeOVS:    gb.Elapsed,
			GroupsOVS:       len(gb.Groups),
			CheckTime:       rep.Elapsed,
			Inconsistencies: len(rep.Inconsistencies),
			RootCauses:      rep.RootCauses(),
			Partial:         rep.Partial,
		})
	}
	return rows
}

// Table3 renders the grouping / inconsistency-checking table.
func Table3(o Options) string {
	rows := Table3Data(o)
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: Grouping and inconsistency checking (Reference Switch vs Open vSwitch).\n")
	fmt.Fprintf(&b, "%-14s %12s %5s %12s %5s %12s %7s %6s\n",
		"Test", "group(ref)", "#res", "group(ovs)", "#res", "check", "#incons", "#roots")
	for _, r := range rows {
		mark := ""
		if r.Partial {
			mark = ">="
		}
		fmt.Fprintf(&b, "%-14s %12s %5d %12s %5d %12s %s%7d %6d\n",
			r.Test, r.GroupTimeRef.Round(time.Microsecond), r.GroupsRef,
			r.GroupTimeOVS.Round(time.Microsecond), r.GroupsOVS,
			r.CheckTime.Round(time.Millisecond), mark, r.Inconsistencies, r.RootCauses)
	}
	return b.String()
}

// Row4 is one row of Table 4.
type Row4 struct {
	Test                string
	RefInstr, RefBranch float64
	OVSInstr, OVSBranch float64
}

// Table4Data measures instruction and branch coverage per test, plus the
// handshake-only "No Message" baseline.
func Table4Data(o Options) []Row4 {
	ref, ov := agents.MustByName("ref"), agents.MustByName("ovs")
	var rows []Row4

	noMsg := harness.Test{
		Name: "No Message", Desc: "Connection setup only.", MsgCount: 0,
		Inputs: func(harness.NewSymFn) []harness.Input { return nil },
	}
	tests := append([]harness.Test{noMsg}, harness.Tests()...)
	for _, t := range tests {
		if o.Quick && quickSkip(t.Name) {
			continue
		}
		ra := harness.Explore(ref, t, harness.Options{MaxPaths: o.MaxPaths})
		rb := harness.Explore(ov, t, harness.Options{MaxPaths: o.MaxPaths})
		rows = append(rows, Row4{
			Test:      t.Name,
			RefInstr:  ra.InstrPct,
			RefBranch: ra.BranchPct,
			OVSInstr:  rb.InstrPct,
			OVSBranch: rb.BranchPct,
		})
	}
	return rows
}

// Table4 renders the coverage table.
func Table4(o Options) string {
	rows := Table4Data(o)
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: Instruction and branch coverage (%%).\n")
	fmt.Fprintf(&b, "%-14s %10s %10s %10s %10s\n", "Test", "ref instr", "ref branch", "ovs instr", "ovs branch")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %10.2f %10.2f %10.2f %10.2f\n",
			r.Test, r.RefInstr, r.RefBranch, r.OVSInstr, r.OVSBranch)
	}
	return b.String()
}

// Row5 is one row of Table 5.
type Row5 struct {
	Variant  string
	Time     time.Duration
	Paths    int
	Coverage float64
}

// Table5Data runs the concretization ablation on the reference switch.
func Table5Data(o Options) []Row5 {
	ref := agents.MustByName("ref")
	var rows []Row5
	for _, t := range harness.AblationTests() {
		r := harness.Explore(ref, t, harness.Options{MaxPaths: o.MaxPaths})
		rows = append(rows, Row5{
			Variant:  t.Name,
			Time:     r.Elapsed,
			Paths:    len(r.Paths),
			Coverage: r.InstrPct,
		})
	}
	return rows
}

// Table5 renders the concretization ablation.
func Table5(o Options) string {
	rows := Table5Data(o)
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: Effects of concretizing on time, paths and instruction coverage.\n")
	fmt.Fprintf(&b, "%-16s %12s %8s %10s\n", "Test", "Time", "Paths", "Coverage")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %12s %8d %9.2f%%\n",
			r.Variant, r.Time.Round(time.Millisecond), r.Paths, r.Coverage)
	}
	return b.String()
}

// Figure4Data measures reference switch coverage for 1..3 symbolic
// messages.
func Figure4Data(o Options) []float64 {
	ref := agents.MustByName("ref")
	var out []float64
	for n := 1; n <= 3; n++ {
		r := harness.Explore(ref, harness.CoverageSequence(n), harness.Options{MaxPaths: o.MaxPaths})
		out = append(out, r.InstrPct)
	}
	return out
}

// Figure4 renders the coverage-versus-messages figure as an ASCII series.
func Figure4(o Options) string {
	data := Figure4Data(o)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: Reference switch code coverage vs number of symbolic messages.\n")
	for i, v := range data {
		fmt.Fprintf(&b, "  %d message(s): %6.2f%%  %s\n", i+1, v, strings.Repeat("#", int(v/2)))
	}
	if len(data) == 3 {
		fmt.Fprintf(&b, "  increment 1->2: %+.2f pp; 2->3: %+.2f pp\n", data[1]-data[0], data[2]-data[1])
	}
	return b.String()
}

// InjectedFinding describes one §5.1.1 injected modification and whether
// the suite detected it.
type InjectedFinding struct {
	Name     string
	Detected bool
	Why      string
}

// InjectedData runs the full suite Modified Switch vs Reference Switch and
// reports which of the 7 injected modifications were pinpointed.
func InjectedData(o Options) []InjectedFinding {
	ref, mod := agents.MustByName("ref"), agents.MustByName("modified")
	s := solver.New()
	var all []crosscheck.Inconsistency
	// The full FlowMod test subsumes Priority FlowMod but costs orders of
	// magnitude more exploration; the focused variant catches the same
	// state-dependent modification (a silently dropped add changes the
	// probe outcome) in milliseconds.
	tests := append(harness.Tests(), harness.PriorityFlowMod())
	for _, t := range tests {
		if t.Name == "FlowMod" || o.Quick && quickSkip(t.Name) {
			continue
		}
		ra := harness.Explore(ref, t, harness.Options{MaxPaths: o.MaxPaths, Solver: s})
		rb := harness.Explore(mod, t, harness.Options{MaxPaths: o.MaxPaths, Solver: s})
		rep := crosscheck.Run(group.Paths(ra.Serialized()), group.Paths(rb.Serialized()), s, o.checkBudget())
		all = append(all, rep.Inconsistencies...)
	}
	has := func(pred func(inc crosscheck.Inconsistency) bool) bool {
		for _, inc := range all {
			if pred(inc) {
				return true
			}
		}
		return false
	}
	contains := func(s, sub string) bool { return strings.Contains(s, sub) }
	return []InjectedFinding{
		{
			Name: "Packet Out to FLOOD rejected",
			Detected: has(func(i crosscheck.Inconsistency) bool {
				return contains(i.ACanonical, "port=FLOOD") != contains(i.BCanonical, "port=FLOOD")
			}),
			Why: "flood vs error is externally visible in the Packet Out test",
		},
		{
			Name: "different error code for output port 0",
			Detected: has(func(i crosscheck.Inconsistency) bool {
				return contains(i.ACanonical, "ERROR/BAD_ACTION/4") && contains(i.BCanonical, "ERROR/BAD_ACTION/5") ||
					contains(i.ACanonical, "ERROR/BAD_ACTION/5") && contains(i.BCanonical, "ERROR/BAD_ACTION/4")
			}),
			Why: "the two error codes differ in the normalized trace",
		},
		{
			Name: "high-priority flow adds silently dropped",
			Detected: has(func(i crosscheck.Inconsistency) bool {
				return i.Witness["fm.priority"] >= 0xf000 || i.Witness["fm2.priority"] >= 0xf000
			}),
			Why: "the missing flow changes the probe outcome",
		},
		{
			Name: "set_nw_tos masks with 0xff instead of 0xfc",
			Detected: has(func(i crosscheck.Inconsistency) bool {
				return contains(i.ACanonical, "252") != contains(i.BCanonical, "252") &&
					(contains(i.ACanonical, "nw_tos=") || contains(i.BCanonical, "nw_tos="))
			}),
			Why: "the forwarded probe's ToS expression differs",
		},
		{
			Name: "different DESC statistics body",
			Detected: has(func(i crosscheck.Inconsistency) bool {
				return contains(i.ACanonical+i.BCanonical, "reference-mod") ||
					contains(i.ACanonical, "DESC") && contains(i.BCanonical, "DESC") &&
						i.ACanonical != i.BCanonical
			}),
			Why: "the reply body differs in the normalized trace",
		},
		{
			Name:     "Hello handshake version quirk",
			Detected: false,
			Why:      "SOFT establishes a correct connection before testing; the handshake is concrete (§5.1.1)",
		},
		{
			Name:     "idle-timeout expiry off by one",
			Detected: false,
			Why:      "the symbolic execution engine cannot trigger timers (§5.1.1)",
		},
	}
}

// Injected renders the §5.1.1 experiment.
func Injected(o Options) string {
	findings := InjectedData(o)
	var b strings.Builder
	n := 0
	for _, f := range findings {
		if f.Detected {
			n++
		}
	}
	fmt.Fprintf(&b, "Injected modifications (Modified Switch vs Reference Switch): %d of %d detected.\n", n, len(findings))
	for _, f := range findings {
		mark := "MISSED  "
		if f.Detected {
			mark = "DETECTED"
		}
		fmt.Fprintf(&b, "  [%s] %-45s %s\n", mark, f.Name, f.Why)
	}
	return b.String()
}

// ClassifiedInconsistency labels a found inconsistency with its §5.1.2
// class.
type ClassifiedInconsistency struct {
	Class string
	Count int
}

// Classify maps an inconsistency to a §5.1.2 class name.
func Classify(inc crosscheck.Inconsistency) string {
	a, b := inc.ACanonical, inc.BCanonical
	switch {
	case inc.ACrashed != inc.BCrashed:
		return "OpenFlow agent terminates with an error"
	case strings.Contains(a, "drop:") != strings.Contains(b, "drop:"):
		return "Packet dropped when action is invalid"
	case (a == "<silent>") != (b == "<silent>"):
		return "Lack of error messages / silently ignored requests"
	case strings.Contains(a, "ERROR") && strings.Contains(b, "ERROR"):
		return "Different order of message validation / different errors"
	case strings.Contains(a, "port=NORMAL") != strings.Contains(b, "port=NORMAL"),
		strings.Contains(a, "FLOW_MOD_FAILED/5") != strings.Contains(b, "FLOW_MOD_FAILED/5"):
		return "Missing features"
	case strings.Contains(a, "ERROR") != strings.Contains(b, "ERROR"):
		return "Forwarding a packet to an invalid port / inconsistent errors"
	default:
		return "Different output content"
	}
}

// InconsistencyClasses runs ref vs ovs over the suite and tallies the
// §5.1.2 classes.
func InconsistencyClasses(o Options) []ClassifiedInconsistency {
	ref, ov := agents.MustByName("ref"), agents.MustByName("ovs")
	s := solver.New()
	counts := map[string]int{}
	for _, t := range harness.Tests() {
		if o.Quick && quickSkip(t.Name) {
			continue
		}
		ra := harness.Explore(ref, t, harness.Options{MaxPaths: o.MaxPaths, Solver: s})
		rb := harness.Explore(ov, t, harness.Options{MaxPaths: o.MaxPaths, Solver: s})
		rep := crosscheck.Run(group.Paths(ra.Serialized()), group.Paths(rb.Serialized()), s, o.checkBudget())
		for _, inc := range rep.Inconsistencies {
			counts[Classify(inc)]++
		}
	}
	var names []string
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []ClassifiedInconsistency
	for _, n := range names {
		out = append(out, ClassifiedInconsistency{Class: n, Count: counts[n]})
	}
	return out
}

// Inconsistencies renders the §5.1.2 experiment.
func Inconsistencies(o Options) string {
	classes := InconsistencyClasses(o)
	var b strings.Builder
	fmt.Fprintln(&b, "Inconsistency classes (Reference Switch vs Open vSwitch, full suite):")
	total := 0
	for _, c := range classes {
		fmt.Fprintf(&b, "  %5d  %s\n", c.Count, c.Class)
		total += c.Count
	}
	fmt.Fprintf(&b, "  total: %d\n", total)
	return b.String()
}
