package report

import (
	"strings"
	"testing"
	"time"

	"github.com/soft-testing/soft/internal/crosscheck"
)

// quick options keep the suite's test time reasonable; the shape
// assertions below are the qualitative claims of the paper's evaluation.
var quick = Options{Quick: true, CheckBudget: 30 * time.Second}

func TestTable1ListsAllTests(t *testing.T) {
	s := Table1()
	for _, name := range []string{"Packet Out", "Stats Request", "Set Config",
		"FlowMod", "Eth FlowMod", "CS FlowMods", "Concrete", "Short Symb"} {
		if !strings.Contains(s, name) {
			t.Errorf("Table 1 missing %s", name)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rows := Table2Data(quick)
	byKey := map[string]Row2{}
	for _, r := range rows {
		byKey[r.Test+"/"+r.Agent] = r
	}
	// Concrete: exactly 1 path, zero constraints, all agents.
	for _, a := range Agents() {
		r := byKey["Concrete/"+a.Name()]
		if r.Paths != 1 {
			t.Errorf("Concrete/%s: %d paths, want 1", a.Name(), r.Paths)
		}
		if r.AvgSize != 0 || r.MaxSize != 0 {
			t.Errorf("Concrete/%s: constraint sizes %f/%d, want 0", a.Name(), r.AvgSize, r.MaxSize)
		}
	}
	// Packet Out: OVS partitions finer than ref (Table 2's 3-15x
	// observation); Modified >= ref (injected changes add paths).
	po := func(agent string) int { return byKey["Packet Out/"+agent].Paths }
	if po("Open vSwitch") <= po("Reference Switch") {
		t.Errorf("ovs Packet Out paths %d not finer than ref %d", po("Open vSwitch"), po("Reference Switch"))
	}
	// Packet Out >> Concrete and Short Symb small.
	if po("Reference Switch") < 20 {
		t.Errorf("ref Packet Out paths suspiciously low: %d", po("Reference Switch"))
	}
	ss := byKey["Short Symb/Reference Switch"]
	if ss.Paths < 5 || ss.Paths > 100 {
		t.Errorf("Short Symb path count out of range: %d", ss.Paths)
	}
}

func TestTable3Shape(t *testing.T) {
	rows := Table3Data(quick)
	byTest := map[string]Row3{}
	for _, r := range rows {
		byTest[r.Test] = r
	}
	// Set Config: agents agree — zero inconsistencies (Table 3).
	if r := byTest["Set Config"]; r.Inconsistencies != 0 {
		t.Errorf("Set Config found %d inconsistencies, want 0", r.Inconsistencies)
	}
	// Packet Out and Stats Request: inconsistencies found.
	if r := byTest["Packet Out"]; r.Inconsistencies == 0 {
		t.Error("Packet Out found no inconsistencies")
	}
	if r := byTest["Stats Request"]; r.Inconsistencies == 0 {
		t.Error("Stats Request found no inconsistencies")
	}
	// Root causes never exceed inconsistencies; grouping is fast.
	for _, r := range rows {
		if r.RootCauses > r.Inconsistencies {
			t.Errorf("%s: root causes %d > inconsistencies %d", r.Test, r.RootCauses, r.Inconsistencies)
		}
		if r.GroupsRef == 0 || r.GroupsOVS == 0 {
			t.Errorf("%s: empty grouping", r.Test)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	rows := Table4Data(quick)
	byTest := map[string]Row4{}
	for _, r := range rows {
		byTest[r.Test] = r
	}
	base := byTest["No Message"]
	if base.RefInstr <= 5 || base.RefInstr >= 20 {
		t.Errorf("No Message ref coverage %f out of the ~12%% band", base.RefInstr)
	}
	if base.RefBranch <= 0 {
		t.Error("handshake must cover some branch directions")
	}
	// Every test covers strictly more than the handshake baseline.
	for name, r := range byTest {
		if name == "No Message" {
			continue
		}
		if r.RefInstr <= base.RefInstr || r.OVSInstr <= base.OVSInstr {
			t.Errorf("%s coverage (%f/%f) not above baseline (%f/%f)",
				name, r.RefInstr, r.OVSInstr, base.RefInstr, base.OVSInstr)
		}
	}
	// Packet Out covers more than Concrete (it reaches the action code).
	if byTest["Packet Out"].RefInstr <= byTest["Concrete"].RefInstr {
		t.Error("Packet Out should cover more than Concrete")
	}
}

func TestTable5Shape(t *testing.T) {
	rows := Table5Data(Options{MaxPaths: 20000})
	byVariant := map[string]Row5{}
	for _, r := range rows {
		byVariant[r.Variant] = r
	}
	full := byVariant["Fully Symbolic"]
	cm := byVariant["Concrete Match"]
	ca := byVariant["Concrete Action"]
	// Concretizing shrinks the path count dramatically (10-50x faster, 1-2
	// orders fewer paths in the paper).
	if cm.Paths >= full.Paths {
		t.Errorf("concrete match paths %d not below baseline %d", cm.Paths, full.Paths)
	}
	if ca.Paths >= full.Paths {
		t.Errorf("concrete action paths %d not below baseline %d", ca.Paths, full.Paths)
	}
	// ...at only a small coverage cost (2-5% in the paper).
	if full.Coverage-cm.Coverage > 10 {
		t.Errorf("concrete match loses too much coverage: %f vs %f", cm.Coverage, full.Coverage)
	}
	// Symbolic probe costs more paths than the concrete probe and buys at
	// most a little coverage.
	cp, sp := byVariant["Concrete Probe"], byVariant["Symbolic Probe"]
	if sp.Paths <= cp.Paths {
		t.Errorf("symbolic probe paths %d not above concrete probe %d", sp.Paths, cp.Paths)
	}
	if sp.Coverage < cp.Coverage-0.01 {
		t.Errorf("symbolic probe lost coverage: %f vs %f", sp.Coverage, cp.Coverage)
	}
}

func TestFigure4Shape(t *testing.T) {
	data := Figure4Data(Options{MaxPaths: 8000})
	if len(data) != 3 {
		t.Fatalf("want 3 points, got %d", len(data))
	}
	// The second symbolic message adds a substantial increment; the third
	// adds almost nothing (Figure 4).
	inc12 := data[1] - data[0]
	inc23 := data[2] - data[1]
	if inc12 < 2 {
		t.Errorf("second message adds only %.2f pp coverage", inc12)
	}
	if inc23 > inc12/2 {
		t.Errorf("third message adds %.2f pp, not marginal vs %.2f", inc23, inc12)
	}
}

func TestInjectedFiveOfSeven(t *testing.T) {
	// Full mode so the FlowMod-family tests can catch the priority and
	// ToS modifications (as in the paper).
	findings := InjectedData(Options{CheckBudget: 30 * time.Second})
	if len(findings) != 7 {
		t.Fatalf("want 7 findings, got %d", len(findings))
	}
	detected := 0
	for _, f := range findings {
		if f.Detected {
			detected++
		}
	}
	if detected != 5 {
		for _, f := range findings {
			t.Logf("%v detected=%v", f.Name, f.Detected)
		}
		t.Fatalf("detected %d of 7 injected modifications, want 5 (as in §5.1.1)", detected)
	}
	// The two misses are exactly the structural ones.
	for _, f := range findings {
		structural := strings.Contains(f.Name, "Hello") || strings.Contains(f.Name, "idle-timeout")
		if structural == f.Detected {
			t.Errorf("finding %q: detected=%v, structural=%v", f.Name, f.Detected, structural)
		}
	}
}

func TestInconsistencyClassesCoverPaperFindings(t *testing.T) {
	classes := InconsistencyClasses(quick)
	have := map[string]bool{}
	for _, c := range classes {
		have[c.Class] = true
		if c.Count <= 0 {
			t.Errorf("class %q with non-positive count", c.Class)
		}
	}
	for _, want := range []string{
		"OpenFlow agent terminates with an error",
		"Packet dropped when action is invalid",
		"Lack of error messages / silently ignored requests",
	} {
		if !have[want] {
			t.Errorf("missing §5.1.2 class %q (have %v)", want, have)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		inc  crosscheck.Inconsistency
		want string
	}{
		{crosscheck.Inconsistency{ACrashed: true}, "OpenFlow agent terminates with an error"},
		{crosscheck.Inconsistency{ACanonical: "drop:output", BCanonical: "pkt-out:port=3"},
			"Packet dropped when action is invalid"},
		{crosscheck.Inconsistency{ACanonical: "<silent>", BCanonical: "msg:ERROR/BAD_REQUEST/2"},
			"Lack of error messages / silently ignored requests"},
		{crosscheck.Inconsistency{ACanonical: "msg:ERROR/BAD_ACTION/4", BCanonical: "msg:ERROR/BAD_ACTION/5"},
			"Different order of message validation / different errors"},
	}
	for i, c := range cases {
		if got := Classify(c.inc); got != c.want {
			t.Errorf("case %d: got %q want %q", i, got, c.want)
		}
	}
}
