package dataplane

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"github.com/soft-testing/soft/internal/sym"
)

func TestTCPProbeIsConcrete(t *testing.T) {
	p := TCPProbe(1)
	if !p.IsConcrete() {
		t.Fatal("probe must be concrete")
	}
	if v, _ := p.NWProto.ConstVal(); v != ProtoTCP {
		t.Fatal("probe must be TCP")
	}
	if !sym.EvalBool(p.IsIPv4(), nil) {
		t.Fatal("probe must be IPv4")
	}
	if sym.EvalBool(p.HasVLANTag(), nil) {
		t.Fatal("probe must be untagged")
	}
}

func TestSerializeParseRoundTrip(t *testing.T) {
	p := TCPProbe(3)
	wire := p.Serialize(nil)
	got, err := Parse(3, wire)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []struct {
		name string
		a, b *sym.Expr
	}{
		{"dl_dst", p.EthDst, got.EthDst},
		{"dl_src", p.EthSrc, got.EthSrc},
		{"vlan", p.VLAN, got.VLAN},
		{"dl_type", p.EthType, got.EthType},
		{"nw_src", p.NWSrc, got.NWSrc},
		{"nw_dst", p.NWDst, got.NWDst},
		{"nw_tos", p.NWTos, got.NWTos},
		{"nw_proto", p.NWProto, got.NWProto},
		{"tp_src", p.TPSrc, got.TPSrc},
		{"tp_dst", p.TPDst, got.TPDst},
	} {
		av, _ := f.a.ConstVal()
		bv, _ := f.b.ConstVal()
		if av != bv {
			t.Errorf("%s: %#x != %#x", f.name, av, bv)
		}
	}
	if !bytes.Equal(p.Payload, got.Payload) {
		t.Errorf("payload %q != %q", got.Payload, p.Payload)
	}
}

func TestSerializeVLANTagged(t *testing.T) {
	p := TCPProbe(1)
	p.VLAN = sym.Const(16, 100)
	p.PCP = sym.Const(8, 5)
	wire := p.Serialize(nil)
	// 802.1q tag present after MACs.
	if wire[12] != 0x81 || wire[13] != 0x00 {
		t.Fatalf("no 802.1q tag: % x", wire[12:16])
	}
	got, err := Parse(1, wire)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.VLAN.ConstVal(); v != 100 {
		t.Fatalf("vlan %d", v)
	}
	if v, _ := got.PCP.ConstVal(); v != 5 {
		t.Fatalf("pcp %d", v)
	}
}

func TestSerializeWithModel(t *testing.T) {
	p := TCPProbe(1)
	p.VLAN = sym.Var("vid", 16) // a set_vlan_vid action with symbolic arg
	wire := p.Serialize(sym.Assignment{"vid": 42})
	got, err := Parse(1, wire)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.VLAN.ConstVal(); v != 42 {
		t.Fatalf("vlan after model application = %d", v)
	}
}

func TestEthernetProbeHasNoIP(t *testing.T) {
	p := EthernetProbe(2)
	if p.NWSrc != nil || p.TPSrc != nil {
		t.Fatal("L2 probe must not carry IP fields")
	}
	if sym.EvalBool(p.IsIPv4(), nil) {
		t.Fatal("L2 probe is not IPv4")
	}
	// Match fields default to zero for absent headers.
	if v, _ := p.MatchNWSrc().ConstVal(); v != 0 {
		t.Fatal("absent field must match as zero")
	}
}

func TestSymbolicPacket(t *testing.T) {
	names := map[string]int{}
	newSym := func(name string, w int) *sym.Expr {
		names[name] = w
		return sym.Var(name, w)
	}
	p := SymbolicPacket(newSym, "probe", 1)
	if p.IsConcrete() {
		t.Fatal("symbolic packet must not be concrete")
	}
	if names["probe.nw_src"] != 32 || names["probe.dl_dst"] != 48 {
		t.Fatalf("field widths %v", names)
	}
}

func TestCanonicalStringDeterministic(t *testing.T) {
	p := TCPProbe(1)
	p.VLAN = sym.Var("v", 16)
	a, b := p.CanonicalString(), p.CanonicalString()
	if a != b {
		t.Fatal("canonical rendering is not deterministic")
	}
	if !strings.Contains(a, "(var v 16)") {
		t.Fatalf("symbolic field not rendered canonically: %s", a)
	}
	// Identical content in a distinct struct renders identically.
	q := TCPProbe(1)
	q.VLAN = sym.Var("v", 16)
	if q.CanonicalString() != a {
		t.Fatal("structurally equal packets render differently")
	}
}

func TestCloneIsolation(t *testing.T) {
	p := TCPProbe(1)
	q := p.Clone()
	q.VLAN = sym.Const(16, 7)
	if v, _ := p.VLAN.ConstVal(); v != VLANNone {
		t.Fatal("clone mutation leaked")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(1, []byte{1, 2, 3}); err == nil {
		t.Fatal("short frame must error")
	}
	// Truncated VLAN tag.
	frame := make([]byte, 14)
	frame[12], frame[13] = 0x81, 0x00
	if _, err := Parse(1, frame); err == nil {
		t.Fatal("truncated VLAN must error")
	}
}

func TestQuickSerializeParseIPv4(t *testing.T) {
	f := func(src, dst uint32, tos uint8, sport, dport uint16) bool {
		p := TCPProbe(1)
		p.NWSrc = sym.Const(32, uint64(src))
		p.NWDst = sym.Const(32, uint64(dst))
		p.NWTos = sym.Const(8, uint64(tos))
		p.TPSrc = sym.Const(16, uint64(sport))
		p.TPDst = sym.Const(16, uint64(dport))
		got, err := Parse(1, p.Serialize(nil))
		if err != nil {
			return false
		}
		chk := func(a, b *sym.Expr) bool {
			av, _ := a.ConstVal()
			bv, _ := b.ConstVal()
			return av == bv
		}
		return chk(p.NWSrc, got.NWSrc) && chk(p.NWDst, got.NWDst) &&
			chk(p.NWTos, got.NWTos) && chk(p.TPSrc, got.TPSrc) && chk(p.TPDst, got.TPDst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSerializeTCPProbe(b *testing.B) {
	p := TCPProbe(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Serialize(nil)
	}
}
