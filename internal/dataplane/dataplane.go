// Package dataplane models the packets an OpenFlow agent forwards. SOFT
// uses concrete packets as state probes (§3.3): after a potentially
// state-changing symbolic message, the harness injects a probe through the
// data plane interface, which exercises the agent's matching and
// action-application code and externalizes the (possibly symbolic) flow
// table state as observable output.
//
// A Packet carries its header fields as sym expressions: probe packets
// start fully concrete, but applying an action with a symbolic argument
// (e.g. set_vlan_vid from a symbolic Flow Mod) makes the corresponding
// field symbolic — the paper notes "the output data may even contain
// symbolic inputs" (§3.3). Concrete packets serialize to real Ethernet /
// 802.1q / IPv4 / TCP / UDP wire format; checksums are written as zero,
// matching the checksum-identity environment simplification of §4.1.
package dataplane

import (
	"encoding/binary"
	"fmt"
	"strings"

	"github.com/soft-testing/soft/internal/sym"
)

// EtherTypes understood by the match logic.
const (
	EtherTypeIPv4 uint64 = 0x0800
	EtherTypeARP  uint64 = 0x0806
	EtherTypeVLAN uint64 = 0x8100
)

// IP protocol numbers understood by the match logic.
const (
	ProtoICMP uint64 = 1
	ProtoTCP  uint64 = 6
	ProtoUDP  uint64 = 17
)

// VLANNone is the "no VLAN tag" sentinel (matches OpenFlow's OFP_VLAN_NONE).
const VLANNone uint64 = 0xffff

// Packet is a parsed packet with possibly-symbolic header fields. A nil
// field means "not present" (e.g. TPSrc on a non-TCP/UDP packet).
type Packet struct {
	InPort *sym.Expr // 16-bit ingress port (concrete for probes)

	EthDst *sym.Expr // 48
	EthSrc *sym.Expr // 48
	// VLAN is the 16-bit VLAN id field; VLANNone means untagged.
	VLAN *sym.Expr
	// PCP is the 8-bit (3 used) 802.1q priority; meaningful when tagged.
	PCP     *sym.Expr
	EthType *sym.Expr // 16

	NWSrc   *sym.Expr // 32, IPv4 only
	NWDst   *sym.Expr // 32
	NWTos   *sym.Expr // 8
	NWProto *sym.Expr // 8

	TPSrc *sym.Expr // 16, TCP/UDP ports or ICMP type/code
	TPDst *sym.Expr // 16

	Payload []byte // opaque payload (always concrete)
}

// TCPProbe builds the concrete TCP probe packet the Table 1 tests inject
// after state-changing messages.
func TCPProbe(inPort uint16) *Packet {
	return &Packet{
		InPort:  sym.Const(16, uint64(inPort)),
		EthDst:  sym.Const(48, 0x0000000000aa),
		EthSrc:  sym.Const(48, 0x0000000000bb),
		VLAN:    sym.Const(16, VLANNone),
		PCP:     sym.Const(8, 0),
		EthType: sym.Const(16, EtherTypeIPv4),
		NWSrc:   sym.Const(32, 0x0a000001), // 10.0.0.1
		NWDst:   sym.Const(32, 0x0a000002), // 10.0.0.2
		NWTos:   sym.Const(8, 0),
		NWProto: sym.Const(8, ProtoTCP),
		TPSrc:   sym.Const(16, 1000),
		TPDst:   sym.Const(16, 2000),
		Payload: []byte("probe"),
	}
}

// EthernetProbe builds the short non-IP probe used by the Eth FlowMod test.
func EthernetProbe(inPort uint16) *Packet {
	return &Packet{
		InPort:  sym.Const(16, uint64(inPort)),
		EthDst:  sym.Const(48, 0x0000000000aa),
		EthSrc:  sym.Const(48, 0x0000000000bb),
		VLAN:    sym.Const(16, VLANNone),
		PCP:     sym.Const(8, 0),
		EthType: sym.Const(16, 0x88b5), // experimental ethertype: L2 only
		Payload: []byte("eth-probe"),
	}
}

// SymbolicPacket builds a probe whose header fields are fresh symbolic
// variables named with the given prefix (the Table 5 "Symbolic Probe"
// ablation). newSym is typically symexec.Context.NewSym.
func SymbolicPacket(newSym func(name string, w int) *sym.Expr, prefix string, inPort uint16) *Packet {
	return &Packet{
		InPort:  sym.Const(16, uint64(inPort)),
		EthDst:  newSym(prefix+".dl_dst", 48),
		EthSrc:  newSym(prefix+".dl_src", 48),
		VLAN:    sym.Const(16, VLANNone),
		PCP:     sym.Const(8, 0),
		EthType: newSym(prefix+".dl_type", 16),
		NWSrc:   newSym(prefix+".nw_src", 32),
		NWDst:   newSym(prefix+".nw_dst", 32),
		NWTos:   newSym(prefix+".nw_tos", 8),
		NWProto: newSym(prefix+".nw_proto", 8),
		TPSrc:   newSym(prefix+".tp_src", 16),
		TPDst:   newSym(prefix+".tp_dst", 16),
	}
}

// Clone returns a shallow copy (expression nodes are immutable; Payload is
// shared, which is safe because no action rewrites payloads).
func (p *Packet) Clone() *Packet {
	q := *p
	return &q
}

// HasVLANTag returns the boolean expression "packet carries a VLAN tag".
func (p *Packet) HasVLANTag() *sym.Expr {
	if p.VLAN == nil {
		return sym.Bool(false)
	}
	return sym.Ne(p.VLAN, sym.Const(16, VLANNone))
}

// IsIPv4 returns the boolean expression "packet is IPv4".
func (p *Packet) IsIPv4() *sym.Expr {
	if p.EthType == nil || p.NWSrc == nil {
		return sym.Bool(false)
	}
	return sym.EqConst(p.EthType, EtherTypeIPv4)
}

// fieldOrZero returns f, or a zero constant of width w when the field is
// absent — OpenFlow 1.0 matches absent fields as zero.
func fieldOrZero(f *sym.Expr, w int) *sym.Expr {
	if f == nil {
		return sym.Const(w, 0)
	}
	return f
}

// MatchField accessors with OpenFlow "absent = 0" semantics.

// MatchInPort returns the ingress port field for matching.
func (p *Packet) MatchInPort() *sym.Expr { return fieldOrZero(p.InPort, 16) }

// MatchDLSrc returns the Ethernet source for matching.
func (p *Packet) MatchDLSrc() *sym.Expr { return fieldOrZero(p.EthSrc, 48) }

// MatchDLDst returns the Ethernet destination for matching.
func (p *Packet) MatchDLDst() *sym.Expr { return fieldOrZero(p.EthDst, 48) }

// MatchDLVLAN returns the VLAN id for matching (VLANNone when untagged).
func (p *Packet) MatchDLVLAN() *sym.Expr {
	if p.VLAN == nil {
		return sym.Const(16, VLANNone)
	}
	return p.VLAN
}

// MatchDLVLANPCP returns the 802.1q priority for matching.
func (p *Packet) MatchDLVLANPCP() *sym.Expr { return fieldOrZero(p.PCP, 8) }

// MatchDLType returns the Ethernet type for matching.
func (p *Packet) MatchDLType() *sym.Expr { return fieldOrZero(p.EthType, 16) }

// MatchNWSrc returns the IPv4 source for matching.
func (p *Packet) MatchNWSrc() *sym.Expr { return fieldOrZero(p.NWSrc, 32) }

// MatchNWDst returns the IPv4 destination for matching.
func (p *Packet) MatchNWDst() *sym.Expr { return fieldOrZero(p.NWDst, 32) }

// MatchNWTos returns the IP ToS for matching.
func (p *Packet) MatchNWTos() *sym.Expr { return fieldOrZero(p.NWTos, 8) }

// MatchNWProto returns the IP protocol for matching.
func (p *Packet) MatchNWProto() *sym.Expr { return fieldOrZero(p.NWProto, 8) }

// MatchTPSrc returns the transport source port for matching.
func (p *Packet) MatchTPSrc() *sym.Expr { return fieldOrZero(p.TPSrc, 16) }

// MatchTPDst returns the transport destination port for matching.
func (p *Packet) MatchTPDst() *sym.Expr { return fieldOrZero(p.TPDst, 16) }

// CanonicalString renders the packet for output traces: a deterministic,
// field-by-field rendering in which symbolic fields appear as canonical
// expression strings. Two agents that emit semantically identical packets
// over the same symbolic inputs render identically.
func (p *Packet) CanonicalString() string {
	var b strings.Builder
	b.WriteString("pkt{")
	wr := func(name string, e *sym.Expr) {
		if e == nil {
			return
		}
		fmt.Fprintf(&b, "%s=%s ", name, exprStr(e))
	}
	wr("dl_dst", p.EthDst)
	wr("dl_src", p.EthSrc)
	wr("vlan", p.VLAN)
	wr("pcp", p.PCP)
	wr("dl_type", p.EthType)
	wr("nw_src", p.NWSrc)
	wr("nw_dst", p.NWDst)
	wr("nw_tos", p.NWTos)
	wr("nw_proto", p.NWProto)
	wr("tp_src", p.TPSrc)
	wr("tp_dst", p.TPDst)
	fmt.Fprintf(&b, "payload=%x}", p.Payload)
	return b.String()
}

func exprStr(e *sym.Expr) string {
	if v, ok := e.ConstVal(); ok {
		return fmt.Sprintf("%#x", v)
	}
	return sym.Simplify(e).String()
}

// IsConcrete reports whether every present field is a constant.
func (p *Packet) IsConcrete() bool {
	for _, e := range []*sym.Expr{p.InPort, p.EthDst, p.EthSrc, p.VLAN, p.PCP,
		p.EthType, p.NWSrc, p.NWDst, p.NWTos, p.NWProto, p.TPSrc, p.TPDst} {
		if e != nil && !e.IsConst() {
			return false
		}
	}
	return true
}

// Serialize renders the packet to wire bytes under the model σ (pass nil
// for a fully concrete packet). Layout: Ethernet II, optional 802.1q tag,
// IPv4 (no options), TCP/UDP/ICMP stub headers. Checksums are zero.
func (p *Packet) Serialize(σ sym.Assignment) []byte {
	ev := func(e *sym.Expr) uint64 {
		if e == nil {
			return 0
		}
		return sym.Eval(e, σ)
	}
	out := make([]byte, 0, 64)
	var mac [8]byte
	binary.BigEndian.PutUint64(mac[:], ev(p.EthDst)<<16)
	out = append(out, mac[:6]...)
	binary.BigEndian.PutUint64(mac[:], ev(p.EthSrc)<<16)
	out = append(out, mac[:6]...)

	vlan := ev(p.VLAN)
	if p.VLAN != nil && vlan != VLANNone {
		tci := (ev(p.PCP)&0x7)<<13 | vlan&0x0fff
		out = append(out, 0x81, 0x00, byte(tci>>8), byte(tci))
	}
	ethType := ev(p.EthType)
	out = append(out, byte(ethType>>8), byte(ethType))

	if ethType == EtherTypeIPv4 && p.NWSrc != nil {
		ip := make([]byte, 20)
		ip[0] = 0x45
		ip[1] = byte(ev(p.NWTos))
		totalLen := 20 + transportLen(ev(p.NWProto)) + len(p.Payload)
		binary.BigEndian.PutUint16(ip[2:4], uint16(totalLen))
		ip[8] = 64 // TTL
		ip[9] = byte(ev(p.NWProto))
		// Checksum (ip[10:12]) stays zero: §4.1 checksum simplification.
		binary.BigEndian.PutUint32(ip[12:16], uint32(ev(p.NWSrc)))
		binary.BigEndian.PutUint32(ip[16:20], uint32(ev(p.NWDst)))
		out = append(out, ip...)

		switch ev(p.NWProto) {
		case ProtoTCP:
			tcp := make([]byte, 20)
			binary.BigEndian.PutUint16(tcp[0:2], uint16(ev(p.TPSrc)))
			binary.BigEndian.PutUint16(tcp[2:4], uint16(ev(p.TPDst)))
			tcp[12] = 5 << 4 // data offset
			out = append(out, tcp...)
		case ProtoUDP:
			udp := make([]byte, 8)
			binary.BigEndian.PutUint16(udp[0:2], uint16(ev(p.TPSrc)))
			binary.BigEndian.PutUint16(udp[2:4], uint16(ev(p.TPDst)))
			binary.BigEndian.PutUint16(udp[4:6], uint16(8+len(p.Payload)))
			out = append(out, udp...)
		case ProtoICMP:
			icmp := make([]byte, 4)
			icmp[0] = byte(ev(p.TPSrc))
			icmp[1] = byte(ev(p.TPDst))
			out = append(out, icmp...)
		}
	}
	return append(out, p.Payload...)
}

func transportLen(proto uint64) int {
	switch proto {
	case ProtoTCP:
		return 20
	case ProtoUDP:
		return 8
	case ProtoICMP:
		return 4
	}
	return 0
}

// Parse decodes a concrete wire packet produced by Serialize (or any
// Ethernet/IPv4/TCP frame) back into a Packet with constant fields.
func Parse(inPort uint16, wire []byte) (*Packet, error) {
	if len(wire) < 14 {
		return nil, fmt.Errorf("dataplane: frame too short (%d bytes)", len(wire))
	}
	p := &Packet{InPort: sym.Const(16, uint64(inPort))}
	p.EthDst = sym.Const(48, beUint(wire[0:6]))
	p.EthSrc = sym.Const(48, beUint(wire[6:12]))
	off := 12
	ethType := uint64(binary.BigEndian.Uint16(wire[off : off+2]))
	p.VLAN = sym.Const(16, VLANNone)
	p.PCP = sym.Const(8, 0)
	if ethType == EtherTypeVLAN {
		if len(wire) < 18 {
			return nil, fmt.Errorf("dataplane: truncated VLAN tag")
		}
		tci := binary.BigEndian.Uint16(wire[off+2 : off+4])
		p.VLAN = sym.Const(16, uint64(tci&0x0fff))
		p.PCP = sym.Const(8, uint64(tci>>13))
		off += 4
		ethType = uint64(binary.BigEndian.Uint16(wire[off : off+2]))
	}
	p.EthType = sym.Const(16, ethType)
	off += 2
	if ethType == EtherTypeIPv4 && len(wire) >= off+20 {
		ip := wire[off:]
		ihl := int(ip[0]&0xf) * 4
		p.NWTos = sym.Const(8, uint64(ip[1]))
		p.NWProto = sym.Const(8, uint64(ip[9]))
		p.NWSrc = sym.Const(32, uint64(binary.BigEndian.Uint32(ip[12:16])))
		p.NWDst = sym.Const(32, uint64(binary.BigEndian.Uint32(ip[16:20])))
		off += ihl
		proto := uint64(ip[9])
		if (proto == ProtoTCP || proto == ProtoUDP) && len(wire) >= off+4 {
			p.TPSrc = sym.Const(16, uint64(binary.BigEndian.Uint16(wire[off:off+2])))
			p.TPDst = sym.Const(16, uint64(binary.BigEndian.Uint16(wire[off+2:off+4])))
			off += transportLen(proto)
		} else if proto == ProtoICMP && len(wire) >= off+4 {
			p.TPSrc = sym.Const(16, uint64(wire[off]))
			p.TPDst = sym.Const(16, uint64(wire[off+1]))
			off += 4
		}
	}
	if off <= len(wire) {
		p.Payload = append([]byte(nil), wire[off:]...)
	}
	return p, nil
}

func beUint(b []byte) uint64 {
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}
