package symbuf

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/soft-testing/soft/internal/sym"
)

func TestConcreteRoundTrip(t *testing.T) {
	data := []byte{0x01, 0x0e, 0x00, 0x48, 0xde, 0xad, 0xbe, 0xef}
	b := FromBytes(data)
	if !b.IsConcrete() {
		t.Fatal("FromBytes must be concrete")
	}
	if got := b.Concretize(nil); !bytes.Equal(got, data) {
		t.Fatalf("round trip %x != %x", got, data)
	}
}

func TestFieldReaders(t *testing.T) {
	b := FromBytes([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08})
	if v, _ := b.U8(0).ConstVal(); v != 0x01 {
		t.Fatalf("U8 = %#x", v)
	}
	if v, _ := b.U16(0).ConstVal(); v != 0x0102 {
		t.Fatalf("U16 = %#x", v)
	}
	if v, _ := b.U32(2).ConstVal(); v != 0x03040506 {
		t.Fatalf("U32 = %#x", v)
	}
	if v, _ := b.U48(1).ConstVal(); v != 0x020304050607 {
		t.Fatalf("U48 = %#x", v)
	}
	if v, _ := b.U64(0).ConstVal(); v != 0x0102030405060708 {
		t.Fatalf("U64 = %#x", v)
	}
}

func TestPutThenReadFoldsToVariable(t *testing.T) {
	// Writing a 16-bit variable and reading the field back must return the
	// variable itself (the ntoh/hton identity property from §4.1).
	b := New(8)
	v := sym.Var("port", 16)
	b.Put(4, v)
	got := b.U16(4)
	if !sym.Equal(got, v) {
		t.Fatalf("read-back is %v, want the original variable", got)
	}
	if !b.U8(0).IsConst() {
		t.Fatal("untouched bytes must stay concrete")
	}
}

func TestPutConst(t *testing.T) {
	b := New(8)
	b.PutConst(2, 2, 0xabcd)
	if v, ok := b.U16(2).ConstVal(); !ok || v != 0xabcd {
		t.Fatalf("PutConst read back %#x", v)
	}
}

func TestConcretizeWithModel(t *testing.T) {
	b := New(4)
	b.Put(0, sym.Var("x", 16))
	b.PutConst(2, 2, 0x1234)
	got := b.Concretize(sym.Assignment{"x": 0xbeef})
	want := []byte{0xbe, 0xef, 0x12, 0x34}
	if !bytes.Equal(got, want) {
		t.Fatalf("concretize %x, want %x", got, want)
	}
}

func TestSliceIsIndependent(t *testing.T) {
	b := FromBytes([]byte{1, 2, 3, 4})
	s := b.Slice(1, 2)
	s.SetByte(0, sym.Const(8, 99))
	if v, _ := b.U8(1).ConstVal(); v != 2 {
		t.Fatal("slice mutation leaked into parent")
	}
	if v, _ := s.U8(0).ConstVal(); v != 99 {
		t.Fatal("slice write lost")
	}
}

func TestAppend(t *testing.T) {
	a := FromBytes([]byte{1, 2})
	b := FromBytes([]byte{3})
	c := a.Append(b)
	if c.Len() != 3 {
		t.Fatalf("len %d", c.Len())
	}
	if got := c.Concretize(nil); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("append %x", got)
	}
}

func TestVars(t *testing.T) {
	b := New(8)
	b.Put(0, sym.Var("a", 16))
	b.Put(2, sym.Var("b", 32))
	vars := b.Vars()
	if len(vars) != 2 || vars["a"] == nil || vars["b"] == nil {
		t.Fatalf("vars %v", vars)
	}
}

func TestString(t *testing.T) {
	b := New(3)
	b.PutConst(0, 1, 0xab)
	b.Put(1, sym.Var("x", 16))
	if got := b.String(); got != "ab????" {
		t.Fatalf("string %q", got)
	}
}

func TestSetByteWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).SetByte(0, sym.Const(16, 0))
}

// Property: Put followed by Concretize under any assignment equals writing
// the evaluated constant directly.
func TestQuickPutConcretize(t *testing.T) {
	f := func(v uint32, x uint32) bool {
		b := New(6)
		b.Put(1, sym.Var("v", 32))
		got := b.Concretize(sym.Assignment{"v": uint64(v)})
		want := []byte{0, byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v), 0}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
