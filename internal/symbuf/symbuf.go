// Package symbuf provides byte buffers whose contents are sym expressions:
// the representation of in-flight OpenFlow messages and data plane packets
// during symbolic execution.
//
// A Buffer holds one 8-bit expression per byte. Multi-byte field accessors
// read and write big-endian (network order) values as single expressions;
// writing a field variable splits it into byte extracts and reading it back
// re-concatenates them, which the sym package folds back into the original
// variable. This mirrors the paper's §4.1 environment-model simplification
// of replacing ntoh/hton with the identity: field values flow through the
// buffer without byte-shuffling constraints.
package symbuf

import (
	"fmt"

	"github.com/soft-testing/soft/internal/sym"
)

// Buffer is a fixed-length sequence of symbolic bytes.
type Buffer struct {
	bytes []*sym.Expr
}

// New returns a buffer of n zero bytes.
func New(n int) *Buffer {
	b := &Buffer{bytes: make([]*sym.Expr, n)}
	zero := sym.Const(8, 0)
	for i := range b.bytes {
		b.bytes[i] = zero
	}
	return b
}

// FromBytes returns a buffer holding the given concrete bytes.
func FromBytes(data []byte) *Buffer {
	b := &Buffer{bytes: make([]*sym.Expr, len(data))}
	for i, d := range data {
		b.bytes[i] = sym.Const(8, uint64(d))
	}
	return b
}

// Len returns the buffer length in bytes.
func (b *Buffer) Len() int { return len(b.bytes) }

// Byte returns the expression for byte i.
func (b *Buffer) Byte(i int) *sym.Expr { return b.bytes[i] }

// SetByte replaces byte i.
func (b *Buffer) SetByte(i int, e *sym.Expr) {
	if e.Width() != 8 {
		panic(fmt.Sprintf("symbuf: SetByte with width-%d expression", e.Width()))
	}
	b.bytes[i] = e
}

// Slice returns a view of n bytes starting at off. The view shares no
// storage with b (buffers are cheap: a slice of pointers).
func (b *Buffer) Slice(off, n int) *Buffer {
	out := &Buffer{bytes: make([]*sym.Expr, n)}
	copy(out.bytes, b.bytes[off:off+n])
	return out
}

// Clone returns an independent copy.
func (b *Buffer) Clone() *Buffer { return b.Slice(0, b.Len()) }

// Append returns a new buffer that is b followed by tail.
func (b *Buffer) Append(tail *Buffer) *Buffer {
	out := &Buffer{bytes: make([]*sym.Expr, 0, b.Len()+tail.Len())}
	out.bytes = append(out.bytes, b.bytes...)
	out.bytes = append(out.bytes, tail.bytes...)
	return out
}

// U8 reads the byte at off.
func (b *Buffer) U8(off int) *sym.Expr { return b.bytes[off] }

// U16 reads a big-endian 16-bit field.
func (b *Buffer) U16(off int) *sym.Expr {
	return sym.Concat(b.bytes[off], b.bytes[off+1])
}

// U32 reads a big-endian 32-bit field.
func (b *Buffer) U32(off int) *sym.Expr {
	return sym.ConcatAll(b.bytes[off], b.bytes[off+1], b.bytes[off+2], b.bytes[off+3])
}

// U48 reads a big-endian 48-bit field (MAC addresses).
func (b *Buffer) U48(off int) *sym.Expr {
	return sym.ConcatAll(b.bytes[off], b.bytes[off+1], b.bytes[off+2],
		b.bytes[off+3], b.bytes[off+4], b.bytes[off+5])
}

// U64 reads a big-endian 64-bit field (cookies, datapath ids).
func (b *Buffer) U64(off int) *sym.Expr {
	return sym.ConcatAll(b.bytes[off], b.bytes[off+1], b.bytes[off+2], b.bytes[off+3],
		b.bytes[off+4], b.bytes[off+5], b.bytes[off+6], b.bytes[off+7])
}

// Put writes e (any width that is a multiple of 8) big-endian at off.
func (b *Buffer) Put(off int, e *sym.Expr) {
	w := e.Width()
	if w%8 != 0 {
		panic(fmt.Sprintf("symbuf: Put with width %d not a byte multiple", w))
	}
	n := w / 8
	for i := 0; i < n; i++ {
		hi := w - 8*i - 1
		b.bytes[off+i] = sym.Extract(e, hi, hi-7)
	}
}

// PutConst writes an n-byte big-endian constant at off.
func (b *Buffer) PutConst(off, n int, v uint64) {
	b.Put(off, sym.Const(8*n, v))
}

// IsConcrete reports whether every byte is a constant.
func (b *Buffer) IsConcrete() bool {
	for _, e := range b.bytes {
		if !e.IsConst() {
			return false
		}
	}
	return true
}

// Concretize evaluates every byte under σ and returns the wire bytes —
// turning a path-condition model into a concrete reproducer message.
func (b *Buffer) Concretize(σ sym.Assignment) []byte {
	out := make([]byte, len(b.bytes))
	for i, e := range b.bytes {
		out[i] = byte(sym.Eval(e, σ))
	}
	return out
}

// Vars collects the distinct symbolic variables appearing in the buffer.
func (b *Buffer) Vars() map[string]*sym.Expr {
	vars := make(map[string]*sym.Expr)
	for _, e := range b.bytes {
		sym.Vars(e, vars)
	}
	return vars
}

// String renders the buffer byte-by-byte: concrete bytes in hex, symbolic
// bytes as "??". Used in debugging and trace annotations.
func (b *Buffer) String() string {
	out := make([]byte, 0, 2*len(b.bytes))
	const hexdigits = "0123456789abcdef"
	for _, e := range b.bytes {
		if v, ok := e.ConstVal(); ok {
			out = append(out, hexdigits[v>>4], hexdigits[v&0xf])
		} else {
			out = append(out, '?', '?')
		}
	}
	return string(out)
}
