package trace

import (
	"strings"
	"testing"

	"github.com/soft-testing/soft/internal/dataplane"
	"github.com/soft-testing/soft/internal/openflow"
	"github.com/soft-testing/soft/internal/sym"
)

func TestErrorEventCanonical(t *testing.T) {
	e := Error(openflow.ErrBadAction, openflow.BACBadOutPort)
	if got := e.Canonical(); got != "msg:ERROR/BAD_ACTION/4" {
		t.Fatalf("canonical %q", got)
	}
	if len(e.Exprs()) != 0 {
		t.Fatal("error events carry no expressions")
	}
}

func TestPacketOutEvent(t *testing.T) {
	p := dataplane.TCPProbe(1)
	port := sym.Var("po.port", 16)
	e := PacketOut(port, p)
	c := e.Canonical()
	if !strings.Contains(c, "port=(var po.port 16)") {
		t.Fatalf("canonical missing symbolic port: %s", c)
	}
	if !strings.Contains(c, "tp_dst=0x7d0") {
		t.Fatalf("canonical missing concrete field: %s", c)
	}
	// Template elides every value.
	if strings.Contains(e.Template(), "po.port") || strings.Contains(e.Template(), "0x7d0") {
		t.Fatalf("template leaks values: %s", e.Template())
	}
	// Reserved concrete ports render as names in the template.
	flood := PacketOut(sym.Const(16, uint64(openflow.PortFlood)), p)
	if !strings.Contains(flood.Template(), "port=FLOOD") {
		t.Fatalf("reserved port not named: %s", flood.Template())
	}
}

func TestTraceCanonicalStability(t *testing.T) {
	mk := func() Trace {
		p := dataplane.TCPProbe(2)
		return FromOutputs([]any{
			PacketOut(sym.Const(16, 3), p),
			Error(openflow.ErrBadRequest, openflow.BRCBadLen),
		}, false)
	}
	if mk().Canonical() != mk().Canonical() {
		t.Fatal("canonical trace not deterministic")
	}
}

func TestSilentTrace(t *testing.T) {
	tr := FromOutputs(nil, false)
	if tr.Canonical() != "<silent>" {
		t.Fatalf("empty trace renders %q", tr.Canonical())
	}
}

func TestCrashAppended(t *testing.T) {
	tr := FromOutputs(nil, true)
	if tr.Canonical() != "crash" {
		t.Fatalf("crash trace renders %q", tr.Canonical())
	}
}

func TestDiffCondDifferentTemplates(t *testing.T) {
	a := FromOutputs([]any{Error(openflow.ErrBadRequest, 0)}, false)
	b := FromOutputs([]any{Drop("probe")}, false)
	if !DiffCond(a, b).IsTrue() {
		t.Fatal("different templates must always differ")
	}
}

func TestDiffCondIdentical(t *testing.T) {
	p := dataplane.TCPProbe(1)
	port := sym.Var("x", 16)
	a := FromOutputs([]any{PacketOut(port, p)}, false)
	b := FromOutputs([]any{PacketOut(port, p)}, false)
	if !DiffCond(a, b).IsFalse() {
		t.Fatal("identical traces can never differ")
	}
}

func TestDiffCondSemanticDisequality(t *testing.T) {
	// Agent A forwards with vlan = x & 0xfff (auto-masking); agent B
	// forwards with vlan = x. They differ exactly when x has high bits set.
	x := sym.Var("vid", 16)
	pa := dataplane.TCPProbe(1)
	pa.VLAN = sym.And(x, sym.Const(16, 0x0fff))
	pb := dataplane.TCPProbe(1)
	pb.VLAN = x
	a := FromOutputs([]any{PacketOut(sym.Const(16, 2), pa)}, false)
	b := FromOutputs([]any{PacketOut(sym.Const(16, 2), pb)}, false)
	cond := DiffCond(a, b)
	if cond.IsTrue() || cond.IsFalse() {
		t.Fatalf("expected conditional difference, got %v", cond)
	}
	// x = 0x100 (fits 12 bits): no observable difference.
	if sym.EvalBool(cond, sym.Assignment{"vid": 0x100}) {
		t.Fatal("in-range vid must not be a difference")
	}
	// x = 0x1fff: masked vs raw differ.
	if !sym.EvalBool(cond, sym.Assignment{"vid": 0x1fff}) {
		t.Fatal("out-of-range vid must be a difference")
	}
}

func TestDiffCondCrashVsNormal(t *testing.T) {
	a := FromOutputs(nil, true)
	b := FromOutputs(nil, false)
	if !DiffCond(a, b).IsTrue() {
		t.Fatal("crash vs silence must differ")
	}
}

func TestPacketInEvent(t *testing.T) {
	p := dataplane.TCPProbe(1)
	msl := sym.Var("cfg.miss_send_len", 16)
	e := PacketIn(openflow.ReasonNoMatch, msl, p)
	if !strings.Contains(e.Canonical(), "reason=0 len=(var cfg.miss_send_len 16)") {
		t.Fatalf("canonical %s", e.Canonical())
	}
}

func TestMsgEvent(t *testing.T) {
	e := Msg(openflow.TypeBarrierReply)
	if e.Canonical() != "msg:BARRIER_REPLY" {
		t.Fatalf("canonical %q", e.Canonical())
	}
}

func TestRawOutputTolerated(t *testing.T) {
	tr := FromOutputs([]any{42}, false)
	if tr.Canonical() != "raw:42" {
		t.Fatalf("raw output renders %q", tr.Canonical())
	}
}

func TestBuilderSegments(t *testing.T) {
	e := NewBuilder("k:").Text("a=").Expr(sym.Const(8, 5)).Text(" b=").Expr(sym.Var("v", 8)).Build()
	if got := e.Canonical(); got != "k:a=0x5 b=(var v 8)" {
		t.Fatalf("canonical %q", got)
	}
	if got := e.Template(); got != "k:a=⟨⟩ b=⟨⟩" {
		t.Fatalf("template %q", got)
	}
	if len(e.Exprs()) != 2 {
		t.Fatalf("exprs %v", e.Exprs())
	}
}
