// Package trace defines the output events OpenFlow agents produce and their
// normalized canonical form. SOFT compares agents solely through these
// traces (§3.3): OpenFlow messages sent back to the controller, packets
// emitted on the data plane, explicit "nothing happened" probe responses,
// and abnormal termination.
//
// Normalization (§3.3, "Normalizing results") removes data whose
// differences are spurious: transaction ids, buffer identifiers, and
// padding never appear in events, so two agents that differ only in such
// fields produce equal traces.
//
// Because outputs may contain symbolic input expressions (§3.3: "the output
// data may even contain symbolic inputs"), an event separates its fixed
// structure (the template) from the embedded value expressions. Two events
// with equal templates but different expressions are only a real behavioral
// difference for inputs where the expressions evaluate differently; the
// crosscheck phase adds the corresponding disequality to its solver query,
// preserving SOFT's no-false-positives property (§3.4) even for outputs
// like "forward with VLAN = x & 0xfff" versus "forward with VLAN = x".
package trace

import (
	"fmt"
	"strings"

	"github.com/soft-testing/soft/internal/dataplane"
	"github.com/soft-testing/soft/internal/openflow"
	"github.com/soft-testing/soft/internal/sym"
)

// Event is one externally observable agent action: a fixed template with
// embedded value expressions.
type Event struct {
	// segments has len(exprs)+1 entries; the canonical rendering is
	// segments[0] + exprs[0] + segments[1] + ...
	segments []string
	exprs    []*sym.Expr
}

// Builder incrementally constructs an Event.
type Builder struct {
	segs  []string
	exprs []*sym.Expr
	cur   strings.Builder
}

// NewBuilder starts an event with a kind tag (e.g. "pkt-out").
func NewBuilder(kind string) *Builder {
	b := &Builder{}
	b.cur.WriteString(kind)
	return b
}

// Text appends fixed text.
func (b *Builder) Text(s string) *Builder {
	b.cur.WriteString(s)
	return b
}

// Textf appends formatted fixed text.
func (b *Builder) Textf(format string, args ...any) *Builder {
	fmt.Fprintf(&b.cur, format, args...)
	return b
}

// Expr appends a value expression slot. Constants are expressions too:
// keeping them in slots (rather than the template) lets the crosschecker
// compare a constant output against a symbolic one semantically.
func (b *Builder) Expr(e *sym.Expr) *Builder {
	b.segs = append(b.segs, b.cur.String())
	b.cur.Reset()
	b.exprs = append(b.exprs, sym.Simplify(e))
	return b
}

// Build finalizes the event.
func (b *Builder) Build() Event {
	segs := append(b.segs, b.cur.String())
	return Event{segments: segs, exprs: b.exprs}
}

// Canonical returns the full normalized rendering used to group paths by
// output result.
func (e Event) Canonical() string {
	var sb strings.Builder
	for i, s := range e.segments {
		sb.WriteString(s)
		if i < len(e.exprs) {
			sb.WriteString(exprStr(e.exprs[i]))
		}
	}
	return sb.String()
}

// Template returns the rendering with expression slots elided — the
// structural shape of the event.
func (e Event) Template() string {
	return strings.Join(e.segments, "⟨⟩")
}

// Exprs returns the embedded value expressions in slot order.
func (e Event) Exprs() []*sym.Expr { return e.exprs }

func exprStr(e *sym.Expr) string {
	if v, ok := e.ConstVal(); ok {
		return fmt.Sprintf("%#x", v)
	}
	return e.String()
}

// Msg builds an event for a simple OpenFlow message with no interesting
// body (BARRIER_REPLY, ECHO_REPLY, ...).
func Msg(t openflow.MsgType) Event {
	return NewBuilder("msg:").Textf("%v", t).Build()
}

// Error builds the normalized event for an error reply.
func Error(t openflow.ErrType, code uint16) Event {
	return NewBuilder("msg:ERROR/").Textf("%v/%d", t, code).Build()
}

// Crash is the abnormal-termination marker appended to crashed paths.
func Crash() Event { return NewBuilder("crash").Build() }

// Drop records an input consumed with no externally visible effect ("we
// log an empty probe response" — §3.3).
func Drop(what string) Event {
	return NewBuilder("drop:").Text(what).Build()
}

// packetFields appends the present fields of p to b in a fixed order.
func packetFields(b *Builder, p *dataplane.Packet) {
	add := func(name string, e *sym.Expr) {
		if e != nil {
			b.Text(" ").Text(name).Text("=").Expr(e)
		}
	}
	add("dl_dst", p.EthDst)
	add("dl_src", p.EthSrc)
	add("vlan", p.VLAN)
	add("pcp", p.PCP)
	add("dl_type", p.EthType)
	add("nw_src", p.NWSrc)
	add("nw_dst", p.NWDst)
	add("nw_tos", p.NWTos)
	add("nw_proto", p.NWProto)
	add("tp_src", p.TPSrc)
	add("tp_dst", p.TPDst)
	b.Textf(" payload=%x", p.Payload)
}

// PacketOut records a packet emitted on the data plane toward a port.
func PacketOut(port *sym.Expr, p *dataplane.Packet) Event {
	b := NewBuilder("pkt-out:port=")
	// Concrete reserved ports render as names inside the template: sending
	// to FLOOD versus to a numbered port is a structural difference.
	if v, ok := sym.Simplify(port).ConstVal(); ok {
		if n := openflow.PortName(uint16(v)); n != "" {
			b.Text(n)
		} else {
			b.Expr(port)
		}
	} else {
		b.Expr(port)
	}
	packetFields(b, p)
	return b.Build()
}

// PacketIn records a packet forwarded to the controller. The buffer id is
// intentionally absent (normalization); dataLen is how much of the packet
// was included (depends on miss_send_len, so possibly symbolic).
func PacketIn(reason uint8, dataLen *sym.Expr, p *dataplane.Packet) Event {
	b := NewBuilder("pkt-in:").Textf("reason=%d len=", reason).Expr(dataLen)
	packetFields(b, p)
	return b.Build()
}

// Trace is a path's complete output: the event list plus the crash flag.
type Trace struct {
	Events  []Event
	Crashed bool
}

// FromOutputs converts a symexec path output list (which agents fill with
// trace.Event values) into a Trace.
func FromOutputs(outputs []any, crashed bool) Trace {
	t := Trace{Crashed: crashed}
	for _, o := range outputs {
		switch ev := o.(type) {
		case Event:
			t.Events = append(t.Events, ev)
		default:
			t.Events = append(t.Events, NewBuilder("raw:").Textf("%v", o).Build())
		}
	}
	if crashed {
		t.Events = append(t.Events, Crash())
	}
	return t
}

// Canonical returns the normalized rendering of the whole trace; paths with
// equal canonical traces exhibited the same behavior.
func (t Trace) Canonical() string {
	if len(t.Events) == 0 {
		return "<silent>"
	}
	parts := make([]string, len(t.Events))
	for i, e := range t.Events {
		parts[i] = e.Canonical()
	}
	return strings.Join(parts, "\n")
}

// Template returns the structural shape of the whole trace.
func (t Trace) Template() string {
	if len(t.Events) == 0 {
		return "<silent>"
	}
	parts := make([]string, len(t.Events))
	for i, e := range t.Events {
		parts[i] = e.Template()
	}
	return strings.Join(parts, "\n")
}

// Exprs returns all embedded expressions of the trace in order.
func (t Trace) Exprs() []*sym.Expr {
	var out []*sym.Expr
	for _, e := range t.Events {
		out = append(out, e.exprs...)
	}
	return out
}

// DiffCond returns the condition under which traces a and b (from two
// different agents) observably differ:
//   - different templates: any common input differs — the condition is
//     simply true;
//   - same templates: the traces differ exactly when some pair of embedded
//     expressions evaluates differently.
//
// The second case returns false (no difference possible) for structurally
// identical expression lists.
func DiffCond(a, b Trace) *sym.Expr {
	if a.Template() != b.Template() {
		return sym.Bool(true)
	}
	ae, be := a.Exprs(), b.Exprs()
	if len(ae) != len(be) {
		return sym.Bool(true)
	}
	var dis []*sym.Expr
	for i := range ae {
		if sym.Equal(ae[i], be[i]) {
			continue
		}
		if ae[i].Width() != be[i].Width() {
			return sym.Bool(true)
		}
		dis = append(dis, sym.Ne(ae[i], be[i]))
	}
	if len(dis) == 0 {
		return sym.Bool(false)
	}
	return sym.LOr(dis...)
}
