package dist

import (
	"bytes"
	"io"
	"testing"
	"time"

	"github.com/soft-testing/soft/internal/coverage"
	"github.com/soft-testing/soft/internal/harness"
	"github.com/soft-testing/soft/internal/obs"
	"github.com/soft-testing/soft/internal/solver"
	"github.com/soft-testing/soft/internal/sym"
)

// bitsFromSeed expands fuzzer scalars into a decision prefix.
func bitsFromSeed(n uint8, pattern uint64) []bool {
	out := make([]bool, int(n)%67) // cover empty through just-past-one-word
	for i := range out {
		out[i] = pattern&(1<<(i%64)) != 0
	}
	return out
}

// FuzzFrameRoundTrip: any (type, payload) pair must survive write → read.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(byte(msgHello), []byte{})
	f.Add(byte(msgLease), []byte{1, 2, 3})
	f.Add(byte(msgResult), bytes.Repeat([]byte{0xab}, 4096))
	f.Fuzz(func(t *testing.T, mt byte, payload []byte) {
		var buf bytes.Buffer
		if err := writeFrame(&buf, msgType(mt), payload); err != nil {
			t.Fatalf("writeFrame: %v", err)
		}
		gt, gp, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("readFrame of own output: %v", err)
		}
		if gt != msgType(mt) || !bytes.Equal(gp, payload) {
			t.Fatalf("frame mismatch: (%d, %d bytes) vs (%d, %d bytes)", gt, len(gp), mt, len(payload))
		}
		if buf.Len() != 0 {
			t.Fatalf("%d trailing bytes after frame", buf.Len())
		}
	})
}

// FuzzReadFrame: arbitrary bytes must never panic the frame reader, and a
// successful read never exceeds the frame cap.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})
	f.Add([]byte{0, 0, 0, 2, 5, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, payload, err := readFrame(bytes.NewReader(data))
		if err == nil && len(payload)+1 > maxFrame {
			t.Fatalf("accepted oversized frame (%d bytes)", len(payload))
		}
	})
}

// FuzzLeaseRoundTrip covers the prefix-batch payload: job and lease ids
// plus several bit-packed decision prefixes of every length and pattern.
func FuzzLeaseRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint8(1), uint8(0), uint64(0), false, uint64(0), uint64(0))
	f.Add(uint64(3), uint64(42), uint8(4), uint8(7), uint64(0b1010101), true, uint64(0xfeed), uint64(12))
	f.Add(^uint64(0), ^uint64(0), uint8(17), uint8(66), ^uint64(0), true, ^uint64(0), ^uint64(0))
	f.Fuzz(func(t *testing.T, job, id uint64, count, n uint8, pattern uint64, traced bool, traceID, parentSpan uint64) {
		l := lease{job: job, id: id, traced: traced, traceID: traceID, parentSpan: parentSpan}
		for i := 0; i < int(count)%9; i++ {
			l.prefixes = append(l.prefixes, bitsFromSeed(n+uint8(i), pattern^uint64(i)))
		}
		if len(l.prefixes) == 0 {
			l.prefixes = [][]bool{nil}
		}
		got, err := decodeLease(encodeLease(l))
		if err != nil {
			t.Fatalf("decodeLease of own output: %v", err)
		}
		if got.job != l.job || got.id != l.id || len(got.prefixes) != len(l.prefixes) {
			t.Fatalf("lease mismatch: %+v vs %+v", got, l)
		}
		if got.traced != l.traced || got.traceID != l.traceID || got.parentSpan != l.parentSpan {
			t.Fatalf("lease trace context mismatch: %+v vs %+v", got, l)
		}
		for p := range l.prefixes {
			if len(got.prefixes[p]) != len(l.prefixes[p]) {
				t.Fatalf("prefix %d length mismatch", p)
			}
			for i := range l.prefixes[p] {
				if got.prefixes[p][i] != l.prefixes[p][i] {
					t.Fatalf("prefix %d bit %d flipped", p, i)
				}
			}
		}
	})
}

// FuzzHelloJobRoundTrip covers the handshake and job-announcement payloads
// (plus the reject frame's version field).
func FuzzHelloJobRoundTrip(f *testing.F) {
	f.Add(uint64(1), "worker/1", uint64(0), "ref", "Packet Out", int64(100), int64(64), true, false, true, false, uint64(0))
	f.Add(uint64(0), "", uint64(7), "", "", int64(0), int64(0), false, false, false, true, uint64(0xdead))
	f.Add(^uint64(0), "ünïcödé\nworker", ^uint64(0), "agent \"q\"", "test\ttab", int64(-5), int64(1<<40), true, true, true, true, ^uint64(0))
	f.Fuzz(func(t *testing.T, version uint64, name string, jobID uint64, agent, test string, maxPaths, maxDepth int64, models, sharing, cut, traced bool, traceID uint64) {
		h, err := decodeHello(encodeHello(hello{version: version, name: name}))
		if err != nil {
			t.Fatalf("decodeHello of own output: %v", err)
		}
		if h.version != version || h.name != name {
			t.Fatalf("hello mismatch: %+v", h)
		}
		j := jobMsg{
			id: jobID, agent: agent, test: test,
			maxPaths: int(maxPaths), maxDepth: int(maxDepth),
			models: models, clauseSharing: sharing, canonicalCut: cut,
			traced: traced, traceID: traceID,
		}
		gj, err := decodeJob(encodeJob(j))
		if err != nil {
			t.Fatalf("decodeJob of own output: %v", err)
		}
		if gj != j {
			t.Fatalf("job mismatch: %+v vs %+v", gj, j)
		}
		r, err := decodeReject(encodeReject(reject{want: version}))
		if err != nil {
			t.Fatalf("decodeReject of own output: %v", err)
		}
		if r.want != version {
			t.Fatalf("reject version mismatch: %d vs %d", r.want, version)
		}
	})
}

// fuzzCovMap is a small fixed coverage universe for shard payload fuzzing.
func fuzzCovMap() *coverage.Map {
	m := coverage.NewMap()
	for _, b := range []struct {
		name  string
		instr int
	}{{"parse", 10}, {"validate", 7}, {"apply", 22}} {
		m.Block(b.name, b.instr)
	}
	m.BranchSite("type-switch")
	m.BranchSite("len-check")
	m.Seal()
	return m
}

// buildShard assembles a Shard from fuzzer-chosen scalars, mirroring
// harness's results_fuzz_test buildResult: conditions and trace expressions
// are real sym expressions, coverage sets live over a fixed universe.
func buildShard(covMap *coverage.Map, out1, out2 string, crashed bool, bound, modelVal uint64, truncated bool, decisionSeed uint64, stats int64) *harness.Shard {
	x := sym.Var("x", 16)
	y := sym.Var("po.port", 16)
	cond1 := sym.Ult(x, sym.Const(16, bound&0xffff))
	cond2 := sym.LAnd(sym.LNot(cond1), sym.EqConst(y, modelVal&0xffff))

	cov1 := covMap.NewSet()
	cov1.CoverBlock(0)
	cov1.CoverBranch(0, decisionSeed&1 == 0)
	cov2 := covMap.NewSet()
	cov2.CoverBlock(2)
	cov2.CoverBranch(1, true)
	cum := covMap.NewSet()
	cum.Merge(cov1)
	cum.Merge(cov2)

	sh := &harness.Shard{
		Cov:            cum,
		Truncated:      truncated,
		Infeasible:     int(stats & 0xff),
		DepthTruncated: int(stats >> 8 & 0xff),
		BranchQueries:  stats,
		Stats: solver.Stats{
			Queries:       stats,
			CacheHits:     stats / 2,
			SatQueries:    stats / 3,
			UnsatQueries:  stats / 4,
			SolveTime:     time.Duration(stats),
			MaxQuerySize:  stats / 5,
			ClausesTotal:  stats / 6,
			AuxVarsTotal:  stats / 7,
			FastPathConst: stats / 8,
			ClauseExports: stats / 9,
			ClauseImports: stats / 10,
		},
	}
	sh.Paths = append(sh.Paths,
		harness.ShardPath{
			SerializedPath: harness.SerializedPath{
				ID: 0, Cond: cond1, Template: out1, Canonical: out1,
				Exprs: []*sym.Expr{x}, Branches: 1,
			},
			Decisions: bitsFromSeed(uint8(decisionSeed), decisionSeed),
			Cov:       cov1,
		},
		harness.ShardPath{
			SerializedPath: harness.SerializedPath{
				ID: 1, Cond: cond2, Template: out1 + "\n" + out2, Canonical: out2,
				Exprs: []*sym.Expr{x, y}, Crashed: crashed, Branches: 2,
				Model: sym.Assignment{"x": bound & 0xffff, "po.port": modelVal & 0xffff},
			},
			Decisions: bitsFromSeed(uint8(decisionSeed>>8), ^decisionSeed),
			Cov:       cov2,
		},
	)
	return sh
}

// FuzzShardResultRoundTrip is the partial-result payload property: any
// shard batch assembled from fuzzer inputs must survive encode → decode
// with every field intact, including bit-packed decisions and coverage
// bitmaps.
func FuzzShardResultRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(3), "msg:ERROR/BAD_ACTION/4", "pkt-out:port=FLOOD", false, uint64(25), uint64(0xfffd), false, uint64(0x5a), int64(12345))
	f.Add(uint64(0), uint64(0), "", "", true, uint64(0), uint64(0), true, uint64(0), int64(0))
	f.Add(^uint64(0), ^uint64(0), "line1\nline2", "tab\tand\\backslash", true, uint64(1<<40), uint64(7), true, ^uint64(0), int64(-9))
	f.Fuzz(func(t *testing.T, jobID, leaseID uint64, out1, out2 string, crashed bool, bound, modelVal uint64, truncated bool, decisionSeed uint64, stats int64) {
		covMap := fuzzCovMap()
		// Two frames of one lease exercise the per-prefix framing.
		wants := []*harness.Shard{
			buildShard(covMap, out1, out2, crashed, bound, modelVal, truncated, decisionSeed, stats),
			buildShard(covMap, out2, out1, !crashed, modelVal, bound, !truncated, ^decisionSeed, stats/2),
		}
		for i, want := range wants {
			payload := encodeResult(resultMsg{job: jobID, lease: leaseID, index: uint64(i), shard: want})
			got, err := decodeResult(payload, covMap)
			if err != nil {
				t.Fatalf("decodeResult of own output: %v\npayload: %x", err, payload)
			}
			if got.job != jobID || got.lease != leaseID || got.index != uint64(i) {
				t.Fatalf("ids (%d, %d, %d), want (%d, %d, %d)", got.job, got.lease, got.index, jobID, leaseID, i)
			}
			compareShard(t, got.shard, want)
		}
	})
}

// compareShard asserts two shard payloads are field-for-field identical.
func compareShard(t *testing.T, gs, want *harness.Shard) {
	t.Helper()
	if gs.Truncated != want.Truncated || gs.Infeasible != want.Infeasible ||
		gs.DepthTruncated != want.DepthTruncated || gs.BranchQueries != want.BranchQueries {
		t.Fatalf("shard counters mismatch: %+v vs %+v", gs, want)
	}
	if gs.Stats != want.Stats {
		t.Fatalf("stats mismatch: %+v vs %+v", gs.Stats, want.Stats)
	}
	if !covEqual(gs.Cov, want.Cov) {
		t.Fatal("cumulative coverage mismatch")
	}
	if len(gs.Paths) != len(want.Paths) {
		t.Fatalf("path count %d, want %d", len(gs.Paths), len(want.Paths))
	}
	for i := range want.Paths {
		gp, wp := &gs.Paths[i], &want.Paths[i]
		if gp.Crashed != wp.Crashed || gp.Branches != wp.Branches ||
			gp.Template != wp.Template || gp.Canonical != wp.Canonical {
			t.Fatalf("path %d header mismatch: %+v vs %+v", i, gp.SerializedPath, wp.SerializedPath)
		}
		if !sym.Equal(gp.Cond, wp.Cond) {
			t.Fatalf("path %d condition mismatch: %s vs %s", i, gp.Cond, wp.Cond)
		}
		if len(gp.Exprs) != len(wp.Exprs) {
			t.Fatalf("path %d expr count mismatch", i)
		}
		for j := range wp.Exprs {
			if !sym.Equal(gp.Exprs[j], wp.Exprs[j]) {
				t.Fatalf("path %d expr %d mismatch", i, j)
			}
		}
		if len(gp.Decisions) != len(wp.Decisions) {
			t.Fatalf("path %d decisions length mismatch", i)
		}
		for j := range wp.Decisions {
			if gp.Decisions[j] != wp.Decisions[j] {
				t.Fatalf("path %d decision %d flipped", i, j)
			}
		}
		if len(gp.Model) != len(wp.Model) {
			t.Fatalf("path %d model size mismatch", i)
		}
		for k, v := range wp.Model {
			if gp.Model[k] != v {
				t.Fatalf("path %d model[%q] = %d, want %d", i, k, gp.Model[k], v)
			}
		}
		if !covEqual(gp.Cov, wp.Cov) {
			t.Fatalf("path %d coverage mismatch", i)
		}
	}
}

// covEqual compares coverage sets by bitmap.
func covEqual(a, b *coverage.Set) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	ab, abr := a.Snapshot()
	bb, bbr := b.Snapshot()
	if len(ab) != len(bb) || len(abr) != len(bbr) {
		return false
	}
	for i := range ab {
		if ab[i] != bb[i] {
			return false
		}
	}
	return bytes.Equal(abr, bbr)
}

// FuzzDecodeResult throws arbitrary bytes at the shard-result decoder: it
// must reject or accept without panicking, and whatever it accepts must be
// internally consistent enough to merge.
func FuzzDecodeResult(f *testing.F) {
	covMap := fuzzCovMap()
	good := encodeResult(resultMsg{job: 2, lease: 1, index: 0,
		shard: buildShard(covMap, "a", "b", false, 10, 20, false, 0x33, 77)})
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add(good[:len(good)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeResult(data, fuzzCovMap())
		if err == nil && m.shard == nil {
			t.Fatal("nil shard accepted")
		}
	})
}

// FuzzTraceRoundTrip covers the v5 span-segment payload: a worker's
// buffered spans must survive encode → decode with every event field
// intact, since the coordinator rebases timestamps off these values when
// merging the cross-process timeline.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(2), "worker/w1", int64(1700000000_000000), uint64(7), uint8(3), "shard", int64(10), int64(250), int64(4), uint64(100))
	f.Add(uint64(0), uint64(0), "", int64(0), uint64(0), uint8(0), "", int64(0), int64(0), int64(0), uint64(0))
	f.Add(^uint64(0), ^uint64(0), "pröc\n\"q\"", int64(-5), ^uint64(0), uint8(9), "span\twith\ttabs", int64(-1), int64(1<<50), int64(-9), ^uint64(0))
	f.Fuzz(func(t *testing.T, job, leaseID uint64, process string, base int64, parent uint64, count uint8, name string, ts, dur, tid int64, id uint64) {
		m := traceMsg{job: job, lease: leaseID, seg: obs.Segment{
			Process: process, BaseUnixMicro: base, Parent: parent,
		}}
		for i := 0; i < int(count)%5; i++ {
			k := int64(i)
			m.seg.Events = append(m.seg.Events, obs.SegmentEvent{
				Name: name, TS: ts + k, Dur: dur - k, TID: tid ^ k,
				ID: id + uint64(i), Parent: parent ^ uint64(i),
			})
		}
		got, err := decodeTrace(encodeTrace(m))
		if err != nil {
			t.Fatalf("decodeTrace of own output: %v", err)
		}
		if got.job != m.job || got.lease != m.lease {
			t.Fatalf("trace ids (%d, %d), want (%d, %d)", got.job, got.lease, m.job, m.lease)
		}
		gs, ws := got.seg, m.seg
		if gs.Process != ws.Process || gs.BaseUnixMicro != ws.BaseUnixMicro || gs.Parent != ws.Parent {
			t.Fatalf("segment header mismatch: %+v vs %+v", gs, ws)
		}
		if len(gs.Events) != len(ws.Events) {
			t.Fatalf("event count %d, want %d", len(gs.Events), len(ws.Events))
		}
		for i := range ws.Events {
			if gs.Events[i] != ws.Events[i] {
				t.Fatalf("event %d mismatch: %+v vs %+v", i, gs.Events[i], ws.Events[i])
			}
		}
	})
}

// FuzzDecodeHelloLease throws arbitrary bytes at the small-message
// decoders.
func FuzzDecodeHelloLease(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeHello(hello{version: 1, name: "w"}))
	f.Add(encodeLease(lease{job: 1, id: 9, traced: true, traceID: 0xbeef, parentSpan: 4, prefixes: [][]bool{{true, false, true}, {false}}}))
	f.Add(encodeJob(jobMsg{id: 3, agent: "ref", test: "Packet Out", traced: true, traceID: 0xfeed}))
	f.Add(encodeTrace(traceMsg{job: 3, lease: 9, seg: obs.Segment{
		Process: "worker/w1", BaseUnixMicro: 42, Parent: 7,
		Events: []obs.SegmentEvent{{Name: "shard", TS: 1, Dur: 2, TID: 3, ID: 4, Parent: 7}},
	}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		decodeHello(data)
		decodeLease(data)
		decodeJob(data)
		decodeProgress(data)
		decodeReject(data)
		decodeTrace(data)
	})
}

// TestFrameTooLarge pins the frame cap on both ends.
func TestFrameTooLarge(t *testing.T) {
	if err := writeFrame(io.Discard, msgResult, make([]byte, maxFrame)); err == nil {
		t.Fatal("writeFrame accepted an oversized payload")
	}
	var hdr [5]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := readFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("readFrame accepted an oversized length")
	}
}
