package dist

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/soft-testing/soft/internal/agents"
	"github.com/soft-testing/soft/internal/harness"
)

// DefaultShardDepth bounds the frontier split: forks whose decision vector
// is longer than this become shards for workers; shallower prefixes the
// coordinator explores itself while splitting. Depth 2 keeps the
// coordinator's share of the tree tiny while producing enough subtrees to
// feed several workers.
const DefaultShardDepth = 2

// DefaultLeaseTimeout is how long a shard may stay leased without
// completing before the coordinator offers it to another worker. Re-leasing
// is safe at any timeout — first result wins and duplicates are identical —
// so the default only trades duplicated work against stall detection.
const DefaultLeaseTimeout = 2 * time.Minute

// Config parameterizes a coordinator run. AgentName and TestName are
// required and name the job by registry key — the form every worker
// process can resolve locally (an Agent value cannot cross a process
// boundary); zero limits take the harness defaults.
type Config struct {
	AgentName string
	TestName  string

	// MaxPaths/MaxDepth/WantModels/ClauseSharing mirror harness.Options and
	// are forwarded to every worker; all shards must share them for the
	// merged result to be canonical.
	MaxPaths      int
	MaxDepth      int
	WantModels    bool
	ClauseSharing bool
	// NoCanonicalCut opts out of canonical MaxPaths truncation. Distributed
	// runs default to the canonical cut (the zero value): without it a
	// truncated run's path selection would depend on which shards finished
	// first, and the determinism guarantee would hold only for exhaustive
	// runs.
	NoCanonicalCut bool

	// ShardDepth bounds the frontier split (default DefaultShardDepth).
	ShardDepth int
	// LeaseTimeout re-offers a shard that has not completed in this long
	// (default DefaultLeaseTimeout; negative disables re-leasing on
	// timeout — disconnects still re-lease).
	LeaseTimeout time.Duration
	// DrainTimeout bounds the graceful-shutdown wait after the merge: a
	// handler stuck mid-read on a hung worker is cut off after this long
	// (default 5s).
	DrainTimeout time.Duration

	// Progress, when set, receives the cumulative completed-path count
	// (coordinator-local paths plus live shard progress). Counts are a
	// monotone high-water mark.
	Progress func(done int)
	// Log, when set, receives one line per lifecycle event (worker
	// connects, lease grants, re-leases, shard completions). Safe for any
	// io.Writer; writes are serialized.
	Log io.Writer
}

// shardStatus tracks one shard through the lease state machine.
type shardStatus int

const (
	shardPending shardStatus = iota
	shardLeased
	shardDone
)

type shard struct {
	id       uint64
	prefix   []bool
	status   shardStatus
	leasedTo net.Conn  // connection holding the current lease
	deadline time.Time // lease expiry (zero when LeaseTimeout disabled)
	result   *harness.Shard
	done     int // live progress (completed paths reported by the worker)
}

// coordinator is the shared state of one Serve run.
type coordinator struct {
	cfg     Config
	agent   agents.Agent
	test    harness.Test
	mu      sync.Mutex
	cond    *sync.Cond
	shards  []*shard
	doneN   int
	failure error // ctx cancellation; wakes and stops every handler
	conns   map[net.Conn]bool
	wg      sync.WaitGroup
	logMu   sync.Mutex

	localPaths int // paths the coordinator completed during the split
	progressHi int // high-water mark handed to cfg.Progress
}

func (c *coordinator) logf(format string, args ...any) {
	if c.cfg.Log == nil {
		return
	}
	c.logMu.Lock()
	defer c.logMu.Unlock()
	fmt.Fprintf(c.cfg.Log, "dist: "+format+"\n", args...)
}

// Serve runs a distributed exploration: it splits the frontier, serves
// shard leases to every worker that connects to ln, and returns the merged
// result once all shards complete. The result is byte-identical to a
// single-process exploration with the same configuration. Cancelling ctx
// aborts the run with ctx's error (a partial distributed run has no
// deterministic meaning, so nothing is returned).
func Serve(ctx context.Context, ln net.Listener, cfg Config) (*harness.MergedResult, error) {
	// The listener is owned for the duration of the run and closed on every
	// return path, early errors included (the watch goroutine also closes it
	// on cancellation; double Close on a net.Listener is harmless).
	defer ln.Close()
	agent, err := agents.ByName(cfg.AgentName)
	if err != nil {
		return nil, fmt.Errorf("dist: Serve: %w", err)
	}
	test, ok := harness.TestByName(cfg.TestName)
	if !ok {
		return nil, fmt.Errorf("dist: Serve: unknown test %q", cfg.TestName)
	}
	if cfg.MaxPaths == 0 {
		cfg.MaxPaths = harness.DefaultMaxPaths
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = harness.DefaultMaxDepth
	}
	if cfg.ShardDepth == 0 {
		cfg.ShardDepth = DefaultShardDepth
	}
	if cfg.LeaseTimeout == 0 {
		cfg.LeaseTimeout = DefaultLeaseTimeout
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	start := time.Now()

	c := &coordinator{cfg: cfg, agent: agent, test: test, conns: make(map[net.Conn]bool)}
	c.cond = sync.NewCond(&c.mu)

	// Phase 1 of the coordinator: split the frontier. The split run
	// explores every path reachable through prefixes of length <=
	// ShardDepth itself and diverts each deeper fork — the root of an
	// unexplored subtree — into the shard queue.
	var prefixes [][]bool
	local := harness.ExploreContext(ctx, agent, test, harness.Options{
		MaxPaths:      cfg.MaxPaths,
		MaxDepth:      cfg.MaxDepth,
		WantModels:    cfg.WantModels,
		ClauseSharing: cfg.ClauseSharing,
		CanonicalCut:  !cfg.NoCanonicalCut,
		ShardDepth:    cfg.ShardDepth,
		ShardSink:     func(p []bool) { prefixes = append(prefixes, p) },
		Workers:       1,
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, p := range prefixes {
		c.shards = append(c.shards, &shard{id: uint64(i), prefix: p})
	}
	c.localPaths = len(local.Paths)
	c.logf("split: %d local paths, %d shards (depth %d)", len(local.Paths), len(c.shards), cfg.ShardDepth)
	c.reportProgress()

	// Cancellation and lease expiry share a watcher: it wakes blocked
	// handlers on ctx cancellation and returns timed-out leases to the
	// pending queue.
	watchCtx, stopWatch := context.WithCancel(ctx)
	defer stopWatch()
	go c.watch(watchCtx, ln)

	// Serve workers until every shard is done.
	go c.accept(ln)

	c.mu.Lock()
	for c.doneN < len(c.shards) && c.failure == nil {
		c.cond.Wait()
	}
	err = c.failure
	c.mu.Unlock()
	if err != nil {
		c.closeAll()
		return nil, err
	}

	shards := []*harness.Shard{local.Shard()}
	c.mu.Lock()
	for _, s := range c.shards {
		shards = append(shards, s.result)
	}
	c.mu.Unlock()
	merged, err := harness.MergeShards(
		local.Agent, local.Test, local.MsgCount, c.agent.CovMap(), shards, cfg.MaxPaths)
	if err != nil {
		c.closeAll()
		return nil, err
	}
	merged.Elapsed = time.Since(start)
	c.logf("merged: %d paths from %d shards", len(merged.Paths), len(shards))

	// Graceful drain: handlers waiting for work observe completion and send
	// shutdown frames. A handler stuck reading from a hung worker cannot —
	// cut those connections after a grace period.
	c.cond.Broadcast()
	drained := make(chan struct{})
	go func() { c.wg.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(cfg.DrainTimeout):
		c.closeAll()
		<-drained
	}
	return merged, nil
}

// accept admits workers until the listener closes.
func (c *coordinator) accept(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		c.mu.Lock()
		if c.doneN == len(c.shards) || c.failure != nil {
			c.mu.Unlock()
			conn.Close()
			continue
		}
		c.conns[conn] = true
		c.wg.Add(1)
		c.mu.Unlock()
		go c.handle(conn)
	}
}

// watch wakes handlers on cancellation and re-offers expired leases.
func (c *coordinator) watch(ctx context.Context, ln net.Listener) {
	tick := time.NewTicker(250 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			c.mu.Lock()
			if c.failure == nil && c.doneN < len(c.shards) {
				c.failure = ctx.Err()
			}
			c.mu.Unlock()
			c.cond.Broadcast()
			ln.Close()
			c.closeAll()
			return
		case <-tick.C:
			if c.cfg.LeaseTimeout < 0 {
				continue
			}
			now := time.Now()
			c.mu.Lock()
			requeued := 0
			for _, s := range c.shards {
				if s.status == shardLeased && now.After(s.deadline) {
					s.status = shardPending
					s.leasedTo = nil
					s.done = 0
					requeued++
				}
			}
			c.mu.Unlock()
			if requeued > 0 {
				c.logf("re-leased %d expired shard(s)", requeued)
				c.cond.Broadcast()
			}
		}
	}
}

func (c *coordinator) closeAll() {
	c.mu.Lock()
	for conn := range c.conns {
		conn.Close()
	}
	c.mu.Unlock()
}

// next blocks until a shard is available for conn, all shards are done
// (returns ok=false, finished=true), or the run failed (ok=false,
// finished=false).
func (c *coordinator) next(conn net.Conn) (s *shard, ok, finished bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.failure != nil {
			return nil, false, false
		}
		if c.doneN == len(c.shards) {
			return nil, false, true
		}
		for _, cand := range c.shards {
			if cand.status == shardPending {
				cand.status = shardLeased
				cand.leasedTo = conn
				cand.done = 0
				if c.cfg.LeaseTimeout > 0 {
					cand.deadline = time.Now().Add(c.cfg.LeaseTimeout)
				}
				return cand, true, false
			}
		}
		c.cond.Wait()
	}
}

// release returns conn's in-flight lease (if conn still holds it) to the
// pending queue — the disconnect half of crash recovery.
func (c *coordinator) release(conn net.Conn, s *shard) {
	c.mu.Lock()
	requeued := false
	if s != nil && s.status == shardLeased && s.leasedTo == conn {
		s.status = shardPending
		s.leasedTo = nil
		s.done = 0
		requeued = true
	}
	c.mu.Unlock()
	if requeued {
		c.logf("lease %d re-queued (worker lost)", s.id)
		c.cond.Broadcast()
	}
}

// complete records a shard result. First completion wins: duplicates from
// re-leases are dropped (determinism makes them identical anyway).
func (c *coordinator) complete(s *shard, res *harness.Shard) {
	c.mu.Lock()
	if s.status == shardDone {
		c.mu.Unlock()
		return
	}
	s.status = shardDone
	s.result = res
	s.done = len(res.Paths)
	c.doneN++
	c.mu.Unlock()
	c.logf("shard %d done (%d paths)", s.id, len(res.Paths))
	c.reportProgress()
	// Wake everyone: handlers waiting for a lease re-check the queue, and on
	// the final shard the Serve loop observes completion.
	c.cond.Broadcast()
}

// progress records a live per-shard path count and reports the cumulative
// high-water mark.
func (c *coordinator) progress(s *shard, done int) {
	c.mu.Lock()
	if s.status == shardLeased && done > s.done {
		s.done = done
	}
	c.mu.Unlock()
	c.reportProgress()
}

// reportProgress invokes cfg.Progress with the monotone cumulative count.
func (c *coordinator) reportProgress() {
	if c.cfg.Progress == nil {
		return
	}
	c.mu.Lock()
	total := c.localPaths
	for _, s := range c.shards {
		total += s.done
	}
	if total > c.progressHi {
		c.progressHi = total
	}
	hi := c.progressHi
	c.mu.Unlock()
	c.cfg.Progress(hi)
}

// handle drives one worker connection through the protocol.
func (c *coordinator) handle(conn net.Conn) {
	var current *shard
	defer func() {
		c.release(conn, current)
		c.mu.Lock()
		delete(c.conns, conn)
		c.mu.Unlock()
		conn.Close()
		c.wg.Done()
	}()

	t, payload, err := readFrame(conn)
	if err != nil || t != msgHello {
		c.logf("worker rejected: bad hello (%v)", err)
		return
	}
	h, err := decodeHello(payload)
	if err != nil || h.version != protocolVersion {
		c.logf("worker %q rejected: protocol version %d != %d (%v)", h.name, h.version, protocolVersion, err)
		return
	}
	w := welcome{
		agent:         c.cfg.AgentName,
		test:          c.cfg.TestName,
		maxPaths:      c.cfg.MaxPaths,
		maxDepth:      c.cfg.MaxDepth,
		models:        c.cfg.WantModels,
		clauseSharing: c.cfg.ClauseSharing,
		canonicalCut:  !c.cfg.NoCanonicalCut,
	}
	if err := writeFrame(conn, msgWelcome, encodeWelcome(w)); err != nil {
		return
	}
	c.logf("worker %q connected", h.name)

	for {
		s, ok, finished := c.next(conn)
		if !ok {
			if finished {
				writeFrame(conn, msgShutdown, nil)
			}
			return
		}
		current = s
		c.logf("lease %d -> %q (prefix %s)", s.id, h.name, fmtPrefix(s.prefix))
		if err := writeFrame(conn, msgLease, encodeLease(lease{id: s.id, prefix: s.prefix})); err != nil {
			return
		}
		// Drain progress frames until this lease's result arrives. A result
		// for a stale lease id (the shard was re-leased and completed
		// elsewhere while this worker kept running) still frees the worker.
		for current != nil {
			t, payload, err := readFrame(conn)
			if err != nil {
				return
			}
			switch t {
			case msgProgress:
				p, err := decodeProgress(payload)
				if err != nil {
					c.logf("worker %q: %v", h.name, err)
					return
				}
				if p.lease == s.id {
					c.progress(s, int(p.done))
				}
			case msgResult:
				r, err := decodeResult(payload, c.agent.CovMap())
				if err != nil {
					c.logf("worker %q: dropping shard result: %v", h.name, err)
					return
				}
				if r.lease != s.id {
					continue // stale result from a pre-re-lease run
				}
				c.complete(s, r.shard)
				current = nil
			default:
				c.logf("worker %q: unexpected frame type %d", h.name, t)
				return
			}
		}
	}
}

// fmtPrefix renders a decision prefix compactly for logs ("tff", "·" for
// the root).
func fmtPrefix(p []bool) string {
	if len(p) == 0 {
		return "·"
	}
	b := make([]byte, len(p))
	for i, v := range p {
		if v {
			b[i] = 't'
		} else {
			b[i] = 'f'
		}
	}
	return string(b)
}
