package dist

import (
	"context"
	"io"
	"log/slog"
	"net"
	"time"

	"github.com/soft-testing/soft/internal/harness"
)

// DefaultShardDepth bounds the initial frontier split: forks whose decision
// vector is longer than this become shards for workers; shallower prefixes
// the coordinator explores itself while splitting. Depth 2 keeps the
// coordinator's share of the tree tiny while producing enough subtrees to
// feed several workers; adaptive balancing (JobConfig.Adaptive) subdivides
// further where the tree turns out to be deep.
const DefaultShardDepth = 2

// DefaultLeaseTimeout is how long a shard may stay leased without
// completing before the coordinator offers it to another worker. Re-leasing
// is safe at any timeout — first result wins and duplicates are identical —
// so the default only trades duplicated work against stall detection.
const DefaultLeaseTimeout = 2 * time.Minute

// Config parameterizes a single-job Serve run. AgentName and TestName are
// required and name the job by registry key — the form every worker
// process can resolve locally (an Agent value cannot cross a process
// boundary); zero limits take the harness defaults.
type Config struct {
	AgentName string
	TestName  string

	// MaxPaths/MaxDepth/WantModels/ClauseSharing/Incremental/Merge mirror
	// harness.Options and are forwarded to every worker; the limits and
	// models flag must agree across shards for the merged result to be
	// canonical (the solver-mode flags never change results, only speed).
	MaxPaths      int
	MaxDepth      int
	WantModels    bool
	ClauseSharing bool
	Incremental   bool
	Merge         bool
	// NoCanonicalCut opts out of canonical MaxPaths truncation (see
	// JobConfig.NoCanonicalCut).
	NoCanonicalCut bool

	// ShardDepth bounds the initial frontier split (default
	// DefaultShardDepth).
	ShardDepth int
	// AdaptiveShards enables the progress-driven shard balancer: slow
	// subtrees are speculatively re-split while workers starve, trivial
	// ones ride batched leases (see JobConfig.Adaptive). `soft serve
	// -shard-depth=auto` sets this.
	AdaptiveShards bool
	// SplitAfter tunes the adaptive splitter's slowness threshold (default
	// DefaultSplitAfter).
	SplitAfter time.Duration
	// LeaseTimeout re-offers a shard that has not completed in this long
	// (default DefaultLeaseTimeout; negative disables re-leasing on
	// timeout — disconnects still re-lease).
	LeaseTimeout time.Duration
	// DrainTimeout bounds the graceful-shutdown wait after the merge: a
	// handler stuck mid-read on a hung worker is cut off after this long
	// (default 5s).
	DrainTimeout time.Duration

	// Progress, when set, receives the cumulative completed-path count
	// (coordinator-local paths plus live shard progress). Counts are a
	// monotone high-water mark.
	Progress func(done int)
	// Logger, when set, receives one structured line per lifecycle event
	// (worker connects, lease grants, re-leases, shard completions), each
	// carrying job/lease/worker/trace ids.
	Logger *slog.Logger
	// Log is the legacy plain-writer form: when Logger is nil and Log is
	// set, lines render through the text slog handler onto Log.
	Log io.Writer
}

// Serve runs a distributed exploration: it splits the frontier, serves
// shard leases to every worker that connects to ln, and returns the merged
// result once all shards complete. The result is byte-identical to a
// single-process exploration with the same configuration. Cancelling ctx
// aborts the run with ctx's error (a partial distributed run has no
// deterministic meaning, so nothing is returned).
//
// Serve is the single-job form of the fleet: it stands up a Fleet on ln,
// runs exactly one job, and shuts the fleet down. Campaigns that run many
// (agent, test) cells over one persistent fleet use NewFleet/Run directly
// (the sched package drives that path).
func Serve(ctx context.Context, ln net.Listener, cfg Config) (*harness.MergedResult, error) {
	f := NewFleet(ln, FleetConfig{
		LeaseTimeout: cfg.LeaseTimeout,
		DrainTimeout: cfg.DrainTimeout,
		Logger:       cfg.Logger,
		Log:          cfg.Log,
	})
	defer f.Close()
	return f.Run(ctx, JobConfig{
		AgentName:      cfg.AgentName,
		TestName:       cfg.TestName,
		MaxPaths:       cfg.MaxPaths,
		MaxDepth:       cfg.MaxDepth,
		WantModels:     cfg.WantModels,
		ClauseSharing:  cfg.ClauseSharing,
		Incremental:    cfg.Incremental,
		Merge:          cfg.Merge,
		NoCanonicalCut: cfg.NoCanonicalCut,
		ShardDepth:     cfg.ShardDepth,
		Adaptive:       cfg.AdaptiveShards,
		SplitAfter:     cfg.SplitAfter,
		Progress:       cfg.Progress,
	})
}
