package dist

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"sync"
	"time"

	"github.com/soft-testing/soft/internal/agents"
	"github.com/soft-testing/soft/internal/harness"
	"github.com/soft-testing/soft/internal/obs"
)

// WorkerConfig parameterizes one worker process.
type WorkerConfig struct {
	// Name identifies the worker in coordinator logs (default
	// "hostname/pid").
	Name string
	// Workers is the per-lease engine parallelism (0 = GOMAXPROCS): each
	// leased subtree is itself explored with the in-process work-stealing
	// frontier, so a distributed run parallelizes at two levels.
	Workers int
	// Logger, when set, receives one structured line per job join and
	// lease, each carrying worker/job/lease/trace ids.
	Logger *slog.Logger
	// Log is the legacy plain-writer form: when Logger is nil and Log is
	// set, lines render through the text slog handler onto Log.
	Log io.Writer
}

// progressInterval throttles streamed progress frames.
const progressInterval = 100 * time.Millisecond

// workerJob is one job this connection has been told about: the locally
// resolved agent and test plus the engine options every lease of the job
// shares.
type workerJob struct {
	agent agents.Agent
	test  harness.Test
	cfg   jobMsg
}

// Work connects to a coordinator at addr and explores shard leases until
// the coordinator shuts the fleet down (returns nil) or the connection
// fails. One connection serves any number of jobs — the coordinator
// announces each job's (agent, test, options) once and then leases that
// job's shards freely, so a campaign drains a whole matrix over one
// persistent fleet. Cancelling ctx closes the connection without shipping
// a partial shard — partial subtrees must never enter a merge, so the
// coordinator re-leases the shards instead.
//
// If the coordinator speaks a different protocol version the returned
// error wraps ErrVersionMismatch.
func Work(ctx context.Context, addr string, cfg WorkerConfig) error {
	if cfg.Name == "" {
		host, _ := os.Hostname()
		cfg.Name = fmt.Sprintf("%s/%d", host, os.Getpid())
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("dist: connect %s: %w", addr, err)
	}
	defer conn.Close()
	// A cancelled context must interrupt blocked reads and in-flight
	// exploration alike: close the connection and let the run's
	// ExploreContext observe the same ctx.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-stop:
		}
	}()

	if err := writeFrame(conn, msgHello, encodeHello(hello{version: protocolVersion, name: cfg.Name})); err != nil {
		return fmt.Errorf("dist: hello: %w", err)
	}
	t, payload, err := readFrame(conn)
	if err != nil {
		return fmt.Errorf("dist: handshake: %w", err)
	}
	switch t {
	case msgWelcome:
	case msgReject:
		r, err := decodeReject(payload)
		if err != nil {
			return err
		}
		return fmt.Errorf("dist: %w: coordinator speaks protocol v%d, this binary speaks v%d",
			ErrVersionMismatch, r.want, protocolVersion)
	default:
		return protocolErr(fmt.Errorf("expected welcome, got frame type %d", t))
	}
	log := cfg.Logger
	if log == nil {
		log = obs.NewLogger(cfg.Log, obs.LogText) // nil Log → no-op logger
	}
	log = log.With("component", "worker", "worker", cfg.Name)
	log.Info("connected", "addr", addr)

	// Frame writes interleave streamed progress (from engine worker
	// goroutines, via the throttler) with results; serialize them.
	var wmu sync.Mutex
	send := func(t msgType, payload []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		return writeFrame(conn, t, payload)
	}

	jobs := make(map[uint64]*workerJob)
	for {
		t, payload, err := readFrame(conn)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("dist: coordinator lost: %w", err)
		}
		switch t {
		case msgShutdown:
			log.Info("fleet shut down")
			return nil
		case msgJob:
			jm, err := decodeJob(payload)
			if err != nil {
				return err
			}
			agent, err := agents.ByName(jm.agent)
			if err != nil {
				return fmt.Errorf("dist: coordinator job needs unknown agent: %w", err)
			}
			test, ok := harness.TestByName(jm.test)
			if !ok {
				return fmt.Errorf("dist: coordinator job needs unknown test %q", jm.test)
			}
			jobs[jm.id] = &workerJob{agent: agent, test: test, cfg: jm}
			log.Info("joined job", "job", jm.id, "agent", jm.agent, "test", jm.test,
				obs.TraceAttr(jm.traceID))
		case msgLease:
			l, err := decodeLease(payload)
			if err != nil {
				return err
			}
			job, ok := jobs[l.job]
			if !ok {
				return protocolErr(fmt.Errorf("lease for unannounced job %d", l.job))
			}
			start := time.Now()
			// A traced lease turns on the worker-local tracer (kept for
			// the connection's lifetime) and ships the buffered spans back
			// as one segment per completed prefix. Draining first discards
			// spans accumulated during untraced interludes so nothing
			// nests under the wrong lease.
			var tr *obs.Tracer
			if l.traced {
				if tr = obs.Active(); tr == nil {
					tr = obs.StartTracing()
				}
				tr.Drain()
			}
			progress := throttledProgress(l.job, l.id, send)
			total := 0
			for i, prefix := range l.prefixes {
				base := total
				sp := obs.StartSpan("shard:" + fmtPrefix(prefix))
				res := harness.ExploreContext(ctx, job.agent, job.test, harness.Options{
					MaxPaths:      job.cfg.maxPaths,
					MaxDepth:      job.cfg.maxDepth,
					WantModels:    job.cfg.models,
					ClauseSharing: job.cfg.clauseSharing,
					Incremental:   job.cfg.incremental,
					Merge:         job.cfg.merge,
					CanonicalCut:  job.cfg.canonicalCut,
					Workers:       cfg.Workers,
					Prefix:        prefix,
					Progress:      func(n int) { progress(base + n) },
				})
				if res.Cancelled || ctx.Err() != nil {
					// Never ship a partial subtree; the coordinator re-leases.
					return ctx.Err()
				}
				sp.End()
				total += len(res.Paths)
				// Ship the prefix's spans before its result: once the
				// coordinator has banked the last result it stops reading
				// this lease, and a worker killed mid-batch has then
				// already delivered the spans of everything it finished.
				if tr != nil {
					for _, seg := range tr.Drain() {
						seg.Process = cfg.Name
						seg.Parent = l.parentSpan
						if err := send(msgTrace, encodeTrace(traceMsg{job: l.job, lease: l.id, seg: seg})); err != nil {
							return fmt.Errorf("dist: send trace: %w", err)
						}
					}
				}
				// One result frame per prefix, shipped as it completes:
				// frames stay bounded by a single subtree however many
				// shards the lease batched, and the coordinator banks the
				// finished part if this worker dies mid-batch.
				if err := send(msgResult, encodeResult(resultMsg{
					job: l.job, lease: l.id, index: uint64(i), shard: res.Shard(),
				})); err != nil {
					return fmt.Errorf("dist: send result: %w", err)
				}
			}
			log.Info("lease done",
				"job", l.job, "lease", l.id, "shards", len(l.prefixes),
				"paths", total, "elapsed", time.Since(start).Round(time.Millisecond),
				obs.TraceAttr(l.traceID))
		default:
			return protocolErr(fmt.Errorf("unexpected frame type %d from coordinator", t))
		}
	}
}

// throttledProgress adapts the engine's per-path callback into streamed
// progress frames, sending at most one per progressInterval. Counts are a
// monotone high-water mark (engine callbacks may arrive out of order); send
// errors are ignored — the connection's main loop will see them.
//
// Each frame also carries the worker's solver-metric deltas since the
// previous frame, sampled from the process-global SAT counters. Deltas
// accrued after the lease's last throttled frame are shipped with the next
// lease's first frame (or lost at disconnect) — acceptable for advisory
// observability data.
func throttledProgress(jobID, leaseID uint64, send func(msgType, []byte) error) func(int) {
	var mu sync.Mutex
	var last time.Time
	hi := 0
	snap := sampleWorkerMetrics()
	return func(done int) {
		mu.Lock()
		if done <= hi {
			mu.Unlock()
			return
		}
		hi = done
		if time.Since(last) < progressInterval {
			mu.Unlock()
			return
		}
		last = time.Now()
		cur := sampleWorkerMetrics()
		d := cur.sub(snap)
		snap = cur
		mu.Unlock()
		send(msgProgress, encodeProgress(progressMsg{
			job: jobID, lease: leaseID, done: uint64(done),
			dSolves: d.solves, dSolveNanos: d.solveNanos,
			dAssumption: d.assumption, dReused: d.reused,
		}))
	}
}
