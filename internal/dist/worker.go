package dist

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"github.com/soft-testing/soft/internal/agents"
	"github.com/soft-testing/soft/internal/harness"
)

// WorkerConfig parameterizes one worker process.
type WorkerConfig struct {
	// Name identifies the worker in coordinator logs (default
	// "hostname/pid").
	Name string
	// Workers is the per-lease engine parallelism (0 = GOMAXPROCS): each
	// leased subtree is itself explored with the in-process work-stealing
	// frontier, so a distributed run parallelizes at two levels.
	Workers int
	// Log, when set, receives one line per lease.
	Log io.Writer
}

// progressInterval throttles streamed progress frames.
const progressInterval = 100 * time.Millisecond

// Work connects to a coordinator at addr and explores shard leases until
// the coordinator shuts the run down (returns nil) or the connection fails.
// Cancelling ctx closes the connection without shipping a partial shard —
// partial subtrees must never enter a merge, so the coordinator re-leases
// the shard instead.
func Work(ctx context.Context, addr string, cfg WorkerConfig) error {
	if cfg.Name == "" {
		host, _ := os.Hostname()
		cfg.Name = fmt.Sprintf("%s/%d", host, os.Getpid())
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("dist: connect %s: %w", addr, err)
	}
	defer conn.Close()
	// A cancelled context must interrupt blocked reads and in-flight
	// exploration alike: close the connection and let the run's
	// ExploreContext observe the same ctx.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-stop:
		}
	}()

	if err := writeFrame(conn, msgHello, encodeHello(hello{version: protocolVersion, name: cfg.Name})); err != nil {
		return fmt.Errorf("dist: hello: %w", err)
	}
	t, payload, err := readFrame(conn)
	if err != nil {
		return fmt.Errorf("dist: handshake: %w", err)
	}
	if t != msgWelcome {
		return protocolErr(fmt.Errorf("expected welcome, got frame type %d", t))
	}
	w, err := decodeWelcome(payload)
	if err != nil {
		return err
	}
	agent, err := agents.ByName(w.agent)
	if err != nil {
		return fmt.Errorf("dist: coordinator job needs unknown agent: %w", err)
	}
	test, ok := harness.TestByName(w.test)
	if !ok {
		return fmt.Errorf("dist: coordinator job needs unknown test %q", w.test)
	}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "dist: "+format+"\n", args...)
		}
	}
	logf("worker %s: joined %s / %s", cfg.Name, w.agent, w.test)

	// Frame writes interleave streamed progress (from engine worker
	// goroutines, via the throttler) with results; serialize them.
	var wmu sync.Mutex
	send := func(t msgType, payload []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		return writeFrame(conn, t, payload)
	}

	for {
		t, payload, err := readFrame(conn)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("dist: coordinator lost: %w", err)
		}
		switch t {
		case msgShutdown:
			logf("worker %s: run complete", cfg.Name)
			return nil
		case msgLease:
			l, err := decodeLease(payload)
			if err != nil {
				return err
			}
			start := time.Now()
			res := harness.ExploreContext(ctx, agent, test, harness.Options{
				MaxPaths:      w.maxPaths,
				MaxDepth:      w.maxDepth,
				WantModels:    w.models,
				ClauseSharing: w.clauseSharing,
				CanonicalCut:  w.canonicalCut,
				Workers:       cfg.Workers,
				Prefix:        l.prefix,
				Progress:      throttledProgress(l.id, send),
			})
			if res.Cancelled || ctx.Err() != nil {
				// Never ship a partial subtree; the coordinator re-leases.
				return ctx.Err()
			}
			logf("worker %s: lease %d done: %d paths in %s",
				cfg.Name, l.id, len(res.Paths), time.Since(start).Round(time.Millisecond))
			if err := send(msgResult, encodeResult(resultMsg{lease: l.id, shard: res.Shard()})); err != nil {
				return fmt.Errorf("dist: send result: %w", err)
			}
		default:
			return protocolErr(fmt.Errorf("unexpected frame type %d from coordinator", t))
		}
	}
}

// throttledProgress adapts the engine's per-path callback into streamed
// progress frames, sending at most one per progressInterval. Counts are a
// monotone high-water mark (engine callbacks may arrive out of order); send
// errors are ignored — the connection's main loop will see them.
func throttledProgress(leaseID uint64, send func(msgType, []byte) error) func(int) {
	var mu sync.Mutex
	var last time.Time
	hi := 0
	return func(done int) {
		mu.Lock()
		if done <= hi {
			mu.Unlock()
			return
		}
		hi = done
		if time.Since(last) < progressInterval {
			mu.Unlock()
			return
		}
		last = time.Now()
		mu.Unlock()
		send(msgProgress, encodeProgress(progressMsg{lease: leaseID, done: uint64(done)}))
	}
}
