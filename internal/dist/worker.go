package dist

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"github.com/soft-testing/soft/internal/agents"
	"github.com/soft-testing/soft/internal/harness"
)

// WorkerConfig parameterizes one worker process.
type WorkerConfig struct {
	// Name identifies the worker in coordinator logs (default
	// "hostname/pid").
	Name string
	// Workers is the per-lease engine parallelism (0 = GOMAXPROCS): each
	// leased subtree is itself explored with the in-process work-stealing
	// frontier, so a distributed run parallelizes at two levels.
	Workers int
	// Log, when set, receives one line per job join and lease.
	Log io.Writer
}

// progressInterval throttles streamed progress frames.
const progressInterval = 100 * time.Millisecond

// workerJob is one job this connection has been told about: the locally
// resolved agent and test plus the engine options every lease of the job
// shares.
type workerJob struct {
	agent agents.Agent
	test  harness.Test
	cfg   jobMsg
}

// Work connects to a coordinator at addr and explores shard leases until
// the coordinator shuts the fleet down (returns nil) or the connection
// fails. One connection serves any number of jobs — the coordinator
// announces each job's (agent, test, options) once and then leases that
// job's shards freely, so a campaign drains a whole matrix over one
// persistent fleet. Cancelling ctx closes the connection without shipping
// a partial shard — partial subtrees must never enter a merge, so the
// coordinator re-leases the shards instead.
//
// If the coordinator speaks a different protocol version the returned
// error wraps ErrVersionMismatch.
func Work(ctx context.Context, addr string, cfg WorkerConfig) error {
	if cfg.Name == "" {
		host, _ := os.Hostname()
		cfg.Name = fmt.Sprintf("%s/%d", host, os.Getpid())
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("dist: connect %s: %w", addr, err)
	}
	defer conn.Close()
	// A cancelled context must interrupt blocked reads and in-flight
	// exploration alike: close the connection and let the run's
	// ExploreContext observe the same ctx.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-stop:
		}
	}()

	if err := writeFrame(conn, msgHello, encodeHello(hello{version: protocolVersion, name: cfg.Name})); err != nil {
		return fmt.Errorf("dist: hello: %w", err)
	}
	t, payload, err := readFrame(conn)
	if err != nil {
		return fmt.Errorf("dist: handshake: %w", err)
	}
	switch t {
	case msgWelcome:
	case msgReject:
		r, err := decodeReject(payload)
		if err != nil {
			return err
		}
		return fmt.Errorf("dist: %w: coordinator speaks protocol v%d, this binary speaks v%d",
			ErrVersionMismatch, r.want, protocolVersion)
	default:
		return protocolErr(fmt.Errorf("expected welcome, got frame type %d", t))
	}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "dist: "+format+"\n", args...)
		}
	}
	logf("worker %s: connected", cfg.Name)

	// Frame writes interleave streamed progress (from engine worker
	// goroutines, via the throttler) with results; serialize them.
	var wmu sync.Mutex
	send := func(t msgType, payload []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		return writeFrame(conn, t, payload)
	}

	jobs := make(map[uint64]*workerJob)
	for {
		t, payload, err := readFrame(conn)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("dist: coordinator lost: %w", err)
		}
		switch t {
		case msgShutdown:
			logf("worker %s: fleet shut down", cfg.Name)
			return nil
		case msgJob:
			jm, err := decodeJob(payload)
			if err != nil {
				return err
			}
			agent, err := agents.ByName(jm.agent)
			if err != nil {
				return fmt.Errorf("dist: coordinator job needs unknown agent: %w", err)
			}
			test, ok := harness.TestByName(jm.test)
			if !ok {
				return fmt.Errorf("dist: coordinator job needs unknown test %q", jm.test)
			}
			jobs[jm.id] = &workerJob{agent: agent, test: test, cfg: jm}
			logf("worker %s: joined job %d (%s / %s)", cfg.Name, jm.id, jm.agent, jm.test)
		case msgLease:
			l, err := decodeLease(payload)
			if err != nil {
				return err
			}
			job, ok := jobs[l.job]
			if !ok {
				return protocolErr(fmt.Errorf("lease for unannounced job %d", l.job))
			}
			start := time.Now()
			progress := throttledProgress(l.job, l.id, send)
			total := 0
			for i, prefix := range l.prefixes {
				base := total
				res := harness.ExploreContext(ctx, job.agent, job.test, harness.Options{
					MaxPaths:      job.cfg.maxPaths,
					MaxDepth:      job.cfg.maxDepth,
					WantModels:    job.cfg.models,
					ClauseSharing: job.cfg.clauseSharing,
					Incremental:   job.cfg.incremental,
					Merge:         job.cfg.merge,
					CanonicalCut:  job.cfg.canonicalCut,
					Workers:       cfg.Workers,
					Prefix:        prefix,
					Progress:      func(n int) { progress(base + n) },
				})
				if res.Cancelled || ctx.Err() != nil {
					// Never ship a partial subtree; the coordinator re-leases.
					return ctx.Err()
				}
				total += len(res.Paths)
				// One result frame per prefix, shipped as it completes:
				// frames stay bounded by a single subtree however many
				// shards the lease batched, and the coordinator banks the
				// finished part if this worker dies mid-batch.
				if err := send(msgResult, encodeResult(resultMsg{
					job: l.job, lease: l.id, index: uint64(i), shard: res.Shard(),
				})); err != nil {
					return fmt.Errorf("dist: send result: %w", err)
				}
			}
			logf("worker %s: lease %d done: %d shard(s), %d paths in %s",
				cfg.Name, l.id, len(l.prefixes), total, time.Since(start).Round(time.Millisecond))
		default:
			return protocolErr(fmt.Errorf("unexpected frame type %d from coordinator", t))
		}
	}
}

// throttledProgress adapts the engine's per-path callback into streamed
// progress frames, sending at most one per progressInterval. Counts are a
// monotone high-water mark (engine callbacks may arrive out of order); send
// errors are ignored — the connection's main loop will see them.
//
// Each frame also carries the worker's solver-metric deltas since the
// previous frame, sampled from the process-global SAT counters. Deltas
// accrued after the lease's last throttled frame are shipped with the next
// lease's first frame (or lost at disconnect) — acceptable for advisory
// observability data.
func throttledProgress(jobID, leaseID uint64, send func(msgType, []byte) error) func(int) {
	var mu sync.Mutex
	var last time.Time
	hi := 0
	snap := sampleWorkerMetrics()
	return func(done int) {
		mu.Lock()
		if done <= hi {
			mu.Unlock()
			return
		}
		hi = done
		if time.Since(last) < progressInterval {
			mu.Unlock()
			return
		}
		last = time.Now()
		cur := sampleWorkerMetrics()
		d := cur.sub(snap)
		snap = cur
		mu.Unlock()
		send(msgProgress, encodeProgress(progressMsg{
			job: jobID, lease: leaseID, done: uint64(done),
			dSolves: d.solves, dSolveNanos: d.solveNanos,
			dAssumption: d.assumption, dReused: d.reused,
		}))
	}
}
