package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"github.com/soft-testing/soft/internal/agents"
	"github.com/soft-testing/soft/internal/harness"
	"github.com/soft-testing/soft/internal/obs"
)

// FleetConfig parameterizes a persistent worker fleet.
type FleetConfig struct {
	// LeaseTimeout re-offers a shard that has not completed in this long
	// (default DefaultLeaseTimeout; negative disables re-leasing on
	// timeout — disconnects still re-lease).
	LeaseTimeout time.Duration
	// DrainTimeout bounds the graceful-shutdown wait in Close: a handler
	// stuck mid-read on a hung worker is cut off after this long
	// (default 5s).
	DrainTimeout time.Duration
	// Logger, when set, receives one structured line per lifecycle event
	// (worker connects, job submissions, lease grants, re-leases,
	// splits, shard completions), every line carrying its job/lease/
	// shard/worker/trace ids.
	Logger *slog.Logger
	// Log is the legacy plain-writer form: when Logger is nil and Log is
	// set, lines render through the text slog handler onto Log.
	Log io.Writer
}

// FleetStats counts fleet lifecycle events across every job served. All
// counts are cumulative since NewFleet.
type FleetStats struct {
	// WorkersJoined/WorkersRejected count handshakes (rejections are
	// protocol version mismatches).
	WorkersJoined   int
	WorkersRejected int
	// JobsCompleted counts successful Run calls.
	JobsCompleted int
	// Leases counts lease grants; BatchedLeases those carrying more than
	// one shard (coalescing); ShardsLeased the total shards granted.
	Leases        int
	BatchedLeases int
	ShardsLeased  int
	// Requeues counts shards returned to the queue on worker disconnect,
	// Expirations those returned on lease timeout.
	Requeues    int
	Expirations int
	// Splits counts adaptive shard splits; SplitShards the sub-shards they
	// created.
	Splits      int
	SplitShards int
	// StaleResults counts shard results dropped because another worker (or
	// a completed split) already covered the subtree.
	StaleResults int
}

// Fleet is a persistent distributed-exploration coordinator: workers
// connect once and stay hot while any number of jobs — (agent, test)
// exploration cells — are run through the same fleet, concurrently or in
// sequence. It is the campaign scheduler's transport layer; Serve wraps it
// for the single-job case.
//
// The zero value is not usable; create fleets with NewFleet. All methods
// are safe for concurrent use; Run may be called from many goroutines at
// once and the fleet interleaves their shards over the same workers.
type Fleet struct {
	cfg FleetConfig
	ln  net.Listener
	log *slog.Logger

	mu          sync.Mutex
	cond        *sync.Cond
	jobs        []*jobRun // active jobs, submission order
	nextJobID   uint64
	nextLeaseID uint64
	conns       map[net.Conn]bool
	waiting     int // handlers blocked waiting for a lease
	closed      bool
	stats       FleetStats
	// pidByWorker assigns each worker name a stable trace pid (the
	// coordinator itself is obs.LocalPid; workers get 2, 3, … in
	// first-seen order) so merged Chrome traces keep one track per
	// worker across reconnects.
	pidByWorker map[string]int64
	nextPid     int64

	wg sync.WaitGroup
}

// NewFleet starts a coordinator that serves every Work process connecting
// to ln. The fleet owns the listener; Close closes it. Workers may connect
// before any job is submitted — they idle until work arrives.
func NewFleet(ln net.Listener, cfg FleetConfig) *Fleet {
	if cfg.LeaseTimeout == 0 {
		cfg.LeaseTimeout = DefaultLeaseTimeout
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	log := cfg.Logger
	if log == nil {
		log = obs.NewLogger(cfg.Log, obs.LogText) // nil Log → no-op logger
	}
	f := &Fleet{
		cfg:         cfg,
		ln:          ln,
		log:         log.With("component", "dist"),
		conns:       make(map[net.Conn]bool),
		pidByWorker: make(map[string]int64),
		nextPid:     obs.LocalPid + 1,
	}
	f.cond = sync.NewCond(&f.mu)
	go f.accept()
	go f.watch()
	return f
}

// pidFor returns the stable trace pid for a worker name, assigning the
// next one on first sight.
func (f *Fleet) pidFor(worker string) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if pid, ok := f.pidByWorker[worker]; ok {
		return pid
	}
	pid := f.nextPid
	f.nextPid++
	f.pidByWorker[worker] = pid
	return pid
}

// Stats returns a snapshot of the fleet's lifecycle counters.
func (f *Fleet) Stats() FleetStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Close shuts the fleet down: the listener closes, idle workers receive
// shutdown frames, and handlers stuck on hung connections are cut off
// after the drain timeout. Close is idempotent; jobs still in flight fail.
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.mu.Unlock()
	f.ln.Close()
	f.cond.Broadcast()
	drained := make(chan struct{})
	go func() { f.wg.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(f.cfg.DrainTimeout):
		f.closeAll()
		<-drained
	}
}

func (f *Fleet) closeAll() {
	f.mu.Lock()
	for conn := range f.conns {
		conn.Close()
	}
	f.mu.Unlock()
}

// Run executes one job on the fleet: it splits the job's frontier, leases
// the subtrees (with any other active jobs' shards) to connected workers,
// and returns the merged result once the whole tree is covered. The result
// is byte-identical to a single-process exploration with the same
// configuration. Cancelling ctx aborts this job with ctx's error (a
// partial distributed run has no deterministic meaning, so nothing is
// returned); other jobs on the fleet are unaffected.
func (f *Fleet) Run(ctx context.Context, cfg JobConfig) (*harness.MergedResult, error) {
	agent, err := agents.ByName(cfg.AgentName)
	if err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	test, ok := harness.TestByName(cfg.TestName)
	if !ok {
		return nil, fmt.Errorf("dist: unknown test %q", cfg.TestName)
	}
	if cfg.MaxPaths == 0 {
		cfg.MaxPaths = harness.DefaultMaxPaths
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = harness.DefaultMaxDepth
	}
	if cfg.ShardDepth == 0 {
		cfg.ShardDepth = DefaultShardDepth
	}
	if cfg.SplitAfter == 0 {
		cfg.SplitAfter = DefaultSplitAfter
	}
	start := time.Now()

	// The job context also bounds work the fleet starts on the job's
	// behalf (adaptive split explorations): when Run returns, any split
	// still in flight is cancelled rather than orphaned.
	jctx, jcancel := context.WithCancel(ctx)
	defer jcancel()
	j := &jobRun{cfg: cfg, ctx: jctx, agent: agent, test: test}

	// Split the frontier: the split run explores every path reachable
	// through prefixes of length <= ShardDepth itself and diverts each
	// deeper fork — the root of an unexplored subtree — into the shard
	// queue.
	var prefixes [][]bool
	opts := j.exploreOptions()
	opts.ShardDepth = cfg.ShardDepth
	opts.ShardSink = func(p []bool) { prefixes = append(prefixes, p) }
	j.local = harness.ExploreContext(jctx, agent, test, opts)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	j.localPaths = len(j.local.Paths)
	mPathsDone.Add(int64(j.localPaths))

	// Freeze the job's trace context at submission: traced jobs mark
	// every lease so workers buffer and ship their spans back; the id is
	// a pure correlation label for logs.
	j.traced = obs.Tracing()
	j.traceID = cfg.TraceID
	if j.traceID == 0 && j.traced {
		j.traceID = obs.NewTraceID()
	}

	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, errors.New("dist: fleet is closed")
	}
	j.id = f.nextJobID
	f.nextJobID++
	for _, p := range prefixes {
		j.addShard(p) // registered pending
	}
	j.roots = append([]*shard(nil), j.shards...)
	// A shallow tree can produce no shards at all — the split explored
	// everything locally. The job is then already complete; the wait loop
	// below must not expect a worker to finish it.
	if j.doneLocked() {
		j.completed = true
	}
	f.jobs = append(f.jobs, j)
	f.mu.Unlock()
	f.cond.Broadcast()
	f.log.Info("job submitted",
		"job", j.id, "agent", cfg.AgentName, "test", cfg.TestName,
		"local_paths", j.localPaths, "shards", len(prefixes),
		"shard_depth", cfg.ShardDepth, obs.TraceAttr(j.traceID))
	f.reportProgress(j)

	// Wake the wait loop when this job's context dies.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			f.mu.Lock()
			if !j.completed && j.failed == nil {
				j.failed = ctx.Err()
			}
			f.mu.Unlock()
			f.cond.Broadcast()
		case <-stop:
		}
	}()

	f.mu.Lock()
	for !j.completed && j.failed == nil && !f.closed {
		f.cond.Wait()
	}
	err = j.failed
	if err == nil && !j.completed {
		err = errors.New("dist: fleet closed before the job completed")
	}
	var shards []*harness.Shard
	if err == nil {
		shards = append(shards, j.local.Shard())
		for _, s := range j.roots {
			s.collect(&shards)
		}
	}
	f.removeJobLocked(j)
	f.mu.Unlock()
	// Fence: wait out any Progress callback that passed the removed check
	// before we took it out of f.jobs, so none runs after Run returns.
	j.cbMu.Lock()
	j.cbMu.Unlock() //nolint:staticcheck // empty critical section is the fence
	// Unblock handlers whose pending work just vanished with the job.
	f.cond.Broadcast()
	if err != nil {
		return nil, err
	}

	merged, err := harness.MergeShards(
		j.local.Agent, j.local.Test, j.local.MsgCount, agent.CovMap(), shards, cfg.MaxPaths)
	if err != nil {
		return nil, err
	}
	merged.Elapsed = time.Since(start)
	f.mu.Lock()
	f.stats.JobsCompleted++
	f.mu.Unlock()
	f.log.Info("job merged",
		"job", j.id, "paths", len(merged.Paths), "shard_payloads", len(shards),
		obs.TraceAttr(j.traceID))
	return merged, nil
}

func (f *Fleet) removeJobLocked(j *jobRun) {
	j.removed = true
	for i, cand := range f.jobs {
		if cand == j {
			f.jobs = append(f.jobs[:i], f.jobs[i+1:]...)
			return
		}
	}
}

// accept admits workers until the listener closes.
func (f *Fleet) accept() {
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return
		}
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			conn.Close()
			continue
		}
		f.conns[conn] = true
		f.wg.Add(1)
		f.mu.Unlock()
		go f.handle(conn)
	}
}

// batchSizeLocked picks how many shards to coalesce into one lease: when
// the pending queue is much longer than the worker pool, small subtrees
// ride together so per-shard round-trip and result-frame overhead
// amortizes; when work is scarce each shard ships alone so it can be
// re-leased independently.
func (f *Fleet) batchSizeLocked(pending int) int {
	conns := len(f.conns)
	if conns < 1 {
		conns = 1
	}
	n := pending / (2 * conns)
	if n < 1 {
		n = 1
	}
	if n > 16 {
		n = 16
	}
	return n
}

// next blocks until a batch of shards is leased to conn or the fleet
// closes (ok=false).
func (f *Fleet) next(conn net.Conn) (*grant, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if f.closed {
			return nil, false
		}
		for _, j := range f.jobs {
			if j.failed != nil || len(j.pending) == 0 {
				continue
			}
			n := f.batchSizeLocked(len(j.pending))
			g := &grant{id: f.nextLeaseID, job: j}
			f.nextLeaseID++
			g.shards = append(g.shards, j.pending[:n]...)
			j.pending = j.pending[n:]
			now := time.Now()
			for _, s := range g.shards {
				s.status = shardLeased
				s.grant = g
				s.leasedAt = now
				if f.cfg.LeaseTimeout > 0 {
					s.deadline = now.Add(f.cfg.LeaseTimeout)
				}
			}
			f.stats.Leases++
			f.stats.ShardsLeased += n
			if n > 1 {
				f.stats.BatchedLeases++
			}
			mLeases.Inc()
			mShardsLeased.Add(int64(n))
			return g, true
		}
		f.waiting++
		f.cond.Wait()
		f.waiting--
	}
}

// release returns the grant's still-leased shards (if any) to the pending
// queue — the disconnect half of crash recovery.
func (f *Fleet) release(g *grant) {
	if g == nil {
		return
	}
	f.mu.Lock()
	requeued := 0
	for _, s := range g.shards {
		if s.status == shardLeased && s.grant == g {
			s.status = shardPending
			s.grant = nil
			g.job.pending = append(g.job.pending, s)
			requeued++
		}
	}
	g.job.liveDone -= g.done
	g.done = 0
	f.stats.Requeues += requeued
	mRequeues.Add(int64(requeued))
	f.mu.Unlock()
	if requeued > 0 {
		f.log.Info("lease re-queued (worker lost)",
			"job", g.job.id, "lease", g.id, "shards", requeued,
			obs.TraceAttr(g.job.traceID))
		f.cond.Broadcast()
	}
}

// completeShard records one shard result from a lease. First completion
// wins per shard: results for subtrees already covered elsewhere
// (re-lease duplicates, lost split races) are dropped — determinism makes
// the copies identical anyway.
func (f *Fleet) completeShard(g *grant, idx int, result *harness.Shard) {
	j := g.job
	f.mu.Lock()
	s := g.shards[idx]
	if s.grant == g {
		s.grant = nil
	}
	// The worker's live progress for this lease already counted this
	// shard's paths; retire them from the live estimate as they are banked
	// (or dropped) so the job's progress never double-counts a shard.
	if retire := len(result.Paths); retire > 0 {
		if retire > g.done {
			retire = g.done
		}
		g.done -= retire
		j.liveDone -= retire
	}
	accepted := false
	switch {
	case s.status == shardDone || s.status == shardCancelled || s.covered() || s.redundant():
		f.stats.StaleResults++
		mStaleResults.Inc()
	default:
		mLeaseRTT.Observe(int64(time.Since(s.leasedAt)))
		if s.status == shardPending {
			// The lease expired and the shard went back to the queue, but
			// the original worker finished first: take its result and pull
			// the shard out of the queue so it is not leased again.
			j.removePending(s)
		}
		s.status = shardDone
		s.result = result
		j.donePaths += len(result.Paths)
		mPathsDone.Add(int64(len(result.Paths)))
		// The accepted result covers the whole subtree; pending split
		// children are now redundant.
		j.cancelSubtree(s)
		accepted = true
	}
	if !j.completed && j.failed == nil && j.doneLocked() {
		j.completed = true
	}
	f.mu.Unlock()
	if accepted {
		f.log.Info("shard done",
			"job", j.id, "lease", g.id, "shard", s.id, "paths", len(result.Paths),
			obs.TraceAttr(j.traceID))
	} else {
		f.log.Info("shard result dropped as redundant",
			"job", j.id, "lease", g.id, "shard", s.id, obs.TraceAttr(j.traceID))
	}
	f.reportProgress(j)
	// Wake everyone: handlers waiting for a lease re-check the queues, and
	// on the final shard the job's Run loop observes completion.
	f.cond.Broadcast()
}

// leaseFinished retires a fully-delivered lease's live progress counter.
func (f *Fleet) leaseFinished(g *grant) {
	f.mu.Lock()
	g.job.liveDone -= g.done
	g.done = 0
	f.mu.Unlock()
}

// progress records a lease's live path count and reports the job's
// cumulative high-water mark.
func (f *Fleet) progress(g *grant, done int) {
	f.mu.Lock()
	if done > g.done {
		g.job.liveDone += done - g.done
		g.done = done
	}
	f.mu.Unlock()
	f.reportProgress(g.job)
}

// reportProgress invokes the job's Progress callback with its monotone
// cumulative count. Once the job's Run call has returned (removed) or
// failed, no further callbacks fire — the caller may have torn down
// whatever the callback touches. The shared cbMu hold makes the guarantee
// airtight: Run blocks on an exclusive acquisition after removal, so a
// callback that passed the removed check always finishes before Run
// returns.
func (f *Fleet) reportProgress(j *jobRun) {
	if j.cfg.Progress == nil {
		return
	}
	j.cbMu.RLock()
	defer j.cbMu.RUnlock()
	f.mu.Lock()
	if j.removed || j.failed != nil {
		f.mu.Unlock()
		return
	}
	total := j.localPaths + j.donePaths + j.liveDone
	if total > j.progressHi {
		j.progressHi = total
	}
	hi := j.progressHi
	f.mu.Unlock()
	j.cfg.Progress(hi)
}

// watch expires stale leases and triggers adaptive splits.
func (f *Fleet) watch() {
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for range tick.C {
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			return
		}
		now := time.Now()
		requeued := 0
		// Expired shards are logged per job so every line carries the
		// owning job's ids rather than one anonymous fleet-wide count.
		expiredByJob := make(map[*jobRun]int)
		var splits []*shard
		var splitJobs []*jobRun
		for _, j := range f.jobs {
			for _, s := range j.shards {
				if s.status != shardLeased {
					continue
				}
				if f.cfg.LeaseTimeout > 0 && now.After(s.deadline) {
					s.status = shardPending
					// The old grant keeps its reference; if its result
					// still arrives first it wins as before.
					j.pending = append(j.pending, s)
					requeued++
					expiredByJob[j]++
					f.stats.Expirations++
					mExpirations.Inc()
					continue
				}
				// Adaptive split: a shard that is slow while workers starve
				// is speculatively subdivided so the idle capacity can race
				// the original lease over the same subtree.
				if j.cfg.Adaptive && f.waiting > 0 && len(j.pending) == 0 &&
					!s.splitting && !s.split &&
					len(s.prefix) < maxSplitPrefix &&
					now.Sub(s.leasedAt) > j.cfg.SplitAfter {
					s.splitting = true
					// Registered under f.mu (closed is still false here), so
					// Close's drain wait observes the split goroutine; the
					// job context cancels its exploration promptly.
					f.wg.Add(1)
					splits = append(splits, s)
					splitJobs = append(splitJobs, j)
				}
			}
		}
		f.mu.Unlock()
		if requeued > 0 {
			for j, n := range expiredByJob {
				f.log.Info("re-queued expired shards",
					"job", j.id, "shards", n, obs.TraceAttr(j.traceID))
			}
			f.cond.Broadcast()
		}
		for i, s := range splits {
			go f.split(splitJobs[i], s)
		}
	}
}

// split subdivides a slow shard: the coordinator explores the subtree's
// shallow slice itself (the stub) and queues each deeper fork as a child
// shard. The original lease keeps running — whichever alternative
// completes first covers the subtree, and byte-identical determinism makes
// the outcome independent of who wins.
func (f *Fleet) split(j *jobRun, s *shard) {
	defer f.wg.Done()
	var childPrefixes [][]bool
	opts := j.exploreOptions()
	opts.Prefix = s.prefix
	opts.ShardDepth = len(s.prefix) + 1
	opts.ShardSink = func(p []bool) { childPrefixes = append(childPrefixes, p) }
	sub := harness.ExploreContext(j.ctx, j.agent, j.test, opts)

	f.mu.Lock()
	s.splitting = false
	if sub.Cancelled || j.failed != nil || j.completed ||
		s.covered() || s.redundant() || s.status == shardCancelled {
		f.mu.Unlock()
		return
	}
	s.split = true
	s.stub = sub.Shard()
	j.donePaths += len(sub.Paths)
	mPathsDone.Add(int64(len(sub.Paths)))
	for _, p := range childPrefixes {
		c := j.addShard(p) // registered pending
		c.parent = s
		s.children = append(s.children, c)
	}
	// A pending parent has no worker racing for it; its stub + children
	// replace it outright.
	if s.status == shardPending {
		s.status = shardCancelled
		j.removePending(s)
	}
	f.stats.Splits++
	f.stats.SplitShards += len(childPrefixes)
	mSplits.Inc()
	if !j.completed && j.failed == nil && j.doneLocked() {
		// A shallow subtree can be fully covered by the stub alone.
		j.completed = true
	}
	f.mu.Unlock()
	f.log.Info("shard split",
		"job", j.id, "shard", s.id, "prefix", fmtPrefix(s.prefix),
		"sub_shards", len(childPrefixes), "stub_paths", len(sub.Paths),
		obs.TraceAttr(j.traceID))
	f.reportProgress(j)
	f.cond.Broadcast()
}

// handle drives one worker connection through the protocol.
func (f *Fleet) handle(conn net.Conn) {
	var cur *grant
	var curSpan obs.Span
	welcomed := false
	defer func() {
		f.release(cur)
		// A lease span left open by a dying worker still records what ran.
		curSpan.End()
		f.mu.Lock()
		delete(f.conns, conn)
		f.mu.Unlock()
		conn.Close()
		if welcomed {
			mWorkersConnected.Dec()
		}
		f.wg.Done()
	}()

	remote := "?"
	if ra := conn.RemoteAddr(); ra != nil {
		remote = ra.String()
	}
	t, payload, err := readFrame(conn)
	if err != nil || t != msgHello {
		f.log.Warn("worker rejected: bad hello", "remote", remote, "err", err)
		return
	}
	h, err := decodeHello(payload)
	if err != nil {
		f.log.Warn("worker rejected: bad hello", "remote", remote, "err", err)
		return
	}
	if h.version != protocolVersion {
		f.mu.Lock()
		f.stats.WorkersRejected++
		f.mu.Unlock()
		mWorkersRejected.Inc()
		f.log.Warn("worker rejected: protocol version mismatch",
			"worker", h.name, "remote", remote,
			"worker_version", h.version, "want_version", uint64(protocolVersion))
		writeFrame(conn, msgReject, encodeReject(reject{want: protocolVersion}))
		return
	}
	if err := writeFrame(conn, msgWelcome, nil); err != nil {
		return
	}
	f.mu.Lock()
	f.stats.WorkersJoined++
	f.mu.Unlock()
	mWorkersJoined.Inc()
	mWorkersConnected.Inc()
	welcomed = true
	// The worker's trace pid is stable across its whole connection (and
	// across reconnects under the same name): one track per worker in the
	// merged timeline.
	pid := f.pidFor(h.name)
	f.log.Info("worker connected", "worker", h.name, "remote", remote, "trace_pid", pid)

	sentJobs := make(map[uint64]bool)
	for {
		g, ok := f.next(conn)
		if !ok {
			writeFrame(conn, msgShutdown, nil)
			return
		}
		cur = g
		if !sentJobs[g.job.id] {
			if err := writeFrame(conn, msgJob, encodeJob(g.job.jobMsg())); err != nil {
				return
			}
			sentJobs[g.job.id] = true
		}
		prefixes := make([][]bool, len(g.shards))
		for i, s := range g.shards {
			prefixes[i] = s.prefix
		}
		// A traced lease opens a coordinator-side span (one lane per
		// worker pid) whose id rides the lease frame; the worker's shipped
		// segments nest under it in the merged trace.
		var parentSpan uint64
		traced := g.job.traced && obs.Tracing()
		if traced {
			curSpan = obs.StartSpan(fmt.Sprintf("lease:%d -> %s", g.id, h.name)).WithTID(int(pid))
			parentSpan = curSpan.ID()
		}
		f.log.Info("lease granted",
			"job", g.job.id, "lease", g.id, "worker", h.name,
			"shards", len(g.shards), "prefix", fmtPrefix(prefixes[0]),
			obs.TraceAttr(g.job.traceID))
		if err := writeFrame(conn, msgLease, encodeLease(lease{
			job: g.job.id, id: g.id, prefixes: prefixes,
			traced: traced, traceID: g.job.traceID, parentSpan: parentSpan,
		})); err != nil {
			return
		}
		// Drain progress frames until every leased shard's result arrived —
		// one frame per prefix, shipped as each completes, so a worker dying
		// mid-batch only loses the unfinished remainder. Results for a stale
		// lease id (the worker was cut loose by a re-lease that completed
		// elsewhere) are skipped but still free the worker.
		remaining := len(g.shards)
		seen := make([]bool, len(g.shards))
		for remaining > 0 {
			t, payload, err := readFrame(conn)
			if err != nil {
				return
			}
			switch t {
			case msgProgress:
				p, err := decodeProgress(payload)
				if err != nil {
					f.log.Warn("bad progress frame", "worker", h.name, "err", err)
					return
				}
				// Deltas describe worker-global solver activity, so they
				// aggregate even when the frame's lease id has gone stale.
				addRemote(p)
				if p.lease == g.id {
					f.progress(g, int(p.done))
				}
			case msgTrace:
				m, err := decodeTrace(payload)
				if err != nil {
					f.log.Warn("bad trace frame", "worker", h.name, "err", err)
					return
				}
				// Merge even stale-lease segments: they describe real work
				// this worker did, and merging is observation-only. With
				// tracing stopped the segment is simply dropped.
				if tr := obs.Active(); tr != nil {
					tr.MergeSegment(m.seg, pid)
				}
			case msgResult:
				r, err := decodeResult(payload, g.job.agent.CovMap())
				if err != nil {
					f.log.Warn("dropping lease result", "worker", h.name,
						"job", g.job.id, "lease", g.id, "err", err,
						obs.TraceAttr(g.job.traceID))
					return
				}
				if r.lease != g.id {
					continue // stale result from a pre-re-lease run
				}
				if r.index >= uint64(len(g.shards)) || seen[r.index] {
					f.log.Warn("bad shard index", "worker", h.name,
						"job", g.job.id, "lease", g.id, "index", r.index,
						obs.TraceAttr(g.job.traceID))
					return
				}
				seen[r.index] = true
				f.completeShard(g, int(r.index), r.shard)
				remaining--
			default:
				f.log.Warn("unexpected frame type", "worker", h.name, "type", uint64(t))
				return
			}
		}
		f.leaseFinished(g)
		curSpan.End()
		curSpan = obs.Span{}
		cur = nil
	}
}

// fmtPrefix renders a decision prefix compactly for logs ("tff", "·" for
// the root).
func fmtPrefix(p []bool) string {
	if len(p) == 0 {
		return "·"
	}
	b := make([]byte, len(p))
	for i, v := range p {
		if v {
			b[i] = 't'
		} else {
			b[i] = 'f'
		}
	}
	return string(b)
}
