package dist

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/soft-testing/soft/internal/agents/modified"
	"github.com/soft-testing/soft/internal/agents/refswitch"
	"github.com/soft-testing/soft/internal/harness"
	"github.com/soft-testing/soft/internal/obs"
)

// newTestFleet stands up a fleet on a fresh localhost listener.
func newTestFleet(t *testing.T, cfg FleetConfig) (*Fleet, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 200 * time.Millisecond
	}
	f := NewFleet(ln, cfg)
	t.Cleanup(f.Close)
	return f, ln.Addr().String()
}

// agentBytes is the single-process reference for an arbitrary agent.
func agentBytes(t *testing.T, agentName string, o harness.Options) []byte {
	t.Helper()
	tt, ok := harness.TestByName("Packet Out")
	if !ok {
		t.Fatal("missing test Packet Out")
	}
	var a harness.Result
	switch agentName {
	case "ref":
		a = *harness.Explore(refswitch.New(), tt, o)
	case "modified":
		a = *harness.Explore(modified.New(), tt, o)
	default:
		t.Fatalf("unknown test agent %q", agentName)
	}
	a.Elapsed = 0
	var buf bytes.Buffer
	if err := a.Write(&buf); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	return buf.Bytes()
}

// TestFleetMultiJob runs two jobs — different agents, same fleet, same two
// workers, concurrently — and asserts each merged result is byte-identical
// to its single-process reference. This is the campaign scheduler's core
// transport property: one persistent fleet drains many (agent, test) cells
// without reconnecting.
func TestFleetMultiJob(t *testing.T) {
	wantRef := agentBytes(t, "ref", harness.Options{WantModels: true, Workers: 4})
	wantMod := agentBytes(t, "modified", harness.Options{WantModels: true, Workers: 4})

	f, addr := newTestFleet(t, FleetConfig{})
	ctx := context.Background()
	w1 := startWorker(ctx, addr, 2)
	w2 := startWorker(ctx, addr, 2)

	type outcome struct {
		res *harness.MergedResult
		err error
	}
	runJob := func(agent string) <-chan outcome {
		ch := make(chan outcome, 1)
		go func() {
			res, err := f.Run(ctx, JobConfig{AgentName: agent, TestName: "Packet Out", WantModels: true})
			ch <- outcome{res, err}
		}()
		return ch
	}
	refCh := runJob("ref")
	modCh := runJob("modified")
	check := func(name string, ch <-chan outcome, want []byte) {
		select {
		case o := <-ch:
			if o.err != nil {
				t.Fatalf("job %s: %v", name, o.err)
			}
			if got := serializeCanonical(t, o.res); !bytes.Equal(got, want) {
				t.Fatalf("job %s differs from single-process reference", name)
			}
		case <-time.After(2 * time.Minute):
			t.Fatalf("job %s did not complete", name)
		}
	}
	check("ref", refCh, wantRef)
	check("modified", modCh, wantMod)

	f.Close()
	waitWorkers(t, w1, w2)

	st := f.Stats()
	if st.JobsCompleted != 2 {
		t.Errorf("JobsCompleted = %d, want 2", st.JobsCompleted)
	}
	if st.WorkersJoined != 2 {
		t.Errorf("WorkersJoined = %d, want 2", st.WorkersJoined)
	}
}

// TestFleetLeaseBatching drives a deep split (many small shards) through a
// single worker and asserts the coordinator coalesced shards into batched
// leases — and that batching does not disturb byte-identity.
func TestFleetLeaseBatching(t *testing.T) {
	want := agentBytes(t, "ref", harness.Options{WantModels: true, Workers: 4})

	f, addr := newTestFleet(t, FleetConfig{})
	ctx := context.Background()
	w := startWorker(ctx, addr, 2)
	res, err := f.Run(ctx, JobConfig{
		AgentName: "ref", TestName: "Packet Out", WantModels: true, ShardDepth: 6,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := serializeCanonical(t, res); !bytes.Equal(got, want) {
		t.Fatal("batched-lease result differs from single-process reference")
	}
	f.Close()
	waitWorkers(t, w)
	st := f.Stats()
	if st.BatchedLeases == 0 {
		t.Errorf("no batched leases were granted (leases %d, shards leased %d)", st.Leases, st.ShardsLeased)
	}
	if st.ShardsLeased <= st.Leases {
		t.Errorf("coalescing had no effect: %d shards over %d leases", st.ShardsLeased, st.Leases)
	}
}

// idleWorker handshakes, accepts job announcements and one lease, then
// goes silent while keeping the connection open — a worker that is alive
// but making no progress. Returns a closer.
func idleWorker(t *testing.T, addr string) func() {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("idle worker dial: %v", err)
	}
	if err := writeFrame(conn, msgHello, encodeHello(hello{version: protocolVersion, name: "idle"})); err != nil {
		t.Fatalf("idle worker hello: %v", err)
	}
	if mt, _, err := readFrame(conn); err != nil || mt != msgWelcome {
		t.Fatalf("idle worker welcome: type %d err %v", mt, err)
	}
	if mt, _, err := readFrame(conn); err != nil || mt != msgJob {
		t.Fatalf("idle worker job: type %d err %v", mt, err)
	}
	if mt, _, err := readFrame(conn); err != nil || mt != msgLease {
		t.Fatalf("idle worker lease: type %d err %v", mt, err)
	}
	return func() { conn.Close() }
}

// TestFleetAdaptiveSplit pins the progress-driven balancer: a worker that
// holds a lease without progressing triggers a speculative split once real
// workers starve, the sub-shards drain through the live worker, and the
// job completes — byte-identically — without the slow worker's result and
// without waiting for its lease to expire.
func TestFleetAdaptiveSplit(t *testing.T) {
	want := agentBytes(t, "ref", harness.Options{WantModels: true, Workers: 4})

	// A long lease timeout isolates the property: only the splitter can
	// rescue the held shards within the test's lifetime.
	f, addr := newTestFleet(t, FleetConfig{LeaseTimeout: time.Hour})
	ctx := context.Background()

	type outcome struct {
		res *harness.MergedResult
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := f.Run(ctx, JobConfig{
			AgentName: "ref", TestName: "Packet Out", WantModels: true,
			Adaptive: true, SplitAfter: 50 * time.Millisecond,
		})
		ch <- outcome{res, err}
	}()

	// The idle worker joins first and returns once it holds its (batched)
	// lease, so some shards are definitely stuck behind it before the live
	// worker exists.
	closeIdle := idleWorker(t, addr)
	defer closeIdle()
	w := startWorker(ctx, addr, 2)

	select {
	case o := <-ch:
		if o.err != nil {
			t.Fatalf("Run: %v", o.err)
		}
		if got := serializeCanonical(t, o.res); !bytes.Equal(got, want) {
			t.Fatal("adaptive-split result differs from single-process reference")
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("job did not complete; the splitter never rescued the held shards")
	}
	st := f.Stats()
	if st.Splits == 0 {
		t.Errorf("no adaptive splits happened (stats %+v)", st)
	}
	f.Close()
	waitWorkers(t, w)
}

// TestFleetZeroShards: a split depth beyond the tree's deepest fork
// yields no shards at all — the coordinator explored everything locally —
// and the job must complete immediately, workerless, with the same bytes.
func TestFleetZeroShards(t *testing.T) {
	want := agentBytes(t, "ref", harness.Options{WantModels: true, Workers: 4})
	f, _ := newTestFleet(t, FleetConfig{})
	done := make(chan struct{})
	var res *harness.MergedResult
	var err error
	go func() {
		defer close(done)
		res, err = f.Run(context.Background(), JobConfig{
			AgentName: "ref", TestName: "Packet Out", WantModels: true, ShardDepth: 512,
		})
	}()
	select {
	case <-done:
	case <-time.After(time.Minute):
		t.Fatal("zero-shard job never completed")
	}
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := serializeCanonical(t, res); !bytes.Equal(got, want) {
		t.Fatal("zero-shard result differs from single-process reference")
	}
}

// TestCompleteRemovesExpiredShardFromQueue pins the expiry/late-result
// race: a shard whose lease expired (back in the pending queue) whose
// original worker then finishes must be accepted AND pulled from the
// queue, never re-leased as a phantom.
func TestCompleteRemovesExpiredShardFromQueue(t *testing.T) {
	f := &Fleet{conns: make(map[net.Conn]bool), log: obs.NopLogger()}
	f.cond = sync.NewCond(&f.mu)
	j := &jobRun{}
	s := j.addShard([]bool{true, false})
	j.roots = []*shard{s}
	g := &grant{id: 1, job: j, shards: []*shard{s}}
	// The lease was granted, then expired: the watch loop re-queued it.
	s.status = shardPending
	// The original worker's result now arrives.
	f.completeShard(g, 0, &harness.Shard{})
	if s.status != shardDone {
		t.Fatalf("shard status %d, want done", s.status)
	}
	if len(j.pending) != 0 {
		t.Fatalf("done shard still in the pending queue (%d entries)", len(j.pending))
	}
	if !j.completed {
		t.Fatal("single-shard job not completed after its result")
	}
}

// TestWorkerVersionReject covers both halves of the version-mismatch
// handshake: the coordinator rejects a wrong-version hello with a reject
// frame, and Work surfaces a coordinator's reject as ErrVersionMismatch.
func TestWorkerVersionReject(t *testing.T) {
	// Half 1: fleet rejects an old worker with a reject frame.
	f, addr := newTestFleet(t, FleetConfig{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if err := writeFrame(conn, msgHello, encodeHello(hello{version: protocolVersion + 7, name: "old"})); err != nil {
		t.Fatalf("hello: %v", err)
	}
	mt, payload, err := readFrame(conn)
	if err != nil || mt != msgReject {
		t.Fatalf("want reject frame, got type %d err %v", mt, err)
	}
	r, err := decodeReject(payload)
	if err != nil || r.want != protocolVersion {
		t.Fatalf("reject payload %+v err %v, want version %d", r, err, protocolVersion)
	}
	if st := f.Stats(); st.WorkersRejected != 1 {
		t.Errorf("WorkersRejected = %d, want 1", st.WorkersRejected)
	}

	// Half 2: a worker dialing a newer coordinator reports the mismatch.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		readFrame(c) // the hello
		writeFrame(c, msgReject, encodeReject(reject{want: 99}))
	}()
	err = Work(context.Background(), ln.Addr().String(), WorkerConfig{Name: "w"})
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("Work error = %v, want ErrVersionMismatch", err)
	}
}

// TestWorkerSegmentsNestUnderLeaseSpans drives worker-shipped span
// segments through the wire encoding and the coordinator-side merge, and
// asserts the invariants the merged timeline depends on: a worker name
// maps to one stable pid for the fleet's lifetime, each worker's spans
// land under that pid on the lease span's lane, and each parentless
// worker span nests under exactly the coordinator lease span that granted
// the work.
func TestWorkerSegmentsNestUnderLeaseSpans(t *testing.T) {
	tr := obs.StartTracing()
	defer tr.Stop()
	f, _ := newTestFleet(t, FleetConfig{})

	pidA := f.pidFor("worker/a")
	pidB := f.pidFor("worker/b")
	if pidA == pidB {
		t.Fatalf("distinct workers share pid %d", pidA)
	}
	if got := f.pidFor("worker/a"); got != pidA {
		t.Fatalf("pid for worker/a drifted: %d then %d", pidA, got)
	}
	if pidA <= obs.LocalPid || pidB <= obs.LocalPid {
		t.Fatalf("worker pids %d/%d collide with the coordinator's %d", pidA, pidB, obs.LocalPid)
	}

	// Coordinator-side lease spans, one lane per worker pid — as handle()
	// opens them when granting a traced lease.
	leaseA := obs.StartSpan("lease:1 -> worker/a").WithTID(int(pidA))
	leaseB := obs.StartSpan("lease:2 -> worker/b").WithTID(int(pidB))

	// Worker-side segments as Work ships them: stamped with the worker
	// name and the granting lease's span id, sent over the real encoding.
	ship := func(leaseID uint64, parent uint64, proc string, pid int64, span string) {
		t.Helper()
		m, err := decodeTrace(encodeTrace(traceMsg{job: 1, lease: leaseID, seg: obs.Segment{
			Process:       proc,
			BaseUnixMicro: time.Now().UnixMicro(),
			Parent:        parent,
			Events:        []obs.SegmentEvent{{Name: span, TS: 1, Dur: 2, ID: 1000 + uint64(pid)}},
		}}))
		if err != nil {
			t.Fatalf("trace frame round trip: %v", err)
		}
		tr.MergeSegment(m.seg, pid)
	}
	ship(1, leaseA.ID(), "worker/a", pidA, "shard:00")
	ship(2, leaseB.ID(), "worker/b", pidB, "shard:01")
	leaseA.End()
	leaseB.End()

	segs := tr.Drain()
	byPid := make(map[int64]obs.Segment, len(segs))
	for _, seg := range segs {
		byPid[seg.Pid] = seg
	}
	local, ok := byPid[obs.LocalPid]
	if !ok || len(local.Events) != 2 {
		t.Fatalf("coordinator segment missing or wrong size: %+v", segs)
	}
	leaseSpanByTID := make(map[int64]uint64)
	for _, ev := range local.Events {
		leaseSpanByTID[ev.TID] = ev.ID
	}
	if leaseSpanByTID[pidA] != leaseA.ID() || leaseSpanByTID[pidB] != leaseB.ID() {
		t.Fatalf("lease spans not on their workers' lanes: %+v", local.Events)
	}
	for pid, wantParent := range map[int64]uint64{pidA: leaseA.ID(), pidB: leaseB.ID()} {
		seg, ok := byPid[pid]
		if !ok || len(seg.Events) != 1 {
			t.Fatalf("worker pid %d segment missing: %+v", pid, segs)
		}
		if seg.Events[0].Parent != wantParent {
			t.Fatalf("worker pid %d span nests under %d, want lease span %d",
				pid, seg.Events[0].Parent, wantParent)
		}
	}
	if byPid[pidA].Process != "worker/a" || byPid[pidB].Process != "worker/b" {
		t.Fatalf("worker track names lost: %+v", segs)
	}
}
