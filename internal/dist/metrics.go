package dist

import (
	"github.com/soft-testing/soft/internal/bitblast"
	"github.com/soft-testing/soft/internal/obs"
)

// Fleet metrics, mirroring the FleetStats lifecycle counters (which remain
// the per-fleet accounting Reports carry) into the process-global registry,
// plus the aggregation targets for worker-shipped metric deltas.
// Observation only — scheduling decisions never read these.
var (
	mWorkersJoined   = obs.NewCounter("soft_fleet_workers_joined_total")
	mWorkersRejected = obs.NewCounter("soft_fleet_workers_rejected_total")
	mLeases          = obs.NewCounter("soft_fleet_leases_total")
	mShardsLeased    = obs.NewCounter("soft_fleet_shards_leased_total")
	mRequeues        = obs.NewCounter("soft_fleet_requeues_total")
	mExpirations     = obs.NewCounter("soft_fleet_expirations_total")
	mSplits          = obs.NewCounter("soft_fleet_splits_total")
	mStaleResults    = obs.NewCounter("soft_fleet_stale_results_total")
	// mWorkersConnected tracks live worker connections (welcomed minus
	// departed) for the `soft top` dashboard.
	mWorkersConnected = obs.NewGauge("soft_fleet_workers_connected")
	// mPathsDone counts paths banked into jobs (coordinator-local split
	// paths, accepted shard results, split stubs): the numerator of the
	// dashboard's paths/sec rate.
	mPathsDone = obs.NewCounter("soft_fleet_paths_completed_total")
	// mLeaseRTT is the grant-to-first-accepted-result round trip per shard.
	mLeaseRTT = obs.NewHistogram("soft_fleet_lease_rtt_ns")

	// Remote aggregates: worker-local solver activity shipped as deltas on
	// progress frames (protocol v4) and summed fleet-wide here, so the
	// coordinator's /metrics shows cluster solver throughput live.
	mRemoteSolves     = obs.NewCounter("soft_fleet_remote_sat_solves_total")
	mRemoteSolveNanos = obs.NewCounter("soft_fleet_remote_solve_nanos_total")
	mRemoteAssumption = obs.NewCounter("soft_fleet_remote_assumption_solves_total")
	mRemoteReused     = obs.NewCounter("soft_fleet_remote_constraints_reused_total")
)

// LeaseRTTSnapshot snapshots the fleet lease round-trip histogram. It
// exists so benchmarks can diff the histogram around a run without
// re-registering the metric (each name must register exactly once).
func LeaseRTTSnapshot() obs.HistogramSnapshot { return mLeaseRTT.Snapshot() }

// workerMetrics is the fixed set of worker-local counters whose deltas ride
// progress frames. Sampling reads the worker process's global SAT metrics —
// a worker explores one lease at a time, so deltas attribute cleanly.
type workerMetrics struct {
	solves     uint64
	solveNanos uint64
	assumption uint64
	reused     uint64
}

func sampleWorkerMetrics() workerMetrics {
	return workerMetrics{
		solves:     uint64(bitblast.MSolves.Load() + bitblast.MAssumptionSolves.Load()),
		solveNanos: uint64(bitblast.MSolveLatency.Snapshot().Sum),
		assumption: uint64(bitblast.MAssumptionSolves.Load()),
		reused:     uint64(bitblast.MConstraintsReused.Load()),
	}
}

func (m workerMetrics) sub(o workerMetrics) workerMetrics {
	return workerMetrics{
		solves:     m.solves - o.solves,
		solveNanos: m.solveNanos - o.solveNanos,
		assumption: m.assumption - o.assumption,
		reused:     m.reused - o.reused,
	}
}

// addRemote folds one progress frame's deltas into the fleet-wide
// aggregates.
func addRemote(p progressMsg) {
	if p.dSolves == 0 && p.dSolveNanos == 0 && p.dAssumption == 0 && p.dReused == 0 {
		return
	}
	mRemoteSolves.Add(int64(p.dSolves))
	mRemoteSolveNanos.Add(int64(p.dSolveNanos))
	mRemoteAssumption.Add(int64(p.dAssumption))
	mRemoteReused.Add(int64(p.dReused))
}
