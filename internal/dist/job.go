package dist

import (
	"context"
	"sync"
	"time"

	"github.com/soft-testing/soft/internal/agents"
	"github.com/soft-testing/soft/internal/harness"
)

// JobConfig parameterizes one job — one (agent, test) exploration cell —
// submitted to a Fleet. AgentName and TestName are required and name the
// job by registry key, the form every worker process can resolve locally;
// zero limits take the harness defaults.
type JobConfig struct {
	AgentName string
	TestName  string

	// MaxPaths/MaxDepth/WantModels/ClauseSharing/Incremental/Merge mirror
	// harness.Options and are forwarded to every worker. The limits and
	// models flag must agree across shards for the merged result to be
	// canonical; the solver-mode flags are forwarded so every shard runs
	// the configured speed mode (determinism makes the bytes identical
	// either way).
	MaxPaths      int
	MaxDepth      int
	WantModels    bool
	ClauseSharing bool
	Incremental   bool
	Merge         bool
	// NoCanonicalCut opts out of canonical MaxPaths truncation. Distributed
	// runs default to the canonical cut (the zero value): without it a
	// truncated run's path selection would depend on which shards finished
	// first, and the determinism guarantee would hold only for exhaustive
	// runs.
	NoCanonicalCut bool

	// ShardDepth bounds the initial frontier split (default
	// DefaultShardDepth).
	ShardDepth int
	// Adaptive enables progress-driven shard balancing: a leased shard that
	// has not completed within SplitAfter while workers are starving is
	// speculatively re-split into deeper sub-shards (plus a coordinator-
	// explored stub), and whichever side completes first — the original
	// worker's whole-subtree result, or the stub plus all sub-shards — is
	// used. Determinism makes both byte-identical, so splitting only
	// changes who explores what, never the result.
	Adaptive bool
	// SplitAfter is the adaptive splitter's slowness threshold (default
	// DefaultSplitAfter; only meaningful with Adaptive set).
	SplitAfter time.Duration

	// Progress, when set, receives the cumulative completed-path count
	// (coordinator-local paths plus live shard progress). Counts are a
	// monotone high-water mark and may slightly overcount during
	// speculative splits (the count is advisory; results are exact).
	Progress func(done int)

	// TraceID is the campaign's correlation id, threaded through log
	// lines and wire frames (pure observability). Zero with tracing
	// active makes the fleet mint one per job.
	TraceID uint64
}

// DefaultSplitAfter is how long a leased shard may run without completing
// before the adaptive splitter speculatively subdivides it (when workers
// are starving). Splitting is safe at any threshold — results are
// byte-identical with or without it — so the default only trades
// duplicated work against tail latency on unbalanced subtrees.
const DefaultSplitAfter = 1500 * time.Millisecond

// maxSplitPrefix bounds how deep adaptive splitting may push a shard
// prefix; beyond this the subtree is explored as-is.
const maxSplitPrefix = 24

// shardStatus tracks one shard through the lease state machine.
type shardStatus int

const (
	shardPending shardStatus = iota
	shardLeased
	shardDone      // result accepted
	shardCancelled // covered by a parent result or a completed split
)

// shard is one unexplored subtree of a job's execution tree, identified by
// its branch-decision prefix.
type shard struct {
	id       uint64
	prefix   []bool
	status   shardStatus
	grant    *grant // lease currently holding it (status shardLeased)
	result   *harness.Shard
	leasedAt time.Time
	deadline time.Time // lease expiry (zero when LeaseTimeout disabled)

	// Adaptive split state: a split shard is covered either by its own
	// result (the original worker finished first) or by stub — the
	// coordinator-explored shallow paths of the subtree — plus all
	// children. Exactly one of the two alternatives enters the merge.
	splitting bool // a split exploration is in flight
	split     bool
	stub      *harness.Shard
	children  []*shard
	parent    *shard
}

// redundant reports that an ancestor's own result already covers s's
// subtree, so a result for s is stale however s itself looks (a leased
// child cannot be cancelled, only ignored on arrival).
func (s *shard) redundant() bool {
	for p := s.parent; p != nil; p = p.parent {
		if p.result != nil {
			return true
		}
	}
	return false
}

// covered reports whether s's subtree is fully accounted for: by its own
// result, or (after a split) by the stub plus every child's subtree.
func (s *shard) covered() bool {
	if s.result != nil {
		return true
	}
	if !s.split {
		return false
	}
	for _, c := range s.children {
		if !c.covered() {
			return false
		}
	}
	return true
}

// collect appends the shard payloads that reconstruct s's subtree for the
// merge: s's own result when present, otherwise the split stub plus each
// child's collection. Called only when s.covered().
func (s *shard) collect(out *[]*harness.Shard) {
	if s.result != nil {
		*out = append(*out, s.result)
		return
	}
	*out = append(*out, s.stub)
	for _, c := range s.children {
		c.collect(out)
	}
}

// cancelSubtree marks every pending descendant of s cancelled and pulls it
// from the queue (s's own result makes their exploration redundant).
// Leased descendants keep running; their results are dropped as redundant
// on arrival.
func (j *jobRun) cancelSubtree(s *shard) {
	for _, c := range s.children {
		if c.status == shardPending {
			c.status = shardCancelled
			j.removePending(c)
		}
		j.cancelSubtree(c)
	}
}

// grant is one lease: a batch of shards from one job handed to one worker
// connection.
type grant struct {
	id     uint64
	job    *jobRun
	shards []*shard
	done   int // live progress (completed paths reported by the worker)
}

// jobRun is the coordinator-side state of one job in flight. All fields
// are guarded by the owning Fleet's mutex.
type jobRun struct {
	id    uint64
	cfg   JobConfig
	ctx   context.Context
	agent agents.Agent
	test  harness.Test
	local *harness.Result

	roots     []*shard
	shards    []*shard // every shard ever created, roots and split children
	pending   []*shard
	nextShard uint64

	// traced/traceID freeze the job's trace context at submission time
	// (whether a tracer was active, and the correlation id).
	traced  bool
	traceID uint64

	completed bool
	failed    error
	removed   bool // Run returned; no further callbacks may fire
	// cbMu fences Progress callbacks against Run returning: callbacks hold
	// it shared while invoking cfg.Progress; Run takes it exclusively after
	// removal, so no callback can still be in flight once Run returns.
	cbMu       sync.RWMutex
	localPaths int
	donePaths  int // paths in accepted results and split stubs
	liveDone   int // live progress across active grants
	progressHi int
}

// jobMsgFor renders the job announcement frame for j.
func (j *jobRun) jobMsg() jobMsg {
	return jobMsg{
		id:            j.id,
		agent:         j.cfg.AgentName,
		test:          j.cfg.TestName,
		maxPaths:      j.cfg.MaxPaths,
		maxDepth:      j.cfg.MaxDepth,
		models:        j.cfg.WantModels,
		clauseSharing: j.cfg.ClauseSharing,
		incremental:   j.cfg.Incremental,
		merge:         j.cfg.Merge,
		canonicalCut:  !j.cfg.NoCanonicalCut,
		traced:        j.traced,
		traceID:       j.traceID,
	}
}

// addShard creates a shard for prefix and registers it (pending).
func (j *jobRun) addShard(prefix []bool) *shard {
	s := &shard{id: j.nextShard, prefix: prefix}
	j.nextShard++
	j.shards = append(j.shards, s)
	j.pending = append(j.pending, s)
	return s
}

// doneLocked reports whether every root subtree is covered.
func (j *jobRun) doneLocked() bool {
	for _, s := range j.roots {
		if !s.covered() {
			return false
		}
	}
	return true
}

// removePending deletes s from the pending queue if present.
func (j *jobRun) removePending(s *shard) {
	for i, cand := range j.pending {
		if cand == s {
			j.pending = append(j.pending[:i], j.pending[i+1:]...)
			return
		}
	}
}

// exploreOptions renders the harness options every exploration of this job
// must share (prefix and split-sink vary per call).
func (j *jobRun) exploreOptions() harness.Options {
	return harness.Options{
		MaxPaths:      j.cfg.MaxPaths,
		MaxDepth:      j.cfg.MaxDepth,
		WantModels:    j.cfg.WantModels,
		ClauseSharing: j.cfg.ClauseSharing,
		Incremental:   j.cfg.Incremental,
		Merge:         j.cfg.Merge,
		CanonicalCut:  !j.cfg.NoCanonicalCut,
		Workers:       1,
	}
}
