package dist

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"github.com/soft-testing/soft/internal/agents/refswitch"
	"github.com/soft-testing/soft/internal/harness"
)

// serializeCanonical renders a merged result with the wall-clock line
// zeroed so runs compare byte for byte.
func serializeCanonical(t *testing.T, r *harness.MergedResult) []byte {
	t.Helper()
	clone := *r.SerializedResult
	clone.Elapsed = 0
	var buf bytes.Buffer
	if err := clone.Write(&buf); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	return buf.Bytes()
}

// singleProcessBytes is the reference: a plain in-process exploration,
// serialized with Elapsed zeroed.
func singleProcessBytes(t *testing.T, o harness.Options) []byte {
	t.Helper()
	tt, ok := harness.TestByName("Packet Out")
	if !ok {
		t.Fatal("missing test Packet Out")
	}
	r := harness.Explore(refswitch.New(), tt, o)
	clone := *r
	clone.Elapsed = 0
	var buf bytes.Buffer
	if err := clone.Write(&buf); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	return buf.Bytes()
}

// serveAsync starts a coordinator on a fresh localhost listener and returns
// the address plus a channel carrying the merged result.
type serveOutcome struct {
	res *harness.MergedResult
	err error
}

func serveAsync(t *testing.T, ctx context.Context, cfg Config) (string, <-chan serveOutcome) {
	t.Helper()
	if cfg.AgentName == "" {
		cfg.AgentName = "ref"
	}
	if cfg.TestName == "" {
		cfg.TestName = "Packet Out"
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 200 * time.Millisecond
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	out := make(chan serveOutcome, 1)
	go func() {
		res, err := Serve(ctx, ln, cfg)
		out <- serveOutcome{res, err}
	}()
	return ln.Addr().String(), out
}

func waitServe(t *testing.T, out <-chan serveOutcome) *harness.MergedResult {
	t.Helper()
	select {
	case o := <-out:
		if o.err != nil {
			t.Fatalf("Serve: %v", o.err)
		}
		return o.res
	case <-time.After(2 * time.Minute):
		t.Fatal("Serve did not complete")
		return nil
	}
}

// startWorker runs one Work loop; the returned channel carries its exit
// error. Tests drain the channels before returning so no goroutine
// outlives the test.
func startWorker(ctx context.Context, addr string, engineWorkers int) <-chan error {
	ch := make(chan error, 1)
	go func() { ch <- Work(ctx, addr, WorkerConfig{Workers: engineWorkers}) }()
	return ch
}

func waitWorkers(t *testing.T, chans ...<-chan error) {
	t.Helper()
	for i, ch := range chans {
		select {
		case err := <-ch:
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		case <-time.After(30 * time.Second):
			t.Errorf("worker %d did not exit", i)
		}
	}
}

// TestDistributedExploreDeterminism is the tentpole acceptance property: a
// coordinator plus two workers over localhost TCP must produce byte-identical
// serialized results to a single-process parallel run.
func TestDistributedExploreDeterminism(t *testing.T) {
	want := singleProcessBytes(t, harness.Options{WantModels: true, Workers: 4})

	ctx := context.Background()
	addr, out := serveAsync(t, ctx, Config{WantModels: true})
	w1 := startWorker(ctx, addr, 2)
	w2 := startWorker(ctx, addr, 2)
	res := waitServe(t, out)
	waitWorkers(t, w1, w2)
	if got := serializeCanonical(t, res); !bytes.Equal(got, want) {
		t.Fatalf("distributed results differ from single-process (%d vs reference bytes %d)",
			len(got), len(want))
	}
	if res.Truncated {
		t.Fatal("exhaustive distributed run marked truncated")
	}
	// Exploration's solver work happens on path-private SAT cores, counted
	// by BranchQueries; a zero aggregate would mean shard counters were
	// dropped in the merge.
	if res.BranchQueries == 0 {
		t.Fatal("aggregated branch-query count is zero — shard counters were not merged")
	}
}

// flakyWorker handshakes, takes one lease, and drops the connection — a
// worker crash in miniature. Returns once the connection is closed.
func flakyWorker(t *testing.T, addr string) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("flaky worker dial: %v", err)
	}
	defer conn.Close()
	if err := writeFrame(conn, msgHello, encodeHello(hello{version: protocolVersion, name: "flaky"})); err != nil {
		t.Fatalf("flaky worker hello: %v", err)
	}
	if mt, _, err := readFrame(conn); err != nil || mt != msgWelcome {
		t.Fatalf("flaky worker welcome: type %d err %v", mt, err)
	}
	if mt, _, err := readFrame(conn); err != nil || mt != msgJob {
		t.Fatalf("flaky worker job: type %d err %v", mt, err)
	}
	if mt, _, err := readFrame(conn); err != nil || mt != msgLease {
		t.Fatalf("flaky worker lease: type %d err %v", mt, err)
	}
	// Crash: the shards this lease covered must be re-leased, not lost.
}

// TestDistributedWorkerCrashReLease kills a worker after it accepted a
// lease; the coordinator must re-lease the shard and the final result must
// still be byte-identical to the single-process run.
func TestDistributedWorkerCrashReLease(t *testing.T) {
	want := singleProcessBytes(t, harness.Options{WantModels: true, Workers: 4})

	ctx := context.Background()
	addr, out := serveAsync(t, ctx, Config{WantModels: true})
	flakyWorker(t, addr) // connects, leases, disconnects
	w := startWorker(ctx, addr, 2)
	res := waitServe(t, out)
	waitWorkers(t, w)
	if got := serializeCanonical(t, res); !bytes.Equal(got, want) {
		t.Fatal("results differ after worker crash + re-lease")
	}
}

// TestDistributedLeaseTimeout hangs a worker on a lease (connected but
// silent); the lease must expire and move to a live worker, and a stale
// result from the hung worker later must be ignored.
func TestDistributedLeaseTimeout(t *testing.T) {
	want := singleProcessBytes(t, harness.Options{WantModels: true, Workers: 4})

	ctx := context.Background()
	addr, out := serveAsync(t, ctx, Config{WantModels: true, LeaseTimeout: 300 * time.Millisecond})

	// Hung worker: takes a lease and never answers.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if err := writeFrame(conn, msgHello, encodeHello(hello{version: protocolVersion, name: "hung"})); err != nil {
		t.Fatalf("hello: %v", err)
	}
	if mt, _, err := readFrame(conn); err != nil || mt != msgWelcome {
		t.Fatalf("welcome: type %d err %v", mt, err)
	}
	if mt, _, err := readFrame(conn); err != nil || mt != msgJob {
		t.Fatalf("job: type %d err %v", mt, err)
	}
	if mt, _, err := readFrame(conn); err != nil || mt != msgLease {
		t.Fatalf("lease: type %d err %v", mt, err)
	}

	w := startWorker(ctx, addr, 2)
	res := waitServe(t, out)
	waitWorkers(t, w)
	if got := serializeCanonical(t, res); !bytes.Equal(got, want) {
		t.Fatal("results differ after lease timeout + re-lease")
	}
}

// TestDistributedCanonicalTruncation pins the satellite property: MaxPaths
// truncation is canonical by default in distributed runs, so a truncated
// distributed result is byte-identical to canonically truncated
// single-process runs at any worker count.
func TestDistributedCanonicalTruncation(t *testing.T) {
	const cap = 7
	want1 := singleProcessBytes(t, harness.Options{WantModels: true, Workers: 1, MaxPaths: cap, CanonicalCut: true})
	want4 := singleProcessBytes(t, harness.Options{WantModels: true, Workers: 4, MaxPaths: cap, CanonicalCut: true})
	if !bytes.Equal(want1, want4) {
		t.Fatal("canonical truncation differs between single-process worker counts")
	}

	ctx := context.Background()
	addr, out := serveAsync(t, ctx, Config{WantModels: true, MaxPaths: cap})
	w1 := startWorker(ctx, addr, 2)
	w2 := startWorker(ctx, addr, 2)
	res := waitServe(t, out)
	waitWorkers(t, w1, w2)
	if !res.Truncated {
		t.Fatal("truncated distributed run not marked truncated")
	}
	if len(res.Paths) != cap {
		t.Fatalf("kept %d paths, want %d", len(res.Paths), cap)
	}
	if got := serializeCanonical(t, res); !bytes.Equal(got, want1) {
		t.Fatal("truncated distributed result differs from canonical single-process truncation")
	}
}

// TestDistributedCancellation: cancelling the coordinator's context aborts
// the run with the context error rather than hanging or emitting a result.
func TestDistributedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	_, out := serveAsync(t, ctx, Config{WantModels: true})
	cancel() // no workers ever connect; pending shards can never finish
	select {
	case o := <-out:
		if o.err == nil {
			t.Fatal("cancelled Serve returned a result")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled Serve did not return")
	}
}
