// Package dist implements distributed exploration: a coordinator process
// that splits the phase-1 frontier into decision-prefix subtrees and a
// fleet of worker processes that explore them, talking over a small
// length-prefixed TCP protocol.
//
// The design mirrors the paper's Cloud9-on-a-cluster deployment (§3.2) but
// leans on the reproduction's determinism guarantees instead of shared
// engine state: a shard is nothing but a branch-decision prefix, exploring
// a shard is a pure function (the worker re-executes the deterministic
// agent under that prefix), and the coordinator merges shard outputs with
// the same canonical decision-prefix order the in-process engine uses — so
// the distributed result is byte-identical to a single-process run, a
// worker crash costs only a re-lease, and a shard accidentally explored
// twice returns identical bytes both times.
//
// # Wire protocol
//
// Every message is one frame:
//
//	[4-byte big-endian length] [1-byte message type] [payload]
//
// where length covers the type byte plus the payload and is capped at 64
// MiB. Payload scalars are varints; strings and byte slices are
// length-prefixed; decision prefixes are bit-packed; expressions travel in
// the same canonical s-expression text the results-file format uses; and
// coverage travels as raw bitmaps (agents register their coverage universe
// deterministically, so indices agree across processes).
//
// The conversation is worker-driven pull. Since protocol version 2 every
// work-carrying frame is job-scoped, so one worker fleet drains an entire
// campaign — a whole (agent × test) matrix — without reconnecting between
// cells:
//
//	worker → hello       {version, name}
//	coord  → welcome     {}                  (or reject {wanted version})
//	coord  → job         {job id, agent, test, engine options}   (per job,
//	                      sent lazily before that job's first lease)
//	coord  → lease       {job id, lease id, decision prefixes}   (repeated;
//	                      a lease may batch several small shards)
//	worker → progress    {job id, lease id, paths completed}     (throttled)
//	worker → trace       {job id, lease id, span segment}        (traced leases
//	                      only; one frame per completed prefix, sent just
//	                      before that prefix's result frame)
//	worker → result      {job id, lease id, prefix index, shard payload}
//	                      (one frame per prefix, sent as each completes)
//	coord  → shutdown    {}                  (fleet shutting down)
//
// A worker that disconnects mid-lease loses nothing: the coordinator
// returns the leased shards to the pending queue and another worker
// re-explores them (lease expiry does the same for hung workers).
// Duplicate results for a shard are dropped on arrival — first completion
// wins, and determinism makes the copies identical anyway.
package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"github.com/soft-testing/soft/internal/coverage"
	"github.com/soft-testing/soft/internal/harness"
	"github.com/soft-testing/soft/internal/obs"
	"github.com/soft-testing/soft/internal/solver"
	"github.com/soft-testing/soft/internal/sym"
)

// protocolVersion is bumped on any incompatible frame or payload change;
// the coordinator rejects workers speaking a different version (with a
// reject frame naming the version it wants, so the worker can report the
// mismatch instead of a raw decode error). Version 2 added job-scoped
// frames (job/lease/progress/result carry a job id), multi-prefix leases,
// and the reject frame. Version 4 extended progress frames with
// worker-local metric deltas (SAT solves, solve time, assumption solves,
// constraint reuses) so the coordinator can aggregate fleet-wide solver
// throughput live. Version 5 added distributed trace context: job and
// lease frames carry a trace id (and the lease its coordinator-side
// parent span id), and traced workers ship their buffered span segments
// back on the new trace frame so the coordinator can merge one
// cross-process timeline.
const protocolVersion = 5

// maxFrame bounds a frame (type byte + payload). It matches the results
// reader's line buffer: anything bigger is a corrupt or hostile peer.
const maxFrame = 64 << 20

// msgType tags a frame.
type msgType byte

const (
	msgHello    msgType = 1 // worker → coordinator: version handshake
	msgWelcome  msgType = 2 // coordinator → worker: handshake accepted
	msgLease    msgType = 3 // coordinator → worker: a batch of shards to explore
	msgProgress msgType = 4 // worker → coordinator: paths completed so far
	msgResult   msgType = 5 // worker → coordinator: completed shard payloads
	msgShutdown msgType = 6 // coordinator → worker: fleet done, disconnect
	msgReject   msgType = 7 // coordinator → worker: protocol version mismatch
	msgJob      msgType = 8 // coordinator → worker: one job's configuration
	msgTrace    msgType = 9 // worker → coordinator: buffered span segment (v5)
)

// writeFrame sends one frame. Callers serialize writes per connection.
func writeFrame(w io.Writer, t msgType, payload []byte) error {
	if len(payload)+1 > maxFrame {
		return fmt.Errorf("dist: frame too large (%d bytes)", len(payload)+1)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame receives one frame.
func readFrame(r io.Reader) (msgType, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return 0, nil, fmt.Errorf("dist: bad frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("dist: truncated frame: %w", err)
	}
	return msgType(body[0]), body[1:], nil
}

// enc builds a payload. All scalars are varints (signed where the field is
// signed), so payloads stay small and independent of word size.
type enc struct{ b []byte }

func (e *enc) u64(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) i64(v int64)  { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) boolean(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}
func (e *enc) str(s string) {
	e.u64(uint64(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) bytes(p []byte) {
	e.u64(uint64(len(p)))
	e.b = append(e.b, p...)
}

// bits packs a decision vector: bit count, then ceil(n/8) bytes, LSB first.
func (e *enc) bits(d []bool) {
	e.u64(uint64(len(d)))
	packed := make([]byte, (len(d)+7)/8)
	for i, v := range d {
		if v {
			packed[i/8] |= 1 << (i % 8)
		}
	}
	e.b = append(e.b, packed...)
}

// dec consumes a payload, latching the first error so callers can decode a
// whole message and check once.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("dist: "+format, args...)
	}
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) boolean() bool {
	if d.err != nil {
		return false
	}
	if len(d.b) == 0 {
		d.fail("truncated bool")
		return false
	}
	v := d.b[0]
	d.b = d.b[1:]
	if v > 1 {
		d.fail("bad bool byte %d", v)
		return false
	}
	return v == 1
}

// count reads a collection length, rejecting values the remaining payload
// cannot possibly hold (each element takes at least min bytes).
func (d *dec) count(what string, min int) int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if n > uint64(math.MaxInt32) || int(n)*min > len(d.b) {
		d.fail("implausible %s count %d for %d remaining bytes", what, n, len(d.b))
		return 0
	}
	return int(n)
}

func (d *dec) str() string {
	n := d.count("string byte", 1)
	if d.err != nil {
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *dec) bytes() []byte {
	n := d.count("byte", 1)
	if d.err != nil {
		return nil
	}
	p := append([]byte(nil), d.b[:n]...)
	d.b = d.b[n:]
	return p
}

func (d *dec) bits() []bool {
	n := d.count("bit", 0)
	if d.err != nil {
		return nil
	}
	packed := (n + 7) / 8
	if packed > len(d.b) {
		d.fail("truncated bit vector (%d bits, %d bytes left)", n, len(d.b))
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = d.b[i/8]&(1<<(i%8)) != 0
	}
	d.b = d.b[packed:]
	return out
}

// done checks a fully decoded message: no latched error, no trailing bytes.
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("dist: %d trailing bytes after message", len(d.b))
	}
	return nil
}

// hello is the worker's opening message.
type hello struct {
	version uint64
	name    string
}

func encodeHello(h hello) []byte {
	var e enc
	e.u64(h.version)
	e.str(h.name)
	return e.b
}

func decodeHello(p []byte) (hello, error) {
	d := dec{b: p}
	h := hello{version: d.u64(), name: d.str()}
	return h, d.done()
}

// reject tells a worker its protocol version was refused and which version
// the coordinator speaks, so the worker can report the mismatch precisely.
type reject struct {
	want uint64
}

func encodeReject(r reject) []byte {
	var e enc
	e.u64(r.want)
	return e.b
}

func decodeReject(p []byte) (reject, error) {
	d := dec{b: p}
	r := reject{want: d.u64()}
	return r, d.done()
}

// jobMsg announces one job — an (agent, test) cell plus the engine options
// every shard of that job must share for the merged result to be canonical.
// It is sent at most once per connection per job, before the job's first
// lease on that connection.
type jobMsg struct {
	id                 uint64
	agent, test        string
	maxPaths, maxDepth int
	models             bool
	clauseSharing      bool
	incremental        bool
	merge              bool
	canonicalCut       bool

	// traced marks the job as span-traced at submission; traceID is the
	// campaign's correlation id, threaded through worker log lines. Both
	// are pure observability (v5): they never reach the engine.
	traced  bool
	traceID uint64
}

func encodeJob(j jobMsg) []byte {
	var e enc
	e.u64(j.id)
	e.str(j.agent)
	e.str(j.test)
	e.i64(int64(j.maxPaths))
	e.i64(int64(j.maxDepth))
	e.boolean(j.models)
	e.boolean(j.clauseSharing)
	e.boolean(j.incremental)
	e.boolean(j.merge)
	e.boolean(j.canonicalCut)
	e.boolean(j.traced)
	e.u64(j.traceID)
	return e.b
}

func decodeJob(p []byte) (jobMsg, error) {
	d := dec{b: p}
	j := jobMsg{
		id:       d.u64(),
		agent:    d.str(),
		test:     d.str(),
		maxPaths: int(d.i64()),
		maxDepth: int(d.i64()),
	}
	j.models = d.boolean()
	j.clauseSharing = d.boolean()
	j.incremental = d.boolean()
	j.merge = d.boolean()
	j.canonicalCut = d.boolean()
	j.traced = d.boolean()
	j.traceID = d.u64()
	return j, d.done()
}

// lease hands a batch of shards — the subtrees below the given decision
// prefixes, all from one job — to a worker. Batching several small shards
// into one lease is the coordinator's coalescing lever: one round trip and
// one result frame amortize over trivially small subtrees.
type lease struct {
	job      uint64
	id       uint64
	prefixes [][]bool

	// Trace context (v5): traced asks the worker to buffer and ship its
	// spans for this lease; parentSpan is the coordinator-side lease
	// span's id, under which the worker's shipped segment nests in the
	// merged timeline; traceID is the campaign correlation id.
	traced     bool
	traceID    uint64
	parentSpan uint64
}

func encodeLease(l lease) []byte {
	var e enc
	e.u64(l.job)
	e.u64(l.id)
	e.boolean(l.traced)
	e.u64(l.traceID)
	e.u64(l.parentSpan)
	e.u64(uint64(len(l.prefixes)))
	for _, p := range l.prefixes {
		e.bits(p)
	}
	return e.b
}

func decodeLease(p []byte) (lease, error) {
	d := dec{b: p}
	l := lease{job: d.u64(), id: d.u64()}
	l.traced = d.boolean()
	l.traceID = d.u64()
	l.parentSpan = d.u64()
	n := d.count("prefix", 1)
	for i := 0; i < n && d.err == nil; i++ {
		l.prefixes = append(l.prefixes, d.bits())
	}
	return l, d.done()
}

// progressMsg streams a lease's completed-path count while it runs (summed
// across the lease's prefixes), plus the worker's metric deltas since its
// previous progress frame (v4): SAT solves, solve nanoseconds, assumption
// solves, and activation-cache constraint reuses. The deltas are advisory
// observability data — the coordinator aggregates them fleet-wide and
// nothing else reads them, so they can never affect a merged result.
type progressMsg struct {
	job   uint64
	lease uint64
	done  uint64

	dSolves     uint64
	dSolveNanos uint64
	dAssumption uint64
	dReused     uint64
}

func encodeProgress(p progressMsg) []byte {
	var e enc
	e.u64(p.job)
	e.u64(p.lease)
	e.u64(p.done)
	e.u64(p.dSolves)
	e.u64(p.dSolveNanos)
	e.u64(p.dAssumption)
	e.u64(p.dReused)
	return e.b
}

func decodeProgress(p []byte) (progressMsg, error) {
	d := dec{b: p}
	m := progressMsg{job: d.u64(), lease: d.u64(), done: d.u64()}
	m.dSolves = d.u64()
	m.dSolveNanos = d.u64()
	m.dAssumption = d.u64()
	m.dReused = d.u64()
	return m, d.done()
}

// encodeStats flattens solver statistics into the payload.
func (e *enc) stats(st solver.Stats) {
	e.i64(st.Queries)
	e.i64(st.CacheHits)
	e.i64(st.SatQueries)
	e.i64(st.UnsatQueries)
	e.i64(int64(st.SolveTime))
	e.i64(st.MaxQuerySize)
	e.i64(st.ClausesTotal)
	e.i64(st.AuxVarsTotal)
	e.i64(st.FastPathConst)
	e.i64(st.ClauseExports)
	e.i64(st.ClauseImports)
	e.i64(st.AssumptionSolves)
	e.i64(st.FullSolves)
	e.i64(st.ConstraintsReused)
	e.i64(st.MergeHits)
	e.i64(st.InternHits)
}

func (d *dec) stats() solver.Stats {
	return solver.Stats{
		Queries:       d.i64(),
		CacheHits:     d.i64(),
		SatQueries:    d.i64(),
		UnsatQueries:  d.i64(),
		SolveTime:     time.Duration(d.i64()),
		MaxQuerySize:  d.i64(),
		ClausesTotal:  d.i64(),
		AuxVarsTotal:  d.i64(),
		FastPathConst: d.i64(),
		ClauseExports: d.i64(),
		ClauseImports: d.i64(),

		AssumptionSolves:  d.i64(),
		FullSolves:        d.i64(),
		ConstraintsReused: d.i64(),
		MergeHits:         d.i64(),
		InternHits:        d.i64(),
	}
}

// cov flattens a coverage set as raw bitmaps (the block bits share the
// decision-prefix bit packing); a nil set is a zero/zero pair.
func (e *enc) cov(s *coverage.Set) {
	if s == nil {
		e.bits(nil)
		e.bytes(nil)
		return
	}
	blocks, branches := s.Snapshot()
	e.bits(blocks)
	e.bytes(branches)
}

// cov rebuilds a coverage set over m. With a nil map the bitmaps are
// consumed and discarded (the peer ran without a coverage universe view).
func (d *dec) cov(m *coverage.Map) *coverage.Set {
	blocks := d.bits()
	branches := d.bytes()
	if d.err != nil || m == nil || (len(blocks) == 0 && len(branches) == 0) {
		return nil
	}
	s := m.NewSet()
	if err := s.MergeBitmap(blocks, branches); err != nil {
		d.fail("%v", err)
		return nil
	}
	return s
}

// resultMsg carries one completed shard back to the coordinator: the
// payload for the lease's index-th prefix. Shipping one shard per frame —
// as each prefix completes — keeps every frame bounded by a single
// subtree's size regardless of how many shards a lease batches, and lets
// the coordinator bank partial batches from a worker that later dies.
type resultMsg struct {
	job   uint64
	lease uint64
	index uint64
	shard *harness.Shard
}

func encodeResult(m resultMsg) []byte {
	var e enc
	e.u64(m.job)
	e.u64(m.lease)
	e.u64(m.index)
	e.shard(m.shard)
	return e.b
}

// shard flattens one shard payload into the message.
func (e *enc) shard(sh *harness.Shard) {
	e.boolean(sh.Truncated)
	e.i64(int64(sh.Infeasible))
	e.i64(int64(sh.DepthTruncated))
	e.i64(sh.BranchQueries)
	e.stats(sh.Stats)
	e.cov(sh.Cov)
	e.u64(uint64(len(sh.Paths)))
	for i := range sh.Paths {
		p := &sh.Paths[i]
		e.bits(p.Decisions)
		e.boolean(p.Crashed)
		e.i64(int64(p.Branches))
		e.str(p.Cond.String())
		e.str(p.Template)
		e.str(p.Canonical)
		e.u64(uint64(len(p.Exprs)))
		for _, x := range p.Exprs {
			e.str(x.String())
		}
		names := make([]string, 0, len(p.Model))
		for n := range p.Model {
			names = append(names, n)
		}
		sort.Strings(names)
		e.u64(uint64(len(names)))
		for _, n := range names {
			e.str(n)
			e.u64(p.Model[n])
		}
		e.cov(p.Cov)
	}
}

// decodeResult rebuilds a result payload. covMap is the coordinator's
// coverage universe for the job's agent (nil drops coverage).
func decodeResult(payload []byte, covMap *coverage.Map) (resultMsg, error) {
	d := dec{b: payload}
	m := resultMsg{job: d.u64(), lease: d.u64(), index: d.u64()}
	m.shard = d.shard(covMap)
	return m, d.done()
}

// shard rebuilds one shard payload.
func (d *dec) shard(covMap *coverage.Map) *harness.Shard {
	sh := &harness.Shard{}
	sh.Truncated = d.boolean()
	sh.Infeasible = int(d.i64())
	sh.DepthTruncated = int(d.i64())
	sh.BranchQueries = d.i64()
	sh.Stats = d.stats()
	sh.Cov = d.cov(covMap)
	npaths := d.count("path", 8)
	for i := 0; i < npaths && d.err == nil; i++ {
		var p harness.ShardPath
		p.ID = i
		p.Decisions = d.bits()
		p.Crashed = d.boolean()
		p.Branches = int(d.i64())
		p.Cond = d.expr("cond")
		p.Template = d.str()
		p.Canonical = d.str()
		nexprs := d.count("expr", 1)
		for j := 0; j < nexprs && d.err == nil; j++ {
			p.Exprs = append(p.Exprs, d.expr("trace expr"))
		}
		nmodel := d.count("model entry", 2)
		if nmodel > 0 && d.err == nil {
			p.Model = make(sym.Assignment, nmodel)
			for j := 0; j < nmodel && d.err == nil; j++ {
				name := d.str()
				p.Model[name] = d.u64()
			}
		}
		p.Cov = d.cov(covMap)
		sh.Paths = append(sh.Paths, p)
	}
	return sh
}

// expr decodes one canonical s-expression.
func (d *dec) expr(what string) *sym.Expr {
	s := d.str()
	if d.err != nil {
		return nil
	}
	x, err := sym.Parse(s)
	if err != nil {
		d.fail("bad %s %q: %v", what, s, err)
		return nil
	}
	return x
}

// traceMsg ships one span segment — the worker's buffered spans since
// its previous trace frame — back to the coordinator (v5). Segments are
// drained and sent just before each prefix's result frame, so a worker
// that dies mid-batch has already shipped the spans of everything it
// completed. The payload is pure observability: the coordinator merges
// it into the active tracer (or drops it when tracing stopped) and the
// merge can never influence a result.
type traceMsg struct {
	job   uint64
	lease uint64
	seg   obs.Segment
}

func encodeTrace(m traceMsg) []byte {
	var e enc
	e.u64(m.job)
	e.u64(m.lease)
	e.segment(m.seg)
	return e.b
}

func decodeTrace(p []byte) (traceMsg, error) {
	d := dec{b: p}
	m := traceMsg{job: d.u64(), lease: d.u64()}
	m.seg = d.segment()
	return m, d.done()
}

// segment flattens one obs span segment into the payload.
func (e *enc) segment(s obs.Segment) {
	e.str(s.Process)
	e.i64(s.BaseUnixMicro)
	e.u64(s.Parent)
	e.u64(uint64(len(s.Events)))
	for _, ev := range s.Events {
		e.str(ev.Name)
		e.i64(ev.TS)
		e.i64(ev.Dur)
		e.i64(ev.TID)
		e.u64(ev.ID)
		e.u64(ev.Parent)
	}
}

// segment rebuilds one obs span segment.
func (d *dec) segment() obs.Segment {
	s := obs.Segment{Process: d.str(), BaseUnixMicro: d.i64(), Parent: d.u64()}
	n := d.count("trace event", 6)
	for i := 0; i < n && d.err == nil; i++ {
		s.Events = append(s.Events, obs.SegmentEvent{
			Name:   d.str(),
			TS:     d.i64(),
			Dur:    d.i64(),
			TID:    d.i64(),
			ID:     d.u64(),
			Parent: d.u64(),
		})
	}
	return s
}

// ErrVersionMismatch is returned by Work when the coordinator refuses this
// binary's protocol version (it received a reject frame). Callers treat it
// as a usage-level error: the fix is deploying matching binaries, not
// retrying.
var ErrVersionMismatch = errors.New("protocol version mismatch")

// errProtocol wraps peer misbehavior so connection handling can distinguish
// it from plain I/O errors.
var errProtocol = errors.New("dist: protocol error")

func protocolErr(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %v", errProtocol, err)
}
