// Package store implements the campaign result store: a content-addressed
// on-disk cache of phase-1 exploration results and phase-2 grouping
// constructions. It is what makes re-running a campaign cheap — the
// byte-identical determinism of explorations (any worker count, any
// distributed layout) means a cached result is indistinguishable from a
// fresh run, so a matrix re-run only explores cells whose inputs changed.
//
// Two kinds of entries live in a store directory:
//
//   - results/<hash>: one exploration result in the standard results-file
//     format, keyed by Key.Hash() — a SHA-256 over (agent, test, engine
//     config, code version). Changing any component (a different MaxPaths,
//     models on/off, a new binary) misses the cache by construction.
//     A sidecar <hash>.key file records the human-readable key.
//
//   - groups/<hash>: one grouped result (the §4.2 BalancedOr construction)
//     in the groups-file format, keyed by the *content hash* of the source
//     result (ResultHash) combined with the code version. Grouping is a
//     pure function of (result bytes, grouping code), so the cache applies
//     to any results file — including ones handed over from another
//     vendor — while a binary whose grouping algorithm changed can never
//     reuse a stale construction.
//
// Writes are atomic (temp file + rename), so concurrent campaign workers
// and crashed runs can never leave a torn entry; readers verify the magic
// line through the normal format parsers.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"sync"

	"github.com/soft-testing/soft/internal/group"
	"github.com/soft-testing/soft/internal/harness"
	"github.com/soft-testing/soft/internal/obs"
)

// Store metrics, aggregated across every open Store in the process.
// Observation only — cache decisions never read them.
var (
	mResultHits   = obs.NewCounter("soft_store_result_hits_total")
	mResultMisses = obs.NewCounter("soft_store_result_misses_total")
	mGroupHits    = obs.NewCounter("soft_store_group_hits_total")
	mGroupMisses  = obs.NewCounter("soft_store_group_misses_total")
	mBytesRead    = obs.NewCounter("soft_store_bytes_read_total")
	mBytesWritten = obs.NewCounter("soft_store_bytes_written_total")
)

// Config is the engine-configuration component of a result key: every
// option that can change exploration output (or how much of it exists).
type Config struct {
	MaxPaths      int
	MaxDepth      int
	Models        bool
	ClauseSharing bool
	CanonicalCut  bool
}

// Key identifies one cached exploration result.
type Key struct {
	Agent string
	Test  string
	// CodeVersion pins the code that produced the result: a cached result
	// is only valid while agent and engine code are unchanged. Use
	// DefaultCodeVersion for the running binary, or inject an explicit
	// version (build tag, image digest) in deployments.
	CodeVersion string
	// Scenario is the definition hash of a scenario-backed test (empty
	// for the built-in Table 1 suite, whose definitions the code version
	// already pins). Scenario definitions can change without the binary
	// changing, so the hash rides in the key: an edited scenario misses
	// the store by construction.
	Scenario string
	Config   Config
}

// String renders the key canonically — the exact bytes that are hashed.
func (k Key) String() string {
	s := fmt.Sprintf("agent=%q test=%q code=%q maxpaths=%d maxdepth=%d models=%t clausesharing=%t canonicalcut=%t",
		k.Agent, k.Test, k.CodeVersion,
		k.Config.MaxPaths, k.Config.MaxDepth,
		k.Config.Models, k.Config.ClauseSharing, k.Config.CanonicalCut)
	// Appended (not interleaved) so keys for the built-in suite render
	// exactly as they always did and stay warm across this change.
	if k.Scenario != "" {
		s += fmt.Sprintf(" scenario=%q", k.Scenario)
	}
	return s
}

// Hash is the key's content address.
func (k Key) Hash() string {
	sum := sha256.Sum256([]byte(k.String()))
	return hex.EncodeToString(sum[:])
}

// DefaultCodeVersion derives a code-version string for the running binary
// from, in order: the VCS revision in its build info (plus a +dirty marker
// for modified trees); a SHA-256 of the executable file itself ("exe-" +
// the first 16 hex digits) when there is no VCS stamp, so two different
// unstamped binaries — go test binaries, go run artifacts, vendored
// builds — can never share cache entries; the main module version; and
// only when the executable cannot even be read, "unversioned". The value
// is computed once per process.
func DefaultCodeVersion() string {
	codeVersionOnce.Do(func() {
		bi, _ := debug.ReadBuildInfo()
		codeVersion = codeVersionFrom(bi, executableHash)
	})
	return codeVersion
}

var (
	codeVersionOnce sync.Once
	codeVersion     string
)

// codeVersionFrom implements DefaultCodeVersion's fallback chain over
// injectable inputs so every tier is unit-testable.
func codeVersionFrom(bi *debug.BuildInfo, exeHash func() string) string {
	if bi != nil {
		var rev, modified string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					modified = "+dirty"
				}
			}
		}
		if rev != "" {
			return rev + modified
		}
	}
	if h := exeHash(); h != "" {
		return "exe-" + h[:16]
	}
	if bi != nil {
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			return v
		}
	}
	return "unversioned"
}

// executableHash returns the hex SHA-256 of the running executable's file
// contents, or "" when it cannot be determined.
func executableHash() string {
	exe, err := os.Executable()
	if err != nil {
		return ""
	}
	f, err := os.Open(exe)
	if err != nil {
		return ""
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return ""
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ResultHash is the content address of a serialized result: a SHA-256 over
// its canonical rendering with the wall-clock Elapsed field zeroed, so two
// runs of the same exploration hash identically. It keys the grouping
// cache.
func ResultHash(r *harness.SerializedResult) (string, error) {
	clone := *r
	clone.Elapsed = 0
	h := sha256.New()
	if err := clone.Write(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Store is one on-disk result store. Safe for concurrent use by any number
// of processes sharing the directory.
type Store struct {
	dir string
}

// Open creates (if needed) and opens a store directory.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"results", "groups"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) resultPath(hash string) string {
	return filepath.Join(s.dir, "results", hash)
}

// groupsPath derives the groups entry path from the source result's
// content hash and the code version — exploration output can be identical
// across binaries whose grouping construction changed, so the content hash
// alone would reuse stale constructions.
func (s *Store) groupsPath(resultHash, codeVersion string) string {
	sum := sha256.Sum256([]byte(resultHash + "|" + codeVersion))
	return filepath.Join(s.dir, "groups", hex.EncodeToString(sum[:]))
}

// GetResult looks a key up, returning (nil, false, nil) on a miss. A
// stored entry that fails to parse is treated as a miss (and the error
// returned), never as a result.
func (s *Store) GetResult(k Key) (*harness.SerializedResult, bool, error) {
	sp := obs.StartSpan("store:get-result")
	defer sp.End()
	f, err := os.Open(s.resultPath(k.Hash()))
	if os.IsNotExist(err) {
		mResultMisses.Inc()
		return nil, false, nil
	}
	if err != nil {
		mResultMisses.Inc()
		return nil, false, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	res, err := harness.ReadResults(f)
	if err != nil {
		mResultMisses.Inc()
		return nil, false, fmt.Errorf("store: corrupt entry %s: %w", k.Hash(), err)
	}
	mResultHits.Inc()
	if fi, err := f.Stat(); err == nil {
		mBytesRead.Add(fi.Size())
	}
	return res, true, nil
}

// PutResult stores a result under k, atomically. A concurrent Put of the
// same key is harmless — determinism makes the contents identical.
func (s *Store) PutResult(k Key, r *harness.SerializedResult) error {
	sp := obs.StartSpan("store:put-result")
	defer sp.End()
	hash := k.Hash()
	err := s.writeAtomic(s.resultPath(hash), func(f *os.File) error { return r.Write(f) })
	if err != nil {
		return err
	}
	// The sidecar is debugging metadata; its loss is harmless.
	os.WriteFile(s.resultPath(hash)+".key", []byte(k.String()+"\n"), 0o644)
	return nil
}

// GetGroups looks up a cached grouping by the source result's content
// hash (see ResultHash) and the code version that would construct it,
// returning (nil, false, nil) on a miss.
func (s *Store) GetGroups(resultHash, codeVersion string) (*group.Result, bool, error) {
	sp := obs.StartSpan("store:get-groups")
	defer sp.End()
	f, err := os.Open(s.groupsPath(resultHash, codeVersion))
	if os.IsNotExist(err) {
		mGroupMisses.Inc()
		return nil, false, nil
	}
	if err != nil {
		mGroupMisses.Inc()
		return nil, false, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	g, err := group.Read(f)
	if err != nil {
		mGroupMisses.Inc()
		return nil, false, fmt.Errorf("store: corrupt groups entry %s: %w", resultHash, err)
	}
	mGroupHits.Inc()
	if fi, err := f.Stat(); err == nil {
		mBytesRead.Add(fi.Size())
	}
	return g, true, nil
}

// PutGroups stores a grouping under (source result content hash, code
// version).
func (s *Store) PutGroups(resultHash, codeVersion string, g *group.Result) error {
	return s.writeAtomic(s.groupsPath(resultHash, codeVersion), func(f *os.File) error { return g.Write(f) })
}

// writeAtomic writes via a temp file in the same directory and renames
// into place, so a reader never observes a torn entry.
func (s *Store) writeAtomic(path string, write func(*os.File) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if fi, err := f.Stat(); err == nil {
		mBytesWritten.Add(fi.Size())
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Len counts stored result entries (sidecar key files excluded) — a
// convenience for tests and `soft matrix -v` reporting.
func (s *Store) Len() int {
	entries, err := os.ReadDir(filepath.Join(s.dir, "results"))
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && !strings.HasSuffix(e.Name(), ".key") && !strings.HasPrefix(e.Name(), ".") {
			n++
		}
	}
	return n
}
