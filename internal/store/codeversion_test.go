package store

import (
	"runtime/debug"
	"strings"
	"testing"
)

func buildInfo(settings map[string]string, modVersion string) *debug.BuildInfo {
	bi := &debug.BuildInfo{}
	bi.Main.Version = modVersion
	for k, v := range settings {
		bi.Settings = append(bi.Settings, debug.BuildSetting{Key: k, Value: v})
	}
	return bi
}

// TestCodeVersionFallbackChain pins the tier order: VCS stamp, then
// executable hash, then module version, then "unversioned".
func TestCodeVersionFallbackChain(t *testing.T) {
	hash := func() string { return strings.Repeat("ab", 32) }
	noHash := func() string { return "" }

	cases := []struct {
		name string
		bi   *debug.BuildInfo
		hash func() string
		want string
	}{
		{"vcs wins", buildInfo(map[string]string{"vcs.revision": "deadbeef"}, "v1.2.3"), hash, "deadbeef"},
		{"vcs dirty", buildInfo(map[string]string{"vcs.revision": "deadbeef", "vcs.modified": "true"}, ""), hash, "deadbeef+dirty"},
		{"exe hash before module version", buildInfo(nil, "v1.2.3"), hash, "exe-abababababababab"},
		{"exe hash without build info", nil, hash, "exe-abababababababab"},
		{"module version when unhashable", buildInfo(nil, "v1.2.3"), noHash, "v1.2.3"},
		{"devel version skipped", buildInfo(nil, "(devel)"), noHash, "unversioned"},
		{"nothing at all", nil, noHash, "unversioned"},
	}
	for _, tc := range cases {
		if got := codeVersionFrom(tc.bi, tc.hash); got != tc.want {
			t.Errorf("%s: codeVersionFrom = %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestCodeVersionNeverUnversionedForRealBinaries: the running test binary
// has no VCS stamp, but it has an executable to hash — the historic
// "unversioned" collision (two different unstamped binaries sharing every
// cache key) must be unreachable whenever os.Executable works.
func TestCodeVersionNeverUnversionedForRealBinaries(t *testing.T) {
	if h := executableHash(); h == "" {
		t.Skip("executable not hashable in this environment")
	}
	if v := DefaultCodeVersion(); v == "unversioned" {
		t.Fatalf("DefaultCodeVersion = %q despite a hashable executable", v)
	}
}

// TestUnstampedBinariesCannotCollide is the store-invalidation test for
// the old bug: two binaries that differ only in executable bytes derive
// different code versions, so a result cached by one is a miss for the
// other.
func TestUnstampedBinariesCannotCollide(t *testing.T) {
	binaryA := codeVersionFrom(nil, func() string { return strings.Repeat("aa", 32) })
	binaryB := codeVersionFrom(nil, func() string { return strings.Repeat("bb", 32) })
	if binaryA == binaryB {
		t.Fatalf("distinct executables derived the same code version %q", binaryA)
	}

	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := explore(t)
	keyA := baseKey()
	keyA.CodeVersion = binaryA
	if err := s.PutResult(keyA, res); err != nil {
		t.Fatal(err)
	}
	keyB := keyA
	keyB.CodeVersion = binaryB
	if _, ok, err := s.GetResult(keyB); err != nil || ok {
		t.Fatalf("binary B hit binary A's cache entry (ok=%t err=%v)", ok, err)
	}
	if _, ok, err := s.GetResult(keyA); err != nil || !ok {
		t.Fatalf("binary A missed its own entry (ok=%t err=%v)", ok, err)
	}
}

// TestExecutableHashStable: hashing the running binary is deterministic.
func TestExecutableHashStable(t *testing.T) {
	h1, h2 := executableHash(), executableHash()
	if h1 == "" {
		t.Skip("executable not hashable in this environment")
	}
	if h1 != h2 || len(h1) != 64 {
		t.Fatalf("executableHash unstable or malformed: %q vs %q", h1, h2)
	}
}

// TestManifestVersionSkew: a store stamped by one code version refuses a
// different one with ErrVersionSkew, accepts the same one, and can be
// migrated explicitly.
func TestManifestVersionSkew(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Manifest(); err != nil || ok {
		t.Fatalf("fresh store already has a manifest (ok=%t err=%v)", ok, err)
	}
	if err := s.EnsureCodeVersion("v1"); err != nil {
		t.Fatalf("stamping a fresh store: %v", err)
	}
	if err := s.EnsureCodeVersion("v1"); err != nil {
		t.Fatalf("re-opening with the same version: %v", err)
	}
	err = s.EnsureCodeVersion("v2")
	if err == nil {
		t.Fatal("version skew accepted")
	}
	if !IsVersionSkew(err) {
		t.Fatalf("skew error does not wrap ErrVersionSkew: %v", err)
	}
	for _, want := range []string{`"v1"`, `"v2"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("skew message %q does not name %s", err, want)
		}
	}
	if err := s.SetCodeVersion("v2"); err != nil {
		t.Fatalf("migrating: %v", err)
	}
	if err := s.EnsureCodeVersion("v2"); err != nil {
		t.Fatalf("after migration: %v", err)
	}
	m, ok, err := s.Manifest()
	if err != nil || !ok || m.CodeVersion != "v2" {
		t.Fatalf("manifest after migration: %+v ok=%t err=%v", m, ok, err)
	}
}
