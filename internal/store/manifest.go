package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// The MANIFEST file pins what a store directory was populated with: the
// store layout version and the code version of the first writer. Every
// entry's key already embeds its own code version, so mixed entries are
// never *wrong* — but because unstamped binaries used to share the
// "unversioned" key, and because a silently mismatched default turns every
// warm run into a full re-exploration, reuse across code versions is
// refused loudly (ErrVersionSkew) unless the caller migrates the manifest
// on purpose.
const (
	manifestName = "MANIFEST"
	// layoutVersion is bumped on any incompatible change to the store's
	// on-disk layout or to the entry formats it holds (results files,
	// groups files, key construction).
	layoutVersion = "soft-store v1"
)

// ErrVersionSkew reports a store whose manifest disagrees with the
// caller's code version (or layout). Callers surface it as a usage error:
// the fix is a matching -code-version, a fresh store directory, or an
// explicit migration.
var ErrVersionSkew = errors.New("store: version skew")

// IsVersionSkew reports whether err wraps ErrVersionSkew.
func IsVersionSkew(err error) bool { return errors.Is(err, ErrVersionSkew) }

// Manifest is the parsed MANIFEST content.
type Manifest struct {
	Layout      string
	CodeVersion string
}

func (s *Store) manifestPath() string {
	return filepath.Join(s.dir, manifestName)
}

// Manifest reads the store's manifest; ok=false when none exists yet.
func (s *Store) Manifest() (Manifest, bool, error) {
	data, err := os.ReadFile(s.manifestPath())
	if os.IsNotExist(err) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, fmt.Errorf("store: %w", err)
	}
	var m Manifest
	for _, line := range strings.Split(string(data), "\n") {
		switch {
		case strings.HasPrefix(line, "layout "):
			m.Layout = strings.TrimPrefix(line, "layout ")
		case strings.HasPrefix(line, "code "):
			m.CodeVersion = strings.TrimPrefix(line, "code ")
		}
	}
	if m.Layout == "" {
		return Manifest{}, false, fmt.Errorf("store: corrupt manifest %s", s.manifestPath())
	}
	return m, true, nil
}

// EnsureCodeVersion stamps a fresh store with (layout, codeVersion), and on
// an already-stamped store verifies both match — a mismatch returns an
// error wrapping ErrVersionSkew that names the two versions. It is the
// guard `soft matrix` and the campaign daemon run before touching a store,
// so a stale store can never silently mix results of different code.
func (s *Store) EnsureCodeVersion(codeVersion string) error {
	m, ok, err := s.Manifest()
	if err != nil {
		return err
	}
	if !ok {
		return s.SetCodeVersion(codeVersion)
	}
	if m.Layout != layoutVersion {
		return fmt.Errorf("%w: store %s has layout %q but this binary expects %q; use a fresh store directory",
			ErrVersionSkew, s.dir, m.Layout, layoutVersion)
	}
	if m.CodeVersion != codeVersion {
		return fmt.Errorf("%w: store %s was populated by code version %q but this run uses %q; pass -code-version %q to reuse it, -store-migrate to re-stamp it (old entries stay keyed by their own version), or a fresh -store directory",
			ErrVersionSkew, s.dir, m.CodeVersion, codeVersion, m.CodeVersion)
	}
	return nil
}

// SetCodeVersion (re)stamps the manifest with the current layout and the
// given code version, atomically — the explicit migration path after an
// intended code change.
func (s *Store) SetCodeVersion(codeVersion string) error {
	if strings.ContainsAny(codeVersion, "\n\r") {
		return fmt.Errorf("store: code version %q contains a line break", codeVersion)
	}
	content := fmt.Sprintf("layout %s\ncode %s\n", layoutVersion, codeVersion)
	return s.writeAtomic(s.manifestPath(), func(f *os.File) error {
		_, err := f.WriteString(content)
		return err
	})
}
