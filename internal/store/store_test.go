package store

import (
	"bytes"
	"testing"
	"time"

	"github.com/soft-testing/soft/internal/agents/refswitch"
	"github.com/soft-testing/soft/internal/group"
	"github.com/soft-testing/soft/internal/harness"
)

// explore produces a real serialized result to cache.
func explore(t *testing.T) *harness.SerializedResult {
	t.Helper()
	tt, ok := harness.TestByName("Packet Out")
	if !ok {
		t.Fatal("missing test Packet Out")
	}
	return harness.Explore(refswitch.New(), tt, harness.Options{WantModels: true, Workers: 1}).Serialized()
}

func baseKey() Key {
	return Key{
		Agent: "ref", Test: "Packet Out", CodeVersion: "v1",
		Config: Config{MaxPaths: 100, MaxDepth: 64, Models: true, CanonicalCut: true},
	}
}

// TestResultRoundTrip: a stored result reads back byte-identically.
func TestResultRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := explore(t)
	k := baseKey()

	if _, ok, err := s.GetResult(k); err != nil || ok {
		t.Fatalf("empty store returned a hit (ok=%t err=%v)", ok, err)
	}
	if err := s.PutResult(k, res); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.GetResult(k)
	if err != nil || !ok {
		t.Fatalf("stored result missing (ok=%t err=%v)", ok, err)
	}
	var want, have bytes.Buffer
	if err := res.Write(&want); err != nil {
		t.Fatal(err)
	}
	if err := got.Write(&have); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), have.Bytes()) {
		t.Fatal("cached result differs from the original")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

// TestKeyInvalidation is the satellite property: changing the agent, the
// code version, or any engine-config component (MaxPaths included) must
// miss the cache; the identical key must hit.
func TestKeyInvalidation(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := explore(t)
	k := baseKey()
	if err := s.PutResult(k, res); err != nil {
		t.Fatal(err)
	}

	if _, ok, _ := s.GetResult(baseKey()); !ok {
		t.Fatal("identical key missed the cache")
	}

	mutations := map[string]func(*Key){
		"agent":          func(k *Key) { k.Agent = "ovs" },
		"test":           func(k *Key) { k.Test = "FlowMod" },
		"code version":   func(k *Key) { k.CodeVersion = "v2" },
		"max paths":      func(k *Key) { k.Config.MaxPaths = 101 },
		"max depth":      func(k *Key) { k.Config.MaxDepth = 65 },
		"models":         func(k *Key) { k.Config.Models = false },
		"clause sharing": func(k *Key) { k.Config.ClauseSharing = true },
		"canonical cut":  func(k *Key) { k.Config.CanonicalCut = false },
	}
	for name, mutate := range mutations {
		k2 := baseKey()
		mutate(&k2)
		if k2.Hash() == baseKey().Hash() {
			t.Errorf("changing %s did not change the key hash", name)
		}
		if _, ok, err := s.GetResult(k2); err != nil || ok {
			t.Errorf("changing %s still hit the cache (ok=%t err=%v)", name, ok, err)
		}
	}
}

// TestResultHashIgnoresElapsed: two runs of the same exploration (distinct
// wall-clock) share a content hash; distinct results do not.
func TestResultHashIgnoresElapsed(t *testing.T) {
	res := explore(t)
	h1, err := ResultHash(res)
	if err != nil {
		t.Fatal(err)
	}
	clone := *res
	clone.Elapsed = res.Elapsed + 17*time.Millisecond
	h2, err := ResultHash(&clone)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("ResultHash depends on Elapsed")
	}
	other := *res
	other.Agent = "someone-else"
	h3, err := ResultHash(&other)
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Fatal("distinct results share a content hash")
	}
}

// TestGroupsRoundTrip: a cached grouping reads back identical to the fresh
// construction — same groups, same balanced conditions — so a cache hit is
// indistinguishable from re-grouping.
func TestGroupsRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := explore(t)
	g := group.Paths(res)
	hash, err := ResultHash(res)
	if err != nil {
		t.Fatal(err)
	}

	if _, ok, err := s.GetGroups(hash, "v1"); err != nil || ok {
		t.Fatalf("empty store returned a groups hit (ok=%t err=%v)", ok, err)
	}
	if err := s.PutGroups(hash, "v1", g); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.GetGroups(hash, "v1")
	if err != nil || !ok {
		t.Fatalf("stored groups missing (ok=%t err=%v)", ok, err)
	}
	// A binary with different grouping code must not reuse the entry.
	if _, ok, err := s.GetGroups(hash, "v2"); err != nil || ok {
		t.Fatalf("changed code version still hit the groups cache (ok=%t err=%v)", ok, err)
	}
	var want, have bytes.Buffer
	if err := g.Write(&want); err != nil {
		t.Fatal(err)
	}
	if err := got.Write(&have); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), have.Bytes()) {
		t.Fatal("cached grouping differs from fresh construction")
	}
	if len(got.Groups) != len(g.Groups) {
		t.Fatalf("group count %d, want %d", len(got.Groups), len(g.Groups))
	}
}

// TestDefaultCodeVersion just pins that the helper returns something
// stable and non-empty for this binary.
func TestDefaultCodeVersion(t *testing.T) {
	v1, v2 := DefaultCodeVersion(), DefaultCodeVersion()
	if v1 == "" || v1 != v2 {
		t.Fatalf("DefaultCodeVersion unstable: %q vs %q", v1, v2)
	}
}
