package store

import "testing"

// TestKeyStringPinned pins the cache key's rendered form byte-for-byte.
// The incremental solver stack (assumption-stack sessions, state merging,
// hash-consed interning) is deliberately invisible here: solver modes
// never change a cell's result, so a store warmed before the incremental
// work must keep answering after it — any field added to this string
// silently invalidates every existing store.
func TestKeyStringPinned(t *testing.T) {
	k := Key{
		Agent:       "ref",
		Test:        "Packet Out",
		CodeVersion: "v-test",
		Config: Config{
			MaxPaths:      100,
			MaxDepth:      32,
			Models:        true,
			ClauseSharing: false,
			CanonicalCut:  true,
		},
	}
	want := `agent="ref" test="Packet Out" code="v-test" maxpaths=100 maxdepth=32 models=true clausesharing=false canonicalcut=true`
	if got := k.String(); got != want {
		t.Fatalf("cache key rendering changed:\n want %s\n  got %s", want, got)
	}

	k.Scenario = "sha:abc"
	want += ` scenario="sha:abc"`
	if got := k.String(); got != want {
		t.Fatalf("scenario cache key rendering changed:\n want %s\n  got %s", want, got)
	}
}
