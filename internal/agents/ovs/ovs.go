// Package ovs models Open vSwitch 1.0.0 — the 80K-LoC production virtual
// switch the paper crosschecks against the Reference Switch (§5). The model
// reproduces OVS's interface-level decision structure; every deliberate
// divergence from the refswitch model is one side of a §5.1.2 finding:
//
//   - strict pre-validation of action arguments: VLAN ids must fit 12 bits,
//     ToS must have its two low bits clear, PCP must fit 3 bits; a failing
//     Packet Out or Flow Mod is silently ignored, whole ("Packet dropped
//     when action is invalid");
//   - output ports above the configured maximum are rejected with an error
//     ("Forwarding a packet to an invalid port"); a flow whose output
//     equals the match's in_port is accepted and silently drops packets;
//   - unknown buffer ids draw an error message, but a Flow Mod's flow is
//     installed anyway ("Lack of error messages");
//   - action validation runs before the buffer lookup — the reverse of the
//     reference switch ("Different order of message validation");
//   - statistics requests it cannot serve draw an error reply;
//   - no emergency flow entries; OFPP_NORMAL is supported ("Missing
//     features").
//
// OVS validates more finely than the reference switch, which is why its
// input space partitions 3-15x finer on packet-affecting tests (Table 2).
package ovs

import (
	"github.com/soft-testing/soft/internal/agents"
	"github.com/soft-testing/soft/internal/coverage"
	"github.com/soft-testing/soft/internal/dataplane"
	"github.com/soft-testing/soft/internal/flowtable"
	"github.com/soft-testing/soft/internal/openflow"
	"github.com/soft-testing/soft/internal/sym"
	"github.com/soft-testing/soft/internal/symbuf"
	"github.com/soft-testing/soft/internal/symexec"
	"github.com/soft-testing/soft/internal/trace"
)

// MaxPorts is OVS's configured maximum port number: output actions to
// higher (non-reserved) ports are rejected (§5.1.2).
const MaxPorts = 4

// DefaultMissSendLen is the default miss_send_len.
const DefaultMissSendLen = 128

// Switch is the Open vSwitch agent model.
type Switch struct {
	cov *coverage.Map
	b   blocks
}

type blocks struct {
	init, helloTx, connSetup               coverage.BlockID
	cli, cleanup, logging, ofproto, netdev coverage.BlockID

	dispatch, badVersion, badType                              coverage.BlockID
	hello, echo, barrier, features, getConfig, vendor, portMod coverage.BlockID
	setConfig                                                  coverage.BlockID

	poEntry, poValidate, poBufferErr, poApply                     coverage.BlockID
	valOutput, valVLAN, valPCP, valTos, valUnknown, valSilentDrop coverage.BlockID
	actOutPhys, actOutReserved, actSet                            coverage.BlockID

	fmEntry, fmParse, fmValidate, fmEmergErr, fmOverlap        coverage.BlockID
	fmAdd, fmModify, fmDelete, fmStrict, fmBadCmd, fmBufferErr coverage.BlockID

	statsEntry, statsDesc, statsFlow, statsAggr, statsTable coverage.BlockID
	statsPort, statsQueue, statsErr                         coverage.BlockID

	queueEntry, queueReply, queueBad coverage.BlockID

	pktEntry, pktMatch, pktMiss, pktApply, pktDropInPort coverage.BlockID

	brVersion, brType, brLength, brPOBuffer, brActType, brOutClass coverage.BranchID
	brVLANRange, brTosRange, brPCPRange, brFMCommand, brOutInPort  coverage.BranchID
	brFMEmerg, brFMOverlap, brFMBuffer, brStatsType, brStatsPort   coverage.BranchID
	brQueuePort, brPktMatch, brPktPriority, brMissLen, brDelMatch  coverage.BranchID
	brConn, brPktParse                                             coverage.BranchID
}

func init() {
	agents.Register("ovs", func() agents.Agent { return New() }, "openvswitch")
}

// New returns the Open vSwitch 1.0.0 model.
func New() *Switch {
	s := &Switch{cov: coverage.NewMap()}
	m := s.cov
	b := &s.b

	// OVS is a larger code base supporting several protocols; the OpenFlow
	// agent is one part. Extra never-covered regions (ofproto glue, netdev
	// backends) push per-test percentages below the reference switch's, as
	// in Table 4.
	b.init = m.Block("init", 120)
	b.helloTx = m.Block("hello_tx", 22)
	b.connSetup = m.Block("rconn_setup", 60)
	b.cli = m.Block("cli_appctl", 120)
	b.cleanup = m.Block("cleanup", 70)
	b.logging = m.Block("vlog", 60)
	b.ofproto = m.Block("ofproto_glue", 90)
	b.netdev = m.Block("netdev_backends", 100)

	b.dispatch = m.Block("dispatch", 26)
	b.badVersion = m.Block("bad_version", 8)
	b.badType = m.Block("bad_type", 8)
	b.hello = m.Block("hello_rx", 6)
	b.echo = m.Block("echo", 10)
	b.barrier = m.Block("barrier", 8)
	b.features = m.Block("features_reply", 26)
	b.getConfig = m.Block("get_config", 10)
	b.vendor = m.Block("vendor", 10)
	b.portMod = m.Block("port_mod", 20)
	b.setConfig = m.Block("set_config", 18)

	b.poEntry = m.Block("po_entry", 18)
	b.poValidate = m.Block("po_validate", 30)
	b.poBufferErr = m.Block("po_buffer_err", 10)
	b.poApply = m.Block("po_apply", 16)
	b.valOutput = m.Block("val_output", 18)
	b.valVLAN = m.Block("val_vlan", 12)
	b.valPCP = m.Block("val_pcp", 12)
	b.valTos = m.Block("val_tos", 12)
	b.valUnknown = m.Block("val_unknown", 8)
	b.valSilentDrop = m.Block("val_silent_drop", 8)
	b.actOutPhys = m.Block("act_out_phys", 12)
	b.actOutReserved = m.Block("act_out_reserved", 26)
	b.actSet = m.Block("act_set_field", 30)

	b.fmEntry = m.Block("fm_entry", 22)
	b.fmParse = m.Block("fm_parse_match", 36)
	b.fmValidate = m.Block("fm_validate", 30)
	b.fmEmergErr = m.Block("fm_emerg_unsupported", 8)
	b.fmOverlap = m.Block("fm_overlap", 14)
	b.fmAdd = m.Block("fm_add", 20)
	b.fmModify = m.Block("fm_modify", 22)
	b.fmDelete = m.Block("fm_delete", 22)
	b.fmStrict = m.Block("fm_strict", 16)
	b.fmBadCmd = m.Block("fm_bad_command", 8)
	b.fmBufferErr = m.Block("fm_buffer_err", 10)

	b.statsEntry = m.Block("stats_entry", 16)
	b.statsDesc = m.Block("stats_desc", 10)
	b.statsFlow = m.Block("stats_flow", 26)
	b.statsAggr = m.Block("stats_aggregate", 14)
	b.statsTable = m.Block("stats_table", 12)
	b.statsPort = m.Block("stats_port", 16)
	b.statsQueue = m.Block("stats_queue", 14)
	b.statsErr = m.Block("stats_error", 10)

	b.queueEntry = m.Block("queue_entry", 10)
	b.queueReply = m.Block("queue_reply", 12)
	b.queueBad = m.Block("queue_bad_port", 8)

	b.pktEntry = m.Block("pkt_entry", 20)
	b.pktMatch = m.Block("pkt_match", 30)
	b.pktMiss = m.Block("pkt_miss", 16)
	b.pktApply = m.Block("pkt_apply", 20)
	b.pktDropInPort = m.Block("pkt_drop_inport", 8)

	b.brVersion = m.BranchSite("version_ok")
	b.brConn = m.BranchSite("conn_established")
	b.brPktParse = m.BranchSite("pkt_parse")
	b.brType = m.BranchSite("msg_type")
	b.brLength = m.BranchSite("msg_length")
	b.brPOBuffer = m.BranchSite("po_buffer_id")
	b.brActType = m.BranchSite("action_type")
	b.brOutClass = m.BranchSite("output_port_class")
	b.brOutInPort = m.BranchSite("output_vs_inport")
	b.brVLANRange = m.BranchSite("vlan_range")
	b.brTosRange = m.BranchSite("tos_range")
	b.brPCPRange = m.BranchSite("pcp_range")
	b.brFMCommand = m.BranchSite("fm_command")
	b.brFMEmerg = m.BranchSite("fm_emerg_flag")
	b.brFMOverlap = m.BranchSite("fm_overlap_flag")
	b.brFMBuffer = m.BranchSite("fm_buffer_id")
	b.brStatsType = m.BranchSite("stats_type")
	b.brStatsPort = m.BranchSite("stats_port_valid")
	b.brQueuePort = m.BranchSite("queue_port")
	b.brPktMatch = m.BranchSite("pkt_match_entry")
	b.brPktPriority = m.BranchSite("pkt_priority_order")
	b.brMissLen = m.BranchSite("miss_send_len")
	b.brDelMatch = m.BranchSite("fm_delete_match")
	m.Seal()
	return s
}

// Name implements agents.Agent.
func (s *Switch) Name() string { return "Open vSwitch" }

// CovMap implements agents.Agent.
func (s *Switch) CovMap() *coverage.Map { return s.cov }

// NewInstance implements agents.Agent.
func (s *Switch) NewInstance() agents.Instance {
	return &inst{
		sw:          s,
		table:       flowtable.New(1024),
		flags:       sym.Const(16, uint64(openflow.FragNormal)),
		missSendLen: sym.Const(16, DefaultMissSendLen),
	}
}

type inst struct {
	sw          *Switch
	table       *flowtable.Table
	flags       *sym.Expr
	missSendLen *sym.Expr
}

// Handshake implements agents.Instance.
func (in *inst) Handshake(ctx *symexec.Context) {
	b := &in.sw.b
	ctx.Cover(b.init)
	ctx.Cover(b.helloTx)
	ctx.Cover(b.connSetup)
	ctx.BranchSite(b.brVersion, sym.Bool(false))
	ctx.BranchSite(b.brConn, sym.Bool(true))
	ctx.BranchSite(b.brLength, sym.Bool(false))
}

// HandleMessage implements agents.Instance.
func (in *inst) HandleMessage(ctx *symexec.Context, msg *symbuf.Buffer) {
	b := &in.sw.b
	ctx.Cover(b.dispatch)
	if ctx.BranchSite(b.brVersion, sym.Ne(msg.U8(agents.OffVersion), sym.Const(8, openflow.Version))) {
		ctx.Cover(b.badVersion)
		ctx.Emit(trace.Error(openflow.ErrBadRequest, openflow.BRCBadVersion))
		return
	}
	// OVS dispatches through a type table: one validity check, then the
	// handler. Invalid codes share a single rejection path.
	t := msg.U8(agents.OffType)
	if !ctx.BranchSite(b.brType, sym.Ult(t, sym.Const(8, openflow.NumTypes))) {
		ctx.Cover(b.badType)
		ctx.Emit(trace.Error(openflow.ErrBadRequest, openflow.BRCBadType))
		return
	}
	is := func(mt openflow.MsgType) bool {
		return ctx.BranchSite(b.brType, sym.EqConst(t, uint64(mt)))
	}
	switch {
	case is(openflow.TypeHello):
		ctx.Cover(b.hello)
	case is(openflow.TypeEchoRequest):
		ctx.Cover(b.echo)
		ctx.Emit(trace.Msg(openflow.TypeEchoReply))
	case is(openflow.TypeEchoReply):
		ctx.Cover(b.echo)
	case is(openflow.TypeVendor):
		ctx.Cover(b.vendor)
		ctx.Emit(trace.Error(openflow.ErrBadRequest, openflow.BRCBadVendor))
	case is(openflow.TypeFeaturesRequest):
		ctx.Cover(b.features)
		ctx.Emit(trace.NewBuilder("msg:FEATURES_REPLY").
			Textf(" n_tables=1 n_ports=%d", MaxPorts).Build())
	case is(openflow.TypeGetConfigRequest):
		ctx.Cover(b.getConfig)
		ctx.Emit(trace.NewBuilder("msg:GET_CONFIG_REPLY flags=").Expr(in.flags).
			Text(" miss_send_len=").Expr(in.missSendLen).Build())
	case is(openflow.TypeSetConfig):
		in.handleSetConfig(ctx, msg)
	case is(openflow.TypePacketOut):
		in.handlePacketOut(ctx, msg)
	case is(openflow.TypeFlowMod):
		in.handleFlowMod(ctx, msg)
	case is(openflow.TypePortMod):
		ctx.Cover(b.portMod)
		if !in.checkLen(ctx, msg, 32) {
			return
		}
	case is(openflow.TypeStatsRequest):
		in.handleStats(ctx, msg)
	case is(openflow.TypeBarrierRequest):
		ctx.Cover(b.barrier)
		ctx.Emit(trace.Msg(openflow.TypeBarrierReply))
	case is(openflow.TypeQueueGetConfigRequest):
		in.handleQueueConfig(ctx, msg)
	default:
		// Valid codes that are switch-to-controller messages.
		ctx.Cover(b.badType)
		ctx.Emit(trace.Error(openflow.ErrBadRequest, openflow.BRCBadType))
	}
}

func (in *inst) checkLen(ctx *symexec.Context, msg *symbuf.Buffer, minLen uint64) bool {
	b := &in.sw.b
	// Physical short read (the io layer delivered fewer bytes than the
	// handler's fixed part): always an error, no fork.
	if uint64(msg.Len()) < minLen {
		ctx.Emit(trace.Error(openflow.ErrBadRequest, openflow.BRCBadLen))
		return false
	}
	if ctx.BranchSite(b.brLength, sym.Ult(msg.U16(agents.OffLength), sym.Const(16, minLen))) {
		ctx.Emit(trace.Error(openflow.ErrBadRequest, openflow.BRCBadLen))
		return false
	}
	return true
}

func (in *inst) handleSetConfig(ctx *symexec.Context, msg *symbuf.Buffer) {
	b := &in.sw.b
	ctx.Cover(b.setConfig)
	if !in.checkLen(ctx, msg, openflow.SetConfigLen) {
		return
	}
	// OVS masks the fragment-handling flags to defined bits; the stored
	// miss_send_len is used verbatim. (The masking is invisible to the
	// Table 1 suite — Set Config shows zero inconsistencies in Table 3.)
	in.flags = sym.And(msg.U16(agents.OffSCFlags), sym.Const(16, uint64(openflow.FragMask)))
	in.missSendLen = msg.U16(agents.OffSCMissSendLen)
}

// validation is the outcome of OVS's strict action pre-validation.
type validation int

const (
	valOK validation = iota
	valErrored
	valSilentDrop
)

// handlePacketOut: OVS validates the action list FIRST; the buffer lookup
// happens after — the reverse of the reference switch ("Different order of
// message validation", §5.1.2).
func (in *inst) handlePacketOut(ctx *symexec.Context, msg *symbuf.Buffer) {
	b := &in.sw.b
	ctx.Cover(b.poEntry)
	if !in.checkLen(ctx, msg, openflow.PacketOutFixedLen) {
		return
	}
	actionsLen, ok := msg.U16(agents.OffPOActionsLen).ConstVal()
	if !ok {
		ctx.Emit(trace.Error(openflow.ErrBadRequest, openflow.BRCBadLen))
		return
	}
	starts, lens, okA := agents.ActionSlots(msg, agents.OffPOActions, int(actionsLen))
	if !okA {
		ctx.Emit(trace.Error(openflow.ErrBadAction, openflow.BACBadLen))
		return
	}
	var acts []flowtable.SymAction
	for i := range starts {
		acts = append(acts, agents.ParseAction(msg, starts[i], lens[i]))
	}
	ctx.Cover(b.poValidate)
	inPort := msg.U16(agents.OffPOInPort)
	switch in.validateActions(ctx, acts, lens) {
	case valErrored:
		return
	case valSilentDrop:
		// Strict validation failed on a value range: the whole message is
		// silently ignored ("Packet dropped when action is invalid").
		ctx.Cover(b.valSilentDrop)
		return
	}
	bufferID := msg.U32(agents.OffPOBufferID)
	if ctx.BranchSite(b.brPOBuffer, sym.Ne(bufferID, sym.Const(32, uint64(openflow.NoBuffer)))) {
		// Unknown buffer: OVS reports it.
		ctx.Cover(b.poBufferErr)
		ctx.Emit(trace.Error(openflow.ErrBadRequest, openflow.BRCBufferUnknown))
		return
	}
	ctx.Cover(b.poApply)
	pkt := packetFromPayload(msg, agents.OffPOActions+int(actionsLen))
	in.applyActions(ctx, pkt, acts, inPort, true)
}

// validateActions performs OVS's strict pre-validation pass.
func (in *inst) validateActions(ctx *symexec.Context, acts []flowtable.SymAction, lens []int) validation {
	b := &in.sw.b
	for i, a := range acts {
		t := a.Type
		is := func(at openflow.ActionType) bool {
			return ctx.BranchSite(b.brActType, sym.EqConst(t, uint64(at)))
		}
		switch {
		case is(openflow.ActOutput):
			ctx.Cover(b.valOutput)
			p := a.Arg16
			// Reserved ports are fine (including NORMAL and CONTROLLER);
			// physical ports must be within the configured maximum
			// ("Open vSwitch immediately returns an error when the action
			// defines an output port greater than a configurable maximum").
			bad := sym.LAnd(
				sym.Ult(p, sym.Const(16, uint64(openflow.PortMax))),
				sym.LOr(
					sym.EqConst(p, 0),
					sym.Ugt(p, sym.Const(16, MaxPorts)),
				),
			)
			if ctx.BranchSite(b.brOutClass, bad) {
				ctx.Emit(trace.Error(openflow.ErrBadAction, openflow.BACBadOutPort))
				return valErrored
			}
		case is(openflow.ActSetVLANVID):
			ctx.Cover(b.valVLAN)
			if ctx.BranchSite(b.brVLANRange, sym.Ugt(a.Arg16, sym.Const(16, 0x0fff))) {
				return valSilentDrop
			}
		case is(openflow.ActSetVLANPCP):
			ctx.Cover(b.valPCP)
			if ctx.BranchSite(b.brPCPRange, sym.Ugt(a.Arg8, sym.Const(8, 0x07))) {
				return valSilentDrop
			}
		case is(openflow.ActSetNWTos):
			ctx.Cover(b.valTos)
			if ctx.BranchSite(b.brTosRange, sym.Ne(sym.And(a.Arg8, sym.Const(8, 0x03)), sym.Const(8, 0))) {
				return valSilentDrop
			}
		case is(openflow.ActStripVLAN), is(openflow.ActSetDLSrc), is(openflow.ActSetDLDst),
			is(openflow.ActSetNWSrc), is(openflow.ActSetNWDst),
			is(openflow.ActSetTPSrc), is(openflow.ActSetTPDst):
			// Argument always acceptable.
		case lens[i] == 16 && is(openflow.ActEnqueue):
			ctx.Cover(b.valOutput)
		default:
			ctx.Cover(b.valUnknown)
			ctx.Emit(trace.Error(openflow.ErrBadAction, openflow.BACBadType))
			return valErrored
		}
	}
	return valOK
}

// applyActions executes a validated action list.
func (in *inst) applyActions(ctx *symexec.Context, pkt *dataplane.Packet, acts []flowtable.SymAction, inPort *sym.Expr, isPacketOut bool) {
	b := &in.sw.b
	out := pkt.Clone()
	for _, a := range acts {
		t := a.Type
		is := func(at openflow.ActionType) bool {
			return ctx.BranchSite(b.brActType, sym.EqConst(t, uint64(at)))
		}
		switch {
		case is(openflow.ActOutput):
			in.output(ctx, out, a.Arg16, inPort, isPacketOut)
		case is(openflow.ActSetVLANVID):
			ctx.Cover(b.actSet)
			out.VLAN = a.Arg16 // validated: fits 12 bits, applied raw
		case is(openflow.ActSetVLANPCP):
			ctx.Cover(b.actSet)
			out.PCP = a.Arg8
		case is(openflow.ActStripVLAN):
			ctx.Cover(b.actSet)
			out.VLAN = sym.Const(16, dataplane.VLANNone)
			out.PCP = sym.Const(8, 0)
		case is(openflow.ActSetDLSrc):
			ctx.Cover(b.actSet)
			out.EthSrc = a.Arg48
		case is(openflow.ActSetDLDst):
			ctx.Cover(b.actSet)
			out.EthDst = a.Arg48
		case is(openflow.ActSetNWSrc):
			ctx.Cover(b.actSet)
			out.NWSrc = a.Arg32
		case is(openflow.ActSetNWDst):
			ctx.Cover(b.actSet)
			out.NWDst = a.Arg32
		case is(openflow.ActSetNWTos):
			ctx.Cover(b.actSet)
			out.NWTos = a.Arg8
		case is(openflow.ActSetTPSrc):
			ctx.Cover(b.actSet)
			out.TPSrc = a.Arg16
		case is(openflow.ActSetTPDst):
			ctx.Cover(b.actSet)
			out.TPDst = a.Arg16
		case is(openflow.ActEnqueue):
			ctx.Cover(b.actSet)
			in.output(ctx, out, a.Arg16, inPort, isPacketOut)
		}
	}
}

// output emits the packet toward a validated port.
func (in *inst) output(ctx *symexec.Context, pkt *dataplane.Packet, port, inPort *sym.Expr, isPacketOut bool) {
	b := &in.sw.b
	cls := func(cond *sym.Expr) bool { return ctx.BranchSite(b.brOutClass, cond) }
	switch {
	case cls(sym.Ult(port, sym.Const(16, uint64(openflow.PortMax)))):
		ctx.Cover(b.actOutPhys)
		// Never send a packet back out its ingress port: OVS silently
		// drops it (the flow that the reference switch rejected at install
		// time instead — §5.1.2).
		if ctx.BranchSite(b.brOutInPort, sym.Eq(port, inPort)) {
			ctx.Cover(b.pktDropInPort)
			ctx.Emit(trace.Drop("output-to-ingress"))
			return
		}
		ctx.Emit(trace.PacketOut(port, pkt))
	case cls(sym.EqConst(port, uint64(openflow.PortInPort))):
		ctx.Cover(b.actOutReserved)
		ctx.Emit(trace.PacketOut(inPort, pkt))
	case cls(sym.EqConst(port, uint64(openflow.PortTable))):
		ctx.Cover(b.actOutReserved)
		if isPacketOut {
			in.lookupAndApply(ctx, pkt, false)
		} else {
			ctx.Emit(trace.Error(openflow.ErrBadAction, openflow.BACBadOutPort))
		}
	case cls(sym.EqConst(port, uint64(openflow.PortNormal))):
		// Supported: OVS bridges to the traditional forwarding path
		// ("Missing features" — on the reference switch side).
		ctx.Cover(b.actOutReserved)
		ctx.Emit(trace.PacketOut(sym.Const(16, uint64(openflow.PortNormal)), pkt))
	case cls(sym.EqConst(port, uint64(openflow.PortFlood))):
		ctx.Cover(b.actOutReserved)
		ctx.Emit(trace.PacketOut(sym.Const(16, uint64(openflow.PortFlood)), pkt))
	case cls(sym.EqConst(port, uint64(openflow.PortAll))):
		ctx.Cover(b.actOutReserved)
		ctx.Emit(trace.PacketOut(sym.Const(16, uint64(openflow.PortAll)), pkt))
	case cls(sym.EqConst(port, uint64(openflow.PortController))):
		// No crash here: OVS encapsulates and sends a PACKET_IN.
		ctx.Cover(b.actOutReserved)
		ctx.Emit(trace.PacketIn(openflow.ReasonAction, sym.Const(16, DefaultMissSendLen), pkt))
	case cls(sym.EqConst(port, uint64(openflow.PortLocal))):
		ctx.Cover(b.actOutReserved)
		ctx.Emit(trace.PacketOut(sym.Const(16, uint64(openflow.PortLocal)), pkt))
	default:
		ctx.Cover(b.actOutReserved)
		ctx.Emit(trace.Drop("output"))
	}
}

func (in *inst) handleFlowMod(ctx *symexec.Context, msg *symbuf.Buffer) {
	b := &in.sw.b
	ctx.Cover(b.fmEntry)
	if !in.checkLen(ctx, msg, openflow.FlowModFixedLen) {
		return
	}
	ctx.Cover(b.fmParse)
	e := agents.ParseMatch(msg, agents.OffFMMatch)
	e.Cookie = msg.U64(agents.OffFMCookie)
	e.IdleTimeout = msg.U16(agents.OffFMIdle)
	e.HardTimeout = msg.U16(agents.OffFMHard)
	e.Priority = msg.U16(agents.OffFMPriority)
	command := msg.U16(agents.OffFMCommand)
	bufferID := msg.U32(agents.OffFMBufferID)
	outPort := msg.U16(agents.OffFMOutPort)
	flags := msg.U16(agents.OffFMFlags)

	totalLen, ok := msg.U16(agents.OffLength).ConstVal()
	if !ok {
		totalLen = uint64(msg.Len())
	}
	starts, lens, okA := agents.ActionSlots(msg, agents.OffFMActions, int(totalLen)-agents.OffFMActions)
	if !okA {
		ctx.Emit(trace.Error(openflow.ErrBadAction, openflow.BACBadLen))
		return
	}
	for i := range starts {
		e.Actions = append(e.Actions, agents.ParseAction(msg, starts[i], lens[i]))
	}
	// Strict validation first (same validator as Packet Out): range
	// failures silently discard the whole flow mod, no error, no install.
	ctx.Cover(b.fmValidate)
	switch in.validateActions(ctx, e.Actions, lens) {
	case valErrored:
		return
	case valSilentDrop:
		ctx.Cover(b.valSilentDrop)
		return
	}
	// No emergency flow support ("Missing features", §5.1.2).
	if ctx.BranchSite(b.brFMEmerg, sym.Ne(sym.And(flags, sym.Const(16, uint64(openflow.FlagEmerg))), sym.Const(16, 0))) {
		ctx.Cover(b.fmEmergErr)
		ctx.Emit(trace.Error(openflow.ErrFlowModFailed, openflow.FMFCUnsupported))
		return
	}

	cmdIs := func(c openflow.FlowModCommand) bool {
		return ctx.BranchSite(b.brFMCommand, sym.EqConst(command, uint64(c)))
	}
	switch {
	case cmdIs(openflow.FCAdd):
		in.flowAdd(ctx, e, flags, bufferID)
	case cmdIs(openflow.FCModify), cmdIs(openflow.FCModifyStrict):
		in.flowModify(ctx, e, command, bufferID)
	case cmdIs(openflow.FCDelete), cmdIs(openflow.FCDeleteStrict):
		in.flowDelete(ctx, e, command, outPort)
	default:
		ctx.Cover(b.fmBadCmd)
		ctx.Emit(trace.Error(openflow.ErrFlowModFailed, openflow.FMFCBadCommand))
	}
}

func (in *inst) flowAdd(ctx *symexec.Context, e *flowtable.Entry, flags, bufferID *sym.Expr) {
	b := &in.sw.b
	ctx.Cover(b.fmAdd)
	if ctx.BranchSite(b.brFMOverlap, sym.Ne(sym.And(flags, sym.Const(16, uint64(openflow.FlagCheckOverlap))), sym.Const(16, 0))) {
		ctx.Cover(b.fmOverlap)
		for _, old := range in.table.Entries {
			if ctx.Branch(e.OverlapCond(old)) {
				ctx.Emit(trace.Error(openflow.ErrFlowModFailed, openflow.FMFCOverlap))
				return
			}
		}
	}
	// Note: no in_port == out_port rejection — OVS installs such flows and
	// drops matching packets at forwarding time (§5.1.2).
	if !in.table.Add(e) {
		ctx.Emit(trace.Error(openflow.ErrFlowModFailed, openflow.FMFCAllTablesFull))
		return
	}
	// Unknown buffer: OVS reports the error but the flow stays installed
	// ("Open vSwitch replies with an error message, but installs the flow
	// as well" — §5.1.2).
	if ctx.BranchSite(b.brFMBuffer, sym.Ne(bufferID, sym.Const(32, uint64(openflow.NoBuffer)))) {
		ctx.Cover(b.fmBufferErr)
		ctx.Emit(trace.Error(openflow.ErrBadRequest, openflow.BRCBufferUnknown))
	}
}

func (in *inst) flowModify(ctx *symexec.Context, e *flowtable.Entry, command, bufferID *sym.Expr) {
	b := &in.sw.b
	ctx.Cover(b.fmModify)
	strict := ctx.Branch(sym.EqConst(command, uint64(openflow.FCModifyStrict)))
	if strict {
		ctx.Cover(b.fmStrict)
	}
	modified := false
	for _, old := range in.table.Entries {
		var conds []*sym.Expr
		if strict {
			conds = e.IdenticalConds(old)
		} else {
			conds = e.SubsumesConds(old)
		}
		if branchAll(ctx, b.brDelMatch, conds) {
			old.Actions = e.Actions
			modified = true
		}
	}
	if !modified {
		in.table.Add(e)
	}
	if ctx.BranchSite(b.brFMBuffer, sym.Ne(bufferID, sym.Const(32, uint64(openflow.NoBuffer)))) {
		ctx.Cover(b.fmBufferErr)
		ctx.Emit(trace.Error(openflow.ErrBadRequest, openflow.BRCBufferUnknown))
	}
}

func (in *inst) flowDelete(ctx *symexec.Context, e *flowtable.Entry, command, outPort *sym.Expr) {
	b := &in.sw.b
	ctx.Cover(b.fmDelete)
	strict := ctx.Branch(sym.EqConst(command, uint64(openflow.FCDeleteStrict)))
	if strict {
		ctx.Cover(b.fmStrict)
	}
	filterByPort := ctx.Branch(sym.Ne(outPort, sym.Const(16, uint64(openflow.PortNone))))
	for i := 0; i < len(in.table.Entries); {
		old := in.table.Entries[i]
		var conds []*sym.Expr
		if strict {
			conds = e.IdenticalConds(old)
		} else {
			conds = e.SubsumesConds(old)
		}
		if !branchAll(ctx, b.brDelMatch, conds) {
			i++
			continue
		}
		cond := sym.Bool(true)
		if filterByPort {
			var hasOut *sym.Expr = sym.Bool(false)
			for _, a := range old.Actions {
				hasOut = sym.LOr(hasOut, sym.LAnd(
					sym.EqConst(a.Type, uint64(openflow.ActOutput)),
					sym.Eq(a.Arg16, outPort),
				))
			}
			cond = sym.LAnd(cond, hasOut)
		}
		if ctx.BranchSite(b.brDelMatch, cond) {
			in.table.Remove(i)
			continue
		}
		i++
	}
}

// branchAll takes the conjuncts of a match condition one branch at a time,
// short-circuiting on the first false — the field-loop shape of the real
// implementations.
func branchAll(ctx *symexec.Context, site coverage.BranchID, conds []*sym.Expr) bool {
	for _, c := range conds {
		if !ctx.BranchSite(site, c) {
			return false
		}
	}
	return true
}

func (in *inst) handleStats(ctx *symexec.Context, msg *symbuf.Buffer) {
	b := &in.sw.b
	ctx.Cover(b.statsEntry)
	if !in.checkLen(ctx, msg, openflow.StatsRequestFixedLen) {
		return
	}
	st := msg.U16(agents.OffStatsType)
	is := func(t openflow.StatsType) bool {
		return ctx.BranchSite(b.brStatsType, sym.EqConst(st, uint64(t)))
	}
	switch {
	case is(openflow.StatsDesc):
		ctx.Cover(b.statsDesc)
		ctx.Emit(trace.NewBuilder("msg:STATS_REPLY/DESC ").
			Text("mfr=Nicira sw=openvswitch").Build())
	case is(openflow.StatsFlow):
		ctx.Cover(b.statsFlow)
		ev := trace.NewBuilder("msg:STATS_REPLY/FLOW")
		for _, e := range in.table.Entries {
			ev.Text(" flow{prio=").Expr(e.Priority).Text(" cookie=").Expr(e.Cookie).Text("}")
		}
		ctx.Emit(ev.Build())
	case is(openflow.StatsAggregate):
		ctx.Cover(b.statsAggr)
		ctx.Emit(trace.NewBuilder("msg:STATS_REPLY/AGGREGATE").
			Textf(" flows=%d", in.table.Len()).Build())
	case is(openflow.StatsTable):
		ctx.Cover(b.statsTable)
		ctx.Emit(trace.NewBuilder("msg:STATS_REPLY/TABLE").
			Textf(" active=%d max=%d", in.table.Len(), in.table.Capacity).Build())
	case is(openflow.StatsPort):
		ctx.Cover(b.statsPort)
		if msg.Len() < agents.OffStatsBody+2 {
			ctx.Emit(trace.Error(openflow.ErrBadRequest, openflow.BRCBadLen))
			return
		}
		port := msg.U16(agents.OffStatsBody)
		valid := sym.LOr(
			sym.LAnd(sym.Uge(port, sym.Const(16, 1)), sym.Ule(port, sym.Const(16, MaxPorts))),
			sym.EqConst(port, uint64(openflow.PortNone)),
		)
		if ctx.BranchSite(b.brStatsPort, valid) {
			ctx.Emit(trace.NewBuilder("msg:STATS_REPLY/PORT port=").Expr(port).Build())
		} else {
			// OVS answers what it cannot serve with an explicit error —
			// unlike the reference switch's silence (§5.1.2).
			ctx.Cover(b.statsErr)
			ctx.Emit(trace.Error(openflow.ErrBadRequest, openflow.BRCEperm))
		}
	case is(openflow.StatsQueue):
		ctx.Cover(b.statsQueue)
		ctx.Emit(trace.NewBuilder("msg:STATS_REPLY/QUEUE").Build())
	default:
		// VENDOR and unknown types: explicit error reply ("Open vSwitch
		// sends an error in response to an invalid or unknown request").
		ctx.Cover(b.statsErr)
		ctx.Emit(trace.Error(openflow.ErrBadRequest, openflow.BRCBadStat))
	}
}

func (in *inst) handleQueueConfig(ctx *symexec.Context, msg *symbuf.Buffer) {
	b := &in.sw.b
	ctx.Cover(b.queueEntry)
	if !in.checkLen(ctx, msg, openflow.QueueGetConfigRequestLen) {
		return
	}
	// No crash for port 0: it falls into the invalid-port error path.
	port := msg.U16(agents.OffQGCPort)
	valid := sym.LAnd(
		sym.Uge(port, sym.Const(16, 1)),
		sym.Ule(port, sym.Const(16, MaxPorts)),
	)
	if ctx.BranchSite(b.brQueuePort, valid) {
		ctx.Cover(b.queueReply)
		ctx.Emit(trace.NewBuilder("msg:QUEUE_GET_CONFIG_REPLY port=").Expr(port).Build())
		return
	}
	ctx.Cover(b.queueBad)
	ctx.Emit(trace.Error(openflow.ErrQueueOpFailed, openflow.QOFCBadPort))
}

// HandlePacket implements agents.Instance.
func (in *inst) HandlePacket(ctx *symexec.Context, pkt *dataplane.Packet) {
	in.lookupAndApply(ctx, pkt, true)
}

func (in *inst) lookupAndApply(ctx *symexec.Context, pkt *dataplane.Packet, allowMiss bool) {
	b := &in.sw.b
	ctx.Cover(b.pktEntry)
	// Flow extraction (OVS's flow_extract): classify headers up front;
	// symbolic probe fields fork here.
	if ctx.BranchSite(b.brPktParse, pkt.IsIPv4()) {
		proto := pkt.MatchNWProto()
		if !ctx.BranchSite(b.brPktParse, sym.EqConst(proto, dataplane.ProtoTCP)) {
			if !ctx.BranchSite(b.brPktParse, sym.EqConst(proto, dataplane.ProtoUDP)) {
				ctx.BranchSite(b.brPktParse, sym.EqConst(proto, dataplane.ProtoICMP))
			}
		}
	}
	ctx.BranchSite(b.brPktParse, pkt.HasVLANTag())
	ctx.Cover(b.pktMatch)
	order := in.priorityOrder(ctx)
	for _, idx := range order {
		e := in.table.Entries[idx]
		if branchAll(ctx, b.brPktMatch, e.MatchConds(pkt)) {
			ctx.Cover(b.pktApply)
			e.Packets++
			if len(e.Actions) == 0 {
				ctx.Emit(trace.Drop("probe"))
				return
			}
			in.applyActions(ctx, pkt, e.Actions, pkt.InPort, false)
			return
		}
	}
	if !allowMiss {
		ctx.Emit(trace.Drop("probe"))
		return
	}
	ctx.Cover(b.pktMiss)
	pktLen := uint64(len(pkt.Serialize(nil)))
	var dataLen *sym.Expr
	if ctx.BranchSite(b.brMissLen, sym.Ult(in.missSendLen, sym.Const(16, pktLen))) {
		dataLen = in.missSendLen
	} else {
		dataLen = sym.Const(16, pktLen)
	}
	ctx.Emit(trace.PacketIn(openflow.ReasonNoMatch, dataLen, pkt))
}

func (in *inst) priorityOrder(ctx *symexec.Context) []int {
	b := &in.sw.b
	n := len(in.table.Entries)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			a := in.table.Entries[order[j-1]]
			bEnt := in.table.Entries[order[j]]
			if ctx.BranchSite(b.brPktPriority, sym.Ult(a.Priority, bEnt.Priority)) {
				order[j-1], order[j] = order[j], order[j-1]
			} else {
				break
			}
		}
	}
	return order
}

// packetFromPayload decodes a Packet Out payload as an L2 frame.
func packetFromPayload(msg *symbuf.Buffer, off int) *dataplane.Packet {
	n := msg.Len() - off
	if n <= 0 {
		return &dataplane.Packet{
			EthDst:  sym.Const(48, 0),
			EthSrc:  sym.Const(48, 0),
			VLAN:    sym.Const(16, dataplane.VLANNone),
			PCP:     sym.Const(8, 0),
			EthType: sym.Const(16, 0),
		}
	}
	get := func(off2, n2, w int) *sym.Expr {
		if off2+n2 <= msg.Len() {
			parts := make([]*sym.Expr, n2)
			for i := 0; i < n2; i++ {
				parts[i] = msg.Byte(off2 + i)
			}
			return sym.ConcatAll(parts...)
		}
		return sym.Const(w, 0)
	}
	return &dataplane.Packet{
		EthDst:  get(off, 6, 48),
		EthSrc:  get(off+6, 6, 48),
		VLAN:    sym.Const(16, dataplane.VLANNone),
		PCP:     sym.Const(8, 0),
		EthType: get(off+12, 2, 16),
	}
}
