// These tests pin each documented behavioral quirk (§5.1.2 of the paper)
// to the agent model responsible for it, using fully concrete inputs so
// every run is a single path whose trace is directly assertable.
package agents_test

import (
	"strings"
	"testing"

	"github.com/soft-testing/soft/internal/agents"
	"github.com/soft-testing/soft/internal/agents/modified"
	"github.com/soft-testing/soft/internal/agents/ovs"
	"github.com/soft-testing/soft/internal/agents/refswitch"
	"github.com/soft-testing/soft/internal/dataplane"
	"github.com/soft-testing/soft/internal/openflow"
	"github.com/soft-testing/soft/internal/symbuf"
	"github.com/soft-testing/soft/internal/symexec"
	"github.com/soft-testing/soft/internal/trace"
)

// run drives one agent instance over concrete wire messages and/or probes
// and returns the single path's canonical trace.
func run(t *testing.T, a agents.Agent, msgs []openflow.Message, probes ...*dataplane.Packet) string {
	t.Helper()
	eng := &symexec.Engine{CovMap: a.CovMap()}
	res := eng.Run(func(ctx *symexec.Context) {
		in := a.NewInstance()
		in.Handshake(ctx)
		for _, m := range msgs {
			in.HandleMessage(ctx, symbuf.FromBytes(m.Serialize()))
		}
		for _, p := range probes {
			in.HandlePacket(ctx, p)
		}
	})
	if len(res.Paths) != 1 {
		t.Fatalf("concrete input explored %d paths, want 1", len(res.Paths))
	}
	p := res.Paths[0]
	return trace.FromOutputs(p.Outputs, p.Crashed).Canonical()
}

func packetOut(actions ...openflow.Action) *openflow.PacketOut {
	return &openflow.PacketOut{
		BufferID: openflow.NoBuffer,
		InPort:   1,
		Actions:  actions,
		Data:     []byte{0, 0, 0, 0, 0, 0xaa, 0, 0, 0, 0, 0, 0xbb, 0x88, 0xb5},
	}
}

func flowModAdd(actions ...openflow.Action) *openflow.FlowMod {
	return &openflow.FlowMod{
		Match:    openflow.MatchAll(),
		Command:  openflow.FCAdd,
		Priority: 0x8000,
		BufferID: openflow.NoBuffer,
		OutPort:  openflow.PortNone,
		Actions:  actions,
	}
}

func TestRefCrashOnPacketOutToController(t *testing.T) {
	got := run(t, refswitch.New(),
		[]openflow.Message{packetOut(&openflow.ActionOutput{Port: openflow.PortController})})
	if !strings.Contains(got, "crash") {
		t.Fatalf("ref must crash on Packet Out to OFPP_CONTROLLER, got %q", got)
	}
}

func TestOVSHandlesPacketOutToController(t *testing.T) {
	got := run(t, ovs.New(),
		[]openflow.Message{packetOut(&openflow.ActionOutput{Port: openflow.PortController})})
	if strings.Contains(got, "crash") {
		t.Fatalf("ovs must not crash: %q", got)
	}
	if !strings.Contains(got, "pkt-in") {
		t.Fatalf("ovs must encapsulate to the controller, got %q", got)
	}
}

func TestRefCrashOnSetVLANInPacketOut(t *testing.T) {
	got := run(t, refswitch.New(),
		[]openflow.Message{packetOut(&openflow.ActionSetVLANVID{VLANVID: 5})})
	if !strings.Contains(got, "crash") {
		t.Fatalf("ref must crash on set_vlan_vid in Packet Out, got %q", got)
	}
}

func TestRefCrashOnQueueConfigPortZero(t *testing.T) {
	got := run(t, refswitch.New(),
		[]openflow.Message{&openflow.QueueGetConfigRequest{Port: 0}})
	if !strings.Contains(got, "crash") {
		t.Fatalf("ref must crash on queue config for port 0, got %q", got)
	}
	got = run(t, ovs.New(), []openflow.Message{&openflow.QueueGetConfigRequest{Port: 0}})
	if !strings.Contains(got, "ERROR/QUEUE_OP_FAILED") {
		t.Fatalf("ovs must reject port 0 with an error, got %q", got)
	}
}

func TestBufferIDValidationOrder(t *testing.T) {
	// Packet Out with unknown buffer AND invalid output port: ref checks
	// the buffer first (and swallows the error — silence); OVS validates
	// actions first (error BAD_OUT_PORT). "Different order of message
	// validation" (§5.1.2).
	po := packetOut(&openflow.ActionOutput{Port: 77}) // 77 > ovs MaxPorts
	po.BufferID = 42
	ref := run(t, refswitch.New(), []openflow.Message{po})
	if ref != "<silent>" {
		t.Fatalf("ref must be silent (buffer checked first, error unpropagated), got %q", ref)
	}
	ov := run(t, ovs.New(), []openflow.Message{po})
	if !strings.Contains(ov, "ERROR/BAD_ACTION/4") {
		t.Fatalf("ovs must reject the port first, got %q", ov)
	}
}

func TestFlowModBufferBehavior(t *testing.T) {
	// Unknown buffer on Flow Mod: ref installs silently; OVS errors AND
	// installs ("Lack of error messages").
	fm := flowModAdd(&openflow.ActionOutput{Port: 2})
	fm.BufferID = 42
	probe := dataplane.TCPProbe(1)

	ref := run(t, refswitch.New(), []openflow.Message{fm}, probe)
	if strings.Contains(ref, "ERROR") {
		t.Fatalf("ref must not send an error, got %q", ref)
	}
	if !strings.Contains(ref, "pkt-out:port=") {
		t.Fatalf("ref must still install the flow (probe forwarded), got %q", ref)
	}

	ov := run(t, ovs.New(), []openflow.Message{fm}, probe)
	if !strings.Contains(ov, "ERROR/BAD_REQUEST/8") {
		t.Fatalf("ovs must report the unknown buffer, got %q", ov)
	}
	if !strings.Contains(ov, "pkt-out:port=") {
		t.Fatalf("ovs must install the flow anyway, got %q", ov)
	}
}

func TestVLANValidationStrictness(t *testing.T) {
	// set_vlan_vid 0x1fff via Flow Mod: ref auto-masks and forwards with
	// vlan 0xfff; OVS silently ignores the whole message ("Packet dropped
	// when action is invalid").
	fm := flowModAdd(
		&openflow.ActionSetVLANVID{VLANVID: 0x1fff},
		&openflow.ActionOutput{Port: 2},
	)
	probe := dataplane.TCPProbe(1)

	ref := run(t, refswitch.New(), []openflow.Message{fm}, probe)
	if !strings.Contains(ref, "vlan=0xfff") {
		t.Fatalf("ref must forward with the auto-masked vlan, got %q", ref)
	}
	ov := run(t, ovs.New(), []openflow.Message{fm}, probe)
	if !strings.Contains(ov, "pkt-in") {
		// The flow was never installed: the probe misses to the controller.
		t.Fatalf("ovs must silently ignore the flow mod (probe misses), got %q", ov)
	}
	// In range, both install.
	ok := flowModAdd(&openflow.ActionSetVLANVID{VLANVID: 100}, &openflow.ActionOutput{Port: 2})
	ov = run(t, ovs.New(), []openflow.Message{ok}, probe)
	if !strings.Contains(ov, "vlan=0x64") {
		t.Fatalf("ovs must apply an in-range vlan raw, got %q", ov)
	}
}

func TestTosValidation(t *testing.T) {
	// ToS with low bits set: ref masks to 0xfc-aligned; OVS drops the mod.
	fm := flowModAdd(&openflow.ActionSetNWTos{Tos: 0x57}, &openflow.ActionOutput{Port: 2})
	probe := dataplane.TCPProbe(1)
	ref := run(t, refswitch.New(), []openflow.Message{fm}, probe)
	if !strings.Contains(ref, "nw_tos=0x54") {
		t.Fatalf("ref must forward with tos&0xfc = 0x54, got %q", ref)
	}
	ov := run(t, ovs.New(), []openflow.Message{fm}, probe)
	if !strings.Contains(ov, "pkt-in") {
		t.Fatalf("ovs must silently drop the flow mod, got %q", ov)
	}
}

func TestInPortEqualsOutPort(t *testing.T) {
	// Flow whose output equals the match's in_port: ref rejects with an
	// error; OVS installs and drops matching packets ("Forwarding a packet
	// to an invalid port").
	fm := flowModAdd(&openflow.ActionOutput{Port: 1})
	fm.Match.Wildcards = openflow.FWAll &^ openflow.FWInPort
	fm.Match.InPort = 1
	probe := dataplane.TCPProbe(1)

	ref := run(t, refswitch.New(), []openflow.Message{fm}, probe)
	if !strings.Contains(ref, "ERROR/BAD_ACTION/4") {
		t.Fatalf("ref must reject out==in_port, got %q", ref)
	}
	ov := run(t, ovs.New(), []openflow.Message{fm}, probe)
	if !strings.Contains(ov, "drop:output-to-ingress") {
		t.Fatalf("ovs must install and drop matching packets, got %q", ov)
	}
}

func TestPortRangeValidation(t *testing.T) {
	// Output to a high physical port: ref sends anyway (no max-port
	// validation); OVS errors.
	po := packetOut(&openflow.ActionOutput{Port: 500})
	ref := run(t, refswitch.New(), []openflow.Message{po})
	if !strings.Contains(ref, "pkt-out:port=0x1f4") {
		t.Fatalf("ref must emit to port 500, got %q", ref)
	}
	ov := run(t, ovs.New(), []openflow.Message{po})
	if !strings.Contains(ov, "ERROR/BAD_ACTION/4") {
		t.Fatalf("ovs must reject port 500, got %q", ov)
	}
}

func TestNormalPortSupport(t *testing.T) {
	// OFPP_NORMAL: missing feature on the reference switch side.
	po := packetOut(&openflow.ActionOutput{Port: openflow.PortNormal})
	ref := run(t, refswitch.New(), []openflow.Message{po})
	if !strings.Contains(ref, "ERROR/BAD_ACTION") {
		t.Fatalf("ref must reject OFPP_NORMAL, got %q", ref)
	}
	ov := run(t, ovs.New(), []openflow.Message{po})
	if !strings.Contains(ov, "pkt-out:port=NORMAL") {
		t.Fatalf("ovs must bridge to the normal path, got %q", ov)
	}
}

func TestEmergencyFlowSupport(t *testing.T) {
	// Emergency entries: missing feature on the OVS side.
	fm := flowModAdd(&openflow.ActionOutput{Port: 2})
	fm.Flags = openflow.FlagEmerg
	ref := run(t, refswitch.New(), []openflow.Message{fm})
	if strings.Contains(ref, "ERROR") {
		t.Fatalf("ref must accept emergency flows, got %q", ref)
	}
	ov := run(t, ovs.New(), []openflow.Message{fm})
	if !strings.Contains(ov, "ERROR/FLOW_MOD_FAILED/5") {
		t.Fatalf("ovs must reject emergency flows as unsupported, got %q", ov)
	}
	// Emergency with a non-zero timeout is invalid even on ref.
	bad := flowModAdd(&openflow.ActionOutput{Port: 2})
	bad.Flags = openflow.FlagEmerg
	bad.IdleTimeout = 10
	ref = run(t, refswitch.New(), []openflow.Message{bad})
	if !strings.Contains(ref, "ERROR/FLOW_MOD_FAILED/3") {
		t.Fatalf("ref must reject emergency timeouts, got %q", ref)
	}
}

func TestStatsSilentVsError(t *testing.T) {
	// Unknown stats type: ref silent, ovs errors ("Statistics requests
	// silently ignored").
	sr := &openflow.StatsRequest{StatsType: openflow.StatsType(9), Body: make([]byte, 8)}
	ref := run(t, refswitch.New(), []openflow.Message{sr})
	if ref != "<silent>" {
		t.Fatalf("ref must silently ignore unknown stats, got %q", ref)
	}
	ov := run(t, ovs.New(), []openflow.Message{sr})
	if !strings.Contains(ov, "ERROR/BAD_REQUEST/2") {
		t.Fatalf("ovs must reject unknown stats, got %q", ov)
	}
}

func TestEchoAndBarrier(t *testing.T) {
	for _, a := range []agents.Agent{refswitch.New(), ovs.New()} {
		got := run(t, a, []openflow.Message{
			&openflow.EchoRequest{Data: []byte("x")},
			&openflow.BarrierRequest{},
		})
		if !strings.Contains(got, "ECHO_REPLY") || !strings.Contains(got, "BARRIER_REPLY") {
			t.Fatalf("%s: bad echo/barrier handling: %q", a.Name(), got)
		}
	}
}

func TestBadVersionRejected(t *testing.T) {
	wire := (&openflow.Hello{}).Serialize()
	wire[0] = 0x04
	for _, a := range []agents.Agent{refswitch.New(), ovs.New()} {
		eng := &symexec.Engine{CovMap: a.CovMap()}
		res := eng.Run(func(ctx *symexec.Context) {
			in := a.NewInstance()
			in.Handshake(ctx)
			in.HandleMessage(ctx, symbuf.FromBytes(wire))
		})
		got := trace.FromOutputs(res.Paths[0].Outputs, res.Paths[0].Crashed).Canonical()
		if !strings.Contains(got, "ERROR/BAD_REQUEST/0") {
			t.Fatalf("%s: bad version must be rejected, got %q", a.Name(), got)
		}
	}
}

func TestFlowModDeleteRemovesEntry(t *testing.T) {
	add := flowModAdd(&openflow.ActionOutput{Port: 2})
	del := &openflow.FlowMod{
		Match:    openflow.MatchAll(),
		Command:  openflow.FCDelete,
		BufferID: openflow.NoBuffer,
		OutPort:  openflow.PortNone,
	}
	probe := dataplane.TCPProbe(1)
	for _, a := range []agents.Agent{refswitch.New(), ovs.New()} {
		got := run(t, a, []openflow.Message{add, del}, probe)
		if !strings.Contains(got, "pkt-in") {
			t.Fatalf("%s: probe must miss after delete, got %q", a.Name(), got)
		}
	}
}

func TestFlowModModifyReplacesActions(t *testing.T) {
	add := flowModAdd(&openflow.ActionOutput{Port: 2})
	mod := flowModAdd(&openflow.ActionOutput{Port: 3})
	mod.Command = openflow.FCModify
	probe := dataplane.TCPProbe(1)
	for _, a := range []agents.Agent{refswitch.New(), ovs.New()} {
		got := run(t, a, []openflow.Message{add, mod}, probe)
		if !strings.Contains(got, "pkt-out:port=0x3") {
			t.Fatalf("%s: modified flow must output to 3, got %q", a.Name(), got)
		}
	}
}

func TestCheckOverlapFlag(t *testing.T) {
	a1 := flowModAdd(&openflow.ActionOutput{Port: 2})
	a2 := flowModAdd(&openflow.ActionOutput{Port: 3})
	a2.Flags = openflow.FlagCheckOverlap
	for _, a := range []agents.Agent{refswitch.New(), ovs.New()} {
		got := run(t, a, []openflow.Message{a1, a2})
		if !strings.Contains(got, "ERROR/FLOW_MOD_FAILED/1") {
			t.Fatalf("%s: overlapping add must fail, got %q", a.Name(), got)
		}
	}
}

func TestModifiedSwitchQuirks(t *testing.T) {
	mod := modified.New()
	// Flood rejection.
	got := run(t, mod, []openflow.Message{packetOut(&openflow.ActionOutput{Port: openflow.PortFlood})})
	if !strings.Contains(got, "ERROR/BAD_ACTION") {
		t.Fatalf("modified switch must reject FLOOD, got %q", got)
	}
	// Port-zero error code change.
	got = run(t, mod, []openflow.Message{packetOut(&openflow.ActionOutput{Port: 0})})
	if !strings.Contains(got, "ERROR/BAD_ACTION/5") {
		t.Fatalf("modified switch must use BAD_ARGUMENT for port 0, got %q", got)
	}
	// High-priority adds silently dropped (visible via probe miss).
	fm := flowModAdd(&openflow.ActionOutput{Port: 2})
	fm.Priority = 0xf800
	got = run(t, mod, []openflow.Message{fm}, dataplane.TCPProbe(1))
	if !strings.Contains(got, "pkt-in") {
		t.Fatalf("modified switch must drop the high-priority add, got %q", got)
	}
}

func TestModifiedIdleTimerQuirkInvisibleToSOFT(t *testing.T) {
	// The timer path exists and differs — but no SOFT test can drive it,
	// which is exactly why the paper's tool misses this modification.
	stock := refswitch.New()
	eng := &symexec.Engine{CovMap: stock.CovMap()}
	var removedStock, removedMod int
	eng.Run(func(ctx *symexec.Context) {
		in := stock.NewInstance().(interface {
			agents.Instance
			TickIdleTimeout(uint16) int
		})
		in.Handshake(ctx)
		fm := flowModAdd(&openflow.ActionOutput{Port: 2})
		fm.IdleTimeout = 10
		in.HandleMessage(ctx, symbuf.FromBytes(fm.Serialize()))
		removedStock = in.TickIdleTimeout(9)
	})
	modSw := modified.New()
	eng2 := &symexec.Engine{CovMap: modSw.CovMap()}
	eng2.Run(func(ctx *symexec.Context) {
		in := modSw.NewInstance().(interface {
			agents.Instance
			TickIdleTimeout(uint16) int
		})
		in.Handshake(ctx)
		fm := flowModAdd(&openflow.ActionOutput{Port: 2})
		fm.IdleTimeout = 10
		in.HandleMessage(ctx, symbuf.FromBytes(fm.Serialize()))
		removedMod = in.TickIdleTimeout(9)
	})
	if removedStock != 0 || removedMod != 1 {
		t.Fatalf("timer quirk: stock removed %d, modified removed %d (want 0 and 1)", removedStock, removedMod)
	}
}
