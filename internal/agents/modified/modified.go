// Package modified builds the paper's third agent: the Reference Switch
// with seven behavior modifications injected by team members who did not
// build the tool (§5.1.1). SOFT correctly pinpoints five of the seven; the
// remaining two are structurally invisible:
//
//   - the Hello-handshake change never executes under symbolic input
//     because SOFT establishes a correct connection before testing, and
//   - the idle-timeout change requires a timer to fire, which the symbolic
//     execution engine cannot trigger.
package modified

import (
	"github.com/soft-testing/soft/internal/agents"
	"github.com/soft-testing/soft/internal/agents/refswitch"
)

func init() {
	agents.Register("modified", func() agents.Agent { return New() }, "mod")
}

// DetectableModifications is how many of the injected changes SOFT's test
// suite can observe (5 of 7, as in the paper).
const DetectableModifications = 5

// TotalModifications is the number of injected changes.
const TotalModifications = 7

// New returns the Modified Switch: refswitch plus all seven injected
// modifications.
func New() *refswitch.Switch {
	return refswitch.NewWithOptions("Modified Switch", refswitch.Options{
		RejectFlood:       true, // 1: detectable via Packet Out
		PortZeroCode:      true, // 2: detectable via Packet Out / Flow Mod
		DropHighPriority:  true, // 3: detectable via Flow Mod + probe
		TosMaskFF:         true, // 4: detectable via Flow Mod set_nw_tos + probe
		StatsDescQuirk:    true, // 5: detectable via Stats Request
		HelloVersionQuirk: true, // 6: NOT detectable (concrete handshake)
		IdleExpiryQuirk:   true, // 7: NOT detectable (no timers)
	})
}
