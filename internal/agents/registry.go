package agents

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Factory constructs a fresh Agent. Factories are registered once (usually
// from an agent package's init) and invoked per lookup, so every caller
// gets an agent with isolated coverage state.
type Factory func() Agent

var (
	regMu     sync.RWMutex
	factories = map[string]Factory{} // canonical names and aliases
	canonical []string               // canonical names, registration order
)

// Register adds an agent factory under a canonical name plus optional
// aliases. It replaces the agentByName switch that used to be duplicated
// across every cmd and example. Register panics on a duplicate name: two
// implementations claiming one name is a programmer error, not a runtime
// condition.
func Register(name string, factory Factory, aliases ...string) {
	regMu.Lock()
	defer regMu.Unlock()
	for _, n := range append([]string{name}, aliases...) {
		if _, dup := factories[n]; dup {
			panic(fmt.Sprintf("agents: duplicate registration of %q", n))
		}
		factories[n] = factory
	}
	canonical = append(canonical, name)
}

// ByName instantiates the registered agent with the given name or alias.
// The error for an unknown name lists every registered canonical name.
func ByName(name string) (Agent, error) {
	regMu.RLock()
	f, ok := factories[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("unknown agent %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return f(), nil
}

// MustByName is ByName for names the caller knows are registered.
func MustByName(name string) Agent {
	a, err := ByName(name)
	if err != nil {
		panic("agents: " + err.Error())
	}
	return a
}

// Names returns the registered canonical agent names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(canonical))
	copy(out, canonical)
	sort.Strings(out)
	return out
}
