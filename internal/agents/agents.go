// Package agents defines the OpenFlow agent interface SOFT tests against
// and shared wire-offset helpers. The three concrete models live in the
// refswitch, ovs and modified subpackages; each is an independent
// implementation of OpenFlow 1.0 message processing whose interface-level
// decision structure reproduces the corresponding C code base from the
// paper's evaluation (§5): message validation order, field masking versus
// strict validation, error propagation bugs, crashes, and feature gaps.
package agents

import (
	"github.com/soft-testing/soft/internal/coverage"
	"github.com/soft-testing/soft/internal/dataplane"
	"github.com/soft-testing/soft/internal/flowtable"
	"github.com/soft-testing/soft/internal/symbuf"
	"github.com/soft-testing/soft/internal/symexec"
)

// Agent is a testable OpenFlow agent implementation.
type Agent interface {
	// Name identifies the agent in reports ("Reference Switch", ...).
	Name() string
	// CovMap is the agent's static coverage universe.
	CovMap() *coverage.Map
	// NewInstance creates fresh agent state for one execution path. The
	// symbolic execution engine re-executes the driver per path, so every
	// path gets an isolated instance.
	NewInstance() Instance
}

// Instance is one running agent: a connected switch with its own flow
// table and configuration.
type Instance interface {
	// Handshake performs the concrete Hello exchange. SOFT establishes a
	// correct connection before injecting symbolic inputs (§5.1.1 — which
	// is why a modified Hello handler escapes detection).
	Handshake(ctx *symexec.Context)
	// HandleMessage processes one OpenFlow control message, emitting
	// trace events for every externally visible result.
	HandleMessage(ctx *symexec.Context, msg *symbuf.Buffer)
	// HandlePacket processes one data plane packet (SOFT's concrete state
	// probes).
	HandlePacket(ctx *symexec.Context, pkt *dataplane.Packet)
}

// Wire offsets of OpenFlow 1.0 message fields, shared by all agent
// implementations (protocol facts, not implementation choices).
const (
	// OffVersion..OffXid: the common header.
	OffVersion = 0
	OffType    = 1
	OffLength  = 2
	OffXid     = 4

	// Packet Out body.
	OffPOBufferID   = 8
	OffPOInPort     = 12
	OffPOActionsLen = 14
	OffPOActions    = 16

	// Flow Mod body.
	OffFMMatch    = 8
	OffFMCookie   = 48
	OffFMCommand  = 56
	OffFMIdle     = 58
	OffFMHard     = 60
	OffFMPriority = 62
	OffFMBufferID = 64
	OffFMOutPort  = 68
	OffFMFlags    = 70
	OffFMActions  = 72

	// Stats Request body.
	OffStatsType = 8
	OffStatsBody = 12

	// Set Config body.
	OffSCFlags       = 8
	OffSCMissSendLen = 10

	// Queue Get Config Request body.
	OffQGCPort = 8

	// Match field offsets relative to the start of ofp_match.
	MOffWildcards = 0
	MOffInPort    = 4
	MOffDLSrc     = 6
	MOffDLDst     = 12
	MOffDLVLAN    = 18
	MOffDLVLANPCP = 20
	MOffDLType    = 22
	MOffNWTos     = 24
	MOffNWProto   = 25
	MOffNWSrc     = 28
	MOffNWDst     = 32
	MOffTPSrc     = 36
	MOffTPDst     = 38
)

// ParseMatch reads an ofp_match starting at off into a flow table entry
// (match fields only; metadata left nil).
func ParseMatch(buf *symbuf.Buffer, off int) *flowtable.Entry {
	return &flowtable.Entry{
		Wildcards: buf.U32(off + MOffWildcards),
		InPort:    buf.U16(off + MOffInPort),
		DLSrc:     buf.U48(off + MOffDLSrc),
		DLDst:     buf.U48(off + MOffDLDst),
		DLVLAN:    buf.U16(off + MOffDLVLAN),
		DLVLANPCP: buf.U8(off + MOffDLVLANPCP),
		DLType:    buf.U16(off + MOffDLType),
		NWTos:     buf.U8(off + MOffNWTos),
		NWProto:   buf.U8(off + MOffNWProto),
		NWSrc:     buf.U32(off + MOffNWSrc),
		NWDst:     buf.U32(off + MOffNWDst),
		TPSrc:     buf.U16(off + MOffTPSrc),
		TPDst:     buf.U16(off + MOffTPDst),
	}
}

// ParseAction reads the action at off with the given concrete wire length
// (8 or 16 — lengths are concrete under §3.2.1's structured inputs) into a
// SymAction with every plausible argument view populated; the applying
// code selects the view that matches the (possibly symbolic) type.
func ParseAction(buf *symbuf.Buffer, off, alen int) flowtable.SymAction {
	a := flowtable.SymAction{Type: buf.U16(off)}
	switch alen {
	case 8:
		a.Arg16 = buf.U16(off + 4)
		a.Arg8 = buf.U8(off + 4)
		a.Arg32 = buf.U32(off + 4)
		a.MaxLen = buf.U16(off + 6)
	case 16:
		a.Arg48 = buf.U48(off + 4)
		a.Arg16 = buf.U16(off + 4)
		a.Arg32 = buf.U32(off + 12)
	}
	return a
}

// ActionSlots splits the action list region [off, off+total) into slots
// using the concrete length fields the structured inputs pin (§3.2.1). It
// returns the start offset and length of each action.
func ActionSlots(buf *symbuf.Buffer, off, total int) (starts, lens []int, ok bool) {
	end := off + total
	for off < end {
		if off+4 > buf.Len() || off+4 > end {
			return nil, nil, false
		}
		lenExpr := buf.U16(off + 2)
		v, isConst := lenExpr.ConstVal()
		if !isConst {
			// Structured inputs always pin action lengths; a symbolic
			// length means the harness built a raw unstructured message —
			// treat as undecodable.
			return nil, nil, false
		}
		alen := int(v)
		if alen < 8 || alen%8 != 0 || off+alen > end {
			return nil, nil, false
		}
		starts = append(starts, off)
		lens = append(lens, alen)
		off += alen
	}
	return starts, lens, true
}
