// Package refswitch models the OpenFlow 1.0 Reference Switch — the 55K-LoC
// userspace switch released with the 1.0 specification that the paper tests
// (§5). The model reproduces the reference implementation's interface-level
// decision structure, including its documented quirks, each of which is one
// side of a §5.1.2 finding:
//
//   - no strict validation of VLAN/ToS/PCP action arguments: values are
//     silently masked to fit ("Reference Switch does not validate values of
//     the aforementioned fields, but it automatically modifies them");
//   - buffer_id lookup failures produce an error internally that is never
//     propagated as an OpenFlow message ("Lack of error messages");
//   - crashes on Packet Out to OFPP_CONTROLLER, on a set-VLAN action in a
//     Packet Out, and on a queue config request for port 0;
//   - buffer validation happens before action validation ("Different order
//     of message validation");
//   - rejects flow mods whose output port equals the match's in_port;
//   - does not validate output ports against the physical port count;
//   - supports emergency flow entries; does not support OFPP_NORMAL;
//   - silently ignores statistics requests it cannot answer.
package refswitch

import (
	"github.com/soft-testing/soft/internal/agents"
	"github.com/soft-testing/soft/internal/coverage"
	"github.com/soft-testing/soft/internal/dataplane"
	"github.com/soft-testing/soft/internal/flowtable"
	"github.com/soft-testing/soft/internal/openflow"
	"github.com/soft-testing/soft/internal/sym"
	"github.com/soft-testing/soft/internal/symbuf"
	"github.com/soft-testing/soft/internal/symexec"
	"github.com/soft-testing/soft/internal/trace"
)

// NumPorts is the number of physical ports the modeled switch exposes.
const NumPorts = 4

// DefaultMissSendLen is the default miss_send_len (OFP_DEFAULT_MISS_SEND_LEN).
const DefaultMissSendLen = 128

// Options are the §5.1.1 injected modifications. The stock Reference Switch
// uses the zero value; the modified package turns them on. Five injected
// changes are reachable through SOFT's tests; two are structurally
// invisible (a Hello handshake change — SOFT connects before testing — and
// a timer-dependent change — the engine cannot trigger timers).
type Options struct {
	// RejectFlood makes Packet Out to OFPP_FLOOD return an error instead
	// of flooding (detectable).
	RejectFlood bool
	// PortZeroCode changes the error code for output port 0 from
	// BAD_OUT_PORT to BAD_ARGUMENT (detectable).
	PortZeroCode bool
	// DropHighPriority silently discards flow mod ADDs with priority
	// >= 0xF000 (detectable).
	DropHighPriority bool
	// TosMaskFF masks set_nw_tos arguments with 0xff instead of 0xfc,
	// so the low ToS bits leak into forwarded packets (detectable).
	TosMaskFF bool
	// StatsDescQuirk changes the DESC statistics reply body (detectable).
	StatsDescQuirk bool
	// HelloVersionQuirk answers the initial Hello with a different version
	// byte. NOT detectable: SOFT performs the handshake concretely before
	// injecting symbolic inputs (§5.1.1).
	HelloVersionQuirk bool
	// IdleExpiryQuirk removes idle-timed-out flows one second early. NOT
	// detectable: the symbolic execution engine cannot trigger timers
	// (§5.1.1).
	IdleExpiryQuirk bool
}

// Switch is the Reference Switch agent model.
type Switch struct {
	name string
	opts Options
	cov  *coverage.Map
	b    blocks
}

// blocks holds the coverage IDs of the agent's instrumented code regions.
type blocks struct {
	// Initialization & connection setup (covered by the handshake alone —
	// the "No Message" row of Table 4).
	init, helloTx, connSetup coverage.BlockID
	// Never reachable through the OpenFlow interface: command-line
	// parsing, cleanup paths, logging (the ~25% the paper attributes to
	// "code that is not accessible in standard execution").
	cli, cleanup, logging, deadcode coverage.BlockID

	dispatch, badVersion, badType                              coverage.BlockID
	hello, echo, barrier, features, getConfig, vendor, portMod coverage.BlockID
	setConfig                                                  coverage.BlockID

	poEntry, poBufferFail, poParse, poApply                      coverage.BlockID
	actOutput, actOutPhys, actOutReserved, actSetVLAN, actSetPCP coverage.BlockID
	actStrip, actSetDL, actSetNW, actSetTos, actSetTP, actEnq    coverage.BlockID
	actUnknown                                                   coverage.BlockID

	fmEntry, fmParse, fmValidate, fmInPortCheck, fmEmerg, fmOverlap coverage.BlockID
	fmAdd, fmModify, fmDelete, fmStrict, fmBadCmd, fmBufferFail     coverage.BlockID

	statsEntry, statsDesc, statsFlow, statsAggr, statsTable coverage.BlockID
	statsPort, statsSilent                                  coverage.BlockID

	queueEntry, queueCrash, queueReply, queueBad coverage.BlockID

	pktEntry, pktMatch, pktMiss, pktApply coverage.BlockID

	brVersion, brType, brLength, brPOBuffer, brActType, brOutClass coverage.BranchID
	brVLANRange, brTosRange, brPCPRange, brFMCommand, brFMInPort   coverage.BranchID
	brFMEmerg, brFMOverlap, brFMBuffer, brStatsType, brStatsPort   coverage.BranchID
	brQueuePort, brPktMatch, brPktPriority, brMissLen, brDelMatch  coverage.BranchID
	brOutInPort, brConn, brPktParse                                coverage.BranchID
}

func init() {
	agents.Register("ref", func() agents.Agent { return New() }, "reference")
}

// New returns the stock Reference Switch model.
func New() *Switch { return NewWithOptions("Reference Switch", Options{}) }

// NewWithOptions returns a Reference Switch with injected modifications —
// the constructor the modified package uses.
func NewWithOptions(name string, opts Options) *Switch {
	s := &Switch{name: name, opts: opts, cov: coverage.NewMap()}
	m := s.cov
	b := &s.b

	// Block weights approximate the relative instruction volume of the
	// corresponding code in the reference switch; they calibrate Table 4.
	b.init = m.Block("init", 70)
	b.helloTx = m.Block("hello_tx", 20)
	b.connSetup = m.Block("conn_setup", 32)
	b.cli = m.Block("cli_config", 90)
	b.cleanup = m.Block("cleanup", 60)
	b.logging = m.Block("logging", 50)
	b.deadcode = m.Block("deadcode", 50)

	b.dispatch = m.Block("dispatch", 24)
	b.badVersion = m.Block("bad_version", 8)
	b.badType = m.Block("bad_type", 8)
	b.hello = m.Block("hello_rx", 6)
	b.echo = m.Block("echo", 10)
	b.barrier = m.Block("barrier", 8)
	b.features = m.Block("features_reply", 22)
	b.getConfig = m.Block("get_config", 10)
	b.vendor = m.Block("vendor", 8)
	b.portMod = m.Block("port_mod", 18)
	b.setConfig = m.Block("set_config", 16)

	b.poEntry = m.Block("po_entry", 18)
	b.poBufferFail = m.Block("po_buffer_fail", 12)
	b.poParse = m.Block("po_parse", 26)
	b.poApply = m.Block("po_apply", 14)
	b.actOutput = m.Block("act_output", 16)
	b.actOutPhys = m.Block("act_out_phys", 10)
	b.actOutReserved = m.Block("act_out_reserved", 22)
	b.actSetVLAN = m.Block("act_set_vlan", 10)
	b.actSetPCP = m.Block("act_set_pcp", 10)
	b.actStrip = m.Block("act_strip_vlan", 8)
	b.actSetDL = m.Block("act_set_dl", 12)
	b.actSetNW = m.Block("act_set_nw", 12)
	b.actSetTos = m.Block("act_set_tos", 10)
	b.actSetTP = m.Block("act_set_tp", 10)
	b.actEnq = m.Block("act_enqueue", 12)
	b.actUnknown = m.Block("act_unknown", 8)

	b.fmEntry = m.Block("fm_entry", 20)
	b.fmParse = m.Block("fm_parse_match", 34)
	b.fmValidate = m.Block("fm_validate", 22)
	b.fmInPortCheck = m.Block("fm_inport_check", 10)
	b.fmEmerg = m.Block("fm_emergency", 14)
	b.fmOverlap = m.Block("fm_overlap", 12)
	b.fmAdd = m.Block("fm_add", 18)
	b.fmModify = m.Block("fm_modify", 20)
	b.fmDelete = m.Block("fm_delete", 20)
	b.fmStrict = m.Block("fm_strict", 16)
	b.fmBadCmd = m.Block("fm_bad_command", 8)
	b.fmBufferFail = m.Block("fm_buffer_fail", 12)

	b.statsEntry = m.Block("stats_entry", 14)
	b.statsDesc = m.Block("stats_desc", 10)
	b.statsFlow = m.Block("stats_flow", 24)
	b.statsAggr = m.Block("stats_aggregate", 14)
	b.statsTable = m.Block("stats_table", 12)
	b.statsPort = m.Block("stats_port", 16)
	b.statsSilent = m.Block("stats_silent_drop", 8)

	b.queueEntry = m.Block("queue_entry", 10)
	b.queueCrash = m.Block("queue_port0", 6)
	b.queueReply = m.Block("queue_reply", 10)
	b.queueBad = m.Block("queue_bad_port", 8)

	b.pktEntry = m.Block("pkt_entry", 18)
	b.pktMatch = m.Block("pkt_match", 26)
	b.pktMiss = m.Block("pkt_miss", 16)
	b.pktApply = m.Block("pkt_apply", 18)

	b.brVersion = m.BranchSite("version_ok")
	b.brConn = m.BranchSite("conn_established")
	b.brPktParse = m.BranchSite("pkt_parse")
	b.brType = m.BranchSite("msg_type")
	b.brLength = m.BranchSite("msg_length")
	b.brPOBuffer = m.BranchSite("po_buffer_id")
	b.brActType = m.BranchSite("action_type")
	b.brOutClass = m.BranchSite("output_port_class")
	b.brOutInPort = m.BranchSite("output_vs_inport")
	b.brVLANRange = m.BranchSite("vlan_range")
	b.brTosRange = m.BranchSite("tos_range")
	b.brPCPRange = m.BranchSite("pcp_range")
	b.brFMCommand = m.BranchSite("fm_command")
	b.brFMInPort = m.BranchSite("fm_inport_eq_outport")
	b.brFMEmerg = m.BranchSite("fm_emerg_flag")
	b.brFMOverlap = m.BranchSite("fm_overlap_flag")
	b.brFMBuffer = m.BranchSite("fm_buffer_id")
	b.brStatsType = m.BranchSite("stats_type")
	b.brStatsPort = m.BranchSite("stats_port_valid")
	b.brQueuePort = m.BranchSite("queue_port")
	b.brPktMatch = m.BranchSite("pkt_match_entry")
	b.brPktPriority = m.BranchSite("pkt_priority_order")
	b.brMissLen = m.BranchSite("miss_send_len")
	b.brDelMatch = m.BranchSite("fm_delete_match")
	m.Seal()
	return s
}

// Name implements agents.Agent.
func (s *Switch) Name() string { return s.name }

// CovMap implements agents.Agent.
func (s *Switch) CovMap() *coverage.Map { return s.cov }

// NewInstance implements agents.Agent.
func (s *Switch) NewInstance() agents.Instance {
	return &inst{
		sw:          s,
		table:       flowtable.New(1024),
		flags:       sym.Const(16, uint64(openflow.FragNormal)),
		missSendLen: sym.Const(16, DefaultMissSendLen),
	}
}

type inst struct {
	sw          *Switch
	table       *flowtable.Table
	flags       *sym.Expr // 16
	missSendLen *sym.Expr // 16
}

// Handshake implements agents.Instance: the concrete Hello exchange. The
// HelloVersionQuirk modification lives here, which is exactly why SOFT
// cannot see it (§5.1.1): the harness completes the handshake before any
// symbolic input and does not record it in the trace.
func (in *inst) Handshake(ctx *symexec.Context) {
	b := &in.sw.b
	ctx.Cover(b.init)
	ctx.Cover(b.helloTx)
	ctx.Cover(b.connSetup)
	// The concrete handshake exercises a few branch directions (version
	// accepted, connection established) — the paper's "No Message"
	// baseline covers 8% of branches from initialization alone.
	ctx.BranchSite(b.brVersion, sym.Bool(false))
	ctx.BranchSite(b.brConn, sym.Bool(true))
	ctx.BranchSite(b.brLength, sym.Bool(false))
	version := uint64(openflow.Version)
	if in.sw.opts.HelloVersionQuirk {
		version = 0x02
	}
	_ = version // sent on the concrete control channel, not traced
}

// TickIdleTimeout models the flow-expiry timer path. No harness test can
// drive it (the engine cannot trigger timers), so the IdleExpiryQuirk
// modification is the paper's second undetectable change (§5.1.1).
func (in *inst) TickIdleTimeout(elapsed uint16) int {
	removed := 0
	for i := 0; i < len(in.table.Entries); {
		e := in.table.Entries[i]
		limit, ok := e.IdleTimeout.ConstVal()
		if in.sw.opts.IdleExpiryQuirk && limit > 0 {
			limit--
		}
		if ok && limit != 0 && uint64(elapsed) >= limit {
			in.table.Remove(i)
			removed++
			continue
		}
		i++
	}
	return removed
}

// HandleMessage implements agents.Instance.
func (in *inst) HandleMessage(ctx *symexec.Context, msg *symbuf.Buffer) {
	b := &in.sw.b
	ctx.Cover(b.dispatch)
	if ctx.BranchSite(b.brVersion, sym.Ne(msg.U8(agents.OffVersion), sym.Const(8, openflow.Version))) {
		ctx.Cover(b.badVersion)
		ctx.Emit(trace.Error(openflow.ErrBadRequest, openflow.BRCBadVersion))
		return
	}
	t := msg.U8(agents.OffType)
	is := func(mt openflow.MsgType) bool {
		return ctx.BranchSite(b.brType, sym.EqConst(t, uint64(mt)))
	}
	switch {
	case is(openflow.TypeHello):
		// Duplicate Hello after connection setup: ignored.
		ctx.Cover(b.hello)
	case is(openflow.TypeEchoRequest):
		ctx.Cover(b.echo)
		ctx.Emit(trace.Msg(openflow.TypeEchoReply))
	case is(openflow.TypeEchoReply):
		ctx.Cover(b.echo)
	case is(openflow.TypeVendor):
		ctx.Cover(b.vendor)
		ctx.Emit(trace.Error(openflow.ErrBadRequest, openflow.BRCBadVendor))
	case is(openflow.TypeFeaturesRequest):
		ctx.Cover(b.features)
		ctx.Emit(trace.NewBuilder("msg:FEATURES_REPLY").
			Textf(" n_tables=1 n_ports=%d", NumPorts).Build())
	case is(openflow.TypeGetConfigRequest):
		ctx.Cover(b.getConfig)
		ctx.Emit(trace.NewBuilder("msg:GET_CONFIG_REPLY flags=").Expr(in.flags).
			Text(" miss_send_len=").Expr(in.missSendLen).Build())
	case is(openflow.TypeSetConfig):
		in.handleSetConfig(ctx, msg)
	case is(openflow.TypePacketOut):
		in.handlePacketOut(ctx, msg)
	case is(openflow.TypeFlowMod):
		in.handleFlowMod(ctx, msg)
	case is(openflow.TypePortMod):
		ctx.Cover(b.portMod)
		if !in.checkLen(ctx, msg, 32) {
			return
		}
		// The reference switch accepts port mods for its ports silently.
	case is(openflow.TypeStatsRequest):
		in.handleStats(ctx, msg)
	case is(openflow.TypeBarrierRequest):
		ctx.Cover(b.barrier)
		ctx.Emit(trace.Msg(openflow.TypeBarrierReply))
	case is(openflow.TypeQueueGetConfigRequest):
		in.handleQueueConfig(ctx, msg)
	default:
		// Remaining codes are switch-to-controller messages or unknown.
		ctx.Cover(b.badType)
		ctx.Emit(trace.Error(openflow.ErrBadRequest, openflow.BRCBadType))
	}
}

// checkLen validates the header length field against the handler's minimum.
func (in *inst) checkLen(ctx *symexec.Context, msg *symbuf.Buffer, minLen uint64) bool {
	b := &in.sw.b
	// Physical short read (the io layer delivered fewer bytes than the
	// handler's fixed part): always an error, no fork.
	if uint64(msg.Len()) < minLen {
		ctx.Emit(trace.Error(openflow.ErrBadRequest, openflow.BRCBadLen))
		return false
	}
	if ctx.BranchSite(b.brLength, sym.Ult(msg.U16(agents.OffLength), sym.Const(16, minLen))) {
		ctx.Emit(trace.Error(openflow.ErrBadRequest, openflow.BRCBadLen))
		return false
	}
	return true
}

func (in *inst) handleSetConfig(ctx *symexec.Context, msg *symbuf.Buffer) {
	b := &in.sw.b
	ctx.Cover(b.setConfig)
	if !in.checkLen(ctx, msg, openflow.SetConfigLen) {
		return
	}
	// The reference switch stores the configuration verbatim — no
	// validation, no reply.
	in.flags = msg.U16(agents.OffSCFlags)
	in.missSendLen = msg.U16(agents.OffSCMissSendLen)
}

// handlePacketOut: the reference switch looks up the buffer FIRST and only
// then parses and applies actions — the opposite order from Open vSwitch
// ("Different order of message validation", §5.1.2).
func (in *inst) handlePacketOut(ctx *symexec.Context, msg *symbuf.Buffer) {
	b := &in.sw.b
	ctx.Cover(b.poEntry)
	if !in.checkLen(ctx, msg, openflow.PacketOutFixedLen) {
		return
	}
	bufferID := msg.U32(agents.OffPOBufferID)
	if ctx.BranchSite(b.brPOBuffer, sym.Ne(bufferID, sym.Const(32, uint64(openflow.NoBuffer)))) {
		// No such buffer. The handler produces an internal error that is
		// never converted into an OpenFlow message ("Lack of error
		// messages", §5.1.2): the message is consumed silently and no
		// actions are applied.
		ctx.Cover(b.poBufferFail)
		return
	}
	ctx.Cover(b.poParse)
	actionsLen, ok := msg.U16(agents.OffPOActionsLen).ConstVal()
	if !ok {
		// Structured inputs pin the actions length (§3.2.1).
		ctx.Emit(trace.Error(openflow.ErrBadRequest, openflow.BRCBadLen))
		return
	}
	starts, lens, ok := agents.ActionSlots(msg, agents.OffPOActions, int(actionsLen))
	if !ok {
		ctx.Emit(trace.Error(openflow.ErrBadAction, openflow.BACBadLen))
		return
	}
	// The packet to send is the message payload after the actions.
	payloadOff := agents.OffPOActions + int(actionsLen)
	pkt := packetFromPayload(msg, payloadOff)
	inPort := msg.U16(agents.OffPOInPort)

	ctx.Cover(b.poApply)
	for i := range starts {
		a := agents.ParseAction(msg, starts[i], lens[i])
		if !in.applyAction(ctx, pkt, a, lens[i], inPort, true) {
			return
		}
	}
}

// packetFromPayload decodes the (concrete or symbolic) payload of a Packet
// Out into a packet model. Payload bytes beyond the modeled headers are
// dropped — the tests use small payloads.
func packetFromPayload(msg *symbuf.Buffer, off int) *dataplane.Packet {
	n := msg.Len() - off
	if n <= 0 {
		// An empty packet: all fields zero.
		return &dataplane.Packet{
			EthDst:  sym.Const(48, 0),
			EthSrc:  sym.Const(48, 0),
			VLAN:    sym.Const(16, dataplane.VLANNone),
			PCP:     sym.Const(8, 0),
			EthType: sym.Const(16, 0),
		}
	}
	// Model the payload as an L2 frame: dst(6) src(6) type(2); shorter
	// payloads zero-fill. Symbolic payload bytes remain symbolic fields.
	get := func(off2, n2 int, w int) *sym.Expr {
		if off2+n2 <= msg.Len() {
			parts := make([]*sym.Expr, n2)
			for i := 0; i < n2; i++ {
				parts[i] = msg.Byte(off2 + i)
			}
			return sym.ConcatAll(parts...)
		}
		return sym.Const(w, 0)
	}
	return &dataplane.Packet{
		EthDst:  get(off, 6, 48),
		EthSrc:  get(off+6, 6, 48),
		VLAN:    sym.Const(16, dataplane.VLANNone),
		PCP:     sym.Const(8, 0),
		EthType: get(off+12, 2, 16),
	}
}

// applyAction executes one action against pkt, emitting outputs. It
// returns false when processing of the whole message must stop (error or
// crash). isPacketOut selects Packet-Out-specific behavior (the crash
// sites live in the packet out path of the reference code).
func (in *inst) applyAction(ctx *symexec.Context, pkt *dataplane.Packet, a flowtable.SymAction, alen int, inPort *sym.Expr, isPacketOut bool) bool {
	b := &in.sw.b
	t := a.Type
	is := func(at openflow.ActionType) bool {
		return ctx.BranchSite(b.brActType, sym.EqConst(t, uint64(at)))
	}
	switch {
	case is(openflow.ActOutput):
		ctx.Cover(b.actOutput)
		return in.output(ctx, pkt, a.Arg16, inPort, isPacketOut)
	case is(openflow.ActSetVLANVID):
		ctx.Cover(b.actSetVLAN)
		if isPacketOut {
			// Reference switch crash #2 (§5.1.2): executing a set-VLAN
			// action from a Packet Out dereferences an unset buffer.
			ctx.Crash("segfault: set_vlan_vid on packet out path")
		}
		// Flow-installed path: no validation, auto-mask to 12 bits.
		pkt.VLAN = sym.And(a.Arg16, sym.Const(16, 0x0fff))
		return true
	case is(openflow.ActSetVLANPCP):
		ctx.Cover(b.actSetPCP)
		pkt.PCP = sym.And(a.Arg8, sym.Const(8, 0x07)) // auto-mask
		return true
	case is(openflow.ActStripVLAN):
		ctx.Cover(b.actStrip)
		pkt.VLAN = sym.Const(16, dataplane.VLANNone)
		pkt.PCP = sym.Const(8, 0)
		return true
	case alen == 16 && is(openflow.ActSetDLSrc):
		ctx.Cover(b.actSetDL)
		pkt.EthSrc = a.Arg48
		return true
	case alen == 16 && is(openflow.ActSetDLDst):
		ctx.Cover(b.actSetDL)
		pkt.EthDst = a.Arg48
		return true
	case is(openflow.ActSetNWSrc):
		ctx.Cover(b.actSetNW)
		pkt.NWSrc = a.Arg32
		return true
	case is(openflow.ActSetNWDst):
		ctx.Cover(b.actSetNW)
		pkt.NWDst = a.Arg32
		return true
	case is(openflow.ActSetNWTos):
		ctx.Cover(b.actSetTos)
		mask := uint64(0xfc)
		if in.sw.opts.TosMaskFF {
			mask = 0xff // injected modification: low bits leak
		}
		pkt.NWTos = sym.And(a.Arg8, sym.Const(8, mask)) // auto-mask
		return true
	case is(openflow.ActSetTPSrc):
		ctx.Cover(b.actSetTP)
		pkt.TPSrc = a.Arg16
		return true
	case is(openflow.ActSetTPDst):
		ctx.Cover(b.actSetTP)
		pkt.TPDst = a.Arg16
		return true
	case alen == 16 && is(openflow.ActEnqueue):
		ctx.Cover(b.actEnq)
		// Modeled as plain output: the reference switch has no queues.
		return in.output(ctx, pkt, a.Arg16, inPort, isPacketOut)
	default:
		ctx.Cover(b.actUnknown)
		ctx.Emit(trace.Error(openflow.ErrBadAction, openflow.BACBadType))
		return false
	}
}

// output classifies the port and emits the packet. The reference switch
// performs NO upper-bound validation on physical port numbers (§5.1.2:
// "Reference Switch does not validate ports this way").
func (in *inst) output(ctx *symexec.Context, pkt *dataplane.Packet, port, inPort *sym.Expr, isPacketOut bool) bool {
	b := &in.sw.b
	cls := func(cond *sym.Expr) bool { return ctx.BranchSite(b.brOutClass, cond) }
	switch {
	case cls(sym.EqConst(port, 0)):
		ctx.Cover(b.actOutReserved)
		code := openflow.BACBadOutPort
		if in.sw.opts.PortZeroCode {
			code = openflow.BACBadArgument // injected modification
		}
		ctx.Emit(trace.Error(openflow.ErrBadAction, code))
		return false
	case cls(sym.Ult(port, sym.Const(16, uint64(openflow.PortMax)))):
		// Any port below OFPP_MAX is sent to, existing or not.
		ctx.Cover(b.actOutPhys)
		ctx.Emit(trace.PacketOut(port, pkt))
		return true
	case cls(sym.EqConst(port, uint64(openflow.PortInPort))):
		ctx.Cover(b.actOutReserved)
		ctx.Emit(trace.PacketOut(inPort, pkt))
		return true
	case cls(sym.EqConst(port, uint64(openflow.PortTable))):
		ctx.Cover(b.actOutReserved)
		if isPacketOut {
			in.forwardViaTable(ctx, pkt)
			return true
		}
		ctx.Emit(trace.Error(openflow.ErrBadAction, openflow.BACBadOutPort))
		return false
	case cls(sym.EqConst(port, uint64(openflow.PortNormal))):
		// Purely an OpenFlow switch: no traditional forwarding path
		// ("Missing features", §5.1.2).
		ctx.Cover(b.actOutReserved)
		ctx.Emit(trace.Error(openflow.ErrBadAction, openflow.BACBadOutPort))
		return false
	case cls(sym.EqConst(port, uint64(openflow.PortFlood))):
		ctx.Cover(b.actOutReserved)
		if in.sw.opts.RejectFlood {
			// Injected modification: flooding rejected.
			ctx.Emit(trace.Error(openflow.ErrBadAction, openflow.BACBadOutPort))
			return false
		}
		ctx.Emit(trace.PacketOut(sym.Const(16, uint64(openflow.PortFlood)), pkt))
		return true
	case cls(sym.EqConst(port, uint64(openflow.PortAll))):
		ctx.Cover(b.actOutReserved)
		ctx.Emit(trace.PacketOut(sym.Const(16, uint64(openflow.PortAll)), pkt))
		return true
	case cls(sym.EqConst(port, uint64(openflow.PortController))):
		ctx.Cover(b.actOutReserved)
		if isPacketOut {
			// Reference switch crash #1 (§5.1.2): a Packet Out whose
			// output port is OFPP_CONTROLLER dereferences a null buffer.
			ctx.Crash("segfault: packet out to OFPP_CONTROLLER")
		}
		ctx.Emit(trace.PacketIn(openflow.ReasonAction, sym.Const(16, DefaultMissSendLen), pkt))
		return true
	case cls(sym.EqConst(port, uint64(openflow.PortLocal))):
		ctx.Cover(b.actOutReserved)
		ctx.Emit(trace.PacketOut(sym.Const(16, uint64(openflow.PortLocal)), pkt))
		return true
	default:
		// OFPP_NONE and undefined reserved values: silently dropped.
		ctx.Cover(b.actOutReserved)
		ctx.Emit(trace.Drop("output"))
		return true
	}
}

// forwardViaTable runs a packet through the flow table (OFPP_TABLE).
func (in *inst) forwardViaTable(ctx *symexec.Context, pkt *dataplane.Packet) {
	in.lookupAndApply(ctx, pkt, false)
}

func (in *inst) handleFlowMod(ctx *symexec.Context, msg *symbuf.Buffer) {
	b := &in.sw.b
	ctx.Cover(b.fmEntry)
	if !in.checkLen(ctx, msg, openflow.FlowModFixedLen) {
		return
	}
	ctx.Cover(b.fmParse)
	e := agents.ParseMatch(msg, agents.OffFMMatch)
	e.Cookie = msg.U64(agents.OffFMCookie)
	e.IdleTimeout = msg.U16(agents.OffFMIdle)
	e.HardTimeout = msg.U16(agents.OffFMHard)
	e.Priority = msg.U16(agents.OffFMPriority)
	command := msg.U16(agents.OffFMCommand)
	bufferID := msg.U32(agents.OffFMBufferID)
	outPort := msg.U16(agents.OffFMOutPort)
	flags := msg.U16(agents.OffFMFlags)

	// Parse the action list (lengths are concrete per §3.2.1).
	totalLen, ok := msg.U16(agents.OffLength).ConstVal()
	if !ok {
		totalLen = uint64(msg.Len())
	}
	starts, lens, okA := agents.ActionSlots(msg, agents.OffFMActions, int(totalLen)-agents.OffFMActions)
	if !okA {
		ctx.Emit(trace.Error(openflow.ErrBadAction, openflow.BACBadLen))
		return
	}
	ctx.Cover(b.fmValidate)
	for i := range starts {
		e.Actions = append(e.Actions, agents.ParseAction(msg, starts[i], lens[i]))
	}
	// Validate action types lazily, reference style: unknown type errors,
	// argument ranges are NOT validated (auto-masked at application).
	for i := range e.Actions {
		if !in.validateActionType(ctx, e.Actions[i], lens[i]) {
			return
		}
	}
	// in_port == out_port rule (§5.1.2 "Forwarding a packet to an invalid
	// port"): output to the match's ingress port can never forward, so the
	// reference switch rejects it (OFPP_IN_PORT must be used instead).
	ctx.Cover(b.fmInPortCheck)
	for i := range e.Actions {
		a := e.Actions[i]
		isOut := sym.EqConst(a.Type, uint64(openflow.ActOutput))
		inPortSpecified := sym.EqConst(
			sym.And(e.Wildcards, sym.Const(32, uint64(openflow.FWInPort))), 0)
		bad := sym.LAnd(isOut, inPortSpecified, sym.Eq(a.Arg16, e.InPort))
		if ctx.BranchSite(b.brFMInPort, bad) {
			ctx.Emit(trace.Error(openflow.ErrBadAction, openflow.BACBadOutPort))
			return
		}
	}

	cmdIs := func(c openflow.FlowModCommand) bool {
		return ctx.BranchSite(b.brFMCommand, sym.EqConst(command, uint64(c)))
	}
	switch {
	case cmdIs(openflow.FCAdd):
		in.flowAdd(ctx, msg, e, flags, bufferID)
	case cmdIs(openflow.FCModify), cmdIs(openflow.FCModifyStrict):
		in.flowModify(ctx, e, command, bufferID)
	case cmdIs(openflow.FCDelete), cmdIs(openflow.FCDeleteStrict):
		in.flowDelete(ctx, e, command, outPort)
	default:
		ctx.Cover(b.fmBadCmd)
		ctx.Emit(trace.Error(openflow.ErrFlowModFailed, openflow.FMFCBadCommand))
	}
}

// validateActionType rejects unknown action types and length/type
// mismatches; argument values pass unchecked (reference behavior).
func (in *inst) validateActionType(ctx *symexec.Context, a flowtable.SymAction, alen int) bool {
	b := &in.sw.b
	var valid *sym.Expr
	if alen == 8 {
		valid = sym.LOr(
			sym.Ule(a.Type, sym.Const(16, uint64(openflow.ActStripVLAN))),
			sym.LAnd(
				sym.Uge(a.Type, sym.Const(16, uint64(openflow.ActSetNWSrc))),
				sym.Ule(a.Type, sym.Const(16, uint64(openflow.ActSetTPDst))),
			),
		)
	} else {
		valid = sym.LOr(
			sym.EqConst(a.Type, uint64(openflow.ActSetDLSrc)),
			sym.EqConst(a.Type, uint64(openflow.ActSetDLDst)),
			sym.EqConst(a.Type, uint64(openflow.ActEnqueue)),
		)
	}
	if !ctx.BranchSite(b.brActType, valid) {
		ctx.Cover(b.actUnknown)
		ctx.Emit(trace.Error(openflow.ErrBadAction, openflow.BACBadType))
		return false
	}
	return true
}

func (in *inst) flowAdd(ctx *symexec.Context, msg *symbuf.Buffer, e *flowtable.Entry, flags, bufferID *sym.Expr) {
	b := &in.sw.b
	ctx.Cover(b.fmAdd)
	if in.sw.opts.DropHighPriority {
		// Injected modification: very high priorities silently discarded.
		if ctx.Branch(sym.Uge(e.Priority, sym.Const(16, 0xf000))) {
			return
		}
	}
	// Emergency entries: supported by the reference switch ("Missing
	// features" is on the OVS side). Timeouts must be zero.
	if ctx.BranchSite(b.brFMEmerg, sym.Ne(sym.And(flags, sym.Const(16, uint64(openflow.FlagEmerg))), sym.Const(16, 0))) {
		ctx.Cover(b.fmEmerg)
		nonZeroTimeout := sym.LOr(
			sym.Ne(e.IdleTimeout, sym.Const(16, 0)),
			sym.Ne(e.HardTimeout, sym.Const(16, 0)),
		)
		if ctx.Branch(nonZeroTimeout) {
			ctx.Emit(trace.Error(openflow.ErrFlowModFailed, openflow.FMFCBadEmergTimeout))
			return
		}
		e.Emergency = true
	}
	// Overlap checking on request.
	if ctx.BranchSite(b.brFMOverlap, sym.Ne(sym.And(flags, sym.Const(16, uint64(openflow.FlagCheckOverlap))), sym.Const(16, 0))) {
		ctx.Cover(b.fmOverlap)
		for _, old := range in.table.Entries {
			if ctx.Branch(e.OverlapCond(old)) {
				ctx.Emit(trace.Error(openflow.ErrFlowModFailed, openflow.FMFCOverlap))
				return
			}
		}
	}
	if !in.table.Add(e) {
		ctx.Emit(trace.Error(openflow.ErrFlowModFailed, openflow.FMFCAllTablesFull))
		return
	}
	// Buffered-packet application: the buffer never exists in our harness;
	// the reference switch generates an error internally but never sends
	// it, and applies no actions ("Lack of error messages", §5.1.2).
	if ctx.BranchSite(b.brFMBuffer, sym.Ne(bufferID, sym.Const(32, uint64(openflow.NoBuffer)))) {
		ctx.Cover(b.fmBufferFail)
		return
	}
}

func (in *inst) flowModify(ctx *symexec.Context, e *flowtable.Entry, command, bufferID *sym.Expr) {
	b := &in.sw.b
	ctx.Cover(b.fmModify)
	strict := ctx.Branch(sym.EqConst(command, uint64(openflow.FCModifyStrict)))
	if strict {
		ctx.Cover(b.fmStrict)
	}
	modified := false
	for _, old := range in.table.Entries {
		var conds []*sym.Expr
		if strict {
			conds = e.IdenticalConds(old)
		} else {
			conds = e.SubsumesConds(old)
		}
		if branchAll(ctx, b.brDelMatch, conds) {
			old.Actions = e.Actions
			modified = true
		}
	}
	if !modified {
		// OpenFlow 1.0: MODIFY with no matching entry behaves as ADD.
		in.table.Add(e)
	}
	if ctx.BranchSite(b.brFMBuffer, sym.Ne(bufferID, sym.Const(32, uint64(openflow.NoBuffer)))) {
		ctx.Cover(b.fmBufferFail)
		return
	}
}

func (in *inst) flowDelete(ctx *symexec.Context, e *flowtable.Entry, command, outPort *sym.Expr) {
	b := &in.sw.b
	ctx.Cover(b.fmDelete)
	strict := ctx.Branch(sym.EqConst(command, uint64(openflow.FCDeleteStrict)))
	if strict {
		ctx.Cover(b.fmStrict)
	}
	filterByPort := ctx.Branch(sym.Ne(outPort, sym.Const(16, uint64(openflow.PortNone))))
	for i := 0; i < len(in.table.Entries); {
		old := in.table.Entries[i]
		var conds []*sym.Expr
		if strict {
			conds = e.IdenticalConds(old)
		} else {
			conds = e.SubsumesConds(old)
		}
		if !branchAll(ctx, b.brDelMatch, conds) {
			i++
			continue
		}
		cond := sym.Bool(true)
		if filterByPort {
			// Only delete entries with an output action to outPort.
			var hasOut *sym.Expr = sym.Bool(false)
			for _, a := range old.Actions {
				hasOut = sym.LOr(hasOut, sym.LAnd(
					sym.EqConst(a.Type, uint64(openflow.ActOutput)),
					sym.Eq(a.Arg16, outPort),
				))
			}
			cond = sym.LAnd(cond, hasOut)
		}
		if ctx.BranchSite(b.brDelMatch, cond) {
			in.table.Remove(i)
			continue
		}
		i++
	}
}

// branchAll takes the conjuncts of a match condition one branch at a time,
// short-circuiting on the first false — the field-loop shape of the real
// implementations.
func branchAll(ctx *symexec.Context, site coverage.BranchID, conds []*sym.Expr) bool {
	for _, c := range conds {
		if !ctx.BranchSite(site, c) {
			return false
		}
	}
	return true
}

func (in *inst) handleStats(ctx *symexec.Context, msg *symbuf.Buffer) {
	b := &in.sw.b
	ctx.Cover(b.statsEntry)
	if !in.checkLen(ctx, msg, openflow.StatsRequestFixedLen) {
		return
	}
	st := msg.U16(agents.OffStatsType)
	is := func(t openflow.StatsType) bool {
		return ctx.BranchSite(b.brStatsType, sym.EqConst(st, uint64(t)))
	}
	switch {
	case is(openflow.StatsDesc):
		ctx.Cover(b.statsDesc)
		body := "mfr=Stanford sw=reference"
		if in.sw.opts.StatsDescQuirk {
			body = "mfr=Modified sw=reference-mod" // injected modification
		}
		ctx.Emit(trace.NewBuilder("msg:STATS_REPLY/DESC ").Text(body).Build())
	case is(openflow.StatsFlow):
		ctx.Cover(b.statsFlow)
		ev := trace.NewBuilder("msg:STATS_REPLY/FLOW")
		for _, e := range in.table.Entries {
			ev.Text(" flow{prio=").Expr(e.Priority).Text(" cookie=").Expr(e.Cookie).Text("}")
		}
		ctx.Emit(ev.Build())
	case is(openflow.StatsAggregate):
		ctx.Cover(b.statsAggr)
		ctx.Emit(trace.NewBuilder("msg:STATS_REPLY/AGGREGATE").
			Textf(" flows=%d", in.table.Len()).Build())
	case is(openflow.StatsTable):
		ctx.Cover(b.statsTable)
		ctx.Emit(trace.NewBuilder("msg:STATS_REPLY/TABLE").
			Textf(" active=%d max=%d", in.table.Len(), in.table.Capacity).Build())
	case is(openflow.StatsPort):
		ctx.Cover(b.statsPort)
		if msg.Len() < agents.OffStatsBody+2 {
			ctx.Emit(trace.Error(openflow.ErrBadRequest, openflow.BRCBadLen))
			return
		}
		port := msg.U16(agents.OffStatsBody)
		valid := sym.LOr(
			sym.LAnd(sym.Uge(port, sym.Const(16, 1)), sym.Ule(port, sym.Const(16, NumPorts))),
			sym.EqConst(port, uint64(openflow.PortNone)), // all ports
		)
		if ctx.BranchSite(b.brStatsPort, valid) {
			ctx.Emit(trace.NewBuilder("msg:STATS_REPLY/PORT port=").Expr(port).Build())
		} else {
			// Cannot answer: handler error never propagated ("Statistics
			// requests silently ignored", §5.1.2).
			ctx.Cover(b.statsSilent)
		}
	default:
		// QUEUE, VENDOR and unknown types: the reference switch cannot
		// respond and the internal error is not converted into an
		// OpenFlow message — silence (§5.1.2).
		ctx.Cover(b.statsSilent)
	}
}

func (in *inst) handleQueueConfig(ctx *symexec.Context, msg *symbuf.Buffer) {
	b := &in.sw.b
	ctx.Cover(b.queueEntry)
	if !in.checkLen(ctx, msg, openflow.QueueGetConfigRequestLen) {
		return
	}
	port := msg.U16(agents.OffQGCPort)
	if ctx.BranchSite(b.brQueuePort, sym.EqConst(port, 0)) {
		// Reference switch crash #3 (§5.1.2): queue configuration request
		// for port number 0 hits a memory error.
		ctx.Cover(b.queueCrash)
		ctx.Crash("memory error: queue config request for port 0")
	}
	if ctx.BranchSite(b.brQueuePort, sym.Ule(port, sym.Const(16, NumPorts))) {
		ctx.Cover(b.queueReply)
		ctx.Emit(trace.NewBuilder("msg:QUEUE_GET_CONFIG_REPLY port=").Expr(port).Build())
		return
	}
	ctx.Cover(b.queueBad)
	ctx.Emit(trace.Error(openflow.ErrQueueOpFailed, openflow.QOFCBadPort))
}

// HandlePacket implements agents.Instance: the data plane probe path.
func (in *inst) HandlePacket(ctx *symexec.Context, pkt *dataplane.Packet) {
	in.lookupAndApply(ctx, pkt, true)
}

func (in *inst) lookupAndApply(ctx *symexec.Context, pkt *dataplane.Packet, allowMiss bool) {
	b := &in.sw.b
	ctx.Cover(b.pktEntry)
	// Packet parsing: classify the headers before matching. Concrete
	// probes fold these branches; a symbolic probe forks here — the
	// ~3.5x path cost Table 5's "Symbolic Probe" row measures.
	if ctx.BranchSite(b.brPktParse, pkt.IsIPv4()) {
		proto := pkt.MatchNWProto()
		if !ctx.BranchSite(b.brPktParse, sym.EqConst(proto, dataplane.ProtoTCP)) {
			if !ctx.BranchSite(b.brPktParse, sym.EqConst(proto, dataplane.ProtoUDP)) {
				ctx.BranchSite(b.brPktParse, sym.EqConst(proto, dataplane.ProtoICMP))
			}
		}
	}
	ctx.BranchSite(b.brPktParse, pkt.HasVLANTag())
	ctx.Cover(b.pktMatch)

	// Priority order: branch on pairwise priority comparisons when
	// symbolic (the tests install at most a few entries).
	order := in.priorityOrder(ctx)
	for _, idx := range order {
		e := in.table.Entries[idx]
		if branchAll(ctx, b.brPktMatch, e.MatchConds(pkt)) {
			ctx.Cover(b.pktApply)
			e.Packets++
			out := pkt.Clone()
			for i, a := range e.Actions {
				_ = i
				if !in.applyAction(ctx, out, a, symActionLen(a), pkt.InPort, false) {
					return
				}
			}
			if len(e.Actions) == 0 {
				// An entry with no actions drops matching packets.
				ctx.Emit(trace.Drop("probe"))
			}
			return
		}
	}
	if !allowMiss {
		ctx.Emit(trace.Drop("probe"))
		return
	}
	// Table miss: forward to the controller, truncated to miss_send_len.
	ctx.Cover(b.pktMiss)
	pktLen := uint64(probeWireLen(pkt))
	var dataLen *sym.Expr
	if ctx.BranchSite(b.brMissLen, sym.Ult(in.missSendLen, sym.Const(16, pktLen))) {
		dataLen = in.missSendLen
	} else {
		dataLen = sym.Const(16, pktLen)
	}
	ctx.Emit(trace.PacketIn(openflow.ReasonNoMatch, dataLen, pkt))
}

// priorityOrder returns entry indices in descending priority order,
// branching on comparisons between symbolic priorities.
func (in *inst) priorityOrder(ctx *symexec.Context) []int {
	b := &in.sw.b
	n := len(in.table.Entries)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Insertion sort with symbolic comparisons; stable so insertion order
	// breaks ties.
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			a := in.table.Entries[order[j-1]]
			bEnt := in.table.Entries[order[j]]
			if ctx.BranchSite(b.brPktPriority, sym.Ult(a.Priority, bEnt.Priority)) {
				order[j-1], order[j] = order[j], order[j-1]
			} else {
				break
			}
		}
	}
	return order
}

// symActionLen infers the wire length of a parsed symbolic action from
// which argument views were populated.
func symActionLen(a flowtable.SymAction) int {
	if a.Arg48 != nil {
		return 16
	}
	return 8
}

// probeWireLen computes the concrete wire length of a probe packet.
func probeWireLen(pkt *dataplane.Packet) int {
	return len(pkt.Serialize(nil))
}
