package sched

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"github.com/soft-testing/soft/internal/agents/modified"
	"github.com/soft-testing/soft/internal/agents/refswitch"
	"github.com/soft-testing/soft/internal/dist"
	"github.com/soft-testing/soft/internal/harness"
	"github.com/soft-testing/soft/internal/store"
)

var (
	testAgents = []string{"ref", "modified"}
	testTests  = []string{"Packet Out", "Stats Request"}
)

func reportBytes(t *testing.T, r *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatalf("Report.Write: %v", err)
	}
	return buf.Bytes()
}

// cellReference explores one cell the plain single-process way and
// serializes it with Elapsed zeroed.
func cellReference(t *testing.T, agentName, testName string) []byte {
	t.Helper()
	tt, ok := harness.TestByName(testName)
	if !ok {
		t.Fatalf("missing test %q", testName)
	}
	o := harness.Options{WantModels: true, Workers: 4, CanonicalCut: true}
	var r *harness.Result
	switch agentName {
	case "ref":
		r = harness.Explore(refswitch.New(), tt, o)
	case "modified":
		r = harness.Explore(modified.New(), tt, o)
	default:
		t.Fatalf("unknown agent %q", agentName)
	}
	ser := r.Serialized()
	ser.Elapsed = 0
	var buf bytes.Buffer
	if err := ser.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func cellBytes(t *testing.T, c *Cell) []byte {
	t.Helper()
	clone := *c.Result
	clone.Elapsed = 0
	var buf bytes.Buffer
	if err := clone.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMatrixLocal is the fleetless baseline: every cell matches an
// individual single-process exploration byte for byte, and the crosscheck
// phase covers every pair on every test.
func TestMatrixLocal(t *testing.T) {
	rep, err := RunMatrix(context.Background(), testAgents, testTests, Options{
		Models: true, CrossCheck: true,
	})
	if err != nil {
		t.Fatalf("RunMatrix: %v", err)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(rep.Cells))
	}
	for i := range rep.Cells {
		c := &rep.Cells[i]
		if want := cellReference(t, c.Agent, c.Test); !bytes.Equal(cellBytes(t, c), want) {
			t.Errorf("cell %s / %s differs from individual exploration", c.Agent, c.Test)
		}
		if c.CacheHit {
			t.Errorf("cell %s / %s claims a cache hit with no store", c.Agent, c.Test)
		}
	}
	// 2 agents → 1 pair per test → 2 checks.
	if len(rep.Checks) != 2 {
		t.Fatalf("checks = %d, want 2", len(rep.Checks))
	}
	// ref vs modified on Packet Out must surface the injected
	// modifications (the §5.1.1 experiment's visible subset).
	pk := rep.Checks[0]
	if pk.Test != "Packet Out" || len(pk.Report.Inconsistencies) == 0 {
		t.Errorf("Packet Out check found no inconsistencies: %+v", pk)
	}
	if rep.SolverStats.Queries == 0 {
		t.Error("aggregated solver stats are empty")
	}
}

// TestMatrixFleetMatchesLocal is the tentpole acceptance property: the
// same matrix run over a persistent 2-worker fleet produces a
// byte-identical canonical report — and byte-identical cells — to the
// fleetless sequential run.
func TestMatrixFleetMatchesLocal(t *testing.T) {
	local, err := RunMatrix(context.Background(), testAgents, testTests, Options{
		Models: true, CrossCheck: true, Workers: 1,
	})
	if err != nil {
		t.Fatalf("local RunMatrix: %v", err)
	}
	want := reportBytes(t, local)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fleet := dist.NewFleet(ln, dist.FleetConfig{DrainTimeout: 200 * time.Millisecond})
	defer fleet.Close()
	ctx := context.Background()
	w1 := make(chan error, 1)
	w2 := make(chan error, 1)
	go func() { w1 <- dist.Work(ctx, ln.Addr().String(), dist.WorkerConfig{Workers: 2}) }()
	go func() { w2 <- dist.Work(ctx, ln.Addr().String(), dist.WorkerConfig{Workers: 2}) }()

	rep, err := RunMatrix(ctx, testAgents, testTests, Options{
		Models: true, CrossCheck: true, Fleet: fleet,
	})
	if err != nil {
		t.Fatalf("fleet RunMatrix: %v", err)
	}
	fleet.Close()
	for _, ch := range []<-chan error{w1, w2} {
		select {
		case err := <-ch:
			if err != nil {
				t.Errorf("worker: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Error("worker did not exit")
		}
	}

	if got := reportBytes(t, rep); !bytes.Equal(got, want) {
		t.Fatalf("fleet campaign report differs from fleetless run\n--- local\n%s\n--- fleet\n%s", want, got)
	}
	if rep.FleetStats == nil || rep.FleetStats.JobsCompleted != 4 {
		t.Errorf("fleet stats missing or wrong: %+v", rep.FleetStats)
	}
}

// crashingWorker connects with the real Work loop under a context the test
// cancels after the first lease lands; the abrupt close mid-lease is the
// crash. (SIGKILL-level coverage lives in the cmd/soft e2e.)
func crashingWorker(t *testing.T, addr string) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		dist.Work(ctx, addr, dist.WorkerConfig{Name: "crasher", Workers: 1})
	}()
	// Give it long enough to take a lease mid-campaign, then kill it.
	time.Sleep(150 * time.Millisecond)
	cancel()
	<-done
}

// TestMatrixWorkerCrash: losing a worker mid-campaign must not change the
// campaign output.
func TestMatrixWorkerCrash(t *testing.T) {
	local, err := RunMatrix(context.Background(), testAgents, testTests, Options{
		Models: true, CrossCheck: true, Workers: 1,
	})
	if err != nil {
		t.Fatalf("local RunMatrix: %v", err)
	}
	want := reportBytes(t, local)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fleet := dist.NewFleet(ln, dist.FleetConfig{DrainTimeout: 200 * time.Millisecond})
	defer fleet.Close()
	ctx := context.Background()

	repCh := make(chan *Report, 1)
	errCh := make(chan error, 1)
	go func() {
		rep, err := RunMatrix(ctx, testAgents, testTests, Options{
			Models: true, CrossCheck: true, Fleet: fleet,
		})
		repCh <- rep
		errCh <- err
	}()

	// One worker crashes mid-campaign; a healthy one finishes the job.
	go crashingWorker(t, ln.Addr().String())
	healthy := make(chan error, 1)
	go func() { healthy <- dist.Work(ctx, ln.Addr().String(), dist.WorkerConfig{Workers: 2}) }()

	rep := <-repCh
	if err := <-errCh; err != nil {
		t.Fatalf("fleet RunMatrix: %v", err)
	}
	fleet.Close()
	select {
	case <-healthy:
	case <-time.After(30 * time.Second):
		t.Error("healthy worker did not exit")
	}
	if got := reportBytes(t, rep); !bytes.Equal(got, want) {
		t.Fatal("campaign output changed after a worker crash")
	}
}

// TestMatrixStore is the satellite invalidation property at campaign
// level: a warm second run hits the store for every cell and produces
// byte-identical report output; changing the code version, the engine
// config, or MaxPaths misses.
func TestMatrixStore(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Models: true, CrossCheck: true, Store: st, CodeVersion: "v1"}

	cold, err := RunMatrix(context.Background(), testAgents, testTests, base)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if cold.CacheHits != 0 || cold.CacheMisses != 4 {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/4", cold.CacheHits, cold.CacheMisses)
	}
	if cold.GroupCacheHits != 0 {
		t.Fatalf("cold run claims group cache hits: %d", cold.GroupCacheHits)
	}

	warm, err := RunMatrix(context.Background(), testAgents, testTests, base)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if warm.CacheHits != 4 || warm.CacheMisses != 0 {
		t.Fatalf("warm run: hits=%d misses=%d, want 4/0", warm.CacheHits, warm.CacheMisses)
	}
	if warm.GroupCacheHits != 4 {
		t.Fatalf("warm run: group cache hits=%d, want 4", warm.GroupCacheHits)
	}
	if warm.SolverStats.Queries != cold.Checks[0].Report.SolverStats.Queries+cold.Checks[1].Report.SolverStats.Queries {
		t.Errorf("warm run did exploration solver work: %+v", warm.SolverStats)
	}
	if !bytes.Equal(reportBytes(t, cold), reportBytes(t, warm)) {
		t.Fatal("warm campaign report differs from cold run")
	}

	// Invalidation: each change must re-explore every cell.
	for name, opts := range map[string]Options{
		"code version": {Models: true, CrossCheck: true, Store: st, CodeVersion: "v2"},
		"max paths":    {Models: true, CrossCheck: true, Store: st, CodeVersion: "v1", MaxPaths: 7},
		"models off":   {CrossCheck: true, Store: st, CodeVersion: "v1"},
	} {
		rep, err := RunMatrix(context.Background(), testAgents, testTests, opts)
		if err != nil {
			t.Fatalf("%s run: %v", name, err)
		}
		if rep.CacheHits != 0 || rep.CacheMisses != 4 {
			t.Errorf("changing %s: hits=%d misses=%d, want 0/4", name, rep.CacheHits, rep.CacheMisses)
		}
	}

	// And each variant is itself cached now: the same variant re-run hits.
	rep, err := RunMatrix(context.Background(), testAgents, testTests,
		Options{Models: true, CrossCheck: true, Store: st, CodeVersion: "v2"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheHits != 4 {
		t.Errorf("re-run of code-version variant missed: hits=%d", rep.CacheHits)
	}
}

// TestMatrixTruncatedDeterminism: a MaxPaths-capped campaign still
// produces identical reports across layouts (the canonical cut at work).
func TestMatrixTruncatedDeterminism(t *testing.T) {
	opts := Options{Models: true, CrossCheck: true, MaxPaths: 5}
	a, err := RunMatrix(context.Background(), testAgents, testTests[:1], opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cells {
		if !a.Cells[i].Result.Truncated {
			t.Fatalf("cell %d not truncated at MaxPaths=5", i)
		}
	}
	opts.Workers = 4
	b, err := RunMatrix(context.Background(), testAgents, testTests[:1], opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportBytes(t, a), reportBytes(t, b)) {
		t.Fatal("truncated campaign differs across worker counts")
	}
}

// TestMatrixValidation pins the argument errors.
func TestMatrixValidation(t *testing.T) {
	ctx := context.Background()
	cases := [][2][]string{
		{{}, {"Packet Out"}},
		{{"ref"}, {}},
		{{"no-such-agent"}, {"Packet Out"}},
		{{"ref"}, {"No Such Test"}},
		{{"ref", "ref"}, {"Packet Out"}},
		{{"ref"}, {"Packet Out", "Packet Out"}},
	}
	for _, c := range cases {
		if _, err := RunMatrix(ctx, c[0], c[1], Options{}); err == nil {
			t.Errorf("RunMatrix(%v, %v) accepted", c[0], c[1])
		}
	}
}

// TestMatrixCancellation: cancelling the campaign context aborts promptly
// with the context error.
func TestMatrixCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunMatrix(ctx, testAgents, testTests, Options{CrossCheck: true}); err == nil {
		t.Fatal("cancelled campaign returned a report")
	}
}
