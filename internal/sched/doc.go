// Package sched implements the campaign scheduler: it runs a whole
// (agents × tests) evaluation matrix — the paper's full crosscheck
// campaign, every agent checked against every other over the OpenFlow test
// suite — on one persistent worker fleet, with an incremental result store
// so re-running a campaign only explores cells whose inputs changed.
//
// # Architecture
//
// A campaign has three layers, each reusing a determinism guarantee built
// below it:
//
//   - Cells. The matrix is a list of (agent, test) exploration cells. Each
//     cell's phase-1 result is byte-identical however it is produced —
//     sequentially, with in-process workers, or sharded across a fleet —
//     so the scheduler is free to route cells anywhere, cache them, and
//     compare campaign outputs bit for bit.
//
//   - Fleet. Distributed cells run as jobs on a dist.Fleet: the multi-job
//     extension of the wire protocol (see below) lets one set of worker
//     processes drain every cell without reconnecting, interleaving shards
//     of different cells over the same connections. Without a fleet the
//     scheduler explores cells in-process.
//
//   - Store. With a result store (internal/store), each cell is looked up
//     by the content hash of (agent, test, engine config, code version)
//     before exploring, and stored after. A warm re-run hits the store for
//     every unchanged cell; changing any key component — a new binary, a
//     different MaxPaths — misses by construction. The grouping phase's
//     BalancedOr construction (the remaining phase-2 hot spot) is cached
//     the same way, keyed by the content hash of the source result.
//
// # Multi-job protocol frames
//
// Protocol version 2 (internal/dist) made every work-carrying frame
// job-scoped so a fleet outlives any single exploration:
//
//	coord → job      {job id, agent, test, engine options}
//	coord → lease    {job id, lease id, decision prefixes}
//	work  → progress {job id, lease id, paths completed}
//	work  → result   {job id, lease id, one shard payload per prefix}
//
// A job frame is sent once per connection per job, lazily before that
// job's first lease on the connection. Leases batch several prefixes when
// the pending queue is long (coalescing); results carry one shard payload
// per leased prefix. A hello whose protocol version differs is refused
// with an explicit reject frame naming the wanted version.
//
// # Adaptive shard balancing
//
// The fixed `-shard-depth` split cannot know which subtrees are deep. The
// fleet's balancer fixes both failure modes at run time:
//
//   - Split slow subtrees: a leased shard that has not completed within
//     SplitAfter while workers starve is speculatively re-split — the
//     coordinator explores the subtree's shallow slice itself (the stub)
//     and queues each deeper fork as a new shard. The original lease keeps
//     running; whichever alternative completes first (the whole-subtree
//     result, or the stub plus all sub-shards) covers the subtree, and
//     byte-identical determinism makes the choice invisible in the output.
//
//   - Coalesce trivial ones: when pending shards far outnumber workers,
//     leases batch several prefixes, amortizing round trips and result
//     frames over subtrees too small to matter individually.
//
// # Cache keying
//
// Exploration results are keyed by SHA-256 over the canonical rendering of
// (agent name, test name, code version, MaxPaths, MaxDepth, models,
// clause sharing, canonical cut) — every input that can change exploration
// output. The code version defaults to the binary's VCS build stamp
// (store.DefaultCodeVersion) and should be pinned explicitly in
// deployments. Grouping constructions are keyed by the SHA-256 of the
// source result's serialized bytes with the wall-clock line zeroed
// (store.ResultHash), so they apply to any results file regardless of how
// it was produced. Because exploration is deterministic, a cache hit is
// bit-for-bit indistinguishable from a fresh run — which is what makes
// caching sound in a system whose acceptance property is byte-identity.
package sched
