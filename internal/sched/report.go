package sched

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// matrixMagic versions the canonical campaign-report format.
const matrixMagic = "soft-matrix v1"

// Write renders the campaign report canonically: the same campaign —
// however its cells were produced (fleet, in-process, store) and whatever
// the run's timings were — always writes the same bytes. Wall-clock
// fields, cache-hit flags, and fleet statistics are deliberately excluded;
// they describe the run, not the result. This is the file `soft matrix -o`
// writes and what campaign re-runs are compared by.
func (r *Report) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, matrixMagic)
	fmt.Fprintf(bw, "agents %d\n", len(r.Agents))
	for _, a := range r.Agents {
		fmt.Fprintf(bw, "agent %q\n", a)
	}
	fmt.Fprintf(bw, "tests %d\n", len(r.Tests))
	for _, t := range r.Tests {
		fmt.Fprintf(bw, "test %q\n", t)
	}
	fmt.Fprintf(bw, "cells %d\n", len(r.Cells))
	for i := range r.Cells {
		c := &r.Cells[i]
		fmt.Fprintf(bw, "cell agent=%q test=%q paths=%d truncated=%t result=%s\n",
			c.Agent, c.Test, c.Paths, c.Truncated, c.ResultHash)
		fmt.Fprintf(bw, "coverage %f %f\n", c.InstrPct, c.BranchPct)
	}
	fmt.Fprintf(bw, "checks %d\n", len(r.Checks))
	for i := range r.Checks {
		c := &r.Checks[i]
		fmt.Fprintf(bw, "check test=%q a=%q b=%q groups=%dx%d queries=%d inconsistencies=%d rootcauses=%d partial=%t\n",
			c.Test, c.AgentA, c.AgentB, c.GroupsA, c.GroupsB,
			c.Report.Queries, len(c.Report.Inconsistencies), c.RootCauses, c.Report.Partial)
		for _, inc := range c.Report.Inconsistencies {
			fmt.Fprintf(bw, "inc a=%d b=%d acrashed=%t bcrashed=%t\n",
				inc.AIndex, inc.BIndex, inc.ACrashed, inc.BCrashed)
			fmt.Fprintf(bw, "acanonical %q\n", inc.ACanonical)
			fmt.Fprintf(bw, "bcanonical %q\n", inc.BCanonical)
			// Witness models are canonical (a pure function of the
			// constraints), so they are part of the deterministic output.
			names := make([]string, 0, len(inc.Witness))
			for n := range inc.Witness {
				names = append(names, n)
			}
			sort.Strings(names)
			fmt.Fprint(bw, "witness")
			for _, n := range names {
				fmt.Fprintf(bw, " %s=%d", n, inc.Witness[n])
			}
			fmt.Fprintln(bw)
		}
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}
