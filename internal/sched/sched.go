package sched

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"github.com/soft-testing/soft/internal/agents"
	"github.com/soft-testing/soft/internal/crosscheck"
	"github.com/soft-testing/soft/internal/dist"
	"github.com/soft-testing/soft/internal/group"
	"github.com/soft-testing/soft/internal/harness"
	"github.com/soft-testing/soft/internal/obs"
	"github.com/soft-testing/soft/internal/solver"
	"github.com/soft-testing/soft/internal/store"
)

// Options tunes a campaign run.
type Options struct {
	// MaxPaths/MaxDepth/Models/ClauseSharing are the engine configuration
	// every cell shares (zero limits take the harness defaults). Campaign
	// explorations always use the canonical MaxPaths cut, so truncated
	// cells are byte-identical across layouts too.
	MaxPaths      int
	MaxDepth      int
	Models        bool
	ClauseSharing bool
	// Incremental/Merge select the exploration solver mode (see
	// harness.Options). They never change results, so they are deliberately
	// NOT part of the store cache key — a cached cell answers for every
	// solver mode.
	Incremental bool
	Merge       bool

	// Workers is the in-process parallelism: exploration workers for
	// fleetless cells, solver workers for the crosscheck phase (0 =
	// GOMAXPROCS).
	Workers int

	// Fleet, when set, runs every non-cached cell as a job on this
	// persistent worker fleet; nil explores in-process.
	Fleet *dist.Fleet
	// ShardDepth / Adaptive / SplitAfter configure fleet jobs (see
	// dist.JobConfig).
	ShardDepth int
	Adaptive   bool
	SplitAfter time.Duration

	// Store, when set, caches cell results and grouping constructions;
	// CodeVersion pins the code component of the cache key (default
	// store.DefaultCodeVersion()).
	Store       *store.Store
	CodeVersion string

	// CrossCheck runs phase 2 over every agent pair per test. (The
	// explore-only mode still populates the store.)
	CrossCheck bool
	// Budget bounds each pair's crosscheck wall-clock time (0 =
	// unlimited). A non-zero budget can mark checks partial, which breaks
	// run-to-run byte-identity; leave it zero when comparing reports.
	Budget time.Duration

	// Progress, when set, is called after each completed cell and each
	// completed pair check with (done, total) counts over cells + checks.
	Progress func(done, total int)
	// Log, when set, receives one line per cell and check.
	Log io.Writer

	// TraceID is the campaign's trace correlation id, forwarded to every
	// fleet job so coordinator, worker, and daemon log lines (and the
	// merged span timeline) share one id. Zero means untraced (fleet jobs
	// mint their own when a tracer is active). Pure observability.
	TraceID uint64
}

// Cell is one (agent, test) entry of the campaign matrix.
type Cell struct {
	Agent string
	Test  string
	// Result is the cell's phase-1 result — cached or freshly explored,
	// the bytes are identical. It is nil in reports parsed back from the
	// canonical format (ReadReport), which carries only the summary below.
	Result *harness.SerializedResult
	// ResultHash is the content address of Result (wall clock excluded).
	ResultHash string
	// Paths/Truncated/InstrPct/BranchPct summarize Result — the canonical
	// report surface, valid whether or not Result itself is present.
	Paths               int
	Truncated           bool
	InstrPct, BranchPct float64
	// CacheHit reports the result came from the store.
	CacheHit bool
	// SolverStats/BranchQueries count the exploration work (zero for cache
	// hits — that is the point).
	SolverStats   solver.Stats
	BranchQueries int64
	Elapsed       time.Duration
}

// PairCheck is one crosscheck — two agents compared on one test.
type PairCheck struct {
	Test   string
	AgentA string
	AgentB string
	Report *crosscheck.Report
	// RootCauses is Report.RootCauses() captured at check time: the
	// distinct-template estimate survives canonical serialization even
	// though the templates themselves are not written.
	RootCauses int
	// GroupsA/GroupsB are the two sides' distinct-behavior counts;
	// GroupCacheHits counts how many of the two grouping constructions
	// came from the store (0–2).
	GroupsA, GroupsB int
	GroupCacheHits   int
}

// Report is the campaign outcome: per-cell results, aggregated crosscheck
// findings, and fleet/solver/cache statistics. Write renders the canonical
// machine-readable form.
type Report struct {
	Agents []string
	Tests  []string
	// Cells is agent-major: Cells[a*len(Tests)+t].
	Cells []Cell
	// Checks holds one entry per (test, unordered agent pair), test-major,
	// pairs in agent order.
	Checks []PairCheck

	// CacheHits/CacheMisses count cell-result store lookups;
	// GroupCacheHits/GroupCacheMisses the grouping-construction lookups.
	CacheHits, CacheMisses           int
	GroupCacheHits, GroupCacheMisses int

	// FleetStats snapshots the fleet's lifecycle counters at campaign end
	// (nil for fleetless runs).
	FleetStats *dist.FleetStats
	// SolverStats aggregates the solver work across every fresh
	// exploration and every crosscheck; BranchQueries the explorations'
	// frontier feasibility queries.
	SolverStats   solver.Stats
	BranchQueries int64
	Elapsed       time.Duration
}

// CellAt returns the cell for (agent, test), nil if absent.
func (r *Report) CellAt(agent, test string) *Cell {
	for i := range r.Cells {
		if r.Cells[i].Agent == agent && r.Cells[i].Test == test {
			return &r.Cells[i]
		}
	}
	return nil
}

// Inconsistencies sums discovered behavioral differences across checks.
func (r *Report) Inconsistencies() int {
	n := 0
	for i := range r.Checks {
		n += len(r.Checks[i].Report.Inconsistencies)
	}
	return n
}

// RunMatrix runs the campaign: every (agent, test) cell is explored (or
// served from the store), then — with Options.CrossCheck — every agent
// pair is crosschecked on every test. Cells and checks are deterministic:
// two full campaign runs of the same binary and configuration produce
// byte-identical Report.Write output, whether cells came from the fleet,
// from in-process exploration, or from the store.
//
// Agent and test names must be non-empty, known, and duplicate-free;
// cancelling ctx aborts the campaign with ctx's error.
func RunMatrix(ctx context.Context, agentNames, testNames []string, o Options) (*Report, error) {
	if len(agentNames) == 0 {
		return nil, fmt.Errorf("sched: no agents given")
	}
	if len(testNames) == 0 {
		return nil, fmt.Errorf("sched: no tests given")
	}
	seen := map[string]bool{}
	for _, a := range agentNames {
		if _, err := agents.ByName(a); err != nil {
			return nil, fmt.Errorf("sched: %w", err)
		}
		if seen["a:"+a] {
			return nil, fmt.Errorf("sched: duplicate agent %q", a)
		}
		seen["a:"+a] = true
	}
	// Definition hashes of scenario-backed tests (empty for the built-in
	// suite), captured once at validation and folded into the store keys
	// below so an edited scenario definition misses the cache.
	defHash := make(map[string]string, len(testNames))
	for _, t := range testNames {
		ht, ok := harness.TestByName(t)
		if !ok {
			return nil, fmt.Errorf("sched: unknown test %q", t)
		}
		if seen["t:"+t] {
			return nil, fmt.Errorf("sched: duplicate test %q", t)
		}
		seen["t:"+t] = true
		defHash[t] = ht.DefHash
	}
	if o.MaxPaths == 0 {
		o.MaxPaths = harness.DefaultMaxPaths
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = harness.DefaultMaxDepth
	}
	if o.CodeVersion == "" {
		o.CodeVersion = store.DefaultCodeVersion()
	}
	start := time.Now()

	rep := &Report{
		Agents: append([]string(nil), agentNames...),
		Tests:  append([]string(nil), testNames...),
		Cells:  make([]Cell, len(agentNames)*len(testNames)),
	}
	nPairs := len(agentNames) * (len(agentNames) - 1) / 2
	totalWork := len(rep.Cells)
	if o.CrossCheck {
		totalWork += nPairs * len(testNames)
	}
	var doneWork int
	var progressMu sync.Mutex
	step := func() {
		if o.Progress == nil {
			return
		}
		progressMu.Lock()
		doneWork++
		d := doneWork
		progressMu.Unlock()
		o.Progress(d, totalWork)
	}
	// Cell goroutines log concurrently in fleet mode; serialize writes (the
	// fleet's own logger has its internal mutex, so interleaving with it is
	// at line granularity either way).
	var logMu sync.Mutex
	logf := func(format string, args ...any) {
		if o.Log == nil {
			return
		}
		logMu.Lock()
		defer logMu.Unlock()
		fmt.Fprintf(o.Log, "sched: "+format+"\n", args...)
	}

	// Phase 1: the cells. With a fleet, all cells run concurrently as jobs
	// and the fleet interleaves their shards over the shared workers;
	// fleetless cells run sequentially (the engine parallelizes inside a
	// cell via Workers). Either way the results are byte-identical.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var firstErr error
	var errMu sync.Mutex
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		errMu.Unlock()
	}
	runCell := func(ai, ti int) {
		cell := &rep.Cells[ai*len(testNames)+ti]
		cell.Agent = agentNames[ai]
		cell.Test = testNames[ti]
		sp := obs.StartSpan("cell:" + cell.Agent + "/" + cell.Test)
		defer sp.End()
		cellStart := time.Now()

		key := store.Key{
			Agent: cell.Agent, Test: cell.Test, CodeVersion: o.CodeVersion,
			Scenario: defHash[cell.Test],
			Config: store.Config{
				MaxPaths: o.MaxPaths, MaxDepth: o.MaxDepth,
				Models: o.Models, ClauseSharing: o.ClauseSharing, CanonicalCut: true,
			},
		}
		if o.Store != nil {
			res, ok, err := o.Store.GetResult(key)
			if err != nil {
				// A corrupt or unreadable entry is a miss, not a campaign
				// failure: re-explore and overwrite it (PutResult is
				// atomic), per the store's self-healing contract.
				logf("cell %s / %s: %v (re-exploring)", cell.Agent, cell.Test, err)
			}
			if ok {
				cell.Result = res
				cell.CacheHit = true
				cell.Elapsed = time.Since(cellStart)
				logf("cell %s / %s: cached (%d paths)", cell.Agent, cell.Test, len(res.Paths))
				return
			}
		}

		if o.Fleet != nil {
			merged, err := o.Fleet.Run(runCtx, dist.JobConfig{
				AgentName: cell.Agent, TestName: cell.Test,
				MaxPaths: o.MaxPaths, MaxDepth: o.MaxDepth,
				WantModels: o.Models, ClauseSharing: o.ClauseSharing,
				Incremental: o.Incremental, Merge: o.Merge,
				ShardDepth: o.ShardDepth, Adaptive: o.Adaptive, SplitAfter: o.SplitAfter,
				TraceID: o.TraceID,
			})
			if err != nil {
				fail(err)
				return
			}
			cell.Result = merged.SerializedResult
			cell.SolverStats = merged.SolverStats
			cell.BranchQueries = merged.BranchQueries
		} else {
			agent, err := agents.ByName(cell.Agent)
			if err != nil {
				fail(err)
				return
			}
			test, _ := harness.TestByName(cell.Test)
			res := harness.ExploreContext(runCtx, agent, test, harness.Options{
				MaxPaths: o.MaxPaths, MaxDepth: o.MaxDepth,
				WantModels: o.Models, ClauseSharing: o.ClauseSharing,
				Incremental: o.Incremental, Merge: o.Merge,
				CanonicalCut: true, Workers: o.Workers,
			})
			if res.Cancelled || runCtx.Err() != nil {
				// A cancelled cell is not a result; the campaign aborts (a
				// partial matrix has no deterministic meaning).
				fail(context.Cause(runCtx))
				return
			}
			cell.Result = res.Serialized()
			cell.SolverStats = res.SolverStats
			cell.BranchQueries = res.BranchQueries
		}
		cell.Elapsed = time.Since(cellStart)
		logf("cell %s / %s: %d paths in %s", cell.Agent, cell.Test,
			len(cell.Result.Paths), cell.Elapsed.Round(time.Millisecond))
		if o.Store != nil {
			if err := o.Store.PutResult(key, cell.Result); err != nil {
				fail(err)
			}
		}
	}

	if o.Fleet != nil {
		// Bound concurrent jobs: each fleet job runs its frontier split in
		// this process, so unbounded fan-out would stampede the coordinator.
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		var wg sync.WaitGroup
		for ai := range agentNames {
			for ti := range testNames {
				wg.Add(1)
				sem <- struct{}{}
				go func(ai, ti int) {
					defer func() { <-sem; wg.Done() }()
					runCell(ai, ti)
					step()
				}(ai, ti)
			}
		}
		wg.Wait()
	} else {
		for ai := range agentNames {
			for ti := range testNames {
				runCell(ai, ti)
				step()
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i := range rep.Cells {
		cell := &rep.Cells[i]
		hash, err := store.ResultHash(cell.Result)
		if err != nil {
			return nil, err
		}
		cell.ResultHash = hash
		cell.Paths = len(cell.Result.Paths)
		cell.Truncated = cell.Result.Truncated
		cell.InstrPct = cell.Result.InstrPct
		cell.BranchPct = cell.Result.BranchPct
		if cell.CacheHit {
			rep.CacheHits++
		} else {
			rep.CacheMisses++
		}
		rep.SolverStats.Add(cell.SolverStats)
		rep.BranchQueries += cell.BranchQueries
	}

	// Phase 2: crosscheck every agent pair on every test. Groupings are
	// built once per cell (and served from the store when possible);
	// checks run with parallel solver workers but are deterministic — a
	// full parallel report is identical to a sequential one.
	if o.CrossCheck {
		grouped := make([]*group.Result, len(rep.Cells))
		groupHit := make([]bool, len(rep.Cells))
		groupsFor := func(i int) (*group.Result, error) {
			if grouped[i] != nil {
				return grouped[i], nil
			}
			cell := &rep.Cells[i]
			if o.Store != nil {
				g, ok, err := o.Store.GetGroups(cell.ResultHash, o.CodeVersion)
				if err != nil {
					// Corrupt groups entry: rebuild and overwrite.
					logf("cell %s / %s: %v (re-grouping)", cell.Agent, cell.Test, err)
				}
				if ok {
					grouped[i], groupHit[i] = g, true
					rep.GroupCacheHits++
					return g, nil
				}
			}
			g := group.Paths(cell.Result)
			if o.Store != nil {
				if err := o.Store.PutGroups(cell.ResultHash, o.CodeVersion, g); err != nil {
					return nil, err
				}
				rep.GroupCacheMisses++
			}
			grouped[i] = g
			return g, nil
		}
		for ti, test := range testNames {
			for ai := 0; ai < len(agentNames); ai++ {
				for bi := ai + 1; bi < len(agentNames); bi++ {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					ia, ib := ai*len(testNames)+ti, bi*len(testNames)+ti
					ga, err := groupsFor(ia)
					if err != nil {
						return nil, err
					}
					gb, err := groupsFor(ib)
					if err != nil {
						return nil, err
					}
					csp := obs.StartSpan("crosscheck:" + test + ":" + agentNames[ai] + "-vs-" + agentNames[bi])
					check := crosscheck.RunOpts(ctx, ga, gb, crosscheck.Opts{
						Budget:  o.Budget,
						Workers: o.Workers,
					})
					csp.End()
					if check.Cancelled {
						return nil, ctx.Err()
					}
					hits := 0
					if groupHit[ia] {
						hits++
					}
					if groupHit[ib] {
						hits++
					}
					rep.Checks = append(rep.Checks, PairCheck{
						Test: test, AgentA: agentNames[ai], AgentB: agentNames[bi],
						Report:     check,
						RootCauses: check.RootCauses(),
						GroupsA:    len(ga.Groups), GroupsB: len(gb.Groups),
						GroupCacheHits: hits,
					})
					rep.SolverStats.Add(check.SolverStats)
					logf("check %s: %s vs %s: %d inconsistencies (%d queries)",
						test, agentNames[ai], agentNames[bi],
						len(check.Inconsistencies), check.Queries)
					step()
				}
			}
		}
	}

	if o.Fleet != nil {
		st := o.Fleet.Stats()
		rep.FleetStats = &st
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}
