package sched

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/soft-testing/soft/internal/crosscheck"
	"github.com/soft-testing/soft/internal/sym"
)

// ReadReport parses a canonical campaign report (the exact bytes Write
// produces) back into a Report. The canonical format is a summary: parsed
// cells carry Paths/Truncated/coverage/ResultHash but a nil Result, and
// parsed checks carry every inconsistency (indices, canonical behaviors,
// witness models, crash flags) but not the unserialized trace templates —
// RootCauses preserves the template-derived count. Write∘ReadReport is the
// identity on canonical bytes, which is what lets a remote campaign
// service ship reports by their canonical form alone.
func ReadReport(r io.Reader) (*Report, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	line := func() (string, bool) {
		if !sc.Scan() {
			return "", false
		}
		return sc.Text(), true
	}
	need := func(what string) (string, error) {
		l, ok := line()
		if !ok {
			return "", fmt.Errorf("sched: truncated report: missing %s", what)
		}
		return l, nil
	}

	l, ok := line()
	if !ok {
		return nil, fmt.Errorf("sched: not a campaign report: empty input, expected %q header", matrixMagic)
	}
	if l != matrixMagic {
		return nil, fmt.Errorf("sched: not a campaign report: expected %q header, got %q", matrixMagic, l)
	}
	rep := &Report{}

	count := func(prefix string) (int, error) {
		l, err := need(prefix)
		if err != nil {
			return 0, err
		}
		rest, found := strings.CutPrefix(l, prefix+" ")
		if !found {
			return 0, fmt.Errorf("sched: expected %q line, got %q", prefix, l)
		}
		n, err := strconv.Atoi(rest)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("sched: bad %s count %q", prefix, rest)
		}
		return n, nil
	}

	nAgents, err := count("agents")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nAgents; i++ {
		l, err := need("agent")
		if err != nil {
			return nil, err
		}
		var a string
		if _, err := fmt.Sscanf(l, "agent %q", &a); err != nil {
			return nil, fmt.Errorf("sched: bad agent line %q: %v", l, err)
		}
		rep.Agents = append(rep.Agents, a)
	}
	nTests, err := count("tests")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nTests; i++ {
		l, err := need("test")
		if err != nil {
			return nil, err
		}
		var t string
		if _, err := fmt.Sscanf(l, "test %q", &t); err != nil {
			return nil, fmt.Errorf("sched: bad test line %q: %v", l, err)
		}
		rep.Tests = append(rep.Tests, t)
	}

	nCells, err := count("cells")
	if err != nil {
		return nil, err
	}
	rep.Cells = make([]Cell, nCells)
	for i := 0; i < nCells; i++ {
		c := &rep.Cells[i]
		l, err := need("cell")
		if err != nil {
			return nil, err
		}
		if _, err := fmt.Sscanf(l, "cell agent=%q test=%q paths=%d truncated=%t result=%s",
			&c.Agent, &c.Test, &c.Paths, &c.Truncated, &c.ResultHash); err != nil {
			return nil, fmt.Errorf("sched: bad cell line %q: %v", l, err)
		}
		l, err = need("coverage")
		if err != nil {
			return nil, err
		}
		if _, err := fmt.Sscanf(l, "coverage %f %f", &c.InstrPct, &c.BranchPct); err != nil {
			return nil, fmt.Errorf("sched: bad coverage line %q: %v", l, err)
		}
	}

	nChecks, err := count("checks")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nChecks; i++ {
		l, err := need("check")
		if err != nil {
			return nil, err
		}
		var (
			pc   PairCheck
			nInc int
			cr   = &crosscheck.Report{}
		)
		if _, err := fmt.Sscanf(l, "check test=%q a=%q b=%q groups=%dx%d queries=%d inconsistencies=%d rootcauses=%d partial=%t",
			&pc.Test, &pc.AgentA, &pc.AgentB, &pc.GroupsA, &pc.GroupsB,
			&cr.Queries, &nInc, &pc.RootCauses, &cr.Partial); err != nil {
			return nil, fmt.Errorf("sched: bad check line %q: %v", l, err)
		}
		cr.AgentA, cr.AgentB, cr.Test = pc.AgentA, pc.AgentB, pc.Test
		for k := 0; k < nInc; k++ {
			inc := crosscheck.Inconsistency{}
			l, err := need("inc")
			if err != nil {
				return nil, err
			}
			if _, err := fmt.Sscanf(l, "inc a=%d b=%d acrashed=%t bcrashed=%t",
				&inc.AIndex, &inc.BIndex, &inc.ACrashed, &inc.BCrashed); err != nil {
				return nil, fmt.Errorf("sched: bad inc line %q: %v", l, err)
			}
			if l, err = need("acanonical"); err != nil {
				return nil, err
			}
			if _, err := fmt.Sscanf(l, "acanonical %q", &inc.ACanonical); err != nil {
				return nil, fmt.Errorf("sched: bad acanonical line %q: %v", l, err)
			}
			if l, err = need("bcanonical"); err != nil {
				return nil, err
			}
			if _, err := fmt.Sscanf(l, "bcanonical %q", &inc.BCanonical); err != nil {
				return nil, fmt.Errorf("sched: bad bcanonical line %q: %v", l, err)
			}
			if l, err = need("witness"); err != nil {
				return nil, err
			}
			rest, found := strings.CutPrefix(l, "witness")
			if !found {
				return nil, fmt.Errorf("sched: expected witness line, got %q", l)
			}
			inc.Witness = sym.Assignment{}
			for _, pair := range strings.Fields(rest) {
				name, val, found := strings.Cut(pair, "=")
				if !found {
					return nil, fmt.Errorf("sched: bad witness pair %q", pair)
				}
				v, err := strconv.ParseUint(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("sched: bad witness value %q: %v", pair, err)
				}
				inc.Witness[name] = v
			}
			cr.Inconsistencies = append(cr.Inconsistencies, inc)
		}
		pc.Report = cr
		rep.Checks = append(rep.Checks, pc)
	}

	l, err = need("end")
	if err != nil {
		return nil, err
	}
	if l != "end" {
		return nil, fmt.Errorf("sched: expected end line, got %q", l)
	}
	return rep, nil
}
