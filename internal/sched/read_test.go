package sched

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestReportReadRoundTrip: Write∘ReadReport is the identity on canonical
// report bytes, for a real campaign with inconsistencies (ref vs modified)
// — the invariant the remote campaign service relies on to ship reports by
// their canonical form alone.
func TestReportReadRoundTrip(t *testing.T) {
	rep, err := RunMatrix(context.Background(), testAgents, testTests, Options{
		Models: true, Workers: 2, CrossCheck: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Inconsistencies() == 0 {
		t.Fatal("ref vs modified produced no inconsistencies; round trip would not cover witness lines")
	}
	want := reportBytes(t, rep)

	parsed, err := ReadReport(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("ReadReport: %v", err)
	}
	got := reportBytes(t, parsed)
	if !bytes.Equal(got, want) {
		t.Fatalf("Write(ReadReport(x)) != x\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}

	// The parsed summary is a faithful surface: same matrix, same counts.
	if len(parsed.Cells) != len(rep.Cells) || len(parsed.Checks) != len(rep.Checks) {
		t.Fatalf("parsed %d cells / %d checks, want %d / %d",
			len(parsed.Cells), len(parsed.Checks), len(rep.Cells), len(rep.Checks))
	}
	for i := range rep.Cells {
		if parsed.Cells[i].Paths != rep.Cells[i].Paths ||
			parsed.Cells[i].ResultHash != rep.Cells[i].ResultHash {
			t.Fatalf("cell %d summary drifted through the round trip", i)
		}
		if parsed.Cells[i].Result != nil {
			t.Fatal("parsed cells must not fabricate full results")
		}
	}
	if parsed.Inconsistencies() != rep.Inconsistencies() {
		t.Fatalf("parsed %d inconsistencies, want %d", parsed.Inconsistencies(), rep.Inconsistencies())
	}
}

// TestReadReportRejectsGarbage pins the error paths: wrong magic,
// truncation mid-structure.
func TestReadReportRejectsGarbage(t *testing.T) {
	if _, err := ReadReport(strings.NewReader("nonsense\n")); err == nil {
		t.Fatal("wrong magic accepted")
	}
	if _, err := ReadReport(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ReadReport(strings.NewReader(matrixMagic + "\nagents 1\n")); err == nil {
		t.Fatal("truncated report accepted")
	}
	if _, err := ReadReport(strings.NewReader(matrixMagic + "\nagents 1\nagent \"a\"\ntests 0\ncells 1\ncell bogus\n")); err == nil {
		t.Fatal("malformed cell line accepted")
	}
}
