// Package campaignd implements the durable always-on campaign service: a
// coordinator daemon that accepts (agents × tests) matrix jobs over an
// HTTP/JSON API, schedules them fair-share across tenants onto one shared
// result store (and, optionally, one persistent dist.Fleet of workers),
// and survives being killed at any instant.
//
// # Durability model
//
// The service keeps two kinds of durable state, both under the store
// directory:
//
//   - The write-ahead job journal (campaignd/jobs, campaignd/reports):
//     one atomic JSON record per job, re-written on every state
//     transition *before* the transition is acted on — a submission is
//     journaled before the HTTP ack, a start before execution, a report
//     before its done mark. Replay on open therefore recovers a
//     consistent job table; jobs found in the running state are requeued.
//
//   - The content-addressed result store itself, which is the durable
//     record of sub-job progress. Every completed cell of every campaign
//     is a store entry keyed by (agent, test, engine config, code
//     version); a requeued job's re-execution hits the cache for
//     everything the dead coordinator finished and re-explores only the
//     rest.
//
// The glue between the two is the engine's byte-identical determinism:
// because an exploration produces the same bytes at any worker count and
// any distributed layout, "re-run the job" and "resume the job" are
// observably the same operation, and a campaign interrupted by SIGKILL
// yields a canonical report byte-identical to an uninterrupted run.
//
// # Scheduling
//
// Jobs queue per tenant; at most Config.MaxActive run concurrently. The
// scheduler picks the next job from the tenant with the fewest running
// jobs (ties: least recently served, then first seen), so one backlogged
// tenant cannot starve the rest while a lone tenant still gets the whole
// service. The order is observable through each job's StartSeq.
//
// # API
//
// Server.Handler serves the versioned HTTP API (submit, list, fetch,
// SSE progress stream, report download, daemon status); Client is its Go
// counterpart, used by the soft CLI's submit/jobs/fetch verbs and by
// soft.RunMatrix when a campaign service address is configured. See the
// Handler documentation for the route table.
package campaignd
