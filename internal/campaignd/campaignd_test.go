package campaignd

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	_ "github.com/soft-testing/soft/internal/agents/modified"  // register "modified"
	_ "github.com/soft-testing/soft/internal/agents/ovs"       // register "ovs"
	_ "github.com/soft-testing/soft/internal/agents/refswitch" // register "ref"
	"github.com/soft-testing/soft/internal/obs"
	_ "github.com/soft-testing/soft/internal/scenario" // register the scenario test source
	"github.com/soft-testing/soft/internal/sched"
	"github.com/soft-testing/soft/internal/store"
)

// smallSpec is the cheapest real job: one agent, one test, no crosscheck.
func smallSpec(tenant string) JobSpec {
	return JobSpec{
		Tenant:      tenant,
		Agents:      []string{"ref"},
		Tests:       []string{"Packet Out"},
		Models:      true,
		CodeVersion: "test-v1",
	}
}

func newTestServer(t *testing.T, dir string) *Server {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Store: st, CodeVersion: "test-v1", Workers: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// referenceBytes runs the same campaign directly through sched and returns
// its canonical report — the oracle every service-produced report must
// match byte for byte.
func referenceBytes(t *testing.T, spec JobSpec) []byte {
	t.Helper()
	rep, err := sched.RunMatrix(context.Background(), spec.Agents, spec.Tests, sched.Options{
		MaxPaths:      spec.MaxPaths,
		MaxDepth:      spec.MaxDepth,
		Models:        spec.Models,
		ClauseSharing: spec.ClauseSharing,
		CrossCheck:    spec.CrossCheck,
		Workers:       4,
	})
	if err != nil {
		t.Fatalf("reference RunMatrix: %v", err)
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServiceSubmitRunFetch drives the full HTTP surface end to end
// in-process: submit over the API, stream progress, fetch the report, and
// demand byte-identity with a direct fleetless run of the same campaign.
func TestServiceSubmitRunFetch(t *testing.T) {
	s := newTestServer(t, t.TempDir())
	ctx, cancel := context.WithCancel(context.Background())
	defer func() { cancel(); s.Close() }()
	s.Start(ctx)

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := NewClient(ts.URL)

	spec := JobSpec{
		Tenant:      "alice",
		Agents:      []string{"ref", "modified"},
		Tests:       []string{"Packet Out"},
		Models:      true,
		CrossCheck:  true,
		CodeVersion: "test-v1",
	}
	j, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if j.ID == "" || j.State != StateQueued {
		t.Fatalf("submitted job = %+v, want queued with an id", j)
	}

	var events []Event
	final, err := cl.Watch(ctx, j.ID, func(ev Event) { events = append(events, ev) })
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("final state = %s (error %q), want done", final.State, final.Error)
	}
	if len(events) == 0 || !events[len(events)-1].State.terminal() {
		t.Fatalf("event stream %v must end with a terminal event", events)
	}
	if final.Inconsistencies == 0 {
		t.Fatalf("ref vs modified on Packet Out must report inconsistencies")
	}

	got, err := cl.Report(ctx, j.ID)
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	if want := referenceBytes(t, spec); !bytes.Equal(got, want) {
		t.Fatalf("service report differs from direct run (%d vs %d bytes)", len(got), len(want))
	}

	jobs, err := cl.Jobs(ctx, "alice")
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	if len(jobs) != 1 || jobs[0].ID != j.ID {
		t.Fatalf("Jobs(alice) = %+v, want the one submitted job", jobs)
	}
	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.Done != 1 || st.CodeVersion != "test-v1" {
		t.Fatalf("Status = %+v, want 1 done at code version test-v1", st)
	}
}

// TestJournalReplayResumesRunningJobs is the durability core: a job left
// in the running state by a dead coordinator is requeued on open, runs to
// completion, and its report matches an uninterrupted run byte for byte.
func TestJournalReplayResumesRunningJobs(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Forge the journal a SIGKILLed coordinator would leave behind: a job
	// journaled as running with no report.
	jr, err := openJournal(st.Dir() + "/campaignd")
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{
		Agents:      []string{"ref", "modified"},
		Tests:       []string{"Packet Out"},
		Models:      true,
		CrossCheck:  true,
		CodeVersion: "test-v1",
		Tenant:      "default",
	}
	dead := &Job{ID: jobID(7), Seq: 7, Spec: spec, State: StateRunning, StartSeq: 3, SubmittedUnix: 1}
	if err := jr.putJob(dead); err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{Store: st, CodeVersion: "test-v1", Workers: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	j, ok := s.Job(jobID(7))
	if !ok {
		t.Fatalf("replay lost job %s", jobID(7))
	}
	if j.State != StateQueued || j.Restarts != 1 {
		t.Fatalf("replayed job state=%s restarts=%d, want queued with 1 restart", j.State, j.Restarts)
	}
	// The requeue must itself be durable before any scheduling happens.
	onDisk, err := jr.jobs()
	if err != nil || len(onDisk) != 1 {
		t.Fatalf("journal after replay: %v, %d entries", err, len(onDisk))
	}
	if onDisk[0].State != StateQueued || onDisk[0].Restarts != 1 {
		t.Fatalf("journaled replay = %+v, want queued/restarts=1", onDisk[0])
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer func() { cancel(); s.Close() }()
	s.Start(ctx)
	waitState(t, s, jobID(7), StateDone)
	got, ok, err := s.Report(jobID(7))
	if err != nil || !ok {
		t.Fatalf("Report: ok=%t err=%v", ok, err)
	}
	if want := referenceBytes(t, spec); !bytes.Equal(got, want) {
		t.Fatalf("resumed report differs from uninterrupted run")
	}
	if s.nextSeq <= 7 {
		t.Fatalf("nextSeq = %d, must advance past replayed seq 7", s.nextSeq)
	}
}

// TestFairShareAcrossTenants submits a backlog for tenant a and a single
// job for tenant b, then checks the observable dispatch order: b's job
// must run second, not last.
func TestFairShareAcrossTenants(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Store: st, CodeVersion: "test-v1", Workers: 4, MaxActive: 1})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, tenant := range []string{"a", "a", "a", "b"} {
		j, err := s.Submit(smallSpec(tenant))
		if err != nil {
			t.Fatalf("Submit(%s): %v", tenant, err)
		}
		ids = append(ids, j.ID)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer func() { cancel(); s.Close() }()
	s.Start(ctx)
	for _, id := range ids {
		waitState(t, s, id, StateDone)
	}
	// Submission order: a1 a2 a3 b1. Fair share dispatches a1 first (tie
	// broken by first-seen), then owes b its turn: a1 b1 a2 a3.
	wantOrder := []string{ids[0], ids[3], ids[1], ids[2]}
	seq := map[string]uint64{}
	for _, id := range ids {
		j, _ := s.Job(id)
		seq[id] = j.StartSeq
	}
	for i := 1; i < len(wantOrder); i++ {
		if seq[wantOrder[i-1]] >= seq[wantOrder[i]] {
			t.Fatalf("dispatch order wrong: want %v, got seqs %v", wantOrder, seq)
		}
	}
}

// TestSubmitValidation covers the API's refusal paths.
func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, t.TempDir())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := NewClient(ts.URL)
	ctx := context.Background()

	cases := []struct {
		name string
		spec JobSpec
		want string
	}{
		{"unknown agent", JobSpec{Agents: []string{"nope"}, Tests: []string{"Packet Out"}}, "nope"},
		{"unknown test", JobSpec{Agents: []string{"ref"}, Tests: []string{"No Such Test"}}, "No Such Test"},
		{"bad tenant", JobSpec{Tenant: "a b", Agents: []string{"ref"}, Tests: []string{"Packet Out"}}, "tenant"},
		{"dup agent", JobSpec{Agents: []string{"ref", "ref"}, Tests: []string{"Packet Out"}}, "duplicate"},
	}
	for _, tc := range cases {
		if _, err := cl.Submit(ctx, tc.spec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	// Empty agents/tests expand to the full registry at submission time.
	j, err := cl.Submit(ctx, JobSpec{})
	if err != nil {
		t.Fatalf("Submit(empty): %v", err)
	}
	if len(j.Spec.Agents) < 2 || len(j.Spec.Tests) < 2 {
		t.Fatalf("empty spec expanded to %d agents × %d tests, want the full registry", len(j.Spec.Agents), len(j.Spec.Tests))
	}
	if j.Spec.Tenant != "default" {
		t.Fatalf("tenant = %q, want default", j.Spec.Tenant)
	}

	if _, err := cl.Job(ctx, "j999999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("Job(unknown) = %v, want a 404", err)
	}
	if _, err := cl.Job(ctx, "not-an-id"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("Job(malformed) = %v, want a 404", err)
	}
	// A queued job has no report yet: conflict, not not-found.
	if _, err := cl.Report(ctx, j.ID); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("Report(queued) = %v, want a 409", err)
	}
	resp, err := http.Get(ts.URL + apiPrefix + "/jobs/" + j.ID + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown sub-endpoint: HTTP %d, want 404", resp.StatusCode)
	}
}

func waitState(t *testing.T, s *Server, id string, want JobState) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if j.State == want {
			return
		}
		if j.State.terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, j.State, j.Error, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
}

// TestCancelQueuedJob cancels a job before any scheduler runs: the job
// must leave the queue, journal as terminal cancelled, refuse a second
// cancel, and stay cancelled across a coordinator restart.
func TestCancelQueuedJob(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, dir) // never started: jobs stay queued
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := NewClient(ts.URL)
	ctx := context.Background()

	first, err := cl.Submit(ctx, smallSpec("alice"))
	if err != nil {
		t.Fatal(err)
	}
	second, err := cl.Submit(ctx, smallSpec("alice"))
	if err != nil {
		t.Fatal(err)
	}

	got, err := cl.Cancel(ctx, first.ID)
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if got.State != StateCancelled || got.FinishedUnix == 0 {
		t.Fatalf("cancelled job = %+v, want terminal cancelled", got)
	}
	if _, err := cl.Cancel(ctx, first.ID); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("second Cancel = %v, want a 409", err)
	}
	if _, err := cl.Cancel(ctx, "j999999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("Cancel(unknown) = %v, want a 404", err)
	}
	st, err := cl.Status(ctx)
	if err != nil || st.Cancelled != 1 || st.Queued != 1 {
		t.Fatalf("Status = %+v (err %v), want 1 cancelled + 1 queued", st, err)
	}

	// A restarted coordinator must replay the cancellation as terminal —
	// never requeue it — while the untouched job keeps its place.
	s.Close()
	ts.Close()
	s2 := newTestServer(t, dir)
	defer s2.Close()
	if j, ok := s2.Job(first.ID); !ok || j.State != StateCancelled {
		t.Fatalf("after restart, job %s = %+v, want cancelled", first.ID, j)
	}
	if j, ok := s2.Job(second.ID); !ok || j.State != StateQueued {
		t.Fatalf("after restart, job %s = %+v, want queued", second.ID, j)
	}
}

// TestCancelRunningJob cancels mid-execution: the running matrix must
// abort (not run to completion), the job must settle as cancelled rather
// than requeued or failed, and the scheduler slot must free up for the
// next job.
func TestCancelRunningJob(t *testing.T) {
	s := newTestServer(t, t.TempDir())
	ctx, cancel := context.WithCancel(context.Background())
	defer func() { cancel(); s.Close() }()
	s.Start(ctx)

	// An expensive matrix so the job is reliably still running when the
	// cancel lands; cancellation must cut it short long before the
	// 120-second waitState ceiling.
	slow := JobSpec{
		Tenant:      "alice",
		Agents:      []string{"ref", "ovs"},
		Tests:       []string{"FlowMod", "Eth FlowMod"},
		Models:      true,
		CrossCheck:  true,
		CodeVersion: "test-v1",
	}
	j, err := s.Submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, j.ID, StateRunning)
	rec, err := s.Cancel(j.ID)
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if rec.State != StateCancelled {
		t.Fatalf("Cancel returned state %s, want cancelled", rec.State)
	}

	// The execute goroutine unwinds: running drops to zero and the state
	// stays cancelled (no requeue, no failure).
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := s.Status()
		if st.Running == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("running count never drained after cancel: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got, _ := s.Job(j.ID); got.State != StateCancelled {
		t.Fatalf("job settled as %s, want cancelled", got.State)
	}

	// The freed slot must schedule new work.
	next, err := s.Submit(smallSpec("alice"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, next.ID, StateDone)
}

// TestRetentionPrunesTerminalJobs bounds the journal with Retain=2: of
// four terminal jobs only the newest two survive — in memory, in the
// journal directory, and across a restart — while live jobs are immune.
func TestRetentionPrunesTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Store: st, CodeVersion: "test-v1", Workers: 4, Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var ids []string
	for i := 0; i < 5; i++ {
		j, err := s.Submit(smallSpec("alice"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	// Cancellation is the cheapest terminal transition: retire the first
	// four jobs oldest-first, leaving the fifth queued.
	for _, id := range ids[:4] {
		if _, err := s.Cancel(id); err != nil {
			t.Fatalf("Cancel(%s): %v", id, err)
		}
	}

	jobs := s.Jobs("")
	var kept []string
	for _, j := range jobs {
		kept = append(kept, j.ID)
	}
	want := []string{ids[2], ids[3], ids[4]}
	if len(kept) != len(want) || kept[0] != want[0] || kept[1] != want[1] || kept[2] != want[2] {
		t.Fatalf("after pruning, jobs = %v, want %v", kept, want)
	}
	if j, _ := s.Job(ids[4]); j.State != StateQueued {
		t.Fatalf("live job was disturbed by retention: %+v", j)
	}

	// The journal on disk must agree (pruned records deleted durably).
	jr, err := openJournal(st.Dir() + "/campaignd")
	if err != nil {
		t.Fatal(err)
	}
	onDisk, err := jr.jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(onDisk) != 3 {
		t.Fatalf("journal holds %d records after pruning, want 3", len(onDisk))
	}

	// Startup pruning: reopen with a tighter bound and the replayed
	// backlog shrinks again.
	s.Close()
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(Config{Store: st2, CodeVersion: "test-v1", Workers: 4, Retain: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if jobs := s2.Jobs(""); len(jobs) != 2 || jobs[0].ID != ids[3] || jobs[1].ID != ids[4] {
		got := make([]string, 0, len(jobs))
		for _, j := range jobs {
			got = append(got, j.ID)
		}
		t.Fatalf("after tighter restart, jobs = %v, want [%s %s]", got, ids[3], ids[4])
	}
}

// TestSubmitAcceptsScenarioNames checks the campaign service resolves
// scenario-backed tests through the shared test registry: a scenario job
// validates, runs, and reports like any Table 1 job.
func TestSubmitAcceptsScenarioNames(t *testing.T) {
	s := newTestServer(t, t.TempDir())
	ctx, cancel := context.WithCancel(context.Background())
	defer func() { cancel(); s.Close() }()
	s.Start(ctx)
	spec := JobSpec{
		Tenant:      "alice",
		Agents:      []string{"ref", "ovs"},
		Tests:       []string{"Add Modify"},
		Models:      true,
		CrossCheck:  true,
		CodeVersion: "test-v1",
	}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit(scenario): %v", err)
	}
	waitState(t, s, j.ID, StateDone)
	final, _ := s.Job(j.ID)
	if final.Inconsistencies < 1 {
		t.Fatalf("scenario job found %d inconsistencies, want at least 1 (the stateful nw_tos divergence)", final.Inconsistencies)
	}
	if want := referenceBytes(t, spec); true {
		got, ok, err := s.Report(j.ID)
		if err != nil || !ok {
			t.Fatalf("Report: ok=%t err=%v", ok, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("scenario job report differs from a direct sched run")
		}
	}
}

// TestTracedJobBundleDownload drives the traced-job lifecycle over the
// HTTP surface: submitting with trace=true mints a canonical trace id,
// the finished job's segment bundle downloads via the client and carries
// the daemon's job span, the default format is Chrome trace JSON, and
// the trace endpoint 404s/409s correctly for unknown and untraced jobs.
// The traced report must also stay byte-identical to an untraced one —
// tracing is observation-only at the service layer too.
func TestTracedJobBundleDownload(t *testing.T) {
	s := newTestServer(t, t.TempDir())
	ctx, cancel := context.WithCancel(context.Background())
	defer func() { cancel(); s.Close() }()
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := NewClient(ts.URL)

	// The untraced sibling is both the 409 subject and the byte-identity
	// oracle for the traced run.
	plain, err := cl.Submit(ctx, smallSpec("alice"))
	if err != nil {
		t.Fatalf("Submit(untraced): %v", err)
	}
	spec := smallSpec("alice")
	spec.Trace = true
	j, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("Submit(traced): %v", err)
	}
	if !j.Spec.Trace || j.Spec.TraceID == "" {
		t.Fatalf("traced submit did not mint a trace id: %+v", j.Spec)
	}
	if _, err := obs.ParseTraceID(j.Spec.TraceID); err != nil {
		t.Fatalf("minted trace id %q is not canonical: %v", j.Spec.TraceID, err)
	}
	waitState(t, s, plain.ID, StateDone)
	waitState(t, s, j.ID, StateDone)

	tracedRep, err := cl.Report(ctx, j.ID)
	if err != nil {
		t.Fatalf("Report(traced): %v", err)
	}
	plainRep, err := cl.Report(ctx, plain.ID)
	if err != nil {
		t.Fatalf("Report(untraced): %v", err)
	}
	if !bytes.Equal(tracedRep, plainRep) {
		t.Fatal("traced job report differs from untraced sibling: instrumentation leaked into the answer path")
	}

	// The client downloads the raw segment bundle; the job span the
	// daemon wrapped around execution must be in it.
	b, err := cl.Trace(ctx, j.ID)
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	if len(b.Segments) == 0 {
		t.Fatal("trace bundle has no segments")
	}
	var sawJobSpan bool
	for _, seg := range b.Segments {
		for _, ev := range seg.Events {
			if ev.Name == "job:"+j.ID {
				sawJobSpan = true
			}
		}
	}
	if !sawJobSpan {
		t.Fatalf("bundle misses the job:%s span: %+v", j.ID, b.Segments)
	}

	// Default (no ?format) is merged Chrome trace JSON, ready for
	// Perfetto.
	resp, err := http.Get(ts.URL + apiPrefix + "/jobs/" + j.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("trace Content-Type = %q, want application/json", ct)
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tf); err != nil {
		t.Fatalf("default trace format is not Chrome JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("Chrome trace carries no events")
	}

	// Error surface: untraced job conflicts, unknown job 404s.
	if _, err := cl.Trace(ctx, plain.ID); err == nil || !strings.Contains(err.Error(), "not traced") {
		t.Errorf("Trace(untraced) = %v, want a was-not-traced conflict", err)
	}
	if _, err := cl.Trace(ctx, "nope"); err == nil || !strings.Contains(err.Error(), "no such job") {
		t.Errorf("Trace(unknown) = %v, want no-such-job", err)
	}
}

// TestSubmitTraceparentHeader pins cross-process propagation into the
// daemon: a traceparent-style header on submit adopts the caller's trace
// identity without the body asking for tracing, and a malformed header
// is rejected rather than silently dropped.
func TestSubmitTraceparentHeader(t *testing.T) {
	s := newTestServer(t, t.TempDir())
	ctx, cancel := context.WithCancel(context.Background())
	defer func() { cancel(); s.Close() }()
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const callerID = uint64(0xabcdef1234567890)
	body, err := json.Marshal(smallSpec("alice"))
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+apiPrefix+"/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Soft-Traceparent", obs.FormatTraceparent(callerID))
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit with traceparent: HTTP %d", resp.StatusCode)
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	if !j.Spec.Trace || j.Spec.TraceID != obs.FormatTraceID(callerID) {
		t.Fatalf("header did not adopt caller trace context: trace=%t id=%q, want id %q",
			j.Spec.Trace, j.Spec.TraceID, obs.FormatTraceID(callerID))
	}
	waitState(t, s, j.ID, StateDone)
	b, err := NewClient(ts.URL).Trace(ctx, j.ID)
	if err != nil {
		t.Fatalf("Trace after header-propagated submit: %v", err)
	}
	if len(b.Segments) == 0 {
		t.Fatal("header-traced job drained no segments")
	}

	// Malformed header: reject loudly.
	req2, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+apiPrefix+"/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set("Soft-Traceparent", "00-zznothexzz-0000000000000000-01")
	resp2, err := ts.Client().Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed traceparent: HTTP %d, want 400", resp2.StatusCode)
	}
}
