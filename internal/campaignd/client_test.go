package campaignd

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestWatchReconnectsAfterStreamDrop pins Watch's reconnect contract
// against a scripted service: the first SSE connection drops mid-stream
// without a terminal event (a proxy timeout, as far as the client can
// tell), the liveness poll reports the job still running, and the second
// connection re-snapshots and finishes. Watch must resume transparently,
// deliver the terminal event exactly once, and return the done record.
func TestWatchReconnectsAfterStreamDrop(t *testing.T) {
	var (
		mu       sync.Mutex
		connects int
		finished bool
	)
	mux := http.NewServeMux()
	mux.HandleFunc(apiPrefix+"/jobs/j1/events", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		connects++
		n := connects
		mu.Unlock()
		w.Header().Set("Content-Type", "text/event-stream")
		fl := w.(http.Flusher)
		send := func(ev Event) {
			data, err := json.Marshal(ev)
			if err != nil {
				t.Errorf("marshal event: %v", err)
				return
			}
			fmt.Fprintf(w, "data: %s\n\n", data)
			fl.Flush()
		}
		if n == 1 {
			// Snapshot plus one progress frame, then return — closing the
			// connection with no terminal event.
			send(Event{Job: "j1", State: StateRunning, Done: 1, Total: 4})
			send(Event{Job: "j1", State: StateRunning, Done: 2, Total: 4})
			return
		}
		// Reconnect: the service re-snapshots current state on every
		// connect, then the job finishes. finished flips before the
		// terminal event goes out so the client's final Job fetch — which
		// races only against lines already on the wire — sees done.
		send(Event{Job: "j1", State: StateRunning, Done: 2, Total: 4})
		mu.Lock()
		finished = true
		mu.Unlock()
		send(Event{Job: "j1", State: StateDone, Done: 4, Total: 4})
	})
	mux.HandleFunc(apiPrefix+"/jobs/j1", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		state := StateRunning
		if finished {
			state = StateDone
		}
		mu.Unlock()
		json.NewEncoder(w).Encode(&Job{ID: "j1", State: state, Done: 4, Total: 4})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var events []Event
	final, err := NewClient(ts.URL).Watch(context.Background(), "j1",
		func(ev Event) { events = append(events, ev) })
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("final state = %s, want done", final.State)
	}
	mu.Lock()
	n := connects
	mu.Unlock()
	if n != 2 {
		t.Fatalf("event-stream connects = %d, want 2 (drop, then one reconnect)", n)
	}
	terminals := 0
	for _, ev := range events {
		if ev.State.terminal() {
			terminals++
		}
	}
	if terminals != 1 {
		t.Fatalf("terminal events delivered = %d, want exactly 1 (events: %+v)", terminals, events)
	}
	if last := events[len(events)-1]; !last.State.terminal() {
		t.Fatalf("last event = %+v, want the terminal one", last)
	}
}

// TestWatchPollsOutTerminalRace covers the other reconnect leg: the
// stream drops and by the time the client polls, the job has already
// finished. Watch must return the terminal record from the poll without
// opening another stream — no lost terminal, no extra connection.
func TestWatchPollsOutTerminalRace(t *testing.T) {
	var (
		mu       sync.Mutex
		connects int
	)
	mux := http.NewServeMux()
	mux.HandleFunc(apiPrefix+"/jobs/j2/events", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		connects++
		mu.Unlock()
		w.Header().Set("Content-Type", "text/event-stream")
		fl := w.(http.Flusher)
		fmt.Fprintf(w, "data: %s\n\n", `{"job":"j2","state":"running","done":3,"total":4}`)
		fl.Flush()
		// Drop; the job completes while the client is reconnecting.
	})
	mux.HandleFunc(apiPrefix+"/jobs/j2", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(&Job{ID: "j2", State: StateDone, Done: 4, Total: 4})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	final, err := NewClient(ts.URL).Watch(context.Background(), "j2", nil)
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("final state = %s, want done", final.State)
	}
	mu.Lock()
	n := connects
	mu.Unlock()
	if n != 1 {
		t.Fatalf("event-stream connects = %d, want 1 (the poll resolves the terminal state)", n)
	}
}
