package campaignd

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// JobState is a job's position in the service lifecycle.
type JobState string

// The job lifecycle: queued → running → done | failed | cancelled. A
// coordinator restart moves running jobs back to queued (the journal's
// replay), never to failed — execution state below the job level is
// recovered from the result store, not the journal. Cancellation is
// journaled as a terminal state, so a restarted coordinator does not
// requeue a cancelled job.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// terminal reports whether a state is final.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobSpec is what a client submits: one campaign matrix plus the engine
// configuration its cells share. Empty Agents/Tests mean "all registered";
// the daemon expands them at submission time so the journaled spec pins the
// concrete matrix.
type JobSpec struct {
	// Tenant names the job's owner for fair-share scheduling and listing;
	// empty means "default".
	Tenant string `json:"tenant,omitempty"`

	Agents []string `json:"agents"`
	Tests  []string `json:"tests"`

	MaxPaths      int  `json:"max_paths,omitempty"`
	MaxDepth      int  `json:"max_depth,omitempty"`
	Models        bool `json:"models"`
	ClauseSharing bool `json:"clause_sharing,omitempty"`
	CrossCheck    bool `json:"crosscheck"`

	// CodeVersion overrides the cache-key code version for this job's
	// store lookups; empty uses the daemon's version.
	CodeVersion string `json:"code_version,omitempty"`

	// Trace asks the daemon to collect a distributed trace for this job:
	// coordinator spans plus every worker's shipped segments, journaled at
	// job end and served by GET /api/v1/jobs/<id>/trace. Pure
	// observability — a traced job's report is byte-identical to an
	// untraced one.
	Trace bool `json:"trace,omitempty"`
	// TraceID is the job's 64-bit trace correlation id in hex (see
	// obs.FormatTraceID). Empty with Trace set means the daemon mints
	// one at submission so the journal pins it; setting it implies Trace.
	TraceID string `json:"trace_id,omitempty"`
}

// Job is one journaled campaign job: the durable record (spec, state,
// ownership, timestamps) plus live progress counters that are advisory
// between journal writes.
type Job struct {
	ID string `json:"id"`
	// Seq is the submission sequence number (IDs are derived from it).
	Seq  uint64  `json:"seq"`
	Spec JobSpec `json:"spec"`

	State JobState `json:"state"`
	// Error is set for failed jobs.
	Error string `json:"error,omitempty"`
	// Restarts counts coordinator restarts this job survived while
	// in flight.
	Restarts int `json:"restarts,omitempty"`
	// StartSeq is the scheduler's global dispatch counter value when the
	// job last started — the observable fair-share order.
	StartSeq uint64 `json:"start_seq,omitempty"`

	SubmittedUnix int64 `json:"submitted_unix"`
	StartedUnix   int64 `json:"started_unix,omitempty"`
	FinishedUnix  int64 `json:"finished_unix,omitempty"`

	// Done/Total are campaign work units (cells + pair checks) completed
	// and planned; Inconsistencies is set once the job is done.
	Done            int `json:"done,omitempty"`
	Total           int `json:"total,omitempty"`
	Inconsistencies int `json:"inconsistencies,omitempty"`
}

// clone returns a copy safe to hand across the API boundary.
func (j *Job) clone() *Job {
	c := *j
	c.Spec.Agents = append([]string(nil), j.Spec.Agents...)
	c.Spec.Tests = append([]string(nil), j.Spec.Tests...)
	return &c
}

// journal is the write-ahead job journal: one JSON file per job under
// <dir>/jobs, plus the canonical report bytes of completed jobs under
// <dir>/reports. Every write is atomic (temp file + rename), and state
// transitions are journaled before they are acted on — submission before
// the HTTP ack, start before execution, the report before the done mark —
// so a coordinator killed at any instant restarts into a consistent view:
// a job is either durably queued, durably running (requeued on replay), or
// durably finished with its report on disk.
type journal struct {
	dir string
}

func openJournal(dir string) (*journal, error) {
	for _, sub := range []string{"jobs", "reports", "traces"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("campaignd: %w", err)
		}
	}
	return &journal{dir: dir}, nil
}

func (jr *journal) jobPath(id string) string {
	return filepath.Join(jr.dir, "jobs", id+".json")
}

func (jr *journal) reportPath(id string) string {
	return filepath.Join(jr.dir, "reports", id+".report")
}

func (jr *journal) tracePath(id string) string {
	return filepath.Join(jr.dir, "traces", id+".trace.json")
}

// putJob journals a job record atomically.
func (jr *journal) putJob(j *Job) error {
	data, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return fmt.Errorf("campaignd: %w", err)
	}
	return jr.writeAtomic(jr.jobPath(j.ID), append(data, '\n'))
}

// jobs loads every journaled job, ordered by submission sequence.
func (jr *journal) jobs() ([]*Job, error) {
	entries, err := os.ReadDir(filepath.Join(jr.dir, "jobs"))
	if err != nil {
		return nil, fmt.Errorf("campaignd: %w", err)
	}
	var out []*Job
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(jr.dir, "jobs", e.Name()))
		if err != nil {
			return nil, fmt.Errorf("campaignd: %w", err)
		}
		j := &Job{}
		if err := json.Unmarshal(data, j); err != nil {
			return nil, fmt.Errorf("campaignd: corrupt journal entry %s: %w", e.Name(), err)
		}
		if j.ID != strings.TrimSuffix(e.Name(), ".json") {
			return nil, fmt.Errorf("campaignd: journal entry %s claims id %q", e.Name(), j.ID)
		}
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out, nil
}

// putReport persists a completed job's canonical report bytes. It is
// written before the job's done record, so a done job always has its
// report.
func (jr *journal) putReport(id string, data []byte) error {
	return jr.writeAtomic(jr.reportPath(id), data)
}

// putTrace persists a traced job's drained segment bundle (JSON). Traces
// are advisory: a failed write is logged, never fails the job.
func (jr *journal) putTrace(id string, data []byte) error {
	return jr.writeAtomic(jr.tracePath(id), data)
}

// trace loads a traced job's segment bundle; ok=false when absent (the
// job was untraced, or has not drained yet).
func (jr *journal) trace(id string) ([]byte, bool, error) {
	data, err := os.ReadFile(jr.tracePath(id))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("campaignd: %w", err)
	}
	return data, true, nil
}

// report loads a completed job's canonical report; ok=false when absent.
func (jr *journal) report(id string) ([]byte, bool, error) {
	data, err := os.ReadFile(jr.reportPath(id))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("campaignd: %w", err)
	}
	return data, true, nil
}

func (jr *journal) writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("campaignd: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("campaignd: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("campaignd: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("campaignd: %w", err)
	}
	return nil
}

// remove deletes a job's journal record, report, and trace (retention
// pruning). Missing files are fine — a cancelled or failed job has no
// report, an untraced job no trace.
func (jr *journal) remove(id string) error {
	var firstErr error
	for _, path := range []string{jr.jobPath(id), jr.reportPath(id), jr.tracePath(id)} {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			if firstErr == nil {
				firstErr = fmt.Errorf("campaignd: %w", err)
			}
		}
	}
	return firstErr
}

// jobID renders the canonical id for a submission sequence number.
func jobID(seq uint64) string { return fmt.Sprintf("j%06d", seq) }

// seqOf recovers the sequence number from an id ("" mismatch → 0, false).
func seqOf(id string) (uint64, bool) {
	num, found := strings.CutPrefix(id, "j")
	if !found {
		return 0, false
	}
	n, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}
