package campaignd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"github.com/soft-testing/soft/internal/obs"
)

// apiPrefix roots every route; bump it with any wire-incompatible change.
const apiPrefix = "/api/v1"

// Handler returns the service's HTTP API:
//
//	POST /api/v1/jobs             submit a JobSpec, 202 + the Job record
//	GET  /api/v1/jobs[?tenant=t]  list jobs (submission order)
//	GET    /api/v1/jobs/<id>        one job record
//	DELETE /api/v1/jobs/<id>        cancel a queued or running job
//	GET    /api/v1/jobs/<id>/events SSE progress stream until terminal
//	GET    /api/v1/jobs/<id>/report canonical report bytes (done jobs)
//	GET    /api/v1/jobs/<id>/metrics per-job timing snapshot (JSON)
//	GET    /api/v1/jobs/<id>/trace  merged Chrome trace JSON (traced jobs;
//	                                ?format=segments for the raw bundle)
//	GET    /api/v1/status           daemon counters
//	GET    /metrics                 Prometheus text exposition
//
// Routing is written against go1.21 ServeMux semantics (no method or
// wildcard patterns).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(apiPrefix+"/status", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, http.StatusOK, s.Status())
	})
	mux.HandleFunc(apiPrefix+"/jobs", s.handleJobs)
	mux.HandleFunc(apiPrefix+"/jobs/", s.handleJob)
	mux.HandleFunc("/metrics", handleMetrics)
	return mux
}

// handleMetrics serves the process-global registry as Prometheus text —
// solver, store, fleet, and campaignd metrics alike, since they all share
// the default registry.
func handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WritePrometheus(w)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var spec JobSpec
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, "bad job spec: %v", err)
			return
		}
		// A traceparent-style header propagates the caller's trace
		// context without touching the body; an explicit spec trace_id
		// wins over it.
		if spec.TraceID == "" {
			for _, h := range []string{"Soft-Traceparent", "Traceparent"} {
				v := r.Header.Get(h)
				if v == "" {
					continue
				}
				id, err := obs.ParseTraceparent(v)
				if err != nil {
					httpError(w, http.StatusBadRequest, "bad %s header: %v", h, err)
					return
				}
				spec.TraceID = obs.FormatTraceID(id)
				spec.Trace = true
				break
			}
		}
		j, err := s.Submit(spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusAccepted, j)
	case http.MethodGet:
		jobs := s.Jobs(r.URL.Query().Get("tenant"))
		if jobs == nil {
			jobs = []*Job{}
		}
		writeJSON(w, http.StatusOK, jobs)
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, apiPrefix+"/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if _, ok := seqOf(id); !ok {
		httpError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	if r.Method == http.MethodDelete && sub == "" {
		j, err := s.Cancel(id)
		switch {
		case errors.Is(err, ErrUnknownJob):
			httpError(w, http.StatusNotFound, "no such job %q", id)
		case errors.Is(err, ErrJobTerminal):
			httpError(w, http.StatusConflict, "%v", err)
		case err != nil:
			httpError(w, http.StatusInternalServerError, "%v", err)
		default:
			writeJSON(w, http.StatusOK, j)
		}
		return
	}
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only (DELETE on the job itself)")
		return
	}
	switch sub {
	case "":
		j, ok := s.Job(id)
		if !ok {
			httpError(w, http.StatusNotFound, "no such job %q", id)
			return
		}
		writeJSON(w, http.StatusOK, j)
	case "events":
		s.handleEvents(w, r, id)
	case "metrics":
		j, ok := s.Job(id)
		if !ok {
			httpError(w, http.StatusNotFound, "no such job %q", id)
			return
		}
		writeJSON(w, http.StatusOK, metricsOf(j, time.Now()))
	case "report":
		data, ok, err := s.Report(id)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if !ok {
			j, known := s.Job(id)
			if !known {
				httpError(w, http.StatusNotFound, "no such job %q", id)
			} else {
				httpError(w, http.StatusConflict, "job %s is %s, not done", id, j.State)
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(data)
	case "trace":
		data, ok, err := s.Trace(id)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if !ok {
			j, known := s.Job(id)
			switch {
			case !known:
				httpError(w, http.StatusNotFound, "no such job %q", id)
			case !j.Spec.Trace:
				httpError(w, http.StatusConflict, "job %s was not traced", id)
			default:
				httpError(w, http.StatusConflict,
					"job %s is %s; its trace has not been journaled yet", id, j.State)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Query().Get("format") == "segments" {
			w.Write(data)
			return
		}
		b, err := obs.ParseBundle(data)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		b.WriteChromeJSON(w)
	default:
		httpError(w, http.StatusNotFound, "no such endpoint")
	}
}

// handleEvents streams a job's progress as server-sent events. The first
// event is always a snapshot of the current state; the stream ends after
// the terminal event (or immediately after the snapshot when the job is
// already terminal), with a final re-snapshot so a dropped terminal event
// can never strand the client.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, id string) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	snapshot, ch, cancel, known := s.subscribe(id)
	if !known {
		httpError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	send := func(ev Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	if !send(snapshot) || ch == nil {
		if cancel != nil {
			cancel()
		}
		return
	}
	defer cancel()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				// The hub closed the stream (terminal transition or
				// shutdown): emit the job's final state and stop.
				if j, live := s.Job(id); live {
					s.mu.Lock()
					final := eventOfLocked(j)
					s.mu.Unlock()
					send(final)
				}
				return
			}
			if !send(ev) {
				return
			}
			if ev.State.terminal() {
				return
			}
		}
	}
}

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
