package campaignd

import (
	"time"

	"github.com/soft-testing/soft/internal/obs"
)

// Campaign-service metrics. The journal remains the durable record; these
// mirror job lifecycle events into the process-global registry for the
// /metrics endpoint. Observation only — scheduling never reads them.
var (
	mJobsSubmitted = obs.NewCounter("soft_campaignd_jobs_submitted_total")
	mJobsDone      = obs.NewCounter("soft_campaignd_jobs_done_total")
	mJobsFailed    = obs.NewCounter("soft_campaignd_jobs_failed_total")
	mJobsCancelled = obs.NewCounter("soft_campaignd_jobs_cancelled_total")
	mJobsRestarted = obs.NewCounter("soft_campaignd_jobs_restarted_total")
	mJobsQueued    = obs.NewGauge("soft_campaignd_jobs_queued")
	mJobsRunning   = obs.NewGauge("soft_campaignd_jobs_running")
	// Queue wait (submission → dispatch) and run duration (dispatch →
	// terminal) per job, at the journal's second granularity.
	mQueueWait   = obs.NewHistogram("soft_campaignd_queue_wait_ns")
	mRunDuration = obs.NewHistogram("soft_campaignd_run_duration_ns")
)

// syncGaugesLocked recounts the queued/running gauges from job state.
// Recounting (rather than increment bookkeeping spread over every
// transition path) keeps the gauges trivially consistent with the jobs
// map; the map is retention-bounded, so the scan is cheap.
func (s *Server) syncGaugesLocked() {
	var q, r int64
	for _, j := range s.jobs {
		switch j.State {
		case StateQueued:
			q++
		case StateRunning:
			r++
		}
	}
	mJobsQueued.Set(q)
	mJobsRunning.Set(r)
}

// JobMetrics is the per-job timing snapshot GET /jobs/<id>/metrics serves,
// derived from the journal's lifecycle timestamps.
type JobMetrics struct {
	Job    string   `json:"job"`
	Tenant string   `json:"tenant,omitempty"`
	State  JobState `json:"state"`
	// QueueWaitSeconds is submission → dispatch (for still-queued jobs,
	// submission → now). RunSeconds is dispatch → terminal (for running
	// jobs, dispatch → now). Zero when the phase has not begun.
	QueueWaitSeconds float64 `json:"queue_wait_seconds"`
	RunSeconds       float64 `json:"run_seconds"`
	Restarts         int     `json:"restarts"`
	Done             int     `json:"done"`
	Total            int     `json:"total"`
	Inconsistencies  int     `json:"inconsistencies"`
}

// metricsOf derives a JobMetrics snapshot from a job record at time now.
func metricsOf(j *Job, now time.Time) JobMetrics {
	m := JobMetrics{
		Job: j.ID, Tenant: j.Spec.Tenant, State: j.State,
		Restarts: j.Restarts, Done: j.Done, Total: j.Total,
		Inconsistencies: j.Inconsistencies,
	}
	switch {
	case j.StartedUnix > 0:
		m.QueueWaitSeconds = float64(j.StartedUnix - j.SubmittedUnix)
	case j.SubmittedUnix > 0:
		m.QueueWaitSeconds = now.Sub(time.Unix(j.SubmittedUnix, 0)).Seconds()
	}
	switch {
	case j.StartedUnix > 0 && j.FinishedUnix > 0:
		m.RunSeconds = float64(j.FinishedUnix - j.StartedUnix)
	case j.StartedUnix > 0:
		m.RunSeconds = now.Sub(time.Unix(j.StartedUnix, 0)).Seconds()
	}
	if m.QueueWaitSeconds < 0 {
		m.QueueWaitSeconds = 0
	}
	if m.RunSeconds < 0 {
		m.RunSeconds = 0
	}
	return m
}
