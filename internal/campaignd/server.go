package campaignd

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"github.com/soft-testing/soft/internal/agents"
	"github.com/soft-testing/soft/internal/dist"
	"github.com/soft-testing/soft/internal/harness"
	"github.com/soft-testing/soft/internal/obs"
	"github.com/soft-testing/soft/internal/sched"
	"github.com/soft-testing/soft/internal/store"
)

// Config parameterizes a campaign service coordinator.
type Config struct {
	// Store is required: it caches cell results (the durable unit of
	// campaign progress) and hosts the job journal under
	// <dir>/campaignd/.
	Store *store.Store
	// Fleet, when set, runs every non-cached cell of every job on this
	// persistent worker fleet; nil explores in-process.
	Fleet *dist.Fleet
	// CodeVersion is the default cache-key code version for jobs that do
	// not pin their own (default store.DefaultCodeVersion()).
	CodeVersion string
	// MaxActive bounds concurrently running jobs (default 2). Queued jobs
	// beyond it wait under fair-share scheduling across tenants.
	MaxActive int
	// Workers / ShardDepth / Adaptive / SplitAfter configure each job's
	// sched.Options (see there).
	Workers    int
	ShardDepth int
	Adaptive   bool
	SplitAfter time.Duration
	// Retain, when positive, bounds the journal: only the newest Retain
	// terminal job records (done, failed, cancelled) are kept; older ones
	// are pruned — journal record and report included — at startup and as
	// jobs finish. Zero keeps everything. Live jobs are never pruned.
	Retain int
	// Logger, when set, receives one structured line per service
	// lifecycle event, each carrying job/tenant/state ids (and the trace
	// id for traced jobs).
	Logger *slog.Logger
	// Log is the legacy plain-writer form: when Logger is nil and Log is
	// set, lines render through the text slog handler onto Log. It is
	// also what each job's sched layer logs to.
	Log io.Writer
}

// Event is one progress report on a job's event stream (and the SSE wire
// schema). Progress counters are advisory; state transitions are exact.
type Event struct {
	Job    string   `json:"job"`
	Tenant string   `json:"tenant,omitempty"`
	State  JobState `json:"state"`
	Done   int      `json:"done"`
	Total  int      `json:"total"`
	Error  string   `json:"error,omitempty"`
}

// Status is the daemon-level view the status endpoint serves.
type Status struct {
	CodeVersion string           `json:"code_version"`
	Queued      int              `json:"queued"`
	Running     int              `json:"running"`
	Done        int              `json:"done"`
	Failed      int              `json:"failed"`
	Cancelled   int              `json:"cancelled"`
	Tenants     int              `json:"tenants"`
	FleetStats  *dist.FleetStats `json:"fleet_stats,omitempty"`
}

// Server is the durable campaign coordinator: it accepts matrix jobs over
// an HTTP/JSON API, journals them write-ahead in the store directory, and
// executes them — over one shared worker fleet when configured — with
// fair-share scheduling across tenants. Because every completed cell is a
// content-addressed store entry and every exploration is byte-identical
// across layouts, a coordinator killed at any instant (SIGKILL included)
// and restarted on the same store resumes its in-flight jobs and produces
// canonical reports byte-identical to uninterrupted runs.
type Server struct {
	cfg Config
	jr  *journal
	log *slog.Logger

	mu         sync.Mutex
	cond       *sync.Cond
	jobs       map[string]*Job
	order      []string          // job ids in submission order
	queues     map[string][]*Job // tenant → queued jobs, FIFO
	tenantSeen []string          // tenants in first-seen order
	runningBy  map[string]int    // tenant → running job count
	lastServed map[string]uint64 // tenant → dispatchSeq when last scheduled
	subs       map[string]map[chan Event]bool
	cancels    map[string]context.CancelFunc // running job id → abort its execution
	nextSeq    uint64
	dispatch   uint64 // global dispatch counter (jobs' StartSeq)
	running    int
	closed     bool

	wg sync.WaitGroup

	// The shared job tracer: traced jobs refcount one process-global
	// tracer (workers' segments arrive through the fleet merging into
	// it), and each traced job drains it into its own journaled bundle at
	// job end. When traced jobs overlap, spans buffered while both run
	// attribute to whichever job drains first — an accepted imprecision
	// for an advisory artifact.
	traceMu  sync.Mutex
	traceRef int
	traceOwn bool // we installed the tracer (vs adopting a caller's)
}

// New opens (or resumes) a campaign service on cfg.Store: the journal is
// replayed, finished jobs keep their reports, queued jobs keep their place,
// and jobs that were running when the previous coordinator died are
// requeued — their completed cells are already in the store, so
// re-execution is a warm resume, and determinism makes the resumed report
// byte-identical to an uninterrupted one. Call Start to begin scheduling.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("campaignd: a result store is required (it hosts the job journal)")
	}
	if cfg.CodeVersion == "" {
		cfg.CodeVersion = store.DefaultCodeVersion()
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 2
	}
	jr, err := openJournal(cfg.Store.Dir() + "/campaignd")
	if err != nil {
		return nil, err
	}
	log := cfg.Logger
	if log == nil {
		log = obs.NewLogger(cfg.Log, obs.LogText) // nil Log → no-op logger
	}
	s := &Server{
		cfg:        cfg,
		log:        log.With("component", "campaignd"),
		jr:         jr,
		jobs:       map[string]*Job{},
		queues:     map[string][]*Job{},
		runningBy:  map[string]int{},
		lastServed: map[string]uint64{},
		subs:       map[string]map[chan Event]bool{},
		cancels:    map[string]context.CancelFunc{},
		nextSeq:    1,
	}
	s.cond = sync.NewCond(&s.mu)

	replayed, err := jr.jobs()
	if err != nil {
		return nil, err
	}
	resumed := 0
	for _, j := range replayed {
		if j.Seq >= s.nextSeq {
			s.nextSeq = j.Seq + 1
		}
		if j.State == StateRunning {
			// The previous coordinator died mid-job. The write-ahead
			// journal plus the content-addressed store make requeueing
			// safe: completed cells are cache hits, the rest re-explore
			// deterministically.
			j.State = StateQueued
			j.Restarts++
			mJobsRestarted.Inc()
			if err := jr.putJob(j); err != nil {
				return nil, err
			}
			resumed++
		}
		s.registerLocked(j)
		if j.State == StateQueued {
			s.enqueueLocked(j)
		}
	}
	if len(replayed) > 0 {
		s.log.Info("journal replayed", "jobs", len(replayed), "resumed", resumed)
	}
	s.syncGaugesLocked()
	s.prune()
	return s, nil
}

// traceIDOf parses a job's journaled trace id for log fields and the
// sched plumb-through; zero when untraced or malformed.
func traceIDOf(j *Job) uint64 {
	if j.Spec.TraceID == "" {
		return 0
	}
	id, err := obs.ParseTraceID(j.Spec.TraceID)
	if err != nil {
		return 0
	}
	return id
}

// acquireTracer refcounts the shared job tracer: the first traced job
// installs one (or adopts a tracer the embedding process already
// installed, e.g. `soft campaignd -trace`) and names the local track;
// later traced jobs share it.
func (s *Server) acquireTracer() *obs.Tracer {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	if s.traceRef == 0 {
		tr := obs.Active()
		if tr == nil {
			tr = obs.StartTracing()
			s.traceOwn = true
		} else {
			s.traceOwn = false
		}
		tr.SetProcessName(obs.LocalPid, "campaignd")
	}
	s.traceRef++
	return obs.Active()
}

// releaseTracer drops one traced job's reference; the last release stops
// the tracer only if acquireTracer installed it.
func (s *Server) releaseTracer() {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	s.traceRef--
	if s.traceRef == 0 && s.traceOwn {
		if tr := obs.Active(); tr != nil {
			tr.Stop()
		}
	}
}

// registerLocked adds a job to the id index (any state).
func (s *Server) registerLocked(j *Job) {
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	if _, seen := s.queues[j.Spec.Tenant]; !seen {
		s.queues[j.Spec.Tenant] = nil
		s.tenantSeen = append(s.tenantSeen, j.Spec.Tenant)
	}
}

// enqueueLocked appends a queued job to its tenant's FIFO.
func (s *Server) enqueueLocked(j *Job) {
	s.queues[j.Spec.Tenant] = append(s.queues[j.Spec.Tenant], j)
}

// requeueFrontLocked puts a requeued (shutdown-interrupted) job at the
// head of its tenant's FIFO so a resume finishes it before newer work.
func (s *Server) requeueFrontLocked(j *Job) {
	s.queues[j.Spec.Tenant] = append([]*Job{j}, s.queues[j.Spec.Tenant]...)
}

// pickLocked implements fair share: among tenants with queued jobs, choose
// the one with the fewest running jobs, breaking ties by least-recently
// scheduled, then by first-seen order; pop its oldest queued job. One
// backlogged tenant therefore cannot starve the others, while a lone
// tenant still gets the whole fleet.
func (s *Server) pickLocked() *Job {
	best := ""
	for _, t := range s.tenantSeen {
		if len(s.queues[t]) == 0 {
			continue
		}
		if best == "" ||
			s.runningBy[t] < s.runningBy[best] ||
			(s.runningBy[t] == s.runningBy[best] && s.lastServed[t] < s.lastServed[best]) {
			best = t
		}
	}
	if best == "" {
		return nil
	}
	j := s.queues[best][0]
	s.queues[best] = s.queues[best][1:]
	return j
}

func (s *Server) hasQueuedLocked() bool {
	for _, q := range s.queues {
		if len(q) > 0 {
			return true
		}
	}
	return false
}

// Submit validates, journals, and enqueues one job. The record is durable
// before Submit returns — a coordinator killed right after the caller's
// ack still knows the job. Empty Agents/Tests expand to every registered
// agent / the whole suite at submission time, so the journal pins the
// concrete matrix.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	if spec.Tenant == "" {
		spec.Tenant = "default"
	}
	for _, r := range spec.Tenant {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
		default:
			return nil, fmt.Errorf("campaignd: invalid tenant %q (want [A-Za-z0-9._-]+)", spec.Tenant)
		}
	}
	if len(spec.Agents) == 0 {
		spec.Agents = agents.Names()
	}
	if len(spec.Tests) == 0 {
		for _, t := range harness.Tests() {
			spec.Tests = append(spec.Tests, t.Name)
		}
	}
	seen := map[string]bool{}
	for _, a := range spec.Agents {
		if _, err := agents.ByName(a); err != nil {
			return nil, fmt.Errorf("campaignd: %w", err)
		}
		if seen["a:"+a] {
			return nil, fmt.Errorf("campaignd: duplicate agent %q", a)
		}
		seen["a:"+a] = true
	}
	for _, t := range spec.Tests {
		if _, ok := harness.TestByName(t); !ok {
			return nil, fmt.Errorf("campaignd: unknown test %q", t)
		}
		if seen["t:"+t] {
			return nil, fmt.Errorf("campaignd: duplicate test %q", t)
		}
		seen["t:"+t] = true
	}
	// Normalize the trace request: a caller-supplied id implies tracing,
	// and a traced job without an id gets one minted here so the journal
	// pins it (a restarted coordinator resumes the same trace identity).
	if spec.TraceID != "" {
		id, err := obs.ParseTraceID(spec.TraceID)
		if err != nil {
			return nil, fmt.Errorf("campaignd: %w", err)
		}
		spec.TraceID = obs.FormatTraceID(id)
		spec.Trace = true
	}
	if spec.Trace && spec.TraceID == "" {
		spec.TraceID = obs.FormatTraceID(obs.NewTraceID())
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("campaignd: the service is shutting down")
	}
	seq := s.nextSeq
	s.nextSeq++
	j := &Job{
		ID:            jobID(seq),
		Seq:           seq,
		Spec:          spec,
		State:         StateQueued,
		SubmittedUnix: time.Now().Unix(),
	}
	s.registerLocked(j)
	s.enqueueLocked(j)
	rec := j.clone()
	s.mu.Unlock()

	// Write-ahead: the journal entry lands before the submission is acked
	// (and before the scheduler can possibly report it done).
	if err := s.jr.putJob(rec); err != nil {
		s.mu.Lock()
		delete(s.jobs, j.ID)
		q := s.queues[spec.Tenant]
		for i, cand := range q {
			if cand == j {
				s.queues[spec.Tenant] = append(q[:i], q[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		return nil, err
	}
	mJobsSubmitted.Inc()
	s.mu.Lock()
	s.syncGaugesLocked()
	s.mu.Unlock()
	s.log.Info("job submitted",
		"job", j.ID, "tenant", spec.Tenant,
		"agents", len(spec.Agents), "tests", len(spec.Tests),
		"crosscheck", spec.CrossCheck, obs.TraceAttr(traceIDOf(j)))
	s.cond.Broadcast()
	return rec, nil
}

// Job returns a snapshot of one job; ok=false when unknown.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	return j.clone(), true
}

// Jobs returns snapshots of every job in submission order; tenant filters
// when non-empty.
func (s *Server) Jobs(tenant string) []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Job
	for _, id := range s.order {
		j := s.jobs[id]
		if tenant != "" && j.Spec.Tenant != tenant {
			continue
		}
		out = append(out, j.clone())
	}
	return out
}

// Report returns a done job's canonical report bytes; ok=false when the
// job is unknown or not done yet.
func (s *Server) Report(id string) ([]byte, bool, error) {
	s.mu.Lock()
	j, known := s.jobs[id]
	done := known && j.State == StateDone
	s.mu.Unlock()
	if !done {
		return nil, false, nil
	}
	data, ok, err := s.jr.report(id)
	if err != nil {
		return nil, false, err
	}
	if !ok {
		// putReport precedes the done mark, so this is a corrupted store.
		return nil, false, fmt.Errorf("campaignd: job %s is done but its report is missing from the journal", id)
	}
	return data, true, nil
}

// Trace returns a traced job's journaled segment-bundle bytes (JSON, the
// obs.Bundle schema); ok=false when the job is unknown, untraced, or has
// not drained its trace yet (it drains once execution settles).
func (s *Server) Trace(id string) ([]byte, bool, error) {
	s.mu.Lock()
	_, known := s.jobs[id]
	s.mu.Unlock()
	if !known {
		return nil, false, nil
	}
	return s.jr.trace(id)
}

// Status snapshots daemon-level counters.
func (s *Server) Status() Status {
	s.mu.Lock()
	st := Status{CodeVersion: s.cfg.CodeVersion, Tenants: len(s.tenantSeen)}
	for _, j := range s.jobs {
		switch j.State {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		case StateCancelled:
			st.Cancelled++
		}
	}
	s.mu.Unlock()
	if s.cfg.Fleet != nil {
		fs := s.cfg.Fleet.Stats()
		st.FleetStats = &fs
	}
	return st
}

// Start launches the scheduler. Cancelling ctx aborts running jobs — they
// are requeued in the journal, not failed, so the next coordinator (or a
// later Start on a fresh Server over the same store) resumes them.
func (s *Server) Start(ctx context.Context) {
	// Wake the scheduler when the context dies so it can observe it.
	stop := context.AfterFunc(ctx, func() { s.cond.Broadcast() })
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer stop()
		s.schedule(ctx)
	}()
}

func (s *Server) schedule(ctx context.Context) {
	for {
		s.mu.Lock()
		for !s.closed && ctx.Err() == nil && (s.running >= s.cfg.MaxActive || !s.hasQueuedLocked()) {
			s.cond.Wait()
		}
		if s.closed || ctx.Err() != nil {
			s.mu.Unlock()
			return
		}
		j := s.pickLocked()
		s.dispatch++
		j.StartSeq = s.dispatch
		j.State = StateRunning
		j.StartedUnix = time.Now().Unix()
		j.Done, j.Total = 0, 0
		s.running++
		s.runningBy[j.Spec.Tenant]++
		s.lastServed[j.Spec.Tenant] = s.dispatch
		// Each job runs under its own child context so Cancel can abort it
		// without touching the scheduler or its siblings.
		jctx, jcancel := context.WithCancel(ctx)
		s.cancels[j.ID] = jcancel
		rec := j.clone()
		s.publishLocked(j)
		s.syncGaugesLocked()
		mQueueWait.Observe((j.StartedUnix - j.SubmittedUnix) * int64(time.Second))
		s.mu.Unlock()

		// Journal the ownership transition before execution starts; if the
		// write fails the job still runs — replay would merely re-run it,
		// and determinism makes that invisible.
		if err := s.jr.putJob(rec); err != nil {
			s.log.Error("journal write failed", "job", j.ID, "error", err)
		}
		s.log.Info("job started", "job", j.ID, "tenant", j.Spec.Tenant,
			obs.TraceAttr(traceIDOf(j)))
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer jcancel()
			s.execute(jctx, j)
			s.mu.Lock()
			delete(s.cancels, j.ID)
			s.mu.Unlock()
		}()
	}
}

// execute runs one job to a terminal state (or back to queued on
// shutdown).
func (s *Server) execute(ctx context.Context, j *Job) {
	spec := j.Spec
	cv := spec.CodeVersion
	if cv == "" {
		cv = s.cfg.CodeVersion
	}
	traceID := traceIDOf(j)
	var tr *obs.Tracer
	if spec.Trace {
		tr = s.acquireTracer()
		defer s.releaseTracer()
	}
	sp := obs.StartSpan("job:" + j.ID)
	rep, err := sched.RunMatrix(ctx, spec.Agents, spec.Tests, sched.Options{
		TraceID:       traceID,
		MaxPaths:      spec.MaxPaths,
		MaxDepth:      spec.MaxDepth,
		Models:        spec.Models,
		ClauseSharing: spec.ClauseSharing,
		Workers:       s.cfg.Workers,
		Fleet:         s.cfg.Fleet,
		ShardDepth:    s.cfg.ShardDepth,
		Adaptive:      s.cfg.Adaptive,
		SplitAfter:    s.cfg.SplitAfter,
		Store:         s.cfg.Store,
		CodeVersion:   cv,
		CrossCheck:    spec.CrossCheck,
		Budget:        0, // budgets break report determinism; never set one here
		Progress:      func(done, total int) { s.progress(j, done, total) },
		Log:           s.cfg.Log,
	})
	sp.End()
	if tr != nil {
		// Drain after the job span ends so the bundle contains it, and
		// before the terminal journal write so a done job's trace is
		// immediately downloadable. The drain always runs — a failed or
		// shutdown-aborted job keeps the segments its workers shipped.
		s.journalTrace(j, tr, traceID)
	}

	// Every transition below yields to an already-journaled cancellation:
	// once Cancel marked the job, no completion, failure, or requeue may
	// overwrite the terminal cancelled state.
	cancelled := false
	yield := func(j *Job) bool {
		if j.State == StateCancelled {
			cancelled = true
			return true
		}
		return false
	}

	if err == nil {
		var buf bytes.Buffer
		if werr := rep.Write(&buf); werr == nil {
			// Write-ahead: the report is durable before the done mark.
			err = s.jr.putReport(j.ID, buf.Bytes())
		} else {
			err = werr
		}
		if err == nil {
			s.finish(j, func(j *Job) {
				if yield(j) {
					return
				}
				j.State = StateDone
				j.Done = j.Total
				j.Inconsistencies = rep.Inconsistencies()
			})
			if cancelled {
				s.log.Info("job cancelled (completed result discarded)",
					"job", j.ID, obs.TraceAttr(traceID))
				return
			}
			s.log.Info("job done",
				"job", j.ID, "cells", len(rep.Cells), "checks", len(rep.Checks),
				"inconsistencies", rep.Inconsistencies(),
				"cache_hits", rep.CacheHits, "cache_misses", rep.CacheMisses,
				obs.TraceAttr(traceID))
			return
		}
	}

	if ctx.Err() != nil {
		// The job's context died: either the whole coordinator is shutting
		// down (requeue so the next one resumes warm) or this job was
		// cancelled (keep the journaled terminal state).
		s.finish(j, func(j *Job) {
			if yield(j) {
				return
			}
			j.State = StateQueued
			j.Done, j.Total = 0, 0
		})
		if cancelled {
			s.log.Info("job cancelled (execution aborted)",
				"job", j.ID, obs.TraceAttr(traceID))
		} else {
			s.log.Info("job requeued (shutdown)",
				"job", j.ID, obs.TraceAttr(traceID))
		}
		return
	}
	msg := err.Error()
	s.finish(j, func(j *Job) {
		if yield(j) {
			return
		}
		j.State = StateFailed
		j.Error = msg
	})
	if cancelled {
		s.log.Info("job cancelled (failure superseded)",
			"job", j.ID, obs.TraceAttr(traceID))
		return
	}
	s.log.Error("job failed", "job", j.ID, "error", msg, obs.TraceAttr(traceID))
}

// journalTrace drains the shared tracer into this job's bundle and
// journals it. Advisory: failures are logged, never fail the job.
func (s *Server) journalTrace(j *Job, tr *obs.Tracer, traceID uint64) {
	b := &obs.Bundle{Segments: tr.Drain()}
	data, err := obs.EncodeBundle(b)
	if err == nil {
		err = s.jr.putTrace(j.ID, data)
	}
	if err != nil {
		s.log.Error("trace journal write failed", "job", j.ID, "error", err,
			obs.TraceAttr(traceID))
		return
	}
	events := 0
	for _, seg := range b.Segments {
		events += len(seg.Events)
	}
	s.log.Info("trace journaled", "job", j.ID,
		"segments", len(b.Segments), "events", events, obs.TraceAttr(traceID))
}

// finish applies a terminal (or requeue) transition under the lock,
// journals it, and tears down the job's event stream.
func (s *Server) finish(j *Job, apply func(*Job)) {
	s.mu.Lock()
	apply(j)
	j.FinishedUnix = time.Now().Unix()
	if j.State == StateQueued {
		j.FinishedUnix = 0
		s.requeueFrontLocked(j)
	}
	s.running--
	s.runningBy[j.Spec.Tenant]--
	rec := j.clone()
	s.publishLocked(j)
	s.syncGaugesLocked()
	if j.State.terminal() {
		for ch := range s.subs[j.ID] {
			close(ch)
		}
		delete(s.subs, j.ID)
	}
	s.mu.Unlock()
	// Cancellations are counted in Cancel (the transition's true site —
	// finish only observes the already-journaled state).
	switch rec.State {
	case StateDone:
		mJobsDone.Inc()
		mRunDuration.Observe((rec.FinishedUnix - rec.StartedUnix) * int64(time.Second))
	case StateFailed:
		mJobsFailed.Inc()
		mRunDuration.Observe((rec.FinishedUnix - rec.StartedUnix) * int64(time.Second))
	}
	if err := s.jr.putJob(rec); err != nil {
		s.log.Error("journal write failed", "job", rec.ID, "error", err)
	}
	if rec.State.terminal() {
		s.prune()
	}
	s.cond.Broadcast()
}

// ErrUnknownJob and ErrJobTerminal classify Cancel failures for the API
// layer (404 and 409 respectively).
var (
	ErrUnknownJob  = errors.New("campaignd: unknown job")
	ErrJobTerminal = errors.New("campaignd: job already terminal")
)

// Cancel moves a job to the terminal cancelled state and returns its
// record. A queued job is dequeued; a running job has its execution
// context cancelled — completed cells stay in the store, so resubmitting
// the same spec later resumes warm. The transition is journaled before
// the run is interrupted, so a coordinator restarted at any instant
// replays the job as cancelled and never requeues it.
func (s *Server) Cancel(id string) (*Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	if j.State.terminal() {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s is %s", ErrJobTerminal, id, j.State)
	}
	var cancelRun context.CancelFunc
	was := j.State
	wasQueued := was == StateQueued
	if wasQueued {
		q := s.queues[j.Spec.Tenant]
		for i, cand := range q {
			if cand == j {
				s.queues[j.Spec.Tenant] = append(q[:i], q[i+1:]...)
				break
			}
		}
	} else {
		cancelRun = s.cancels[id]
	}
	j.State = StateCancelled
	j.FinishedUnix = time.Now().Unix()
	rec := j.clone()
	s.publishLocked(j)
	s.syncGaugesLocked()
	for ch := range s.subs[id] {
		close(ch)
	}
	delete(s.subs, id)
	s.mu.Unlock()
	mJobsCancelled.Inc()

	// Journal before interrupting the run: the cancelled mark must be
	// durable before execution can observe the abort and race a restart.
	if err := s.jr.putJob(rec); err != nil {
		s.log.Error("journal write failed", "job", rec.ID, "error", err)
	}
	if cancelRun != nil {
		cancelRun()
	}
	s.log.Info("job cancelled", "job", id, "was", string(was),
		obs.TraceAttr(traceIDOf(rec)))
	if wasQueued {
		// A running job's execute unwind prunes; a dequeued job settles here.
		s.prune()
	}
	s.cond.Broadcast()
	return rec, nil
}

// prune enforces Config.Retain: keep only the newest Retain terminal job
// records (by submission order), removing older ones from memory and from
// the journal — report files included. Queued and running jobs are never
// touched.
func (s *Server) prune() {
	if s.cfg.Retain <= 0 {
		return
	}
	s.mu.Lock()
	var terminal []string
	for _, id := range s.order {
		if s.jobs[id].State.terminal() {
			terminal = append(terminal, id)
		}
	}
	var victims []string
	if drop := len(terminal) - s.cfg.Retain; drop > 0 {
		victims = terminal[:drop]
		gone := map[string]bool{}
		for _, id := range victims {
			gone[id] = true
			delete(s.jobs, id)
		}
		kept := s.order[:0]
		for _, id := range s.order {
			if !gone[id] {
				kept = append(kept, id)
			}
		}
		s.order = kept
	}
	s.mu.Unlock()
	for _, id := range victims {
		if err := s.jr.remove(id); err != nil {
			s.log.Error("retention prune failed", "job", id, "error", err)
		} else {
			s.log.Info("retention pruned job", "job", id)
		}
	}
}

// progress records live campaign progress and fans it out to subscribers.
func (s *Server) progress(j *Job, done, total int) {
	s.mu.Lock()
	if j.State == StateRunning && done > j.Done {
		j.Done, j.Total = done, total
		s.publishLocked(j)
	}
	s.mu.Unlock()
}

// eventOfLocked snapshots a job as a stream event.
func eventOfLocked(j *Job) Event {
	return Event{
		Job:    j.ID,
		Tenant: j.Spec.Tenant,
		State:  j.State,
		Done:   j.Done,
		Total:  j.Total,
		Error:  j.Error,
	}
}

// publishLocked fans an event out without blocking: a slow subscriber
// loses intermediate progress events (they are advisory), never the
// terminal transition — stream teardown re-snapshots the job.
func (s *Server) publishLocked(j *Job) {
	if s.closed {
		return
	}
	ev := eventOfLocked(j)
	for ch := range s.subs[j.ID] {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe attaches an event stream to a job. The returned snapshot is
// the stream's first event; ch is nil when the job is already terminal.
// cancel detaches (idempotent, safe after close).
func (s *Server) subscribe(id string) (snapshot Event, ch chan Event, cancel func(), ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, known := s.jobs[id]
	if !known {
		return Event{}, nil, nil, false
	}
	snapshot = eventOfLocked(j)
	if j.State.terminal() || s.closed {
		return snapshot, nil, func() {}, true
	}
	ch = make(chan Event, 256)
	if s.subs[id] == nil {
		s.subs[id] = map[chan Event]bool{}
	}
	s.subs[id][ch] = true
	cancel = func() {
		s.mu.Lock()
		if subs, live := s.subs[id]; live && subs[ch] {
			delete(subs, ch)
			close(ch)
		}
		s.mu.Unlock()
	}
	return snapshot, ch, cancel, true
}

// Close stops accepting and scheduling work and tears down event streams.
// It waits for in-flight jobs to settle — cancel the Start context first
// to abort (and requeue) them rather than waiting them out.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, subs := range s.subs {
		for ch := range subs {
			close(ch)
		}
	}
	s.subs = map[string]map[chan Event]bool{}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}
