package campaignd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"github.com/soft-testing/soft/internal/obs"
)

// Client talks to a campaign service over its HTTP/JSON API. The zero
// HTTPClient means http.DefaultClient; BaseURL is the service root
// (e.g. "http://127.0.0.1:7130").
type Client struct {
	BaseURL    string
	HTTPClient *http.Client
}

// NewClient returns a client for the service at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one request and decodes a JSON body into out (when non-nil),
// translating error envelopes into Go errors.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	return c.doHeader(ctx, method, path, nil, body, out)
}

// doHeader is do with extra request headers (trace propagation).
func (c *Client) doHeader(ctx context.Context, method, path string, hdr http.Header, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("campaignd client: %w", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return fmt.Errorf("campaignd client: %w", err)
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("campaignd client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("campaignd client: bad response body: %w", err)
	}
	return nil
}

func decodeError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var eb errorBody
	if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
		return fmt.Errorf("campaignd client: %s (HTTP %d)", eb.Error, resp.StatusCode)
	}
	return fmt.Errorf("campaignd client: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
}

// Submit submits one job and returns its durable record. A spec carrying
// a trace id is also announced via the traceparent-style header, so
// intermediaries (and the daemon's header path) see the trace context
// without parsing the body.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (*Job, error) {
	var hdr http.Header
	if spec.TraceID != "" {
		if id, err := obs.ParseTraceID(spec.TraceID); err == nil {
			hdr = http.Header{"Soft-Traceparent": []string{obs.FormatTraceparent(id)}}
		}
	}
	var j Job
	if err := c.doHeader(ctx, http.MethodPost, apiPrefix+"/jobs", hdr, spec, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Jobs lists jobs in submission order; tenant filters when non-empty.
func (c *Client) Jobs(ctx context.Context, tenant string) ([]*Job, error) {
	path := apiPrefix + "/jobs"
	if tenant != "" {
		path += "?tenant=" + url.QueryEscape(tenant)
	}
	var jobs []*Job
	if err := c.do(ctx, http.MethodGet, path, nil, &jobs); err != nil {
		return nil, err
	}
	return jobs, nil
}

// Job fetches one job record.
func (c *Client) Job(ctx context.Context, id string) (*Job, error) {
	var j Job
	if err := c.do(ctx, http.MethodGet, apiPrefix+"/jobs/"+url.PathEscape(id), nil, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Cancel cancels a queued or running job and returns its terminal record.
// Unknown jobs and already-terminal jobs are errors (the service answers
// 404 and 409 respectively).
func (c *Client) Cancel(ctx context.Context, id string) (*Job, error) {
	var j Job
	if err := c.do(ctx, http.MethodDelete, apiPrefix+"/jobs/"+url.PathEscape(id), nil, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Report fetches a done job's canonical report bytes.
func (c *Client) Report(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+apiPrefix+"/jobs/"+url.PathEscape(id)+"/report", nil)
	if err != nil {
		return nil, fmt.Errorf("campaignd client: %w", err)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, fmt.Errorf("campaignd client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("campaignd client: %w", err)
	}
	return data, nil
}

// Trace fetches a traced job's raw segment bundle (the journaled
// obs.Bundle). Callers merge it into a local tracer (obs.MergeBundle)
// or render it standalone (Bundle.WriteChromeJSON).
func (c *Client) Trace(ctx context.Context, id string) (*obs.Bundle, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+apiPrefix+"/jobs/"+url.PathEscape(id)+"/trace?format=segments", nil)
	if err != nil {
		return nil, fmt.Errorf("campaignd client: %w", err)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, fmt.Errorf("campaignd client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("campaignd client: %w", err)
	}
	return obs.ParseBundle(data)
}

// Metrics fetches one job's derived timing metrics (queue wait, run
// duration, restarts) as computed by the service from its journal.
func (c *Client) Metrics(ctx context.Context, id string) (*JobMetrics, error) {
	var m JobMetrics
	if err := c.do(ctx, http.MethodGet, apiPrefix+"/jobs/"+url.PathEscape(id)+"/metrics", nil, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Status fetches daemon counters.
func (c *Client) Status(ctx context.Context) (*Status, error) {
	var st Status
	if err := c.do(ctx, http.MethodGet, apiPrefix+"/status", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Watch streams a job's progress events, calling fn for each (the first
// call is always a snapshot of the current state). It returns the job's
// final record once the stream reports a terminal state, reconnecting
// through transient stream drops — the service re-snapshots on every
// connect, so no terminal transition can be missed. A nil fn just waits.
func (c *Client) Watch(ctx context.Context, id string, fn func(Event)) (*Job, error) {
	for {
		terminal, err := c.watchOnce(ctx, id, fn)
		if err != nil {
			return nil, err
		}
		if terminal {
			return c.Job(ctx, id)
		}
		// Stream dropped without a terminal event (proxy timeout, daemon
		// event-hub shutdown): poll once, and reconnect if still live.
		j, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if j.State.terminal() {
			return j, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
}

// watchOnce consumes one SSE connection; terminal=true when the stream
// delivered a terminal event.
func (c *Client) watchOnce(ctx context.Context, id string, fn func(Event)) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+apiPrefix+"/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return false, fmt.Errorf("campaignd client: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.http().Do(req)
	if err != nil {
		return false, fmt.Errorf("campaignd client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		data, found := strings.CutPrefix(line, "data: ")
		if !found {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return false, fmt.Errorf("campaignd client: bad event %q: %w", data, err)
		}
		if fn != nil {
			fn(ev)
		}
		if ev.State.terminal() {
			return true, nil
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return false, fmt.Errorf("campaignd client: event stream: %w", err)
	}
	if ctx.Err() != nil {
		return false, ctx.Err()
	}
	return false, nil
}
