package openflow

import (
	"encoding/binary"
	"fmt"
)

// Header is the common ofp_header prefix of every OpenFlow message.
type Header struct {
	Version uint8
	Type    MsgType
	Length  uint16
	Xid     uint32
}

// DecodeHeader parses the first HeaderLen bytes of b.
func DecodeHeader(b []byte) (Header, error) {
	if len(b) < HeaderLen {
		return Header{}, fmt.Errorf("openflow: header needs %d bytes, have %d", HeaderLen, len(b))
	}
	return Header{
		Version: b[0],
		Type:    MsgType(b[1]),
		Length:  binary.BigEndian.Uint16(b[2:4]),
		Xid:     binary.BigEndian.Uint32(b[4:8]),
	}, nil
}

func putHeader(dst []byte, t MsgType, length int, xid uint32) {
	dst[0] = Version
	dst[1] = uint8(t)
	binary.BigEndian.PutUint16(dst[2:4], uint16(length))
	binary.BigEndian.PutUint32(dst[4:8], xid)
}

// Message is an OpenFlow control message. Serialize renders the full wire
// form including the header; MsgType identifies the concrete type.
type Message interface {
	MsgType() MsgType
	Serialize() []byte
}

// xidOf extracts the transaction id common to all message structs.
type xided interface{ xid() uint32 }

// Hello is OFPT_HELLO: version negotiation, empty body.
type Hello struct{ Xid uint32 }

// MsgType implements Message.
func (m *Hello) MsgType() MsgType { return TypeHello }

// Serialize implements Message.
func (m *Hello) Serialize() []byte {
	b := make([]byte, HeaderLen)
	putHeader(b, TypeHello, HeaderLen, m.Xid)
	return b
}
func (m *Hello) xid() uint32 { return m.Xid }

// EchoRequest is OFPT_ECHO_REQUEST: keep-alive with arbitrary payload.
type EchoRequest struct {
	Xid  uint32
	Data []byte
}

// MsgType implements Message.
func (m *EchoRequest) MsgType() MsgType { return TypeEchoRequest }

// Serialize implements Message.
func (m *EchoRequest) Serialize() []byte {
	b := make([]byte, HeaderLen+len(m.Data))
	putHeader(b, TypeEchoRequest, len(b), m.Xid)
	copy(b[HeaderLen:], m.Data)
	return b
}
func (m *EchoRequest) xid() uint32 { return m.Xid }

// EchoReply is OFPT_ECHO_REPLY: mirrors the request payload.
type EchoReply struct {
	Xid  uint32
	Data []byte
}

// MsgType implements Message.
func (m *EchoReply) MsgType() MsgType { return TypeEchoReply }

// Serialize implements Message.
func (m *EchoReply) Serialize() []byte {
	b := make([]byte, HeaderLen+len(m.Data))
	putHeader(b, TypeEchoReply, len(b), m.Xid)
	copy(b[HeaderLen:], m.Data)
	return b
}
func (m *EchoReply) xid() uint32 { return m.Xid }

// Vendor is OFPT_VENDOR: an opaque extension message.
type Vendor struct {
	Xid    uint32
	Vendor uint32
	Body   []byte
}

// MsgType implements Message.
func (m *Vendor) MsgType() MsgType { return TypeVendor }

// Serialize implements Message.
func (m *Vendor) Serialize() []byte {
	b := make([]byte, HeaderLen+4+len(m.Body))
	putHeader(b, TypeVendor, len(b), m.Xid)
	binary.BigEndian.PutUint32(b[8:12], m.Vendor)
	copy(b[12:], m.Body)
	return b
}
func (m *Vendor) xid() uint32 { return m.Xid }

// FeaturesRequest is OFPT_FEATURES_REQUEST (empty body).
type FeaturesRequest struct{ Xid uint32 }

// MsgType implements Message.
func (m *FeaturesRequest) MsgType() MsgType { return TypeFeaturesRequest }

// Serialize implements Message.
func (m *FeaturesRequest) Serialize() []byte {
	b := make([]byte, HeaderLen)
	putHeader(b, TypeFeaturesRequest, HeaderLen, m.Xid)
	return b
}
func (m *FeaturesRequest) xid() uint32 { return m.Xid }

// PhyPortLen is the wire length of ofp_phy_port.
const PhyPortLen = 48

// PhyPort describes one switch port (ofp_phy_port).
type PhyPort struct {
	PortNo     uint16
	HWAddr     [6]byte
	Name       string // up to 16 bytes on the wire
	Config     uint32
	State      uint32
	Curr       uint32
	Advertised uint32
	Supported  uint32
	Peer       uint32
}

func (p *PhyPort) serializeTo(dst []byte) []byte {
	var b [PhyPortLen]byte
	binary.BigEndian.PutUint16(b[0:2], p.PortNo)
	copy(b[2:8], p.HWAddr[:])
	copy(b[8:24], p.Name)
	binary.BigEndian.PutUint32(b[24:28], p.Config)
	binary.BigEndian.PutUint32(b[28:32], p.State)
	binary.BigEndian.PutUint32(b[32:36], p.Curr)
	binary.BigEndian.PutUint32(b[36:40], p.Advertised)
	binary.BigEndian.PutUint32(b[40:44], p.Supported)
	binary.BigEndian.PutUint32(b[44:48], p.Peer)
	return append(dst, b[:]...)
}

func decodePhyPort(b []byte) (PhyPort, error) {
	if len(b) < PhyPortLen {
		return PhyPort{}, fmt.Errorf("openflow: phy_port needs %d bytes", PhyPortLen)
	}
	var p PhyPort
	p.PortNo = binary.BigEndian.Uint16(b[0:2])
	copy(p.HWAddr[:], b[2:8])
	name := b[8:24]
	for i, c := range name {
		if c == 0 {
			name = name[:i]
			break
		}
	}
	p.Name = string(name)
	p.Config = binary.BigEndian.Uint32(b[24:28])
	p.State = binary.BigEndian.Uint32(b[28:32])
	p.Curr = binary.BigEndian.Uint32(b[32:36])
	p.Advertised = binary.BigEndian.Uint32(b[36:40])
	p.Supported = binary.BigEndian.Uint32(b[40:44])
	p.Peer = binary.BigEndian.Uint32(b[44:48])
	return p, nil
}

// FeaturesReply is OFPT_FEATURES_REPLY (ofp_switch_features).
type FeaturesReply struct {
	Xid          uint32
	DatapathID   uint64
	NBuffers     uint32
	NTables      uint8
	Capabilities uint32
	Actions      uint32 // bitmap of supported action types
	Ports        []PhyPort
}

// MsgType implements Message.
func (m *FeaturesReply) MsgType() MsgType { return TypeFeaturesReply }

// Serialize implements Message.
func (m *FeaturesReply) Serialize() []byte {
	b := make([]byte, HeaderLen+24, HeaderLen+24+len(m.Ports)*PhyPortLen)
	binary.BigEndian.PutUint64(b[8:16], m.DatapathID)
	binary.BigEndian.PutUint32(b[16:20], m.NBuffers)
	b[20] = m.NTables
	binary.BigEndian.PutUint32(b[24:28], m.Capabilities)
	binary.BigEndian.PutUint32(b[28:32], m.Actions)
	for i := range m.Ports {
		b = m.Ports[i].serializeTo(b)
	}
	putHeader(b, TypeFeaturesReply, len(b), m.Xid)
	return b
}
func (m *FeaturesReply) xid() uint32 { return m.Xid }

// GetConfigRequest is OFPT_GET_CONFIG_REQUEST (empty body).
type GetConfigRequest struct{ Xid uint32 }

// MsgType implements Message.
func (m *GetConfigRequest) MsgType() MsgType { return TypeGetConfigRequest }

// Serialize implements Message.
func (m *GetConfigRequest) Serialize() []byte {
	b := make([]byte, HeaderLen)
	putHeader(b, TypeGetConfigRequest, HeaderLen, m.Xid)
	return b
}
func (m *GetConfigRequest) xid() uint32 { return m.Xid }

// SwitchConfig is the shared body of GET_CONFIG_REPLY and SET_CONFIG
// (ofp_switch_config).
type SwitchConfig struct {
	Xid         uint32
	Flags       uint16
	MissSendLen uint16
	reply       bool
}

// GetConfigReply is OFPT_GET_CONFIG_REPLY.
type GetConfigReply SwitchConfig

// MsgType implements Message.
func (m *GetConfigReply) MsgType() MsgType { return TypeGetConfigReply }

// Serialize implements Message.
func (m *GetConfigReply) Serialize() []byte {
	b := make([]byte, HeaderLen+4)
	putHeader(b, TypeGetConfigReply, len(b), m.Xid)
	binary.BigEndian.PutUint16(b[8:10], m.Flags)
	binary.BigEndian.PutUint16(b[10:12], m.MissSendLen)
	return b
}
func (m *GetConfigReply) xid() uint32 { return m.Xid }

// SetConfig is OFPT_SET_CONFIG.
type SetConfig SwitchConfig

// MsgType implements Message.
func (m *SetConfig) MsgType() MsgType { return TypeSetConfig }

// Serialize implements Message.
func (m *SetConfig) Serialize() []byte {
	b := make([]byte, HeaderLen+4)
	putHeader(b, TypeSetConfig, len(b), m.Xid)
	binary.BigEndian.PutUint16(b[8:10], m.Flags)
	binary.BigEndian.PutUint16(b[10:12], m.MissSendLen)
	return b
}
func (m *SetConfig) xid() uint32 { return m.Xid }

// SetConfigLen is the wire length of OFPT_SET_CONFIG.
const SetConfigLen = HeaderLen + 4

// PacketIn is OFPT_PACKET_IN: a packet forwarded to the controller.
type PacketIn struct {
	Xid      uint32
	BufferID uint32
	TotalLen uint16
	InPort   uint16
	Reason   uint8
	Data     []byte
}

// MsgType implements Message.
func (m *PacketIn) MsgType() MsgType { return TypePacketIn }

// Serialize implements Message.
func (m *PacketIn) Serialize() []byte {
	b := make([]byte, HeaderLen+10+len(m.Data))
	putHeader(b, TypePacketIn, len(b), m.Xid)
	binary.BigEndian.PutUint32(b[8:12], m.BufferID)
	binary.BigEndian.PutUint16(b[12:14], m.TotalLen)
	binary.BigEndian.PutUint16(b[14:16], m.InPort)
	b[16] = m.Reason
	copy(b[18:], m.Data)
	return b
}
func (m *PacketIn) xid() uint32 { return m.Xid }

// FlowRemoved is OFPT_FLOW_REMOVED.
type FlowRemoved struct {
	Xid          uint32
	Match        Match
	Cookie       uint64
	Priority     uint16
	Reason       uint8
	DurationSec  uint32
	DurationNsec uint32
	IdleTimeout  uint16
	PacketCount  uint64
	ByteCount    uint64
}

// MsgType implements Message.
func (m *FlowRemoved) MsgType() MsgType { return TypeFlowRemoved }

// Serialize implements Message.
func (m *FlowRemoved) Serialize() []byte {
	b := make([]byte, HeaderLen)
	b = m.Match.SerializeTo(b)
	var rest [40]byte
	binary.BigEndian.PutUint64(rest[0:8], m.Cookie)
	binary.BigEndian.PutUint16(rest[8:10], m.Priority)
	rest[10] = m.Reason
	binary.BigEndian.PutUint32(rest[12:16], m.DurationSec)
	binary.BigEndian.PutUint32(rest[16:20], m.DurationNsec)
	binary.BigEndian.PutUint16(rest[20:22], m.IdleTimeout)
	binary.BigEndian.PutUint64(rest[24:32], m.PacketCount)
	binary.BigEndian.PutUint64(rest[32:40], m.ByteCount)
	b = append(b, rest[:]...)
	putHeader(b, TypeFlowRemoved, len(b), m.Xid)
	return b
}
func (m *FlowRemoved) xid() uint32 { return m.Xid }

// PortStatus is OFPT_PORT_STATUS.
type PortStatus struct {
	Xid    uint32
	Reason uint8
	Desc   PhyPort
}

// MsgType implements Message.
func (m *PortStatus) MsgType() MsgType { return TypePortStatus }

// Serialize implements Message.
func (m *PortStatus) Serialize() []byte {
	b := make([]byte, HeaderLen+8)
	b[8] = m.Reason
	b = m.Desc.serializeTo(b)
	putHeader(b, TypePortStatus, len(b), m.Xid)
	return b
}
func (m *PortStatus) xid() uint32 { return m.Xid }

// PacketOutFixedLen is the length of OFPT_PACKET_OUT up to the action list.
const PacketOutFixedLen = HeaderLen + 8

// PacketOut is OFPT_PACKET_OUT: instructs the switch to emit a packet.
type PacketOut struct {
	Xid      uint32
	BufferID uint32
	InPort   uint16
	Actions  []Action
	Data     []byte // packet payload when BufferID == NoBuffer
}

// MsgType implements Message.
func (m *PacketOut) MsgType() MsgType { return TypePacketOut }

// Serialize implements Message.
func (m *PacketOut) Serialize() []byte {
	acts := SerializeActions(m.Actions)
	b := make([]byte, PacketOutFixedLen, PacketOutFixedLen+len(acts)+len(m.Data))
	binary.BigEndian.PutUint32(b[8:12], m.BufferID)
	binary.BigEndian.PutUint16(b[12:14], m.InPort)
	binary.BigEndian.PutUint16(b[14:16], uint16(len(acts)))
	b = append(b, acts...)
	b = append(b, m.Data...)
	putHeader(b, TypePacketOut, len(b), m.Xid)
	return b
}
func (m *PacketOut) xid() uint32 { return m.Xid }

// FlowModFixedLen is the length of OFPT_FLOW_MOD up to the action list.
const FlowModFixedLen = HeaderLen + MatchLen + 24

// FlowMod is OFPT_FLOW_MOD: the flow table modification command.
type FlowMod struct {
	Xid         uint32
	Match       Match
	Cookie      uint64
	Command     FlowModCommand
	IdleTimeout uint16
	HardTimeout uint16
	Priority    uint16
	BufferID    uint32
	OutPort     uint16
	Flags       uint16
	Actions     []Action
}

// MsgType implements Message.
func (m *FlowMod) MsgType() MsgType { return TypeFlowMod }

// Serialize implements Message.
func (m *FlowMod) Serialize() []byte {
	b := make([]byte, HeaderLen, FlowModFixedLen+ActionsLen(m.Actions))
	b = m.Match.SerializeTo(b)
	var rest [24]byte
	binary.BigEndian.PutUint64(rest[0:8], m.Cookie)
	binary.BigEndian.PutUint16(rest[8:10], uint16(m.Command))
	binary.BigEndian.PutUint16(rest[10:12], m.IdleTimeout)
	binary.BigEndian.PutUint16(rest[12:14], m.HardTimeout)
	binary.BigEndian.PutUint16(rest[14:16], m.Priority)
	binary.BigEndian.PutUint32(rest[16:20], m.BufferID)
	binary.BigEndian.PutUint16(rest[20:22], m.OutPort)
	binary.BigEndian.PutUint16(rest[22:24], m.Flags)
	b = append(b, rest[:]...)
	b = append(b, SerializeActions(m.Actions)...)
	putHeader(b, TypeFlowMod, len(b), m.Xid)
	return b
}
func (m *FlowMod) xid() uint32 { return m.Xid }

// PortMod is OFPT_PORT_MOD.
type PortMod struct {
	Xid       uint32
	PortNo    uint16
	HWAddr    [6]byte
	Config    uint32
	Mask      uint32
	Advertise uint32
}

// MsgType implements Message.
func (m *PortMod) MsgType() MsgType { return TypePortMod }

// Serialize implements Message.
func (m *PortMod) Serialize() []byte {
	b := make([]byte, HeaderLen+24)
	putHeader(b, TypePortMod, len(b), m.Xid)
	binary.BigEndian.PutUint16(b[8:10], m.PortNo)
	copy(b[10:16], m.HWAddr[:])
	binary.BigEndian.PutUint32(b[16:20], m.Config)
	binary.BigEndian.PutUint32(b[20:24], m.Mask)
	binary.BigEndian.PutUint32(b[24:28], m.Advertise)
	return b
}
func (m *PortMod) xid() uint32 { return m.Xid }

// StatsRequestFixedLen is the length of OFPT_STATS_REQUEST up to the body.
const StatsRequestFixedLen = HeaderLen + 4

// StatsRequest is OFPT_STATS_REQUEST.
type StatsRequest struct {
	Xid       uint32
	StatsType StatsType
	Flags     uint16
	Body      []byte
}

// MsgType implements Message.
func (m *StatsRequest) MsgType() MsgType { return TypeStatsRequest }

// Serialize implements Message.
func (m *StatsRequest) Serialize() []byte {
	b := make([]byte, StatsRequestFixedLen+len(m.Body))
	putHeader(b, TypeStatsRequest, len(b), m.Xid)
	binary.BigEndian.PutUint16(b[8:10], uint16(m.StatsType))
	binary.BigEndian.PutUint16(b[10:12], m.Flags)
	copy(b[12:], m.Body)
	return b
}
func (m *StatsRequest) xid() uint32 { return m.Xid }

// StatsReply is OFPT_STATS_REPLY.
type StatsReply struct {
	Xid       uint32
	StatsType StatsType
	Flags     uint16
	Body      []byte
}

// MsgType implements Message.
func (m *StatsReply) MsgType() MsgType { return TypeStatsReply }

// Serialize implements Message.
func (m *StatsReply) Serialize() []byte {
	b := make([]byte, StatsRequestFixedLen+len(m.Body))
	putHeader(b, TypeStatsReply, len(b), m.Xid)
	binary.BigEndian.PutUint16(b[8:10], uint16(m.StatsType))
	binary.BigEndian.PutUint16(b[10:12], m.Flags)
	copy(b[12:], m.Body)
	return b
}
func (m *StatsReply) xid() uint32 { return m.Xid }

// BarrierRequest is OFPT_BARRIER_REQUEST (empty body).
type BarrierRequest struct{ Xid uint32 }

// MsgType implements Message.
func (m *BarrierRequest) MsgType() MsgType { return TypeBarrierRequest }

// Serialize implements Message.
func (m *BarrierRequest) Serialize() []byte {
	b := make([]byte, HeaderLen)
	putHeader(b, TypeBarrierRequest, HeaderLen, m.Xid)
	return b
}
func (m *BarrierRequest) xid() uint32 { return m.Xid }

// BarrierReply is OFPT_BARRIER_REPLY (empty body).
type BarrierReply struct{ Xid uint32 }

// MsgType implements Message.
func (m *BarrierReply) MsgType() MsgType { return TypeBarrierReply }

// Serialize implements Message.
func (m *BarrierReply) Serialize() []byte {
	b := make([]byte, HeaderLen)
	putHeader(b, TypeBarrierReply, HeaderLen, m.Xid)
	return b
}
func (m *BarrierReply) xid() uint32 { return m.Xid }

// QueueGetConfigRequestLen is the wire length of the queue config request.
const QueueGetConfigRequestLen = HeaderLen + 4

// QueueGetConfigRequest is OFPT_QUEUE_GET_CONFIG_REQUEST.
type QueueGetConfigRequest struct {
	Xid  uint32
	Port uint16
}

// MsgType implements Message.
func (m *QueueGetConfigRequest) MsgType() MsgType { return TypeQueueGetConfigRequest }

// Serialize implements Message.
func (m *QueueGetConfigRequest) Serialize() []byte {
	b := make([]byte, QueueGetConfigRequestLen)
	putHeader(b, TypeQueueGetConfigRequest, len(b), m.Xid)
	binary.BigEndian.PutUint16(b[8:10], m.Port)
	return b
}
func (m *QueueGetConfigRequest) xid() uint32 { return m.Xid }

// QueueGetConfigReply is OFPT_QUEUE_GET_CONFIG_REPLY (queues omitted: the
// agents under test expose no queues, matching the reference switch).
type QueueGetConfigReply struct {
	Xid  uint32
	Port uint16
}

// MsgType implements Message.
func (m *QueueGetConfigReply) MsgType() MsgType { return TypeQueueGetConfigReply }

// Serialize implements Message.
func (m *QueueGetConfigReply) Serialize() []byte {
	b := make([]byte, HeaderLen+8)
	putHeader(b, TypeQueueGetConfigReply, len(b), m.Xid)
	binary.BigEndian.PutUint16(b[8:10], m.Port)
	return b
}
func (m *QueueGetConfigReply) xid() uint32 { return m.Xid }

// ErrorMsg is OFPT_ERROR.
type ErrorMsg struct {
	Xid     uint32
	ErrType ErrType
	Code    uint16
	Data    []byte // at least 64 bytes of the offending message
}

// MsgType implements Message.
func (m *ErrorMsg) MsgType() MsgType { return TypeError }

// Serialize implements Message.
func (m *ErrorMsg) Serialize() []byte {
	b := make([]byte, HeaderLen+4+len(m.Data))
	putHeader(b, TypeError, len(b), m.Xid)
	binary.BigEndian.PutUint16(b[8:10], uint16(m.ErrType))
	binary.BigEndian.PutUint16(b[10:12], m.Code)
	copy(b[12:], m.Data)
	return b
}
func (m *ErrorMsg) xid() uint32 { return m.Xid }

func (m *ErrorMsg) String() string {
	return fmt.Sprintf("error{%v/%d}", m.ErrType, m.Code)
}

// Xid returns the transaction id of any message produced by this package.
func Xid(m Message) uint32 {
	if x, ok := m.(xided); ok {
		return x.xid()
	}
	return 0
}

// Decode parses one complete OpenFlow message from b. The header length
// field must equal len(b).
func Decode(b []byte) (Message, error) {
	h, err := DecodeHeader(b)
	if err != nil {
		return nil, err
	}
	if h.Version != Version {
		return nil, fmt.Errorf("openflow: version %d not supported", h.Version)
	}
	if int(h.Length) != len(b) {
		return nil, fmt.Errorf("openflow: header length %d != buffer %d", h.Length, len(b))
	}
	body := b[HeaderLen:]
	switch h.Type {
	case TypeHello:
		return &Hello{Xid: h.Xid}, nil
	case TypeError:
		if len(body) < 4 {
			return nil, fmt.Errorf("openflow: error message too short")
		}
		return &ErrorMsg{
			Xid:     h.Xid,
			ErrType: ErrType(binary.BigEndian.Uint16(body[0:2])),
			Code:    binary.BigEndian.Uint16(body[2:4]),
			Data:    append([]byte(nil), body[4:]...),
		}, nil
	case TypeEchoRequest:
		return &EchoRequest{Xid: h.Xid, Data: append([]byte(nil), body...)}, nil
	case TypeEchoReply:
		return &EchoReply{Xid: h.Xid, Data: append([]byte(nil), body...)}, nil
	case TypeVendor:
		if len(body) < 4 {
			return nil, fmt.Errorf("openflow: vendor message too short")
		}
		return &Vendor{
			Xid:    h.Xid,
			Vendor: binary.BigEndian.Uint32(body[0:4]),
			Body:   append([]byte(nil), body[4:]...),
		}, nil
	case TypeFeaturesRequest:
		return &FeaturesRequest{Xid: h.Xid}, nil
	case TypeFeaturesReply:
		if len(body) < 24 {
			return nil, fmt.Errorf("openflow: features reply too short")
		}
		m := &FeaturesReply{
			Xid:          h.Xid,
			DatapathID:   binary.BigEndian.Uint64(body[0:8]),
			NBuffers:     binary.BigEndian.Uint32(body[8:12]),
			NTables:      body[12],
			Capabilities: binary.BigEndian.Uint32(body[16:20]),
			Actions:      binary.BigEndian.Uint32(body[20:24]),
		}
		for rest := body[24:]; len(rest) >= PhyPortLen; rest = rest[PhyPortLen:] {
			p, err := decodePhyPort(rest)
			if err != nil {
				return nil, err
			}
			m.Ports = append(m.Ports, p)
		}
		return m, nil
	case TypeGetConfigRequest:
		return &GetConfigRequest{Xid: h.Xid}, nil
	case TypeGetConfigReply, TypeSetConfig:
		if len(body) < 4 {
			return nil, fmt.Errorf("openflow: switch config too short")
		}
		sc := SwitchConfig{
			Xid:         h.Xid,
			Flags:       binary.BigEndian.Uint16(body[0:2]),
			MissSendLen: binary.BigEndian.Uint16(body[2:4]),
		}
		if h.Type == TypeSetConfig {
			m := SetConfig(sc)
			return &m, nil
		}
		m := GetConfigReply(sc)
		return &m, nil
	case TypePacketIn:
		if len(body) < 10 {
			return nil, fmt.Errorf("openflow: packet in too short")
		}
		return &PacketIn{
			Xid:      h.Xid,
			BufferID: binary.BigEndian.Uint32(body[0:4]),
			TotalLen: binary.BigEndian.Uint16(body[4:6]),
			InPort:   binary.BigEndian.Uint16(body[6:8]),
			Reason:   body[8],
			Data:     append([]byte(nil), body[10:]...),
		}, nil
	case TypeFlowRemoved:
		if len(body) < MatchLen+40 {
			return nil, fmt.Errorf("openflow: flow removed too short")
		}
		m := &FlowRemoved{Xid: h.Xid}
		if err := m.Match.DecodeFromBytes(body); err != nil {
			return nil, err
		}
		rest := body[MatchLen:]
		m.Cookie = binary.BigEndian.Uint64(rest[0:8])
		m.Priority = binary.BigEndian.Uint16(rest[8:10])
		m.Reason = rest[10]
		m.DurationSec = binary.BigEndian.Uint32(rest[12:16])
		m.DurationNsec = binary.BigEndian.Uint32(rest[16:20])
		m.IdleTimeout = binary.BigEndian.Uint16(rest[20:22])
		m.PacketCount = binary.BigEndian.Uint64(rest[24:32])
		m.ByteCount = binary.BigEndian.Uint64(rest[32:40])
		return m, nil
	case TypePortStatus:
		if len(body) < 8+PhyPortLen {
			return nil, fmt.Errorf("openflow: port status too short")
		}
		p, err := decodePhyPort(body[8:])
		if err != nil {
			return nil, err
		}
		return &PortStatus{Xid: h.Xid, Reason: body[0], Desc: p}, nil
	case TypePacketOut:
		if len(body) < 8 {
			return nil, fmt.Errorf("openflow: packet out too short")
		}
		actsLen := int(binary.BigEndian.Uint16(body[6:8]))
		if 8+actsLen > len(body) {
			return nil, fmt.Errorf("openflow: packet out actions overflow body")
		}
		acts, err := DecodeActions(body[8 : 8+actsLen])
		if err != nil {
			return nil, err
		}
		return &PacketOut{
			Xid:      h.Xid,
			BufferID: binary.BigEndian.Uint32(body[0:4]),
			InPort:   binary.BigEndian.Uint16(body[4:6]),
			Actions:  acts,
			Data:     append([]byte(nil), body[8+actsLen:]...),
		}, nil
	case TypeFlowMod:
		if len(body) < MatchLen+24 {
			return nil, fmt.Errorf("openflow: flow mod too short")
		}
		m := &FlowMod{Xid: h.Xid}
		if err := m.Match.DecodeFromBytes(body); err != nil {
			return nil, err
		}
		rest := body[MatchLen:]
		m.Cookie = binary.BigEndian.Uint64(rest[0:8])
		m.Command = FlowModCommand(binary.BigEndian.Uint16(rest[8:10]))
		m.IdleTimeout = binary.BigEndian.Uint16(rest[10:12])
		m.HardTimeout = binary.BigEndian.Uint16(rest[12:14])
		m.Priority = binary.BigEndian.Uint16(rest[14:16])
		m.BufferID = binary.BigEndian.Uint32(rest[16:20])
		m.OutPort = binary.BigEndian.Uint16(rest[20:22])
		m.Flags = binary.BigEndian.Uint16(rest[22:24])
		acts, err := DecodeActions(rest[24:])
		if err != nil {
			return nil, err
		}
		m.Actions = acts
		return m, nil
	case TypePortMod:
		if len(body) < 24 {
			return nil, fmt.Errorf("openflow: port mod too short")
		}
		m := &PortMod{
			Xid:    h.Xid,
			PortNo: binary.BigEndian.Uint16(body[0:2]),
		}
		copy(m.HWAddr[:], body[2:8])
		m.Config = binary.BigEndian.Uint32(body[8:12])
		m.Mask = binary.BigEndian.Uint32(body[12:16])
		m.Advertise = binary.BigEndian.Uint32(body[16:20])
		return m, nil
	case TypeStatsRequest:
		if len(body) < 4 {
			return nil, fmt.Errorf("openflow: stats request too short")
		}
		return &StatsRequest{
			Xid:       h.Xid,
			StatsType: StatsType(binary.BigEndian.Uint16(body[0:2])),
			Flags:     binary.BigEndian.Uint16(body[2:4]),
			Body:      append([]byte(nil), body[4:]...),
		}, nil
	case TypeStatsReply:
		if len(body) < 4 {
			return nil, fmt.Errorf("openflow: stats reply too short")
		}
		return &StatsReply{
			Xid:       h.Xid,
			StatsType: StatsType(binary.BigEndian.Uint16(body[0:2])),
			Flags:     binary.BigEndian.Uint16(body[2:4]),
			Body:      append([]byte(nil), body[4:]...),
		}, nil
	case TypeBarrierRequest:
		return &BarrierRequest{Xid: h.Xid}, nil
	case TypeBarrierReply:
		return &BarrierReply{Xid: h.Xid}, nil
	case TypeQueueGetConfigRequest:
		if len(body) < 4 {
			return nil, fmt.Errorf("openflow: queue config request too short")
		}
		return &QueueGetConfigRequest{
			Xid:  h.Xid,
			Port: binary.BigEndian.Uint16(body[0:2]),
		}, nil
	case TypeQueueGetConfigReply:
		if len(body) < 8 {
			return nil, fmt.Errorf("openflow: queue config reply too short")
		}
		return &QueueGetConfigReply{
			Xid:  h.Xid,
			Port: binary.BigEndian.Uint16(body[0:2]),
		}, nil
	}
	return nil, fmt.Errorf("openflow: unknown message type %d", uint8(h.Type))
}
