package openflow

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// MatchLen is the wire length of ofp_match.
const MatchLen = 40

// Match is the OpenFlow 1.0 flow match structure (ofp_match). Fields whose
// wildcard bit is set are ignored during matching.
type Match struct {
	Wildcards uint32
	InPort    uint16
	DLSrc     [6]byte
	DLDst     [6]byte
	DLVLAN    uint16
	DLVLANPCP uint8
	DLType    uint16
	NWTos     uint8
	NWProto   uint8
	NWSrc     uint32
	NWDst     uint32
	TPSrc     uint16
	TPDst     uint16
}

// MatchAll returns a fully wildcarded match.
func MatchAll() Match { return Match{Wildcards: FWAll} }

// DecodeFromBytes parses an ofp_match from the first MatchLen bytes of b.
func (m *Match) DecodeFromBytes(b []byte) error {
	if len(b) < MatchLen {
		return fmt.Errorf("openflow: match needs %d bytes, have %d", MatchLen, len(b))
	}
	m.Wildcards = binary.BigEndian.Uint32(b[0:4])
	m.InPort = binary.BigEndian.Uint16(b[4:6])
	copy(m.DLSrc[:], b[6:12])
	copy(m.DLDst[:], b[12:18])
	m.DLVLAN = binary.BigEndian.Uint16(b[18:20])
	m.DLVLANPCP = b[20]
	// b[21] pad
	m.DLType = binary.BigEndian.Uint16(b[22:24])
	m.NWTos = b[24]
	m.NWProto = b[25]
	// b[26:28] pad
	m.NWSrc = binary.BigEndian.Uint32(b[28:32])
	m.NWDst = binary.BigEndian.Uint32(b[32:36])
	m.TPSrc = binary.BigEndian.Uint16(b[36:38])
	m.TPDst = binary.BigEndian.Uint16(b[38:40])
	return nil
}

// SerializeTo appends the wire form of m to dst and returns the result.
func (m *Match) SerializeTo(dst []byte) []byte {
	var b [MatchLen]byte
	binary.BigEndian.PutUint32(b[0:4], m.Wildcards)
	binary.BigEndian.PutUint16(b[4:6], m.InPort)
	copy(b[6:12], m.DLSrc[:])
	copy(b[12:18], m.DLDst[:])
	binary.BigEndian.PutUint16(b[18:20], m.DLVLAN)
	b[20] = m.DLVLANPCP
	binary.BigEndian.PutUint16(b[22:24], m.DLType)
	b[24] = m.NWTos
	b[25] = m.NWProto
	binary.BigEndian.PutUint32(b[28:32], m.NWSrc)
	binary.BigEndian.PutUint32(b[32:36], m.NWDst)
	binary.BigEndian.PutUint16(b[36:38], m.TPSrc)
	binary.BigEndian.PutUint16(b[38:40], m.TPDst)
	return append(dst, b[:]...)
}

// NWSrcWildBits returns how many low bits of NWSrc are wildcarded (>= 32
// means the field is fully ignored).
func (m *Match) NWSrcWildBits() uint32 {
	return (m.Wildcards & FWNWSrcMask) >> FWNWSrcShift
}

// NWDstWildBits returns how many low bits of NWDst are wildcarded.
func (m *Match) NWDstWildBits() uint32 {
	return (m.Wildcards & FWNWDstMask) >> FWNWDstShift
}

// IsExact reports whether no field is wildcarded.
func (m *Match) IsExact() bool { return m.Wildcards&FWAll == 0 }

// Subsumes reports whether every packet matching n also matches m (m is
// equal or more general). Used for DELETE (non-strict) semantics.
func (m *Match) Subsumes(n *Match) bool {
	if m.Wildcards&FWInPort == 0 {
		if n.Wildcards&FWInPort != 0 || m.InPort != n.InPort {
			return false
		}
	}
	if m.Wildcards&FWDLSrc == 0 {
		if n.Wildcards&FWDLSrc != 0 || m.DLSrc != n.DLSrc {
			return false
		}
	}
	if m.Wildcards&FWDLDst == 0 {
		if n.Wildcards&FWDLDst != 0 || m.DLDst != n.DLDst {
			return false
		}
	}
	if m.Wildcards&FWDLVLAN == 0 {
		if n.Wildcards&FWDLVLAN != 0 || m.DLVLAN != n.DLVLAN {
			return false
		}
	}
	if m.Wildcards&FWDLVLANPCP == 0 {
		if n.Wildcards&FWDLVLANPCP != 0 || m.DLVLANPCP != n.DLVLANPCP {
			return false
		}
	}
	if m.Wildcards&FWDLType == 0 {
		if n.Wildcards&FWDLType != 0 || m.DLType != n.DLType {
			return false
		}
	}
	if m.Wildcards&FWNWTos == 0 {
		if n.Wildcards&FWNWTos != 0 || m.NWTos != n.NWTos {
			return false
		}
	}
	if m.Wildcards&FWNWProto == 0 {
		if n.Wildcards&FWNWProto != 0 || m.NWProto != n.NWProto {
			return false
		}
	}
	if m.Wildcards&FWTPSrc == 0 {
		if n.Wildcards&FWTPSrc != 0 || m.TPSrc != n.TPSrc {
			return false
		}
	}
	if m.Wildcards&FWTPDst == 0 {
		if n.Wildcards&FWTPDst != 0 || m.TPDst != n.TPDst {
			return false
		}
	}
	mb, nb := m.NWSrcWildBits(), n.NWSrcWildBits()
	if mb < 32 {
		if nb > mb {
			return false
		}
		if mb < 32 && (m.NWSrc>>mb) != (n.NWSrc>>mb) {
			return false
		}
	}
	mb, nb = m.NWDstWildBits(), n.NWDstWildBits()
	if mb < 32 {
		if nb > mb {
			return false
		}
		if mb < 32 && (m.NWDst>>mb) != (n.NWDst>>mb) {
			return false
		}
	}
	return true
}

// Equals reports whether two matches are identical including wildcards
// (strict flow-mod semantics compare matches this way, plus priority).
func (m *Match) Equals(n *Match) bool {
	normWild := func(w uint32) uint32 {
		// Clamp the address wildcard fields at 32: 32..63 all mean "fully
		// wildcarded" on the wire.
		if (w&FWNWSrcMask)>>FWNWSrcShift > 32 {
			w = (w &^ FWNWSrcMask) | FWNWSrcAll
		}
		if (w&FWNWDstMask)>>FWNWDstShift > 32 {
			w = (w &^ FWNWDstMask) | FWNWDstAll
		}
		return w & FWAll
	}
	return normWild(m.Wildcards) == normWild(n.Wildcards) &&
		(m.Wildcards&FWInPort != 0 || m.InPort == n.InPort) &&
		(m.Wildcards&FWDLSrc != 0 || m.DLSrc == n.DLSrc) &&
		(m.Wildcards&FWDLDst != 0 || m.DLDst == n.DLDst) &&
		(m.Wildcards&FWDLVLAN != 0 || m.DLVLAN == n.DLVLAN) &&
		(m.Wildcards&FWDLVLANPCP != 0 || m.DLVLANPCP == n.DLVLANPCP) &&
		(m.Wildcards&FWDLType != 0 || m.DLType == n.DLType) &&
		(m.Wildcards&FWNWTos != 0 || m.NWTos == n.NWTos) &&
		(m.Wildcards&FWNWProto != 0 || m.NWProto == n.NWProto) &&
		(m.Wildcards&FWTPSrc != 0 || m.TPSrc == n.TPSrc) &&
		(m.Wildcards&FWTPDst != 0 || m.TPDst == n.TPDst) &&
		(m.NWSrcWildBits() >= 32 || m.NWSrc>>m.NWSrcWildBits() == n.NWSrc>>m.NWSrcWildBits()) &&
		(m.NWDstWildBits() >= 32 || m.NWDst>>m.NWDstWildBits() == n.NWDst>>m.NWDstWildBits())
}

// String renders the non-wildcarded fields.
func (m *Match) String() string {
	if m.Wildcards&FWAll == FWAll {
		return "match{*}"
	}
	var parts []string
	add := func(bit uint32, s string) {
		if m.Wildcards&bit == 0 {
			parts = append(parts, s)
		}
	}
	add(FWInPort, fmt.Sprintf("in_port=%d", m.InPort))
	add(FWDLSrc, fmt.Sprintf("dl_src=%x", m.DLSrc))
	add(FWDLDst, fmt.Sprintf("dl_dst=%x", m.DLDst))
	add(FWDLVLAN, fmt.Sprintf("dl_vlan=%d", m.DLVLAN))
	add(FWDLVLANPCP, fmt.Sprintf("dl_vlan_pcp=%d", m.DLVLANPCP))
	add(FWDLType, fmt.Sprintf("dl_type=%#x", m.DLType))
	add(FWNWTos, fmt.Sprintf("nw_tos=%d", m.NWTos))
	add(FWNWProto, fmt.Sprintf("nw_proto=%d", m.NWProto))
	if b := m.NWSrcWildBits(); b < 32 {
		parts = append(parts, fmt.Sprintf("nw_src=%#x/%d", m.NWSrc, 32-b))
	}
	if b := m.NWDstWildBits(); b < 32 {
		parts = append(parts, fmt.Sprintf("nw_dst=%#x/%d", m.NWDst, 32-b))
	}
	add(FWTPSrc, fmt.Sprintf("tp_src=%d", m.TPSrc))
	add(FWTPDst, fmt.Sprintf("tp_dst=%d", m.TPDst))
	return "match{" + strings.Join(parts, ",") + "}"
}
