// Package openflow implements the OpenFlow 1.0 wire protocol: message
// framing, the flow match structure, the thirteen action types, and all
// protocol constants, with concrete encode/decode in the gopacket style
// (DecodeFromBytes / SerializeTo on each layer-like message struct).
//
// SOFT tests agents "at the interface level" (§2.2), and this package is
// that interface: the harness composes messages here, the symbuf package
// mirrors their layout with symbolic bytes, and agents validate exactly the
// fields defined here. The constants and struct layouts follow the OpenFlow
// Switch Specification version 1.0.0 — the revision both the Reference
// Switch and Open vSwitch 1.0.0 in the paper implement.
package openflow

// Version is the protocol version this package implements (OpenFlow 1.0).
const Version = 0x01

// HeaderLen is the length of the common ofp_header.
const HeaderLen = 8

// MsgType enumerates the OpenFlow 1.0 message types (ofp_type).
type MsgType uint8

// OpenFlow 1.0 message types.
const (
	TypeHello MsgType = iota
	TypeError
	TypeEchoRequest
	TypeEchoReply
	TypeVendor
	TypeFeaturesRequest
	TypeFeaturesReply
	TypeGetConfigRequest
	TypeGetConfigReply
	TypeSetConfig
	TypePacketIn
	TypeFlowRemoved
	TypePortStatus
	TypePacketOut
	TypeFlowMod
	TypePortMod
	TypeStatsRequest
	TypeStatsReply
	TypeBarrierRequest
	TypeBarrierReply
	TypeQueueGetConfigRequest
	TypeQueueGetConfigReply

	// NumTypes is the count of valid message type codes ("at present about
	// 20 codes exist" — §3.2.1; exactly 22 in OpenFlow 1.0).
	NumTypes = 22
)

var msgTypeNames = [...]string{
	"HELLO", "ERROR", "ECHO_REQUEST", "ECHO_REPLY", "VENDOR",
	"FEATURES_REQUEST", "FEATURES_REPLY", "GET_CONFIG_REQUEST",
	"GET_CONFIG_REPLY", "SET_CONFIG", "PACKET_IN", "FLOW_REMOVED",
	"PORT_STATUS", "PACKET_OUT", "FLOW_MOD", "PORT_MOD", "STATS_REQUEST",
	"STATS_REPLY", "BARRIER_REQUEST", "BARRIER_REPLY",
	"QUEUE_GET_CONFIG_REQUEST", "QUEUE_GET_CONFIG_REPLY",
}

func (t MsgType) String() string {
	if int(t) < len(msgTypeNames) {
		return msgTypeNames[t]
	}
	return "UNKNOWN"
}

// Valid reports whether t is a defined OpenFlow 1.0 message type.
func (t MsgType) Valid() bool { return int(t) < NumTypes }

// Reserved port numbers (ofp_port). Ports are 16-bit in OpenFlow 1.0.
const (
	// PortMax is the maximum number of physical switch ports.
	PortMax uint16 = 0xff00
	// PortInPort sends the packet back out its input port; it must be
	// explicitly used when the output equals the ingress port (§5.1.2,
	// footnote 4).
	PortInPort uint16 = 0xfff8
	// PortTable performs actions in the flow table (Packet Out only).
	PortTable uint16 = 0xfff9
	// PortNormal processes with traditional (non-OpenFlow) forwarding.
	PortNormal uint16 = 0xfffa
	// PortFlood floods along the minimum spanning tree.
	PortFlood uint16 = 0xfffb
	// PortAll sends out all physical ports except the input port.
	PortAll uint16 = 0xfffc
	// PortController encapsulates and sends to the controller.
	PortController uint16 = 0xfffd
	// PortLocal targets the local networking stack.
	PortLocal uint16 = 0xfffe
	// PortNone is "no port" (used in flow_mod out_port to mean any).
	PortNone uint16 = 0xffff
)

// PortName names the reserved ports for trace rendering.
func PortName(p uint16) string {
	switch p {
	case PortInPort:
		return "IN_PORT"
	case PortTable:
		return "TABLE"
	case PortNormal:
		return "NORMAL"
	case PortFlood:
		return "FLOOD"
	case PortAll:
		return "ALL"
	case PortController:
		return "CONTROLLER"
	case PortLocal:
		return "LOCAL"
	case PortNone:
		return "NONE"
	}
	return ""
}

// ActionType enumerates ofp_action_type.
type ActionType uint16

// OpenFlow 1.0 action types.
const (
	ActOutput ActionType = iota
	ActSetVLANVID
	ActSetVLANPCP
	ActStripVLAN
	ActSetDLSrc
	ActSetDLDst
	ActSetNWSrc
	ActSetNWDst
	ActSetNWTos
	ActSetTPSrc
	ActSetTPDst
	ActEnqueue
	// NumActionTypes counts the standard action codes (vendor excluded).
	NumActionTypes

	ActVendor ActionType = 0xffff
)

var actionNames = [...]string{
	"OUTPUT", "SET_VLAN_VID", "SET_VLAN_PCP", "STRIP_VLAN", "SET_DL_SRC",
	"SET_DL_DST", "SET_NW_SRC", "SET_NW_DST", "SET_NW_TOS", "SET_TP_SRC",
	"SET_TP_DST", "ENQUEUE",
}

func (t ActionType) String() string {
	if int(t) < len(actionNames) {
		return actionNames[t]
	}
	if t == ActVendor {
		return "VENDOR"
	}
	return "UNKNOWN_ACTION"
}

// ActionLen returns the wire length of a standard action type, or 0 for
// unknown types. All lengths are multiples of 8 (§3.2.1).
func ActionLen(t ActionType) int {
	switch t {
	case ActOutput, ActSetVLANVID, ActSetVLANPCP, ActStripVLAN,
		ActSetNWSrc, ActSetNWDst, ActSetNWTos, ActSetTPSrc, ActSetTPDst:
		return 8
	case ActSetDLSrc, ActSetDLDst, ActEnqueue:
		return 16
	}
	return 0
}

// FlowModCommand enumerates ofp_flow_mod_command.
type FlowModCommand uint16

// Flow table modification commands.
const (
	FCAdd FlowModCommand = iota
	FCModify
	FCModifyStrict
	FCDelete
	FCDeleteStrict
	NumFlowModCommands
)

func (c FlowModCommand) String() string {
	names := [...]string{"ADD", "MODIFY", "MODIFY_STRICT", "DELETE", "DELETE_STRICT"}
	if int(c) < len(names) {
		return names[c]
	}
	return "BAD_COMMAND"
}

// Flow mod flags (ofp_flow_mod_flags).
const (
	FlagSendFlowRem  uint16 = 1 << 0
	FlagCheckOverlap uint16 = 1 << 1
	FlagEmerg        uint16 = 1 << 2
)

// Wildcard flags (ofp_flow_wildcards). NWSrc/NWDst occupy 6-bit fields
// counting wildcarded low bits of the address; value >= 32 wildcards all.
const (
	FWInPort  uint32 = 1 << 0
	FWDLVLAN  uint32 = 1 << 1
	FWDLSrc   uint32 = 1 << 2
	FWDLDst   uint32 = 1 << 3
	FWDLType  uint32 = 1 << 4
	FWNWProto uint32 = 1 << 5
	FWTPSrc   uint32 = 1 << 6
	FWTPDst   uint32 = 1 << 7

	FWNWSrcShift uint32 = 8
	FWNWSrcMask  uint32 = 0x3f << FWNWSrcShift
	FWNWSrcAll   uint32 = 32 << FWNWSrcShift
	FWNWDstShift uint32 = 14
	FWNWDstMask  uint32 = 0x3f << FWNWDstShift
	FWNWDstAll   uint32 = 32 << FWNWDstShift

	FWDLVLANPCP uint32 = 1 << 20
	FWNWTos     uint32 = 1 << 21

	FWAll uint32 = (1 << 22) - 1
)

// ErrType enumerates ofp_error_type.
type ErrType uint16

// Error message types.
const (
	ErrHelloFailed ErrType = iota
	ErrBadRequest
	ErrBadAction
	ErrFlowModFailed
	ErrPortModFailed
	ErrQueueOpFailed
)

func (t ErrType) String() string {
	names := [...]string{"HELLO_FAILED", "BAD_REQUEST", "BAD_ACTION",
		"FLOW_MOD_FAILED", "PORT_MOD_FAILED", "QUEUE_OP_FAILED"}
	if int(t) < len(names) {
		return names[t]
	}
	return "UNKNOWN_ERROR_TYPE"
}

// ofp_bad_request_code values.
const (
	BRCBadVersion uint16 = iota
	BRCBadType
	BRCBadStat
	BRCBadVendor
	BRCBadSubtype
	BRCEperm
	BRCBadLen
	BRCBufferEmpty
	BRCBufferUnknown
)

// ofp_bad_action_code values.
const (
	BACBadType uint16 = iota
	BACBadLen
	BACBadVendor
	BACBadVendorType
	BACBadOutPort
	BACBadArgument
	BACEperm
	BACTooMany
	BACBadQueue
)

// ofp_flow_mod_failed_code values.
const (
	FMFCAllTablesFull uint16 = iota
	FMFCOverlap
	FMFCEperm
	FMFCBadEmergTimeout
	FMFCBadCommand
	FMFCUnsupported
)

// ofp_queue_op_failed_code values.
const (
	QOFCBadPort uint16 = iota
	QOFCBadQueue
	QOFCEperm
)

// StatsType enumerates ofp_stats_types.
type StatsType uint16

// Statistics request/reply types.
const (
	StatsDesc StatsType = iota
	StatsFlow
	StatsAggregate
	StatsTable
	StatsPort
	StatsQueue
	NumStatsTypes

	StatsVendor StatsType = 0xffff
)

func (t StatsType) String() string {
	names := [...]string{"DESC", "FLOW", "AGGREGATE", "TABLE", "PORT", "QUEUE"}
	if int(t) < len(names) {
		return names[t]
	}
	if t == StatsVendor {
		return "VENDOR"
	}
	return "UNKNOWN_STATS"
}

// Switch config flags (ofp_config_flags): fragment handling.
const (
	FragNormal uint16 = 0
	FragDrop   uint16 = 1
	FragReasm  uint16 = 2
	FragMask   uint16 = 3
)

// PacketIn reasons (ofp_packet_in_reason).
const (
	ReasonNoMatch uint8 = 0
	ReasonAction  uint8 = 1
)

// NoBuffer is the buffer_id meaning "not buffered".
const NoBuffer uint32 = 0xffffffff

// Capabilities bits advertised in FEATURES_REPLY (ofp_capabilities).
const (
	CapFlowStats  uint32 = 1 << 0
	CapTableStats uint32 = 1 << 1
	CapPortStats  uint32 = 1 << 2
	CapSTP        uint32 = 1 << 3
	CapIPReasm    uint32 = 1 << 5
	CapQueueStats uint32 = 1 << 6
	CapARPMatchIP uint32 = 1 << 7
)

// VLANNone indicates no VLAN id was set (ofp_vlan_id OFP_VLAN_NONE).
const VLANNone uint16 = 0xffff
