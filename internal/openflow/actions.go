package openflow

import (
	"encoding/binary"
	"fmt"
)

// Action is one entry of an OpenFlow action list. Implementations are the
// ofp_action_* structs of the 1.0 specification.
type Action interface {
	// Type returns the action's wire type code.
	Type() ActionType
	// Len returns the wire length (a multiple of 8).
	Len() int
	// SerializeTo appends the wire form to dst.
	SerializeTo(dst []byte) []byte
	// String renders the action for traces.
	String() string
}

// ActionOutput sends the packet out a port (ofp_action_output).
type ActionOutput struct {
	Port   uint16
	MaxLen uint16 // bytes to send when Port == PortController
}

// Type implements Action.
func (a *ActionOutput) Type() ActionType { return ActOutput }

// Len implements Action.
func (a *ActionOutput) Len() int { return 8 }

// SerializeTo implements Action.
func (a *ActionOutput) SerializeTo(dst []byte) []byte {
	var b [8]byte
	binary.BigEndian.PutUint16(b[0:2], uint16(ActOutput))
	binary.BigEndian.PutUint16(b[2:4], 8)
	binary.BigEndian.PutUint16(b[4:6], a.Port)
	binary.BigEndian.PutUint16(b[6:8], a.MaxLen)
	return append(dst, b[:]...)
}

func (a *ActionOutput) String() string {
	if n := PortName(a.Port); n != "" {
		return fmt.Sprintf("output:%s", n)
	}
	return fmt.Sprintf("output:%d", a.Port)
}

// ActionSetVLANVID sets the 802.1q VLAN id (ofp_action_vlan_vid).
type ActionSetVLANVID struct{ VLANVID uint16 }

// Type implements Action.
func (a *ActionSetVLANVID) Type() ActionType { return ActSetVLANVID }

// Len implements Action.
func (a *ActionSetVLANVID) Len() int { return 8 }

// SerializeTo implements Action.
func (a *ActionSetVLANVID) SerializeTo(dst []byte) []byte {
	var b [8]byte
	binary.BigEndian.PutUint16(b[0:2], uint16(ActSetVLANVID))
	binary.BigEndian.PutUint16(b[2:4], 8)
	binary.BigEndian.PutUint16(b[4:6], a.VLANVID)
	return append(dst, b[:]...)
}

func (a *ActionSetVLANVID) String() string { return fmt.Sprintf("set_vlan_vid:%d", a.VLANVID) }

// ActionSetVLANPCP sets the 802.1q priority (ofp_action_vlan_pcp).
type ActionSetVLANPCP struct{ VLANPCP uint8 }

// Type implements Action.
func (a *ActionSetVLANPCP) Type() ActionType { return ActSetVLANPCP }

// Len implements Action.
func (a *ActionSetVLANPCP) Len() int { return 8 }

// SerializeTo implements Action.
func (a *ActionSetVLANPCP) SerializeTo(dst []byte) []byte {
	var b [8]byte
	binary.BigEndian.PutUint16(b[0:2], uint16(ActSetVLANPCP))
	binary.BigEndian.PutUint16(b[2:4], 8)
	b[4] = a.VLANPCP
	return append(dst, b[:]...)
}

func (a *ActionSetVLANPCP) String() string { return fmt.Sprintf("set_vlan_pcp:%d", a.VLANPCP) }

// ActionStripVLAN removes the 802.1q header (ofp_action_header).
type ActionStripVLAN struct{}

// Type implements Action.
func (a *ActionStripVLAN) Type() ActionType { return ActStripVLAN }

// Len implements Action.
func (a *ActionStripVLAN) Len() int { return 8 }

// SerializeTo implements Action.
func (a *ActionStripVLAN) SerializeTo(dst []byte) []byte {
	var b [8]byte
	binary.BigEndian.PutUint16(b[0:2], uint16(ActStripVLAN))
	binary.BigEndian.PutUint16(b[2:4], 8)
	return append(dst, b[:]...)
}

func (a *ActionStripVLAN) String() string { return "strip_vlan" }

// ActionSetDL sets the Ethernet source or destination (ofp_action_dl_addr).
type ActionSetDL struct {
	Dst  bool // false: set source; true: set destination
	Addr [6]byte
}

// Type implements Action.
func (a *ActionSetDL) Type() ActionType {
	if a.Dst {
		return ActSetDLDst
	}
	return ActSetDLSrc
}

// Len implements Action.
func (a *ActionSetDL) Len() int { return 16 }

// SerializeTo implements Action.
func (a *ActionSetDL) SerializeTo(dst []byte) []byte {
	var b [16]byte
	binary.BigEndian.PutUint16(b[0:2], uint16(a.Type()))
	binary.BigEndian.PutUint16(b[2:4], 16)
	copy(b[4:10], a.Addr[:])
	return append(dst, b[:]...)
}

func (a *ActionSetDL) String() string {
	if a.Dst {
		return fmt.Sprintf("set_dl_dst:%x", a.Addr)
	}
	return fmt.Sprintf("set_dl_src:%x", a.Addr)
}

// ActionSetNW sets the IPv4 source or destination (ofp_action_nw_addr).
type ActionSetNW struct {
	Dst  bool
	Addr uint32
}

// Type implements Action.
func (a *ActionSetNW) Type() ActionType {
	if a.Dst {
		return ActSetNWDst
	}
	return ActSetNWSrc
}

// Len implements Action.
func (a *ActionSetNW) Len() int { return 8 }

// SerializeTo implements Action.
func (a *ActionSetNW) SerializeTo(dst []byte) []byte {
	var b [8]byte
	binary.BigEndian.PutUint16(b[0:2], uint16(a.Type()))
	binary.BigEndian.PutUint16(b[2:4], 8)
	binary.BigEndian.PutUint32(b[4:8], a.Addr)
	return append(dst, b[:]...)
}

func (a *ActionSetNW) String() string {
	if a.Dst {
		return fmt.Sprintf("set_nw_dst:%#x", a.Addr)
	}
	return fmt.Sprintf("set_nw_src:%#x", a.Addr)
}

// ActionSetNWTos sets the IP ToS/DSCP field (ofp_action_nw_tos).
type ActionSetNWTos struct{ Tos uint8 }

// Type implements Action.
func (a *ActionSetNWTos) Type() ActionType { return ActSetNWTos }

// Len implements Action.
func (a *ActionSetNWTos) Len() int { return 8 }

// SerializeTo implements Action.
func (a *ActionSetNWTos) SerializeTo(dst []byte) []byte {
	var b [8]byte
	binary.BigEndian.PutUint16(b[0:2], uint16(ActSetNWTos))
	binary.BigEndian.PutUint16(b[2:4], 8)
	b[4] = a.Tos
	return append(dst, b[:]...)
}

func (a *ActionSetNWTos) String() string { return fmt.Sprintf("set_nw_tos:%d", a.Tos) }

// ActionSetTP sets the TCP/UDP source or destination port
// (ofp_action_tp_port).
type ActionSetTP struct {
	Dst  bool
	Port uint16
}

// Type implements Action.
func (a *ActionSetTP) Type() ActionType {
	if a.Dst {
		return ActSetTPDst
	}
	return ActSetTPSrc
}

// Len implements Action.
func (a *ActionSetTP) Len() int { return 8 }

// SerializeTo implements Action.
func (a *ActionSetTP) SerializeTo(dst []byte) []byte {
	var b [8]byte
	binary.BigEndian.PutUint16(b[0:2], uint16(a.Type()))
	binary.BigEndian.PutUint16(b[2:4], 8)
	binary.BigEndian.PutUint16(b[4:6], a.Port)
	return append(dst, b[:]...)
}

func (a *ActionSetTP) String() string {
	if a.Dst {
		return fmt.Sprintf("set_tp_dst:%d", a.Port)
	}
	return fmt.Sprintf("set_tp_src:%d", a.Port)
}

// ActionEnqueue forwards through a queue on a port (ofp_action_enqueue).
type ActionEnqueue struct {
	Port    uint16
	QueueID uint32
}

// Type implements Action.
func (a *ActionEnqueue) Type() ActionType { return ActEnqueue }

// Len implements Action.
func (a *ActionEnqueue) Len() int { return 16 }

// SerializeTo implements Action.
func (a *ActionEnqueue) SerializeTo(dst []byte) []byte {
	var b [16]byte
	binary.BigEndian.PutUint16(b[0:2], uint16(ActEnqueue))
	binary.BigEndian.PutUint16(b[2:4], 16)
	binary.BigEndian.PutUint16(b[4:6], a.Port)
	binary.BigEndian.PutUint32(b[12:16], a.QueueID)
	return append(dst, b[:]...)
}

func (a *ActionEnqueue) String() string {
	return fmt.Sprintf("enqueue:%d:%d", a.Port, a.QueueID)
}

// ActionVendor is an opaque vendor action (ofp_action_vendor_header).
type ActionVendor struct {
	Vendor uint32
	Body   []byte // padded so that total length is a multiple of 8
}

// Type implements Action.
func (a *ActionVendor) Type() ActionType { return ActVendor }

// Len implements Action.
func (a *ActionVendor) Len() int { return 8 + (len(a.Body)+7)/8*8 }

// SerializeTo implements Action.
func (a *ActionVendor) SerializeTo(dst []byte) []byte {
	n := a.Len()
	b := make([]byte, n)
	binary.BigEndian.PutUint16(b[0:2], uint16(ActVendor))
	binary.BigEndian.PutUint16(b[2:4], uint16(n))
	binary.BigEndian.PutUint32(b[4:8], a.Vendor)
	copy(b[8:], a.Body)
	return append(dst, b...)
}

func (a *ActionVendor) String() string { return fmt.Sprintf("vendor:%#x", a.Vendor) }

// DecodeActions parses a wire action list. It returns the parsed actions or
// an error describing the first malformed entry (type and code match the
// error message an agent should send).
func DecodeActions(b []byte) ([]Action, error) {
	var out []Action
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("openflow: truncated action header (%d bytes)", len(b))
		}
		t := ActionType(binary.BigEndian.Uint16(b[0:2]))
		n := int(binary.BigEndian.Uint16(b[2:4]))
		if n < 8 || n%8 != 0 || n > len(b) {
			return nil, fmt.Errorf("openflow: bad action length %d for %v", n, t)
		}
		a, err := decodeAction(t, b[:n])
		if err != nil {
			return nil, err
		}
		out = append(out, a)
		b = b[n:]
	}
	return out, nil
}

func decodeAction(t ActionType, b []byte) (Action, error) {
	want := ActionLen(t)
	if t != ActVendor && want != 0 && len(b) != want {
		return nil, fmt.Errorf("openflow: action %v length %d, want %d", t, len(b), want)
	}
	switch t {
	case ActOutput:
		return &ActionOutput{
			Port:   binary.BigEndian.Uint16(b[4:6]),
			MaxLen: binary.BigEndian.Uint16(b[6:8]),
		}, nil
	case ActSetVLANVID:
		return &ActionSetVLANVID{VLANVID: binary.BigEndian.Uint16(b[4:6])}, nil
	case ActSetVLANPCP:
		return &ActionSetVLANPCP{VLANPCP: b[4]}, nil
	case ActStripVLAN:
		return &ActionStripVLAN{}, nil
	case ActSetDLSrc, ActSetDLDst:
		a := &ActionSetDL{Dst: t == ActSetDLDst}
		copy(a.Addr[:], b[4:10])
		return a, nil
	case ActSetNWSrc, ActSetNWDst:
		return &ActionSetNW{
			Dst:  t == ActSetNWDst,
			Addr: binary.BigEndian.Uint32(b[4:8]),
		}, nil
	case ActSetNWTos:
		return &ActionSetNWTos{Tos: b[4]}, nil
	case ActSetTPSrc, ActSetTPDst:
		return &ActionSetTP{
			Dst:  t == ActSetTPDst,
			Port: binary.BigEndian.Uint16(b[4:6]),
		}, nil
	case ActEnqueue:
		return &ActionEnqueue{
			Port:    binary.BigEndian.Uint16(b[4:6]),
			QueueID: binary.BigEndian.Uint32(b[12:16]),
		}, nil
	case ActVendor:
		if len(b) < 8 {
			return nil, fmt.Errorf("openflow: vendor action too short")
		}
		return &ActionVendor{
			Vendor: binary.BigEndian.Uint32(b[4:8]),
			Body:   append([]byte(nil), b[8:]...),
		}, nil
	}
	return nil, fmt.Errorf("openflow: unknown action type %d", uint16(t))
}

// SerializeActions renders an action list to wire form.
func SerializeActions(acts []Action) []byte {
	var out []byte
	for _, a := range acts {
		out = a.SerializeTo(out)
	}
	return out
}

// ActionsLen returns the total wire length of an action list.
func ActionsLen(acts []Action) int {
	n := 0
	for _, a := range acts {
		n += a.Len()
	}
	return n
}
