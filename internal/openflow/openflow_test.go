package openflow

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	wire := m.Serialize()
	h, err := DecodeHeader(wire)
	if err != nil {
		t.Fatalf("header: %v", err)
	}
	if int(h.Length) != len(wire) {
		t.Fatalf("%v: header length %d != wire %d", m.MsgType(), h.Length, len(wire))
	}
	if h.Type != m.MsgType() {
		t.Fatalf("type %v != %v", h.Type, m.MsgType())
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatalf("decode %v: %v", m.MsgType(), err)
	}
	return got
}

func TestRoundTripAllMessageTypes(t *testing.T) {
	msgs := []Message{
		&Hello{Xid: 1},
		&ErrorMsg{Xid: 2, ErrType: ErrBadRequest, Code: BRCBadLen, Data: []byte{1, 2, 3}},
		&EchoRequest{Xid: 3, Data: []byte("ping")},
		&EchoReply{Xid: 4, Data: []byte("pong")},
		&Vendor{Xid: 5, Vendor: 0x2320, Body: []byte{9, 9}},
		&FeaturesRequest{Xid: 6},
		&FeaturesReply{
			Xid: 7, DatapathID: 0xdeadbeefcafe, NBuffers: 256, NTables: 2,
			Capabilities: CapFlowStats | CapTableStats,
			Actions:      1<<uint(ActOutput) | 1<<uint(ActSetVLANVID),
			Ports:        []PhyPort{{PortNo: 1, Name: "eth1"}, {PortNo: 2, Name: "eth2"}},
		},
		&GetConfigRequest{Xid: 8},
		&GetConfigReply{Xid: 9, Flags: FragNormal, MissSendLen: 128},
		&SetConfig{Xid: 10, Flags: FragDrop, MissSendLen: 0xffff},
		&PacketIn{Xid: 11, BufferID: 42, TotalLen: 60, InPort: 3, Reason: ReasonNoMatch, Data: []byte{0xaa, 0xbb}},
		&FlowRemoved{Xid: 12, Match: MatchAll(), Cookie: 7, Priority: 100, Reason: 1, PacketCount: 5, ByteCount: 500},
		&PortStatus{Xid: 13, Reason: 2, Desc: PhyPort{PortNo: 9, Name: "eth9"}},
		&PacketOut{Xid: 14, BufferID: NoBuffer, InPort: PortNone,
			Actions: []Action{&ActionOutput{Port: 2, MaxLen: 64}}, Data: []byte{1, 2, 3, 4}},
		&FlowMod{Xid: 15, Match: MatchAll(), Command: FCAdd, Priority: 0x8000,
			BufferID: NoBuffer, OutPort: PortNone,
			Actions: []Action{&ActionOutput{Port: 1}, &ActionSetVLANVID{VLANVID: 100}}},
		&PortMod{Xid: 16, PortNo: 1, Config: 1, Mask: 1},
		&StatsRequest{Xid: 17, StatsType: StatsFlow, Body: make([]byte, 44)},
		&StatsReply{Xid: 18, StatsType: StatsDesc, Body: []byte("desc")},
		&BarrierRequest{Xid: 19},
		&BarrierReply{Xid: 20},
		&QueueGetConfigRequest{Xid: 21, Port: 1},
		&QueueGetConfigReply{Xid: 22, Port: 1},
	}
	if len(msgs) != NumTypes {
		t.Fatalf("test covers %d message types, protocol has %d", len(msgs), NumTypes)
	}
	seen := map[MsgType]bool{}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(normalize(got), normalize(m)) {
			t.Errorf("%v round trip:\n got %#v\nwant %#v", m.MsgType(), got, m)
		}
		seen[m.MsgType()] = true
	}
	if len(seen) != NumTypes {
		t.Fatalf("covered %d distinct types, want %d", len(seen), NumTypes)
	}
}

// normalize maps empty slices to nil so DeepEqual ignores the
// empty-vs-nil distinction Decode introduces.
func normalize(m Message) Message {
	v := reflect.ValueOf(m).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if f.Kind() == reflect.Slice && f.Len() == 0 && f.CanSet() {
			f.Set(reflect.Zero(f.Type()))
		}
	}
	return m
}

func TestXidAccessor(t *testing.T) {
	for _, m := range []Message{&Hello{Xid: 77}, &FlowMod{Xid: 78}, &ErrorMsg{Xid: 79}} {
		want := reflect.ValueOf(m).Elem().FieldByName("Xid").Uint()
		if got := Xid(m); got != uint32(want) {
			t.Errorf("Xid(%v) = %d, want %d", m.MsgType(), got, want)
		}
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	wire := (&Hello{}).Serialize()
	wire[0] = 0x04 // OpenFlow 1.3
	if _, err := Decode(wire); err == nil {
		t.Fatal("expected version error")
	}
}

func TestDecodeRejectsLengthMismatch(t *testing.T) {
	wire := (&Hello{}).Serialize()
	wire = append(wire, 0)
	if _, err := Decode(wire); err == nil {
		t.Fatal("expected length error")
	}
}

func TestDecodeRejectsUnknownType(t *testing.T) {
	wire := (&Hello{}).Serialize()
	wire[1] = 99
	if _, err := Decode(wire); err == nil {
		t.Fatal("expected unknown type error")
	}
}

func TestActionRoundTrip(t *testing.T) {
	acts := []Action{
		&ActionOutput{Port: 5, MaxLen: 128},
		&ActionSetVLANVID{VLANVID: 0xfff},
		&ActionSetVLANPCP{VLANPCP: 7},
		&ActionStripVLAN{},
		&ActionSetDL{Dst: false, Addr: [6]byte{1, 2, 3, 4, 5, 6}},
		&ActionSetDL{Dst: true, Addr: [6]byte{6, 5, 4, 3, 2, 1}},
		&ActionSetNW{Dst: false, Addr: 0x0a000001},
		&ActionSetNW{Dst: true, Addr: 0x0a000002},
		&ActionSetNWTos{Tos: 0xfc},
		&ActionSetTP{Dst: false, Port: 80},
		&ActionSetTP{Dst: true, Port: 443},
		&ActionEnqueue{Port: 3, QueueID: 9},
		&ActionVendor{Vendor: 0x1234, Body: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
	}
	wire := SerializeActions(acts)
	if len(wire) != ActionsLen(acts) {
		t.Fatalf("wire %d bytes, ActionsLen %d", len(wire), ActionsLen(acts))
	}
	if len(wire)%8 != 0 {
		t.Fatalf("action list length %d not a multiple of 8", len(wire))
	}
	got, err := DecodeActions(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(acts) {
		t.Fatalf("decoded %d actions, want %d", len(got), len(acts))
	}
	for i := range acts {
		if !reflect.DeepEqual(got[i], acts[i]) {
			t.Errorf("action %d: got %#v want %#v", i, got[i], acts[i])
		}
	}
}

func TestDecodeActionsRejectsBadLength(t *testing.T) {
	// Valid type with a length of 4 (must be >= 8 and a multiple of 8).
	bad := []byte{0, 0, 0, 4, 0, 0, 0, 0}
	if _, err := DecodeActions(bad); err == nil {
		t.Fatal("expected bad-length error")
	}
	// Length larger than the remaining buffer.
	bad = []byte{0, 0, 0, 16, 0, 0, 0, 0}
	if _, err := DecodeActions(bad); err == nil {
		t.Fatal("expected overflow error")
	}
}

func TestActionLenTable(t *testing.T) {
	for at := ActionType(0); at < NumActionTypes; at++ {
		n := ActionLen(at)
		if n == 0 || n%8 != 0 {
			t.Errorf("ActionLen(%v) = %d", at, n)
		}
	}
	if ActionLen(ActionType(500)) != 0 {
		t.Error("unknown action type must have length 0")
	}
}

func TestMatchRoundTrip(t *testing.T) {
	m := Match{
		Wildcards: FWDLVLAN | FWNWSrcAll,
		InPort:    7,
		DLSrc:     [6]byte{1, 2, 3, 4, 5, 6},
		DLDst:     [6]byte{9, 8, 7, 6, 5, 4},
		DLType:    0x0800,
		NWTos:     0x10,
		NWProto:   6,
		NWDst:     0x0a000001,
		TPSrc:     1234,
		TPDst:     80,
	}
	wire := m.SerializeTo(nil)
	if len(wire) != MatchLen {
		t.Fatalf("match wire length %d", len(wire))
	}
	var got Match
	if err := got.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, m)
	}
}

func TestQuickMatchRoundTrip(t *testing.T) {
	f := func(wild uint32, inPort, vlan, dlType, tpSrc, tpDst uint16,
		pcp, tos, proto uint8, src, dst uint32) bool {
		m := Match{
			Wildcards: wild & FWAll, InPort: inPort, DLVLAN: vlan,
			DLVLANPCP: pcp, DLType: dlType, NWTos: tos, NWProto: proto,
			NWSrc: src, NWDst: dst, TPSrc: tpSrc, TPDst: tpDst,
		}
		var got Match
		if err := got.DecodeFromBytes(m.SerializeTo(nil)); err != nil {
			return false
		}
		return got == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchSubsumes(t *testing.T) {
	all := MatchAll()
	exact := Match{InPort: 3, DLType: 0x0800, NWProto: 6}
	if !all.Subsumes(&exact) {
		t.Fatal("wildcard-all must subsume everything")
	}
	if exact.Subsumes(&all) {
		t.Fatal("exact match cannot subsume wildcard-all")
	}
	if !exact.Subsumes(&exact) {
		t.Fatal("subsumption must be reflexive")
	}
	inPortOnly := Match{Wildcards: FWAll &^ FWInPort, InPort: 3}
	if !inPortOnly.Subsumes(&exact) {
		t.Fatal("in_port=3 must subsume the exact match on port 3")
	}
	otherPort := Match{Wildcards: FWAll &^ FWInPort, InPort: 4}
	if otherPort.Subsumes(&exact) {
		t.Fatal("in_port=4 must not subsume a port-3 match")
	}
}

func TestMatchSubsumesPrefixes(t *testing.T) {
	// nw_dst 10.0.0.0/24 subsumes 10.0.0.0/32 but not 10.0.1.0/32.
	w24 := (FWAll &^ FWNWDstMask) | (8 << FWNWDstShift)
	prefix := Match{Wildcards: w24, NWDst: 0x0a000000}
	host := Match{Wildcards: FWAll &^ FWNWDstMask, NWDst: 0x0a000001}
	other := Match{Wildcards: FWAll &^ FWNWDstMask, NWDst: 0x0a000101}
	if !prefix.Subsumes(&host) {
		t.Fatal("/24 must subsume host within it")
	}
	if prefix.Subsumes(&other) {
		t.Fatal("/24 must not subsume host outside it")
	}
}

func TestMatchEqualsNormalizesWildBits(t *testing.T) {
	// 33 and 63 wildcarded bits both mean "fully wildcarded address".
	a := Match{Wildcards: 33 << FWNWSrcShift, NWSrc: 1}
	b := Match{Wildcards: 63 << FWNWSrcShift, NWSrc: 2}
	if !a.Equals(&b) {
		t.Fatal("over-wildcarded addresses must compare equal")
	}
}

func TestMatchString(t *testing.T) {
	all := MatchAll()
	if got := all.String(); got != "match{*}" {
		t.Fatalf("MatchAll string %q", got)
	}
	m := Match{Wildcards: FWAll &^ FWInPort, InPort: 5}
	if got := m.String(); got != "match{in_port=5}" {
		t.Fatalf("string %q", got)
	}
}

func TestPortNames(t *testing.T) {
	if PortName(PortController) != "CONTROLLER" || PortName(5) != "" {
		t.Fatal("bad port naming")
	}
	if PortMax != 0xff00 || PortController != 0xfffd || PortInPort != 0xfff8 {
		t.Fatal("reserved port constants drifted from the 1.0 spec")
	}
}

func TestMsgTypeNames(t *testing.T) {
	if TypeFlowMod.String() != "FLOW_MOD" || TypePacketOut.String() != "PACKET_OUT" {
		t.Fatal("message names drifted")
	}
	if MsgType(99).Valid() {
		t.Fatal("type 99 must be invalid")
	}
	for i := 0; i < NumTypes; i++ {
		if !MsgType(i).Valid() {
			t.Fatalf("type %d must be valid", i)
		}
	}
}

func TestQuickFlowModWireStable(t *testing.T) {
	// Serializing twice yields identical bytes (no hidden state).
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		m := &FlowMod{
			Xid:      rng.Uint32(),
			Match:    Match{Wildcards: rng.Uint32() & FWAll, InPort: uint16(rng.Uint32())},
			Cookie:   rng.Uint64(),
			Command:  FlowModCommand(rng.Intn(5)),
			Priority: uint16(rng.Uint32()),
			BufferID: rng.Uint32(),
			OutPort:  uint16(rng.Uint32()),
			Actions:  []Action{&ActionOutput{Port: uint16(rng.Uint32())}},
		}
		if !bytes.Equal(m.Serialize(), m.Serialize()) {
			t.Fatal("serialization is not deterministic")
		}
	}
}

func BenchmarkFlowModSerialize(b *testing.B) {
	m := &FlowMod{
		Match: MatchAll(), Command: FCAdd, BufferID: NoBuffer, OutPort: PortNone,
		Actions: []Action{&ActionOutput{Port: 1}, &ActionSetVLANVID{VLANVID: 10}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Serialize()
	}
}

func BenchmarkFlowModDecode(b *testing.B) {
	wire := (&FlowMod{
		Match: MatchAll(), Command: FCAdd, BufferID: NoBuffer, OutPort: PortNone,
		Actions: []Action{&ActionOutput{Port: 1}},
	}).Serialize()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}
