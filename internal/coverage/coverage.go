// Package coverage implements the instrumentation registry SOFT uses to
// report instruction and branch coverage (Table 4, Figure 4, Table 5 of the
// paper).
//
// The paper measures coverage with Cloud9 over compiled C code. Our agents
// are behavioral models, so coverage is declared instead of discovered: each
// agent registers, once, the basic blocks of its message-processing code
// (with an instruction-count weight, standing in for LLVM instructions) and
// its branch sites. During symbolic execution every explored path marks the
// blocks it passes through and the branch directions it takes; per-test
// coverage is the union over all paths. The percentages reported are
// covered-instruction-weight / total and covered-branch-direction / (2 ×
// sites), the same definitions Cloud9 reports.
package coverage

import (
	"fmt"
	"sort"
	"sync"
)

// BlockID identifies a registered basic block within its Map.
type BlockID int32

// BranchID identifies a registered branch site within its Map.
type BranchID int32

type block struct {
	name  string
	instr int
}

// Map is an agent's static coverage universe: every block and branch site
// the agent's OpenFlow-processing code can reach. A Map is built once at
// agent construction and is read-only afterwards, so it is safe to share
// across concurrent runs.
type Map struct {
	mu       sync.Mutex
	sealed   bool
	blocks   []block
	branches []string
	byName   map[string]BlockID
	brByName map[string]BranchID
	total    int
}

// NewMap creates an empty coverage universe.
func NewMap() *Map {
	return &Map{
		byName:   make(map[string]BlockID),
		brByName: make(map[string]BranchID),
	}
}

// Block registers a basic block with an instruction-count weight and
// returns its ID. Registering the same name twice returns the original ID
// (the weight must match).
func (m *Map) Block(name string, instr int) BlockID {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sealed {
		panic("coverage: Block registered after sealing")
	}
	if id, ok := m.byName[name]; ok {
		if m.blocks[id].instr != instr {
			panic(fmt.Sprintf("coverage: block %q re-registered with weight %d != %d", name, instr, m.blocks[id].instr))
		}
		return id
	}
	id := BlockID(len(m.blocks))
	m.blocks = append(m.blocks, block{name: name, instr: instr})
	m.byName[name] = id
	m.total += instr
	return id
}

// BranchSite registers a two-way branch site and returns its ID.
func (m *Map) BranchSite(name string) BranchID {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sealed {
		panic("coverage: BranchSite registered after sealing")
	}
	if id, ok := m.brByName[name]; ok {
		return id
	}
	id := BranchID(len(m.branches))
	m.branches = append(m.branches, name)
	m.brByName[name] = id
	return id
}

// Seal freezes the universe; further registration panics. Sealing is
// optional but catches agents that register lazily (which would skew
// percentages between runs).
func (m *Map) Seal() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sealed = true
}

// TotalInstructions returns the summed weight of all registered blocks.
func (m *Map) TotalInstructions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// NumBlocks returns the number of registered blocks.
func (m *Map) NumBlocks() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.blocks)
}

// NumBranchSites returns the number of registered branch sites.
func (m *Map) NumBranchSites() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.branches)
}

// BlockName returns the name of a block.
func (m *Map) BlockName(id BlockID) string { return m.blocks[id].name }

// BranchName returns the name of a branch site.
func (m *Map) BranchName(id BranchID) string { return m.branches[id] }

// NewSet creates an empty per-run coverage set over this universe.
func (m *Map) NewSet() *Set {
	return &Set{
		m:        m,
		blocks:   make([]bool, len(m.blocks)),
		branches: make([]uint8, len(m.branches)),
	}
}

// Set records which blocks and branch directions one or more runs covered.
// A Set is not safe for concurrent mutation.
type Set struct {
	m        *Map
	blocks   []bool
	branches []uint8 // bit 0: taken-true covered; bit 1: taken-false covered
}

// CoverBlock marks a block as executed.
func (s *Set) CoverBlock(id BlockID) {
	if int(id) < len(s.blocks) {
		s.blocks[id] = true
	}
}

// CoverBranch marks one direction of a branch site as taken.
func (s *Set) CoverBranch(id BranchID, taken bool) {
	if int(id) >= len(s.branches) {
		return
	}
	if taken {
		s.branches[id] |= 1
	} else {
		s.branches[id] |= 2
	}
}

// BranchDirCovered reports whether the given direction of a branch site has
// been covered. Coverage-guided search strategies use it to prioritize
// pending paths.
func (s *Set) BranchDirCovered(id BranchID, taken bool) bool {
	if int(id) >= len(s.branches) {
		return false
	}
	if taken {
		return s.branches[id]&1 != 0
	}
	return s.branches[id]&2 != 0
}

// Merge unions other into s. The sets must share a Map.
func (s *Set) Merge(other *Set) {
	if other == nil {
		return
	}
	if s.m != other.m {
		panic("coverage: Merge across different maps")
	}
	for i, b := range other.blocks {
		if b {
			s.blocks[i] = true
		}
	}
	for i, d := range other.branches {
		s.branches[i] |= d
	}
}

// Snapshot returns copies of the covered-block and branch-direction
// bitmaps, indexed by BlockID and BranchID. Because agents register their
// coverage universe deterministically at construction, the same agent
// produces identically laid-out Maps in every process — which is what lets
// a distributed worker ship a Snapshot over the wire and a coordinator
// union it back in with MergeBitmap.
func (s *Set) Snapshot() (blocks []bool, branches []uint8) {
	blocks = append([]bool(nil), s.blocks...)
	branches = append([]uint8(nil), s.branches...)
	return blocks, branches
}

// MergeBitmap unions raw coverage bitmaps (a Snapshot taken from a Set over
// an identically laid-out Map, typically in another process) into s. It
// rejects bitmaps whose dimensions do not match this universe — the symptom
// of two processes running different agent versions.
func (s *Set) MergeBitmap(blocks []bool, branches []uint8) error {
	if len(blocks) != len(s.blocks) || len(branches) != len(s.branches) {
		return fmt.Errorf("coverage: bitmap dimensions %d/%d do not match universe %d/%d",
			len(blocks), len(branches), len(s.blocks), len(s.branches))
	}
	for i, b := range blocks {
		if b {
			s.blocks[i] = true
		}
	}
	for i, d := range branches {
		s.branches[i] |= d
	}
	return nil
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := s.m.NewSet()
	c.Merge(s)
	return c
}

// CoveredInstructions returns the summed weight of covered blocks.
func (s *Set) CoveredInstructions() int {
	sum := 0
	for i, b := range s.blocks {
		if b {
			sum += s.m.blocks[i].instr
		}
	}
	return sum
}

// CoveredBranchDirections returns the number of covered branch directions
// (each site contributes up to 2).
func (s *Set) CoveredBranchDirections() int {
	n := 0
	for _, d := range s.branches {
		n += int(d&1) + int(d>>1&1)
	}
	return n
}

// InstructionPct returns covered instruction weight as a percentage of the
// universe total.
func (s *Set) InstructionPct() float64 {
	if s.m.total == 0 {
		return 0
	}
	return 100 * float64(s.CoveredInstructions()) / float64(s.m.total)
}

// BranchPct returns covered branch directions as a percentage of 2 × sites.
func (s *Set) BranchPct() float64 {
	if len(s.branches) == 0 {
		return 0
	}
	return 100 * float64(s.CoveredBranchDirections()) / float64(2*len(s.branches))
}

// UncoveredBlocks lists the names of blocks no run has reached, sorted.
func (s *Set) UncoveredBlocks() []string {
	var out []string
	for i, b := range s.blocks {
		if !b {
			out = append(out, s.m.blocks[i].name)
		}
	}
	sort.Strings(out)
	return out
}
