package coverage

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegistrationAndTotals(t *testing.T) {
	m := NewMap()
	a := m.Block("parse", 10)
	b := m.Block("validate", 20)
	if a == b {
		t.Fatal("distinct blocks share an ID")
	}
	if got := m.TotalInstructions(); got != 30 {
		t.Fatalf("total = %d, want 30", got)
	}
	// Re-registration returns the same ID without double counting.
	if again := m.Block("parse", 10); again != a {
		t.Fatal("re-registration produced a new ID")
	}
	if got := m.TotalInstructions(); got != 30 {
		t.Fatalf("total after re-registration = %d, want 30", got)
	}
}

func TestWeightMismatchPanics(t *testing.T) {
	m := NewMap()
	m.Block("x", 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on weight mismatch")
		}
	}()
	m.Block("x", 6)
}

func TestSealPreventsRegistration(t *testing.T) {
	m := NewMap()
	m.Block("x", 1)
	m.Seal()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering after seal")
		}
	}()
	m.Block("y", 1)
}

func TestInstructionPct(t *testing.T) {
	m := NewMap()
	a := m.Block("a", 25)
	m.Block("b", 75)
	s := m.NewSet()
	if s.InstructionPct() != 0 {
		t.Fatal("empty set must be 0%")
	}
	s.CoverBlock(a)
	if got := s.InstructionPct(); math.Abs(got-25) > 1e-9 {
		t.Fatalf("pct = %v, want 25", got)
	}
}

func TestBranchPct(t *testing.T) {
	m := NewMap()
	b1 := m.BranchSite("p1")
	m.BranchSite("p2")
	s := m.NewSet()
	s.CoverBranch(b1, true)
	if got := s.BranchPct(); math.Abs(got-25) > 1e-9 {
		t.Fatalf("one direction of one of two sites = %v%%, want 25", got)
	}
	s.CoverBranch(b1, true) // idempotent
	if got := s.BranchPct(); math.Abs(got-25) > 1e-9 {
		t.Fatalf("re-covering changed pct to %v", got)
	}
	s.CoverBranch(b1, false)
	if got := s.BranchPct(); math.Abs(got-50) > 1e-9 {
		t.Fatalf("both directions of one of two sites = %v%%, want 50", got)
	}
}

func TestMergeIsUnion(t *testing.T) {
	m := NewMap()
	a := m.Block("a", 10)
	b := m.Block("b", 10)
	br := m.BranchSite("br")

	s1 := m.NewSet()
	s1.CoverBlock(a)
	s1.CoverBranch(br, true)
	s2 := m.NewSet()
	s2.CoverBlock(b)
	s2.CoverBranch(br, false)

	s1.Merge(s2)
	if got := s1.InstructionPct(); got != 100 {
		t.Fatalf("merged instruction pct = %v", got)
	}
	if got := s1.BranchPct(); got != 100 {
		t.Fatalf("merged branch pct = %v", got)
	}
	// Merge must not mutate the source.
	if s2.InstructionPct() != 50 {
		t.Fatal("merge mutated its argument")
	}
}

func TestMergeAcrossMapsPanics(t *testing.T) {
	m1, m2 := NewMap(), NewMap()
	m1.Block("a", 1)
	m2.Block("a", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic merging across maps")
		}
	}()
	m1.NewSet().Merge(m2.NewSet())
}

func TestUncoveredBlocks(t *testing.T) {
	m := NewMap()
	a := m.Block("zeta", 1)
	m.Block("alpha", 1)
	s := m.NewSet()
	s.CoverBlock(a)
	got := s.UncoveredBlocks()
	if len(got) != 1 || got[0] != "alpha" {
		t.Fatalf("uncovered = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewMap()
	a := m.Block("a", 1)
	b := m.Block("b", 1)
	s := m.NewSet()
	s.CoverBlock(a)
	c := s.Clone()
	c.CoverBlock(b)
	if s.CoveredInstructions() != 1 {
		t.Fatal("clone shares state with original")
	}
}

// Property: merge is commutative and idempotent with respect to coverage
// percentages.
func TestQuickMergeCommutative(t *testing.T) {
	m := NewMap()
	var blocks []BlockID
	for i := 0; i < 16; i++ {
		blocks = append(blocks, m.Block(string(rune('a'+i)), i+1))
	}
	f := func(xs, ys []uint8) bool {
		s1, s2 := m.NewSet(), m.NewSet()
		for _, x := range xs {
			s1.CoverBlock(blocks[int(x)%len(blocks)])
		}
		for _, y := range ys {
			s2.CoverBlock(blocks[int(y)%len(blocks)])
		}
		a := s1.Clone()
		a.Merge(s2)
		b := s2.Clone()
		b.Merge(s1)
		if a.CoveredInstructions() != b.CoveredInstructions() {
			return false
		}
		// Idempotence.
		c := a.Clone()
		c.Merge(a)
		return c.CoveredInstructions() == a.CoveredInstructions()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
