// Package solver is the constraint-solving façade used by the rest of SOFT:
// satisfiability checking and model (test case) extraction over sym
// expressions. It wraps the bit-blasting encoder and the CDCL SAT core —
// the reproduction's substitute for STP — and adds what the SOFT pipeline
// needs around a raw decision procedure: simplification before encoding, a
// sharded query cache (crosschecking issues many structurally equal
// queries, often from many workers at once), and per-query statistics
// matching what the paper's evaluation reports.
package solver

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/soft-testing/soft/internal/bitblast"
	"github.com/soft-testing/soft/internal/obs"
	"github.com/soft-testing/soft/internal/sym"
)

// Façade-level metrics, process-global across every Solver instance (the
// per-instance atomic counters below remain the per-stage accounting the
// reports use). Observation only — see internal/obs doc.go.
var (
	mQueries      = obs.NewCounter("soft_solver_queries_total")
	mCacheHits    = obs.NewCounter("soft_solver_cache_hits_total")
	mSolveLatency = obs.NewHistogram("soft_solver_solve_latency_ns")
)

// Result is the outcome of a satisfiability query.
type Result int8

// Query outcomes.
const (
	Unsat Result = iota
	Sat
)

func (r Result) String() string {
	if r == Sat {
		return "sat"
	}
	return "unsat"
}

// Stats aggregates solver work across queries.
type Stats struct {
	Queries       int64
	CacheHits     int64
	SatQueries    int64
	UnsatQueries  int64
	SolveTime     time.Duration
	MaxQuerySize  int64 // largest constraint (boolean operation count)
	ClausesTotal  int64
	AuxVarsTotal  int64
	FastPathConst int64 // queries answered by simplification alone
	// ClauseExports/ClauseImports count learned clauses crossing the
	// inter-worker exchange during exploration with clause sharing on (the
	// exploration engine fills them in; plain Check queries never share).
	ClauseExports int64
	ClauseImports int64
	// The incremental-exploration counters below are filled in by the
	// harness from the engine's run (plain Check queries always pay a full
	// solve): AssumptionSolves/FullSolves split satisfiability decisions by
	// whether an assumption-stack session or a from-scratch per-path solver
	// served them, ConstraintsReused counts path conjuncts served from a
	// session's activation cache instead of being re-bitblasted, MergeHits
	// counts frontier queries answered by the state-merging memo, and
	// InternHits counts expression constructions answered by the hash-cons
	// table (process-wide, windowed to the run).
	AssumptionSolves  int64
	FullSolves        int64
	ConstraintsReused int64
	MergeHits         int64
	InternHits        int64
}

// Add accumulates other into s (used to merge per-worker solver stats).
func (s *Stats) Add(other Stats) {
	s.Queries += other.Queries
	s.CacheHits += other.CacheHits
	s.SatQueries += other.SatQueries
	s.UnsatQueries += other.UnsatQueries
	s.SolveTime += other.SolveTime
	if other.MaxQuerySize > s.MaxQuerySize {
		s.MaxQuerySize = other.MaxQuerySize
	}
	s.ClausesTotal += other.ClausesTotal
	s.AuxVarsTotal += other.AuxVarsTotal
	s.FastPathConst += other.FastPathConst
	s.ClauseExports += other.ClauseExports
	s.ClauseImports += other.ClauseImports
	s.AssumptionSolves += other.AssumptionSolves
	s.FullSolves += other.FullSolves
	s.ConstraintsReused += other.ConstraintsReused
	s.MergeHits += other.MergeHits
	s.InternHits += other.InternHits
}

// Sub returns the difference s - earlier (a per-stage delta of cumulative
// snapshots).
func (s Stats) Sub(earlier Stats) Stats {
	return Stats{
		Queries:       s.Queries - earlier.Queries,
		CacheHits:     s.CacheHits - earlier.CacheHits,
		SatQueries:    s.SatQueries - earlier.SatQueries,
		UnsatQueries:  s.UnsatQueries - earlier.UnsatQueries,
		SolveTime:     s.SolveTime - earlier.SolveTime,
		MaxQuerySize:  s.MaxQuerySize,
		ClausesTotal:  s.ClausesTotal - earlier.ClausesTotal,
		AuxVarsTotal:  s.AuxVarsTotal - earlier.AuxVarsTotal,
		FastPathConst: s.FastPathConst - earlier.FastPathConst,
		ClauseExports: s.ClauseExports - earlier.ClauseExports,
		ClauseImports: s.ClauseImports - earlier.ClauseImports,

		AssumptionSolves:  s.AssumptionSolves - earlier.AssumptionSolves,
		FullSolves:        s.FullSolves - earlier.FullSolves,
		ConstraintsReused: s.ConstraintsReused - earlier.ConstraintsReused,
		MergeHits:         s.MergeHits - earlier.MergeHits,
		InternHits:        s.InternHits - earlier.InternHits,
	}
}

// cacheEntry is a single-flight cache slot: the first goroutine to claim a
// key solves it and closes done; later goroutines for the same key block on
// done instead of duplicating the solve. failed marks an entry whose solve
// panicked — waiters treat it as a miss instead of reading bogus zero
// values (and instead of blocking forever on a never-closed channel).
type cacheEntry struct {
	done   chan struct{}
	failed bool
	res    Result
	model  sym.Assignment
}

// numShards is the cache fan-out. Queries hash to a shard by FNV-1a of
// their canonical string, so concurrent crosscheck workers contend only
// when they touch the same 1/16th of the key space.
const numShards = 16

// shard is one cache partition. live holds entries written since the last
// Clone; frozen is a chain of read-only maps inherited through Clone
// (newest first). Frozen maps are never written again, so clones can share
// them without copying or locking.
type shard struct {
	mu     sync.Mutex
	live   map[string]*cacheEntry
	frozen []map[string]*cacheEntry
}

// lookup finds a cache entry under the shard lock.
func (sh *shard) lookup(key string) *cacheEntry {
	if e, ok := sh.live[key]; ok {
		return e
	}
	for _, m := range sh.frozen {
		if e, ok := m[key]; ok {
			return e
		}
	}
	return nil
}

// Solver answers satisfiability queries.
//
// Concurrency: a Solver is safe for concurrent use — every query runs on a
// private bitblast/CDCL instance; the cache is sharded 16 ways and each
// shard's lock is held only around map access, never during solving.
// Concurrent structurally equal queries are deduplicated (single-flight):
// one goroutine solves, the others reuse its result and count a cache hit,
// which keeps CacheHits accounting exact under any interleaving. Statistics
// are atomic counters. Results are deterministic — the same query always
// yields the same answer and the same canonical model, cached or not,
// shared or cloned.
type Solver struct {
	shards [numShards]shard

	// DisableCache turns off result caching (ablation: Table 5 companion
	// bench BenchmarkAblationSolver).
	DisableCache bool
	// DisableSimplify turns off pre-encoding simplification (ablation).
	DisableSimplify bool

	queries       atomic.Int64
	cacheHits     atomic.Int64
	satQueries    atomic.Int64
	unsatQueries  atomic.Int64
	solveNanos    atomic.Int64
	maxQuerySize  atomic.Int64
	clausesTotal  atomic.Int64
	auxVarsTotal  atomic.Int64
	fastPathConst atomic.Int64
}

// New returns a Solver with caching and simplification enabled.
func New() *Solver {
	s := &Solver{}
	for i := range s.shards {
		s.shards[i].live = make(map[string]*cacheEntry)
	}
	return s
}

// Clone returns an independent Solver with the same configuration, a
// copy-on-write snapshot of s's query cache, and zeroed statistics. The
// snapshot is O(shards), not O(entries): each shard's live map is frozen
// (it becomes read-only and shared by parent and clone) and both sides
// start new live maps, so per-worker clones keep the warm cache without
// sharing a lock afterwards. When DisableCache is set there is nothing
// worth carrying over and the cache snapshot is skipped entirely.
func (s *Solver) Clone() *Solver {
	c := New()
	c.DisableCache = s.DisableCache
	c.DisableSimplify = s.DisableSimplify
	if s.DisableCache {
		return c
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if len(sh.live) > 0 {
			sh.frozen = append([]map[string]*cacheEntry{sh.live}, sh.frozen...)
			sh.live = make(map[string]*cacheEntry)
		}
		c.shards[i].frozen = append([]map[string]*cacheEntry(nil), sh.frozen...)
		sh.mu.Unlock()
	}
	return c
}

// Stats returns a snapshot of the accumulated statistics.
func (s *Solver) Stats() Stats {
	return Stats{
		Queries:       s.queries.Load(),
		CacheHits:     s.cacheHits.Load(),
		SatQueries:    s.satQueries.Load(),
		UnsatQueries:  s.unsatQueries.Load(),
		SolveTime:     time.Duration(s.solveNanos.Load()),
		MaxQuerySize:  s.maxQuerySize.Load(),
		ClausesTotal:  s.clausesTotal.Load(),
		AuxVarsTotal:  s.auxVarsTotal.Load(),
		FastPathConst: s.fastPathConst.Load(),
	}
}

// ResetStats zeroes the accumulated statistics (the cache is kept).
func (s *Solver) ResetStats() {
	s.queries.Store(0)
	s.cacheHits.Store(0)
	s.satQueries.Store(0)
	s.unsatQueries.Store(0)
	s.solveNanos.Store(0)
	s.maxQuerySize.Store(0)
	s.clausesTotal.Store(0)
	s.auxVarsTotal.Store(0)
	s.fastPathConst.Store(0)
}

func (s *Solver) noteResult(r Result) {
	if r == Sat {
		s.satQueries.Add(1)
	} else {
		s.unsatQueries.Add(1)
	}
}

func (s *Solver) bumpMaxQuery(sz int64) {
	for {
		cur := s.maxQuerySize.Load()
		if sz <= cur || s.maxQuerySize.CompareAndSwap(cur, sz) {
			return
		}
	}
}

// shardFor picks the cache shard for a key by FNV-1a, inlined to avoid
// copying the (potentially large) canonical query string on the hot path.
func (s *Solver) shardFor(key string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return &s.shards[h%numShards]
}

// Check decides satisfiability of the conjunction of the given boolean
// expressions. When satisfiable it returns the canonical model: a witness
// assigning every variable that occurs in the constraints, minimized so the
// same query yields the same model whatever solved it first. Evaluating the
// constraints under the model yields true (the soundness property
// TestModelsSatisfy verifies).
func (s *Solver) Check(constraints ...*sym.Expr) (Result, sym.Assignment) {
	e := sym.LAnd(constraints...)
	if !s.DisableSimplify {
		e = sym.Simplify(e)
	}

	s.queries.Add(1)
	mQueries.Inc()
	s.bumpMaxQuery(int64(e.Size()))

	// Fast path: simplification decided the query.
	if e.IsTrue() {
		s.fastPathConst.Add(1)
		s.satQueries.Add(1)
		return Sat, sym.Assignment{}
	}
	if e.IsFalse() {
		s.fastPathConst.Add(1)
		s.unsatQueries.Add(1)
		return Unsat, nil
	}

	if s.DisableCache {
		res, model := s.solve(e)
		s.noteResult(res)
		return res, cloneModel(model)
	}

	key := e.String()
	sh := s.shardFor(key)
	sh.mu.Lock()
	if ent := sh.lookup(key); ent != nil {
		sh.mu.Unlock()
		<-ent.done // single-flight: wait out an in-progress solve
		if !ent.failed {
			s.cacheHits.Add(1)
			mCacheHits.Inc()
			s.noteResult(ent.res)
			return ent.res, cloneModel(ent.model)
		}
		// The claimant panicked (e.g. a malformed query). Solve uncached:
		// a query that panics does so for every caller, and the panic must
		// surface here too rather than hang or alias a zero result.
		res, model := s.solve(e)
		s.noteResult(res)
		return res, cloneModel(model)
	}
	ent := &cacheEntry{done: make(chan struct{})}
	sh.live[key] = ent
	sh.mu.Unlock()

	done := false
	defer func() {
		if !done {
			// Panicking out of solve: poison the entry, evict it so future
			// Checks retry, and release the waiters before unwinding.
			ent.failed = true
			sh.mu.Lock()
			if sh.live[key] == ent {
				delete(sh.live, key)
			}
			sh.mu.Unlock()
			close(ent.done)
		}
	}()
	ent.res, ent.model = s.solve(e)
	done = true
	close(ent.done)
	s.noteResult(ent.res)
	return ent.res, cloneModel(ent.model)
}

// solve runs the bitblast + CDCL decision procedure for one query.
func (s *Solver) solve(e *sym.Expr) (Result, sym.Assignment) {
	start := time.Now()
	b := bitblast.New()
	b.Assert(e)
	satisfiable := b.Solve()

	var res Result
	var model sym.Assignment
	if satisfiable {
		res = Sat
		model = b.CanonicalModel()
	}
	elapsed := time.Since(start)
	s.solveNanos.Add(int64(elapsed))
	mSolveLatency.Observe(int64(elapsed))
	s.clausesTotal.Add(int64(b.Clauses))
	s.auxVarsTotal.Add(int64(b.Aux))
	return res, model
}

// Sat reports whether the conjunction of the constraints is satisfiable.
func (s *Solver) Sat(constraints ...*sym.Expr) bool {
	r, _ := s.Check(constraints...)
	return r == Sat
}

func cloneModel(m sym.Assignment) sym.Assignment {
	if m == nil {
		return nil
	}
	out := make(sym.Assignment, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
