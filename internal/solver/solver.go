// Package solver is the constraint-solving façade used by the rest of SOFT:
// satisfiability checking and model (test case) extraction over sym
// expressions. It wraps the bit-blasting encoder and the CDCL SAT core —
// the reproduction's substitute for STP — and adds what the SOFT pipeline
// needs around a raw decision procedure: simplification before encoding, a
// query cache (crosschecking issues many structurally equal queries), and
// per-query statistics matching what the paper's evaluation reports.
package solver

import (
	"sync"
	"time"

	"github.com/soft-testing/soft/internal/bitblast"
	"github.com/soft-testing/soft/internal/sym"
)

// Result is the outcome of a satisfiability query.
type Result int8

// Query outcomes.
const (
	Unsat Result = iota
	Sat
)

func (r Result) String() string {
	if r == Sat {
		return "sat"
	}
	return "unsat"
}

// Stats aggregates solver work across queries.
type Stats struct {
	Queries       int64
	CacheHits     int64
	SatQueries    int64
	UnsatQueries  int64
	SolveTime     time.Duration
	MaxQuerySize  int64 // largest constraint (boolean operation count)
	ClausesTotal  int64
	AuxVarsTotal  int64
	FastPathConst int64 // queries answered by simplification alone
}

type cacheEntry struct {
	res   Result
	model sym.Assignment
}

// Solver answers satisfiability queries.
//
// Concurrency: a Solver is safe for concurrent use — every query runs on a
// private bitblast/CDCL instance and the shared cache and statistics are
// mutex-protected. The mutex is held only around cache and stats access,
// never during solving, so concurrent callers contend briefly per query.
// Hot loops that cannot afford even that (the parallel exploration workers)
// should hold a per-worker instance instead: either a fresh New or a Clone
// of a warmed solver. Results are deterministic either way — the same query
// always yields the same answer and model, cached or not.
type Solver struct {
	mu    sync.Mutex
	cache map[string]cacheEntry

	// DisableCache turns off result caching (ablation: Table 5 companion
	// bench BenchmarkAblationSolver).
	DisableCache bool
	// DisableSimplify turns off pre-encoding simplification (ablation).
	DisableSimplify bool

	stats Stats
}

// New returns a Solver with caching and simplification enabled.
func New() *Solver {
	return &Solver{cache: make(map[string]cacheEntry)}
}

// Clone returns an independent Solver with the same configuration and a
// snapshot of s's query cache, and zeroed statistics. Per-worker clones keep
// the warm cache without sharing the lock afterwards.
func (s *Solver) Clone() *Solver {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := &Solver{
		cache:           make(map[string]cacheEntry, len(s.cache)),
		DisableCache:    s.DisableCache,
		DisableSimplify: s.DisableSimplify,
	}
	for k, v := range s.cache {
		c.cache[k] = v
	}
	return c
}

// Stats returns a snapshot of the accumulated statistics.
func (s *Solver) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats zeroes the accumulated statistics (the cache is kept).
func (s *Solver) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
}

// Check decides satisfiability of the conjunction of the given boolean
// expressions. When satisfiable it returns a model assigning every variable
// that occurs in the constraints; evaluating the constraints under the model
// yields true (the soundness property TestModelsSatisfy verifies).
func (s *Solver) Check(constraints ...*sym.Expr) (Result, sym.Assignment) {
	e := sym.LAnd(constraints...)
	if !s.DisableSimplify {
		e = sym.Simplify(e)
	}

	s.mu.Lock()
	s.stats.Queries++
	if sz := int64(e.Size()); sz > s.stats.MaxQuerySize {
		s.stats.MaxQuerySize = sz
	}
	s.mu.Unlock()

	// Fast path: simplification decided the query.
	if e.IsTrue() {
		s.mu.Lock()
		s.stats.FastPathConst++
		s.stats.SatQueries++
		s.mu.Unlock()
		return Sat, sym.Assignment{}
	}
	if e.IsFalse() {
		s.mu.Lock()
		s.stats.FastPathConst++
		s.stats.UnsatQueries++
		s.mu.Unlock()
		return Unsat, nil
	}

	var key string
	if !s.DisableCache {
		key = e.String()
		s.mu.Lock()
		if ent, ok := s.cache[key]; ok {
			s.stats.CacheHits++
			if ent.res == Sat {
				s.stats.SatQueries++
			} else {
				s.stats.UnsatQueries++
			}
			s.mu.Unlock()
			return ent.res, cloneModel(ent.model)
		}
		s.mu.Unlock()
	}

	start := time.Now()
	b := bitblast.New()
	b.Assert(e)
	satisfiable := b.Solve()
	elapsed := time.Since(start)

	var res Result
	var model sym.Assignment
	if satisfiable {
		res = Sat
		model = b.Model()
	}

	s.mu.Lock()
	s.stats.SolveTime += elapsed
	s.stats.ClausesTotal += int64(b.Clauses)
	s.stats.AuxVarsTotal += int64(b.Aux)
	if satisfiable {
		s.stats.SatQueries++
	} else {
		s.stats.UnsatQueries++
	}
	if !s.DisableCache {
		s.cache[key] = cacheEntry{res: res, model: model}
	}
	s.mu.Unlock()
	return res, cloneModel(model)
}

// Sat reports whether the conjunction of the constraints is satisfiable.
func (s *Solver) Sat(constraints ...*sym.Expr) bool {
	r, _ := s.Check(constraints...)
	return r == Sat
}

func cloneModel(m sym.Assignment) sym.Assignment {
	if m == nil {
		return nil
	}
	out := make(sym.Assignment, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
