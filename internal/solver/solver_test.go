package solver

import (
	"fmt"
	"sync"
	"testing"

	"github.com/soft-testing/soft/internal/sym"
)

func TestBasicSatUnsat(t *testing.T) {
	s := New()
	x := sym.Var("x", 16)
	if r, m := s.Check(sym.EqConst(x, 42)); r != Sat || m["x"] != 42 {
		t.Fatalf("x==42: got %v %v", r, m)
	}
	if r, _ := s.Check(sym.EqConst(x, 1), sym.EqConst(x, 2)); r != Unsat {
		t.Fatal("x==1 AND x==2 must be unsat")
	}
}

func TestModelsSatisfy(t *testing.T) {
	s := New()
	x := sym.Var("x", 16)
	y := sym.Var("y", 8)
	cases := [][]*sym.Expr{
		{sym.Ult(x, sym.Const(16, 100)), sym.Ugt(x, sym.Const(16, 90))},
		{sym.EqConst(sym.And(x, sym.Const(16, 0xff)), 0x7f)},
		{sym.EqConst(sym.Add(sym.ZExt(y, 16), x), 0x1234)},
		{sym.LOr(sym.EqConst(y, 0), sym.EqConst(y, 255)), sym.Ne(y, sym.Const(8, 0))},
	}
	for i, cs := range cases {
		r, m := s.Check(cs...)
		if r != Sat {
			t.Fatalf("case %d must be sat", i)
		}
		if !sym.EvalBool(sym.LAnd(cs...), m) {
			t.Fatalf("case %d: model %v does not satisfy", i, m)
		}
	}
}

func TestFastPathConstants(t *testing.T) {
	s := New()
	if r, _ := s.Check(sym.Bool(true)); r != Sat {
		t.Fatal("true is sat")
	}
	if r, _ := s.Check(sym.Bool(false)); r != Unsat {
		t.Fatal("false is unsat")
	}
	// Constant-foldable constraint should be answered without bit-blasting.
	c := sym.Eq(sym.Const(8, 3), sym.Const(8, 3))
	if r, _ := s.Check(c); r != Sat {
		t.Fatal("3==3 is sat")
	}
	if got := s.Stats().FastPathConst; got != 3 {
		t.Fatalf("FastPathConst = %d, want 3", got)
	}
	if got := s.Stats().ClausesTotal; got != 0 {
		t.Fatalf("constant queries must not reach the encoder, got %d clauses", got)
	}
}

func TestCache(t *testing.T) {
	s := New()
	x := sym.Var("x", 16)
	q := sym.Ult(x, sym.Const(16, 10))
	s.Check(q)
	s.Check(q)
	s.Check(q)
	st := s.Stats()
	if st.CacheHits != 2 {
		t.Fatalf("CacheHits = %d, want 2", st.CacheHits)
	}
	// Cached models must be independent copies.
	_, m1 := s.Check(q)
	_, m2 := s.Check(q)
	m1["x"] = 9999
	if m2["x"] == 9999 {
		t.Fatal("cache returned aliased model maps")
	}
}

func TestClone(t *testing.T) {
	s := New()
	s.DisableSimplify = true
	x := sym.Var("x", 16)
	q := sym.Ult(x, sym.Const(16, 10))
	s.Check(q)

	c := s.Clone()
	if !c.DisableSimplify {
		t.Fatal("Clone lost configuration")
	}
	if st := c.Stats(); st.Queries != 0 {
		t.Fatalf("Clone stats not zeroed: %+v", st)
	}
	// The warmed cache carries over: the clone answers the original query
	// without solving again.
	c.Check(q)
	if st := c.Stats(); st.CacheHits != 1 {
		t.Fatalf("clone CacheHits = %d, want 1 (warm cache)", st.CacheHits)
	}
	// And the caches are independent afterwards.
	q2 := sym.Ult(x, sym.Const(16, 20))
	c.Check(q2)
	s.Check(q2)
	if st := s.Stats(); st.CacheHits != 0 {
		t.Fatalf("original saw clone's cache entry (hits=%d)", st.CacheHits)
	}
}

func TestCacheDisabled(t *testing.T) {
	s := New()
	s.DisableCache = true
	x := sym.Var("x", 8)
	q := sym.EqConst(x, 1)
	s.Check(q)
	s.Check(q)
	if st := s.Stats(); st.CacheHits != 0 {
		t.Fatalf("CacheHits = %d with cache disabled", st.CacheHits)
	}
}

func TestConcurrentQueries(t *testing.T) {
	s := New()
	x := sym.Var("x", 16)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				v := uint64(g*8 + i)
				r, m := s.Check(sym.EqConst(x, v))
				if r != Sat {
					errs <- fmt.Errorf("x==%d must be sat", v)
					return
				}
				if m["x"] != v {
					errs <- fmt.Errorf("x==%d gave model %v", v, m)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	s := New()
	x := sym.Var("x", 8)
	s.Check(sym.EqConst(x, 5))
	s.Check(sym.EqConst(x, 5), sym.EqConst(x, 6))
	st := s.Stats()
	if st.Queries != 2 || st.SatQueries != 1 || st.UnsatQueries != 1 {
		t.Fatalf("bad accounting: %+v", st)
	}
	s.ResetStats()
	if st := s.Stats(); st.Queries != 0 {
		t.Fatalf("ResetStats did not zero: %+v", st)
	}
}

// TestIntersectionQueries exercises the crosscheck-phase query shape: the
// conjunction of two path-condition groups from "different agents".
func TestIntersectionQueries(t *testing.T) {
	s := New()
	p := sym.Var("port", 16)
	// Agent A forwards for p in [1,24]; errors otherwise.
	aFwd := sym.LAnd(sym.Uge(p, sym.Const(16, 1)), sym.Ule(p, sym.Const(16, 24)))
	aErr := sym.LNot(aFwd)
	// Agent B forwards for p in [1,24] or p == 0xfffd (controller port).
	bFwd := sym.LOr(
		sym.LAnd(sym.Uge(p, sym.Const(16, 1)), sym.Ule(p, sym.Const(16, 24))),
		sym.EqConst(p, 0xfffd),
	)
	bErr := sym.LNot(bFwd)

	// A forwards while B errors: impossible.
	if r, _ := s.Check(aFwd, bErr); r != Unsat {
		t.Fatal("A-fwd ∧ B-err should be unsat")
	}
	// A errors while B forwards: exactly the controller port.
	r, m := s.Check(aErr, bFwd)
	if r != Sat {
		t.Fatal("A-err ∧ B-fwd should be sat")
	}
	if m["port"] != 0xfffd {
		t.Fatalf("inconsistency witness = %#x, want 0xfffd", m["port"])
	}
}

func BenchmarkCheckRangeQuery(b *testing.B) {
	s := New()
	s.DisableCache = true
	x := sym.Var("x", 16)
	q := sym.LAnd(
		sym.Ult(x, sym.Const(16, 0x8000)),
		sym.Ugt(x, sym.Const(16, 0x100)),
		sym.Ne(x, sym.Const(16, 0x1234)),
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r, _ := s.Check(q); r != Sat {
			b.Fatal("must be sat")
		}
	}
}

func BenchmarkCheckCached(b *testing.B) {
	s := New()
	x := sym.Var("x", 16)
	q := sym.Ult(x, sym.Const(16, 10))
	s.Check(q)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Check(q)
	}
}
