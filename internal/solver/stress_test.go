package solver

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/soft-testing/soft/internal/sym"
)

// TestSharedSolverStress hammers one shared solver from 8 goroutines with
// overlapping, structurally equal queries (run it under -race via `make
// race`). Every answer and model must equal the sequential oracle's, and —
// because structurally equal queries are single-flighted — the cache
// accounting must be exact: each distinct query is solved exactly once, so
// with G goroutines issuing the same N queries, Queries = G*N and
// CacheHits = G*N - N.
func TestSharedSolverStress(t *testing.T) {
	x := sym.Var("x", 16)
	y := sym.Var("y", 8)
	var queries []*sym.Expr
	for i := 0; i < 12; i++ {
		q := sym.LAnd(
			sym.Ult(x, sym.Const(16, uint64(100+i*37))),
			sym.Ugt(x, sym.Const(16, uint64(i*31))),
			sym.EqConst(sym.And(y, sym.Const(8, 0x0f)), uint64(i%16)),
		)
		if i%3 == 0 {
			// Mix in unsatisfiable shapes.
			q = sym.LAnd(q, sym.EqConst(x, uint64(i)), sym.EqConst(x, uint64(i+1)))
		}
		queries = append(queries, q)
	}

	// Sequential oracle: answers and canonical models per query.
	oracle := New()
	type verdict struct {
		res   Result
		model sym.Assignment
	}
	want := make([]verdict, len(queries))
	for i, q := range queries {
		r, m := oracle.Check(q)
		want[i] = verdict{r, m}
	}

	const goroutines = 8
	shared := New()
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range queries {
				// Each goroutine walks the same query set in a different
				// rotation, maximizing same-key overlap mid-flight.
				i := (k + g*5) % len(queries)
				r, m := shared.Check(queries[i])
				if r != want[i].res {
					errs <- fmt.Errorf("goroutine %d query %d: %v, oracle says %v", g, i, r, want[i].res)
					return
				}
				if !reflect.DeepEqual(m, want[i].model) {
					errs <- fmt.Errorf("goroutine %d query %d: model %v, oracle %v", g, i, m, want[i].model)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := shared.Stats()
	wantQueries := int64(goroutines * len(queries))
	wantHits := wantQueries - int64(len(queries))
	if st.Queries != wantQueries {
		t.Fatalf("Queries = %d, want %d", st.Queries, wantQueries)
	}
	if st.CacheHits != wantHits {
		t.Fatalf("CacheHits = %d, want exactly %d (single-flight dedup)", st.CacheHits, wantHits)
	}
	if st.SatQueries+st.UnsatQueries != wantQueries {
		t.Fatalf("Sat+Unsat = %d, want %d", st.SatQueries+st.UnsatQueries, wantQueries)
	}
}

// TestCheckPanicDoesNotPoisonCache: a query whose encoding panics (same
// variable at two widths) must propagate the panic to every caller — the
// single-flight entry may neither hang waiters on a never-closed channel
// nor serve them a bogus zero result — and must leave the solver usable.
func TestCheckPanicDoesNotPoisonCache(t *testing.T) {
	s := New()
	bad := sym.LAnd(
		sym.EqConst(sym.Var("w", 8), 1),
		sym.EqConst(sym.Var("w", 16), 2),
	)
	check := func() (panicked bool) {
		defer func() { panicked = recover() != nil }()
		s.Check(bad)
		return
	}
	const callers = 4
	panics := make([]bool, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			panics[i] = check()
		}()
	}
	wg.Wait()
	for i, p := range panics {
		if !p {
			t.Fatalf("caller %d did not observe the encoding panic", i)
		}
	}
	// The poisoned entry was evicted; unrelated queries still work.
	x := sym.Var("x", 8)
	if r, m := s.Check(sym.EqConst(x, 5)); r != Sat || m["x"] != 5 {
		t.Fatalf("solver unusable after panic: %v %v", r, m)
	}
}

// TestCloneStress: concurrent clones taking copy-on-write snapshots while
// the parent keeps solving must neither race nor lose entries.
func TestCloneStress(t *testing.T) {
	x := sym.Var("x", 16)
	parent := New()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				parent.Check(sym.EqConst(x, uint64(g*100+i)))
				c := parent.Clone()
				if r, m := c.Check(sym.EqConst(x, uint64(g*100+i))); r != Sat || m["x"] != uint64(g*100+i) {
					t.Errorf("clone lost warm entry for x==%d", g*100+i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestCloneSkipsCopyWhenCacheDisabled pins the satellite fix: cloning a
// DisableCache solver must not snapshot (or resurrect) cache state.
func TestCloneSkipsCopyWhenCacheDisabled(t *testing.T) {
	s := New()
	x := sym.Var("x", 8)
	s.Check(sym.EqConst(x, 1)) // warm an entry while caching is on
	s.DisableCache = true
	c := s.Clone()
	if !c.DisableCache {
		t.Fatal("Clone lost DisableCache")
	}
	for i := range c.shards {
		if len(c.shards[i].frozen) != 0 || len(c.shards[i].live) != 0 {
			t.Fatal("Clone of a DisableCache solver carried cache state")
		}
	}
	// And it still answers correctly, uncached.
	if r, m := c.Check(sym.EqConst(x, 1)); r != Sat || m["x"] != 1 {
		t.Fatalf("clone answered %v %v", r, m)
	}
	if st := c.Stats(); st.CacheHits != 0 {
		t.Fatalf("CacheHits = %d on a cache-disabled clone", st.CacheHits)
	}
}
