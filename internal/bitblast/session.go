package bitblast

import (
	"sort"
	"strconv"
	"time"

	"github.com/soft-testing/soft/internal/sat"
	"github.com/soft-testing/soft/internal/sym"
)

// Session is an incremental Blaster for exploring a path tree: one SAT core
// and one encoding memo persist across many path attempts, with each path's
// constraints activated through assumption literals instead of being
// re-blasted and re-asserted from scratch (the MiniSat solve-with-assumptions
// idiom).
//
// Every asserted conjunct c is encoded once, guarded by a fresh activation
// variable a_c via the clause (¬a_c ∨ lit(c)), and cached. Asserting c on a
// later path just pushes a_c onto the session's assumption stack; solving a
// path is one Solve(a_1..a_k, extras...) call. Sibling paths in the decision
// tree — which share their whole constraint prefix — therefore share CNF,
// learned clauses, and VSIDS activity, which is where the paths/sec win
// comes from.
//
// Answer preservation: assumptions are exact (sat.Solver decides the same
// formula a fresh solver would), learned clauses are resolvents of database
// clauses only (never of assumptions), and witness extraction minimizes the
// model per CanonicalModel's semantics, so a Session returns bit-for-bit the
// answers and canonical models a fresh Blaster per path returns. The
// determinism sweep tests in internal/symexec pin this.
//
// The guarded clause database is satisfiable by construction (every guard is
// satisfied by setting its activation variable false, and Tseitin
// definitions are functional), so the underlying solver can never become
// unconditionally unsatisfiable; Session panics if it does, as that would
// silently poison every later path.
//
// A Session is not safe for concurrent use: the engine creates one per
// worker.
type Session struct {
	b *Blaster

	// acts caches the activation literal per asserted conjunct. Keys are
	// canonical (hash-consed) nodes, so sibling paths hit by pointer; the
	// hash index below catches structurally equal nodes that escaped
	// interning (table cap) and doubles as the collision guard for the
	// canonical activation-variable names.
	acts    map[*sym.Expr]sat.Lit
	actHash map[uint64]*sym.Expr

	// varsOf caches the named variables mentioned by a conjunct (in the same
	// stable pre-order Blaster.reserveVars uses) so replayed prefixes don't
	// re-walk their expression DAGs.
	varsOf map[*sym.Expr][]varRef

	// stack holds the activation literals of the current path's asserted
	// conjuncts, in assertion order.
	stack []sat.Lit

	// pathVars tracks the variables mentioned by the current path's asserted
	// and queried expressions — exactly the set a fresh per-path Blaster
	// would have registered, which is what Model/CanonicalModel must cover.
	pathVars map[string][]sat.Lit

	// ConstraintsNew / ConstraintsReused count conjunct encodings performed
	// vs served from the activation cache; AssumptionSolves counts
	// engine-level satisfiability decisions. The engine aggregates these
	// into solver.Stats.
	ConstraintsNew    int64
	ConstraintsReused int64
	AssumptionSolves  int64
}

// NewSession creates a Session. With a non-nil Space the session's variable
// numbering is canonical and its SAT core joins the space's learned-clause
// exchange, exactly as NewShared; activation variables are registered in the
// space (named by conjunct hash) so the canonical mirror stays intact.
func NewSession(sp *Space) *Session {
	return &Session{
		b:        NewShared(sp),
		acts:     make(map[*sym.Expr]sat.Lit),
		actHash:  make(map[uint64]*sym.Expr),
		varsOf:   make(map[*sym.Expr][]varRef),
		pathVars: make(map[string][]sat.Lit),
	}
}

// varRef names one bitvector variable an expression mentions.
type varRef struct {
	name string
	w    int
}

// Reset begins a new path: the assumption stack and the path's variable set
// are cleared, while the encoded constraint cache, learned clauses, and
// search heuristics persist.
func (s *Session) Reset() {
	s.stack = s.stack[:0]
	s.pathVars = make(map[string][]sat.Lit)
}

// StackLen returns the number of activation literals currently assumed.
func (s *Session) StackLen() int { return len(s.stack) }

// touchVars registers e's named variables in the underlying blaster (fixing
// canonical indices on first use, like Blaster.reserveVars) and records them
// as part of the current path.
func (s *Session) touchVars(e *sym.Expr) {
	refs, ok := s.varsOf[e]
	if !ok {
		seen := make(map[*sym.Expr]bool)
		named := make(map[string]bool)
		var walk func(*sym.Expr)
		walk = func(n *sym.Expr) {
			if seen[n] {
				return
			}
			seen[n] = true
			if n.Op == sym.OpVar {
				if !named[n.Name] {
					named[n.Name] = true
					refs = append(refs, varRef{n.Name, n.Width()})
				}
				return
			}
			for _, k := range n.Kids {
				walk(k)
			}
		}
		walk(e)
		s.varsOf[e] = refs
	}
	for _, r := range refs {
		if _, ok := s.pathVars[r.name]; !ok {
			s.pathVars[r.name] = s.b.VarBits(r.name, r.w)
		}
	}
}

// Assert adds the boolean expression e to the current path's constraints.
// Top-level conjunctions decompose into independently guarded conjuncts,
// mirroring Blaster.Assert's clause shapes.
func (s *Session) Assert(e *sym.Expr) {
	if !e.IsBool() {
		panic("bitblast: Assert requires a boolean expression")
	}
	s.assert(e)
}

func (s *Session) assert(e *sym.Expr) {
	if e.Op == sym.OpLAnd {
		for _, k := range e.Kids {
			s.assert(k)
		}
		return
	}
	s.touchVars(e)
	s.stack = append(s.stack, s.actFor(e))
}

// actFor returns the activation literal guarding conjunct e, encoding e on
// first sight. Constant conjuncts need no guard: their literal doubles as
// the assumption (assuming true is free; assuming false makes every solve
// on the path correctly unsatisfiable without touching the database).
func (s *Session) actFor(e *sym.Expr) sat.Lit {
	if a, ok := s.acts[e]; ok {
		s.ConstraintsReused++
		MConstraintsReused.Inc()
		return a
	}
	if prev, ok := s.actHash[e.Hash()]; ok && sym.Equal(prev, e) {
		// Structurally equal twin that escaped interning: reuse its guard.
		a := s.acts[prev]
		s.acts[e] = a
		s.ConstraintsReused++
		MConstraintsReused.Inc()
		return a
	}
	s.ConstraintsNew++
	lit := s.b.enc1(e)
	var a sat.Lit
	if lit == s.b.constLit(true) || lit == s.b.constLit(false) {
		a = lit
	} else {
		a = s.newActLit(e)
		s.b.addClause(a.Not(), lit)
	}
	s.acts[e] = a
	if _, ok := s.actHash[e.Hash()]; !ok {
		s.actHash[e.Hash()] = e
	}
	return a
}

// newActLit allocates the activation variable for conjunct e. With a shared
// space the variable is registered under a canonical name derived from e's
// structural hash, keeping the blaster's index mirror synced (a private
// allocation while synced would alias a later canonical claim). A hash
// collision between distinct conjuncts, or a full shared region, falls back
// to private numbering after desyncing — exactly VarBits' degradation path.
func (s *Session) newActLit(e *sym.Expr) sat.Lit {
	b := s.b
	if b.space != nil && b.synced {
		if prev, ok := s.actHash[e.Hash()]; !ok || sym.Equal(prev, e) {
			name := "!act/" + strconv.FormatUint(e.Hash(), 16)
			if base, ok := b.space.reserve(name, 1); ok && b.claimShared(base, 1) {
				return sat.MkLit(base, false)
			}
		}
		b.synced = false
	}
	b.Aux++
	return sat.MkLit(b.S.NewVar(), false)
}

// solve runs one satisfiability decision under the current stack plus extra
// literals, with the session's liveness check.
func (s *Session) solve(extra ...sat.Lit) bool {
	s.AssumptionSolves++
	MAssumptionSolves.Inc()
	MAssumptionDepth.Observe(int64(len(s.stack)))
	lits := make([]sat.Lit, 0, len(s.stack)+len(extra))
	lits = append(lits, s.stack...)
	lits = append(lits, extra...)
	start := time.Now()
	ok := s.b.S.Solve(lits...)
	MSolveLatency.ObserveSince(start)
	if !ok && !s.b.S.Okay() {
		panic("bitblast: incremental session database became unsatisfiable (engine bug)")
	}
	return ok
}

// Solve decides satisfiability of the current path's constraints.
func (s *Session) Solve() bool { return s.solve() }

// SolveAssuming decides satisfiability of the current path's constraints
// plus extra assumption expressions, without asserting them.
func (s *Session) SolveAssuming(es ...*sym.Expr) bool {
	extra := make([]sat.Lit, len(es))
	for i, e := range es {
		s.touchVars(e)
		extra[i] = s.b.enc1(e)
	}
	return s.solve(extra...)
}

// SolveSubset decides satisfiability of an arbitrary subset of previously
// asserted conjuncts plus extra assumption expressions — the relaxed
// queries state merging issues. Every conjunct must have been asserted on
// some path of this session (its guard is served from the cache).
func (s *Session) SolveSubset(conjuncts []*sym.Expr, extra ...*sym.Expr) bool {
	s.AssumptionSolves++
	MAssumptionSolves.Inc()
	MAssumptionDepth.Observe(int64(len(s.stack)))
	lits := make([]sat.Lit, 0, len(conjuncts)+len(extra))
	for _, c := range conjuncts {
		lits = s.appendActs(lits, c)
	}
	for _, e := range extra {
		s.touchVars(e)
		lits = append(lits, s.b.enc1(e))
	}
	start := time.Now()
	ok := s.b.S.Solve(lits...)
	MSolveLatency.ObserveSince(start)
	if !ok && !s.b.S.Okay() {
		panic("bitblast: incremental session database became unsatisfiable (engine bug)")
	}
	return ok
}

// appendActs appends the activation literals guarding e (decomposing
// top-level conjunctions like assert does).
func (s *Session) appendActs(lits []sat.Lit, e *sym.Expr) []sat.Lit {
	if e.Op == sym.OpLAnd {
		for _, k := range e.Kids {
			lits = s.appendActs(lits, k)
		}
		return lits
	}
	return append(lits, s.actFor(e))
}

// Model extracts the assignment of every variable the current path
// mentioned. Must be called only after a satisfiable Solve.
func (s *Session) Model() sym.Assignment {
	m := make(sym.Assignment, len(s.pathVars))
	for name, bits := range s.pathVars {
		var v uint64
		for i, l := range bits {
			bit := s.b.S.Value(l.Var())
			if l.Neg() {
				bit = !bit
			}
			if bit {
				v |= 1 << i
			}
		}
		m[name] = v
	}
	return m
}

// CanonicalModel extracts the canonical witness of the current path's
// constraints: identical semantics (and bytes) to Blaster.CanonicalModel on
// a fresh per-path blaster, restricted to the path's variables and with the
// activation stack included in every minimization probe. Must be called
// immediately after a successful Solve.
func (s *Session) CanonicalModel() sym.Assignment {
	names := make([]string, 0, len(s.pathVars))
	for n := range s.pathVars {
		names = append(names, n)
	}
	sort.Strings(names)
	// Same invariant as Blaster.CanonicalModel: the solver's last model
	// satisfies the stack and every literal in fixed, a failed probe leaves
	// that model in place, so each bit costs at most one solve.
	fixed := make([]sat.Lit, len(s.stack), len(s.stack)+8)
	copy(fixed, s.stack)
	for _, n := range names {
		bits := s.pathVars[n]
		for i := len(bits) - 1; i >= 0; i-- {
			l := bits[i]
			if s.b.S.Value(l.Var()) == l.Neg() { // current model reads 0
				fixed = append(fixed, l.Not())
				continue
			}
			fixed = append(fixed, l.Not())
			if !s.b.S.Solve(fixed...) {
				fixed[len(fixed)-1] = l
			}
		}
	}
	return s.Model()
}
