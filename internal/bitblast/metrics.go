package bitblast

import (
	"github.com/soft-testing/soft/internal/obs"
)

// SAT-core metrics. Observation only — nothing here feeds back into
// solving (see internal/obs doc.go). The vars are exported so
// internal/dist can sample worker-local deltas and ship them to the
// coordinator on progress frames.
var (
	// MSolves / MSolveLatency cover from-scratch satisfiability decisions
	// on per-path blasters (and the solver façade, which runs on them).
	MSolves       = obs.NewCounter("soft_sat_solves_total")
	MSolveLatency = obs.NewHistogram("soft_sat_solve_latency_ns")
	// MAssumptionSolves / MAssumptionDepth cover incremental-session
	// decisions and the assumption-stack depth each one reused.
	MAssumptionSolves = obs.NewCounter("soft_sat_assumption_solves_total")
	MAssumptionDepth  = obs.NewHistogram("soft_sat_assumption_stack_depth")
	// MConstraintsReused counts conjunct encodings served from a session's
	// activation cache instead of being re-bitblasted.
	MConstraintsReused = obs.NewCounter("soft_sat_constraints_reused_total")
)
