package bitblast

import (
	"fmt"
	"sync"

	"github.com/soft-testing/soft/internal/sat"
)

// maxSharedVars bounds the canonically numbered region. Beyond it, blasters
// fall back to private numbering (sharing degrades gracefully; answers
// never depend on it).
const maxSharedVars = 1 << 18

// gateKey identifies one auxiliary (Tseitin) variable canonically: the
// structural hash of the expression node being encoded plus the ordinal of
// the gate within that node's deterministic gate emission sequence.
type gateKey struct {
	hash uint64
	ord  int
}

// Space gives a set of Blasters one canonical SAT-variable numbering — for
// named input variables and for Tseitin gate variables — plus a shared
// learned-clause exchange.
//
// Numbering invariant: SAT variable 0 is the constant-true literal in every
// Blaster. A named variable's bits occupy the contiguous range fixed at the
// name's first registration, and an auxiliary variable is keyed by
// (structural hash of its expression node, gate ordinal); the encoding of a
// node is a deterministic function of its children's literals, so every
// synced Blaster that encodes a node allocates the same gates in the same
// order and maps them to the same canonical indices. A literal below a
// Blaster's shared limit therefore denotes the same proposition in every
// other synced Blaster, which is what makes exchanged clauses meaningful
// across workers.
//
// The invariant is an optimization, not a soundness requirement: importers
// re-prove every candidate clause against their own database before
// adopting it (see sat.Solver), so a stale or colliding mapping can only
// waste a candidate, never corrupt an answer. The one local hazard — two
// distinct nodes in one Blaster colliding on the same 64-bit hash and
// claiming the same canonical index — is guarded by the Blaster's
// used-index set, which diverts the second claimant to private numbering.
//
// A Space is safe for concurrent use: gate lookups (the hot path — one per
// first encode of each node per Blaster) go through a lock-free-read
// sync.Map; the mutex is taken only to allocate fresh indices.
type Space struct {
	mu    sync.Mutex
	base  map[string]int
	width map[string]int
	next  int // next unassigned shared variable index

	gates sync.Map // gateKey -> int

	ring *sat.Exchange
}

// NewSpace creates an empty Space whose clause ring holds ringSize slots
// (<= 0 picks sat.DefaultExchangeSize).
func NewSpace(ringSize int) *Space {
	return &Space{
		base:  make(map[string]int),
		width: make(map[string]int),
		next:  1, // index 0 is every Blaster's constant-true variable
		ring:  sat.NewExchange(ringSize),
	}
}

// reserve returns the canonical base index for the named variable,
// registering it on first use. ok is false when the shared region is full.
func (sp *Space) reserve(name string, w int) (int, bool) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if b, exists := sp.base[name]; exists {
		if sp.width[name] != w {
			panic(fmt.Sprintf("bitblast: shared variable %q used with widths %d and %d",
				name, sp.width[name], w))
		}
		return b, true
	}
	if sp.next+w > maxSharedVars {
		return 0, false
	}
	b := sp.next
	sp.next += w
	sp.base[name] = b
	sp.width[name] = w
	return b, true
}

// reserveGate returns the canonical index of one auxiliary variable,
// allocating it on first use. ok is false when the shared region is full.
func (sp *Space) reserveGate(k gateKey) (int, bool) {
	if v, ok := sp.gates.Load(k); ok {
		return v.(int), true
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if v, ok := sp.gates.Load(k); ok { // lost the allocation race
		return v.(int), true
	}
	if sp.next >= maxSharedVars {
		return 0, false
	}
	v := sp.next
	sp.next++
	sp.gates.Store(k, v)
	return v, true
}

// Stats reports the clause-exchange traffic so far.
func (sp *Space) Stats() sat.ExchangeStats { return sp.ring.Stats() }
