package bitblast

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/soft-testing/soft/internal/sym"
)

// checkSAT asserts e, solves, and (when SAT) validates the model against the
// sym evaluator — the soundness contract of the whole decision procedure.
func checkSAT(t *testing.T, e *sym.Expr) (bool, sym.Assignment) {
	t.Helper()
	b := New()
	b.Assert(e)
	if !b.Solve() {
		return false, nil
	}
	m := b.Model()
	if !sym.EvalBool(e, m) {
		t.Fatalf("model %v does not satisfy %v", m, e)
	}
	return true, m
}

func TestConstTrue(t *testing.T) {
	if ok, _ := checkSAT(t, sym.Bool(true)); !ok {
		t.Fatal("true must be SAT")
	}
}

func TestConstFalse(t *testing.T) {
	if ok, _ := checkSAT(t, sym.Bool(false)); ok {
		t.Fatal("false must be UNSAT")
	}
}

func TestEqConst(t *testing.T) {
	x := sym.Var("x", 16)
	ok, m := checkSAT(t, sym.EqConst(x, 0xfff8))
	if !ok {
		t.Fatal("x == 0xfff8 must be SAT")
	}
	if m["x"] != 0xfff8 {
		t.Fatalf("model x = %#x, want 0xfff8", m["x"])
	}
}

func TestContradiction(t *testing.T) {
	x := sym.Var("x", 8)
	e := sym.LAnd(sym.EqConst(x, 3), sym.EqConst(x, 4))
	if ok, _ := checkSAT(t, e); ok {
		t.Fatal("x=3 AND x=4 must be UNSAT")
	}
}

func TestUltBounds(t *testing.T) {
	x := sym.Var("x", 8)
	// x < 0 is unsatisfiable.
	if ok, _ := checkSAT(t, sym.Ult(x, sym.Const(8, 0))); ok {
		t.Fatal("x <u 0 must be UNSAT")
	}
	// x < 1 forces x = 0.
	ok, m := checkSAT(t, sym.Ult(x, sym.Const(8, 1)))
	if !ok || m["x"] != 0 {
		t.Fatalf("x <u 1: ok=%v model=%v", ok, m)
	}
	// 255 <= x forces x = 255.
	ok, m = checkSAT(t, sym.Ule(sym.Const(8, 255), x))
	if !ok || m["x"] != 255 {
		t.Fatalf("255 <=u x: ok=%v model=%v", ok, m)
	}
}

func TestAddOverflow(t *testing.T) {
	x := sym.Var("x", 8)
	// x + 1 == 0 forces x = 255 (wraparound).
	ok, m := checkSAT(t, sym.EqConst(sym.Add(x, sym.Const(8, 1)), 0))
	if !ok || m["x"] != 255 {
		t.Fatalf("x+1==0: ok=%v model=%v", ok, m)
	}
}

func TestSub(t *testing.T) {
	x := sym.Var("x", 8)
	y := sym.Var("y", 8)
	e := sym.LAnd(
		sym.EqConst(sym.Sub(x, y), 10),
		sym.EqConst(y, 250),
	)
	ok, m := checkSAT(t, e)
	if !ok {
		t.Fatal("must be SAT")
	}
	if got := (m["x"] - m["y"]) & 0xff; got != 10 {
		t.Fatalf("x-y = %d, want 10 (model %v)", got, m)
	}
}

func TestMul(t *testing.T) {
	x := sym.Var("x", 8)
	// x * 3 == 30 has solution x = 10 (among others mod 256).
	ok, m := checkSAT(t, sym.EqConst(sym.Mul(x, sym.Const(8, 3)), 30))
	if !ok {
		t.Fatal("x*3==30 must be SAT")
	}
	if got := (m["x"] * 3) & 0xff; got != 30 {
		t.Fatalf("model x=%d gives %d", m["x"], got)
	}
}

func TestExtractConcat(t *testing.T) {
	x := sym.Var("x", 16)
	hi := sym.Extract(x, 15, 8)
	lo := sym.Extract(x, 7, 0)
	e := sym.LAnd(sym.EqConst(hi, 0xab), sym.EqConst(lo, 0xcd))
	ok, m := checkSAT(t, e)
	if !ok || m["x"] != 0xabcd {
		t.Fatalf("extract: ok=%v model=%v", ok, m)
	}
	// Concat inverse.
	y := sym.Concat(sym.Const(8, 0x12), sym.Const(8, 0x34))
	ok, _ = checkSAT(t, sym.EqConst(y, 0x1234))
	if !ok {
		t.Fatal("concat const must equal 0x1234")
	}
}

func TestIte(t *testing.T) {
	x := sym.Var("x", 8)
	y := sym.Var("y", 8)
	// (x < 10 ? y : 0) == 7 AND x == 3 forces y = 7.
	e := sym.LAnd(
		sym.EqConst(sym.Ite(sym.Ult(x, sym.Const(8, 10)), y, sym.Const(8, 0)), 7),
		sym.EqConst(x, 3),
	)
	ok, m := checkSAT(t, e)
	if !ok || m["y"] != 7 {
		t.Fatalf("ite: ok=%v model=%v", ok, m)
	}
}

func TestShifts(t *testing.T) {
	x := sym.Var("x", 8)
	ok, m := checkSAT(t, sym.EqConst(sym.Shl(x, 4), 0xf0))
	if !ok || m["x"]&0x0f != 0x0f {
		t.Fatalf("shl: ok=%v model=%v", ok, m)
	}
	ok, m = checkSAT(t, sym.EqConst(sym.Lshr(x, 6), 0x3))
	if !ok || m["x"]>>6 != 3 {
		t.Fatalf("lshr: ok=%v model=%v", ok, m)
	}
}

func TestBitwise(t *testing.T) {
	x := sym.Var("x", 8)
	y := sym.Var("y", 8)
	e := sym.LAnd(
		sym.EqConst(sym.And(x, y), 0x0f),
		sym.EqConst(sym.Or(x, y), 0xff),
		sym.EqConst(sym.Xor(x, y), 0xf0),
	)
	ok, m := checkSAT(t, e)
	if !ok {
		t.Fatal("must be SAT")
	}
	if m["x"]&m["y"] != 0x0f || m["x"]|m["y"] != 0xff || m["x"]^m["y"] != 0xf0 {
		t.Fatalf("bad model %v", m)
	}
}

func TestNotGate(t *testing.T) {
	x := sym.Var("x", 8)
	ok, m := checkSAT(t, sym.EqConst(sym.Not(x), 0x5a))
	if !ok || m["x"] != 0xa5 {
		t.Fatalf("not: ok=%v model=%v", ok, m)
	}
}

func TestZExt(t *testing.T) {
	x := sym.Var("x", 8)
	ok, m := checkSAT(t, sym.EqConst(sym.ZExt(x, 16), 0x00fe))
	if !ok || m["x"] != 0xfe {
		t.Fatalf("zext: ok=%v model=%v", ok, m)
	}
	// zext can never produce a value with high bits set.
	if ok, _ := checkSAT(t, sym.EqConst(sym.ZExt(x, 16), 0x0100)); ok {
		t.Fatal("zext(x,16) == 0x100 must be UNSAT for 8-bit x")
	}
}

func TestSolveAssuming(t *testing.T) {
	b := New()
	x := sym.Var("x", 8)
	b.Assert(sym.Ult(x, sym.Const(8, 10)))
	if !b.SolveAssuming(sym.EqConst(x, 5)) {
		t.Fatal("x<10 with x==5 must be SAT")
	}
	if b.SolveAssuming(sym.EqConst(x, 20)) {
		t.Fatal("x<10 with x==20 must be UNSAT")
	}
	// Assumptions must not stick.
	if !b.SolveAssuming(sym.EqConst(x, 9)) {
		t.Fatal("x<10 with x==9 must be SAT after retracting x==20")
	}
}

func TestSharedSubexpressionEncodedOnce(t *testing.T) {
	b := New()
	x := sym.Var("x", 16)
	shared := sym.Add(x, sym.Const(16, 1))
	e := sym.LAnd(sym.Ult(shared, sym.Const(16, 100)), sym.Ne(shared, sym.Const(16, 5)))
	b.Assert(e)
	before := b.Aux
	b.Assert(sym.Ule(shared, sym.Const(16, 99)))
	// Re-asserting over the same shared node must not re-encode the adder.
	if grew := b.Aux - before; grew > 40 {
		t.Fatalf("shared node re-encoded: %d new aux vars", grew)
	}
	if !b.Solve() {
		t.Fatal("must be SAT")
	}
}

// TestQuickAgainstEval cross-validates the encoder against the interpreter
// on random expressions: for random x, y the formula (expr == eval(expr))
// with variables pinned must be satisfiable.
func TestQuickAgainstEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	build := func(x, y *sym.Expr, depth int) *sym.Expr {
		var rec func(d int) *sym.Expr
		rec = func(d int) *sym.Expr {
			if d == 0 {
				switch rng.Intn(3) {
				case 0:
					return x
				case 1:
					return y
				default:
					return sym.Const(8, uint64(rng.Intn(256)))
				}
			}
			a, b := rec(d-1), rec(d-1)
			switch rng.Intn(7) {
			case 0:
				return sym.Add(a, b)
			case 1:
				return sym.Sub(a, b)
			case 2:
				return sym.And(a, b)
			case 3:
				return sym.Or(a, b)
			case 4:
				return sym.Xor(a, b)
			case 5:
				return sym.Ite(sym.Ult(a, b), a, b)
			default:
				return sym.Not(a)
			}
		}
		return rec(depth)
	}
	x, y := sym.Var("x", 8), sym.Var("y", 8)
	for i := 0; i < 40; i++ {
		e := build(x, y, 3)
		xv, yv := uint64(rng.Intn(256)), uint64(rng.Intn(256))
		want := sym.Eval(e, sym.Assignment{"x": xv, "y": yv})
		formula := sym.LAnd(
			sym.EqConst(x, xv),
			sym.EqConst(y, yv),
			sym.EqConst(e, want),
		)
		b := New()
		b.Assert(formula)
		if !b.Solve() {
			t.Fatalf("iteration %d: expr %v with x=%d y=%d should evaluate to %d", i, e, xv, yv, want)
		}
		// And the opposite must be UNSAT.
		formula = sym.LAnd(
			sym.EqConst(x, xv),
			sym.EqConst(y, yv),
			sym.Ne(e, sym.Const(8, want)),
		)
		b = New()
		b.Assert(formula)
		if b.Solve() {
			t.Fatalf("iteration %d: expr %v with x=%d y=%d must not differ from %d", i, e, xv, yv, want)
		}
	}
}

// TestQuickComparisons property-tests Ult/Ule consistency with Go's <, <=.
func TestQuickComparisons(t *testing.T) {
	f := func(a, b uint16) bool {
		x := sym.Const(16, uint64(a))
		y := sym.Const(16, uint64(b))
		bl := New()
		bl.Assert(sym.Bool(true))
		ultOK := bl.SolveAssuming(sym.Ult(x, y)) == (a < b)
		uleOK := bl.SolveAssuming(sym.Ule(x, y)) == (a <= b)
		return ultOK && uleOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestEnumerationAgainstBruteForce checks SAT/UNSAT agreement with explicit
// enumeration over a narrow variable.
func TestEnumerationAgainstBruteForce(t *testing.T) {
	x := sym.Var("x", 4)
	cases := []*sym.Expr{
		sym.Ult(sym.Add(x, sym.Const(4, 3)), sym.Const(4, 2)),
		sym.EqConst(sym.Mul(x, x), 9),
		sym.LAnd(sym.Ult(x, sym.Const(4, 12)), sym.Ugt(x, sym.Const(4, 10))),
		sym.LOr(sym.EqConst(x, 0), sym.EqConst(sym.Not(x), 0)),
		sym.EqConst(sym.Xor(x, sym.Lshr(x, 1)), 0xf),
	}
	for i, e := range cases {
		brute := false
		for v := uint64(0); v < 16; v++ {
			if sym.EvalBool(e, sym.Assignment{"x": v}) {
				brute = true
				break
			}
		}
		b := New()
		b.Assert(e)
		if got := b.Solve(); got != brute {
			t.Errorf("case %d (%v): solver=%v brute=%v", i, e, got, brute)
		}
	}
}

func BenchmarkBlastFlowModStyleConstraint(b *testing.B) {
	// A constraint shaped like a real path condition: several field
	// equalities and range checks over distinct 16-bit variables.
	port := sym.Var("port", 16)
	vlan := sym.Var("vlan", 16)
	buf := sym.Var("buffer", 32)
	e := sym.LAnd(
		sym.Ult(port, sym.Const(16, 0xff00)),
		sym.Ne(port, sym.Const(16, 0)),
		sym.Ule(vlan, sym.Const(16, 0x0fff)),
		sym.Ne(buf, sym.Const(32, 0xffffffff)),
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bl := New()
		bl.Assert(e)
		if !bl.Solve() {
			b.Fatal("must be SAT")
		}
	}
}
