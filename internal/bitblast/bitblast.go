// Package bitblast translates sym bitvector/boolean expressions into CNF
// over the sat package's literals (Tseitin encoding). Together with the CDCL
// core it forms the decision procedure that substitutes for STP in the SOFT
// reproduction: satisfiability of path conditions, crosscheck conjunctions
// C_A(i) ∧ C_B(j), and model (test case) extraction.
//
// Encoding conventions: a bitvector of width w becomes w SAT literals, least
// significant bit first. A boolean expression becomes a single literal. The
// encoder memoizes on expression identity and on structural hash so shared
// DAG nodes are encoded once.
package bitblast

import (
	"fmt"

	"github.com/soft-testing/soft/internal/sat"
	"github.com/soft-testing/soft/internal/sym"
)

// Blaster incrementally encodes expressions into a sat.Solver. A single
// Blaster owns its solver; create a fresh Blaster per query batch, or reuse
// it for several Assert calls followed by one Solve.
type Blaster struct {
	S     *sat.Solver
	vars  map[string][]sat.Lit // bitvector variable -> bit literals (LSB first)
	memo  map[*sym.Expr][]sat.Lit
	ltrue sat.Lit // literal constrained to true

	// Clauses counts CNF clauses added; Aux counts auxiliary variables.
	Clauses int
	Aux     int
}

// New creates an empty Blaster with a fresh SAT solver.
func New() *Blaster {
	b := &Blaster{
		S:    sat.New(),
		vars: make(map[string][]sat.Lit),
		memo: make(map[*sym.Expr][]sat.Lit),
	}
	b.ltrue = b.newLit()
	b.addClause(b.ltrue)
	return b
}

func (b *Blaster) newLit() sat.Lit {
	b.Aux++
	return sat.MkLit(b.S.NewVar(), false)
}

func (b *Blaster) addClause(ls ...sat.Lit) {
	b.Clauses++
	b.S.AddClause(ls...)
}

func (b *Blaster) constLit(v bool) sat.Lit {
	if v {
		return b.ltrue
	}
	return b.ltrue.Not()
}

// VarBits returns (creating on first use) the bit literals of the named
// bitvector variable.
func (b *Blaster) VarBits(name string, w int) []sat.Lit {
	if bits, ok := b.vars[name]; ok {
		if len(bits) != w {
			panic(fmt.Sprintf("bitblast: variable %q used with widths %d and %d", name, len(bits), w))
		}
		return bits
	}
	bits := make([]sat.Lit, w)
	for i := range bits {
		bits[i] = sat.MkLit(b.S.NewVar(), false)
	}
	b.vars[name] = bits
	return bits
}

// Assert adds the boolean expression e as a hard constraint.
func (b *Blaster) Assert(e *sym.Expr) {
	if !e.IsBool() {
		panic("bitblast: Assert requires a boolean expression")
	}
	// Top-level conjunctions decompose into independent asserts, which keeps
	// clauses shorter than funnelling through a single Tseitin output.
	if e.Op == sym.OpLAnd {
		for _, k := range e.Kids {
			b.Assert(k)
		}
		return
	}
	b.addClause(b.enc1(e))
}

// Solve decides satisfiability of everything asserted so far.
func (b *Blaster) Solve() bool { return b.S.Solve() }

// SolveAssuming decides satisfiability under extra assumption expressions
// without permanently asserting them.
func (b *Blaster) SolveAssuming(es ...*sym.Expr) bool {
	lits := make([]sat.Lit, len(es))
	for i, e := range es {
		lits[i] = b.enc1(e)
	}
	return b.S.Solve(lits...)
}

// Model extracts the assignment of every bitvector variable mentioned in
// asserted expressions. Must be called only after a satisfiable Solve.
func (b *Blaster) Model() sym.Assignment {
	m := make(sym.Assignment, len(b.vars))
	for name, bits := range b.vars {
		var v uint64
		for i, l := range bits {
			bit := b.S.Value(l.Var())
			if l.Neg() {
				bit = !bit
			}
			if bit {
				v |= 1 << i
			}
		}
		m[name] = v
	}
	return m
}

// enc encodes a bitvector expression to its bit literals (booleans to a
// single literal via enc1).
func (b *Blaster) enc(e *sym.Expr) []sat.Lit {
	if bits, ok := b.memo[e]; ok {
		return bits
	}
	var bits []sat.Lit
	switch e.Op {
	case sym.OpConst:
		bits = make([]sat.Lit, e.W)
		for i := range bits {
			bits[i] = b.constLit(e.K>>i&1 == 1)
		}
	case sym.OpVar:
		bits = b.VarBits(e.Name, int(e.W))
	case sym.OpExtract:
		kid := b.enc(e.Kids[0])
		bits = kid[e.K : e.K2+1]
	case sym.OpConcat:
		hi, lo := b.enc(e.Kids[0]), b.enc(e.Kids[1])
		bits = make([]sat.Lit, 0, len(hi)+len(lo))
		bits = append(bits, lo...)
		bits = append(bits, hi...)
	case sym.OpZExt:
		kid := b.enc(e.Kids[0])
		bits = make([]sat.Lit, e.W)
		copy(bits, kid)
		for i := len(kid); i < int(e.W); i++ {
			bits[i] = b.constLit(false)
		}
	case sym.OpAdd:
		bits = b.adder(b.enc(e.Kids[0]), b.enc(e.Kids[1]), b.constLit(false), false)
	case sym.OpSub:
		// a - b = a + ^b + 1.
		nb := b.enc(e.Kids[1])
		inv := make([]sat.Lit, len(nb))
		for i, l := range nb {
			inv[i] = l.Not()
		}
		bits = b.adder(b.enc(e.Kids[0]), inv, b.constLit(true), false)
	case sym.OpMul:
		bits = b.multiplier(b.enc(e.Kids[0]), b.enc(e.Kids[1]))
	case sym.OpAnd:
		bits = b.bitwise(e, func(x, y sat.Lit) sat.Lit { return b.andGate(x, y) })
	case sym.OpOr:
		bits = b.bitwise(e, func(x, y sat.Lit) sat.Lit { return b.orGate(x, y) })
	case sym.OpXor:
		bits = b.bitwise(e, func(x, y sat.Lit) sat.Lit { return b.xorGate(x, y) })
	case sym.OpNot:
		kid := b.enc(e.Kids[0])
		bits = make([]sat.Lit, len(kid))
		for i, l := range kid {
			bits[i] = l.Not()
		}
	case sym.OpShl:
		kid := b.enc(e.Kids[0])
		bits = make([]sat.Lit, e.W)
		for i := range bits {
			if i >= int(e.K) {
				bits[i] = kid[i-int(e.K)]
			} else {
				bits[i] = b.constLit(false)
			}
		}
	case sym.OpLshr:
		kid := b.enc(e.Kids[0])
		bits = make([]sat.Lit, e.W)
		for i := range bits {
			if i+int(e.K) < len(kid) {
				bits[i] = kid[i+int(e.K)]
			} else {
				bits[i] = b.constLit(false)
			}
		}
	case sym.OpIte:
		c := b.enc1(e.Kids[0])
		t, f := b.enc(e.Kids[1]), b.enc(e.Kids[2])
		bits = make([]sat.Lit, len(t))
		for i := range bits {
			bits[i] = b.muxGate(c, t[i], f[i])
		}
	default:
		// Boolean expression used as a 1-bit value is a caller bug; sym
		// keeps the two sorts distinct.
		panic(fmt.Sprintf("bitblast: cannot encode %v as bitvector", e.Op))
	}
	b.memo[e] = bits
	return bits
}

// enc1 encodes a boolean expression to one literal.
func (b *Blaster) enc1(e *sym.Expr) sat.Lit {
	if bits, ok := b.memo[e]; ok {
		return bits[0]
	}
	var l sat.Lit
	switch e.Op {
	case sym.OpBool:
		l = b.constLit(e.K == 1)
	case sym.OpEq:
		x, y := b.enc(e.Kids[0]), b.enc(e.Kids[1])
		// eq = AND_i xnor(x_i, y_i)
		parts := make([]sat.Lit, len(x))
		for i := range x {
			parts[i] = b.xorGate(x[i], y[i]).Not()
		}
		l = b.andAll(parts)
	case sym.OpUlt:
		l = b.ultGate(b.enc(e.Kids[0]), b.enc(e.Kids[1]))
	case sym.OpUle:
		l = b.ultGate(b.enc(e.Kids[1]), b.enc(e.Kids[0])).Not()
	case sym.OpLAnd:
		parts := make([]sat.Lit, len(e.Kids))
		for i, k := range e.Kids {
			parts[i] = b.enc1(k)
		}
		l = b.andAll(parts)
	case sym.OpLOr:
		parts := make([]sat.Lit, len(e.Kids))
		for i, k := range e.Kids {
			parts[i] = b.enc1(k).Not()
		}
		l = b.andAll(parts).Not()
	case sym.OpLNot:
		l = b.enc1(e.Kids[0]).Not()
	case sym.OpIte:
		// Boolean ite.
		l = b.muxGate(b.enc1(e.Kids[0]), b.enc1(e.Kids[1]), b.enc1(e.Kids[2]))
	default:
		panic(fmt.Sprintf("bitblast: cannot encode %v as boolean", e.Op))
	}
	b.memo[e] = []sat.Lit{l}
	return l
}

// andGate returns a literal g with g <-> x AND y.
func (b *Blaster) andGate(x, y sat.Lit) sat.Lit {
	if x == y {
		return x
	}
	if x == y.Not() {
		return b.constLit(false)
	}
	if x == b.ltrue {
		return y
	}
	if y == b.ltrue {
		return x
	}
	if x == b.ltrue.Not() || y == b.ltrue.Not() {
		return b.constLit(false)
	}
	g := b.newLit()
	b.addClause(x.Not(), y.Not(), g)
	b.addClause(x, g.Not())
	b.addClause(y, g.Not())
	return g
}

func (b *Blaster) orGate(x, y sat.Lit) sat.Lit {
	return b.andGate(x.Not(), y.Not()).Not()
}

// xorGate returns g with g <-> x XOR y.
func (b *Blaster) xorGate(x, y sat.Lit) sat.Lit {
	if x == y {
		return b.constLit(false)
	}
	if x == y.Not() {
		return b.constLit(true)
	}
	if x == b.ltrue {
		return y.Not()
	}
	if x == b.ltrue.Not() {
		return y
	}
	if y == b.ltrue {
		return x.Not()
	}
	if y == b.ltrue.Not() {
		return x
	}
	g := b.newLit()
	b.addClause(x.Not(), y.Not(), g.Not())
	b.addClause(x, y, g.Not())
	b.addClause(x.Not(), y, g)
	b.addClause(x, y.Not(), g)
	return g
}

// muxGate returns g with g <-> (c ? t : f).
func (b *Blaster) muxGate(c, t, f sat.Lit) sat.Lit {
	if t == f {
		return t
	}
	if c == b.ltrue {
		return t
	}
	if c == b.ltrue.Not() {
		return f
	}
	g := b.newLit()
	b.addClause(c.Not(), t.Not(), g)
	b.addClause(c.Not(), t, g.Not())
	b.addClause(c, f.Not(), g)
	b.addClause(c, f, g.Not())
	return g
}

// andAll conjoins a set of literals into one output literal.
func (b *Blaster) andAll(ls []sat.Lit) sat.Lit {
	out := make([]sat.Lit, 0, len(ls))
	for _, l := range ls {
		if l == b.ltrue {
			continue
		}
		if l == b.ltrue.Not() {
			return b.constLit(false)
		}
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		return b.constLit(true)
	case 1:
		return out[0]
	}
	g := b.newLit()
	long := make([]sat.Lit, 0, len(out)+1)
	for _, l := range out {
		b.addClause(l, g.Not()) // g -> l
		long = append(long, l.Not())
	}
	long = append(long, g) // all l -> g
	b.addClause(long...)
	return g
}

// adder builds a ripple-carry adder; if keepCarry is true the result has one
// extra bit (unused by sym, kept for the comparator).
func (b *Blaster) adder(x, y []sat.Lit, carry sat.Lit, keepCarry bool) []sat.Lit {
	n := len(x)
	out := make([]sat.Lit, n, n+1)
	c := carry
	for i := 0; i < n; i++ {
		xy := b.xorGate(x[i], y[i])
		out[i] = b.xorGate(xy, c)
		// carry_out = (x AND y) OR (c AND (x XOR y))
		c = b.orGate(b.andGate(x[i], y[i]), b.andGate(c, xy))
	}
	if keepCarry {
		out = append(out, c)
	}
	return out
}

// multiplier builds a shift-and-add multiplier, truncated to len(x) bits.
func (b *Blaster) multiplier(x, y []sat.Lit) []sat.Lit {
	n := len(x)
	acc := make([]sat.Lit, n)
	for i := range acc {
		acc[i] = b.constLit(false)
	}
	for i := 0; i < n; i++ {
		// partial = y[i] ? (x << i) : 0
		partial := make([]sat.Lit, n)
		for j := range partial {
			if j >= i {
				partial[j] = b.andGate(y[i], x[j-i])
			} else {
				partial[j] = b.constLit(false)
			}
		}
		acc = b.adder(acc, partial, b.constLit(false), false)
	}
	return acc
}

// ultGate returns a literal that is true iff x < y unsigned.
func (b *Blaster) ultGate(x, y []sat.Lit) sat.Lit {
	// Compare from MSB down: lt_i = (~x_i & y_i) | (xnor(x_i,y_i) & lt_{i-1})
	lt := b.constLit(false)
	for i := 0; i < len(x); i++ { // LSB to MSB so the final value is MSB-dominant
		eq := b.xorGate(x[i], y[i]).Not()
		bitLt := b.andGate(x[i].Not(), y[i])
		lt = b.orGate(bitLt, b.andGate(eq, lt))
	}
	return lt
}

func (b *Blaster) bitwise(e *sym.Expr, gate func(x, y sat.Lit) sat.Lit) []sat.Lit {
	x, y := b.enc(e.Kids[0]), b.enc(e.Kids[1])
	bits := make([]sat.Lit, len(x))
	for i := range bits {
		bits[i] = gate(x[i], y[i])
	}
	return bits
}
