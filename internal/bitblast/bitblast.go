// Package bitblast translates sym bitvector/boolean expressions into CNF
// over the sat package's literals (Tseitin encoding). Together with the CDCL
// core it forms the decision procedure that substitutes for STP in the SOFT
// reproduction: satisfiability of path conditions, crosscheck conjunctions
// C_A(i) ∧ C_B(j), and model (test case) extraction.
//
// Encoding conventions: a bitvector of width w becomes w SAT literals, least
// significant bit first. A boolean expression becomes a single literal. The
// encoder memoizes on expression identity and on structural hash so shared
// DAG nodes are encoded once.
package bitblast

import (
	"fmt"
	"sort"
	"time"

	"github.com/soft-testing/soft/internal/sat"
	"github.com/soft-testing/soft/internal/sym"
)

// Blaster incrementally encodes expressions into a sat.Solver. A single
// Blaster owns its solver; create a fresh Blaster per query batch, or reuse
// it for several Assert calls followed by one Solve.
//
// Variable numbering is canonical: named variables are numbered by a stable
// pre-order traversal of each asserted expression, before any auxiliary
// Tseitin variables for that expression — never by gate-allocation order.
// Two Blasters asserting the same expression sequence therefore emit
// byte-identical CNF (TestCanonicalCNF pins this), and Blasters attached to
// a shared Space additionally agree on the absolute indices of all shared
// input bits, the invariant inter-worker clause exchange relies on.
type Blaster struct {
	S     *sat.Solver
	vars  map[string][]sat.Lit // bitvector variable -> bit literals (LSB first)
	memo  map[*sym.Expr][]sat.Lit
	ltrue sat.Lit // literal constrained to true

	// space, when non-nil, supplies canonical indices for named variables
	// and Tseitin gates. While synced, this Blaster's variable layout is a
	// lazy mirror of the space's: local index == canonical index for every
	// variable below sharedLimit (== the local variable count), with index
	// gaps left unconstrained for structure other paths own. The first
	// fallback to private numbering (shared region full, or a hash
	// collision claiming an index twice) freezes sharedLimit: indices below
	// it stay canonical, everything above is private.
	space       *Space
	sharedLimit int
	synced      bool
	usedShared  []bool // canonical indices already claimed by this Blaster

	// nodeHash/nodeSeq form the encoding stack for canonical gate
	// numbering: the structural hash of each expression node being encoded,
	// and the ordinal of the next gate within that node.
	nodeHash []uint64
	nodeSeq  []int

	// Clauses counts CNF clauses added; Aux counts auxiliary variables.
	Clauses int
	Aux     int
}

// New creates an empty Blaster with a fresh SAT solver.
func New() *Blaster {
	b := &Blaster{
		S:    sat.New(),
		vars: make(map[string][]sat.Lit),
		memo: make(map[*sym.Expr][]sat.Lit),
	}
	b.ltrue = b.newLit()
	b.addClause(b.ltrue)
	return b
}

// NewShared creates a Blaster whose variables follow sp's canonical
// numbering and whose SAT core exchanges short learned clauses through sp's
// ring. A nil space degrades to New.
func NewShared(sp *Space) *Blaster {
	b := New()
	if sp == nil {
		return b
	}
	b.space = sp
	b.synced = true
	b.sharedLimit = b.S.NumVars() // just the constant-true variable so far
	b.S.Share(sp.ring, b.sharedLimit)
	return b
}

// claimShared makes the canonical index range [base, base+w) usable in this
// Blaster: inside the mirrored prefix it checks the indices are unclaimed
// (a structural-hash collision would otherwise alias two distinct gates,
// corrupting local answers); beyond it, a still-synced Blaster grows its
// mirror, allocating gap variables that stay unconstrained. Returns false
// — and freezes the mirror — when the range cannot be claimed.
func (b *Blaster) claimShared(base, w int) bool {
	if base+w > b.sharedLimit {
		if !b.synced {
			return false
		}
		for b.S.NumVars() < base+w {
			b.S.NewVar()
		}
		b.sharedLimit = b.S.NumVars()
		b.S.SetShareLimit(b.sharedLimit)
	}
	for len(b.usedShared) < base+w {
		b.usedShared = append(b.usedShared, false)
	}
	for i := base; i < base+w; i++ {
		if b.usedShared[i] {
			b.synced = false
			return false
		}
	}
	for i := base; i < base+w; i++ {
		b.usedShared[i] = true
	}
	return true
}

func (b *Blaster) newLit() sat.Lit {
	b.Aux++
	if b.space != nil && len(b.nodeHash) > 0 {
		// Canonical gate numbering: key the auxiliary variable by the node
		// being encoded and the gate's ordinal within it.
		top := len(b.nodeSeq) - 1
		k := gateKey{hash: b.nodeHash[top], ord: b.nodeSeq[top]}
		b.nodeSeq[top]++
		if v, ok := b.space.reserveGate(k); ok {
			if b.claimShared(v, 1) {
				return sat.MkLit(v, false)
			}
		} else {
			b.synced = false
		}
	}
	return sat.MkLit(b.S.NewVar(), false)
}

func (b *Blaster) addClause(ls ...sat.Lit) {
	b.Clauses++
	b.S.AddClause(ls...)
}

func (b *Blaster) constLit(v bool) sat.Lit {
	if v {
		return b.ltrue
	}
	return b.ltrue.Not()
}

// VarBits returns (creating on first use) the bit literals of the named
// bitvector variable. With a shared Space the bits are the variable's
// canonical indices when the name was registered before this Blaster was
// created; names first seen later are registered for future Blasters but
// numbered privately here (and so excluded from clause exchange).
func (b *Blaster) VarBits(name string, w int) []sat.Lit {
	if bits, ok := b.vars[name]; ok {
		if len(bits) != w {
			panic(fmt.Sprintf("bitblast: variable %q used with widths %d and %d", name, len(bits), w))
		}
		return bits
	}
	if b.space != nil {
		if base, ok := b.space.reserve(name, w); ok {
			if b.claimShared(base, w) {
				bits := make([]sat.Lit, w)
				for i := range bits {
					bits[i] = sat.MkLit(base+i, false)
				}
				b.vars[name] = bits
				return bits
			}
		} else {
			b.synced = false
		}
	}
	bits := make([]sat.Lit, w)
	for i := range bits {
		bits[i] = sat.MkLit(b.S.NewVar(), false)
	}
	b.vars[name] = bits
	return bits
}

// reserveVars numbers every named variable of e in stable pre-order
// traversal position (first occurrence wins), before any auxiliary
// variables of e's encoding are allocated. This is what keeps variable
// numbering a function of the asserted expressions rather than of gate
// construction order.
func (b *Blaster) reserveVars(e *sym.Expr) {
	seen := make(map[*sym.Expr]bool)
	var walk func(e *sym.Expr)
	walk = func(e *sym.Expr) {
		if seen[e] {
			return
		}
		seen[e] = true
		if e.Op == sym.OpVar {
			b.VarBits(e.Name, int(e.W))
			return
		}
		for _, k := range e.Kids {
			walk(k)
		}
	}
	walk(e)
}

// Assert adds the boolean expression e as a hard constraint.
func (b *Blaster) Assert(e *sym.Expr) {
	if !e.IsBool() {
		panic("bitblast: Assert requires a boolean expression")
	}
	b.reserveVars(e)
	b.assert(e)
}

func (b *Blaster) assert(e *sym.Expr) {
	// Top-level conjunctions decompose into independent asserts, which keeps
	// clauses shorter than funnelling through a single Tseitin output.
	if e.Op == sym.OpLAnd {
		for _, k := range e.Kids {
			b.assert(k)
		}
		return
	}
	b.addClause(b.enc1(e))
}

// Solve decides satisfiability of everything asserted so far.
func (b *Blaster) Solve() bool {
	start := time.Now()
	ok := b.S.Solve()
	MSolves.Inc()
	MSolveLatency.ObserveSince(start)
	return ok
}

// SolveAssuming decides satisfiability under extra assumption expressions
// without permanently asserting them.
func (b *Blaster) SolveAssuming(es ...*sym.Expr) bool {
	lits := make([]sat.Lit, len(es))
	for i, e := range es {
		b.reserveVars(e)
		lits[i] = b.enc1(e)
	}
	start := time.Now()
	ok := b.S.Solve(lits...)
	MSolves.Inc()
	MSolveLatency.ObserveSince(start)
	return ok
}

// Model extracts the assignment of every bitvector variable mentioned in
// asserted expressions. Must be called only after a satisfiable Solve.
func (b *Blaster) Model() sym.Assignment {
	m := make(sym.Assignment, len(b.vars))
	for name, bits := range b.vars {
		var v uint64
		for i, l := range bits {
			bit := b.S.Value(l.Var())
			if l.Neg() {
				bit = !bit
			}
			if bit {
				v |= 1 << i
			}
		}
		m[name] = v
	}
	return m
}

// CanonicalModel extracts the canonical witness of the asserted
// constraints: the satisfying assignment with the numerically smallest
// values, minimized variable by variable in name order (each variable's
// bits are fixed MSB first). Unlike Model, whose
// values depend on the CDCL search trajectory (and hence on learned-clause
// imports, restarts, and encoding layout), the canonical model is a pure
// function of the constraint semantics — the property the pipeline's
// byte-for-byte determinism guarantees rest on. Must be called immediately
// after a successful assumption-free Solve: minimization starts from the
// model that solve produced rather than paying a redundant re-solve.
func (b *Blaster) CanonicalModel() sym.Assignment {
	names := make([]string, 0, len(b.vars))
	for n := range b.vars {
		names = append(names, n)
	}
	sort.Strings(names)
	// Invariant: the solver's last model satisfies every literal in fixed.
	// A bit the current model already reads as 0 is therefore 0-feasible
	// for free; only 1-bits cost a solve. A failed solve leaves the
	// previous model in place, which must read the bit as 1 (otherwise it
	// would have witnessed satisfiability), so the invariant holds on both
	// branches and the final model needs no extra solving.
	var fixed []sat.Lit
	for _, n := range names {
		bits := b.vars[n]
		for i := len(bits) - 1; i >= 0; i-- {
			l := bits[i]
			if b.S.Value(l.Var()) == l.Neg() { // current model reads 0
				fixed = append(fixed, l.Not())
				continue
			}
			fixed = append(fixed, l.Not())
			if !b.S.Solve(fixed...) {
				fixed[len(fixed)-1] = l
			}
		}
	}
	return b.Model()
}

// enc encodes a bitvector expression to its bit literals (booleans to a
// single literal via enc1).
func (b *Blaster) enc(e *sym.Expr) []sat.Lit {
	if bits, ok := b.memo[e]; ok {
		return bits
	}
	b.pushNode(e)
	defer b.popNode()
	var bits []sat.Lit
	switch e.Op {
	case sym.OpConst:
		bits = make([]sat.Lit, e.W)
		for i := range bits {
			bits[i] = b.constLit(e.K>>i&1 == 1)
		}
	case sym.OpVar:
		bits = b.VarBits(e.Name, int(e.W))
	case sym.OpExtract:
		kid := b.enc(e.Kids[0])
		bits = kid[e.K : e.K2+1]
	case sym.OpConcat:
		hi, lo := b.enc(e.Kids[0]), b.enc(e.Kids[1])
		bits = make([]sat.Lit, 0, len(hi)+len(lo))
		bits = append(bits, lo...)
		bits = append(bits, hi...)
	case sym.OpZExt:
		kid := b.enc(e.Kids[0])
		bits = make([]sat.Lit, e.W)
		copy(bits, kid)
		for i := len(kid); i < int(e.W); i++ {
			bits[i] = b.constLit(false)
		}
	case sym.OpAdd:
		bits = b.adder(b.enc(e.Kids[0]), b.enc(e.Kids[1]), b.constLit(false), false)
	case sym.OpSub:
		// a - b = a + ^b + 1.
		nb := b.enc(e.Kids[1])
		inv := make([]sat.Lit, len(nb))
		for i, l := range nb {
			inv[i] = l.Not()
		}
		bits = b.adder(b.enc(e.Kids[0]), inv, b.constLit(true), false)
	case sym.OpMul:
		bits = b.multiplier(b.enc(e.Kids[0]), b.enc(e.Kids[1]))
	case sym.OpAnd:
		bits = b.bitwise(e, func(x, y sat.Lit) sat.Lit { return b.andGate(x, y) })
	case sym.OpOr:
		bits = b.bitwise(e, func(x, y sat.Lit) sat.Lit { return b.orGate(x, y) })
	case sym.OpXor:
		bits = b.bitwise(e, func(x, y sat.Lit) sat.Lit { return b.xorGate(x, y) })
	case sym.OpNot:
		kid := b.enc(e.Kids[0])
		bits = make([]sat.Lit, len(kid))
		for i, l := range kid {
			bits[i] = l.Not()
		}
	case sym.OpShl:
		kid := b.enc(e.Kids[0])
		bits = make([]sat.Lit, e.W)
		for i := range bits {
			if i >= int(e.K) {
				bits[i] = kid[i-int(e.K)]
			} else {
				bits[i] = b.constLit(false)
			}
		}
	case sym.OpLshr:
		kid := b.enc(e.Kids[0])
		bits = make([]sat.Lit, e.W)
		for i := range bits {
			if i+int(e.K) < len(kid) {
				bits[i] = kid[i+int(e.K)]
			} else {
				bits[i] = b.constLit(false)
			}
		}
	case sym.OpIte:
		c := b.enc1(e.Kids[0])
		t, f := b.enc(e.Kids[1]), b.enc(e.Kids[2])
		bits = make([]sat.Lit, len(t))
		for i := range bits {
			bits[i] = b.muxGate(c, t[i], f[i])
		}
	default:
		// Boolean expression used as a 1-bit value is a caller bug; sym
		// keeps the two sorts distinct.
		panic(fmt.Sprintf("bitblast: cannot encode %v as bitvector", e.Op))
	}
	b.memo[e] = bits
	return bits
}

// enc1 encodes a boolean expression to one literal.
func (b *Blaster) enc1(e *sym.Expr) sat.Lit {
	if bits, ok := b.memo[e]; ok {
		return bits[0]
	}
	b.pushNode(e)
	defer b.popNode()
	var l sat.Lit
	switch e.Op {
	case sym.OpBool:
		l = b.constLit(e.K == 1)
	case sym.OpEq:
		x, y := b.enc(e.Kids[0]), b.enc(e.Kids[1])
		// eq = AND_i xnor(x_i, y_i)
		parts := make([]sat.Lit, len(x))
		for i := range x {
			parts[i] = b.xorGate(x[i], y[i]).Not()
		}
		l = b.andAll(parts)
	case sym.OpUlt:
		l = b.ultGate(b.enc(e.Kids[0]), b.enc(e.Kids[1]))
	case sym.OpUle:
		l = b.ultGate(b.enc(e.Kids[1]), b.enc(e.Kids[0])).Not()
	case sym.OpLAnd:
		parts := make([]sat.Lit, len(e.Kids))
		for i, k := range e.Kids {
			parts[i] = b.enc1(k)
		}
		l = b.andAll(parts)
	case sym.OpLOr:
		parts := make([]sat.Lit, len(e.Kids))
		for i, k := range e.Kids {
			parts[i] = b.enc1(k).Not()
		}
		l = b.andAll(parts).Not()
	case sym.OpLNot:
		l = b.enc1(e.Kids[0]).Not()
	case sym.OpIte:
		// Boolean ite.
		l = b.muxGate(b.enc1(e.Kids[0]), b.enc1(e.Kids[1]), b.enc1(e.Kids[2]))
	default:
		panic(fmt.Sprintf("bitblast: cannot encode %v as boolean", e.Op))
	}
	b.memo[e] = []sat.Lit{l}
	return l
}

// pushNode/popNode maintain the encoding stack so newLit can attribute
// auxiliary variables to the expression node whose encoding allocates them.
// The gates of a node are emitted deterministically from its children's
// literals, so (node hash, ordinal) is a stable cross-worker key.
func (b *Blaster) pushNode(e *sym.Expr) {
	if b.space == nil {
		return
	}
	b.nodeHash = append(b.nodeHash, e.Hash())
	b.nodeSeq = append(b.nodeSeq, 0)
}

func (b *Blaster) popNode() {
	if b.space == nil {
		return
	}
	b.nodeHash = b.nodeHash[:len(b.nodeHash)-1]
	b.nodeSeq = b.nodeSeq[:len(b.nodeSeq)-1]
}

// andGate returns a literal g with g <-> x AND y.
func (b *Blaster) andGate(x, y sat.Lit) sat.Lit {
	if x == y {
		return x
	}
	if x == y.Not() {
		return b.constLit(false)
	}
	if x == b.ltrue {
		return y
	}
	if y == b.ltrue {
		return x
	}
	if x == b.ltrue.Not() || y == b.ltrue.Not() {
		return b.constLit(false)
	}
	g := b.newLit()
	b.addClause(x.Not(), y.Not(), g)
	b.addClause(x, g.Not())
	b.addClause(y, g.Not())
	return g
}

func (b *Blaster) orGate(x, y sat.Lit) sat.Lit {
	return b.andGate(x.Not(), y.Not()).Not()
}

// xorGate returns g with g <-> x XOR y.
func (b *Blaster) xorGate(x, y sat.Lit) sat.Lit {
	if x == y {
		return b.constLit(false)
	}
	if x == y.Not() {
		return b.constLit(true)
	}
	if x == b.ltrue {
		return y.Not()
	}
	if x == b.ltrue.Not() {
		return y
	}
	if y == b.ltrue {
		return x.Not()
	}
	if y == b.ltrue.Not() {
		return x
	}
	g := b.newLit()
	b.addClause(x.Not(), y.Not(), g.Not())
	b.addClause(x, y, g.Not())
	b.addClause(x.Not(), y, g)
	b.addClause(x, y.Not(), g)
	return g
}

// muxGate returns g with g <-> (c ? t : f).
func (b *Blaster) muxGate(c, t, f sat.Lit) sat.Lit {
	if t == f {
		return t
	}
	if c == b.ltrue {
		return t
	}
	if c == b.ltrue.Not() {
		return f
	}
	g := b.newLit()
	b.addClause(c.Not(), t.Not(), g)
	b.addClause(c.Not(), t, g.Not())
	b.addClause(c, f.Not(), g)
	b.addClause(c, f, g.Not())
	return g
}

// andAll conjoins a set of literals into one output literal.
func (b *Blaster) andAll(ls []sat.Lit) sat.Lit {
	out := make([]sat.Lit, 0, len(ls))
	for _, l := range ls {
		if l == b.ltrue {
			continue
		}
		if l == b.ltrue.Not() {
			return b.constLit(false)
		}
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		return b.constLit(true)
	case 1:
		return out[0]
	}
	g := b.newLit()
	long := make([]sat.Lit, 0, len(out)+1)
	for _, l := range out {
		b.addClause(l, g.Not()) // g -> l
		long = append(long, l.Not())
	}
	long = append(long, g) // all l -> g
	b.addClause(long...)
	return g
}

// adder builds a ripple-carry adder; if keepCarry is true the result has one
// extra bit (unused by sym, kept for the comparator).
func (b *Blaster) adder(x, y []sat.Lit, carry sat.Lit, keepCarry bool) []sat.Lit {
	n := len(x)
	out := make([]sat.Lit, n, n+1)
	c := carry
	for i := 0; i < n; i++ {
		xy := b.xorGate(x[i], y[i])
		out[i] = b.xorGate(xy, c)
		// carry_out = (x AND y) OR (c AND (x XOR y))
		c = b.orGate(b.andGate(x[i], y[i]), b.andGate(c, xy))
	}
	if keepCarry {
		out = append(out, c)
	}
	return out
}

// multiplier builds a shift-and-add multiplier, truncated to len(x) bits.
func (b *Blaster) multiplier(x, y []sat.Lit) []sat.Lit {
	n := len(x)
	acc := make([]sat.Lit, n)
	for i := range acc {
		acc[i] = b.constLit(false)
	}
	for i := 0; i < n; i++ {
		// partial = y[i] ? (x << i) : 0
		partial := make([]sat.Lit, n)
		for j := range partial {
			if j >= i {
				partial[j] = b.andGate(y[i], x[j-i])
			} else {
				partial[j] = b.constLit(false)
			}
		}
		acc = b.adder(acc, partial, b.constLit(false), false)
	}
	return acc
}

// ultGate returns a literal that is true iff x < y unsigned.
func (b *Blaster) ultGate(x, y []sat.Lit) sat.Lit {
	// Compare from MSB down: lt_i = (~x_i & y_i) | (xnor(x_i,y_i) & lt_{i-1})
	lt := b.constLit(false)
	for i := 0; i < len(x); i++ { // LSB to MSB so the final value is MSB-dominant
		eq := b.xorGate(x[i], y[i]).Not()
		bitLt := b.andGate(x[i].Not(), y[i])
		lt = b.orGate(bitLt, b.andGate(eq, lt))
	}
	return lt
}

func (b *Blaster) bitwise(e *sym.Expr, gate func(x, y sat.Lit) sat.Lit) []sat.Lit {
	x, y := b.enc(e.Kids[0]), b.enc(e.Kids[1])
	bits := make([]sat.Lit, len(x))
	for i := range bits {
		bits[i] = gate(x[i], y[i])
	}
	return bits
}
