package bitblast

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/soft-testing/soft/internal/sat"
	"github.com/soft-testing/soft/internal/sym"
)

// cnfFingerprint renders a blaster's full CNF (variable count, level-0
// units, clauses in insertion order) for byte comparison.
func cnfFingerprint(b *Blaster) string {
	n, clauses := b.S.DumpCNF()
	return fmt.Sprintf("nvars=%d clauses=%v", n, clauses)
}

// testExpr is a representative mixed expression touching several variables
// and operator classes, so the traversal order actually matters.
func testExpr() *sym.Expr {
	x := sym.Var("x", 16)
	y := sym.Var("y", 8)
	z := sym.Var("z", 4)
	return sym.LAnd(
		sym.Ult(sym.Add(x, sym.ZExt(y, 16)), sym.Const(16, 0x4000)),
		sym.LOr(
			sym.EqConst(sym.And(x, sym.Const(16, 0xff)), 0x12),
			sym.Eq(sym.ZExt(z, 8), y),
		),
		sym.Ne(sym.Mul(y, sym.Const(8, 3)), sym.Const(8, 0)),
	)
}

// TestCanonicalCNF is the tentpole regression: identical expressions must
// bit-blast to byte-identical CNF — same variable numbering, same clauses
// in the same order — no matter which worker (goroutine) encodes them.
func TestCanonicalCNF(t *testing.T) {
	ref := func() string {
		b := New()
		b.Assert(testExpr())
		return cnfFingerprint(b)
	}()

	const workers = 8
	got := make([]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := New()
			b.Assert(testExpr())
			got[w] = cnfFingerprint(b)
		}()
	}
	wg.Wait()
	for w, g := range got {
		if g != ref {
			t.Fatalf("worker %d emitted different CNF:\n--- ref\n%s\n--- got\n%s", w, ref, g)
		}
	}
}

// TestCanonicalCNFShared repeats the check for Space-attached blasters: on
// top of identical CNF, every worker must map the named variables to the
// same absolute indices (the clause-exchange invariant).
func TestCanonicalCNFShared(t *testing.T) {
	sp := NewSpace(0)
	// Register the variables deterministically before spawning workers, as
	// the engine's first path would.
	seed := NewShared(sp)
	seed.Assert(testExpr())
	ref := cnfFingerprint(seed)
	wantVars := map[string][]sat.Lit{}
	for n, bits := range seed.vars {
		wantVars[n] = bits
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := NewShared(sp)
			b.Assert(testExpr())
			if g := cnfFingerprint(b); g != ref {
				errs <- fmt.Errorf("shared blaster CNF differs:\n--- ref\n%s\n--- got\n%s", ref, g)
				return
			}
			for n, bits := range b.vars {
				if !reflect.DeepEqual(bits, wantVars[n]) {
					errs <- fmt.Errorf("variable %q numbered %v, want canonical %v", n, bits, wantVars[n])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSharedSpaceCrossBlasterNumbering: blasters encoding overlapping
// expressions agree on the canonical indices of everything they both
// touch — names registered by one blaster are numbered identically in
// later ones, and a still-synced blaster lazily mirrors indices the space
// handed out after its creation.
func TestSharedSpaceCrossBlasterNumbering(t *testing.T) {
	sp := NewSpace(0)
	first := NewShared(sp)
	first.Assert(sym.EqConst(sym.Var("a", 8), 1)) // registers a at base 1

	second := NewShared(sp)
	second.Assert(sym.EqConst(sym.Var("b", 8), 2)) // registers b after a's block

	if got := second.vars["b"][0].Var(); got <= 8 {
		t.Fatalf("b numbered from %d, want an index after a's canonical block 1..8", got)
	}
	// first is still synced, so touching b grows its mirror to the same
	// canonical base instead of numbering it privately.
	first.Assert(sym.EqConst(sym.Var("b", 8), 3))
	if got, want := first.vars["b"][0].Var(), second.vars["b"][0].Var(); got != want {
		t.Fatalf("b numbered %d in first blaster, %d in second", got, want)
	}
	// A third blaster sees both names at the same canonical indices.
	third := NewShared(sp)
	third.Assert(sym.LAnd(sym.EqConst(sym.Var("a", 8), 1), sym.EqConst(sym.Var("b", 8), 2)))
	if got := third.vars["a"][0].Var(); got != 1 {
		t.Fatalf("a numbered from %d, want canonical base 1", got)
	}
	if got, want := third.vars["b"][0].Var(), second.vars["b"][0].Var(); got != want {
		t.Fatalf("b numbered %d in third blaster, %d in second", got, want)
	}
	if !third.Solve() {
		t.Fatal("a==1 && b==2 must be satisfiable")
	}
	// All three blasters remain independently solvable and correct.
	if !first.Solve() {
		t.Fatal("a==1 && b==3 must be satisfiable")
	}
	if m := first.CanonicalModel(); m["a"] != 1 || m["b"] != 3 {
		t.Fatalf("first blaster model %v, want a=1 b=3", m)
	}
	if !second.Solve() {
		t.Fatal("b==2 must be satisfiable")
	}
}

// TestCanonicalModel: the canonical witness is the numerically smallest
// model (variables minimized in name order) and does not depend on the
// solving history that preceded its extraction.
func TestCanonicalModel(t *testing.T) {
	x := sym.Var("x", 8)
	y := sym.Var("y", 8)
	cond := sym.LAnd(
		sym.Ugt(x, sym.Const(8, 9)),
		sym.LOr(sym.EqConst(y, 200), sym.Ult(y, sym.Const(8, 100))),
	)

	b1 := New()
	b1.Assert(cond)
	if !b1.Solve() {
		t.Fatal("must be sat")
	}
	m1 := b1.CanonicalModel()
	if m1["x"] != 10 || m1["y"] != 0 {
		t.Fatalf("canonical model %v, want minimal x=10 y=0", m1)
	}

	// A blaster with a different history (extra feasibility probes that
	// steer VSIDS elsewhere) must still land on the same canonical model.
	b2 := New()
	b2.Assert(cond)
	b2.SolveAssuming(sym.EqConst(x, 77))
	b2.SolveAssuming(sym.EqConst(y, 200))
	if !b2.Solve() {
		t.Fatal("must be sat")
	}
	if m2 := b2.CanonicalModel(); !reflect.DeepEqual(m1, m2) {
		t.Fatalf("canonical models diverged: %v vs %v", m1, m2)
	}

	// The solver stays usable for further queries afterwards.
	if b1.SolveAssuming(sym.EqConst(x, 5)) {
		t.Fatal("x==5 contradicts x>9")
	}
	if !b1.SolveAssuming(sym.EqConst(x, 42)) {
		t.Fatal("x==42 must remain satisfiable")
	}
}

// TestSharedBlasterEndToEnd: two shared blasters with overlapping
// constraints solve correctly with clause exchange active, and answers
// match unshared blasters on the same constraints.
func TestSharedBlasterEndToEnd(t *testing.T) {
	x := sym.Var("x", 8)
	conds := []*sym.Expr{
		sym.LAnd(sym.Ult(x, sym.Const(8, 50)), sym.Ugt(x, sym.Const(8, 40))),
		sym.LAnd(sym.Ult(x, sym.Const(8, 50)), sym.Ugt(x, sym.Const(8, 60))),
		sym.EqConst(sym.And(x, sym.Const(8, 0x0f)), 0x05),
	}
	want := make([]bool, len(conds))
	for i, c := range conds {
		b := New()
		b.Assert(c)
		want[i] = b.Solve()
	}
	sp := NewSpace(0)
	for round := 0; round < 3; round++ {
		for i, c := range conds {
			b := NewShared(sp)
			b.Assert(c)
			if got := b.Solve(); got != want[i] {
				t.Fatalf("round %d cond %d: shared answer %t, want %t", round, i, got, want[i])
			}
			if got := b.Solve(); got != want[i] {
				t.Fatalf("round %d cond %d: re-solve flipped to %t", round, i, got)
			}
		}
	}
}
