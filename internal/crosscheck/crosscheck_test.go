package crosscheck

import (
	"strings"
	"testing"
	"time"

	"github.com/soft-testing/soft/internal/agents"
	"github.com/soft-testing/soft/internal/agents/ovs"
	"github.com/soft-testing/soft/internal/agents/refswitch"
	"github.com/soft-testing/soft/internal/group"
	"github.com/soft-testing/soft/internal/harness"
	"github.com/soft-testing/soft/internal/solver"
	"github.com/soft-testing/soft/internal/sym"
)

func grouped(t *testing.T, a agents.Agent, test string) *group.Result {
	t.Helper()
	tt, ok := harness.TestByName(test)
	if !ok {
		t.Fatalf("missing test %s", test)
	}
	r := harness.Explore(a, tt, harness.Options{WantModels: true})
	return group.Paths(r.Serialized())
}

func TestSelfCrosscheckIsClean(t *testing.T) {
	// An agent crosschecked against itself has identical groups
	// everywhere: zero inconsistencies (soundness smoke test).
	ga := grouped(t, refswitch.New(), "Stats Request")
	rep := Run(ga, ga, nil, 0)
	if len(rep.Inconsistencies) != 0 {
		t.Fatalf("self-check found %d inconsistencies", len(rep.Inconsistencies))
	}
}

func TestStatsRequestFindsSilentIgnores(t *testing.T) {
	// §5.1.2 "Statistics requests silently ignored": ref is silent where
	// OVS errors.
	ga := grouped(t, refswitch.New(), "Stats Request")
	gb := grouped(t, ovs.New(), "Stats Request")
	rep := Run(ga, gb, nil, 0)
	if len(rep.Inconsistencies) == 0 {
		t.Fatal("expected inconsistencies")
	}
	found := false
	for _, inc := range rep.Inconsistencies {
		if inc.ACanonical == "<silent>" && strings.Contains(inc.BCanonical, "ERROR") {
			found = true
		}
	}
	if !found {
		t.Fatal("missing the silent-vs-error inconsistency class")
	}
}

func TestPacketOutFindsControllerCrash(t *testing.T) {
	// §5.1.2: Packet Out to OFPP_CONTROLLER crashes the reference switch;
	// OVS handles it. The witness must actually select the controller
	// port (or the other ref crash trigger, set_vlan_vid).
	ga := grouped(t, refswitch.New(), "Packet Out")
	gb := grouped(t, ovs.New(), "Packet Out")
	rep := Run(ga, gb, nil, 0)
	found := false
	for _, inc := range rep.Inconsistencies {
		if inc.ACrashed && !inc.BCrashed {
			port := inc.Witness["po.out.port"]
			act := inc.Witness["po.act0.type"]
			if port == 0xfffd || act == 1 {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("controller-port / set-vlan crash inconsistency not found")
	}
}

func TestWitnessesAreRealInconsistencies(t *testing.T) {
	// No false positives (§3.4): every witness must satisfy both group
	// conditions, and the two groups' outputs must actually differ under
	// it.
	ga := grouped(t, refswitch.New(), "Stats Request")
	gb := grouped(t, ovs.New(), "Stats Request")
	rep := Run(ga, gb, nil, 0)
	for _, inc := range rep.Inconsistencies {
		condA := ga.Groups[inc.AIndex].Cond
		condB := gb.Groups[inc.BIndex].Cond
		if !sym.EvalBool(condA, inc.Witness) {
			t.Fatalf("witness does not satisfy agent A's condition: %v", inc.Witness)
		}
		if !sym.EvalBool(condB, inc.Witness) {
			t.Fatalf("witness does not satisfy agent B's condition: %v", inc.Witness)
		}
		// Same template => some expression pair must differ under the
		// witness.
		if inc.ATemplate == inc.BTemplate {
			ea, eb := ga.Groups[inc.AIndex].Exprs, gb.Groups[inc.BIndex].Exprs
			differ := false
			for k := range ea {
				if sym.Eval(ea[k], inc.Witness) != sym.Eval(eb[k], inc.Witness) {
					differ = true
					break
				}
			}
			if !differ {
				t.Fatalf("witness %v does not distinguish equal-shape traces", inc.Witness)
			}
		}
	}
}

func TestWitnessReplayDiffers(t *testing.T) {
	// End-to-end no-false-positive check: replay each witness concretely
	// through both agents and require different canonical traces.
	tt, _ := harness.TestByName("Packet Out")
	ga := grouped(t, refswitch.New(), "Packet Out")
	gb := grouped(t, ovs.New(), "Packet Out")
	rep := Run(ga, gb, nil, 0)
	if len(rep.Inconsistencies) == 0 {
		t.Fatal("expected inconsistencies")
	}
	checked := 0
	for _, inc := range rep.Inconsistencies {
		if checked >= 10 {
			break
		}
		checked++
		concrete := harness.Test{
			Name: "replay", MsgCount: tt.MsgCount,
			Inputs: func(harness.NewSymFn) []harness.Input {
				return tt.Inputs(func(name string, w int) *sym.Expr {
					return sym.Const(w, inc.Witness[name])
				})
			},
		}
		ra := harness.Explore(refswitch.New(), concrete, harness.Options{})
		rb := harness.Explore(ovs.New(), concrete, harness.Options{})
		if len(ra.Paths) != 1 || len(rb.Paths) != 1 {
			t.Fatalf("concrete replay forked: %d / %d paths", len(ra.Paths), len(rb.Paths))
		}
		ca := ra.Paths[0].Trace.Canonical()
		cb := rb.Paths[0].Trace.Canonical()
		if ca == cb {
			t.Fatalf("witness %v replays identically on both agents: %s", inc.Witness, ca)
		}
	}
}

func TestQueryBound(t *testing.T) {
	// §3.4: at most |RES_A| x |RES_B| solver queries.
	ga := grouped(t, refswitch.New(), "Stats Request")
	gb := grouped(t, ovs.New(), "Stats Request")
	rep := Run(ga, gb, nil, 0)
	if rep.Queries > len(ga.Groups)*len(gb.Groups) {
		t.Fatalf("%d queries exceed the %d bound", rep.Queries, len(ga.Groups)*len(gb.Groups))
	}
}

func TestBudgetMarksPartial(t *testing.T) {
	ga := grouped(t, refswitch.New(), "Packet Out")
	gb := grouped(t, ovs.New(), "Packet Out")
	rep := Run(ga, gb, solver.New(), time.Nanosecond)
	if !rep.Partial {
		t.Fatal("nanosecond budget must leave the check partial")
	}
}

func TestRootCausesFewerThanInconsistencies(t *testing.T) {
	// §5.2: one root cause manifests many times; template-pair dedup must
	// compress the report.
	ga := grouped(t, refswitch.New(), "Packet Out")
	gb := grouped(t, ovs.New(), "Packet Out")
	rep := Run(ga, gb, nil, 0)
	if len(rep.Inconsistencies) < 10 {
		t.Fatalf("expected a rich inconsistency set, got %d", len(rep.Inconsistencies))
	}
	if rc := rep.RootCauses(); rc >= len(rep.Inconsistencies) {
		t.Fatalf("root causes %d not fewer than inconsistencies %d", rc, len(rep.Inconsistencies))
	}
}

func TestInconsistencyString(t *testing.T) {
	inc := Inconsistency{AIndex: 1, BIndex: 2, ACanonical: "a\nb", BCanonical: "c"}
	s := inc.String()
	if !strings.Contains(s, "A#1") || !strings.Contains(s, "a | b") {
		t.Fatalf("rendering %q", s)
	}
}

func BenchmarkCrosscheckStatsRequest(b *testing.B) {
	tt, _ := harness.TestByName("Stats Request")
	ra := harness.Explore(refswitch.New(), tt, harness.Options{})
	rb := harness.Explore(ovs.New(), tt, harness.Options{})
	ga := group.Paths(ra.Serialized())
	gb := group.Paths(rb.Serialized())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(ga, gb, solver.New(), 0)
	}
}
