// Package crosscheck implements the second sub-stage of SOFT's phase 2
// (§3.4, "Intersecting input subspaces"): for each pair of result groups
// (i, j) from agents A and B with different outputs, ask the solver whether
// C_A(i) ∧ C_B(j) is satisfiable. A model is a concrete input on which the
// two agents demonstrably behave differently — an inconsistency, with the
// reproducing test case for free.
//
// When two groups share the same trace *shape* but embed different value
// expressions (e.g. one agent forwards with VLAN = x & 0xfff, the other
// with VLAN = x), the query additionally requires some embedded pair to
// evaluate differently, preserving the paper's no-false-positive property
// (§3.4) for symbolic outputs.
package crosscheck

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/soft-testing/soft/internal/group"
	"github.com/soft-testing/soft/internal/solver"
	"github.com/soft-testing/soft/internal/sym"
)

// Inconsistency is one discovered behavioral difference.
type Inconsistency struct {
	// AIndex and BIndex identify the differing groups.
	AIndex, BIndex int
	// ACanonical and BCanonical are the two observed behaviors.
	ACanonical, BCanonical string
	// ATemplate and BTemplate are the structural trace shapes; distinct
	// inconsistencies sharing a template pair usually share one root cause
	// (§5.2: 58 reported inconsistencies, 6 distinct root causes).
	ATemplate, BTemplate string
	// Witness is a concrete input triggering the difference — the test
	// case SOFT constructs per inconsistency (§2.3).
	Witness sym.Assignment
	// ACrashed/BCrashed flag abnormal termination on either side.
	ACrashed, BCrashed bool
}

func (inc Inconsistency) String() string {
	return fmt.Sprintf("inconsistency A#%d vs B#%d\n  A: %s\n  B: %s\n  witness: %v",
		inc.AIndex, inc.BIndex, indent(inc.ACanonical), indent(inc.BCanonical), inc.Witness)
}

func indent(s string) string {
	out := ""
	for i, line := range splitLines(s) {
		if i > 0 {
			out += " | "
		}
		out += line
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

// Report is the outcome of crosschecking two grouped results.
type Report struct {
	AgentA, AgentB  string
	Test            string
	Inconsistencies []Inconsistency
	// Queries counts solver calls; the §3.4 bound is
	// |RES_A| · |RES_B|.
	Queries int
	// Elapsed is the Table 3 "Inconsist. checking" time.
	Elapsed time.Duration
	// Partial reports that the time budget expired or the context was
	// cancelled before the cross product was exhausted (the paper's
	// ">28h / >=8" CS FlowMods row).
	Partial bool
	// Cancelled reports that the run's context was cancelled (Partial is
	// also set).
	Cancelled bool
	// SolverStats aggregates the solver work this crosscheck performed
	// (across every worker and cache clone): queries, cache hits, solve
	// time. Timing fields are wall-clock dependent; the counters are what
	// `soft diff -v` reports.
	SolverStats solver.Stats
}

// RootCauses returns the number of distinct (template A, template B)
// pairs among the inconsistencies — the root-cause estimate of §5.2.
func (r *Report) RootCauses() int {
	seen := map[[2]string]bool{}
	for _, inc := range r.Inconsistencies {
		seen[[2]string{inc.ATemplate, inc.BTemplate}] = true
	}
	return len(seen)
}

// diffCond rebuilds the trace difference condition from the grouped
// (template, exprs) pairs — the serialized mirror of trace.DiffCond.
func diffCond(a, b *group.Group) *sym.Expr {
	if a.Template != b.Template || len(a.Exprs) != len(b.Exprs) {
		return sym.Bool(true)
	}
	var dis []*sym.Expr
	for i := range a.Exprs {
		if sym.Equal(a.Exprs[i], b.Exprs[i]) {
			continue
		}
		if a.Exprs[i].Width() != b.Exprs[i].Width() {
			return sym.Bool(true)
		}
		dis = append(dis, sym.Ne(a.Exprs[i], b.Exprs[i]))
	}
	if len(dis) == 0 {
		return sym.Bool(false)
	}
	return sym.LOr(dis...)
}

// Opts tunes a crosscheck run.
type Opts struct {
	// Solver runs the satisfiability queries (nil gets a fresh one). It is
	// shared by all workers; solver.Solver is safe for concurrent use.
	Solver *solver.Solver
	// Budget, when non-zero, stops the cross product early and marks the
	// report partial.
	Budget time.Duration
	// Workers fans the independent (i, j) queries out over this many
	// goroutines (0 = GOMAXPROCS, 1 = sequential).
	Workers int
	// PrivateCaches gives each worker a copy-on-write Clone of the solver
	// instead of sharing its sharded cache: zero cross-worker contention,
	// but structurally equal queries claimed by different workers are
	// solved once per worker rather than once per run. The report is
	// identical either way; only the work distribution changes.
	PrivateCaches bool
	// Progress, when set, is called as each group pair is claimed, with
	// (done, total) counts. With Workers > 1 it runs on worker goroutines
	// and must be safe for concurrent use.
	Progress func(done, total int)
}

// Run crosschecks two grouped phase-1 results (which must come from the
// same test, so the symbolic input variables coincide). A non-zero budget
// stops the cross product early and marks the report partial.
func Run(a, b *group.Result, s *solver.Solver, budget time.Duration) *Report {
	return RunOpts(context.Background(), a, b, Opts{Solver: s, Budget: budget, Workers: 1})
}

// RunParallel is Run with the solver queries of the cross product fanned
// out over the given number of workers (0 = GOMAXPROCS).
func RunParallel(a, b *group.Result, s *solver.Solver, budget time.Duration, workers int) *Report {
	return RunOpts(context.Background(), a, b, Opts{Solver: s, Budget: budget, Workers: workers})
}

// RunOpts is the full-control entry point: crosscheck a against b under
// ctx. Each (i, j) group pair is an independent satisfiability query, so
// workers share only the solver's query cache. Inconsistencies are
// reported in (i, j) row-major order — the same order a sequential run
// produces — and because the solver is deterministic per query, a full
// (non-partial) parallel report is identical to a sequential one.
// Cancelling ctx stops the scan at the next pair boundary and marks the
// report Partial and Cancelled.
func RunOpts(ctx context.Context, a, b *group.Result, o Opts) *Report {
	s := o.Solver
	if s == nil {
		s = solver.New()
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	budget := o.Budget
	start := time.Now()
	rep := &Report{AgentA: a.Agent, AgentB: b.Agent, Test: a.Test}

	nb := len(b.Groups)
	total := len(a.Groups) * nb
	if total == 0 {
		rep.Elapsed = time.Since(start)
		return rep
	}
	if workers > total {
		workers = total
	}

	// Pairs are indexed row-major: pair k = (k/nb, k%nb). Workers claim the
	// next unclaimed pair, so with one worker the scan order — and the
	// budget cutoff prefix — matches the historical sequential loop.
	statsBefore := s.Stats()
	workerSolvers := make([]*solver.Solver, workers)
	found := make([]*Inconsistency, total)
	var next, queries, done atomic.Int64
	var partial, cancelled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		ws := s
		if o.PrivateCaches && workers > 1 {
			ws = s.Clone() // copy-on-write: O(shards), keeps the warm cache
		}
		workerSolvers[w] = ws
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1) - 1)
				if k >= total {
					return
				}
				if ctx.Err() != nil {
					cancelled.Store(true)
					partial.Store(true)
					return
				}
				if budget > 0 && time.Since(start) > budget {
					partial.Store(true)
					return
				}
				if o.Progress != nil {
					o.Progress(int(done.Add(1)), total)
				}
				i, j := k/nb, k%nb
				ga, gb := &a.Groups[i], &b.Groups[j]
				if ga.Canonical == gb.Canonical {
					// Identical output results are excluded from the cross
					// product (§2.3).
					continue
				}
				diff := diffCond(ga, gb)
				if diff.IsFalse() {
					continue
				}
				queries.Add(1)
				res, model := ws.Check(ga.Cond, gb.Cond, diff)
				if res != solver.Sat {
					continue
				}
				found[k] = &Inconsistency{
					AIndex:     i,
					BIndex:     j,
					ACanonical: ga.Canonical,
					BCanonical: gb.Canonical,
					ATemplate:  ga.Template,
					BTemplate:  gb.Template,
					Witness:    model,
					ACrashed:   ga.Crashed,
					BCrashed:   gb.Crashed,
				}
			}
		}()
	}
	wg.Wait()

	for _, inc := range found {
		if inc != nil {
			rep.Inconsistencies = append(rep.Inconsistencies, *inc)
		}
	}
	rep.Queries = int(queries.Load())
	rep.Partial = partial.Load()
	rep.Cancelled = cancelled.Load()
	rep.SolverStats = s.Stats().Sub(statsBefore)
	for _, ws := range workerSolvers {
		if ws != s {
			rep.SolverStats.Add(ws.Stats()) // clones start from zeroed stats
		}
	}
	rep.Elapsed = time.Since(start)
	return rep
}
