package sat

import (
	"sync"
	"testing"
)

// TestExchangePackRoundTrip pins the slot encoding: every packed clause is
// non-zero (zero marks an unpublished slot) and round-trips exactly.
func TestExchangePackRoundTrip(t *testing.T) {
	cases := []struct {
		a, b Lit
		unit bool
	}{
		{MkLit(0, false), 0, true},
		{MkLit(0, true), 0, true},
		{MkLit(0, false), MkLit(0, true), false},
		{MkLit(7, true), MkLit(123, false), false},
		{MkLit(1<<20, false), MkLit(3, true), false},
	}
	for _, c := range cases {
		v := packClause(c.a, c.b, c.unit)
		if v == 0 {
			t.Fatalf("pack(%v,%v,%t) = 0, collides with the empty-slot marker", c.a, c.b, c.unit)
		}
		a, b, unit := unpackClause(v)
		if a != c.a || unit != c.unit || (!unit && b != c.b) {
			t.Fatalf("round trip (%v,%v,%t) -> (%v,%v,%t)", c.a, c.b, c.unit, a, b, unit)
		}
	}
}

// TestExchangeCollect: a reader sees every published clause exactly once
// while keeping its cursor, and a lapped reader resumes from the oldest
// live slot instead of re-reading overwritten history.
func TestExchangeCollect(t *testing.T) {
	x := NewExchange(4)
	x.publish(MkLit(1, false), MkLit(2, true), false)
	x.publish(MkLit(3, false), 0, true)

	var got [][3]int
	cur := x.collect(0, func(a, b Lit, unit bool) {
		u := 0
		if unit {
			u = 1
		}
		got = append(got, [3]int{int(a), int(b), u})
	})
	if len(got) != 2 {
		t.Fatalf("collected %d clauses, want 2", len(got))
	}
	if cur != 2 {
		t.Fatalf("cursor = %d, want 2", cur)
	}
	// Nothing new: no visits, cursor unchanged.
	n := 0
	if cur = x.collect(cur, func(a, b Lit, unit bool) { n++ }); n != 0 || cur != 2 {
		t.Fatalf("idle collect visited %d, cursor %d", n, cur)
	}
	// Overflow the ring: a stale cursor must resume at head-size, not replay.
	for i := 0; i < 10; i++ {
		x.publish(MkLit(10+i, false), 0, true)
	}
	n = 0
	x.collect(cur, func(a, b Lit, unit bool) { n++ })
	if n != 4 {
		t.Fatalf("lapped reader visited %d clauses, want ring size 4", n)
	}
}

// TestExchangeConcurrent hammers the ring from parallel publishers and
// readers under -race; every observed slot must decode to a clause some
// publisher actually sent.
func TestExchangeConcurrent(t *testing.T) {
	x := NewExchange(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				x.publish(MkLit(w*1000+i, i%2 == 0), MkLit(i, false), false)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			var cur uint64
			for i := 0; i < 200; i++ {
				cur = x.collect(cur, func(a, b Lit, unit bool) {
					if unit {
						t.Error("no unit clauses were published")
					}
					if a.Var()%1000 >= 500 {
						t.Errorf("decoded clause %v %v never published", a, b)
					}
				})
			}
		}()
	}
	wg.Wait()
	if st := x.Stats(); st.Exported != 2000 {
		t.Fatalf("Exported = %d, want 2000", st.Exported)
	}
}

// TestSolverClauseSharing: two solvers over an identically numbered
// variable space exchange a short clause; the importer validates it against
// its own database, adopting it only when implied locally.
func TestSolverClauseSharing(t *testing.T) {
	x := NewExchange(16)

	// Exporter: variables 0..3, with constraints forcing a conflict that
	// learns a short clause over the shared prefix.
	a := New()
	for i := 0; i < 4; i++ {
		a.NewVar()
	}
	a.Share(x, 4)
	// (0 | 1) & (0 | !1) & (!0 | 2) & (!0 | !2 | 3) & (!0 | !2 | !3)
	a.AddClause(MkLit(0, false), MkLit(1, false))
	a.AddClause(MkLit(0, false), MkLit(1, true))
	a.AddClause(MkLit(0, true), MkLit(2, false))
	a.AddClause(MkLit(0, true), MkLit(2, true), MkLit(3, false))
	a.AddClause(MkLit(0, true), MkLit(2, true), MkLit(3, true))
	if a.Solve() {
		t.Fatal("exporter formula should be unsat")
	}
	if x.Stats().Exported == 0 {
		t.Fatal("unsat proof learned no shareable short clauses")
	}

	// Importer with the same clauses: everything in the ring is implied, so
	// validation adopts at least one clause and answers stay correct.
	b := New()
	for i := 0; i < 4; i++ {
		b.NewVar()
	}
	b.Share(x, 4)
	b.AddClause(MkLit(0, false), MkLit(1, false))
	b.AddClause(MkLit(0, false), MkLit(1, true))
	b.AddClause(MkLit(0, true), MkLit(2, false))
	b.AddClause(MkLit(0, true), MkLit(2, true), MkLit(3, false))
	b.AddClause(MkLit(0, true), MkLit(2, true), MkLit(3, true))
	if b.Solve() {
		t.Fatal("importer formula should be unsat")
	}

	// A solver whose database CONTRADICTS the ring's clauses must reject
	// them and keep its own (satisfiable) answers intact.
	c := New()
	for i := 0; i < 4; i++ {
		c.NewVar()
	}
	c.Share(x, 4)
	c.AddClause(MkLit(0, false)) // var0 = true, the opposite of a's lesson
	if !c.Solve() {
		t.Fatal("contradicting importer must stay sat")
	}
	if !c.Value(0) {
		t.Fatal("imported clauses corrupted the model")
	}
}

// TestImportRejectionPreservesModel pins the model-transparency invariant
// of the import path: a rejected candidate's validation solve finds a model
// (that is what rejection means), and that throwaway model must not leak
// into the solver's snapshot — the canonical-model minimizer relies on a
// failed Solve leaving the previous model intact.
func TestImportRejectionPreservesModel(t *testing.T) {
	x := NewExchange(16)
	s := New()
	for i := 0; i < 3; i++ {
		s.NewVar()
	}
	s.Share(x, 3)
	s.AddClause(MkLit(0, false)) // v0 = true
	if !s.Solve() {
		t.Fatal("must be sat")
	}
	if s.Value(1) || s.Value(2) {
		t.Fatal("unconstrained vars must default to false in the model")
	}
	// A candidate not implied by s's database: (v1 | v2). Validation solves
	// DB ∧ ¬v1 ∧ ¬v2, finds it SAT, and rejects — without restoration that
	// solve's model (v1/v2 still false here, so use the inverse clause
	// whose validation assumes v1 and v2 TRUE) would leak.
	x.publish(MkLit(1, true), MkLit(2, true), false) // (¬v1 | ¬v2): validation assumes v1, v2
	if !s.Solve(MkLit(0, false)) {
		t.Fatal("compatible assumption must stay sat")
	}
	// Now fail a solve outright: assuming ¬v0 contradicts the unit clause,
	// and a fresh non-implied candidate sits in the ring so the failing
	// Solve's import pass runs a rejecting validation (whose throwaway SAT
	// model sets v1 true). The model from the last successful solve must
	// survive both the rejection and the failure untouched.
	x.publish(MkLit(1, true), MkLit(0, true), false) // (¬v1 | ¬v0): validation assumes v1
	before := []bool{s.Value(0), s.Value(1), s.Value(2)}
	if s.Solve(MkLit(0, true)) {
		t.Fatal("assuming ¬v0 must be unsat")
	}
	after := []bool{s.Value(0), s.Value(1), s.Value(2)}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("failed solve changed model var %d: %v -> %v", i, before[i], after[i])
		}
	}
	if st := x.Stats(); st.Imported != 0 {
		t.Fatalf("non-implied clause was imported (%d)", st.Imported)
	}
}

// TestNoSelfImport: a solver must not round-trip its own exports — the
// clause is already in its database, and re-validating it would waste a
// solve and inflate the import counters.
func TestNoSelfImport(t *testing.T) {
	x := NewExchange(16)
	s := New()
	s.NewVar()
	s.NewVar()
	s.Share(x, 2)
	// Assuming v0 propagates v1 and ¬v1: the conflict learns the unit ¬v0
	// (exported), while the formula itself stays satisfiable.
	s.AddClause(MkLit(0, true), MkLit(1, false))
	s.AddClause(MkLit(0, true), MkLit(1, true))
	if s.Solve(MkLit(0, false)) {
		t.Fatal("assuming v0 must fail")
	}
	if x.Stats().Exported == 0 {
		t.Fatal("conflict learned no shareable clause")
	}
	// The ring holds only s's own lesson; the next solve must not
	// round-trip it back in.
	if !s.Solve() {
		t.Fatal("formula must be satisfiable without the assumption")
	}
	if st := x.Stats(); st.Imported != 0 {
		t.Fatalf("solver imported %d of its own clauses", st.Imported)
	}
	if s.Stats.ClauseImports != 0 {
		t.Fatalf("ClauseImports = %d on self-exports", s.Stats.ClauseImports)
	}
}

// TestSolverSharingUnaffectedAnswers: for a pool of random-ish formulas,
// answers with sharing on must equal answers with sharing off.
func TestSolverSharingUnaffectedAnswers(t *testing.T) {
	build := func(attach *Exchange) []bool {
		var outs []bool
		for f := 0; f < 8; f++ {
			s := New()
			for i := 0; i < 6; i++ {
				s.NewVar()
			}
			if attach != nil {
				s.Share(attach, 6)
			}
			// Formula f: chain implications plus an f-dependent unit.
			for i := 0; i < 5; i++ {
				s.AddClause(MkLit(i, true), MkLit(i+1, false))
			}
			s.AddClause(MkLit(0, f%2 == 0))
			s.AddClause(MkLit(5, f%3 == 0), MkLit(4, false))
			outs = append(outs, s.Solve())
		}
		return outs
	}
	plain := build(nil)
	shared := build(NewExchange(32))
	for i := range plain {
		if plain[i] != shared[i] {
			t.Fatalf("formula %d: sharing flipped the answer %t -> %t", i, plain[i], shared[i])
		}
	}
}
