package sat

import (
	"math/rand"
	"testing"
)

// Property tests for the incremental idiom the bitblast session layer is
// built on: one persistent solver answering a stream of assumption-stack
// queries while its clause database grows, checked against a from-scratch
// solver (and brute force) on every single call.

// litOf converts the DIMACS-style ±(v) convention to a Lit.
func litOf(l int) Lit {
	if l > 0 {
		return MkLit(l-1, false)
	}
	return MkLit(-l-1, true)
}

// addClauses loads more clauses into an existing solver; false when
// AddClause derived level-0 unsatisfiability.
func addClauses(s *Solver, clauses [][]int) bool {
	for _, cl := range clauses {
		lits := make([]Lit, len(cl))
		for i, l := range cl {
			lits[i] = litOf(l)
		}
		if !s.AddClause(lits...) {
			return false
		}
	}
	return true
}

// randomStack draws a random assumption stack of up to 4 literals, also
// returned as unit clauses for brute force.
func randomStack(rng *rand.Rand, nVars int) (asm []Lit, units [][]int) {
	for k := 0; k < rng.Intn(5); k++ {
		v := 1 + rng.Intn(nVars)
		if rng.Intn(2) == 1 {
			v = -v
		}
		asm = append(asm, litOf(v))
		units = append(units, []int{v})
	}
	return asm, units
}

// TestIncrementalAssumptionStacksMatchFresh drives one persistent solver
// through interleaved clause additions and random assumption-stack solves.
// After every solve the persistent answer must equal (a) a fresh solver
// built from exactly the clauses added so far, solved once under the same
// stack, and (b) brute-force enumeration of those clauses plus the stack
// as units. This is the exact contract the bitblast session layer assumes:
// growing the clause database between assumption solves never corrupts
// later answers, and learned clauses (resolvents of the database only)
// never leak an assumption into the permanent state.
func TestIncrementalAssumptionStacksMatchFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(20120612))
	n := 120
	if testing.Short() {
		n = 30
	}
	for i := 0; i < n; i++ {
		nVars := 1 + rng.Intn(8)
		inc := New()
		for v := 0; v < nVars; v++ {
			inc.NewVar()
		}
		var sofar [][]int
		alive := true
		for round := 0; round < 6; round++ {
			// Grow the database by a random batch of clauses.
			nNew := rng.Intn(8)
			batch := make([][]int, nNew)
			for j := range batch {
				cl := make([]int, 1+rng.Intn(3))
				for k := range cl {
					v := 1 + rng.Intn(nVars)
					if rng.Intn(2) == 1 {
						v = -v
					}
					cl[k] = v
				}
				batch[j] = cl
			}
			sofar = append(sofar, batch...)
			if alive && !addClauses(inc, batch) {
				alive = false
			}
			if !alive {
				if bruteForceSat(nVars, sofar) {
					t.Fatalf("instance %d round %d: incremental AddClause derived unsat, brute force says sat: %v",
						i, round, sofar)
				}
				break
			}
			// Several assumption-stack queries against this database.
			for trial := 0; trial < 3; trial++ {
				asm, units := randomStack(rng, nVars)
				want := bruteForceSat(nVars, append(append([][]int{}, sofar...), units...))
				if got := inc.Solve(asm...); got != want {
					t.Fatalf("instance %d round %d trial %d: incremental(asm=%v)=%v brute=%v clauses=%v",
						i, round, trial, asm, got, want, sofar)
				}
				fresh, ok := buildSolver(nVars, sofar)
				freshGot := ok && fresh.Solve(asm...)
				if freshGot != want {
					t.Fatalf("instance %d round %d trial %d: fresh(asm=%v)=%v brute=%v clauses=%v",
						i, round, trial, asm, freshGot, want, sofar)
				}
			}
		}
	}
}

// TestIncrementalAssumptionStacksWithExchange is the same property with a
// learned-clause exchange in the loop: two persistent solvers over the
// same instance share an exchange, so each solve may import resolvents the
// other learned under a different assumption stack. Imports are re-derived
// facts about the shared clause database — answers must stay exactly those
// of a fresh, exchange-free solver.
func TestIncrementalAssumptionStacksWithExchange(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	n := 80
	if testing.Short() {
		n = 20
	}
	for i := 0; i < n; i++ {
		nVars := 4 + rng.Intn(6)
		nClauses := 4 + rng.Intn(30)
		clauses := make([][]int, nClauses)
		for j := range clauses {
			cl := make([]int, 1+rng.Intn(3))
			for k := range cl {
				v := 1 + rng.Intn(nVars)
				if rng.Intn(2) == 1 {
					v = -v
				}
				cl[k] = v
			}
			clauses[j] = cl
		}
		x := NewExchange(64)
		a, okA := buildSolver(nVars, clauses)
		b, okB := buildSolver(nVars, clauses)
		if !okA || !okB {
			if okA != okB {
				t.Fatalf("instance %d: AddClause verdicts diverged on identical input", i)
			}
			continue
		}
		a.Share(x, nVars)
		b.Share(x, nVars)
		for trial := 0; trial < 8; trial++ {
			s := a
			if trial%2 == 1 {
				s = b
			}
			asm, units := randomStack(rng, nVars)
			want := bruteForceSat(nVars, append(append([][]int{}, clauses...), units...))
			if got := s.Solve(asm...); got != want {
				t.Fatalf("instance %d trial %d: shared(asm=%v)=%v brute=%v clauses=%v",
					i, trial, asm, got, want, clauses)
			}
		}
	}
}
