// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver over propositional CNF. It is the decision-procedure core on which
// the bitvector solver (the reproduction's STP substitute) is built.
//
// Features: two-watched-literal unit propagation, VSIDS-style decision
// activity with exponential decay, first-UIP conflict analysis with clause
// learning and non-chronological backjumping, Luby-sequence restarts, and
// phase saving. The solver is deterministic: the same clause set always
// produces the same answer and, when satisfiable, the same model.
package sat

import "fmt"

// Lit is a literal: variable v (0-based) as positive literal 2v, negative
// literal 2v+1.
type Lit int32

// MkLit builds the literal for variable v with the given sign (false =
// positive, true = negated).
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the variable index of l.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether l is a negated literal.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complement literal.
func (l Lit) Not() Lit { return l ^ 1 }

func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("-%d", l.Var()+1)
	}
	return fmt.Sprintf("%d", l.Var()+1)
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

type clause struct {
	lits    []Lit
	learnt  bool
	act     float64
	deleted bool
}

type watcher struct {
	c       *clause
	blocker Lit // quick check: if blocker true, clause already satisfied
}

// Stats counts solver work, reported by the evaluation harness.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Learnt       int64
	Restarts     int64
	// ClauseExports/ClauseImports count learned clauses this solver
	// published to and adopted from its clause exchange.
	ClauseExports int64
	ClauseImports int64
}

// Solver is a CDCL SAT solver. The zero value is not usable; create with New.
type Solver struct {
	nVars   int
	clauses []*clause
	learnts []*clause
	watches [][]watcher // indexed by literal

	assign   []lbool // by variable
	level    []int32 // decision level of assignment
	reason   []*clause
	trail    []Lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	order    *varHeap
	phase    []bool // saved phases
	// touched marks variables that occur in at least one clause. Shared
	// canonical numbering (bitblast.Space) leaves index gaps for variables
	// other workers own, and unconstrained gap variables must not soak up
	// branch decisions; an untouched variable can never affect
	// satisfiability, and it reads as false from Value either way.
	touched []bool

	seen          []bool
	model         []lbool // snapshot of the last satisfying assignment
	unsatisfiable bool

	// Clause-sharing state (nil exch = sharing off). shareLimit is the
	// number of leading variables whose numbering is canonical across every
	// solver attached to the same Exchange; only clauses confined to that
	// region cross solver boundaries. importing suppresses recursive imports
	// while a candidate clause's implication check is itself solving.
	exch       *Exchange
	shareLimit int
	exCursor   uint64
	importing  bool
	// sharedSeen records the packed form of every clause this solver has
	// exported or already processed as an import candidate: a clause it
	// exported is in its own database, and re-validating a value twice
	// (two workers publishing the same lesson) is wasted work either way.
	sharedSeen map[uint64]struct{}

	Stats Stats
}

// New creates a solver with no variables or clauses.
func New() *Solver {
	s := &Solver{varInc: 1}
	s.order = &varHeap{s: s}
	return s
}

// NewVar adds a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := s.nVars
	s.nVars++
	s.watches = append(s.watches, nil, nil)
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.seen = append(s.seen, false)
	s.touched = append(s.touched, false)
	s.order.push(v)
	return v
}

// markTouched records that v occurs in a clause, re-entering it into the
// decision heap if a previous pickBranchVar discarded it as unconstrained.
func (s *Solver) markTouched(v int) {
	if !s.touched[v] {
		s.touched[v] = true
		if s.assign[v] == lUndef {
			s.order.push(v)
		}
	}
}

// NumVars returns the number of variables created.
func (s *Solver) NumVars() int { return s.nVars }

func (s *Solver) litValue(l Lit) lbool {
	v := s.assign[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Neg() {
		if v == lTrue {
			return lFalse
		}
		return lTrue
	}
	return v
}

// AddClause adds a clause over existing variables. It returns false if the
// solver is already known unsatisfiable (e.g. after adding an empty clause
// or two conflicting unit clauses).
func (s *Solver) AddClause(lits ...Lit) bool {
	if s.unsatisfiable {
		return false
	}
	if len(s.trailLim) != 0 {
		panic("sat: AddClause called during solving")
	}
	// Normalize: drop duplicate and false literals, detect tautology and
	// already-satisfied clauses at level 0.
	norm := make([]Lit, 0, len(lits))
	for _, l := range lits {
		if l.Var() >= s.nVars {
			panic(fmt.Sprintf("sat: literal %v references unknown variable", l))
		}
		switch s.litValue(l) {
		case lTrue:
			return true // satisfied at level 0
		case lFalse:
			continue // drop
		}
		dup, taut := false, false
		for _, m := range norm {
			if m == l {
				dup = true
				break
			}
			if m == l.Not() {
				taut = true
				break
			}
		}
		if taut {
			return true
		}
		if !dup {
			norm = append(norm, l)
		}
	}
	for _, l := range norm {
		s.markTouched(l.Var())
	}
	switch len(norm) {
	case 0:
		s.unsatisfiable = true
		return false
	case 1:
		s.uncheckedEnqueue(norm[0], nil)
		if s.propagate() != nil {
			s.unsatisfiable = true
			return false
		}
		return true
	}
	c := &clause{lits: norm}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], watcher{c, c.lits[1]})
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c, c.lits[0]})
}

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Neg() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.phase[v] = !l.Neg()
	s.trail = append(s.trail, l)
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// propagate performs unit propagation; returns a conflicting clause or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Stats.Propagations++
		ws := s.watches[p]
		kept := ws[:0]
		var confl *clause
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if confl != nil {
				kept = append(kept, w)
				continue
			}
			if s.litValue(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := w.c
			if c.deleted {
				continue
			}
			// Ensure the false literal (p.Not()) is at position 1.
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.litValue(first) == lTrue {
				kept = append(kept, watcher{c, first})
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.litValue(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c, first})
					found = true
					break
				}
			}
			if found {
				continue // watcher moved
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{c, first})
			if s.litValue(first) == lFalse {
				confl = c
				s.qhead = len(s.trail)
			} else {
				s.uncheckedEnqueue(first, c)
			}
		}
		s.watches[p] = kept
		if confl != nil {
			return confl
		}
	}
	return nil
}

func (s *Solver) varBump(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

// analyze performs first-UIP conflict analysis. It returns the learnt
// clause (with the asserting literal first) and the backjump level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{0} // slot 0 reserved for the asserting literal
	pathC := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	for {
		for _, q := range confl.lits {
			if p != -1 && q == p {
				continue
			}
			v := q.Var()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				s.varBump(v)
				if int(s.level[v]) >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Pick next literal on the trail to expand.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = false
		pathC--
		if pathC == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Not()

	// Clause minimization: drop literals implied by the rest. out must not
	// alias learnt: the seen flags of dropped literals are cleared from the
	// original learnt slice below, and an in-place filter would overwrite
	// them before that happens.
	out := make([]Lit, 1, len(learnt))
	out[0] = learnt[0]
	for _, l := range learnt[1:] {
		if !s.redundant(l) {
			out = append(out, l)
		}
	}
	for _, l := range learnt {
		s.seen[l.Var()] = false
	}

	// Backjump level = max level among non-asserting literals.
	bj := 0
	if len(out) > 1 {
		maxI := 1
		for i := 2; i < len(out); i++ {
			if s.level[out[i].Var()] > s.level[out[maxI].Var()] {
				maxI = i
			}
		}
		out[1], out[maxI] = out[maxI], out[1]
		bj = int(s.level[out[1].Var()])
	}
	return out, bj
}

// redundant reports whether literal l in a learnt clause is implied by the
// remaining clause literals (local minimization: its reason's literals are
// all seen).
func (s *Solver) redundant(l Lit) bool {
	r := s.reason[l.Var()]
	if r == nil {
		return false
	}
	for _, q := range r.lits {
		if q.Var() == l.Var() {
			continue
		}
		if !s.seen[q.Var()] && s.level[q.Var()] > 0 {
			return false
		}
	}
	return true
}

func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[level]; i-- {
		v := s.trail[i].Var()
		s.assign[v] = lUndef
		s.reason[v] = nil
		s.order.push(v)
	}
	s.trail = s.trail[:s.trailLim[level]]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) pickBranchVar() int {
	for {
		v, ok := s.order.pop()
		if !ok {
			return -1
		}
		// Unconstrained variables (index gaps under shared numbering, or
		// input bits no clause mentions) are skipped: no clause can become
		// unsatisfied by leaving them unassigned, and they default to false
		// in the model either way. markTouched re-enters them if a later
		// AddClause makes them relevant.
		if s.assign[v] == lUndef && s.touched[v] {
			return v
		}
	}
}

// luby computes the Luby restart sequence value for index i (1-based):
// 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
func luby(i int64) int64 {
	for k := uint(1); ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i < (1<<k)-1 {
			i -= (1 << (k - 1)) - 1
			k = 0 // restart subsequence search for the reduced index
		}
	}
}

// Share attaches the solver to a clause exchange. sharedVars is the size of
// the canonically numbered variable prefix (bitblast.Space guarantees every
// attached solver gives those indices the same meaning); only clauses whose
// literals all lie below it are exported or imported. The cursor starts at
// zero so a freshly attached solver first adopts whatever the ring already
// holds.
func (s *Solver) Share(x *Exchange, sharedVars int) {
	s.exch = x
	s.shareLimit = sharedVars
	s.sharedSeen = make(map[uint64]struct{})
}

// SetShareLimit widens (or narrows) the canonically numbered prefix. The
// bitblast layer grows it as the solver's variable space is lazily mirrored
// onto the shared numbering, and freezes it if the local layout diverges.
func (s *Solver) SetShareLimit(sharedVars int) { s.shareLimit = sharedVars }

// shareable reports whether a learnt clause may be published: at most two
// literals, all over the canonically numbered shared prefix.
func (s *Solver) shareable(lits []Lit) bool {
	if s.exch == nil || len(lits) == 0 || len(lits) > 2 {
		return false
	}
	for _, l := range lits {
		if l.Var() >= s.shareLimit {
			return false
		}
	}
	return true
}

// markShared records a packed clause as seen by this solver; false means it
// was already seen (own export, duplicate publish, or processed candidate).
func (s *Solver) markShared(p uint64) bool {
	if _, dup := s.sharedSeen[p]; dup {
		return false
	}
	s.sharedSeen[p] = struct{}{}
	return true
}

// importShared drains the exchange and adopts the candidate clauses that
// survive validation. A candidate learnt elsewhere is implied by the
// EXPORTER's clause database — its path condition — not necessarily by this
// solver's, so each one is re-established locally before adoption:
//
//  1. Fast check against this solver's own level-0 assignment: a clause
//     already satisfied at level 0 is redundant (skip); one with every
//     literal false contradicts this solver's forced assignments (reject).
//  2. Implication check: assume the negation of every literal and solve.
//     UNSAT means DB ∧ ¬C is contradictory, i.e. the clause is a logical
//     consequence of this solver's own database — adopting it can never
//     change any answer, only shortcut future conflicts. SAT means the
//     clause is not locally valid and is rejected.
//
// Runs only at decision level 0, between queries. The validation solves
// overwrite the model snapshot on SAT (a rejected candidate), so the
// pre-import model is restored on exit: callers like the canonical-model
// minimizer depend on a failed outer Solve leaving the previous model
// intact, and imports must be transparent to that invariant.
func (s *Solver) importShared() {
	if s.exch == nil || s.importing || s.unsatisfiable {
		return
	}
	if s.exch.head.Load() == s.exCursor {
		return // nothing new on the ring: keep the hot path allocation-free
	}
	s.importing = true
	savedModel := append([]lbool(nil), s.model...)
	defer func() {
		s.model = savedModel
		s.importing = false
	}()
	s.exCursor = s.exch.collect(s.exCursor, func(a, b Lit, unit bool) {
		if s.unsatisfiable {
			return
		}
		if p := packClause(a, b, unit); !s.markShared(p) {
			return // exported by us, or already processed: present or rejected once
		}
		lits := []Lit{a}
		if !unit {
			lits = append(lits, b)
		}
		neg := make([]Lit, 0, 2)
		for _, l := range lits {
			if l.Var() >= s.shareLimit || l.Var() >= s.nVars {
				return
			}
			switch s.litValue(l) {
			case lTrue:
				return // already satisfied at level 0: redundant here
			case lUndef:
				neg = append(neg, l.Not())
			}
		}
		if len(neg) == 0 {
			// Every literal is false under this solver's forced assignments:
			// the clause contradicts this path, so it cannot be adopted.
			s.exch.rejected.Add(1)
			return
		}
		if s.Solve(neg...) {
			// Not implied by this solver's database: unsound here. Reject.
			s.exch.rejected.Add(1)
			return
		}
		if s.unsatisfiable {
			return // the implication check exposed level-0 unsatisfiability
		}
		s.AddClause(lits...)
		s.exch.imported.Add(1)
		s.Stats.ClauseImports++
	})
}

// DumpCNF returns the solver's variable count and clause database — level-0
// unit assignments as one-literal clauses, then the added clauses in
// insertion order. Tests use it to assert two encoders emitted identical
// CNF; call it only between queries (decision level 0).
func (s *Solver) DumpCNF() (nVars int, clauses [][]Lit) {
	for _, l := range s.trail {
		if s.level[l.Var()] == 0 {
			clauses = append(clauses, []Lit{l})
		}
	}
	for _, c := range s.clauses {
		clauses = append(clauses, append([]Lit(nil), c.lits...))
	}
	return s.nVars, clauses
}

// Solve decides satisfiability under the given assumption literals. When
// satisfiable, the model is readable via Value. Assumptions behave like
// temporary unit clauses: they are retracted afterwards, so the solver can
// be reused incrementally (the crosschecking phase issues many queries over
// a shared variable space).
func (s *Solver) Solve(assumptions ...Lit) bool {
	if s.unsatisfiable {
		return false
	}
	s.cancelUntil(0)
	s.importShared()
	if s.unsatisfiable {
		return false
	}

	maxLearnts := float64(len(s.clauses))/3 + 100
	restartN := int64(0)
	conflictsAtRestart := int64(0)
	limit := luby(1) * 64

	for {
		confl := s.propagate()
		if confl != nil {
			s.Stats.Conflicts++
			conflictsAtRestart++
			if s.decisionLevel() == 0 {
				s.unsatisfiable = true
				return false
			}
			learnt, bj := s.analyze(confl)
			if s.shareable(learnt) {
				// A conflict clause is a resolvent of database clauses only
				// (decisions and assumptions never enter the derivation), so
				// it is implied by this solver's clause set and safe to offer
				// to peers — each importer re-validates on its own side.
				// Marking it seen keeps the solver from re-importing its own
				// lesson off the ring later.
				b, unit := Lit(0), true
				if len(learnt) == 2 {
					b, unit = learnt[1], false
				}
				if p := packClause(learnt[0], b, unit); s.markShared(p) {
					s.exch.publishPacked(p)
					s.Stats.ClauseExports++
				}
			}
			s.cancelUntil(bj)
			var c *clause
			if len(learnt) > 1 {
				c = &clause{lits: learnt, learnt: true}
				s.learnts = append(s.learnts, c)
				s.attach(c)
				s.Stats.Learnt++
			}
			s.uncheckedEnqueue(learnt[0], c)
			s.varInc *= 1.0 / 0.95
			continue
		}

		if conflictsAtRestart >= limit {
			s.Stats.Restarts++
			restartN++
			conflictsAtRestart = 0
			limit = luby(restartN+1) * 64
			s.cancelUntil(0)
		}
		if float64(len(s.learnts)) > maxLearnts+float64(len(s.trail)) {
			s.reduceDB()
			maxLearnts *= 1.1
		}

		// Apply pending assumptions as decisions.
		if s.decisionLevel() < len(assumptions) {
			p := assumptions[s.decisionLevel()]
			switch s.litValue(p) {
			case lTrue:
				// Already implied; open an empty decision level to keep the
				// level/assumption correspondence.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case lFalse:
				s.cancelUntil(0)
				return false
			}
			s.trailLim = append(s.trailLim, len(s.trail))
			s.uncheckedEnqueue(p, nil)
			continue
		}

		v := s.pickBranchVar()
		if v == -1 {
			// Model found. Snapshot it and retract all decisions (including
			// assumptions) so the solver is immediately reusable for more
			// AddClause / Solve calls.
			if cap(s.model) < s.nVars {
				s.model = make([]lbool, s.nVars)
			}
			s.model = s.model[:s.nVars]
			copy(s.model, s.assign)
			s.cancelUntil(0)
			return true
		}
		s.Stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(MkLit(v, !s.phase[v]), nil)
	}
}

// reduceDB removes half of the learnt clauses (the least active, keeping
// reason clauses).
func (s *Solver) reduceDB() {
	if len(s.learnts) < 16 {
		return
	}
	// Partial selection: keep the more active half.
	acts := make([]float64, len(s.learnts))
	for i, c := range s.learnts {
		acts[i] = float64(len(c.lits)) // approximate: prefer short clauses
	}
	// Threshold at median length.
	med := medianF(acts)
	kept := s.learnts[:0]
	for _, c := range s.learnts {
		if s.isReason(c) || float64(len(c.lits)) <= med || len(c.lits) <= 2 {
			kept = append(kept, c)
		} else {
			c.deleted = true
		}
	}
	s.learnts = kept
}

func (s *Solver) isReason(c *clause) bool {
	if len(c.lits) == 0 {
		return false
	}
	v := c.lits[0].Var()
	return s.assign[v] != lUndef && s.reason[v] == c
}

func medianF(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	// Counting-based approximate median over small integer lengths.
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Value returns the model value of variable v after a satisfiable Solve.
func (s *Solver) Value(v int) bool {
	if v < len(s.model) {
		return s.model[v] == lTrue
	}
	return false
}

// Okay reports whether the solver has not yet derived level-0 unsatisfiability.
func (s *Solver) Okay() bool { return !s.unsatisfiable }

// varHeap is a max-heap over variable activity used for VSIDS decisions.
type varHeap struct {
	s       *Solver
	heap    []int
	indices []int // var -> position+1 (0 = absent)
}

func (h *varHeap) less(a, b int) bool {
	return h.s.activity[h.heap[a]] > h.s.activity[h.heap[b]]
}

func (h *varHeap) swap(a, b int) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.indices[h.heap[a]] = a + 1
	h.indices[h.heap[b]] = b + 1
}

func (h *varHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *varHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *varHeap) push(v int) {
	for v >= len(h.indices) {
		h.indices = append(h.indices, 0)
	}
	if h.indices[v] != 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = len(h.heap)
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pop() (int, bool) {
	if len(h.heap) == 0 {
		return 0, false
	}
	v := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.indices[h.heap[0]] = 1
	h.heap = h.heap[:last]
	h.indices[v] = 0
	if len(h.heap) > 0 {
		h.down(0)
	}
	return v, true
}

func (h *varHeap) update(v int) {
	if v < len(h.indices) && h.indices[v] != 0 {
		h.up(h.indices[v] - 1)
	}
}
