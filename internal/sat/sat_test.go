package sat

import (
	"math/rand"
	"testing"
)

func lit(v int) Lit {
	if v > 0 {
		return MkLit(v-1, false)
	}
	return MkLit(-v-1, true)
}

// addDIMACS adds clauses in DIMACS-style signed-integer notation, creating
// variables on demand.
func addDIMACS(s *Solver, clauses [][]int) bool {
	maxVar := 0
	for _, c := range clauses {
		for _, v := range c {
			if v < 0 {
				v = -v
			}
			if v > maxVar {
				maxVar = v
			}
		}
	}
	for s.NumVars() < maxVar {
		s.NewVar()
	}
	for _, c := range clauses {
		ls := make([]Lit, len(c))
		for i, v := range c {
			ls[i] = lit(v)
		}
		if !s.AddClause(ls...) {
			return false
		}
	}
	return true
}

func TestTrivialSat(t *testing.T) {
	s := New()
	if !addDIMACS(s, [][]int{{1, 2}, {-1, 2}, {1, -2}}) {
		t.Fatal("clauses rejected")
	}
	if !s.Solve() {
		t.Fatal("expected SAT")
	}
	if !s.Value(0) || !s.Value(1) {
		t.Fatalf("model should set both true: %v %v", s.Value(0), s.Value(1))
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	ok := addDIMACS(s, [][]int{{1, 2}, {-1, 2}, {1, -2}, {-1, -2}})
	if ok && s.Solve() {
		t.Fatal("expected UNSAT")
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	s.NewVar()
	if s.AddClause() {
		t.Fatal("empty clause must report unsat")
	}
	if s.Solve() {
		t.Fatal("expected UNSAT after empty clause")
	}
}

func TestUnitConflict(t *testing.T) {
	s := New()
	s.NewVar()
	if !s.AddClause(lit(1)) {
		t.Fatal("first unit rejected")
	}
	if s.AddClause(lit(-1)) && s.Solve() {
		t.Fatal("conflicting units must be UNSAT")
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := New()
	s.NewVar()
	s.NewVar()
	if !s.AddClause(lit(1), lit(-1)) {
		t.Fatal("tautology rejected")
	}
	if !s.AddClause(lit(2), lit(2)) {
		t.Fatal("duplicate-literal clause rejected")
	}
	if !s.Solve() {
		t.Fatal("expected SAT")
	}
	if !s.Value(1) {
		t.Fatal("unit from duplicates not propagated")
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(n+1, n): n+1 pigeons in n holes is UNSAT. Classic hard-ish family;
	// n=6 keeps CI fast but forces real conflict analysis.
	n := 6
	s := New()
	varOf := func(p, h int) int { return p*n + h } // 0-based
	for p := 0; p < n+1; p++ {
		for h := 0; h < n; h++ {
			for s.NumVars() <= varOf(p, h) {
				s.NewVar()
			}
		}
	}
	// Each pigeon in some hole.
	for p := 0; p < n+1; p++ {
		var c []Lit
		for h := 0; h < n; h++ {
			c = append(c, MkLit(varOf(p, h), false))
		}
		s.AddClause(c...)
	}
	// No two pigeons share a hole.
	for h := 0; h < n; h++ {
		for p1 := 0; p1 < n+1; p1++ {
			for p2 := p1 + 1; p2 < n+1; p2++ {
				s.AddClause(MkLit(varOf(p1, h), true), MkLit(varOf(p2, h), true))
			}
		}
	}
	if s.Solve() {
		t.Fatal("pigeonhole must be UNSAT")
	}
	if s.Stats.Conflicts == 0 {
		t.Fatal("expected nontrivial conflict analysis")
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	if !addDIMACS(s, [][]int{{1, 2}, {-1, 3}, {-2, 3}}) {
		t.Fatal("clauses rejected")
	}
	if !s.Solve(lit(-3)) {
		// x3 false forces x1 false and x2 false, conflicting with (1 2).
		// Actually: -3 with (-1,3) forces -1; with (-2,3) forces -2; then
		// clause (1,2) is falsified => UNSAT under assumption.
		// So Solve must return false; reaching here is correct.
	} else {
		t.Fatal("expected UNSAT under assumption -3")
	}
	// Solver must remain usable and satisfiable without the assumption.
	if !s.Solve() {
		t.Fatal("expected SAT without assumptions")
	}
	if !s.Solve(lit(3)) {
		t.Fatal("expected SAT under assumption 3")
	}
	if !s.Value(2) {
		t.Fatal("assumption 3 not reflected in model")
	}
}

func TestAssumptionsIncrementalReuse(t *testing.T) {
	// Alternate SAT/UNSAT assumption sets repeatedly to verify state resets.
	s := New()
	if !addDIMACS(s, [][]int{{1, 2, 3}, {-1, -2}, {-1, -3}, {-2, -3}}) {
		t.Fatal("clauses rejected")
	}
	for i := 0; i < 50; i++ {
		if !s.Solve(lit(1)) {
			t.Fatalf("iter %d: expected SAT under x1", i)
		}
		if s.Solve(lit(1), lit(2)) {
			t.Fatalf("iter %d: expected UNSAT under x1,x2", i)
		}
		if !s.Solve(lit(-1)) {
			t.Fatalf("iter %d: expected SAT under -x1", i)
		}
	}
}

// bruteForce decides satisfiability of a small CNF by enumeration.
func bruteForce(nVars int, clauses [][]int) bool {
	for m := 0; m < 1<<nVars; m++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, v := range c {
				idx := v
				if idx < 0 {
					idx = -idx
				}
				val := m>>(idx-1)&1 == 1
				if (v > 0) == val {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// Property: CDCL agrees with brute force on random small CNFs, and SAT
// models actually satisfy the formula.
func TestQuickAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 400; iter++ {
		nVars := 3 + r.Intn(6) // 3..8
		nClauses := 2 + r.Intn(4*nVars)
		var clauses [][]int
		for i := 0; i < nClauses; i++ {
			k := 1 + r.Intn(3)
			var c []int
			for j := 0; j < k; j++ {
				v := 1 + r.Intn(nVars)
				if r.Intn(2) == 0 {
					v = -v
				}
				c = append(c, v)
			}
			clauses = append(clauses, c)
		}
		want := bruteForce(nVars, clauses)
		s := New()
		got := addDIMACS(s, clauses) && s.Solve()
		if got != want {
			t.Fatalf("iter %d: solver=%v brute=%v clauses=%v", iter, got, want, clauses)
		}
		if got {
			// Verify the model.
			for _, c := range clauses {
				sat := false
				for _, v := range c {
					idx := v
					if idx < 0 {
						idx = -idx
					}
					if (v > 0) == s.Value(idx-1) {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("iter %d: model does not satisfy clause %v", iter, c)
				}
			}
		}
	}
}

func TestDeterministicModels(t *testing.T) {
	build := func() *Solver {
		s := New()
		addDIMACS(s, [][]int{{1, 2, 3}, {-2, 4}, {-1, -3}, {3, -4, 5}})
		return s
	}
	a, b := build(), build()
	if !a.Solve() || !b.Solve() {
		t.Fatal("expected SAT")
	}
	for v := 0; v < a.NumVars(); v++ {
		if a.Value(v) != b.Value(v) {
			t.Fatalf("nondeterministic model at var %d", v)
		}
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d want %d", i+1, got, w)
		}
	}
}

func TestLitHelpers(t *testing.T) {
	l := MkLit(4, false)
	if l.Var() != 4 || l.Neg() || l.Not() != MkLit(4, true) {
		t.Fatalf("lit helpers broken: %v", l)
	}
	if l.String() != "5" || l.Not().String() != "-5" {
		t.Fatalf("lit strings: %v %v", l, l.Not())
	}
}

func BenchmarkPigeonhole7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := 7
		s := New()
		varOf := func(p, h int) int { return p*n + h }
		for v := 0; v < (n+1)*n; v++ {
			s.NewVar()
		}
		for p := 0; p < n+1; p++ {
			var c []Lit
			for h := 0; h < n; h++ {
				c = append(c, MkLit(varOf(p, h), false))
			}
			s.AddClause(c...)
		}
		for h := 0; h < n; h++ {
			for p1 := 0; p1 < n+1; p1++ {
				for p2 := p1 + 1; p2 < n+1; p2++ {
					s.AddClause(MkLit(varOf(p1, h), true), MkLit(varOf(p2, h), true))
				}
			}
		}
		if s.Solve() {
			b.Fatal("pigeonhole must be UNSAT")
		}
	}
}
