package sat

import "sync/atomic"

// Exchange is a bounded, lock-free ring of short learned clauses shared
// between solver instances — the reproduction's stand-in for learned-clause
// sharing between the workers of a portfolio/cluster setup. Exporters
// publish clauses of at most two literals whose variables all lie in the
// canonically numbered shared region (see bitblast.Space); importers poll
// the ring and adopt clauses only after validating them against their own
// clause database (see Solver.importShared).
//
// The ring is a fixed array of atomically published slots plus a monotone
// write cursor. Publishing never blocks and never allocates; when the ring
// wraps, the oldest clauses are overwritten (clause sharing is best-effort
// by design — a lost clause costs duplicated conflict work, never
// correctness). Readers keep a private cursor and observe each slot with a
// single atomic load, so a torn view is impossible: every non-zero slot
// value decodes to some clause that was genuinely published.
type Exchange struct {
	slots []atomic.Uint64
	mask  uint64
	head  atomic.Uint64 // next sequence number to write

	exported atomic.Int64 // clauses published by exporters
	imported atomic.Int64 // clauses adopted by importers after validation
	rejected atomic.Int64 // candidates that failed importer-side validation
}

// DefaultExchangeSize is the ring capacity used when NewExchange is given a
// non-positive size. Short clauses are small and validation is the
// expensive step, so a few hundred slots cover the useful working set.
const DefaultExchangeSize = 256

// NewExchange creates a ring with capacity rounded up to a power of two.
func NewExchange(size int) *Exchange {
	if size <= 0 {
		size = DefaultExchangeSize
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &Exchange{slots: make([]atomic.Uint64, n), mask: uint64(n - 1)}
}

// ExchangeStats is a snapshot of the ring's traffic counters.
type ExchangeStats struct {
	Exported int64 // clauses published
	Imported int64 // clauses adopted by importers
	Rejected int64 // candidates rejected by importer validation
}

// Stats returns a snapshot of the exchange counters.
func (x *Exchange) Stats() ExchangeStats {
	return ExchangeStats{
		Exported: x.exported.Load(),
		Imported: x.imported.Load(),
		Rejected: x.rejected.Load(),
	}
}

// packClause encodes a 1- or 2-literal clause into a non-zero uint64: each
// literal is stored biased by one so that the zero word stays reserved for
// "slot not yet published", and a unit clause carries 0 in the second half.
func packClause(a, b Lit, unit bool) uint64 {
	lo := uint64(uint32(b + 1))
	if unit {
		lo = 0
	}
	return uint64(uint32(a+1))<<32 | lo
}

func unpackClause(v uint64) (a, b Lit, unit bool) {
	a = Lit(uint32(v>>32)) - 1
	lo := uint32(v)
	if lo == 0 {
		return a, 0, true
	}
	return a, Lit(lo) - 1, false
}

// publish appends a clause to the ring, overwriting the oldest slot when
// full.
func (x *Exchange) publish(a, b Lit, unit bool) {
	x.publishPacked(packClause(a, b, unit))
}

// publishPacked is publish for an already-encoded clause word.
func (x *Exchange) publishPacked(v uint64) {
	i := x.head.Add(1) - 1
	x.slots[i&x.mask].Store(v)
	x.exported.Add(1)
}

// collect visits every clause published since the caller's cursor and
// returns the advanced cursor. When the reader has been lapped, it resumes
// from the oldest still-live slot. A slot can read as zero when its
// publisher has claimed the sequence number but not yet stored the value;
// collect stops there — advancing past it would drop that clause for this
// reader forever — and a later collect resumes from the same cursor once
// the store has landed.
func (x *Exchange) collect(cursor uint64, visit func(a, b Lit, unit bool)) uint64 {
	head := x.head.Load()
	if n := uint64(len(x.slots)); head-cursor > n {
		cursor = head - n
	}
	for ; cursor < head; cursor++ {
		v := x.slots[cursor&x.mask].Load()
		if v == 0 {
			break
		}
		a, b, unit := unpackClause(v)
		visit(a, b, unit)
	}
	return cursor
}
