package sat

import (
	"math/rand"
	"testing"
)

// Property tests: the CDCL core against a brute-force enumerator on random
// small CNF instances. Clauses use the DIMACS-style convention: literal
// +k / -k is variable k-1 positive / negated.

// bruteForceSat decides satisfiability by enumerating all 2^nVars
// assignments.
func bruteForceSat(nVars int, clauses [][]int) bool {
	for m := 0; m < 1<<nVars; m++ {
		ok := true
		for _, cl := range clauses {
			clauseSat := false
			for _, l := range cl {
				v := l
				if v < 0 {
					v = -v
				}
				val := m>>(v-1)&1 == 1
				if (l > 0) == val {
					clauseSat = true
					break
				}
			}
			if !clauseSat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// buildSolver loads a CNF instance into a fresh CDCL solver. The second
// return is false when AddClause already derived unsatisfiability.
func buildSolver(nVars int, clauses [][]int) (*Solver, bool) {
	s := New()
	for i := 0; i < nVars; i++ {
		s.NewVar()
	}
	for _, cl := range clauses {
		lits := make([]Lit, len(cl))
		for i, l := range cl {
			if l > 0 {
				lits[i] = MkLit(l-1, false)
			} else {
				lits[i] = MkLit(-l-1, true)
			}
		}
		if !s.AddClause(lits...) {
			return s, false
		}
	}
	return s, true
}

// modelSatisfies checks the solver's model against the original clauses.
func modelSatisfies(s *Solver, clauses [][]int) bool {
	for _, cl := range clauses {
		clauseSat := false
		for _, l := range cl {
			v := l
			if v < 0 {
				v = -v
			}
			if (l > 0) == s.Value(v-1) {
				clauseSat = true
				break
			}
		}
		if !clauseSat {
			return false
		}
	}
	return true
}

// randomCNF draws a random instance. Duplicate and complementary literals
// within a clause are allowed on purpose: they exercise AddClause's
// normalization (dedup, tautology elimination).
func randomCNF(rng *rand.Rand) (int, [][]int) {
	nVars := 1 + rng.Intn(10)
	nClauses := rng.Intn(41)
	clauses := make([][]int, nClauses)
	for i := range clauses {
		n := 1 + rng.Intn(4)
		cl := make([]int, n)
		for j := range cl {
			v := 1 + rng.Intn(nVars)
			if rng.Intn(2) == 1 {
				v = -v
			}
			cl[j] = v
		}
		clauses[i] = cl
	}
	return nVars, clauses
}

// TestCDCLMatchesBruteForce: on 500 random instances the CDCL answer must
// equal exhaustive enumeration, and every SAT answer must come with a model
// satisfying the original clauses.
func TestCDCLMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(20120612)) // the paper's publication year+date
	n := 500
	if testing.Short() {
		n = 100
	}
	for i := 0; i < n; i++ {
		nVars, clauses := randomCNF(rng)
		want := bruteForceSat(nVars, clauses)
		s, ok := buildSolver(nVars, clauses)
		if !ok {
			if want {
				t.Fatalf("instance %d: AddClause derived unsat, brute force says sat: vars=%d clauses=%v",
					i, nVars, clauses)
			}
			continue
		}
		got := s.Solve()
		if got != want {
			t.Fatalf("instance %d: CDCL=%v brute=%v vars=%d clauses=%v", i, got, want, nVars, clauses)
		}
		if got && !modelSatisfies(s, clauses) {
			t.Fatalf("instance %d: model does not satisfy the instance: vars=%d clauses=%v",
				i, nVars, clauses)
		}
	}
}

// TestCDCLAssumptionsMatchBruteForce: Solve under assumption literals must
// equal brute force of the clauses plus the assumptions as units — and the
// solver must stay reusable afterwards (assumptions are retracted).
func TestCDCLAssumptionsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 200
	if testing.Short() {
		n = 50
	}
	for i := 0; i < n; i++ {
		nVars, clauses := randomCNF(rng)
		s, ok := buildSolver(nVars, clauses)
		if !ok {
			continue
		}
		base := bruteForceSat(nVars, clauses)
		if s.Solve() != base {
			t.Fatalf("instance %d: base solve mismatch", i)
		}
		for trial := 0; trial < 3; trial++ {
			var asm []Lit
			withUnits := clauses
			for k := 0; k <= rng.Intn(3); k++ {
				v := 1 + rng.Intn(nVars)
				neg := rng.Intn(2) == 1
				asm = append(asm, MkLit(v-1, neg))
				u := v
				if neg {
					u = -v
				}
				withUnits = append(withUnits, []int{u})
			}
			want := bruteForceSat(nVars, withUnits)
			if got := s.Solve(asm...); got != want {
				t.Fatalf("instance %d trial %d: CDCL(asm=%v)=%v brute=%v clauses=%v",
					i, trial, asm, got, want, clauses)
			}
		}
		// Assumptions retracted: the base query must still give the same
		// answer.
		if s.Solve() != base {
			t.Fatalf("instance %d: solver state polluted by assumptions", i)
		}
	}
}

// TestCDCLDeterministicModel: the same clause set must produce the same
// model on every fresh solve (the engine's reproducibility relies on it).
func TestCDCLDeterministicModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		nVars, clauses := randomCNF(rng)
		run := func() ([]bool, bool) {
			s, ok := buildSolver(nVars, clauses)
			if !ok || !s.Solve() {
				return nil, false
			}
			m := make([]bool, nVars)
			for v := 0; v < nVars; v++ {
				m[v] = s.Value(v)
			}
			return m, true
		}
		m1, ok1 := run()
		m2, ok2 := run()
		if ok1 != ok2 {
			t.Fatalf("instance %d: result flip-flopped", i)
		}
		for v := range m1 {
			if m1[v] != m2[v] {
				t.Fatalf("instance %d: model differs at var %d", i, v)
			}
		}
	}
}

// FuzzCDCLvsBruteForce is the native fuzz entry: arbitrary bytes decode
// into a small CNF instance and the CDCL answer is checked against
// enumeration. `go test` runs the seed corpus; `go test -fuzz=FuzzCDCL`
// explores further.
func FuzzCDCLvsBruteForce(f *testing.F) {
	f.Add([]byte{3, 2, 1, 2, 5, 6})
	f.Add([]byte{1, 1, 1, 2})       // x and ¬x: unsat
	f.Add([]byte{8, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		nVars := int(data[0])%8 + 1
		var clauses [][]int
		var cur []int
		for _, b := range data[1:] {
			if len(clauses) >= 24 {
				break
			}
			lit := int(b) % (2 * nVars)
			v := lit/2 + 1
			if lit%2 == 1 {
				v = -v
			}
			cur = append(cur, v)
			if len(cur) == int(b)%3+1 {
				clauses = append(clauses, cur)
				cur = nil
			}
		}
		if len(cur) > 0 {
			clauses = append(clauses, cur)
		}
		want := bruteForceSat(nVars, clauses)
		s, ok := buildSolver(nVars, clauses)
		if !ok {
			if want {
				t.Fatalf("AddClause derived unsat, brute force says sat: vars=%d clauses=%v", nVars, clauses)
			}
			return
		}
		if got := s.Solve(); got != want {
			t.Fatalf("CDCL=%v brute=%v vars=%d clauses=%v", got, want, nVars, clauses)
		}
		if want && !modelSatisfies(s, clauses) {
			t.Fatalf("model does not satisfy instance: vars=%d clauses=%v", nVars, clauses)
		}
	})
}
