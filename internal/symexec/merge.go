package symexec

import (
	"sync"

	"github.com/soft-testing/soft/internal/sym"
)

// mergeMemo is the engine-wide store of relaxed frontier queries proven
// unsatisfiable, the mechanism behind Engine.Merge. A relaxed query is a
// path condition with its newest branch-decision conjunct dropped, plus the
// queried arm constraint: exactly the constraint of the diamond formed by
// the two sibling paths that disagree on that decision and meet at the same
// frontier node. Proving the relaxed query unsatisfiable kills the arm on
// *both* siblings, so the first sibling's verdict is memoized and the
// second's query becomes a map lookup.
//
// Only unsatisfiable verdicts are stored: a satisfiable relaxed query says
// nothing about either exact query. Keys are the ordered structural hashes
// of the remaining conjuncts plus the arm constraint; the full key slice is
// stored and compared so a 64-bit hash collision can never smuggle a wrong
// "unsatisfiable" verdict into a path (it would silently drop real paths).
//
// The memo is shared across workers and taken under a mutex; it is touched
// only on frontier queries (never on replays), where a solve — the
// alternative — costs orders of magnitude more than the lock.
type mergeMemo struct {
	mu sync.Mutex
	m  map[uint64][][]uint64
}

func newMergeMemo() *mergeMemo {
	return &mergeMemo{m: make(map[uint64][][]uint64)}
}

// mergeKey builds the memo key for a relaxed query: the combined hash used
// as the map index, and the full per-conjunct hash sequence compared on
// lookup.
func mergeKey(keep []*sym.Expr, q *sym.Expr) (uint64, []uint64) {
	key := make([]uint64, 0, len(keep)+1)
	for _, c := range keep {
		key = append(key, c.Hash())
	}
	key = append(key, q.Hash())
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, k := range key {
		for i := 0; i < 8; i++ {
			h ^= (k >> (8 * i)) & 0xff
			h *= prime
		}
	}
	return h, key
}

func sameKey(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// knownUnsat reports whether this relaxed query was already proven
// unsatisfiable.
func (m *mergeMemo) knownUnsat(hash uint64, key []uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, cand := range m.m[hash] {
		if sameKey(cand, key) {
			return true
		}
	}
	return false
}

// recordUnsat stores an unsatisfiable relaxed-query verdict.
func (m *mergeMemo) recordUnsat(hash uint64, key []uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, cand := range m.m[hash] {
		if sameKey(cand, key) {
			return
		}
	}
	m.m[hash] = append(m.m[hash], key)
}
