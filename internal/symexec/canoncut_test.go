package symexec

import (
	"strings"
	"testing"

	"github.com/soft-testing/soft/internal/sym"
)

// pathFingerprint renders just the path list (canonical order, decision
// vectors, outputs) — the part of a Result canonical truncation promises to
// pin.
func pathFingerprint(res *Result) string {
	var b strings.Builder
	for _, p := range res.Paths {
		b.WriteString(fmtDecisions(p.Decisions))
		b.WriteByte('\n')
	}
	return b.String()
}

func fmtDecisions(d []bool) string {
	var b strings.Builder
	for _, v := range d {
		if v {
			b.WriteByte('t')
		} else {
			b.WriteByte('f')
		}
	}
	return b.String()
}

// TestCanonicalCutDeterminism is the satellite property behind deterministic
// MaxPaths truncation: for every handler, cap, worker count, and strategy,
// a CanonicalCut run keeps exactly the cap's worth of canonically smallest
// paths — the same set a full exploration would sort first.
func TestCanonicalCutDeterminism(t *testing.T) {
	for name, h := range parallelHandlers() {
		h := h
		t.Run(name, func(t *testing.T) {
			full := (&Engine{Workers: 1, WantModels: true}).Run(h)
			if len(full.Paths) < 3 {
				t.Skipf("handler explores only %d paths", len(full.Paths))
			}
			cap := len(full.Paths) / 2
			wantPaths := fingerprintPrefix(full, cap)

			for _, workers := range []int{1, 2, 4} {
				for _, strat := range []Strategy{nil, NewDFS(), NewBFS(), NewRandom(7)} {
					eng := &Engine{
						Workers: workers, WantModels: true,
						MaxPaths: cap, CanonicalCut: true,
						Strategy: strat,
					}
					res := eng.Run(h)
					if !res.PathsTruncated {
						t.Fatalf("workers=%d: canonical cut did not mark truncation", workers)
					}
					if len(res.Paths) != cap {
						t.Fatalf("workers=%d: kept %d paths, want %d", workers, len(res.Paths), cap)
					}
					if got := pathFingerprint(res); got != wantPaths {
						t.Fatalf("workers=%d strategy=%v: canonical cut kept\n%s\nwant\n%s",
							workers, strat, got, wantPaths)
					}
				}
			}
		})
	}
}

// fingerprintPrefix renders the first n paths of a full run — the
// canonically smallest n, since Results are already canonically ordered.
func fingerprintPrefix(full *Result, n int) string {
	var b strings.Builder
	for _, p := range full.Paths[:n] {
		b.WriteString(fmtDecisions(p.Decisions))
		b.WriteByte('\n')
	}
	return b.String()
}

// TestCanonicalCutExhaustive: a canonical cap larger than the tree changes
// nothing — the run is exhaustive, unmarked, and byte-identical to an
// uncapped run.
func TestCanonicalCutExhaustive(t *testing.T) {
	h := parallelHandlers()["exponential-256"]
	want := fingerprint((&Engine{Workers: 1}).Run(h))
	res := (&Engine{Workers: 4, MaxPaths: 100000, CanonicalCut: true}).Run(h)
	if res.PathsTruncated {
		t.Fatal("exhaustive canonical run marked truncated")
	}
	if got := fingerprint(res); got != want {
		t.Fatalf("canonical cut altered an exhaustive run:\n%s\nwant\n%s", got, want)
	}
}

// TestPrefixSeededExploration: exploring with Engine.Prefix must yield
// exactly the full run's paths that extend the prefix — the invariant
// distributed shards rely on.
func TestPrefixSeededExploration(t *testing.T) {
	for name, h := range parallelHandlers() {
		h := h
		t.Run(name, func(t *testing.T) {
			full := (&Engine{Workers: 1, WantModels: true}).Run(h)

			// Collect subtree roots the way the coordinator does: forks
			// deeper than the shard depth.
			const depth = 1
			var prefixes [][]bool
			local := (&Engine{
				Workers: 1, WantModels: true,
				ShardDepth: depth,
				ShardSink:  func(p []bool) { prefixes = append(prefixes, p) },
			}).Run(h)

			var merged []*Path
			merged = append(merged, local.Paths...)
			for _, p := range prefixes {
				sub := (&Engine{Workers: 2, WantModels: true, Prefix: p}).Run(h)
				for _, sp := range sub.Paths {
					if len(sp.Decisions) < len(p) {
						t.Fatalf("prefix %v: path %v escapes the subtree", p, sp.Decisions)
					}
					for i := range p {
						if sp.Decisions[i] != p[i] {
							t.Fatalf("prefix %v: path %v escapes the subtree", p, sp.Decisions)
						}
					}
				}
				merged = append(merged, sub.Paths...)
			}
			canonicalizePaths(merged)

			if len(merged) != len(full.Paths) {
				t.Fatalf("split+prefix explored %d paths, full run %d", len(merged), len(full.Paths))
			}
			for i := range merged {
				if fmtDecisions(merged[i].Decisions) != fmtDecisions(full.Paths[i].Decisions) {
					t.Fatalf("path %d: %v vs %v", i, merged[i].Decisions, full.Paths[i].Decisions)
				}
				if sym.LAnd(merged[i].PC...).String() != sym.LAnd(full.Paths[i].PC...).String() {
					t.Fatalf("path %d: condition differs", i)
				}
			}
		})
	}
}
