package symexec

import (
	"context"
	"sync"
	"sync/atomic"

	"github.com/soft-testing/soft/internal/bitblast"
	"github.com/soft-testing/soft/internal/coverage"
	"github.com/soft-testing/soft/internal/obs"
	"github.com/soft-testing/soft/internal/sym"
)

// Work-stealing metrics: how often workers donate to and steal from the
// global pool, and the per-worker local-frontier depth sampled at each
// pop. Observation only — the balancing heuristics never read these.
var (
	mDonations     = obs.NewCounter("soft_explore_donations_total")
	mSteals        = obs.NewCounter("soft_explore_steals_total")
	mFrontierDepth = obs.NewHistogram("soft_explore_frontier_depth")
)

// frontier is the shared work pool of the parallel engine. Workers keep
// their own strategy-ordered local frontiers and touch this structure only
// to donate work when someone is starving, to steal when their local
// frontier runs dry, and to detect global termination — so the hot path
// (execute path, fork locally) takes no locks.
type frontier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	global []*workItem
	idle   int // workers currently blocked in steal
	n      int // total workers

	// idleCount mirrors idle for lock-free reads on the fork hot path.
	idleCount atomic.Int32
	// done is set when exploration must stop: either every worker is idle
	// with no work anywhere, or a path cap fired.
	done atomic.Bool
	// exhausted is set only on natural termination (every worker idle, no
	// work left): it distinguishes a finished run from a halted one when a
	// late context cancellation races with the end of exploration.
	exhausted atomic.Bool
}

func newFrontier(workers int) *frontier {
	f := &frontier{n: workers}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// donate publishes a work item to the global pool and wakes one idle worker.
func (f *frontier) donate(it *workItem) {
	f.mu.Lock()
	f.global = append(f.global, it)
	f.mu.Unlock()
	f.cond.Signal()
	mDonations.Inc()
}

// steal blocks until a global work item is available or exploration is
// finished. The second return is false on termination.
func (f *frontier) steal() (*workItem, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.idle++
	f.idleCount.Store(int32(f.idle))
	defer func() {
		f.idle--
		f.idleCount.Store(int32(f.idle))
	}()
	for {
		if f.done.Load() {
			return nil, false
		}
		if n := len(f.global); n > 0 {
			it := f.global[n-1]
			f.global[n-1] = nil
			f.global = f.global[:n-1]
			mSteals.Inc()
			return it, true
		}
		if f.idle == f.n {
			// Every worker is here and the pool is empty: local frontiers
			// are empty too (a worker only steals when drained), so the
			// execution tree is exhausted.
			f.exhausted.Store(true)
			f.done.Store(true)
			f.cond.Broadcast()
			return nil, false
		}
		f.cond.Wait()
	}
}

// halt stops all workers (used when MaxPaths fires). The store happens
// under f.mu: a worker that observed done == false inside steal holds the
// mutex until its Wait enqueues it, so the Broadcast that follows cannot be
// lost between the check and the sleep.
func (f *frontier) halt() {
	f.mu.Lock()
	f.done.Store(true)
	f.mu.Unlock()
	f.cond.Broadcast()
}

// remaining returns the number of undonated items left in the global pool.
func (f *frontier) remaining() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.global)
}

// workerState accumulates one worker's private results; merged after join.
type workerState struct {
	paths      []*Path
	infeasible int
	depthTrunc int
	counters   pathCounters
	sess       *bitblast.Session // persistent incremental session, when enabled
	inputs     map[string]*sym.Expr
	cov        *coverage.Set // worker-cumulative; feeds coverage-guided Pop
}

// runParallel explores h with the given number of workers over a shared
// work-stealing frontier. Workers own every piece of hot-path state — the
// strategy-ordered local frontier, the per-path constraint encodings, the
// branch-query counter — and synchronize only to balance work. The merged
// result is canonicalized by the caller, so for exhaustive runs the output
// is identical to runSequential's.
//
// Cancellation reuses the MaxPaths halt path: a watcher goroutine observes
// cancel.Done() and calls frontier.halt(), which wakes blocked stealers and
// makes every worker exit at its next loop check. Paths already completed
// are kept, so a cancelled run returns the partial set explored so far.
func (e *Engine) runParallel(cancel context.Context, h Handler, workers int, share *bitblast.Space, merge *mergeMemo, res *Result) {
	f := newFrontier(workers)
	f.global = append(f.global, e.rootItem())

	cut := e.newCanonCut()
	maxPaths := int64(e.MaxPaths)
	if cut != nil {
		// Canonical truncation never halts early on a path count: the kept
		// set converges to the MaxPaths canonically smallest paths and
		// termination comes from subtree pruning plus frontier exhaustion.
		maxPaths = 0
	}
	var completed, dropped, leftover, progressDone atomic.Int64
	var cancelled atomic.Bool
	if done := cancel.Done(); done != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-done:
				cancelled.Store(true)
				f.halt()
			case <-stop:
			}
		}()
	}

	states := make([]*workerState, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		ws := &workerState{inputs: make(map[string]*sym.Expr)}
		if e.incremental() {
			ws.sess = bitblast.NewSession(share)
		}
		if e.CovMap != nil {
			ws.cov = e.CovMap.NewSet()
		}
		states[w] = ws
		local := e.workerStrategy(w)

		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { leftover.Add(int64(local.Len())) }()
			enqueue := func(it *workItem) {
				// Forks stay local unless someone is starving; donation is
				// a heuristic, so a stale idleCount read is harmless.
				if f.idleCount.Load() > 0 {
					f.donate(it)
				} else {
					local.Push(it)
				}
			}
			for {
				if f.done.Load() {
					return
				}
				// Rebalance: if workers sit idle while this local frontier
				// holds a backlog, hand half of it over.
				if f.idleCount.Load() > 0 {
					for i := local.Len() / 2; i > 0; i-- {
						it, ok := local.Pop(ws.cov)
						if !ok {
							break
						}
						f.donate(it)
					}
				}
				mFrontierDepth.Observe(int64(local.Len()))
				it, ok := local.Pop(ws.cov)
				if !ok {
					if it, ok = f.steal(); !ok {
						return
					}
				}
				if cut != nil && cut.prune(it.decisions) {
					continue
				}
				ctx := e.newContext(it, enqueue, &ws.counters, ws.sess, share, merge)
				outcome := runOne(ctx, h)
				for name, v := range ctx.inputs {
					ws.inputs[name] = v
				}
				switch outcome {
				case pathCompleted, pathCrashed:
					if maxPaths > 0 {
						n := completed.Add(1)
						if n > maxPaths {
							// Another worker filled the cap while this path
							// was in flight; mirror the sequential engine by
							// keeping exactly MaxPaths paths.
							dropped.Add(1)
							f.halt()
							continue
						}
						if n == maxPaths {
							f.halt()
						}
					}
					if p := e.completePath(ctx); cut != nil {
						cut.admit(p)
					} else {
						ws.paths = append(ws.paths, p)
					}
					if ws.cov != nil {
						ws.cov.Merge(ctx.cov)
					}
					if e.Progress != nil {
						e.Progress(int(progressDone.Add(1)))
					}
				case pathInfeasible:
					ws.infeasible++
				case pathDepthTruncated:
					ws.depthTrunc++
					if ws.cov != nil {
						ws.cov.Merge(ctx.cov)
					}
				}
			}
		}()
	}
	wg.Wait()

	for _, ws := range states {
		res.Paths = append(res.Paths, ws.paths...)
		res.Infeasible += ws.infeasible
		res.DepthTruncated += ws.depthTrunc
		addSolveCounters(res, &ws.counters, ws.sess)
		for name, v := range ws.inputs {
			res.Inputs[name] = v
		}
		if res.Cov != nil {
			res.Cov.Merge(ws.cov)
		}
	}
	// Truncated mirrors the sequential flag: the cap fired while unexplored
	// work remained (a finished-in-flight path was dropped, or frontiers
	// still held items).
	if maxPaths > 0 && completed.Load() >= maxPaths &&
		(dropped.Load() > 0 || leftover.Load() > 0 || f.remaining() > 0) {
		res.PathsTruncated = true
	}
	if cancelled.Load() && !f.exhausted.Load() {
		res.Cancelled = true
	}
	e.applyCanonCut(cut, res)
}

// workerStrategy builds worker w's local frontier ordering: a per-worker
// derivation of the configured strategy, or the default interleaved
// strategy seeded by the worker index. (Run forces non-WorkerStrategy
// configurations sequential before this is ever called.)
func (e *Engine) workerStrategy(w int) Strategy {
	if ws, ok := e.Strategy.(WorkerStrategy); ok {
		return ws.ForWorker(w)
	}
	return NewInterleaved(int64(w) + 1)
}
