package symexec

import (
	"fmt"
	"sort"
	"testing"

	"github.com/soft-testing/soft/internal/coverage"
	"github.com/soft-testing/soft/internal/solver"
	"github.com/soft-testing/soft/internal/sym"
)

// paperExample is the Packet Out handler from the paper's Figure 1
// (Agent 1): three behaviors over a 16-bit port.
func paperExample(ctx *Context) {
	p := ctx.NewSym("port", 16)
	const ofppCtrl = 0xfffd
	if ctx.Branch(sym.EqConst(p, ofppCtrl)) {
		ctx.Emit("CTRL")
	} else if ctx.Branch(sym.Ult(p, sym.Const(16, 25))) {
		ctx.Emit("FWD")
	} else {
		ctx.Emit("ERR")
	}
}

func TestPaperExamplePartitions(t *testing.T) {
	e := &Engine{WantModels: true}
	res := e.Run(paperExample)
	if len(res.Paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(res.Paths))
	}
	var outs []string
	for _, p := range res.Paths {
		if len(p.Outputs) != 1 {
			t.Fatalf("path %d emitted %d outputs", p.ID, len(p.Outputs))
		}
		outs = append(outs, p.Outputs[0].(string))
		// Each path's model must satisfy its own condition.
		if !sym.EvalBool(p.Condition(), p.Model) {
			t.Fatalf("path %d model %v violates its condition", p.ID, p.Model)
		}
	}
	sort.Strings(outs)
	want := []string{"CTRL", "ERR", "FWD"}
	for i := range want {
		if outs[i] != want[i] {
			t.Fatalf("outputs %v, want %v", outs, want)
		}
	}
}

// TestPathDisjointness verifies the fundamental input-space partition
// property: distinct paths cannot share a concrete input.
func TestPathDisjointness(t *testing.T) {
	e := &Engine{}
	res := e.Run(paperExample)
	s := solver.New()
	for i := 0; i < len(res.Paths); i++ {
		for j := i + 1; j < len(res.Paths); j++ {
			both := sym.LAnd(res.Paths[i].Condition(), res.Paths[j].Condition())
			if r, m := s.Check(both); r == solver.Sat {
				t.Fatalf("paths %d and %d overlap at %v", i, j, m)
			}
		}
	}
}

// TestPathCompleteness verifies the union of path conditions covers the
// whole input space for a total handler: the negation of the disjunction is
// unsatisfiable.
func TestPathCompleteness(t *testing.T) {
	e := &Engine{}
	res := e.Run(paperExample)
	var conds []*sym.Expr
	for _, p := range res.Paths {
		conds = append(conds, p.Condition())
	}
	s := solver.New()
	if r, m := s.Check(sym.LNot(sym.LOr(conds...))); r == solver.Sat {
		t.Fatalf("input %v not covered by any path", m)
	}
}

// TestPathFeasibility verifies each reported path condition is satisfiable.
func TestPathFeasibility(t *testing.T) {
	e := &Engine{}
	res := e.Run(paperExample)
	s := solver.New()
	for _, p := range res.Paths {
		if r, _ := s.Check(p.Condition()); r != solver.Sat {
			t.Fatalf("path %d condition %v infeasible", p.ID, p.Condition())
		}
	}
}

func TestConcreteBranchDoesNotFork(t *testing.T) {
	e := &Engine{}
	res := e.Run(func(ctx *Context) {
		ctx.NewSym("x", 8) // unused symbolic input
		if ctx.Branch(sym.Eq(sym.Const(8, 1), sym.Const(8, 1))) {
			ctx.Emit("a")
		}
		if ctx.Branch(sym.Bool(false)) {
			ctx.Emit("unreachable")
		}
	})
	if len(res.Paths) != 1 {
		t.Fatalf("concrete branches must not fork: %d paths", len(res.Paths))
	}
	if len(res.Paths[0].Outputs) != 1 || res.Paths[0].Outputs[0] != "a" {
		t.Fatalf("bad outputs %v", res.Paths[0].Outputs)
	}
	if res.Paths[0].Branches != 0 {
		t.Fatalf("concrete branches must not consume decisions, got %d", res.Paths[0].Branches)
	}
}

func TestNestedBranches(t *testing.T) {
	// Two independent symbolic bits: 4 paths.
	e := &Engine{}
	res := e.Run(func(ctx *Context) {
		a := ctx.NewSym("a", 8)
		b := ctx.NewSym("b", 8)
		x := ctx.Branch(sym.Ult(a, sym.Const(8, 128)))
		y := ctx.Branch(sym.Ult(b, sym.Const(8, 128)))
		ctx.Emit(fmt.Sprintf("%v%v", x, y))
	})
	if len(res.Paths) != 4 {
		t.Fatalf("got %d paths, want 4", len(res.Paths))
	}
	seen := map[string]bool{}
	for _, p := range res.Paths {
		seen[p.Outputs[0].(string)] = true
	}
	for _, want := range []string{"truetrue", "truefalse", "falsetrue", "falsefalse"} {
		if !seen[want] {
			t.Fatalf("missing combination %s (have %v)", want, seen)
		}
	}
}

func TestCorrelatedBranchesPrune(t *testing.T) {
	// The second branch is implied by the first: only 2 paths, not 4, and
	// the implied branch must not double-count constraints.
	e := &Engine{}
	res := e.Run(func(ctx *Context) {
		a := ctx.NewSym("a", 8)
		lt10 := ctx.Branch(sym.Ult(a, sym.Const(8, 10)))
		lt20 := ctx.Branch(sym.Ult(a, sym.Const(8, 20)))
		if lt10 && !lt20 {
			ctx.Emit("impossible")
		}
	})
	if len(res.Paths) != 3 {
		// a<10 (implies a<20), a in [10,20), a>=20.
		t.Fatalf("got %d paths, want 3", len(res.Paths))
	}
	for _, p := range res.Paths {
		for _, o := range p.Outputs {
			if o == "impossible" {
				t.Fatal("explored an infeasible path")
			}
		}
	}
}

func TestCrashCapture(t *testing.T) {
	e := &Engine{WantModels: true}
	res := e.Run(func(ctx *Context) {
		p := ctx.NewSym("port", 16)
		if ctx.Branch(sym.EqConst(p, 0xfffd)) {
			ctx.Crash("segfault in packet out handler")
		}
		ctx.Emit("ok")
	})
	if len(res.Paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(res.Paths))
	}
	var crash *Path
	for _, p := range res.Paths {
		if p.Crashed {
			crash = p
		}
	}
	if crash == nil {
		t.Fatal("no crash path recorded")
	}
	if crash.CrashMsg != "segfault in packet out handler" {
		t.Fatalf("crash msg %q", crash.CrashMsg)
	}
	if crash.Model["port"] != 0xfffd {
		t.Fatalf("crash model %v, want port=0xfffd", crash.Model)
	}
}

func TestAssumeConstrains(t *testing.T) {
	e := &Engine{WantModels: true}
	res := e.Run(func(ctx *Context) {
		v := ctx.NewSym("vlan", 16)
		ctx.Assume(sym.Ule(v, sym.Const(16, 0x0fff))) // structured-input pin
		if ctx.Branch(sym.EqConst(v, 0x1fff)) {
			ctx.Emit("unreachable")
		} else {
			ctx.Emit("ok")
		}
	})
	if len(res.Paths) != 1 {
		t.Fatalf("got %d paths, want 1 (assumption prunes the branch)", len(res.Paths))
	}
	if res.Paths[0].Outputs[0] != "ok" {
		t.Fatalf("bad output %v", res.Paths[0].Outputs)
	}
	if res.Paths[0].Model["vlan"] > 0x0fff {
		t.Fatalf("model %v violates assumption", res.Paths[0].Model)
	}
}

func TestAssumeContradictionAbandonsPath(t *testing.T) {
	e := &Engine{}
	res := e.Run(func(ctx *Context) {
		v := ctx.NewSym("x", 8)
		ctx.Assume(sym.EqConst(v, 1))
		ctx.Assume(sym.EqConst(v, 2))
		ctx.Emit("unreachable")
	})
	if len(res.Paths) != 0 || res.Infeasible != 1 {
		t.Fatalf("paths=%d infeasible=%d, want 0/1", len(res.Paths), res.Infeasible)
	}
}

func TestMaxDepth(t *testing.T) {
	e := &Engine{MaxDepth: 3}
	res := e.Run(func(ctx *Context) {
		x := ctx.NewSym("x", 16)
		for i := 0; i < 10; i++ {
			ctx.Branch(sym.EqConst(sym.Extract(x, i, i), 1))
		}
		ctx.Emit("done")
	})
	if res.DepthTruncated == 0 {
		t.Fatal("expected depth-truncated paths")
	}
	for _, p := range res.Paths {
		if p.Branches > 3 {
			t.Fatalf("path exceeded depth limit: %d", p.Branches)
		}
	}
}

func TestMaxPaths(t *testing.T) {
	e := &Engine{MaxPaths: 5}
	res := e.Run(func(ctx *Context) {
		x := ctx.NewSym("x", 16)
		for i := 0; i < 10; i++ {
			ctx.Branch(sym.EqConst(sym.Extract(x, i, i), 1))
		}
	})
	if len(res.Paths) != 5 {
		t.Fatalf("got %d paths, want 5", len(res.Paths))
	}
	if !res.PathsTruncated {
		t.Fatal("PathsTruncated must be set")
	}
}

func TestCoverageAccumulation(t *testing.T) {
	m := coverage.NewMap()
	bParse := m.Block("parse", 10)
	bFwd := m.Block("fwd", 5)
	bErr := m.Block("err", 5)
	brPort := m.BranchSite("port-range")

	e := &Engine{CovMap: m}
	res := e.Run(func(ctx *Context) {
		p := ctx.NewSym("port", 16)
		ctx.Cover(bParse)
		if ctx.BranchSite(brPort, sym.Ult(p, sym.Const(16, 25))) {
			ctx.Cover(bFwd)
		} else {
			ctx.Cover(bErr)
		}
	})
	if len(res.Paths) != 2 {
		t.Fatalf("got %d paths", len(res.Paths))
	}
	if got := res.Cov.InstructionPct(); got != 100 {
		t.Fatalf("cumulative instruction coverage %v, want 100", got)
	}
	if got := res.Cov.BranchPct(); got != 100 {
		t.Fatalf("cumulative branch coverage %v, want 100", got)
	}
	// Per-path coverage is partial.
	for _, p := range res.Paths {
		if p.Cov.InstructionPct() == 100 {
			t.Fatal("a single path cannot cover both arms")
		}
	}
}

func TestAllStrategiesExploreSamePartition(t *testing.T) {
	// §4.1: the search strategy has small impact because exploration is
	// exhaustive. All strategies must find the same 3 partitions of the
	// paper example (possibly in different orders).
	strategies := map[string]Strategy{
		"dfs":         NewDFS(),
		"bfs":         NewBFS(),
		"random":      NewRandom(42),
		"cov-opt":     NewCoverageOptimized(),
		"interleaved": NewInterleaved(7),
	}
	for name, st := range strategies {
		e := &Engine{Strategy: st}
		res := e.Run(paperExample)
		if len(res.Paths) != 3 {
			t.Errorf("strategy %s found %d paths, want 3", name, len(res.Paths))
		}
		outs := map[string]bool{}
		for _, p := range res.Paths {
			outs[p.Outputs[0].(string)] = true
		}
		if !outs["CTRL"] || !outs["FWD"] || !outs["ERR"] {
			t.Errorf("strategy %s missed behaviors: %v", name, outs)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	// Two runs with the same strategy/seed must produce identical path
	// conditions in identical order.
	run := func() []string {
		e := &Engine{Strategy: NewRandom(99)}
		res := e.Run(paperExample)
		var out []string
		for _, p := range res.Paths {
			out = append(out, p.Condition().String())
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("path counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("path %d differs:\n%s\n%s", i, a[i], b[i])
		}
	}
}

func TestInputRegistry(t *testing.T) {
	e := &Engine{}
	res := e.Run(func(ctx *Context) {
		ctx.NewSym("a", 8)
		ctx.NewSym("b", 16)
		ctx.Branch(sym.Ult(ctx.NewSym("a", 8), sym.Const(8, 4)))
	})
	if len(res.Inputs) != 2 {
		t.Fatalf("inputs %v", res.Inputs)
	}
	if res.Inputs["b"].Width() != 16 {
		t.Fatal("input width lost")
	}
}

func TestWidthConflictPanics(t *testing.T) {
	e := &Engine{}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on width conflict")
		}
	}()
	e.Run(func(ctx *Context) {
		ctx.NewSym("a", 8)
		ctx.NewSym("a", 16)
	})
}

// TestExponentialPathFamily checks the engine handles a path-explosion-
// shaped workload (2^8 paths) exactly.
func TestExponentialPathFamily(t *testing.T) {
	e := &Engine{}
	res := e.Run(func(ctx *Context) {
		x := ctx.NewSym("x", 8)
		n := 0
		for i := 0; i < 8; i++ {
			if ctx.Branch(sym.EqConst(sym.Extract(x, i, i), 1)) {
				n++
			}
		}
		ctx.Emit(n)
	})
	if len(res.Paths) != 256 {
		t.Fatalf("got %d paths, want 256", len(res.Paths))
	}
	// popcount distribution sanity: exactly C(8,k) paths emit k.
	counts := map[int]int{}
	for _, p := range res.Paths {
		counts[p.Outputs[0].(int)]++
	}
	binom := []int{1, 8, 28, 56, 70, 56, 28, 8, 1}
	for k, want := range binom {
		if counts[k] != want {
			t.Fatalf("popcount %d: %d paths, want %d", k, counts[k], want)
		}
	}
}

func BenchmarkExplorePaperExample(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := &Engine{}
		res := e.Run(paperExample)
		if len(res.Paths) != 3 {
			b.Fatal("bad partition")
		}
	}
}

func BenchmarkExplore256Paths(b *testing.B) {
	h := func(ctx *Context) {
		x := ctx.NewSym("x", 8)
		for i := 0; i < 8; i++ {
			ctx.Branch(sym.EqConst(sym.Extract(x, i, i), 1))
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := &Engine{}
		if res := e.Run(h); len(res.Paths) != 256 {
			b.Fatal("bad path count")
		}
	}
}
