package symexec

import (
	"testing"

	"github.com/soft-testing/soft/internal/sym"
)

// TestIncrementalDeterminism is the acceptance property for the incremental
// solver stack: exhaustive exploration must produce byte-identical results
// across incremental on/off × state merging on/off × clause sharing on/off
// × workers 1/4. Assumption-stack sessions, guarded constraint reuse, and
// merge-memo verdicts may only change how fast the tree burns down — never
// an answer, a model, or a counter the result serializes.
func TestIncrementalDeterminism(t *testing.T) {
	for name, h := range parallelHandlers() {
		t.Run(name, func(t *testing.T) {
			want := fingerprint((&Engine{Workers: 1, WantModels: true}).Run(h))
			for _, workers := range []int{1, 4} {
				for _, incremental := range []bool{false, true} {
					for _, merge := range []bool{false, true} {
						for _, sharing := range []bool{false, true} {
							e := &Engine{
								Workers:       workers,
								WantModels:    true,
								Incremental:   incremental,
								Merge:         merge,
								ClauseSharing: sharing,
							}
							if got := fingerprint(e.Run(h)); got != want {
								t.Fatalf("workers=%d incremental=%t merge=%t sharing=%t diverged:\n--- want\n%s--- got\n%s",
									workers, incremental, merge, sharing, want, got)
							}
						}
					}
				}
			}
		})
	}
}

// TestIncrementalSessionReuse checks the incremental mode actually reuses
// work: on a workload whose sibling paths share long constraint prefixes,
// the session must serve far more conjuncts from its activation cache than
// it encodes fresh, and every solve must be an assumption solve.
func TestIncrementalSessionReuse(t *testing.T) {
	h := func(ctx *Context) {
		x := ctx.NewSym("x", 16)
		n := 0
		for i := 0; i < 6; i++ {
			if ctx.Branch(sym.EqConst(sym.Extract(x, i, i), 1)) {
				n++
			}
		}
		ctx.Emit(n)
	}
	res := (&Engine{Workers: 1, WantModels: true, Incremental: true}).Run(h)
	if res.FullSolves != 0 {
		t.Fatalf("incremental run paid %d full solves", res.FullSolves)
	}
	if res.AssumptionSolves == 0 {
		t.Fatal("incremental run reported no assumption solves")
	}
	if res.ConstraintsReused <= res.AssumptionSolves/4 {
		t.Fatalf("expected heavy constraint reuse on shared prefixes, got %d reused over %d solves",
			res.ConstraintsReused, res.AssumptionSolves)
	}

	// Non-incremental runs must report the mirror image.
	res = (&Engine{Workers: 1, WantModels: true}).Run(h)
	if res.AssumptionSolves != 0 || res.ConstraintsReused != 0 {
		t.Fatalf("non-incremental run reported session counters: %d/%d",
			res.AssumptionSolves, res.ConstraintsReused)
	}
	if res.FullSolves == 0 {
		t.Fatal("non-incremental run reported no full solves")
	}
}

// TestMergeMemoHits checks diamond state merging fires on a diamond-shaped
// workload: sibling paths that disagree only on an outcome-irrelevant
// decision issue identical relaxed queries, so the second sibling's
// infeasible arm must be answered from the memo.
func TestMergeMemoHits(t *testing.T) {
	h := func(ctx *Context) {
		x := ctx.NewSym("x", 8)
		lt10 := ctx.Branch(sym.Ult(x, sym.Const(8, 10)))
		// The diamond pivot: the newest decision before the next frontier,
		// irrelevant to that frontier's feasibility. Dropping it makes the
		// two siblings' relaxed queries identical.
		ctx.Branch(sym.EqConst(sym.Extract(x, 0, 0), 1))
		if lt10 {
			// The false arm is infeasible from x<10 alone: the first sibling
			// proves the relaxed query (x<10 ∧ x≥20) unsatisfiable and the
			// second sibling's arm dies on the memo.
			ctx.Branch(sym.Ult(x, sym.Const(8, 20)))
		}
		ctx.Emit("done")
	}
	res := (&Engine{Workers: 1, Merge: true, WantModels: true}).Run(h)
	if res.MergeHits == 0 {
		t.Fatal("merge mode explored a diamond workload without a single memo hit")
	}
	want := fingerprint((&Engine{Workers: 1, WantModels: true}).Run(h))
	if got := fingerprint(res); got != want {
		t.Fatalf("merge run diverged:\n--- want\n%s--- got\n%s", want, got)
	}
}
