package symexec

import "sync"

// canonCut implements canonical MaxPaths truncation (Engine.CanonicalCut):
// instead of keeping the first N paths that happen to complete — a set that
// depends on strategy order and, with several workers, on scheduling — it
// keeps the N canonically smallest completed paths (lexicographic
// decision-prefix order, false before true). That set is a pure function of
// the execution tree, so truncated runs become reproducible across worker
// counts and across distributed process layouts.
//
// The tracker doubles as a pruning oracle. Decision-vector order is
// subtree-monotone: every path below an unexplored prefix q sorts after q,
// and q compares to any vector outside its subtree exactly as its paths do.
// So once N paths at or below some bound have completed, a pending prefix
// that sorts after the current N-th smallest path can never contribute —
// the engine drops it without executing it, which is what makes a
// canonically truncated run terminate without exploring the whole tree.
//
// One mutex guards the tracker. It is taken once per frontier pop and once
// per completed path — both dwarfed by path execution — so sharing it
// between workers costs nothing measurable.
type canonCut struct {
	mu sync.Mutex
	// cap is the MaxPaths bound; kept holds at most cap paths as a binary
	// max-heap ordered by decision vector (largest at the root), so the
	// eviction candidate is O(1) away.
	cap     int
	kept    []*Path
	dropped bool // a completed path or a whole subtree was discarded
}

func newCanonCut(cap int) *canonCut { return &canonCut{cap: cap} }

// prune reports whether the subtree below the pending prefix d cannot
// contribute to the canonical cut: the tracker is full and d sorts after
// the current largest kept path. A true return records that exploration was
// truncated.
func (c *canonCut) prune(d []bool) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.kept) < c.cap {
		return false
	}
	if LessDecisions(c.kept[0].Decisions, d) {
		c.dropped = true
		return true
	}
	return false
}

// admit offers a completed path. When the tracker is full, the larger of
// (new path, current maximum) is discarded, so admit is monotone: the kept
// set only ever gets canonically smaller.
func (c *canonCut) admit(p *Path) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.kept) < c.cap {
		c.kept = append(c.kept, p)
		c.up(len(c.kept) - 1)
		return
	}
	c.dropped = true
	if LessDecisions(p.Decisions, c.kept[0].Decisions) {
		c.kept[0] = p
		c.down(0)
	}
}

// paths returns the kept set (heap order; the caller canonicalizes) and
// whether anything was discarded along the way.
func (c *canonCut) paths() (kept []*Path, truncated bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.kept, c.dropped
}

// up and down restore the max-heap property (LessDecisions order, largest
// decision vector at index 0).
func (c *canonCut) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !LessDecisions(c.kept[parent].Decisions, c.kept[i].Decisions) {
			return
		}
		c.kept[parent], c.kept[i] = c.kept[i], c.kept[parent]
		i = parent
	}
}

func (c *canonCut) down(i int) {
	n := len(c.kept)
	for {
		largest := i
		for _, child := range []int{2*i + 1, 2*i + 2} {
			if child < n && LessDecisions(c.kept[largest].Decisions, c.kept[child].Decisions) {
				largest = child
			}
		}
		if largest == i {
			return
		}
		c.kept[i], c.kept[largest] = c.kept[largest], c.kept[i]
		i = largest
	}
}
