// Package symexec implements the symbolic execution engine at the core of
// SOFT's first phase. It substitutes for Cloud9 in the paper's prototype:
// given a deterministic handler (the OpenFlow agent model driven by the test
// harness), it explores every feasible execution path, maintaining a path
// condition per path and recording the outputs the agent produced along it.
//
// # Deterministic re-execution
//
// The engine uses deterministic re-execution (execution-generated testing):
// a path is identified by the sequence of decisions taken at branches whose
// condition depends on symbolic input. To explore an alternative, the engine
// re-runs the handler from the start, replaying the recorded decision prefix
// and then diverging. Because agents are deterministic functions of the
// branch decisions, replay reconstructs exactly the same execution tree a
// state-forking engine (like Cloud9) would maintain, at the cost of
// re-execution — which is cheap for agent models — and with none of the
// state-snapshotting machinery.
//
// Branch feasibility is decided per path. Each in-flight path carries an
// incrementally built SAT encoding of its path condition (a private
// bitblast.Blaster with its own CDCL core), so a feasibility query at a
// branch reuses all the encoding and learned clauses accumulated along the
// path.
//
// # Parallel exploration
//
// Because paths are independent re-executions, exploration parallelizes at
// the path granularity. Engine.Workers (default GOMAXPROCS) workers run the
// following scheme, the reproduction's stand-in for the paper's Cloud9
// cluster (§3.2):
//
//   - Each worker owns a local frontier of unexplored branch-decision
//     prefixes, ordered by its own instance of the configured search
//     strategy (WorkerStrategy.ForWorker derives the per-worker instances;
//     randomized strategies get deterministic per-worker seeds).
//   - The hot path is share-nothing: path execution uses a path-private
//     constraint encoding and CDCL core, forks push onto the worker-local
//     frontier, and the branch-query counter is worker-local. No locks, no
//     atomics while a path runs.
//   - A shared steal pool balances load. A worker that drains its local
//     frontier blocks in the pool; busy workers observe the (lock-free)
//     idle count at fork time and donate forks — or half their backlog —
//     when someone is starving. Exploration terminates when every worker is
//     idle and the pool is empty.
//
// # Determinism
//
// The execution tree of a deterministic handler is a fixed object: every
// fork point, every completed path, and every infeasible or depth-truncated
// prefix is determined by the handler alone, not by the order the tree is
// walked. An exhaustive exploration therefore discovers the same path set
// under any strategy, worker count, and scheduling. The engine makes the
// *reported* result identical too by canonicalizing afterwards: completed
// paths are sorted by their branch-decision vector (lexicographically,
// false before true) and path IDs are assigned in that order. Sequential
// and parallel runs of the same handler produce byte-identical results —
// the property the determinism regression tests in parallel_test.go and
// harness's parallel_test.go pin, and the foundation of the paper's
// no-false-positive guarantee under concurrency.
//
// The one caveat is MaxPaths: when the cap truncates exploration, *which*
// paths were completed first depends on strategy order and, with several
// workers, on scheduling. Truncated parallel runs keep exactly MaxPaths
// paths and set PathsTruncated, but the selected subset is not canonical.
package symexec
