// Package symexec implements the symbolic execution engine at the core of
// SOFT's first phase. It substitutes for Cloud9 in the paper's prototype:
// given a deterministic handler (the OpenFlow agent model driven by the test
// harness), it explores every feasible execution path, maintaining a path
// condition per path and recording the outputs the agent produced along it.
//
// # Deterministic re-execution
//
// The engine uses deterministic re-execution (execution-generated testing):
// a path is identified by the sequence of decisions taken at branches whose
// condition depends on symbolic input. To explore an alternative, the engine
// re-runs the handler from the start, replaying the recorded decision prefix
// and then diverging. Because agents are deterministic functions of the
// branch decisions, replay reconstructs exactly the same execution tree a
// state-forking engine (like Cloud9) would maintain, at the cost of
// re-execution — which is cheap for agent models — and with none of the
// state-snapshotting machinery.
//
// Branch feasibility is decided per path. With Engine.Incremental (the
// default) each worker keeps one persistent assumption-stack solver session
// across all its paths (see "Incremental solving along the path tree"
// below); with it off, each in-flight path carries a private incrementally
// built SAT encoding of its path condition (its own bitblast.Blaster and
// CDCL core), so a feasibility query still reuses the encoding and learned
// clauses accumulated along that one path.
//
// # Parallel exploration
//
// Because paths are independent re-executions, exploration parallelizes at
// the path granularity. Engine.Workers (default GOMAXPROCS) workers run the
// following scheme, the reproduction's stand-in for the paper's Cloud9
// cluster (§3.2):
//
//   - Each worker owns a local frontier of unexplored branch-decision
//     prefixes, ordered by its own instance of the configured search
//     strategy (WorkerStrategy.ForWorker derives the per-worker instances;
//     randomized strategies get deterministic per-worker seeds).
//   - The hot path is share-nothing: path execution uses a worker-private
//     constraint encoding and CDCL core (path-private with Incremental
//     off), forks push onto the worker-local frontier, and the branch-query
//     counter is worker-local. No locks, no atomics while a path runs.
//   - A shared steal pool balances load. A worker that drains its local
//     frontier blocks in the pool; busy workers observe the (lock-free)
//     idle count at fork time and donate forks — or half their backlog —
//     when someone is starving. Exploration terminates when every worker is
//     idle and the pool is empty.
//
// # Shared solver stack
//
// With Engine.ClauseSharing, workers stop being fully share-nothing at the
// solver level and start trading learned clauses. Three mechanisms make
// that sound and deterministic:
//
//   - Canonical variable numbering (bitblast.Space). SAT variable indices
//     are a function of what is encoded, not of allocation order: named
//     input variables get one contiguous index range fixed at first
//     registration, and each Tseitin gate is keyed by (structural hash of
//     its expression node, gate ordinal) — a node's gates are emitted
//     deterministically from its children's literals, so every synced
//     blaster maps the same structure to the same indices. A path blaster
//     lazily mirrors the space's layout, leaving index gaps for structure
//     other paths own; gap variables are unconstrained and are skipped by
//     the CDCL branching heuristic.
//
//   - Bounded lock-free clause exchange (sat.Exchange). When a worker's
//     CDCL core learns a clause of at most two literals entirely over its
//     canonically numbered prefix, it publishes the clause to a fixed-size
//     atomic ring (overwriting the oldest entry when full — sharing is
//     best-effort). Publishing never blocks and the ring is the only
//     cross-worker state on the solving path.
//
//   - Importer-side validation. A clause learned on path A is implied by
//     A's clause database (conflict resolution never uses decisions or
//     assumptions as axioms), but NOT necessarily by path B's. An importer
//     therefore first checks the candidate against its own level-0
//     assignment, then proves it locally: assume the negation of every
//     literal and solve — UNSAT means the clause is a consequence of the
//     importer's own database, so adopting it cannot change any answer,
//     only shortcut future conflicts. Candidates that fail are dropped.
//     Soundness never depends on the canonical numbering; a stale or
//     colliding index mapping only wastes a candidate.
//
// Because adopted clauses are locally implied, every satisfiability answer
// — and hence the explored path set — is identical with sharing on or off.
// Witness models are kept identical too by extracting the canonical model
// (bitblast.CanonicalModel): the numerically smallest satisfying
// assignment, a pure function of the path condition rather than of the
// CDCL search trajectory. Sequential runs may also enable sharing; clauses
// then flow between successive paths of the same run.
//
// # Incremental solving along the path tree
//
// Engine.Incremental (the default) replaces the fresh-solver-per-path
// scheme with one persistent bitblast.Session per worker. A session keeps a
// single SAT core and encoding memo alive across every path the worker
// attempts: each path-condition conjunct is Tseitin-encoded once, guarded
// by an activation literal a_c via the clause (¬a_c ∨ lit(c)), and a path's
// feasibility query becomes one solve under the assumption stack
// (a_1..a_k) of its conjuncts. Sibling paths — which share their entire
// constraint prefix — therefore share CNF, learned clauses, and VSIDS
// activity instead of re-blasting and re-learning it per path; that reuse
// is where the paths/sec win on conflict-rich workloads comes from
// (internal/sym's hash-consed interning makes the per-conjunct cache a
// pointer lookup on the hot path). Activation variables live in the
// canonical numbering as named "!act/"-prefixed space variables, so
// sessions compose with clause sharing and the canonical-model guarantee
// unchanged.
//
// Sessions preserve answers exactly: assumptions are decided on the same
// formula a fresh solver would decide, learned clauses are resolvents of
// database clauses only (never of assumptions), and witnesses are still
// canonical models. The determinism sweep tests (incremental_test.go here,
// incremental_sweep_test.go in harness) pin byte-identical output across
// incremental on/off, merge on/off, and worker counts.
//
// Engine.Merge (off by default, implies Incremental) adds veritesting-style
// diamond state-merging on top: at a frontier query the engine first solves
// a *relaxed* query with the newest branch decision dropped — exactly the
// constraint of the diamond formed by the two siblings that disagree on
// that decision. A relaxed UNSAT kills the arm on both siblings, so the
// verdict is memoized engine-wide (mergeMemo) and the second sibling's
// query becomes a map lookup; a relaxed SAT says nothing and the exact
// query proceeds as usual. Memo keys store the full conjunct-hash sequence,
// so a hash collision can never smuggle a wrong "unsatisfiable" verdict in.
// Merging only ever removes solver work, never paths, so output stays
// byte-identical; whether it wins depends on the diamond density of the
// workload (on FlowMod the relaxed queries currently cost slightly more
// than they save — measure before enabling).
//
// # Determinism
//
// The execution tree of a deterministic handler is a fixed object: every
// fork point, every completed path, and every infeasible or depth-truncated
// prefix is determined by the handler alone, not by the order the tree is
// walked. An exhaustive exploration therefore discovers the same path set
// under any strategy, worker count, and scheduling. The engine makes the
// *reported* result identical too by canonicalizing afterwards: completed
// paths are sorted by their branch-decision vector (lexicographically,
// false before true) and path IDs are assigned in that order. Sequential
// and parallel runs of the same handler produce byte-identical results —
// the property the determinism regression tests in parallel_test.go and
// harness's parallel_test.go pin, and the foundation of the paper's
// no-false-positive guarantee under concurrency.
//
// The determinism guarantee extends across solver configuration: clause
// sharing on or off, shared or private caches, any worker count — an
// exhaustive run serializes to the same bytes (pinned by
// TestClauseSharingDeterminism here and the harness and CLI determinism
// tests downstream).
//
// MaxPaths truncation comes in two flavors. The default keeps the first
// MaxPaths paths that happen to complete — cheap, but *which* paths those
// are depends on strategy order and, with several workers, on scheduling,
// so truncated runs are not canonical. Engine.CanonicalCut closes that
// caveat: the run keeps the MaxPaths canonically *smallest* completed
// paths instead. The kept set converges because decision-prefix order is
// subtree-monotone — every path below a pending prefix sorts after it — so
// once MaxPaths paths at or below some bound have completed, any pending
// prefix sorting after the current MaxPaths-th smallest path can be pruned
// outright (canoncut.go). The result is a pure function of the execution
// tree: byte-identical for every worker count, strategy, and distributed
// shard layout, which is why distributed runs default to it. In a
// truncated canonical run, coverage is rebuilt from exactly the kept paths
// (which other attempts executed before pruning kicked in is
// schedule-dependent), and the Infeasible/DepthTruncated/BranchQueries
// counters remain approximate; cancelled runs are still non-canonical.
//
// # Distributed exploration
//
// Because a path is identified by its decision prefix and re-execution is
// deterministic, the execution tree shards across processes at the subtree
// granularity with no shared engine state — the reproduction's answer to
// the paper's Cloud9 cluster deployment. Three engine hooks make it work:
//
//   - Engine.ShardSink (with ShardDepth) is the coordinator-side split: the
//     run explores every path reachable through prefixes of length <=
//     ShardDepth itself and diverts each deeper fork to the sink. The
//     diverted prefixes are the roots of disjoint, collectively exhaustive
//     unexplored subtrees (EGT's frontier invariant: pending items plus
//     completed paths always partition the remaining tree).
//
//   - Engine.Prefix is the worker side: exploration seeded from a diverted
//     prefix replays it and explores exactly that subtree, with any local
//     worker count. Completed paths carry their full decision vector.
//
//   - Canonical merge: concatenating shard results and sorting by decision
//     vector (LessDecisions) reproduces the exact canonical path set and ID
//     assignment of a single-process run — harness.MergeShards implements
//     it, internal/dist ships shards between processes, and re-exploring a
//     subtree twice (a re-leased crash recovery) yields byte-identical
//     shards, so duplicates are simply dropped.
package symexec
